// Figure 15: NPU time-sharing between REE NN applications (YOLOv5,
// MobileNet) and LLM inference. EX = exclusive, SH = concurrently sharing
// the NPU; the LLM runs either as REE-LLM-Memory (REE pairing) or TZ-LLM
// with 100% cached parameters (TEE pairing). Includes the §7.3 overhead
// breakdown (smc / TZASC+TZPC / GIC share).

#include "bench/bench_common.h"
#include "src/core/nn_apps.h"

namespace tzllm {
namespace {

struct SharingResult {
  double nn_thpt = 0.0;
  double llm_thpt = 0.0;  // prefill tokens/s or decode tokens/s.
  double switch_share = 0.0;
};

SharingResult RunCase(const NnAppProfile& nn_profile, const LlmConfig& model,
                      bool tee, bool shared, bool prefill_phase) {
  SharingResult out;
  BenchSystem sys = BenchSystem::Create(
      tee ? SystemKind::kTzLlm : SystemKind::kReeMemory, model);
  // TEE pairing runs with 100% cached parameters (paper setup).
  if (tee) {
    InferenceRequest warm;
    warm.prompt_tokens = 16;
    warm.cache_proportion_after = 1.0;
    if (!sys.runtime->RunInference(warm).status.ok()) {
      return out;
    }
  }
  NnApp app(&sys.platform->sim(), &sys.runtime->ree_npu(), nn_profile);
  if (shared) {
    app.Start();
  }
  InferenceRequest req;
  if (prefill_phase) {
    req.prompt_tokens = 512;
    req.decode_tokens = 0;
  } else {
    req.prompt_tokens = 32;
    req.decode_tokens = 48;
  }
  req.cache_proportion_after = tee ? 1.0 : 0.0;
  const InferenceReport report = sys.runtime->RunInference(req);
  if (shared) {
    app.Stop();
  }
  if (!report.status.ok()) {
    return out;
  }
  out.nn_thpt = shared ? app.Throughput() : 0.0;
  out.llm_thpt = prefill_phase
                     ? req.prompt_tokens / ToSeconds(report.prefill_time)
                     : report.decode_tokens_per_s;
  const SimDuration denom =
      prefill_phase ? report.prefill_time : report.decode_time;
  out.switch_share =
      denom == 0 ? 0.0 : ToSeconds(report.npu_switch_time) / ToSeconds(denom);
  return out;
}

double NnExclusive(const NnAppProfile& profile) {
  SocPlatform plat;
  ReeNpuDriver driver(&plat);
  driver.Init();
  NnApp app(&plat.sim(), &driver, profile);
  app.Start();
  plat.sim().RunUntil(3 * kSecond);
  app.Stop();
  return app.Throughput();
}

void Run() {
  PrintHeader("Figure 15",
              "NPU time-sharing: NN app + LLM throughputs "
              "(EX=exclusive, SH=shared)");
  for (const NnAppProfile& nn : {Yolov5Profile(), MobileNetProfile()}) {
    const double nn_ex = NnExclusive(nn);
    for (bool prefill_phase : {true, false}) {
      printf("\n--- %s + LLM %s stage ---\n", nn.name.c_str(),
             prefill_phase ? "prefill" : "decoding");
      PrintRow({"LLM model", "pairing", "NN-EX", "NN-SH", "LLM-EX",
                "LLM-SH", "switch% (EX)"},
               13);
      for (const LlmConfig& model : {Qwen2_5_3B(), Llama3_8B()}) {
        for (bool tee : {false, true}) {
          const SharingResult ex =
              RunCase(nn, model, tee, false, prefill_phase);
          const SharingResult sh =
              RunCase(nn, model, tee, true, prefill_phase);
          PrintRow({model.name, tee ? "TEE" : "REE", Fmt("%.1f", nn_ex),
                    Fmt("%.1f", sh.nn_thpt), Fmt("%.2f", ex.llm_thpt),
                    Fmt("%.2f", sh.llm_thpt),
                    Fmt("%.2f%%", ex.switch_share * 100)},
                   13);
        }
      }
    }
  }
  printf("\npaper: sharing halves both sides vs exclusive; the TEE pairing "
         "adds at most 3.8%% (NN) / 3.0%% (LLM) on top of REE sharing; smc + "
         "TZASC/TZPC + GIC account for 1.6%%~2.7%% of TTFT and 2.3%%~5.7%% "
         "of decode time.\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
