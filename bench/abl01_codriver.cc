// Ablation: the co-driver design vs the naive "two full drivers +
// detach/attach" alternative (§2.3 challenge #2). The naive design pays the
// 32 ms control-plane reinitialization on every world switch; the co-driver
// pays only smc round trips + TZPC/GIC/TZASC reprogramming per secure job.
// Also quantifies the TCB argument.

#include "bench/bench_common.h"
#include "src/tee/npu_driver.h"

namespace tzllm {
namespace {

void Run() {
  PrintHeader("Ablation A1",
              "Co-driver NPU time-sharing vs naive detach/attach");

  const SimDuration codriver = TeeNpuDriver::PerJobSwitchCost();
  const SimDuration naive = 2 * kNpuDetachAttachTime;  // To TEE and back.
  printf("per-secure-job world-switch cost:\n");
  PrintRow({"  co-driver (smc + TZPC/GIC/TZASC)",
            FormatDuration(codriver)},
           36);
  PrintRow({"  naive detach/attach (2 x 32 ms)", FormatDuration(naive)}, 36);
  printf("  ratio: %.0fx cheaper\n\n",
         static_cast<double>(naive) / codriver);

  // What that does to decoding: every decode step launches ~2 secure jobs
  // per layer (+1 for the lm head).
  printf("decoding-speed impact (prompt 128, output 32):\n");
  PrintRow({"model", "co-driver t/s", "naive t/s", "slowdown"}, 16);
  for (const LlmConfig& model : {Qwen2_5_3B(), Llama3_8B()}) {
    BenchSystem sys = BenchSystem::Create(SystemKind::kTzLlm, model);
    InferenceRequest req;
    req.prompt_tokens = 128;
    req.decode_tokens = 32;
    const InferenceReport report = sys.runtime->RunInference(req);
    if (!report.status.ok()) {
      continue;
    }
    const int jobs_per_token = sys.runtime->decode_graph().NpuOpCount();
    const double t_codriver = 1.0 / report.decode_tokens_per_s;
    const double t_naive =
        t_codriver + jobs_per_token * ToSeconds(naive - codriver);
    PrintRow({model.name, Fmt("%.2f", report.decode_tokens_per_s),
              Fmt("%.2f", 1.0 / t_naive),
              Fmt("%.0fx", t_naive / t_codriver)},
             16);
  }

  printf("\nTCB impact (paper §2.3/§5):\n");
  PrintRow({"  full REE NPU driver + deps", "~60,000 LoC"}, 36);
  PrintRow({"  TEE data-plane driver", "~1,000 LoC"}, 36);
  PrintRow({"  TEE OS modification", "~112 LoC"}, 36);
  printf("\nthe co-driver keeps scheduling/power management out of the TEE "
         "entirely; the data plane validates tokens (replay / reorder / "
         "arbitrary-launch) instead of trusting the REE scheduler.\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
