// Engine scaling (ISSUE 1): wall-clock tok/s of the functional inference
// engine — the seed's scalar float-activation path vs. the blocked
// quantized kernels at 1/2/4 threads, and per-position vs. batched prefill.
//
// Unlike the fig01..fig16 harnesses this measures REAL kernel time, not the
// simulator: these are the numbers that tell us interpreter overhead is gone
// from the functional path. Emits BENCH_engine.json next to the binary so
// future PRs can track the perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/hw/npu.h"
#include "src/llm/backend/backend.h"
#include "src/llm/engine.h"
#include "src/llm/model_spec.h"
#include "src/llm/simd/kernels.h"
#include "src/llm/tzguf.h"
#include "src/ree/npu_driver.h"
#include "src/ree/tz_driver.h"
#include "src/tee/npu_driver.h"
#include "src/tee/tee_os.h"

namespace tzllm {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<TokenId> MakePrompt(const LlmConfig& c, int n) {
  std::vector<TokenId> tokens(n);
  for (int i = 0; i < n; ++i) {
    tokens[i] = 1 + (i * 7) % (c.vocab_size - 2);
  }
  return tokens;
}

struct DecodeResult {
  double tok_per_s = 0.0;
  // Attention-phase wall time per decode step, from the executor's
  // collect_stats timer, taken from the same rep that set tok_per_s.
  double attend_ms_per_tok = 0.0;
  // KvCache::CurrentBytes() after the decode loop — now truthful resident
  // bytes (f16 by default, f32 for the reference engine).
  uint64_t kv_resident_bytes = 0;
};

// Prefills a short prompt, then times `n_decode` incremental decode steps.
// Best of `reps` passes (context reset in between): on a busy shared host a
// single short pass can eat a scheduler hiccup either way, and best-of
// compares each configuration at its least-interfered run.
DecodeResult MeasureDecode(const ModelSpec& spec, const EngineOptions& options,
                           int n_decode, int reps = 3) {
  EngineOptions opts = options;
  opts.collect_stats = true;
  auto engine = LlmEngine::CreateUnprotected(spec, /*weight_seed=*/42, opts);
  const auto prompt = MakePrompt(spec.config(), 16);
  DecodeResult out;
  std::vector<float> logits_buf(spec.config().vocab_size);
  for (int r = 0; r < reps; ++r) {
    engine->ResetContext();
    auto logits = engine->Prefill(prompt);
    if (!logits.ok()) {
      fprintf(stderr, "prefill failed: %s\n",
              logits.status().ToString().c_str());
      abort();
    }
    // Warm caches and the pool before timing. A warmup step that fails is
    // the same bug a timed-step failure would be (and leaves the engine in
    // a state the timed loop was never calibrated for): same loud exit.
    for (int i = 0; i < 4; ++i) {
      Status warm = engine->DecodeStepInto(1 + i, logits_buf.data());
      if (!warm.ok()) {
        fprintf(stderr, "warmup decode failed: %s\n", warm.ToString().c_str());
        abort();
      }
    }
    const double attend0 = engine->attend_seconds();
    const auto start = Clock::now();
    for (int i = 0; i < n_decode; ++i) {
      Status next = engine->DecodeStepInto(1 + (i % 200), logits_buf.data());
      if (!next.ok()) {
        fprintf(stderr, "decode failed: %s\n", next.ToString().c_str());
        abort();
      }
    }
    const double tok_per_s = n_decode / SecondsSince(start);
    if (tok_per_s > out.tok_per_s) {
      out.tok_per_s = tok_per_s;
      out.attend_ms_per_tok =
          (engine->attend_seconds() - attend0) * 1e3 / n_decode;
    }
  }
  out.kv_resident_bytes = engine->kv().CurrentBytes();
  return out;
}

// Prefill weight reuse only pays once the working set outgrows the private
// caches (L2 here): per-position decode re-streams every weight row per
// token, batching streams each row once per chunk. test-small fits in L2, so
// the prefill comparison runs on this larger (still materializable) config.
LlmConfig BenchMediumModel() {
  LlmConfig c;
  c.name = "bench-medium";
  c.n_layers = 8;
  c.d_model = 512;
  c.n_heads = 8;
  c.n_kv_heads = 4;
  c.d_ff = 1408;
  c.vocab_size = 4096;
  c.max_ctx = 256;
  return c;
}

// Times one full prefill of an `n_prompt`-token prompt over shared weights;
// best of `reps` to shed scheduler noise on a busy host.
double MeasurePrefillMs(const ModelSpec& spec,
                        const std::vector<Tensor>& weights,
                        const EngineOptions& options, int n_prompt,
                        int reps = 2) {
  LlmEngine engine(spec, std::make_unique<HostWeightSource>(weights), options);
  const auto prompt = MakePrompt(spec.config(), n_prompt);
  // One untimed warmup pass (weights into cache, workspace sized). Checked:
  // a failed warmup means the timed passes measure an uncalibrated engine.
  auto warm = engine.Prefill(prompt);
  if (!warm.ok()) {
    fprintf(stderr, "warmup prefill failed: %s\n",
            warm.status().ToString().c_str());
    abort();
  }
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    engine.ResetContext();
    const auto start = Clock::now();
    auto logits = engine.Prefill(prompt);
    if (!logits.ok()) {
      fprintf(stderr, "prefill failed: %s\n",
              logits.status().ToString().c_str());
      abort();
    }
    best = std::min(best, SecondsSince(start) * 1e3);
  }
  return best;
}

// NPU-offloaded batched prefill through the ComputeBackend seam: each
// chunk-layer becomes two fused secure NPU jobs via the co-driver, with the
// full shadow-queue / takeover / world-switch protocol running on the
// simulator clock and the executor's pipelined schedule overlapping one
// chunk's CPU attention with another chunk's jobs.
//
// The headline number is the HYBRID MAKESPAN: the backend charges the
// host's measured CPU segments to the virtual clock, so one virtual
// timeline composes real CPU-resident work (norms, RoPE, attention,
// quantization) with modeled NPU job execution and the real co-driver
// protocol — overlap and pipeline bubbles included. Raw wall-clock is also
// recorded, but on this simulator it double-charges the NPU's work (the
// functional payloads execute on the host CPU), so it is diagnostics, not
// the offload metric. See the BENCH_engine.json glossary in README.md.
struct NpuPrefillResult {
  double makespan_ms = 0.0;  // Hybrid virtual makespan of one prefill pass.
  double wall_ms = 0.0;      // Best-of wall-clock (payloads on host).
  double stall_ms = 0.0;     // CPU stalled in Await per pass (virtual).
  uint64_t jobs = 0;         // Secure jobs per prefill.
  double matmuls_per_job = 0.0;    // Average fused-group size.
  double config_us_per_job = 0.0;  // TZPC/GIC/TZASC reprogramming.
  double smc_us_per_job = 0.0;     // World-switch round trips.
  double measured_switch_us_per_job = 0.0;  // Protocol-measured switch time.
  double npu_busy_ms = 0.0;        // Modeled NPU execution time per prefill.
  // Per-prefill degradation stats (PR 6): non-zero only when a fault plan
  // is armed (TZLLM_FAULT_PLAN); the fault-sweep CI leg gates on these.
  double faults_injected = 0.0;    // Faults the plan actually fired.
  double jobs_recovered = 0.0;     // Failed jobs a retry absorbed.
  double fallback_jobs = 0.0;      // Jobs re-executed on the CPU.
  double fallback_matmuls = 0.0;   // Matmuls inside those fallback jobs.
  double jobs_abandoned = 0.0;     // Tickets written off during quiesce.
};

NpuPrefillResult MeasureNpuPrefill(const ModelSpec& spec,
                                   const std::vector<Tensor>& weights,
                                   const EngineOptions& options, int n_prompt,
                                   int reps = 2) {
  SocPlatform plat;
  ReeMemoryLayout layout;
  layout.dram_bytes = plat.config().dram_bytes;
  layout.kernel_bytes = 256 * kMiB;
  layout.cma_bytes = 1 * kGiB;
  layout.cma2_bytes = 256 * kMiB;
  ReeMemoryManager mm(layout, &plat.dram());
  TzDriver tz(&plat, &mm);
  ReeNpuDriver ree_npu(&plat);
  ree_npu.Init();
  TeeOs tee(&plat, &tz, /*root_key_seed=*/42);
  if (!tee.Boot().ok()) {
    fprintf(stderr, "tee boot failed\n");
    abort();
  }
  TeeNpuDriver tee_npu(&plat, &tee);
  tee_npu.Init();
  // Fault-sweep mode (PR 6): TZLLM_FAULT_PLAN arms the same deterministic
  // injection harness the LlmTa path uses, so CI can measure the degraded
  // (retry / CPU-fallback) prefill on the identical schedule.
  const NpuFaultPlan fault_plan = NpuFaultPlan::FromEnv();
  if (fault_plan.active()) {
    tee_npu.ArmFaultPlan(fault_plan);
  }
  const TaId ta = *tee.CreateTa("bench-llm");
  const uint64_t scratch = 16 * kMiB;
  if (!tee.ExtendAllocated(ta, SecureRegionId::kScratch, scratch).ok() ||
      !tee.ExtendProtected(ta, SecureRegionId::kScratch, scratch).ok()) {
    fprintf(stderr, "scratch setup failed\n");
    abort();
  }

  NpuBackendConfig config;
  config.platform = &plat;
  config.driver = &tee_npu;
  config.ta = ta;
  config.ctx_base = tee.RegionBase(SecureRegionId::kScratch);
  config.ctx_bytes = NpuBackend::ContextBytes(spec, options);
  config.kernels = KernelsFor(options);
  config.fuse_jobs = options.npu_fusion;
  if (fault_plan.active()) {
    // The sweep measures FALLBACK-mode prefill (the guard: completes within
    // 2x batched_t1), so a faulted job goes straight to its CPU re-run. The
    // retry path is covered by fig13 and the fault-injection tests. The
    // deadline drops with it: a persistent timeout-class plan pays one full
    // deadline per faulted job on the virtual clock, and the 2 s default
    // (sized for paper-scale models) would drown the number the sweep is
    // here to produce — 5 ms is still > 10x the fused job's modeled time.
    config.job_timeout = 5 * kMillisecond;
    config.max_retries = 0;
  }
  NpuBackend backend(config);

  HostWeightSource source(weights);
  TransformerExecutor exec(&spec, &source, options, &backend);
  KvCache kv(spec, KvStorageFor(options), KernelsFor(options));
  const auto prompt = MakePrompt(spec.config(), n_prompt);

  auto one_pass = [&]() {
    kv.Reset();
    auto logits = exec.Prefill(prompt, &kv);
    if (!logits.ok()) {
      fprintf(stderr, "npu prefill failed: %s\n",
              logits.status().ToString().c_str());
      abort();
    }
  };
  one_pass();  // Warmup (weights into cache, workspace + contexts sized).

  NpuPrefillResult out;
  const uint64_t jobs0 = tee_npu.secure_jobs_completed();
  const uint64_t matmuls0 = tee_npu.total_matmuls_completed();
  const SimDuration config0 = tee_npu.total_config_time();
  const SimDuration smc0 = tee_npu.total_smc_time();
  const SimDuration npu0 = tee_npu.total_job_npu_time();
  const SimDuration switch0 = tee_npu.total_measured_switch_time();
  const SimDuration stall0 = backend.await_stall_time();
  const SimTime sim0 = plat.sim().Now();
  const uint64_t faults0 = tee_npu.faults_injected();
  const uint64_t recovered0 = tee_npu.jobs_recovered();
  const uint64_t fb_jobs0 = tee_npu.fallback_jobs();
  const uint64_t fb_matmuls0 = tee_npu.fallback_matmuls();
  const uint64_t abandoned0 = tee_npu.jobs_abandoned();
  out.wall_ms = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    one_pass();
    out.wall_ms = std::min(out.wall_ms, SecondsSince(start) * 1e3);
  }
  // The protocol is deterministic: every pass submits the same jobs and
  // pays the same modeled overheads, so per-pass figures are delta / reps.
  out.jobs = (tee_npu.secure_jobs_completed() - jobs0) / reps;
  const double jobs_total =
      static_cast<double>(tee_npu.secure_jobs_completed() - jobs0);
  if (jobs_total > 0) {  // Guard: options forcing the CPU path submit none.
    out.matmuls_per_job =
        static_cast<double>(tee_npu.total_matmuls_completed() - matmuls0) /
        jobs_total;
    out.config_us_per_job =
        ToMillis(tee_npu.total_config_time() - config0) * 1e3 / jobs_total;
    out.smc_us_per_job =
        ToMillis(tee_npu.total_smc_time() - smc0) * 1e3 / jobs_total;
    out.measured_switch_us_per_job =
        ToMillis(tee_npu.total_measured_switch_time() - switch0) * 1e3 /
        jobs_total;
  }
  out.npu_busy_ms = ToMillis(tee_npu.total_job_npu_time() - npu0) / reps;
  out.stall_ms = ToMillis(backend.await_stall_time() - stall0) / reps;
  out.makespan_ms = ToMillis(plat.sim().Now() - sim0) / reps;
  const double n = static_cast<double>(reps);
  out.faults_injected = (tee_npu.faults_injected() - faults0) / n;
  out.jobs_recovered = (tee_npu.jobs_recovered() - recovered0) / n;
  out.fallback_jobs = (tee_npu.fallback_jobs() - fb_jobs0) / n;
  out.fallback_matmuls = (tee_npu.fallback_matmuls() - fb_matmuls0) / n;
  out.jobs_abandoned = (tee_npu.jobs_abandoned() - abandoned0) / n;
  return out;
}

}  // namespace
}  // namespace tzllm

int main() {
  using namespace tzllm;

  const ModelSpec spec = ModelSpec::Create(TestSmallModel());
  const int kDecodeTokens = 96;
  const int kPromptTokens = 96;

  const char* simd_isa = SimdIsaName(ActiveKernels()->isa);

  PrintHeader("Figure 17", "Functional engine scaling (real kernel time)");
  printf("model=%s  layers=%d d_model=%d d_ff=%d vocab=%d  simd=%s\n",
         spec.config().name.c_str(), spec.config().n_layers,
         spec.config().d_model, spec.config().d_ff, spec.config().vocab_size,
         simd_isa);

  // --- Decode throughput: seed scalar baseline vs. blocked at 1/2/4. The
  // reference engine keeps the seed's f32 KV cache; the blocked engines run
  // the f16 arena with fused threaded attention (ISSUE 2) through the
  // active SIMD table (ISSUE 3); blocked-scalar pins the same engine to the
  // portable table so the dispatch win is measured on one box. ---
  EngineOptions reference;
  reference.use_reference_kernels = true;
  const DecodeResult seed = MeasureDecode(spec, reference, kDecodeTokens);
  const double seed_tok_s = seed.tok_per_s;

  EngineOptions forced_scalar;
  forced_scalar.force_scalar = true;
  const DecodeResult scalar_blocked =
      MeasureDecode(spec, forced_scalar, kDecodeTokens);

  std::vector<int> thread_counts = {1, 2, 4};
  std::vector<DecodeResult> decode;
  std::vector<int> resolved_threads;
  for (int t : thread_counts) {
    EngineOptions options;
    options.n_threads = t;
    resolved_threads.push_back(ResolvedThreads(options));
    decode.push_back(MeasureDecode(spec, options, kDecodeTokens));
  }

  printf("\nDecode throughput (%d tokens):\n", kDecodeTokens);
  PrintRow({"path", "threads", "tok/s", "vs seed", "attend ms/tok", "kv bytes"});
  PrintRow({"seed-scalar", "1", Fmt("%.1f", seed_tok_s), "1.00x",
            Fmt("%.3f", seed.attend_ms_per_tok),
            std::to_string(seed.kv_resident_bytes)});
  PrintRow({"blocked-scalar", "1", Fmt("%.1f", scalar_blocked.tok_per_s),
            Fmt("%.2fx", scalar_blocked.tok_per_s / seed_tok_s),
            Fmt("%.3f", scalar_blocked.attend_ms_per_tok),
            std::to_string(scalar_blocked.kv_resident_bytes)});
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    // A request beyond the hardware is clamped by the engine (ISSUE 5:
    // oversubscription measured slower than t1); the row label says so
    // instead of presenting a duplicate configuration as scaling.
    const std::string label =
        resolved_threads[i] == thread_counts[i]
            ? std::to_string(thread_counts[i])
            : std::to_string(thread_counts[i]) + " (clamped->" +
                  std::to_string(resolved_threads[i]) + ")";
    PrintRow({std::string("blocked-simd"), label,
              Fmt("%.1f", decode[i].tok_per_s),
              Fmt("%.2fx", decode[i].tok_per_s / seed_tok_s),
              Fmt("%.3f", decode[i].attend_ms_per_tok),
              std::to_string(decode[i].kv_resident_bytes)});
  }
  // The f16 attend expand is where the F16C/AVX2 table pays most (ISSUE 3
  // acceptance: >= 1.3x vs the scalar table on an F16C box).
  const double attend_speedup =
      scalar_blocked.attend_ms_per_tok / decode[0].attend_ms_per_tok;
  printf("f16 attend ms/tok: scalar-table %.3f vs %s %.3f (%.2fx)\n",
         scalar_blocked.attend_ms_per_tok, simd_isa,
         decode[0].attend_ms_per_tok, attend_speedup);
  printf("kv footprint: f16 resident %llu B vs f32 reference %llu B (%.2fx)\n",
         static_cast<unsigned long long>(decode[0].kv_resident_bytes),
         static_cast<unsigned long long>(seed.kv_resident_bytes),
         static_cast<double>(seed.kv_resident_bytes) /
             static_cast<double>(decode[0].kv_resident_bytes));

  // --- Prefill: per-position vs. batched on a >= 64-token prompt, over a
  // model whose weights outgrow L2 (weight reuse is the whole point). ---
  const ModelSpec prefill_spec = ModelSpec::Create(BenchMediumModel());
  const std::vector<Tensor> prefill_weights =
      Tzguf::ReferenceWeights(prefill_spec, /*seed=*/42);
  uint64_t weight_bytes = 0;
  for (const Tensor& t : prefill_weights) {
    weight_bytes += t.data.size();
  }
  printf("\nprefill model=%s  weights=%.1f MiB\n",
         prefill_spec.config().name.c_str(),
         static_cast<double>(weight_bytes) / (1024.0 * 1024.0));

  EngineOptions per_position;
  per_position.prefill_batch = 1;
  EngineOptions batched1;
  batched1.prefill_batch = 32;
  EngineOptions batched4 = batched1;
  batched4.n_threads = 4;

  const double per_pos_ms =
      MeasurePrefillMs(prefill_spec, prefill_weights, per_position,
                       kPromptTokens);
  const double batched1_ms =
      MeasurePrefillMs(prefill_spec, prefill_weights, batched1, kPromptTokens);
  const double batched4_ms =
      MeasurePrefillMs(prefill_spec, prefill_weights, batched4, kPromptTokens);

  // NPU offload rows (ISSUE 5): fused per-layer jobs + the pipelined
  // schedule, reported as the hybrid makespan (measured CPU segments +
  // modeled NPU execution on one virtual timeline — see the glossary in
  // README.md). The unfused row is the pre-fusion granularity ablation:
  // same useful work, 3.5x the jobs, every extra job paying the co-driver
  // world switch.
  const NpuPrefillResult npu =
      MeasureNpuPrefill(prefill_spec, prefill_weights, batched1, kPromptTokens);
  EngineOptions unfused1 = batched1;
  unfused1.npu_fusion = false;
  const NpuPrefillResult npu_unfused =
      MeasureNpuPrefill(prefill_spec, prefill_weights, unfused1,
                        kPromptTokens);

  printf("\nPrefill latency (%d-token prompt):\n", kPromptTokens);
  PrintRow({"path", "threads", "ms", "vs per-pos"});
  PrintRow({"per-position", "1", Fmt("%.1f", per_pos_ms), "1.00x"});
  PrintRow({"batched x32", "1", Fmt("%.1f", batched1_ms),
            Fmt("%.2fx", per_pos_ms / batched1_ms)});
  PrintRow({"batched x32", "4", Fmt("%.1f", batched4_ms),
            Fmt("%.2fx", per_pos_ms / batched4_ms)});
  PrintRow({"npu-fused x32", "1", Fmt("%.1f", npu.makespan_ms),
            Fmt("%.2fx", per_pos_ms / npu.makespan_ms)});
  PrintRow({"npu-unfused x32", "1", Fmt("%.1f", npu_unfused.makespan_ms),
            Fmt("%.2fx", per_pos_ms / npu_unfused.makespan_ms)});
  printf(
      "npu co-driver (fused): %llu jobs/prefill, %.1f matmuls/job, config "
      "%.1f us/job, smc %.1f us/job, switch %.1f us/job measured (model "
      "%.1f), npu busy %.2f ms, cpu stall %.2f ms, wall %.1f ms\n",
      static_cast<unsigned long long>(npu.jobs), npu.matmuls_per_job,
      npu.config_us_per_job, npu.smc_us_per_job,
      npu.measured_switch_us_per_job,
      ToMillis(TeeNpuDriver::PerJobSwitchCost()) * 1e3, npu.npu_busy_ms,
      npu.stall_ms, npu.wall_ms);
  printf(
      "npu co-driver (unfused ablation): %llu jobs/prefill, makespan %.2f "
      "ms (fusion saves %.2f ms of switch overhead)\n",
      static_cast<unsigned long long>(npu_unfused.jobs),
      npu_unfused.makespan_ms, npu_unfused.makespan_ms - npu.makespan_ms);
  printf("npu fused prefill vs batched t1: %.2fx %s\n",
         batched1_ms / npu.makespan_ms,
         npu.makespan_ms < batched1_ms ? "(faster: PASS)" : "(slower: FAIL)");
  const NpuFaultPlan fault_plan = NpuFaultPlan::FromEnv();
  if (fault_plan.active()) {
    printf(
        "fault sweep (%s): %.1f faults/prefill injected, %.1f jobs "
        "recovered by retry, %.1f jobs fell back to CPU (%.1f matmuls), "
        "%.1f tickets abandoned\n",
        fault_plan.ToString().c_str(), npu.faults_injected,
        npu.jobs_recovered, npu.fallback_jobs, npu.fallback_matmuls,
        npu.jobs_abandoned);
  }

  // The ratio target was 2.5x when the seed path still allocated logits per
  // step and ran strict-serial attention dots; PR 2 gave the reference
  // engine both improvements too (DecodeStepInto, lane-split dots in the
  // fused Attend), lifting the baseline ~40%, so the ratio is re-anchored.
  // Cross-PR regressions are tracked on the absolute decode_tok_s numbers
  // in BENCH_engine.json, not this ratio.
  const double speedup_t4 = decode.back().tok_per_s / seed_tok_s;
  printf("\ndecode speedup at 4 threads vs seed scalar: %.2fx %s\n",
         speedup_t4, speedup_t4 >= 1.8 ? "(target >= 1.8x: PASS)"
                                       : "(target >= 1.8x: FAIL)");
  printf("batched prefill vs per-position: %.2fx %s\n",
         per_pos_ms / batched1_ms,
         batched1_ms < per_pos_ms ? "(faster: PASS)" : "(slower: FAIL)");

  // --- Machine-readable trajectory record. ---
  FILE* json = fopen("BENCH_engine.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    fprintf(json, "  \"model\": \"%s\",\n", spec.config().name.c_str());
    fprintf(json, "  \"simd_isa\": \"%s\",\n", simd_isa);
    // Thread-scaling rows are only meaningful relative to this: on a 1-core
    // box the blocked-simd threads_2/4 rows are flat by construction.
    fprintf(json, "  \"hardware_concurrency\": %u,\n",
            std::thread::hardware_concurrency());
    fprintf(json, "  \"decode_tokens\": %d,\n", kDecodeTokens);
    fprintf(json, "  \"prompt_tokens\": %d,\n", kPromptTokens);
    fprintf(json, "  \"decode_tok_s\": {\n");
    fprintf(json, "    \"seed_scalar\": %.2f,\n", seed_tok_s);
    fprintf(json, "    \"blocked_scalar_table\": %.2f,\n",
            scalar_blocked.tok_per_s);
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      fprintf(json, "    \"threads_%d\": %.2f%s\n", thread_counts[i],
              decode[i].tok_per_s, i + 1 < thread_counts.size() ? "," : "");
    }
    fprintf(json, "  },\n");
    // Requested -> engine-resolved lanes: rows whose resolved count is
    // smaller than the key were clamped (oversubscription), not scaling.
    fprintf(json, "  \"resolved_threads\": {\n");
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      fprintf(json, "    \"threads_%d\": %d%s\n", thread_counts[i],
              resolved_threads[i], i + 1 < thread_counts.size() ? "," : "");
    }
    fprintf(json, "  },\n");
    fprintf(json, "  \"decode_attend_ms_per_tok\": {\n");
    fprintf(json, "    \"seed_scalar\": %.4f,\n", seed.attend_ms_per_tok);
    fprintf(json, "    \"blocked_scalar_table\": %.4f,\n",
            scalar_blocked.attend_ms_per_tok);
    for (size_t i = 0; i < thread_counts.size(); ++i) {
      fprintf(json, "    \"threads_%d\": %.4f%s\n", thread_counts[i],
              decode[i].attend_ms_per_tok,
              i + 1 < thread_counts.size() ? "," : "");
    }
    fprintf(json, "  },\n");
    fprintf(json, "  \"attend_speedup_simd_vs_scalar\": %.3f,\n",
            attend_speedup);
    fprintf(json, "  \"kv_resident_bytes\": {\n");
    fprintf(json, "    \"f16\": %llu,\n",
            static_cast<unsigned long long>(decode[0].kv_resident_bytes));
    fprintf(json, "    \"f32_reference\": %llu,\n",
            static_cast<unsigned long long>(seed.kv_resident_bytes));
    fprintf(json, "    \"ratio\": %.3f\n",
            static_cast<double>(decode[0].kv_resident_bytes) /
                static_cast<double>(seed.kv_resident_bytes));
    fprintf(json, "  },\n");
    fprintf(json, "  \"decode_speedup_t4_vs_seed\": %.3f,\n", speedup_t4);
    fprintf(json, "  \"prefill_model\": \"%s\",\n",
            prefill_spec.config().name.c_str());
    fprintf(json, "  \"prefill_ms\": {\n");
    fprintf(json, "    \"per_position\": %.2f,\n", per_pos_ms);
    fprintf(json, "    \"batched_t1\": %.2f,\n", batched1_ms);
    fprintf(json, "    \"batched_t4\": %.2f,\n", batched4_ms);
    fprintf(json, "    \"npu_offload\": %.2f,\n", npu.makespan_ms);
    fprintf(json, "    \"npu_offload_unfused\": %.2f,\n",
            npu_unfused.makespan_ms);
    fprintf(json, "    \"npu_offload_wall\": %.2f\n", npu.wall_ms);
    fprintf(json, "  },\n");
    fprintf(json, "  \"npu_codriver\": {\n");
    fprintf(json, "    \"jobs_per_prefill\": %llu,\n",
            static_cast<unsigned long long>(npu.jobs));
    fprintf(json, "    \"jobs_per_prefill_unfused\": %llu,\n",
            static_cast<unsigned long long>(npu_unfused.jobs));
    fprintf(json, "    \"matmuls_per_job\": %.2f,\n", npu.matmuls_per_job);
    fprintf(json, "    \"config_us_per_job\": %.2f,\n", npu.config_us_per_job);
    fprintf(json, "    \"smc_us_per_job\": %.2f,\n", npu.smc_us_per_job);
    fprintf(json, "    \"switch_us_per_job_measured\": %.2f,\n",
            npu.measured_switch_us_per_job);
    fprintf(json, "    \"switch_us_per_job_model\": %.2f,\n",
            ToMillis(TeeNpuDriver::PerJobSwitchCost()) * 1e3);
    fprintf(json, "    \"npu_busy_ms_sim\": %.3f,\n", npu.npu_busy_ms);
    fprintf(json, "    \"cpu_stall_ms_sim\": %.3f,\n", npu.stall_ms);
    // Per-prefill degradation stats (PR 6). All zero in a clean run; the
    // fault-sweep CI leg (TZLLM_FAULT_PLAN) requires faults_injected > 0
    // and gates npu_offload against 2x batched_t1 instead of the clean
    // must-beat rule (scripts/check_bench_regression.py --fault).
    fprintf(json, "    \"faults_injected\": %.2f,\n", npu.faults_injected);
    fprintf(json, "    \"jobs_recovered\": %.2f,\n", npu.jobs_recovered);
    fprintf(json, "    \"fallback_jobs\": %.2f,\n", npu.fallback_jobs);
    fprintf(json, "    \"fallback_matmuls\": %.2f,\n", npu.fallback_matmuls);
    fprintf(json, "    \"jobs_abandoned\": %.2f\n", npu.jobs_abandoned);
    fprintf(json, "  },\n");
    fprintf(json, "  \"fault_plan\": \"%s\",\n",
            fault_plan.active() ? fault_plan.ToString().c_str() : "");
    fprintf(json, "  \"prefill_speedup_batched_vs_per_position\": %.3f\n",
            per_pos_ms / batched1_ms);
    fprintf(json, "}\n");
    fclose(json);
    printf("\nwrote BENCH_engine.json\n");
  }
  return 0;
}
