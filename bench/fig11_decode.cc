// Figure 11: token generation speed during decoding (prompt 128, output 64)
// for REE-LLM, TZ-LLM and the strawman across the four models.

#include "bench/bench_common.h"

namespace tzllm {
namespace {

double DecodeSpeed(SystemKind kind, const LlmConfig& model) {
  BenchSystem sys = BenchSystem::Create(kind, model);
  InferenceRequest req;
  req.prompt_tokens = 128;
  req.decode_tokens = 64;
  const InferenceReport report = sys.runtime->RunInference(req);
  return report.status.ok() ? report.decode_tokens_per_s : 0.0;
}

void Run() {
  PrintHeader("Figure 11",
              "Decoding speed (tokens/s), prompt 128 / output 64");
  PrintRow({"model", "REE-LLM", "TZ-LLM", "Strawman", "TZ vs REE",
            "TZ vs SM"},
           15);
  PrintRow({"-----", "-------", "------", "--------", "---------",
            "--------"},
           15);
  const double paper_vs_ree[] = {-4.9, -3.0, -1.3, -1.5};
  const double paper_vs_sm[] = {0.9, 6.7, 18.1, 23.2};
  int i = 0;
  for (const LlmConfig& model : PaperModels()) {
    const double ree = DecodeSpeed(SystemKind::kReeMemory, model);
    const double tz = DecodeSpeed(SystemKind::kTzLlm, model);
    const double sm = DecodeSpeed(SystemKind::kStrawman, model);
    PrintRow({model.name, Fmt("%.2f", ree), Fmt("%.2f", tz), Fmt("%.2f", sm),
              Fmt("%+.1f%%", (tz / ree - 1.0) * 100) + " (paper " +
                  Fmt("%+.1f", paper_vs_ree[i]) + ")",
              Fmt("%+.1f%%", (tz / sm - 1.0) * 100) + " (paper " +
                  Fmt("%+.1f", paper_vs_sm[i]) + ")"},
             15);
    ++i;
  }
  printf("\npaper (C2): TZ-LLM decodes 0.9%%~23.2%% faster than the CPU-only "
         "strawman (NPU in TEE) and 1.3%%~4.9%% slower than REE-LLM "
         "(co-driver multiplexing cost). Overhead shrinks as models grow.\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
