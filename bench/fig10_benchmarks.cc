// Figure 10: average TTFT on the three real-world benchmarks (UltraChat,
// PersonaChat, DroidTask) for all four systems and models. Uses geometric
// means across the prompt set, like §7.1.1.

#include <cmath>

#include "bench/bench_common.h"
#include "src/core/workloads.h"

namespace tzllm {
namespace {

double GeoMeanTtft(SystemKind kind, const LlmConfig& model,
                   BenchmarkId bench) {
  BenchSystem sys =
      BenchSystem::Create(kind, model, PaperStressBytes(model));
  double log_sum = 0.0;
  int count = 0;
  for (const BenchmarkPrompt& prompt : BenchmarkPrompts(bench, 8)) {
    InferenceRequest req;
    req.prompt_tokens = prompt.n_tokens;
    const InferenceReport report = sys.runtime->RunInference(req);
    if (!report.status.ok()) {
      continue;
    }
    log_sum += std::log(ToSeconds(report.ttft));
    ++count;
    // Cold start per request (benchmarks measure independent requests). A
    // failed release would leave the next request warm-started — every
    // subsequent TTFT sample would be quietly wrong, so fail loudly.
    Status released = sys.runtime->ReleaseAll();
    if (!released.ok()) {
      fprintf(stderr, "fig10: ReleaseAll failed: %s\n",
              released.ToString().c_str());
      abort();
    }
  }
  return count == 0 ? 0.0 : std::exp(log_sum / count);
}

void Run() {
  PrintHeader("Figure 10",
              "Average (geomean) TTFT on real-world benchmarks (s)");
  for (const LlmConfig& model : PaperModels()) {
    printf("\n--- %s ---\n", model.name.c_str());
    PrintRow({"benchmark", "REE-Memory", "REE-Flash", "TZ-LLM", "Strawman",
              "TZ vs SM", "TZ vs Flash"},
             13);
    for (BenchmarkId bench : AllBenchmarks()) {
      const double mem = GeoMeanTtft(SystemKind::kReeMemory, model, bench);
      const double flash = GeoMeanTtft(SystemKind::kReeFlash, model, bench);
      const double tz = GeoMeanTtft(SystemKind::kTzLlm, model, bench);
      const double sm = GeoMeanTtft(SystemKind::kStrawman, model, bench);
      PrintRow({BenchmarkShortName(bench), Fmt("%.3f", mem),
                Fmt("%.3f", flash), Fmt("%.3f", tz), Fmt("%.3f", sm),
                Fmt("-%.1f%%", (1.0 - tz / sm) * 100),
                Fmt("+%.1f%%", (tz / flash - 1.0) * 100)},
               13);
    }
  }
  printf("\npaper (C1): 76.1%%~90.9%% TTFT reduction vs the strawman; "
         "5.2%%~28.3%% overhead vs REE-LLM-Flash; overhead vs REE-Memory is "
         "largest on UltraChat (short prompts).\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
