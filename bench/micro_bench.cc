// Microbenchmarks (google-benchmark): wall-clock cost of the real
// primitives the reproduction executes functionally — crypto, quantized
// kernels, CMA state machine, buddy allocator, pipeline executor, tokenizer.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/pipeline.h"
#include "src/crypto/aes.h"
#include "src/crypto/sha256.h"
#include "src/hw/phys_mem.h"
#include "src/llm/tensor.h"
#include "src/llm/tokenizer.h"
#include "src/ree/buddy.h"
#include "src/ree/cma.h"

namespace tzllm {
namespace {

void BM_AesCtr(benchmark::State& state) {
  AesKey128 key{};
  key[0] = 1;
  AesCtr ctr(key, AesBlock{});
  std::vector<uint8_t> buf(state.range(0));
  Rng(1).FillBytes(buf.data(), buf.size());
  for (auto _ : state) {
    ctr.CryptAll(buf.data(), buf.size());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_Sha256(benchmark::State& state) {
  std::vector<uint8_t> buf(state.range(0));
  Rng(2).FillBytes(buf.data(), buf.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_QuantizeQ8(benchmark::State& state) {
  const uint64_t n = state.range(0);
  std::vector<float> src(n, 0.5f);
  std::vector<uint8_t> dst(DTypeByteSize(DType::kQ8_0, n));
  for (auto _ : state) {
    QuantizeQ8(src.data(), n, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_QuantizeQ8)->Arg(4096)->Arg(65536);

void BM_MatVecQ8(benchmark::State& state) {
  const uint64_t dim = state.range(0);
  Tensor w = MakeRandomTensor("w", DType::kQ8_0, dim, dim, 3);
  std::vector<float> x(dim, 0.1f), y(dim, 0.0f);
  for (auto _ : state) {
    MatVecQ8(w.data.data(), dim, dim, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_MatVecQ8)->Arg(64)->Arg(256)->Arg(512);

void BM_MatVecQ8Reference(benchmark::State& state) {
  // The seed's scalar float-activation kernel, kept as the baseline.
  const uint64_t dim = state.range(0);
  Tensor w = MakeRandomTensor("w", DType::kQ8_0, dim, dim, 3);
  std::vector<float> x(dim, 0.1f), y(dim, 0.0f);
  for (auto _ : state) {
    MatVecQ8Reference(w.data.data(), dim, dim, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_MatVecQ8Reference)->Arg(64)->Arg(256)->Arg(512);

void BM_MatVecQ8Threaded(benchmark::State& state) {
  const uint64_t dim = state.range(0);
  const int n_threads = static_cast<int>(state.range(1));
  Tensor w = MakeRandomTensor("w", DType::kQ8_0, dim, dim, 3);
  std::vector<float> x(dim, 0.1f), y(dim, 0.0f);
  ThreadPool pool(n_threads);
  for (auto _ : state) {
    MatVecQ8(w.data.data(), dim, dim, x.data(), y.data(), &pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_MatVecQ8Threaded)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

void BM_MatMatQ8(benchmark::State& state) {
  // Batched-prefill shape: dim x dim weights against m positions.
  const uint64_t dim = state.range(0);
  const uint64_t m = state.range(1);
  Tensor w = MakeRandomTensor("w", DType::kQ8_0, dim, dim, 3);
  std::vector<float> x(m * dim, 0.1f), y(m * dim, 0.0f);
  Q8Acts acts;
  acts.QuantizeRows(x.data(), m, dim);
  for (auto _ : state) {
    MatMatQ8(w.data.data(), dim, dim, acts, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim * m);
}
BENCHMARK(BM_MatMatQ8)->Args({256, 32})->Args({512, 32});

void BM_BuddyAllocFree(benchmark::State& state) {
  BuddyAllocator buddy(0, 1 << 18);
  for (auto _ : state) {
    auto block = buddy.AllocBlock(0);
    benchmark::DoNotOptimize(block.ok());
    if (block.ok()) {
      (void)buddy.FreeBlock(*block, 0);
    }
  }
}
BENCHMARK(BM_BuddyAllocFree);

void BM_CmaAllocContiguous(benchmark::State& state) {
  const uint64_t pages = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    PhysMemory dram(1 * kGiB);
    BuddyAllocator buddy(0, 1 << 16);
    CmaRegion cma(1 << 16, pages, &buddy, &dram);
    for (uint64_t i = 0; i < pages / 2; ++i) {
      (void)cma.BorrowMovablePage();
    }
    state.ResumeTiming();
    auto outcome = cma.AllocContiguousAt(1 << 16, pages);
    benchmark::DoNotOptimize(outcome.ok());
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_CmaAllocContiguous)->Arg(1024)->Arg(8192);

void BM_PipelineExecutor(benchmark::State& state) {
  const int extents = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<PipelineOp> ops;
    int prev_alloc = -1, prev_comp = -1;
    for (int i = 0; i < extents; ++i) {
      PipelineOp a;
      a.kind = PipelineOpKind::kAlloc;
      a.comp_index = i;
      a.duration = 1000;
      a.chunks = 4;
      if (prev_alloc >= 0) {
        a.deps.push_back(prev_alloc);
      }
      ops.push_back(a);
      prev_alloc = static_cast<int>(ops.size()) - 1;
      PipelineOp l;
      l.kind = PipelineOpKind::kLoad;
      l.comp_index = i;
      l.duration = 2000;
      l.deps = {prev_alloc};
      ops.push_back(l);
      PipelineOp d;
      d.kind = PipelineOpKind::kDecrypt;
      d.comp_index = i;
      d.duration = 1500;
      d.chunks = 2;
      d.deps = {static_cast<int>(ops.size()) - 1};
      ops.push_back(d);
      PipelineOp c;
      c.kind = PipelineOpKind::kComputeNpu;
      c.comp_index = i;
      c.duration = 2500;
      c.deps = {static_cast<int>(ops.size()) - 1};
      if (prev_comp >= 0) {
        c.deps.push_back(prev_comp);
      }
      ops.push_back(c);
      prev_comp = static_cast<int>(ops.size()) - 1;
    }
    Simulator sim;
    PipelineConfig config;
    PipelineExecutor exec(&sim, config);
    state.ResumeTiming();
    auto result = exec.RunToCompletion(std::move(ops));
    benchmark::DoNotOptimize(result.makespan);
  }
}
BENCHMARK(BM_PipelineExecutor)->Arg(32)->Arg(130);

void BM_TokenizerEncode(benchmark::State& state) {
  Tokenizer tokenizer(32000);
  std::string text;
  for (int i = 0; i < 64; ++i) {
    text += "the user opened the app and asked the assistant a question ";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Encode(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_TokenizerEncode);

}  // namespace
}  // namespace tzllm

BENCHMARK_MAIN();
