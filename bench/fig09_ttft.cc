// Figure 9: end-to-end TTFT of the four systems across the four models and
// prompt lengths {32, 128, 512}, under the paper's worst-case memory
// pressure. Also prints the §7.1.1 ablation decomposition for Llama-3-8B.

#include "bench/bench_common.h"

namespace tzllm {
namespace {

SimDuration Ttft(SystemKind kind, const LlmConfig& model, int prompt,
                 SchedulePolicy policy = SchedulePolicy::kPriorityPreemptive,
                 bool pipelined = true, bool use_npu = true,
                 bool checkpoint = true) {
  BenchSystem sys;
  sys.platform = std::make_unique<SocPlatform>();
  RuntimeConfig config;
  config.model = model;
  config.system = kind;
  config.policy = policy;
  config.pipelined = pipelined;
  config.use_npu = use_npu;
  config.checkpoint = checkpoint;
  sys.runtime = std::make_unique<SystemRuntime>(sys.platform.get(), config);
  if (!sys.runtime->Setup().ok()) {
    return 0;
  }
  // A failed pressure map must not silently measure the unstressed case
  // and report it as worst-case: mark the cell unavailable instead.
  Status pressure = sys.runtime->stress().MapPressure(PaperStressBytes(model),
                                                      false);
  if (!pressure.ok()) {
    fprintf(stderr, "fig09: stress MapPressure failed, skipping cell: %s\n",
            pressure.ToString().c_str());
    return 0;
  }
  InferenceRequest req;
  req.prompt_tokens = prompt;
  const InferenceReport report = sys.runtime->RunInference(req);
  return report.status.ok() ? report.ttft : 0;
}

void Run() {
  PrintHeader("Figure 9",
              "TTFT (s) under fixed prompt lengths, worst-case stress");
  for (const LlmConfig& model : PaperModels()) {
    printf("\n--- %s (%s Q8_0) ---\n", model.name.c_str(),
           FormatBytes(ModelSpec::Create(model).total_param_bytes()).c_str());
    PrintRow({"prompt", "REE-Memory", "REE-Flash", "TZ-LLM", "Strawman",
              "TZ vs SM", "TZ vs Flash"},
             13);
    for (int prompt : {32, 128, 512}) {
      const SimDuration mem = Ttft(SystemKind::kReeMemory, model, prompt);
      const SimDuration flash = Ttft(SystemKind::kReeFlash, model, prompt);
      const SimDuration tz = Ttft(SystemKind::kTzLlm, model, prompt);
      const SimDuration sm = Ttft(SystemKind::kStrawman, model, prompt);
      PrintRow({Fmt("%.0f", prompt), Seconds(mem), Seconds(flash),
                Seconds(tz), Seconds(sm),
                Fmt("-%.1f%%", (1.0 - ToSeconds(tz) / ToSeconds(sm)) * 100),
                Fmt("+%.1f%%",
                    (ToSeconds(tz) / ToSeconds(flash) - 1.0) * 100)},
               13);
    }
  }

  printf("\npaper: TZ-LLM reduces TTFT by 77.1%%~91.1%% vs the strawman and "
         "adds 2.5%%~55.3%% vs REE-LLM-Flash.\n");

  // §7.1.1 decomposition: which optimization buys what (Llama-3-8B, 512).
  printf("\n--- §7.1.1 ablation (Llama-3-8B, 512 tokens): TTFT as "
         "optimizations stack ---\n");
  const LlmConfig model = Llama3_8B();
  struct Step {
    const char* label;
    bool use_npu, checkpoint, pipelined;
    SchedulePolicy policy;
  };
  const Step steps[] = {
      {"strawman (none)", false, false, false, SchedulePolicy::kFifo},
      {"+ NPU", true, false, false, SchedulePolicy::kFifo},
      {"+ checkpoint", true, true, false, SchedulePolicy::kFifo},
      {"+ pipeline (full TZ-LLM)", true, true, true,
       SchedulePolicy::kPriorityPreemptive},
  };
  SimDuration prev = 0;
  for (const Step& s : steps) {
    const SimDuration t = Ttft(SystemKind::kTzLlm, model, 512, s.policy,
                               s.pipelined, s.use_npu, s.checkpoint);
    if (prev == 0) {
      PrintRow({s.label, Seconds(t), ""}, 28);
    } else {
      PrintRow({s.label, Seconds(t),
                Fmt("-%.1f%%", (1.0 - ToSeconds(t) / ToSeconds(prev)) * 100)},
               28);
    }
    prev = t;
  }
  printf("paper: NPU -87.2%%, checkpoint -36.8%%, pipeline -40.6%% "
         "(each relative to the previous step).\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
