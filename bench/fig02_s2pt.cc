// Figure 2: Geekbench scores with stage-2 translation (S2PT, 4 KB granule)
// enabled vs disabled — the elastic-memory alternative TZ-LLM rejects
// (§2.4.2) because its overhead is continuous rather than transient.

#include "bench/bench_common.h"
#include "src/core/geekbench.h"

namespace tzllm {
namespace {

void Run() {
  PrintHeader("Figure 2",
              "Geekbench scores with S2PT enabled/disabled (4 KB mappings)");
  PrintRow({"workload", "S2PT off", "S2PT on", "overhead %", "paper %"}, 15);
  PrintRow({"--------", "--------", "-------", "----------", "-------"}, 15);
  const double paper[] = {4.3, 9.8, 0.6, 3.7, 1.3, 1.4, 1.8, 0.2,
                          0.6, 0.9, 5.2, 0.8, 1.7, 0.2, 0.3, -0.1};
  double sum = 0.0;
  double max = 0.0;
  const auto& suite = GeekbenchSuite();
  for (size_t i = 0; i < suite.size(); ++i) {
    const GeekbenchWorkload& w = suite[i];
    const double with = ScoreWithS2pt(w);
    const double pct = S2ptOverheadPercent(w);
    sum += pct;
    max = std::max(max, pct);
    PrintRow({w.name, Fmt("%.0f", w.base_score), Fmt("%.0f", with),
              Fmt("%.1f", pct), Fmt("%.1f", paper[i])},
             15);
  }
  printf("\nmax overhead: %.1f%% (paper: 9.8%%), average: %.1f%% "
         "(paper: 2.0%%)\n",
         max, sum / suite.size());
  printf("S2PT cost is continuous (paid whenever protection is armed); "
         "CMA migration cost is transient (Figure 16).\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
