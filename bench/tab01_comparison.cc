// Table 1: qualitative comparison of TEE-based model-protection approaches.
// The TZ-LLM row's properties are backed by this repository's tests; the
// other rows restate the paper's literature analysis (§2.4.1).

#include <cstdio>

#include "bench/bench_common.h"

namespace tzllm {
namespace {

void Run() {
  PrintHeader("Table 1",
              "TEE-based model protection approaches vs TZ-LLM (§2.4.1)");
  PrintRow({"approach", "perf", "accel use", "end2end sec", "no model mod",
            "quant", "mem scaling"},
           22);
  PrintRow({"--------", "----", "---------", "-----------", "------------",
            "-----", "-----------"},
           22);
  PrintRow({"Shield entire model", "*", "No", "yes", "yes", "yes", "no"}, 22);
  PrintRow({"Obfuscation TSLP", "**", "REE only", "no", "yes", "no", "no"},
           22);
  PrintRow({"TSQP", "**", "REE only", "no", "no", "yes", "no"}, 22);
  PrintRow({"TEESlice", "**", "REE only", "no", "no", "no", "no"}, 22);
  PrintRow({"StrongBox", "**", "TEE-REE share", "no", "yes", "yes", "no"},
           22);
  PrintRow({"SecDeep", "**", "TEE only", "yes", "yes", "yes", "no"}, 22);
  PrintRow({"TZ-LLM (this repo)", "***", "TEE-REE share", "yes", "yes",
            "yes", "yes"},
           22);
  printf(
      "\nEvidence for the TZ-LLM row in this reproduction:\n"
      "  accelerator use ....... co-driver NPU time-sharing "
      "(tests/tee_npu_driver_test.cc, bench fig15)\n"
      "  end-to-end security ... params+KV+activations inside TZASC regions "
      "(tests/core_security_test.cc)\n"
      "  no model modification . stock Q8_0 checkpoint in the TZGUF "
      "container (tests/llm_tzguf_test.cc)\n"
      "  quantization .......... Q8_0 kernels everywhere "
      "(tests/llm_tensor_test.cc)\n"
      "  memory scaling ........ extend/shrink elastic secure memory "
      "(tests/tee_tee_os_test.cc, bench fig14)\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
