// Figure 3: time to allocate the Llama-3-8B parameter memory (~8 GiB) with
// the buddy system (4 KB pages, no contiguity) vs CMA (contiguous), under
// 0..6 GiB of REE memory pressure.

#include "bench/bench_common.h"
#include "src/ree/stress.h"

namespace tzllm {
namespace {

SimDuration BuddyAllocTime(uint64_t pressure_bytes, uint64_t alloc_bytes) {
  SocPlatform plat;
  ReeMemoryLayout layout;
  layout.dram_bytes = plat.config().dram_bytes;
  layout.kernel_bytes = kReeBaseUsage;
  layout.cma_bytes = 8ull * kGiB + 256 * kMiB;
  layout.cma2_bytes = 512 * kMiB;
  ReeMemoryManager mm(layout, &plat.dram());
  StressWorkload stress(&mm, &plat.dram());
  if (pressure_bytes > 0 &&
      !stress.MapPressure(pressure_bytes, false).ok()) {
    return 0;
  }
  std::vector<uint64_t> pages;
  SimDuration cpu_time = 0;
  if (!mm.AllocMovablePages(BytesToPages(alloc_bytes), &pages, &cpu_time)
           .ok()) {
    return 0;
  }
  return cpu_time;
}

SimDuration CmaAllocTime(uint64_t pressure_bytes, uint64_t alloc_bytes) {
  SocPlatform plat;
  ReeMemoryLayout layout;
  layout.dram_bytes = plat.config().dram_bytes;
  layout.kernel_bytes = kReeBaseUsage;
  layout.cma_bytes = 8ull * kGiB + 256 * kMiB;
  layout.cma2_bytes = 512 * kMiB;
  ReeMemoryManager mm(layout, &plat.dram());
  StressWorkload stress(&mm, &plat.dram());
  if (pressure_bytes > 0 &&
      !stress.MapPressure(pressure_bytes, false).ok()) {
    return 0;
  }
  auto outcome = mm.param_cma().AllocContiguousAt(
      mm.param_cma().base_pfn(), BytesToPages(alloc_bytes));
  if (!outcome.ok()) {
    return 0;
  }
  return outcome->cpu_time;
}

void Run() {
  PrintHeader("Figure 3",
              "8 GiB allocation time vs REE memory pressure (buddy vs CMA, "
              "single-threaded)");
  const uint64_t alloc = 8ull * kGiB;
  PrintRow({"pressure (GiB)", "buddy (s)", "CMA (s)", "migrated (approx)"},
           18);
  PrintRow({"--------------", "---------", "-------", "-----------------"},
           18);
  for (uint64_t pressure = 0; pressure <= 6; ++pressure) {
    const SimDuration buddy = BuddyAllocTime(pressure * kGiB, alloc);
    const SimDuration cma = CmaAllocTime(pressure * kGiB, alloc);
    const double migrated_gib =
        (ToSeconds(cma) - ToSeconds(buddy)) /
        ToSeconds(CmaRegion::MigrationCpuTime(BytesToPages(kGiB), 0));
    PrintRow({Fmt("%.0f", static_cast<double>(pressure)), Seconds(buddy),
              Seconds(cma), Fmt("%.1f GiB", std::max(0.0, migrated_gib))},
             18);
  }
  printf("\npaper: buddy stays flat (~0.4 s); CMA rises with pressure to "
         "~4.2 s at 6 GB (1.9 GB/s single-threaded migration).\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
