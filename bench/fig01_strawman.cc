// Figure 1: the strawman workflow of LLM inference in TEE — per-step time
// and memory for a cold start of 8-bit Llama-3-8B with a 512-token prompt.

#include "bench/bench_common.h"
#include "src/tee/checkpoint.h"

namespace tzllm {
namespace {

void Run() {
  PrintHeader("Figure 1", "Strawman TEE inference workflow breakdown "
                          "(Llama-3-8B, 512-token prompt, worst-case stress)");
  const LlmConfig model = Llama3_8B();
  BenchSystem sys = BenchSystem::Create(SystemKind::kStrawman, model,
                                        PaperStressBytes(model));
  InferenceRequest req;
  req.prompt_tokens = 512;
  req.decode_tokens = 4;
  const InferenceReport report = sys.runtime->RunInference(req);
  if (!report.status.ok()) {
    printf("FAILED: %s\n", report.status.ToString().c_str());
    return;
  }
  const ModelSpec& spec = sys.runtime->spec();
  const PipelineResult& pipe = report.prefill_pipeline;

  PrintRow({"step", "paper", "measured", "memory"}, 22);
  PrintRow({"----", "-----", "--------", "------"}, 22);
  PrintRow({"llama.cpp meta init", "447.1 ms",
            Fmt("%.1f ms", ToMillis(kLlamaMetaInitTime)), "40.5 MB"},
           22);
  PrintRow({"llama.cpp boot", "59.38 ms",
            Fmt("%.1f ms", ToMillis(kLlamaBootTime)), "39.2 MB"},
           22);
  PrintRow({"tokenizer init", "1799 ms",
            Fmt("%.1f ms", ToMillis(kTokenizerInitTime)), "60.9 MB"},
           22);
  PrintRow({"KV+activation alloc", "170.0 ms",
            Fmt("%.1f ms", ToMillis(report.scratch_alloc_time)),
            FormatBytes(spec.KvCacheBytes(524) + spec.ActivationBytes())},
           22);
  PrintRow({"param alloc (CMA)", "4182 ms",
            Fmt("%.1f ms", ToMillis(pipe.sum_alloc)),
            FormatBytes(spec.total_param_bytes())},
           22);
  PrintRow({"param load", "4054 ms", Fmt("%.1f ms", ToMillis(pipe.sum_load)),
            "-"},
           22);
  PrintRow({"param decrypt (4 thr)", "891.9 ms",
            Fmt("%.1f ms", ToMillis(pipe.sum_decrypt / 4)), "-"},
           22);
  PrintRow({"CPU prefill", "164558 ms",
            Fmt("%.1f ms", ToMillis(pipe.sum_cpu_compute)), "-"},
           22);
  printf("\n");
  PrintRow({"TOTAL cold-start TTFT", "~176 s",
            Fmt("%.1f s", ToSeconds(report.ttft)), ""},
           22);
  printf("\nDecode (CPU only): %.2f tokens/s\n", report.decode_tokens_per_s);
  printf("Cold start overhead vs compute: %.1f s of restoration + %.1f s "
         "of init before the first token.\n",
         ToSeconds(pipe.sum_alloc + pipe.sum_load + pipe.sum_decrypt / 4),
         ToSeconds(report.init_time));
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
