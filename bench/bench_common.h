// Shared helpers for the figure-reproduction benchmark harness: one-call
// system construction, and fixed-width table output so every bench prints
// the same rows/series the paper reports.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/runtime.h"

namespace tzllm {

// A fully wired system instance (platform + runtime) with optional memory
// pressure already applied.
struct BenchSystem {
  std::unique_ptr<SocPlatform> platform;
  std::unique_ptr<SystemRuntime> runtime;

  static BenchSystem Create(SystemKind kind, const LlmConfig& model,
                            uint64_t stress_bytes = 0,
                            SchedulePolicy policy =
                                SchedulePolicy::kPriorityPreemptive,
                            bool pipelined = true) {
    BenchSystem out;
    out.platform = std::make_unique<SocPlatform>();
    RuntimeConfig config;
    config.model = model;
    config.system = kind;
    config.policy = policy;
    config.pipelined = pipelined;
    out.runtime = std::make_unique<SystemRuntime>(out.platform.get(), config);
    Status st = out.runtime->Setup();
    if (!st.ok()) {
      fprintf(stderr, "bench setup failed: %s\n", st.ToString().c_str());
      abort();
    }
    if (stress_bytes > 0) {
      st = out.runtime->stress().MapPressure(stress_bytes,
                                             /*dirty_pages=*/false);
      if (!st.ok()) {
        fprintf(stderr, "stress failed: %s\n", st.ToString().c_str());
        abort();
      }
    }
    return out;
  }
};

// The paper's §7 worst-case memory pressure per model (GiB): 13 / 11 / 10 /
// 6 for TinyLlama / Qwen / Phi-3 / Llama-3.
inline uint64_t PaperStressBytes(const LlmConfig& model) {
  if (model.name == "TinyLlama-1.1B") {
    return 13ull * kGiB;
  }
  if (model.name == "Qwen2.5-3B") {
    return 11ull * kGiB;
  }
  if (model.name == "Phi-3-3.8B") {
    return 10ull * kGiB;
  }
  return 6ull * kGiB;
}

inline void PrintHeader(const std::string& figure, const std::string& title) {
  printf("\n================================================================\n");
  printf("%s — %s\n", figure.c_str(), title.c_str());
  printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 16) {
  for (const std::string& cell : cells) {
    printf("%-*s", width, cell.c_str());
  }
  printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Seconds(SimDuration d) {
  return Fmt("%.3f", ToSeconds(d));
}

}  // namespace tzllm

#endif  // BENCH_BENCH_COMMON_H_
