// Figure 14 (ISSUE 9): TTFT vs shared-prefix proportion on the real
// engine. The paper's caching claim (C3): reuse makes time-to-first-token
// fall roughly linearly with the cached proportion. Here the cache is the
// paged KV prefix registry: a warm request registers its prompt's pages,
// and a later request whose prompt shares a token prefix adopts those
// pages copy-on-write and prefills only the divergent tail.
//
// The harness registers a ~96-token base prompt once, then sweeps
// FIXED-LENGTH requests whose prompts share {0, 25, 50, 75, 100}% of it,
// the rest unique text (so only the base portion can hit, and every point
// prefills the same prompt length). TTFT is the wall time
// from AdmitSession through the final prefill chunk (the first sampled
// token), median of three trials. The page pool is deliberately smaller
// than the registry's working set so cold prefix pages spill to encrypted
// REE memory and come back through the restore path mid-sweep. Every
// request's tokens are checked bit-identical against a flat (unpaged)
// reference engine. Emits BENCH_caching.json for the CI guard
// (scripts/check_bench_regression.py --caching).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/runtime.h"
#include "src/llm/kv_page_pool.h"
#include "src/llm/simd/kernels.h"

namespace tzllm {
namespace {

using WallClock = std::chrono::steady_clock;

constexpr int kPagePositions = 8;
constexpr int kPrefillBatch = 16;
constexpr int kDecodeBudget = 16;
constexpr int kTrials = 3;
constexpr int kMaxCtx = 192;
// Pool frames: the floor the engine enforces (one full context resident —
// a decode step pins every page of its session), and far below the
// registry's working set (base prompt + every trial's registered prefix),
// so the LRU spills cold prefix pages and later adoptions exercise
// restore.
constexpr int kPoolFrames = kMaxCtx / kPagePositions;
const int kProportions[] = {0, 25, 50, 75, 100};

LlmConfig CachingModel() {
  LlmConfig c = TestSmallModel();  // 4 layers, d=128.
  c.max_ctx = kMaxCtx;
  return c;
}

// ~96 tokens under the byte-fallback tokenizer (reported exactly at run
// time from the warm request's prompt_tokens).
std::string BasePrompt() {
  return "system: you are the on-device assistant. policy: keep answers "
         "short, never leave the enclave, prefer cached context. tools: "
         "none. persona: terse.";
}

// Builds the trial prompt at a CONSTANT total length: the first
// `proportion`% comes from the base prompt, the remainder is unique text
// (distinct from its first byte, so trials never share tokens with each
// other beyond the deliberate base portion). Holding the length fixed is
// what makes the sweep the paper's experiment — every point prefills the
// same amount of prompt, only the cached share varies.
std::string TrialPrompt(const std::string& base, int proportion, int trial) {
  const std::string shared = base.substr(0, base.size() * proportion / 100);
  std::string tail = std::to_string(proportion * 10 + trial) +
                     "? user asks a fresh question with an unshared tail ";
  const size_t target = base.size() + 48;
  while (shared.size() + tail.size() < target) {
    tail += "more unshared filler words for the cold remainder ";
  }
  tail.resize(target - shared.size());
  return shared + tail;
}

struct TrialResult {
  double ttft_ms = 0.0;
  int prompt_tokens = 0;
  int adopted_positions = 0;
  bool tokens_identical = false;
};

struct SweepPoint {
  int proportion = 0;
  double ttft_ms = 0.0;  // Median of kTrials.
  int prompt_tokens = 0;
  double adopted_mean = 0.0;
  uint64_t prefix_hits = 0;    // Across the point's trials.
  uint64_t page_restores = 0;  // Delta across the point's trials.
  bool tokens_identical = false;
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// One request through the paged engine: TTFT measured over admission +
// chunked prefill (prefix adoption happens inside AdmitSession), then
// decode to completion and a bit-identity check against the flat
// reference.
TrialResult RunTrial(LlmTa* paged, LlmTa* flat, const std::string& prompt) {
  const KvArena* arena = paged->kv_arena();
  const uint64_t adopted_before = arena->prefix_stats().adopted_positions;

  const auto t0 = WallClock::now();
  auto sid = paged->AdmitSession(prompt, kDecodeBudget);
  if (!sid.ok()) {
    fprintf(stderr, "admit failed: %s\n", sid.status().ToString().c_str());
    abort();
  }
  for (;;) {
    auto finished = paged->PrefillSessionChunk(*sid);
    if (!finished.ok()) {
      fprintf(stderr, "prefill failed: %s\n",
              finished.status().ToString().c_str());
      abort();
    }
    if (*finished) {
      break;  // First token sampled: TTFT stops here.
    }
  }
  TrialResult out;
  out.ttft_ms =
      std::chrono::duration<double>(WallClock::now() - t0).count() * 1e3;
  out.adopted_positions = static_cast<int>(
      arena->prefix_stats().adopted_positions - adopted_before);

  while (!paged->session_done(*sid)) {
    const Status step = paged->DecodeSessions({*sid});
    if (!step.ok()) {
      fprintf(stderr, "decode failed: %s\n", step.ToString().c_str());
      abort();
    }
  }
  auto generation = paged->FinishSession(*sid);
  if (!generation.ok()) {
    fprintf(stderr, "finish failed: %s\n",
            generation.status().ToString().c_str());
    abort();
  }
  out.prompt_tokens = static_cast<int>(generation->prompt_tokens.size());

  auto reference = flat->Generate(prompt, kDecodeBudget);
  if (!reference.ok()) {
    fprintf(stderr, "flat reference failed: %s\n",
            reference.status().ToString().c_str());
    abort();
  }
  out.tokens_identical =
      generation->output_tokens == reference->output_tokens;
  return out;
}

}  // namespace
}  // namespace tzllm

int main() {
  using namespace tzllm;

  const ModelSpec spec = ModelSpec::Create(CachingModel());
  const uint64_t pool_bytes =
      kPoolFrames *
      KvPagePool::PageBytes(spec, KvStorage::kF16, kPagePositions);

  RuntimeConfig paged_config;
  paged_config.model = CachingModel();
  paged_config.system = SystemKind::kTzLlm;
  paged_config.materialize_model = true;
  paged_config.engine.prefill_batch = kPrefillBatch;
  paged_config.engine.max_sessions = 2;
  paged_config.engine.paged_kv = true;
  paged_config.engine.kv_page_positions = kPagePositions;
  paged_config.engine.kv_pool_bytes = pool_bytes;
  SocPlatform paged_plat;
  SystemRuntime paged_runtime(&paged_plat, paged_config);
  if (!paged_runtime.Setup().ok()) {
    fprintf(stderr, "paged setup failed\n");
    return 1;
  }
  auto paged = paged_runtime.CreateFunctionalTa();
  if (!paged.ok() ||
      !(*paged)->LoadModel(paged_runtime.spec().config().name).ok()) {
    fprintf(stderr, "paged model load failed\n");
    return 1;
  }

  RuntimeConfig flat_config = paged_config;
  flat_config.engine.max_sessions = 1;
  flat_config.engine.paged_kv = false;
  flat_config.engine.kv_pool_bytes = 0;
  SocPlatform flat_plat;
  SystemRuntime flat_runtime(&flat_plat, flat_config);
  if (!flat_runtime.Setup().ok()) {
    fprintf(stderr, "flat setup failed\n");
    return 1;
  }
  auto flat = flat_runtime.CreateFunctionalTa();
  if (!flat.ok() ||
      !(*flat)->LoadModel(flat_runtime.spec().config().name).ok()) {
    fprintf(stderr, "flat model load failed\n");
    return 1;
  }

  PrintHeader("Figure 14", "TTFT vs shared-prefix proportion (paged KV)");
  printf("model=%s  pages=%d frames (%d positions each)  prefill_batch=%d  "
         "simd=%s\n",
         paged_runtime.spec().config().name.c_str(), kPoolFrames,
         kPagePositions, kPrefillBatch, SimdIsaName(ActiveKernels()->isa));

  const std::string base = BasePrompt();
  // Warm request: registers the base prompt's pages in the prefix registry
  // (and streams the weights once, so trial TTFTs measure prefill, not
  // first-touch effects). The flat engine gets the same warmup.
  int base_tokens = 0;
  {
    auto warm = (*paged)->Generate(base, 4);
    auto flat_warm = (*flat)->Generate(base, 4);
    if (!warm.ok() || !flat_warm.ok()) {
      fprintf(stderr, "warmup failed\n");
      return 1;
    }
    base_tokens = static_cast<int>(warm->prompt_tokens.size());
  }
  printf("base prompt: %d tokens (%zu chars)\n\n", base_tokens, base.size());

  const KvArena* arena = (*paged)->kv_arena();
  std::vector<SweepPoint> points;
  bool all_identical = true;
  for (const int proportion : kProportions) {
    SweepPoint point;
    point.proportion = proportion;
    point.tokens_identical = true;
    const uint64_t hits_before = arena->prefix_stats().hits;
    const uint64_t restores_before = arena->pool()->stats().restores;
    std::vector<double> ttft_ms;
    uint64_t adopted_total = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const TrialResult r = RunTrial(paged->get(), flat->get(),
                                     TrialPrompt(base, proportion, trial));
      ttft_ms.push_back(r.ttft_ms);
      adopted_total += r.adopted_positions;
      point.prompt_tokens = r.prompt_tokens;
      point.tokens_identical = point.tokens_identical && r.tokens_identical;
    }
    point.ttft_ms = Median(ttft_ms);
    point.adopted_mean = static_cast<double>(adopted_total) / kTrials;
    point.prefix_hits = arena->prefix_stats().hits - hits_before;
    point.page_restores = arena->pool()->stats().restores - restores_before;
    all_identical = all_identical && point.tokens_identical;
    points.push_back(point);
  }

  PrintRow({"shared %", "ttft ms", "vs cold", "prompt tok", "adopted",
            "restores", "tokens"},
           12);
  const double cold_ms = points.front().ttft_ms;
  for (const SweepPoint& p : points) {
    PrintRow({std::to_string(p.proportion), Fmt("%.2f", p.ttft_ms),
              Fmt("%.3f", p.ttft_ms / cold_ms),
              std::to_string(p.prompt_tokens), Fmt("%.1f", p.adopted_mean),
              std::to_string(p.page_restores),
              p.tokens_identical ? "identical" : "DIVERGED"},
             12);
  }

  const KvPageStats& pool_stats = arena->pool()->stats();
  const KvArena::PrefixStats& prefix = arena->prefix_stats();
  const double hit_rate =
      prefix.lookups > 0 ? static_cast<double>(prefix.hits) / prefix.lookups
                         : 0.0;
  // The guard's claim: once at least half the prompt is shared, adopting
  // the registered pages beats recomputing them.
  bool warm_beats_cold = true;
  for (const SweepPoint& p : points) {
    if (p.proportion >= 50 && !(p.ttft_ms < cold_ms)) {
      warm_beats_cold = false;
    }
  }
  printf("\nshared >= 50%% TTFT below cold: %s\n",
         warm_beats_cold ? "yes (PASS)" : "NO (FAIL)");
  printf("prefix hit rate: %.2f (%llu/%llu)  adopted positions: %llu\n",
         hit_rate, static_cast<unsigned long long>(prefix.hits),
         static_cast<unsigned long long>(prefix.lookups),
         static_cast<unsigned long long>(prefix.adopted_positions));
  printf("page traffic: %llu spills, %llu restores, %llu cow copies\n",
         static_cast<unsigned long long>(pool_stats.spills),
         static_cast<unsigned long long>(pool_stats.restores),
         static_cast<unsigned long long>(pool_stats.cow_copies));
  printf("tokens vs flat reference: %s\n",
         all_identical ? "identical (PASS)" : "DIVERGED (FAIL)");
  printf("\npaper (C3): TTFT falls roughly linearly with the shared "
         "proportion — the adopted pages' prefill is skipped outright, so "
         "the remaining cost is the unshared tail plus page management.\n");

  FILE* json = fopen("BENCH_caching.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    fprintf(json, "  \"model\": \"%s\",\n", paged_config.model.name.c_str());
    fprintf(json, "  \"simd_isa\": \"%s\",\n",
            SimdIsaName(ActiveKernels()->isa));
    fprintf(json, "  \"hardware_concurrency\": %u,\n",
            std::thread::hardware_concurrency());
    fprintf(json, "  \"page_positions\": %d,\n", kPagePositions);
    fprintf(json, "  \"pool_frames\": %d,\n", kPoolFrames);
    fprintf(json, "  \"pool_bytes\": %llu,\n",
            static_cast<unsigned long long>(pool_bytes));
    fprintf(json, "  \"prefill_batch\": %d,\n", kPrefillBatch);
    fprintf(json, "  \"decode_budget\": %d,\n", kDecodeBudget);
    fprintf(json, "  \"trials\": %d,\n", kTrials);
    fprintf(json, "  \"base_prompt_tokens\": %d,\n", base_tokens);
    fprintf(json, "  \"points\": {\n");
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      fprintf(json,
              "    \"%d\": {\"ttft_ms\": %.3f, \"ttft_vs_cold\": %.4f, "
              "\"prompt_tokens\": %d, \"adopted_positions_mean\": %.1f, "
              "\"prefix_hits\": %llu, \"page_restores\": %llu, "
              "\"tokens_identical\": %s}%s\n",
              p.proportion, p.ttft_ms, p.ttft_ms / cold_ms, p.prompt_tokens,
              p.adopted_mean, static_cast<unsigned long long>(p.prefix_hits),
              static_cast<unsigned long long>(p.page_restores),
              p.tokens_identical ? "true" : "false",
              i + 1 < points.size() ? "," : "");
    }
    fprintf(json, "  },\n");
    fprintf(json, "  \"prefix_hit_rate\": %.4f,\n", hit_rate);
    fprintf(json, "  \"prefix_lookups\": %llu,\n",
            static_cast<unsigned long long>(prefix.lookups));
    fprintf(json, "  \"prefix_hits\": %llu,\n",
            static_cast<unsigned long long>(prefix.hits));
    fprintf(json, "  \"adopted_positions\": %llu,\n",
            static_cast<unsigned long long>(prefix.adopted_positions));
    fprintf(json, "  \"page_spills\": %llu,\n",
            static_cast<unsigned long long>(pool_stats.spills));
    fprintf(json, "  \"page_restores\": %llu,\n",
            static_cast<unsigned long long>(pool_stats.restores));
    fprintf(json, "  \"cow_copies\": %llu,\n",
            static_cast<unsigned long long>(pool_stats.cow_copies));
    fprintf(json, "  \"warm_ttft_below_cold\": %s,\n",
            warm_beats_cold ? "true" : "false");
    fprintf(json, "  \"tokens_identical\": %s\n",
            all_identical ? "true" : "false");
    fprintf(json, "}\n");
    fclose(json);
    printf("wrote BENCH_caching.json\n");
  }
  return (warm_beats_cold && all_identical) ? 0 : 1;
}
