// Figure 14: TTFT vs partial-parameter-cache proportion (0%..100%) for
// Qwen2.5-3B and Llama-3-8B across prompt lengths, normalized to the 0%
// (fully cold) TTFT. Claim C3: roughly linear decrease up to a threshold
// set by the computation time, then flat.

#include "bench/bench_common.h"

namespace tzllm {
namespace {

SimDuration TtftWithCache(const LlmConfig& model, int prompt,
                          double proportion) {
  BenchSystem sys = BenchSystem::Create(SystemKind::kTzLlm, model,
                                        PaperStressBytes(model));
  // Populate the cache, then measure a request that reuses it.
  InferenceRequest warm;
  warm.prompt_tokens = 16;
  warm.cache_proportion_after = proportion;
  if (!sys.runtime->RunInference(warm).status.ok()) {
    return 0;
  }
  InferenceRequest req;
  req.prompt_tokens = prompt;
  req.cache_proportion_after = proportion;
  const InferenceReport report = sys.runtime->RunInference(req);
  return report.status.ok() ? report.ttft : 0;
}

void Run() {
  PrintHeader("Figure 14",
              "Normalized TTFT vs cached parameter proportion");
  for (const LlmConfig& model : {Qwen2_5_3B(), Llama3_8B()}) {
    printf("\n--- %s (normalized to 0%% cache) ---\n", model.name.c_str());
    PrintRow({"cache %", "len=32", "len=128", "len=256", "len=384",
              "len=512"},
             12);
    const int lengths[] = {32, 128, 256, 384, 512};
    double base[5] = {0};
    for (int c = 0; c <= 100; c += 25) {
      std::vector<std::string> row = {Fmt("%.0f", c)};
      for (int li = 0; li < 5; ++li) {
        const SimDuration t = TtftWithCache(model, lengths[li], c / 100.0);
        if (c == 0) {
          base[li] = ToSeconds(t);
        }
        row.push_back(Fmt("%.3f", ToSeconds(t) / base[li]));
      }
      PrintRow(row, 12);
    }
  }
  printf("\npaper (C3): TTFT decreases ~linearly with the cache proportion "
         "up to a threshold, after which restoration is fully hidden under "
         "computation; the threshold comes earlier for longer prompts.\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
