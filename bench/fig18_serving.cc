// Figure 18 (ISSUE 8): multi-session serving throughput on one TA.
//
// The serving runtime admits N concurrent sessions onto a single LlmTa and
// drives them with the continuous-batching scheduler; the enabling kernel
// win is the batched decode step — one MatMatQ8 per layer across every
// running session's current position, so the weights stream through the
// cache hierarchy once per step regardless of N, where N solo decodes
// stream them N times. This harness sweeps N over {1, 2, 4, 8} on the
// bench-large model (weights far outgrow LLC — weight reuse is the whole
// point) and reports aggregate decode throughput — decode tokens over time
// spent inside batched decode steps, the N-comparable number (prefill cost
// is a latency question and is reported as TTFT, not folded into decode
// throughput) — plus per-request TTFT and inter-token latency
// distributions. It then verifies the serving outputs are BIT-IDENTICAL
// per prompt to solo generation, and exercises a checkpoint-eviction
// scenario under slot pressure.
//
// The chaos section (ISSUE 10) reruns the 16-session over-subscription
// traffic with armed serve-fault plans — every KV page spill tampered or
// dropped, every sealed session checkpoint deleted — and a repeated
// ta_crash + ServingRuntime::Recover() cycle; every run must still finish
// all requests with bit-identical tokens. Emits BENCH_serving.json for the
// CI guards (scripts/check_bench_regression.py --serving / --chaos).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/runtime.h"
#include "src/llm/simd/kernels.h"
#include "src/serve/serving.h"

namespace tzllm {
namespace {

using WallClock = std::chrono::steady_clock;

constexpr int kDecodeBudget = 48;
const std::vector<int> kSessionCounts = {1, 2, 4, 8};

// Decode-time weight reuse only pays once the weights stream from memory
// rather than cache: solo decode re-reads every weight byte per token, so
// if the model sits in LLC the batched step saves nothing. This config
// (~350 MiB of Q8 weights) outruns even large-LLC hosts, putting solo
// decode in the streaming regime the serving batch is built to amortize.
LlmConfig BenchLargeModel() {
  LlmConfig c;
  c.name = "bench-large";
  c.n_layers = 12;
  c.d_model = 1536;
  c.n_heads = 16;
  c.n_kv_heads = 8;
  c.d_ff = 4096;
  c.vocab_size = 8192;
  c.max_ctx = 128;
  return c;
}

std::vector<std::string> ServePrompts() {
  std::vector<std::string> prompts;
  for (int i = 0; i < 8; ++i) {
    prompts.push_back("serving request " + std::to_string(i) +
                      " with its own distinct prompt text");
  }
  return prompts;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = p * (values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct SweepPoint {
  int sessions = 0;
  uint64_t total_tokens = 0;
  double wall_s = 0.0;          // Enqueue-to-last-retirement wall time.
  double decode_span_s = 0.0;   // First token out -> last request finished.
  double decode_time_s = 0.0;   // Wall time inside batched decode steps.
  double aggregate_tok_s = 0.0;  // total_tokens / decode_time_s.
  double ttft_ms_p50 = 0.0;
  double ttft_ms_p99 = 0.0;
  double itl_ms_p50 = 0.0;
  double itl_ms_p99 = 0.0;
  uint64_t ticks = 0;
};

// Runs `n` concurrent requests through the serving runtime on `ta` and
// folds the timing records into one sweep point. `outputs` receives each
// request's tokens in enqueue (= prompt) order.
SweepPoint RunSweepPoint(LlmTa* ta, Simulator* sim, int n,
                         const std::vector<std::string>& prompts,
                         std::vector<std::vector<TokenId>>* outputs) {
  ServingRuntime serve(ta, sim);
  std::vector<uint64_t> ids;
  for (int i = 0; i < n; ++i) {
    ServeRequest req;
    req.prompt = prompts[i];
    req.max_new_tokens = kDecodeBudget;
    auto id = serve.Enqueue(req);
    if (!id.ok()) {
      fprintf(stderr, "enqueue failed: %s\n", id.status().ToString().c_str());
      abort();
    }
    ids.push_back(*id);
  }
  const auto start = WallClock::now();
  Status done = serve.RunToCompletion();
  if (!done.ok()) {
    fprintf(stderr, "serving run (n=%d) failed: %s\n", n,
            done.ToString().c_str());
    abort();
  }
  SweepPoint out;
  out.sessions = n;
  out.wall_s = std::chrono::duration<double>(WallClock::now() - start).count();
  out.ticks = serve.stats().ticks;

  std::vector<double> ttft_ms;
  std::vector<double> itl_ms;
  double first_token = 1e30;
  double last_finish = 0.0;
  outputs->assign(n, {});
  for (const ServeRequestResult& r : serve.results()) {
    const size_t idx = r.request_id - ids.front();
    (*outputs)[idx] = r.generation.output_tokens;
    out.total_tokens += r.generation.output_tokens.size();
    ttft_ms.push_back((r.first_token_s - r.submit_s) * 1e3);
    for (size_t t = 1; t < r.token_s.size(); ++t) {
      itl_ms.push_back((r.token_s[t] - r.token_s[t - 1]) * 1e3);
    }
    first_token = std::min(first_token, r.first_token_s);
    last_finish = std::max(last_finish, r.finish_s);
  }
  out.decode_span_s = std::max(1e-9, last_finish - first_token);
  // Aggregate throughput over decode time only: prefill interleaves with
  // decode during the admission ramp (and its cost already shows up as
  // TTFT), so folding it into a "decode tok/s" number would make the
  // metric depend on prompt length rather than on what batching changes.
  out.decode_time_s = std::max(1e-9, serve.stats().decode_time_s);
  out.aggregate_tok_s = out.total_tokens / out.decode_time_s;
  out.ttft_ms_p50 = Percentile(ttft_ms, 0.50);
  out.ttft_ms_p99 = Percentile(ttft_ms, 0.99);
  out.itl_ms_p50 = Percentile(itl_ms, 0.50);
  out.itl_ms_p99 = Percentile(itl_ms, 0.99);
  return out;
}

// Slot-pressure scenario on the small model: two relaxed requests occupy
// both slots, an urgent one arrives, the scheduler checkpoint-evicts a
// victim and later restores it. Reports preemption count and whether every
// request's tokens match its solo run.
struct PreemptionResult {
  int preemptions = 0;
  bool tokens_identical = false;
};

PreemptionResult RunPreemptionScenario() {
  RuntimeConfig config;
  config.model = TestSmallModel();
  config.system = SystemKind::kTzLlm;
  config.materialize_model = true;
  config.engine.prefill_batch = 8;
  config.engine.max_sessions = 2;
  config.engine.serve_eviction = ServeEvictPolicy::kPriority;
  SocPlatform plat;
  SystemRuntime runtime(&plat, config);
  if (!runtime.Setup().ok()) {
    fprintf(stderr, "preemption scenario setup failed\n");
    abort();
  }
  auto ta = runtime.CreateFunctionalTa();
  if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
    fprintf(stderr, "preemption scenario load failed\n");
    abort();
  }
  const std::vector<std::string> prompts = {
      "relaxed background request one", "relaxed background request two",
      "urgent interactive request"};
  std::vector<std::vector<TokenId>> solo;
  for (const std::string& prompt : prompts) {
    auto ref = (*ta)->Generate(prompt, kDecodeBudget);
    if (!ref.ok()) {
      fprintf(stderr, "solo reference failed: %s\n",
              ref.status().ToString().c_str());
      abort();
    }
    solo.push_back(ref->output_tokens);
  }

  ServingRuntime serve(ta->get(), &plat.sim());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 2; ++i) {
    ServeRequest req;
    req.prompt = prompts[i];
    req.max_new_tokens = kDecodeBudget;
    req.priority = 5.0;
    auto id = serve.Enqueue(req);
    if (!id.ok()) {
      fprintf(stderr, "enqueue failed: %s\n", id.status().ToString().c_str());
      abort();
    }
    ids.push_back(*id);
  }
  // Let both occupy the slots and start decoding before the urgent arrival.
  for (int i = 0; i < 4; ++i) {
    auto more = serve.Tick();
    if (!more.ok()) {
      fprintf(stderr, "tick failed: %s\n", more.status().ToString().c_str());
      abort();
    }
  }
  ServeRequest urgent;
  urgent.prompt = prompts[2];
  urgent.max_new_tokens = kDecodeBudget;
  urgent.priority = 1.0;
  auto urgent_id = serve.Enqueue(urgent);
  if (!urgent_id.ok()) {
    fprintf(stderr, "enqueue failed: %s\n",
            urgent_id.status().ToString().c_str());
    abort();
  }
  ids.push_back(*urgent_id);
  Status done = serve.RunToCompletion();
  if (!done.ok()) {
    fprintf(stderr, "preemption run failed: %s\n", done.ToString().c_str());
    abort();
  }

  PreemptionResult out;
  out.preemptions = serve.stats().preemptions;
  out.tokens_identical = true;
  for (const ServeRequestResult& r : serve.results()) {
    const size_t idx = r.request_id - ids.front();
    if (r.generation.output_tokens != solo[idx]) {
      out.tokens_identical = false;
    }
  }
  return out;
}

// --- 16-session over-subscription: page spill vs whole-session eviction. --
//
// Both runs get the SAME secure KV budget (3 flat slots' worth) and the
// same staggered arrival schedule of 16 requests, with three urgent
// latecomers. The flat baseline's only pressure valves are queueing for a
// slot and whole-session checkpoint eviction (kPriority); the paged engine
// instead admits everyone — a slot is just a page table — and spills cold
// PAGES to encrypted REE memory. Tail TTFT is the comparison: a queued
// request's TTFT includes its predecessors' entire generations, a paged
// request's only its own (interleaved) prefill.

// A long decode budget relative to prefill is the regime that separates the
// two pressure valves: a queued request's TTFT under whole-session eviction
// includes its predecessors' entire (budget-long) generations, while a paged
// request's TTFT only covers its own prefill — page churn during decode
// lands after the first token.
constexpr int kOversubSessions = 16;
constexpr int kOversubBudget = 64;
constexpr int kOversubMaxCtx = 128;
constexpr int kOversubPagePositions = 8;
constexpr int kOversubFlatSlots = 3;
constexpr int kOversubPrefillBatch = 32;

struct OversubPoint {
  double ttft_ms_p50 = 0.0;
  double ttft_ms_p99 = 0.0;
  double wall_s = 0.0;
  int preemptions = 0;
  uint64_t page_spills = 0;
  uint64_t page_restores = 0;
  bool tokens_identical = false;
  // Chaos accounting (ISSUE 10) — all zero on clean runs.
  int completed = 0;
  int failed = 0;
  uint64_t pages_lost = 0;
  uint64_t pages_recomputed = 0;
  uint64_t kv_recoveries = 0;
  double recompute_ms = 0.0;
  uint64_t sessions_restarted = 0;
};

std::vector<std::string> OversubPrompts() {
  std::vector<std::string> prompts;
  for (int i = 0; i < kOversubSessions; ++i) {
    // Distinct from the first byte: no token prefix is shared, so the
    // comparison isolates paging-vs-eviction (prefix reuse is fig14's
    // experiment, and sharing is disabled below anyway).
    prompts.push_back(std::to_string(i) + " oversubscribed request variant");
  }
  return prompts;
}

LlmConfig OversubModel() {
  LlmConfig c = TestSmallModel();
  // A short context keeps one session at a few pages, so 16 sessions
  // genuinely over-subscribe the 3-slot budget.
  c.max_ctx = kOversubMaxCtx;
  return c;
}

OversubPoint RunOversubPoint(const RuntimeConfig& config,
                             const std::vector<std::vector<TokenId>>& solo) {
  SocPlatform plat;
  SystemRuntime runtime(&plat, config);
  if (!runtime.Setup().ok()) {
    fprintf(stderr, "oversubscription setup failed\n");
    abort();
  }
  auto ta = runtime.CreateFunctionalTa();
  if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
    fprintf(stderr, "oversubscription load failed\n");
    abort();
  }

  const std::vector<std::string> prompts = OversubPrompts();
  ServingRuntime serve(ta->get(), &plat.sim());
  const auto start = WallClock::now();
  std::vector<uint64_t> ids;
  for (int i = 0; i < kOversubSessions; ++i) {
    ServeRequest req;
    req.prompt = prompts[i];
    req.max_new_tokens = kOversubBudget;
    // Mostly-relaxed FIFO traffic with three urgent latecomers: the
    // latecomers force the flat baseline through checkpoint eviction, the
    // relaxed tail measures queueing.
    req.priority = i < kOversubSessions - 3 ? 50.0 + i : 1.0 + i;
    auto id = serve.Enqueue(req);
    if (!id.ok()) {
      fprintf(stderr, "oversubscription enqueue failed: %s\n",
              id.status().ToString().c_str());
      abort();
    }
    ids.push_back(*id);
    // Staggered arrivals: let the scheduler work between submissions.
    for (int t = 0; t < 2; ++t) {
      auto more = serve.Tick();
      if (!more.ok()) {
        fprintf(stderr, "oversubscription tick failed: %s\n",
                more.status().ToString().c_str());
        abort();
      }
    }
  }
  Status done = serve.RunToCompletion();
  if (!done.ok()) {
    fprintf(stderr, "oversubscription run failed: %s\n",
            done.ToString().c_str());
    abort();
  }

  OversubPoint out;
  out.wall_s = std::chrono::duration<double>(WallClock::now() - start).count();
  out.preemptions = serve.stats().preemptions;
  out.page_spills = serve.stats().page_spills;
  out.page_restores = serve.stats().page_restores;
  out.pages_lost = serve.stats().pages_lost;
  out.pages_recomputed = serve.stats().pages_recomputed;
  out.kv_recoveries = serve.stats().kv_recoveries;
  out.recompute_ms = serve.stats().recompute_ms;
  out.sessions_restarted = serve.stats().sessions_restarted;
  std::vector<double> ttft_ms;
  out.tokens_identical = true;
  for (const ServeRequestResult& r : serve.results()) {
    const size_t idx = r.request_id - ids.front();
    if (!r.status.ok()) {
      ++out.failed;
      continue;
    }
    ++out.completed;
    ttft_ms.push_back((r.first_token_s - r.submit_s) * 1e3);
    if (r.generation.output_tokens != solo[idx]) {
      out.tokens_identical = false;
      fprintf(stderr, "oversubscription divergence: prompt %zu\n", idx);
    }
  }
  out.ttft_ms_p50 = Percentile(ttft_ms, 0.50);
  out.ttft_ms_p99 = Percentile(ttft_ms, 0.99);
  return out;
}

// The three engine configurations the over-subscription and chaos sections
// share: a flat single-session reference, the paged 16-session point and
// the flat 3-slot checkpoint-eviction point.
struct OversubConfigs {
  RuntimeConfig solo;
  RuntimeConfig paged;
  RuntimeConfig evict;
};

OversubConfigs BuildOversubConfigs() {
  OversubConfigs out;
  // Solo references on a plain flat single-session engine.
  out.solo.model = OversubModel();
  out.solo.system = SystemKind::kTzLlm;
  out.solo.materialize_model = true;
  out.solo.engine.prefill_batch = kOversubPrefillBatch;
  out.solo.engine.max_sessions = 1;
  out.solo.engine.paged_kv = false;

  const ModelSpec spec = ModelSpec::Create(OversubModel());
  const uint64_t flat_budget =
      kOversubFlatSlots * spec.KvCacheBytes(kOversubMaxCtx);

  // Paged: every session admitted, cold pages spill under the SAME budget.
  out.paged = out.solo;
  out.paged.engine.max_sessions = kOversubSessions;
  out.paged.engine.paged_kv = true;
  out.paged.engine.kv_page_positions = kOversubPagePositions;
  out.paged.engine.kv_pool_bytes = flat_budget;
  out.paged.engine.kv_prefix_entries = 0;  // Isolate paging from reuse.

  // Flat: three resident slots; extra demand queues or checkpoint-evicts.
  out.evict = out.solo;
  out.evict.engine.max_sessions = kOversubFlatSlots;
  out.evict.engine.paged_kv = false;
  out.evict.engine.serve_eviction = ServeEvictPolicy::kPriority;
  return out;
}

std::vector<std::vector<TokenId>> OversubSoloRuns(
    const RuntimeConfig& solo_config) {
  std::vector<std::vector<TokenId>> solo;
  SocPlatform plat;
  SystemRuntime runtime(&plat, solo_config);
  if (!runtime.Setup().ok()) {
    fprintf(stderr, "oversubscription solo setup failed\n");
    abort();
  }
  auto ta = runtime.CreateFunctionalTa();
  if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
    fprintf(stderr, "oversubscription solo load failed\n");
    abort();
  }
  for (const std::string& prompt : OversubPrompts()) {
    auto ref = (*ta)->Generate(prompt, kOversubBudget);
    if (!ref.ok()) {
      fprintf(stderr, "oversubscription solo failed: %s\n",
              ref.status().ToString().c_str());
      abort();
    }
    solo.push_back(ref->output_tokens);
  }
  return solo;
}

// --- Chaos sweep (ISSUE 10): same traffic, hostile REE. -------------------
//
// Each plan arms ONE injected failure class for the whole run, and the run
// must still complete every request with bit-identical tokens:
//
//   spill_tamper / spill_drop — every KV page spill blob is corrupted or
//     discarded, so every later restore fails its integrity check and the
//     engine re-prefills the covered positions from token history
//     (recompute-on-loss). Runs on the paged 16-session point, where spill
//     pressure is constant.
//   ckpt_drop — every sealed session checkpoint is deleted right after
//     sealing; evicted sessions restart from their prompts on readmission
//     (deterministic generation keeps the tokens identical). Runs on the
//     flat eviction point, where checkpoints are the pressure valve.
struct ChaosRun {
  std::string plan;
  // Which clean over-subscription point this degraded run is compared
  // against ("paged" or "evict") — the spill plans run paged traffic, the
  // checkpoint plan runs the flat eviction traffic.
  std::string baseline;
  OversubPoint point;
};

std::vector<ChaosRun> RunChaosSweep(
    const OversubConfigs& configs,
    const std::vector<std::vector<TokenId>>& solo) {
  std::vector<ChaosRun> runs;
  for (const char* plan : {"spill_tamper@1x1000000", "spill_drop@1x1000000"}) {
    RuntimeConfig config = configs.paged;
    config.engine.serve_fault_plan = plan;
    // EVERY spill is lost: the recompute budget must cover sustained
    // re-prefill for the whole run, not a one-off incident.
    config.engine.kv_recompute_max = 1 << 20;
    runs.push_back({plan, "paged", RunOversubPoint(config, solo)});
  }
  {
    RuntimeConfig config = configs.evict;
    config.engine.serve_fault_plan = "ckpt_drop@1x1000000";
    runs.push_back({config.engine.serve_fault_plan, "evict",
                    RunOversubPoint(config, solo)});
  }
  return runs;
}

// --- ta_crash + Recover() (ISSUE 10). -------------------------------------
//
// Kills the serving TA mid-flight (ta_crash@30). The plan re-arms on every
// reboot — each recovered runtime crashes again at ITS tick 30 — so the
// fleet takes REPEATED crashes and still must drain: every round banks
// progress through the auto-checkpoint cadence, boots a fresh TA on the
// same platform (same flash, same sealed blobs) and Recover()s the fleet
// from the serving manifest, until one round outruns the crash tick.
struct TaCrashResult {
  std::string plan;
  int crashes = 0;
  uint64_t sessions_recovered = 0;
  uint64_t sessions_restarted = 0;
  uint64_t auto_checkpoints = 0;
  int completed = 0;
  bool tokens_identical = false;
};

TaCrashResult RunTaCrashScenario(
    const OversubConfigs& configs,
    const std::vector<std::vector<TokenId>>& solo) {
  RuntimeConfig config = configs.paged;
  config.engine.serve_checkpoint_every_n_ticks = 8;
  config.engine.serve_fault_plan = "ta_crash@30";
  TaCrashResult out;
  out.plan = config.engine.serve_fault_plan;

  SocPlatform plat;
  SystemRuntime runtime(&plat, config);
  if (!runtime.Setup().ok()) {
    fprintf(stderr, "ta_crash setup failed\n");
    abort();
  }
  auto ta = runtime.CreateFunctionalTa();
  if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
    fprintf(stderr, "ta_crash load failed\n");
    abort();
  }

  const std::vector<std::string> prompts = OversubPrompts();
  std::map<uint64_t, std::vector<TokenId>> outs;  // request id -> tokens
  uint64_t first_id = 0;
  auto drain = [&](const ServingRuntime& serve) {
    for (const ServeRequestResult& r : serve.results()) {
      if (r.status.ok()) {
        outs[r.request_id] = r.generation.output_tokens;
      }
    }
    out.sessions_recovered += serve.stats().sessions_recovered;
    out.sessions_restarted += serve.stats().sessions_restarted;
    out.auto_checkpoints += serve.stats().auto_checkpoints;
  };

  Status done = OkStatus();
  {
    ServingRuntime serve(ta->get(), &plat.sim());
    for (int i = 0; i < kOversubSessions; ++i) {
      ServeRequest req;
      req.prompt = prompts[i];
      req.max_new_tokens = kOversubBudget;
      req.priority = static_cast<double>(i);
      auto id = serve.Enqueue(req);
      if (!id.ok()) {
        fprintf(stderr, "ta_crash enqueue failed: %s\n",
                id.status().ToString().c_str());
        abort();
      }
      if (first_id == 0) {
        first_id = *id;
      }
    }
    done = serve.RunToCompletion();
    drain(serve);
  }
  // Reboot-and-recover rounds. 64 is a generous cap: each crashed round
  // still banks ~3 checkpoint intervals of decode progress.
  for (int round = 0; !done.ok() && round < 64; ++round) {
    if (done.code() != ErrorCode::kAborted) {
      fprintf(stderr, "ta_crash run failed (not the injected crash): %s\n",
              done.ToString().c_str());
      abort();
    }
    ++out.crashes;
    // The "crash": scrub secure memory and drop the TA. Only flash — the
    // model, the session blobs, the serving manifest — survives.
    if (!(*ta)->Unload().ok()) {
      fprintf(stderr, "ta_crash unload failed\n");
      abort();
    }
    (*ta).reset();
    ta = runtime.CreateFunctionalTa();
    if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
      fprintf(stderr, "ta_crash reboot failed\n");
      abort();
    }
    ServingRuntime serve(ta->get(), &plat.sim());
    const Status recovered = serve.Recover();
    if (!recovered.ok()) {
      fprintf(stderr, "ta_crash Recover() failed: %s\n",
              recovered.ToString().c_str());
      abort();
    }
    done = serve.RunToCompletion();
    drain(serve);
  }
  if (!done.ok()) {
    fprintf(stderr, "ta_crash fleet never drained: %s\n",
            done.ToString().c_str());
    abort();
  }

  out.completed = static_cast<int>(outs.size());
  out.tokens_identical = outs.size() == solo.size();
  for (const auto& [id, tokens] : outs) {
    const size_t idx = static_cast<size_t>(id - first_id);
    if (idx >= solo.size() || tokens != solo[idx]) {
      out.tokens_identical = false;
      fprintf(stderr, "ta_crash divergence: request %llu\n",
              static_cast<unsigned long long>(id));
    }
  }
  return out;
}

}  // namespace
}  // namespace tzllm

int main() {
  using namespace tzllm;

  const std::vector<std::string> prompts = ServePrompts();

  RuntimeConfig config;
  config.model = BenchLargeModel();
  config.system = SystemKind::kTzLlm;
  config.materialize_model = true;
  config.engine.prefill_batch = 16;
  config.engine.max_sessions = 8;
  SocPlatform plat;
  SystemRuntime runtime(&plat, config);
  if (!runtime.Setup().ok()) {
    fprintf(stderr, "setup failed\n");
    return 1;
  }
  auto ta = runtime.CreateFunctionalTa();
  if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
    fprintf(stderr, "model load failed\n");
    return 1;
  }

  PrintHeader("Figure 18", "Multi-session serving throughput (one TA)");
  printf("model=%s  layers=%d d_model=%d vocab=%d  max_sessions=%d  simd=%s\n",
         runtime.spec().config().name.c_str(), config.model.n_layers,
         config.model.d_model, config.model.vocab_size,
         config.engine.max_sessions, SimdIsaName(ActiveKernels()->isa));

  // Warmup: weights through the cache hierarchy, workspace sized.
  {
    auto warm = (*ta)->Generate(prompts[0], 8);
    if (!warm.ok()) {
      fprintf(stderr, "warmup failed: %s\n",
              warm.status().ToString().c_str());
      return 1;
    }
  }

  // Solo references for the bit-identity check (same TA, same options —
  // max_sessions is a capacity knob, not a numerics knob).
  std::vector<std::vector<TokenId>> solo;
  for (const std::string& prompt : prompts) {
    auto ref = (*ta)->Generate(prompt, kDecodeBudget);
    if (!ref.ok()) {
      fprintf(stderr, "solo reference failed: %s\n",
              ref.status().ToString().c_str());
      return 1;
    }
    solo.push_back(ref->output_tokens);
  }

  std::vector<SweepPoint> sweep;
  bool tokens_identical = true;
  for (int n : kSessionCounts) {
    std::vector<std::vector<TokenId>> outputs;
    sweep.push_back(RunSweepPoint(ta->get(), &plat.sim(), n, prompts,
                                  &outputs));
    for (int i = 0; i < n; ++i) {
      if (outputs[i] != solo[i]) {
        tokens_identical = false;
        fprintf(stderr, "token divergence: n=%d prompt=%d\n", n, i);
      }
    }
  }

  printf("\nServing sweep (%d decode tokens/request):\n", kDecodeBudget);
  PrintRow({"sessions", "agg tok/s", "vs n=1", "ttft p50 ms", "ttft p99 ms",
            "itl p50 ms", "itl p99 ms"},
           14);
  const double base = sweep.front().aggregate_tok_s;
  for (const SweepPoint& p : sweep) {
    PrintRow({std::to_string(p.sessions), Fmt("%.1f", p.aggregate_tok_s),
              Fmt("%.2fx", p.aggregate_tok_s / base),
              Fmt("%.1f", p.ttft_ms_p50), Fmt("%.1f", p.ttft_ms_p99),
              Fmt("%.2f", p.itl_ms_p50), Fmt("%.2f", p.itl_ms_p99)},
             14);
  }
  const double speedup4 = sweep[2].aggregate_tok_s / base;
  printf("\naggregate at 4 sessions vs 1: %.2fx %s\n", speedup4,
         speedup4 >= 2.0 ? "(target >= 2x: PASS)" : "(target >= 2x: FAIL)");
  printf("per-session tokens vs solo: %s\n",
         tokens_identical ? "identical (PASS)" : "DIVERGED (FAIL)");

  // Paged-KV counters for the whole sweep (one TA, cumulative): how much
  // the page pool and prefix registry actually worked. The solo references
  // above registered each prompt as a shareable prefix, so the serving runs
  // adopt those pages and prefill only the final position — the TTFT win
  // paging buys on top of batching.
  const KvArena* sweep_arena = (*ta)->kv_arena();
  const bool sweep_paged = sweep_arena != nullptr && sweep_arena->paged();
  if (sweep_paged) {
    printf("paged kv: %llu spills, %llu restores, %llu cow copies, "
           "%llu/%llu prefix hits\n",
           static_cast<unsigned long long>(sweep_arena->pool()->stats().spills),
           static_cast<unsigned long long>(
               sweep_arena->pool()->stats().restores),
           static_cast<unsigned long long>(
               sweep_arena->pool()->stats().cow_copies),
           static_cast<unsigned long long>(sweep_arena->prefix_stats().hits),
           static_cast<unsigned long long>(
               sweep_arena->prefix_stats().lookups));
  }

  const PreemptionResult preemption = RunPreemptionScenario();
  printf("eviction under pressure: %d preemption(s), evictee tokens %s\n",
         preemption.preemptions,
         preemption.tokens_identical ? "identical (PASS)" : "DIVERGED (FAIL)");

  const OversubConfigs oversub_cfg = BuildOversubConfigs();
  const std::vector<std::vector<TokenId>> oversub_solo =
      OversubSoloRuns(oversub_cfg.solo);
  const OversubPoint oversub_paged =
      RunOversubPoint(oversub_cfg.paged, oversub_solo);
  const OversubPoint oversub_evict =
      RunOversubPoint(oversub_cfg.evict, oversub_solo);
  printf("\nOver-subscription (%d sessions, %d-slot KV budget):\n",
         kOversubSessions, kOversubFlatSlots);
  PrintRow({"mode", "ttft p50 ms", "ttft p99 ms", "wall s", "preempt",
            "spills", "restores"},
           13);
  PrintRow({"paged", Fmt("%.1f", oversub_paged.ttft_ms_p50),
            Fmt("%.1f", oversub_paged.ttft_ms_p99),
            Fmt("%.2f", oversub_paged.wall_s),
            std::to_string(oversub_paged.preemptions),
            std::to_string(oversub_paged.page_spills),
            std::to_string(oversub_paged.page_restores)},
           13);
  PrintRow({"evict", Fmt("%.1f", oversub_evict.ttft_ms_p50),
            Fmt("%.1f", oversub_evict.ttft_ms_p99),
            Fmt("%.2f", oversub_evict.wall_s),
            std::to_string(oversub_evict.preemptions),
            std::to_string(oversub_evict.page_spills),
            std::to_string(oversub_evict.page_restores)},
           13);
  const bool oversub_wins =
      oversub_paged.ttft_ms_p99 < oversub_evict.ttft_ms_p99;
  printf("paged tail TTFT vs whole-session eviction: %.1f vs %.1f ms %s\n",
         oversub_paged.ttft_ms_p99, oversub_evict.ttft_ms_p99,
         oversub_wins ? "(paging wins: PASS)" : "(paging LOST: FAIL)");
  printf("over-subscribed tokens vs solo: paged %s, evict %s\n",
         oversub_paged.tokens_identical ? "identical (PASS)"
                                        : "DIVERGED (FAIL)",
         oversub_evict.tokens_identical ? "identical (PASS)"
                                        : "DIVERGED (FAIL)");

  const std::vector<ChaosRun> chaos =
      RunChaosSweep(oversub_cfg, oversub_solo);
  const TaCrashResult ta_crash =
      RunTaCrashScenario(oversub_cfg, oversub_solo);
  printf("\nChaos sweep (same traffic, armed serve-fault plans):\n");
  printf("%-24s %-6s %-6s %-8s %-8s %-8s %s\n", "plan", "done", "fail",
         "lost", "recomp", "restart", "ttft p99 ms");
  bool chaos_clean = true;
  for (const ChaosRun& c : chaos) {
    const OversubPoint& p = c.point;
    chaos_clean = chaos_clean && p.tokens_identical && p.failed == 0;
    printf("%-24s %-6d %-6d %-8llu %-8llu %-8llu %.1f\n", c.plan.c_str(),
           p.completed, p.failed,
           static_cast<unsigned long long>(p.pages_lost),
           static_cast<unsigned long long>(p.pages_recomputed),
           static_cast<unsigned long long>(p.sessions_restarted),
           p.ttft_ms_p99);
  }
  printf("chaos tokens vs solo: %s\n",
         chaos_clean ? "identical, zero failures (PASS)"
                     : "DIVERGED or failed (FAIL)");
  printf("ta_crash (%s): %d crash(es), %llu recovered, %llu restarted, "
         "%llu checkpoint rounds, %d/%d completed, tokens %s\n",
         ta_crash.plan.c_str(), ta_crash.crashes,
         static_cast<unsigned long long>(ta_crash.sessions_recovered),
         static_cast<unsigned long long>(ta_crash.sessions_restarted),
         static_cast<unsigned long long>(ta_crash.auto_checkpoints),
         ta_crash.completed, kOversubSessions,
         ta_crash.tokens_identical ? "identical (PASS)" : "DIVERGED (FAIL)");

  FILE* json = fopen("BENCH_serving.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    fprintf(json, "  \"model\": \"%s\",\n", config.model.name.c_str());
    fprintf(json, "  \"simd_isa\": \"%s\",\n",
            SimdIsaName(ActiveKernels()->isa));
    fprintf(json, "  \"hardware_concurrency\": %u,\n",
            std::thread::hardware_concurrency());
    fprintf(json, "  \"decode_budget\": %d,\n", kDecodeBudget);
    fprintf(json, "  \"max_sessions\": %d,\n", config.engine.max_sessions);
    fprintf(json, "  \"sessions\": {\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& p = sweep[i];
      fprintf(json,
              "    \"%d\": {\"aggregate_tok_s\": %.2f, \"total_tokens\": "
              "%llu, \"decode_time_s\": %.4f, \"decode_span_s\": %.4f, "
              "\"wall_s\": %.4f, "
              "\"ttft_ms_p50\": %.2f, \"ttft_ms_p99\": %.2f, "
              "\"itl_ms_p50\": %.3f, \"itl_ms_p99\": %.3f, \"ticks\": "
              "%llu}%s\n",
              p.sessions, p.aggregate_tok_s,
              static_cast<unsigned long long>(p.total_tokens),
              p.decode_time_s, p.decode_span_s, p.wall_s, p.ttft_ms_p50,
              p.ttft_ms_p99,
              p.itl_ms_p50, p.itl_ms_p99,
              static_cast<unsigned long long>(p.ticks),
              i + 1 < sweep.size() ? "," : "");
    }
    fprintf(json, "  },\n");
    fprintf(json, "  \"speedup_4_vs_1\": %.3f,\n", speedup4);
    fprintf(json, "  \"tokens_identical\": %s,\n",
            tokens_identical ? "true" : "false");
    if (sweep_paged) {
      fprintf(json,
              "  \"paged_kv\": {\"page_spills\": %llu, \"page_restores\": "
              "%llu, \"cow_copies\": %llu, \"prefix_lookups\": %llu, "
              "\"prefix_hits\": %llu},\n",
              static_cast<unsigned long long>(
                  sweep_arena->pool()->stats().spills),
              static_cast<unsigned long long>(
                  sweep_arena->pool()->stats().restores),
              static_cast<unsigned long long>(
                  sweep_arena->pool()->stats().cow_copies),
              static_cast<unsigned long long>(
                  sweep_arena->prefix_stats().lookups),
              static_cast<unsigned long long>(
                  sweep_arena->prefix_stats().hits));
    }
    fprintf(json, "  \"preemption\": {\"preemptions\": %d, "
                  "\"tokens_identical\": %s},\n",
            preemption.preemptions,
            preemption.tokens_identical ? "true" : "false");
    fprintf(json, "  \"oversubscription\": {\n");
    fprintf(json, "    \"sessions\": %d,\n", kOversubSessions);
    fprintf(json, "    \"kv_budget_slots\": %d,\n", kOversubFlatSlots);
    fprintf(json,
            "    \"paged\": {\"ttft_ms_p50\": %.2f, \"ttft_ms_p99\": %.2f, "
            "\"wall_s\": %.4f, \"preemptions\": %d, \"page_spills\": %llu, "
            "\"page_restores\": %llu, \"tokens_identical\": %s},\n",
            oversub_paged.ttft_ms_p50, oversub_paged.ttft_ms_p99,
            oversub_paged.wall_s, oversub_paged.preemptions,
            static_cast<unsigned long long>(oversub_paged.page_spills),
            static_cast<unsigned long long>(oversub_paged.page_restores),
            oversub_paged.tokens_identical ? "true" : "false");
    fprintf(json,
            "    \"evict\": {\"ttft_ms_p50\": %.2f, \"ttft_ms_p99\": %.2f, "
            "\"wall_s\": %.4f, \"preemptions\": %d, \"tokens_identical\": "
            "%s},\n",
            oversub_evict.ttft_ms_p50, oversub_evict.ttft_ms_p99,
            oversub_evict.wall_s, oversub_evict.preemptions,
            oversub_evict.tokens_identical ? "true" : "false");
    fprintf(json, "    \"paged_beats_evict_ttft_p99\": %s\n",
            oversub_wins ? "true" : "false");
    fprintf(json, "  },\n");
    fprintf(json, "  \"chaos\": {\n");
    fprintf(json, "    \"ttft_ms_p99_clean\": %.2f,\n",
            oversub_paged.ttft_ms_p99);
    fprintf(json, "    \"ttft_ms_p99_clean_evict\": %.2f,\n",
            oversub_evict.ttft_ms_p99);
    fprintf(json, "    \"plans\": {\n");
    for (size_t i = 0; i < chaos.size(); ++i) {
      const OversubPoint& p = chaos[i].point;
      fprintf(json,
              "      \"%s\": {\"baseline\": \"%s\", \"completed\": %d, "
              "\"failed\": %d, "
              "\"tokens_identical\": %s, \"pages_lost\": %llu, "
              "\"pages_recomputed\": %llu, \"kv_recoveries\": %llu, "
              "\"recompute_ms\": %.2f, \"sessions_restarted\": %llu, "
              "\"ttft_ms_p99\": %.2f}%s\n",
              chaos[i].plan.c_str(), chaos[i].baseline.c_str(), p.completed,
              p.failed,
              p.tokens_identical ? "true" : "false",
              static_cast<unsigned long long>(p.pages_lost),
              static_cast<unsigned long long>(p.pages_recomputed),
              static_cast<unsigned long long>(p.kv_recoveries),
              p.recompute_ms,
              static_cast<unsigned long long>(p.sessions_restarted),
              p.ttft_ms_p99, i + 1 < chaos.size() ? "," : "");
    }
    fprintf(json, "    },\n");
    fprintf(json,
            "    \"ta_crash\": {\"plan\": \"%s\", \"crashes\": %d, "
            "\"sessions_recovered\": %llu, \"sessions_restarted\": %llu, "
            "\"auto_checkpoints\": %llu, \"completed\": %d, "
            "\"tokens_identical\": %s}\n",
            ta_crash.plan.c_str(), ta_crash.crashes,
            static_cast<unsigned long long>(ta_crash.sessions_recovered),
            static_cast<unsigned long long>(ta_crash.sessions_restarted),
            static_cast<unsigned long long>(ta_crash.auto_checkpoints),
            ta_crash.completed,
            ta_crash.tokens_identical ? "true" : "false");
    fprintf(json, "  }\n");
    fprintf(json, "}\n");
    fclose(json);
    printf("\nwrote BENCH_serving.json\n");
  }
  return 0;
}
