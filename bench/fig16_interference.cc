// Figure 16: Geekbench scores while LLM prefill restarts run concurrently
// (Llama-3-8B, 512-token prompt): the transient CMA-migration interference
// TZ-LLM trades against S2PT's continuous overhead (Figure 2).

#include "bench/bench_common.h"
#include "src/core/geekbench.h"

namespace tzllm {
namespace {

struct Duty {
  double migration_duty = 0.0;  // Fraction of wall time migrating pages.
  double alloc_duty = 0.0;      // Buddy-allocation (lighter) duty.
};

// Measures the restore/compute duty cycle of a repeating prefill-revoke
// loop for the given system.
Duty MeasureDuty(SystemKind kind) {
  BenchSystem sys = BenchSystem::Create(kind, Llama3_8B(),
                                        PaperStressBytes(Llama3_8B()));
  InferenceRequest req;
  req.prompt_tokens = 512;
  const InferenceReport report = sys.runtime->RunInference(req);
  if (!report.status.ok()) {
    return {};
  }
  Duty duty;
  const double cycle = ToSeconds(report.ttft + report.release_time);
  if (kind == SystemKind::kTzLlm) {
    duty.migration_duty = ToSeconds(report.prefill_pipeline.sum_alloc /
                                    2) /  // 2 migration lanes.
                          cycle;
  } else if (kind == SystemKind::kReeFlash) {
    duty.alloc_duty = ToSeconds(report.prefill_pipeline.sum_alloc) / cycle;
  }
  return duty;
}

void Run() {
  PrintHeader("Figure 16",
              "Geekbench during concurrent LLM prefill restarts "
              "(Llama-3-8B, 512 tokens)");
  const Duty tz = MeasureDuty(SystemKind::kTzLlm);
  const Duty flash = MeasureDuty(SystemKind::kReeFlash);
  // Memory-bandwidth share consumed by migration (copy at ~3.4 GB/s of a
  // ~17 GB/s budget, read+write) vs page-zeroing for buddy allocations.
  constexpr double kMigrationBwShare = 0.40;
  constexpr double kBuddyBwShare = 0.18;

  PrintRow({"workload", "REE-Memory", "REE-Flash", "TZ-LLM", "TZ degr.%"},
           15);
  PrintRow({"--------", "----------", "---------", "------", "---------"},
           15);
  double worst_tz = 0.0;
  for (const GeekbenchWorkload& w : GeekbenchSuite()) {
    const double base = w.base_score;  // REE-Memory: no restoration at all.
    const double with_flash =
        ScoreUnderMigration(w, flash.alloc_duty, kBuddyBwShare);
    const double with_tz =
        ScoreUnderMigration(w, tz.migration_duty, kMigrationBwShare);
    const double degr = (1.0 - with_tz / base) * 100;
    worst_tz = std::max(worst_tz, degr);
    PrintRow({w.name, Fmt("%.0f", base), Fmt("%.0f", with_flash),
              Fmt("%.0f", with_tz), Fmt("%.1f", degr)},
             15);
  }
  printf("\nTZ-LLM migration duty cycle: %.1f%% of the inference cycle "
         "(transient); worst-case degradation %.1f%% (paper: up to 6.7%%, "
         "comparable to S2PT's continuous overhead but only while prefill "
         "is restoring).\n",
         tz.migration_duty * 100, worst_tz);
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
