// Figure 12: the three potential pipeline critical paths (I/O, CPU,
// Computation) vs TZ-LLM's achieved TTFT across prompt lengths, with 20% of
// parameters cached — with and without memory stress. The max of the three
// paths is the theoretical lower bound for any scheduling policy (§7.2.1).

#include <algorithm>

#include "bench/bench_common.h"

namespace tzllm {
namespace {

void RunModel(const LlmConfig& model, bool stressed) {
  printf("\n--- %s (%s) ---\n", model.name.c_str(),
         stressed ? "w/ stress" : "w/o stress");
  PrintRow({"prompt", "I/O path", "CPU path", "Compute path", "TZ-LLM TTFT",
            "over bound"},
           14);
  for (int prompt : {64, 128, 256, 384, 512}) {
    BenchSystem sys = BenchSystem::Create(SystemKind::kTzLlm, model, 0);
    // Warm up the cache to 20% (the paper's configuration).
    InferenceRequest warm;
    warm.prompt_tokens = 16;
    warm.cache_proportion_after = 0.2;
    if (!sys.runtime->RunInference(warm).status.ok()) {
      continue;
    }
    // Apply pressure after the warm-up: during the idle period the REE
    // repopulates the (released) CMA region, so the measured inference pays
    // the migration cost again — the scenario Figure 12 stresses.
    if (stressed &&
        !sys.runtime->stress().MapPressure(PaperStressBytes(model), false)
             .ok()) {
      continue;
    }
    InferenceRequest req;
    req.prompt_tokens = prompt;
    req.cache_proportion_after = 0.2;
    const InferenceReport report = sys.runtime->RunInference(req);
    if (!report.status.ok()) {
      continue;
    }
    const PipelineResult& pipe = report.prefill_pipeline;
    const double io = ToSeconds(pipe.IoPath());
    const double cpu = ToSeconds(pipe.CpuPath(4, 2));
    const double comp = ToSeconds(pipe.ComputePath());
    const double bound = std::max({io, cpu, comp});
    const double actual = ToSeconds(report.prefill_time);
    PrintRow({Fmt("%.0f", prompt), Fmt("%.3f", io), Fmt("%.3f", cpu),
              Fmt("%.3f", comp), Fmt("%.3f", actual),
              Fmt("+%.1f%%", (actual / bound - 1.0) * 100)},
             14);
  }
}

void Run() {
  PrintHeader("Figure 12",
              "Critical-path latencies vs TZ-LLM TTFT (20% parameters "
              "cached)");
  for (bool stressed : {true, false}) {
    RunModel(Qwen2_5_3B(), stressed);
    RunModel(Llama3_8B(), stressed);
  }
  printf("\npaper (§7.2.1): 0.01%%~9.9%% over the bound with stress, up to "
         "10.4%% without (I/O-dominated worst case).\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
