// Figure 13: pipelining + preemptive scheduling ablation. TZ-LLM (full) vs
// TZ-LLM(-preempt) (priority, no micro-operator preemption) vs
// TZ-LLM(-pipeline) (restoration strictly before computation).
//
// PR 6 revives the second half of the figure's story on the FUNCTIONAL
// path: a generation session checkpointed mid-decode (KV arena + sampler
// RNG + position sealed to flash under the model key), evicted, and
// restored — on the same TA and on a freshly booted one ("crash") — with
// greedy-token-identical resumption, plus a recovery-under-fault run
// through the NPU fault-injection harness. Emits BENCH_preemption.json so
// CI can gate on tokens_identical (scripts/check_bench_regression.py
// --preemption).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "src/core/runtime.h"
#include "src/llm/model_spec.h"

namespace tzllm {
namespace {

using WallClock = std::chrono::steady_clock;

double MsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count() * 1e3;
}

SimDuration Ttft(const LlmConfig& model, int prompt, SchedulePolicy policy,
                 bool pipelined) {
  BenchSystem sys = BenchSystem::Create(SystemKind::kTzLlm, model,
                                        PaperStressBytes(model), policy,
                                        pipelined);
  InferenceRequest req;
  req.prompt_tokens = prompt;
  const InferenceReport report = sys.runtime->RunInference(req);
  return report.status.ok() ? report.ttft : 0;
}

void RunPaperAblation() {
  PrintHeader("Figure 13",
              "Effect of preemptive pipeline scheduling on TTFT (s)");
  for (const LlmConfig& model : {Qwen2_5_3B(), Llama3_8B()}) {
    printf("\n--- %s ---\n", model.name.c_str());
    PrintRow({"prompt", "TZ-LLM", "-preempt", "-pipeline", "preempt gain",
              "pipeline gain"},
             15);
    for (int prompt : {32, 128, 512}) {
      const SimDuration full = Ttft(
          model, prompt, SchedulePolicy::kPriorityPreemptive, true);
      const SimDuration nopre =
          Ttft(model, prompt, SchedulePolicy::kPriority, true);
      const SimDuration nopipe =
          Ttft(model, prompt, SchedulePolicy::kPriority, false);
      PrintRow(
          {Fmt("%.0f", prompt), Seconds(full), Seconds(nopre),
           Seconds(nopipe),
           Fmt("%+.1f%%", (ToSeconds(full) / ToSeconds(nopre) - 1.0) * 100),
           Fmt("%+.1f%%",
               (ToSeconds(nopre) / ToSeconds(nopipe) - 1.0) * 100)},
          15);
    }
  }
  printf("\npaper: the pipeline cuts TTFT by up to 31.7%% vs no-pipeline; "
         "preemption cuts up to another 16.2%%.\n");
}

// --- Functional session preemption (real bytes, real sealed blobs). ---

constexpr char kPrompt[] = "preempt and resume this generation";
constexpr int kBudget = 10;
constexpr int kStepsBeforeCheckpoint = 3;

RuntimeConfig FunctionalConfig(bool use_npu) {
  RuntimeConfig config;
  config.model = TestSmallModel();
  config.system = SystemKind::kTzLlm;
  config.use_npu = use_npu;
  config.materialize_model = true;
  config.engine.prefill_batch = 8;
  config.engine.npu_prefill = use_npu;
  return config;
}

struct SessionBenchResult {
  double checkpoint_ms = 0.0;     // Seal + evict (wall).
  double restore_ms = 0.0;        // Same-TA restore (wall).
  double crash_restore_ms = 0.0;  // Fresh-TA restore after Unload (wall).
  bool tokens_identical = false;
  bool crash_tokens_identical = false;
  int output_tokens = 0;
};

GenerationResult UninterruptedReference() {
  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(false));
  if (!runtime.Setup().ok()) {
    fprintf(stderr, "runtime setup failed\n");
    abort();
  }
  auto ta = runtime.CreateFunctionalTa();
  if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
    fprintf(stderr, "functional TA setup failed\n");
    abort();
  }
  auto out = (*ta)->Generate(kPrompt, kBudget);
  if (!out.ok()) {
    fprintf(stderr, "reference generation failed: %s\n",
            out.status().ToString().c_str());
    abort();
  }
  return *out;
}

// Drives the session to completion and returns its result.
Result<GenerationResult> RunToCompletion(LlmTa* ta, SessionId sid) {
  while (!ta->session_done(sid)) {
    auto more = ta->StepSession(sid, kBudget);
    if (!more.ok()) {
      return more.status();
    }
    if (*more == 0) {
      break;
    }
  }
  return ta->FinishSession(sid);
}

SessionBenchResult MeasureSessionPreemption() {
  const GenerationResult reference = UninterruptedReference();
  SessionBenchResult out;
  out.output_tokens = static_cast<int>(reference.output_tokens.size());

  // Same-TA checkpoint -> evict -> restore -> resume.
  {
    SocPlatform plat;
    SystemRuntime runtime(&plat, FunctionalConfig(false));
    if (!runtime.Setup().ok()) {
      abort();
    }
    auto ta = runtime.CreateFunctionalTa();
    if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
      fprintf(stderr, "session setup failed\n");
      abort();
    }
    auto sid = (*ta)->BeginSession(kPrompt, kBudget);
    if (!sid.ok() || !(*ta)->StepSession(*sid, kStepsBeforeCheckpoint).ok()) {
      fprintf(stderr, "session setup failed\n");
      abort();
    }
    auto t0 = WallClock::now();
    if (!(*ta)->CheckpointSession(*sid).ok()) {
      fprintf(stderr, "checkpoint failed\n");
      abort();
    }
    out.checkpoint_ms = MsSince(t0);
    t0 = WallClock::now();
    if (!(*ta)->RestoreSession(*sid).ok()) {
      fprintf(stderr, "restore failed\n");
      abort();
    }
    out.restore_ms = MsSince(t0);
    auto resumed = RunToCompletion(ta->get(), *sid);
    out.tokens_identical =
        resumed.ok() && resumed->output_tokens == reference.output_tokens;
  }

  // Crash consistency: checkpoint, Unload (drop the TA entirely), boot a
  // fresh TA over the same model, restore from flash alone.
  {
    SocPlatform plat;
    SystemRuntime runtime(&plat, FunctionalConfig(false));
    if (!runtime.Setup().ok()) {
      abort();
    }
    SessionId crashed_sid = 0;
    {
      auto ta = runtime.CreateFunctionalTa();
      if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
        fprintf(stderr, "crash-run setup failed\n");
        abort();
      }
      auto sid = (*ta)->BeginSession(kPrompt, kBudget);
      if (!sid.ok() ||
          !(*ta)->StepSession(*sid, kStepsBeforeCheckpoint).ok() ||
          !(*ta)->CheckpointSession(*sid).ok() || !(*ta)->Unload().ok()) {
        fprintf(stderr, "crash-run setup failed\n");
        abort();
      }
      crashed_sid = *sid;
    }
    auto ta2 = runtime.CreateFunctionalTa();
    if (!ta2.ok() || !(*ta2)->LoadModel(runtime.spec().config().name).ok()) {
      fprintf(stderr, "fresh TA boot failed\n");
      abort();
    }
    const auto t0 = WallClock::now();
    // The handle survives the crash: the sealed blob carries its id, so the
    // fresh TA resumes the SAME session under the same handle.
    if (!(*ta2)->RestoreSession(crashed_sid).ok()) {
      fprintf(stderr, "crash restore failed\n");
      abort();
    }
    out.crash_restore_ms = MsSince(t0);
    auto resumed = RunToCompletion(ta2->get(), crashed_sid);
    out.crash_tokens_identical =
        resumed.ok() && resumed->output_tokens == reference.output_tokens;
  }
  return out;
}

struct FaultBenchResult {
  std::string plan;
  bool completed = false;
  bool tokens_identical = false;
  uint64_t faults_injected = 0;
  uint64_t jobs_recovered = 0;
  uint64_t fallback_jobs = 0;
  uint64_t fallback_matmuls = 0;
};

// Recovery under fault: generate through the NPU offload path with the
// injection harness armed (TZLLM_FAULT_PLAN if set, else a default
// transient payload fault) and check the degraded run still produces the
// uninterrupted CPU run's tokens — recovery is bit-identical by
// construction (retry re-runs the same job; fallback re-runs the same
// matmul group through the same kernel table).
FaultBenchResult MeasureRecoveryUnderFault(
    const GenerationResult& reference) {
  FaultBenchResult out;
  const char* env = std::getenv("TZLLM_FAULT_PLAN");
  out.plan = (env != nullptr && env[0] != '\0') ? env : "payload@3";

  RuntimeConfig config = FunctionalConfig(true);
  config.engine.npu_fault_plan = out.plan;
  // Keep timeout-class sweeps on a deadline proportionate to test-small
  // jobs, not the 2 s default meant for paper-scale models.
  config.engine.npu_job_timeout = 25 * kMillisecond;
  SocPlatform plat;
  SystemRuntime runtime(&plat, config);
  if (!runtime.Setup().ok()) {
    abort();
  }
  auto ta = runtime.CreateFunctionalTa();
  if (!ta.ok() || !(*ta)->LoadModel(runtime.spec().config().name).ok()) {
    fprintf(stderr, "fault-run TA setup failed\n");
    abort();
  }
  auto out_gen = (*ta)->Generate(kPrompt, kBudget);
  out.completed = out_gen.ok();
  out.tokens_identical =
      out_gen.ok() && out_gen->output_tokens == reference.output_tokens;
  const TeeNpuDriver& driver = runtime.tee_npu();
  out.faults_injected = driver.faults_injected();
  out.jobs_recovered = driver.jobs_recovered();
  out.fallback_jobs = driver.fallback_jobs();
  out.fallback_matmuls = driver.fallback_matmuls();
  if (!out_gen.ok()) {
    fprintf(stderr, "fault-run generation failed: %s\n",
            out_gen.status().ToString().c_str());
  }
  return out;
}

void RunSessionPreemption() {
  printf("\n");
  PrintHeader("Figure 13b",
              "Functional session checkpoint/evict/restore + fault recovery");
  const SessionBenchResult sess = MeasureSessionPreemption();
  printf("model=test-small  prompt=\"%s\"  budget=%d  checkpoint after %d "
         "decode steps\n",
         kPrompt, kBudget, kStepsBeforeCheckpoint);
  PrintRow({"operation", "wall ms", "tokens identical"}, 20);
  PrintRow({"checkpoint+evict", Fmt("%.3f", sess.checkpoint_ms), "-"}, 20);
  PrintRow({"restore (same TA)", Fmt("%.3f", sess.restore_ms),
            sess.tokens_identical ? "yes" : "NO"},
           20);
  PrintRow({"restore (fresh TA)", Fmt("%.3f", sess.crash_restore_ms),
            sess.crash_tokens_identical ? "yes" : "NO"},
           20);

  const GenerationResult reference = UninterruptedReference();
  const FaultBenchResult fault = MeasureRecoveryUnderFault(reference);
  printf("\nrecovery under fault (%s): %s, tokens %s, %llu faults "
         "injected, %llu jobs recovered by retry, %llu jobs -> CPU fallback "
         "(%llu matmuls)\n",
         fault.plan.c_str(), fault.completed ? "completed" : "FAILED",
         fault.tokens_identical ? "identical" : "DIVERGED",
         static_cast<unsigned long long>(fault.faults_injected),
         static_cast<unsigned long long>(fault.jobs_recovered),
         static_cast<unsigned long long>(fault.fallback_jobs),
         static_cast<unsigned long long>(fault.fallback_matmuls));

  FILE* json = fopen("BENCH_preemption.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    fprintf(json, "  \"model\": \"test-small\",\n");
    fprintf(json, "  \"budget\": %d,\n", kBudget);
    fprintf(json, "  \"steps_before_checkpoint\": %d,\n",
            kStepsBeforeCheckpoint);
    fprintf(json, "  \"output_tokens\": %d,\n", sess.output_tokens);
    fprintf(json, "  \"checkpoint_ms\": %.4f,\n", sess.checkpoint_ms);
    fprintf(json, "  \"restore_ms\": %.4f,\n", sess.restore_ms);
    fprintf(json, "  \"crash_restore_ms\": %.4f,\n", sess.crash_restore_ms);
    fprintf(json, "  \"tokens_identical\": %s,\n",
            sess.tokens_identical ? "true" : "false");
    fprintf(json, "  \"crash_tokens_identical\": %s,\n",
            sess.crash_tokens_identical ? "true" : "false");
    fprintf(json, "  \"fault\": {\n");
    fprintf(json, "    \"plan\": \"%s\",\n", fault.plan.c_str());
    fprintf(json, "    \"completed\": %s,\n",
            fault.completed ? "true" : "false");
    fprintf(json, "    \"tokens_identical\": %s,\n",
            fault.tokens_identical ? "true" : "false");
    fprintf(json, "    \"faults_injected\": %llu,\n",
            static_cast<unsigned long long>(fault.faults_injected));
    fprintf(json, "    \"jobs_recovered\": %llu,\n",
            static_cast<unsigned long long>(fault.jobs_recovered));
    fprintf(json, "    \"fallback_jobs\": %llu,\n",
            static_cast<unsigned long long>(fault.fallback_jobs));
    fprintf(json, "    \"fallback_matmuls\": %llu\n",
            static_cast<unsigned long long>(fault.fallback_matmuls));
    fprintf(json, "  }\n");
    fprintf(json, "}\n");
    fclose(json);
    printf("wrote BENCH_preemption.json\n");
  }
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::RunPaperAblation();
  tzllm::RunSessionPreemption();
  return 0;
}
