// Figure 13: pipelining + preemptive scheduling ablation. TZ-LLM (full) vs
// TZ-LLM(-preempt) (priority, no micro-operator preemption) vs
// TZ-LLM(-pipeline) (restoration strictly before computation).

#include "bench/bench_common.h"

namespace tzllm {
namespace {

SimDuration Ttft(const LlmConfig& model, int prompt, SchedulePolicy policy,
                 bool pipelined) {
  BenchSystem sys = BenchSystem::Create(SystemKind::kTzLlm, model,
                                        PaperStressBytes(model), policy,
                                        pipelined);
  InferenceRequest req;
  req.prompt_tokens = prompt;
  const InferenceReport report = sys.runtime->RunInference(req);
  return report.status.ok() ? report.ttft : 0;
}

void Run() {
  PrintHeader("Figure 13",
              "Effect of preemptive pipeline scheduling on TTFT (s)");
  for (const LlmConfig& model : {Qwen2_5_3B(), Llama3_8B()}) {
    printf("\n--- %s ---\n", model.name.c_str());
    PrintRow({"prompt", "TZ-LLM", "-preempt", "-pipeline", "preempt gain",
              "pipeline gain"},
             15);
    for (int prompt : {32, 128, 512}) {
      const SimDuration full = Ttft(
          model, prompt, SchedulePolicy::kPriorityPreemptive, true);
      const SimDuration nopre =
          Ttft(model, prompt, SchedulePolicy::kPriority, true);
      const SimDuration nopipe =
          Ttft(model, prompt, SchedulePolicy::kPriority, false);
      PrintRow(
          {Fmt("%.0f", prompt), Seconds(full), Seconds(nopre),
           Seconds(nopipe),
           Fmt("%+.1f%%", (ToSeconds(full) / ToSeconds(nopre) - 1.0) * 100),
           Fmt("%+.1f%%",
               (ToSeconds(nopre) / ToSeconds(nopipe) - 1.0) * 100)},
          15);
    }
  }
  printf("\npaper: the pipeline cuts TTFT by up to 31.7%% vs no-pipeline; "
         "preemption cuts up to another 16.2%%.\n");
}

}  // namespace
}  // namespace tzllm

int main() {
  tzllm::Run();
  return 0;
}
