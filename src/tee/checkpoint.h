// Framework-state checkpointing (paper §3.2 "Other techniques"): the 2.3 s
// of llama.cpp metadata / tokenizer initialization is paid once, serialized,
// encrypted under the model key, and stored in flash; every later inference
// restores the state instead of re-initializing.
//
// The blob is integrity-tagged: a tampered checkpoint (untrusted flash) is
// detected on restore and falls back to full initialization.

#ifndef SRC_TEE_CHECKPOINT_H_
#define SRC_TEE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/calibration.h"
#include "src/common/status.h"
#include "src/crypto/aes.h"
#include "src/crypto/sha256.h"
#include "src/hw/flash.h"

namespace tzllm {

class CheckpointService {
 public:
  explicit CheckpointService(FlashDevice* flash);

  // Serializes + encrypts `state` under `key` and stores it as
  // "<model_id>.ckpt". Returns the stored size.
  Result<uint64_t> Save(const std::string& model_id, const AesKey128& key,
                        const std::vector<uint8_t>& state);

  // Loads, decrypts and verifies the checkpoint. kDataCorruption on tamper.
  Result<std::vector<uint8_t>> Restore(const std::string& model_id,
                                       const AesKey128& key);

  bool Exists(const std::string& model_id) const;

  // Removes a stored checkpoint; kNotFound when none exists. Used when a
  // superseded blob must not be restorable (a completed serving manifest)
  // and by the ckpt_drop fault injection, which models the REE discarding
  // a blob it promised to keep.
  Status Delete(const std::string& model_id);

  // Modeled wall time of a restore at inference start (I/O + decrypt of the
  // serialized state + fixups); used by the runtime cost accounting.
  static constexpr SimDuration RestoreTime() { return kCheckpointRestoreTime; }
  // Full (non-checkpointed) framework initialization time.
  static constexpr SimDuration FullInitTime() {
    return kLlamaMetaInitTime + kLlamaBootTime + kTokenizerInitTime;
  }

 private:
  static std::string FileName(const std::string& model_id) {
    return model_id + ".ckpt";
  }

  FlashDevice* flash_;
};

}  // namespace tzllm

#endif  // SRC_TEE_CHECKPOINT_H_
