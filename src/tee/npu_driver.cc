#include "src/tee/npu_driver.h"

#include <utility>

#include "src/common/log.h"

namespace tzllm {

TeeNpuDriver::TeeNpuDriver(SocPlatform* platform, TeeOs* tee_os)
    : platform_(platform), tee_os_(tee_os) {}

void TeeNpuDriver::Init() {
  platform_->monitor().InstallSecureHandler(
      SmcFunc::kNpuTakeover,
      [this](const SmcArgs& args) { return OnTakeover(args); });
  // Secure completion interrupt: fires while the NPU line is routed to the
  // secure world.
  platform_->gic().RegisterHandler(World::kSecure, kIrqNpu,
                                   [this] { OnSecureCompletion(); });
}

void TeeNpuDriver::ArmFaultPlan(const NpuFaultPlan& plan) {
  fault_plan_ = plan;
  fault_seq_base_ = next_issue_seq_ - 1;
  injected_faults_ = 0;
  // Device-visible classes (payload, timeout) live at the NPU; forwarding
  // the whole plan is harmless — each layer only acts on its own classes.
  platform_->npu().ArmFaultPlan(plan);
}

uint64_t TeeNpuDriver::faults_injected() const {
  return injected_faults_ + platform_->npu().faults_injected();
}

void TeeNpuDriver::MarkSeqDead(uint64_t seq) {
  dead_seqs_.insert(seq);
  while (!dead_seqs_.empty() && *dead_seqs_.begin() == next_exec_seq_) {
    dead_seqs_.erase(dead_seqs_.begin());
    ++next_exec_seq_;
  }
}

Result<uint64_t> TeeNpuDriver::CreateJob(TaId ta, const NpuJobDesc& desc) {
  // The execution context must be confined to the TA's protected regions:
  // otherwise a compromised TA (or a confused deputy) could point the NPU at
  // other TAs' memory. This is the "TEE OS only allows the NPU to access the
  // execution contexts of secure NPU jobs" property (§4.3 Minimal TCB).
  auto in_regions = [&](PhysAddr addr, uint64_t len) {
    if (len == 0) {
      return true;
    }
    return tee_os_->InProtectedRegion(SecureRegionId::kParams, addr, len) ||
           tee_os_->InProtectedRegion(SecureRegionId::kScratch, addr, len);
  };
  if (!in_regions(desc.cmd_addr, desc.cmd_size) ||
      !in_regions(desc.iopt_addr, desc.iopt_size)) {
    ++validation_failures_;
    return SecurityViolation("NPU job context outside TA secure regions");
  }
  for (const auto& [addr, len] : desc.buffers) {
    if (!in_regions(addr, len)) {
      ++validation_failures_;
      return SecurityViolation("NPU job buffer outside TA secure regions");
    }
  }
  const uint64_t id = next_job_id_++;
  SecureJob job;
  job.desc = desc;
  jobs_.emplace(id, std::move(job));
  return id;
}

Status TeeNpuDriver::IssueJob(uint64_t job_id,
                              std::function<void(Status)> on_complete) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return NotFound("unknown secure NPU job");
  }
  SecureJob& job = it->second;
  if (job.state != JobState::kInitialized) {
    return FailedPrecondition("job already issued");
  }
  job.state = JobState::kIssued;
  job.seq = next_issue_seq_++;
  job.on_complete = std::move(on_complete);

  // Injected post-submit stall: the job is issued but its shadow is lost on
  // the way to the REE queue — no takeover will ever arrive, so the waiter's
  // deadline (and the sequence-hole bookkeeping in WaitForJob's abandon
  // path) is the only way out. Models a dropped RPC / wedged control plane.
  if (fault_plan_.fault == NpuFaultClass::kSubmit &&
      fault_plan_.Hits(FaultOrdinal(job.seq))) {
    ++injected_faults_;
    TZLLM_LOG_WARN("tee-npu", "injected post-submit stall on job %llu",
                   static_cast<unsigned long long>(job_id));
    return OkStatus();
  }

  // Pair with a shadow job in the REE scheduling queue.
  SmcArgs args;
  args.a[0] = job_id;
  const SmcResult r =
      platform_->monitor().RpcToRee(SmcFunc::kRpcNpuEnqueueShadow, args);
  total_smc_time_ += kSmcRoundTrip;
  return r.status;
}

Result<uint64_t> TeeNpuDriver::SubmitJob(
    TaId ta, const NpuJobDesc& desc, std::function<void(Status)> on_complete) {
  auto id = CreateJob(ta, desc);
  if (!id.ok()) {
    return id.status();
  }
  TZLLM_RETURN_IF_ERROR(IssueJob(*id, std::move(on_complete)));
  return *id;
}

Status TeeNpuDriver::WaitForJob(uint64_t job_id, SimDuration timeout) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return NotFound("unknown secure NPU job");
  }
  if (!it->second.finished) {
    // Everything between issue and completion — shadow-queue scheduling,
    // takeover smc, world switches, the NPU execution itself and the exit
    // path — is simulator events; drive them until this job retires (or the
    // virtual deadline passes: a busy simulator must not let a lost job
    // spin the waiter forever).
    const SimTime deadline =
        timeout > 0 ? platform_->sim().Now() + timeout : 0;
    platform_->sim().RunUntilIdleOr([this, job_id, deadline] {
      auto jt = jobs_.find(job_id);
      if (jt == jobs_.end() || jt->second.finished) {
        return true;
      }
      return deadline != 0 && platform_->sim().Now() >= deadline;
    });
    it = jobs_.find(job_id);
    if (it == jobs_.end() || !it->second.finished) {
      if (it != jobs_.end()) {
        // The caller is abandoning the job: neutralize its payload and
        // callback so a later revival of the stuck shadow cannot write
        // through pointers whose owner is gone. The entry itself stays —
        // the replay/reorder sequencing defenses still account for it.
        if (it->second.state == JobState::kLaunched &&
            running_job_ == job_id) {
          // Already launched: the device captured its own payload copy at
          // MmioLaunch, so nulling our descriptor is not enough — abort
          // the device's compute stage (the NPU is still secure while its
          // job runs, so the MMIO write passes the TZPC gate). For a
          // stalled device the abort doubles as the reset that finally
          // raises the completion interrupt, so the exit path still runs
          // and the device is reusable by the caller's retry.
          (void)platform_->npu().MmioAbort(World::kSecure);
        } else if (it->second.state == JobState::kIssued &&
                   running_job_ != job_id &&
                   it->second.seq >= next_exec_seq_) {
          // Issued but never taken over (lost shadow, or its takeover was
          // rejected): close its execution-sequence hole so successors'
          // takeovers aren't rejected as reorders forever, and spend its
          // window so a late takeover for it dies as a replay.
          it->second.state = JobState::kCompleted;
          MarkSeqDead(it->second.seq);
        }
        it->second.abandoned = true;
        it->second.desc.compute = nullptr;
        it->second.on_complete = nullptr;
        ++jobs_abandoned_;
      }
      if (deadline != 0 && platform_->sim().Now() >= deadline) {
        return DeadlineExceeded(
            "secure NPU job did not complete within the wait timeout");
      }
      return Internal(
          "simulator drained before secure NPU job completion (takeover "
          "rejected, or the shadow job never reached the queue head?)");
    }
  }
  // The status is consumed; drop the bookkeeping entry so a TA streaming
  // thousands of jobs (NPU prefill) doesn't grow the map without bound. A
  // replayed takeover for the erased id still dies in ValidateTakeover —
  // as an unknown-job (arbitrary-launch) violation instead of a replay.
  const Status status = it->second.completion_status;
  jobs_.erase(it);
  return status;
}

Result<bool> TeeNpuDriver::TryPollJob(uint64_t job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return NotFound("unknown secure NPU job");
  }
  return it->second.finished;
}

Status TeeNpuDriver::ValidateTakeover(uint64_t job_id) const {
  auto it = jobs_.find(job_id);
  // Arbitrary-launch defense: the job must exist and have been initialized
  // by the TA through CreateJob.
  if (it == jobs_.end()) {
    return SecurityViolation("takeover for unknown job (arbitrary launch?)");
  }
  const SecureJob& job = it->second;
  // Replay defense: issued exactly once, not yet launched.
  if (job.state != JobState::kIssued) {
    return SecurityViolation("takeover replay / double launch rejected");
  }
  // Reorder defense: monotonic sequence check.
  if (job.seq != next_exec_seq_) {
    return SecurityViolation("takeover out of issue order rejected");
  }
  if (running_job_ != 0) {
    return FailedPrecondition("secure job already running");
  }
  return OkStatus();
}

SmcResult TeeNpuDriver::OnTakeover(const SmcArgs& args) {
  const uint64_t job_id = args.a[0];
  total_smc_time_ += kSmcRoundTrip;
  Status st = ValidateTakeover(job_id);
  if (!st.ok()) {
    ++validation_failures_;
    TZLLM_LOG_WARN("tee-npu", "takeover validation failed: %s",
                   st.ToString().c_str());
    return SmcResult{std::move(st), {}};
  }
  // Injected context-validation fault: an otherwise-valid takeover is
  // rejected as if the job's execution context failed revalidation at the
  // secure boundary. Toward the REE this is exactly a real validation
  // failure (error SmcResult — the control plane drops the shadow and keeps
  // scheduling; no world switch was applied yet, so there is nothing to
  // revert and no shadow-complete RPC to double-release). Unlike a real
  // one, the job is retired finished so its waiter reads a clean
  // SecurityViolation, and its sequence window is spent so successors'
  // takeovers still validate.
  if (fault_plan_.fault == NpuFaultClass::kContext &&
      fault_plan_.Hits(FaultOrdinal(jobs_[job_id].seq))) {
    ++injected_faults_;
    ++validation_failures_;
    SecureJob& job = jobs_[job_id];
    Status fault = SecurityViolation("injected context-validation fault");
    job.state = JobState::kCompleted;
    job.finished = true;
    job.completion_status = fault;
    job.desc.compute = nullptr;
    MarkSeqDead(job.seq);
    auto cb = std::move(job.on_complete);
    if (cb) {
      cb(fault);
    }
    return SmcResult{std::move(fault), {}};
  }

  // The job stays kIssued until the doorbell actually rings: a drained
  // non-secure job's completion interrupt (now routed to the secure world)
  // must not be mistaken for the secure job's completion.
  ++next_exec_seq_;
  running_job_ = job_id;
  jobs_[job_id].takeover_at = platform_->sim().Now();

  // Secure-mode entry, in the paper's mandated order:
  //  (1) TZPC: isolate the NPU MMIO from the REE; GIC: route its interrupt
  //      to the secure world. From here no *new* non-secure job can launch.
  Tzpc& tzpc = platform_->tzpc();
  Gic& gic = platform_->gic();
  Status hw = tzpc.SetSecure(World::kSecure, DeviceId::kNpu, true);
  if (hw.ok()) {
    hw = gic.Route(World::kSecure, kIrqNpu, World::kSecure);
  }
  if (!hw.ok()) {
    // The job can never launch now (its takeover window is spent); retire it
    // with the real error so a waiting TA sees the hardware failure instead
    // of WaitForJob's drained-simulator fallback. No TZASC grant was applied
    // yet. (Both hw calls always succeed from the secure world today; this
    // is defensive completeness.)
    RetireFailedJob(job_id, hw, /*revert_tzasc=*/false);
    return SmcResult{std::move(hw), {}};
  }
  total_config_time_ += kTzpcConfigTime + kGicRouteTime;

  //  (2) Drain: wait for any previously launched non-secure job to finish
  //      before granting secure-memory access. Modeled as a poll loop.
  //  (3) TZASC grant + launch happen in EnterSecureModeAndLaunch.
  // The smc world switch and register writes take real (virtual) time.
  const SimDuration entry_delay =
      kSmcRoundTrip + kTzpcConfigTime + kGicRouteTime + 2 * kTzascConfigTime;
  platform_->sim().Schedule(entry_delay, [this, job_id] {
    EnterSecureModeAndLaunch(job_id);
  });
  return SmcResult{OkStatus(), {}};
}

void TeeNpuDriver::EnterSecureModeAndLaunch(uint64_t job_id) {
  if (platform_->npu().busy()) {
    // A non-secure job launched before the TZPC flip is still running; poll
    // until it drains. Its completion interrupt is now routed to the secure
    // world, so we also re-raise it to the REE handler semantics by simply
    // waiting: the REE driver sees completion via the shadow-complete path.
    platform_->sim().Schedule(10 * kMicrosecond,
                              [this, job_id] {
                                EnterSecureModeAndLaunch(job_id);
                              });
    return;
  }
  Tzasc& tzasc = platform_->tzasc();
  // Grant the NPU DMA access to the TA's two data regions.
  Status st = tzasc.SetDmaPermission(World::kSecure, kTzascIndexParams,
                                     DeviceId::kNpu, true);
  if (st.ok()) {
    st = tzasc.SetDmaPermission(World::kSecure, kTzascIndexScratch,
                                DeviceId::kNpu, true);
  }
  total_config_time_ += 2 * kTzascConfigTime;

  SecureJob& job = jobs_[job_id];
  if (st.ok()) {
    NpuJobDesc desc = job.desc;
    desc.duration += kNpuJobLaunchOverhead;
    st = platform_->npu().MmioLaunch(World::kSecure, desc);
    if (st.ok()) {
      job.state = JobState::kLaunched;
      // Entry-side measured switch time: takeover smc arrival to secure
      // launch, drain polls included (vs the PerJobSwitchCost model, which
      // assumes an idle device).
      job.launched_at = platform_->sim().Now();
      total_measured_switch_time_ +=
          kSmcRoundTrip + (job.launched_at - job.takeover_at);
    }
  }
  if (!st.ok()) {
    TZLLM_LOG_WARN("tee-npu", "secure launch failed: %s",
                   st.ToString().c_str());
    RetireFailedJob(job_id, st, /*revert_tzasc=*/true);
  }
}

void TeeNpuDriver::RetireFailedJob(uint64_t job_id, const Status& st,
                                   bool revert_tzasc) {
  SecureJob& job = jobs_[job_id];
  job.state = JobState::kCompleted;
  job.completion_status = st;
  job.finished = true;
  job.desc.compute = nullptr;  // Release the functional payload.
  running_job_ = 0;
  auto cb = std::move(job.on_complete);
  // Revert to non-secure mode (in reverse order of application) and release
  // the shadow job so the REE scheduling queue proceeds.
  if (revert_tzasc) {
    Tzasc& tzasc = platform_->tzasc();
    (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexParams,
                                 DeviceId::kNpu, false);
    (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexScratch,
                                 DeviceId::kNpu, false);
  }
  (void)platform_->gic().Route(World::kSecure, kIrqNpu, World::kNonSecure);
  (void)platform_->tzpc().SetSecure(World::kSecure, DeviceId::kNpu, false);
  SmcArgs args;
  args.a[0] = job_id;
  platform_->monitor().RpcToRee(SmcFunc::kRpcNpuShadowComplete, args);
  if (cb) {
    cb(st);
  }
}

void TeeNpuDriver::OnSecureCompletion() {
  if (running_job_ == 0 ||
      jobs_[running_job_].state != JobState::kLaunched) {
    return;  // Spurious: e.g. a drained non-secure job's completion.
  }
  const uint64_t job_id = running_job_;
  running_job_ = 0;
  SecureJob& job = jobs_[job_id];
  job.state = JobState::kCompleted;
  ++secure_jobs_completed_;
  total_job_npu_time_ += job.desc.duration + kNpuJobLaunchOverhead;
  total_matmuls_completed_ += job.desc.matmuls.size();

  // The device latches the job's fault state in its status register; read
  // it while the MMIO window is still secure so a failing functional
  // payload propagates to the waiter instead of completing silently.
  Status payload_status;
  (void)platform_->npu().MmioReadJobStatus(World::kSecure, &payload_status);
  if (!payload_status.ok() && !job.abandoned) {
    // A driver-initiated abort also latches an error in the status
    // register, but no payload ran — only genuine payload faults count.
    ++payload_failures_;
  }
  const SimTime irq_at = platform_->sim().Now();

  // Secure-mode exit: revoke TZASC grants, re-route the interrupt, return
  // the MMIO window to the REE, then tell the control plane.
  Tzasc& tzasc = platform_->tzasc();
  (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexParams,
                               DeviceId::kNpu, false);
  (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexScratch,
                               DeviceId::kNpu, false);
  (void)platform_->gic().Route(World::kSecure, kIrqNpu, World::kNonSecure);
  (void)platform_->tzpc().SetSecure(World::kSecure, DeviceId::kNpu, false);
  total_config_time_ += 2 * kTzascConfigTime + kGicRouteTime + kTzpcConfigTime;

  // The reverse reprogramming plus the shadow-complete and next-enqueue smc
  // round trips cost real time before the control plane (and the TA's
  // completion path) proceed.
  const SimDuration exit_delay =
      2 * kTzascConfigTime + kGicRouteTime + kTzpcConfigTime +
      2 * kSmcRoundTrip;
  platform_->sim().Schedule(exit_delay, [this, job_id, irq_at,
                                         payload_status] {
    SmcArgs args;
    args.a[0] = job_id;
    platform_->monitor().RpcToRee(SmcFunc::kRpcNpuShadowComplete, args);
    total_smc_time_ += kSmcRoundTrip;
    // Exit-side measured switch time: completion interrupt to the shadow
    // job handed back to the REE queue.
    total_measured_switch_time_ += platform_->sim().Now() - irq_at;
    SecureJob& done = jobs_[job_id];
    done.completion_status = payload_status;
    done.finished = true;
    // The device is done with the execution context: release the functional
    // payload (it pins the job's input buffers) for callers that keep the
    // entry around instead of consuming it via WaitForJob.
    done.desc.compute = nullptr;
    auto cb = std::move(done.on_complete);
    if (cb) {
      cb(payload_status);
    }
  });
}

}  // namespace tzllm
