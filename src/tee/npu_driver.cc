#include "src/tee/npu_driver.h"

#include <utility>

#include "src/common/log.h"

namespace tzllm {

TeeNpuDriver::TeeNpuDriver(SocPlatform* platform, TeeOs* tee_os)
    : platform_(platform), tee_os_(tee_os) {}

void TeeNpuDriver::Init() {
  platform_->monitor().InstallSecureHandler(
      SmcFunc::kNpuTakeover,
      [this](const SmcArgs& args) { return OnTakeover(args); });
  // Secure completion interrupt: fires while the NPU line is routed to the
  // secure world.
  platform_->gic().RegisterHandler(World::kSecure, kIrqNpu,
                                   [this] { OnSecureCompletion(); });
}

void TeeNpuDriver::ArmFaultPlan(const NpuFaultPlan& plan) {
  {
    MutexLock lock(&mu_);
    fault_plan_ = plan;
    fault_seq_base_ = next_issue_seq_ - 1;
    injected_faults_ = 0;
  }
  // Device-visible classes (payload, timeout) live at the NPU; forwarding
  // the whole plan is harmless — each layer only acts on its own classes.
  platform_->npu().ArmFaultPlan(plan);
}

void TeeNpuDriver::RecordRecovery(uint64_t recovered_jobs,
                                  uint64_t fallback_jobs,
                                  uint64_t fallback_matmuls) {
  MutexLock lock(&mu_);
  jobs_recovered_ += recovered_jobs;
  fallback_jobs_ += fallback_jobs;
  fallback_matmuls_ += fallback_matmuls;
}

uint64_t TeeNpuDriver::jobs_created() const {
  MutexLock lock(&mu_);
  return next_job_id_ - 1;
}
uint64_t TeeNpuDriver::secure_jobs_completed() const {
  MutexLock lock(&mu_);
  return secure_jobs_completed_;
}
uint64_t TeeNpuDriver::validation_failures() const {
  MutexLock lock(&mu_);
  return validation_failures_;
}
SimDuration TeeNpuDriver::total_config_time() const {
  MutexLock lock(&mu_);
  return total_config_time_;
}
SimDuration TeeNpuDriver::total_smc_time() const {
  MutexLock lock(&mu_);
  return total_smc_time_;
}
SimDuration TeeNpuDriver::total_job_npu_time() const {
  MutexLock lock(&mu_);
  return total_job_npu_time_;
}
uint64_t TeeNpuDriver::total_matmuls_completed() const {
  MutexLock lock(&mu_);
  return total_matmuls_completed_;
}
SimDuration TeeNpuDriver::total_measured_switch_time() const {
  MutexLock lock(&mu_);
  return total_measured_switch_time_;
}
uint64_t TeeNpuDriver::payload_failures() const {
  MutexLock lock(&mu_);
  return payload_failures_;
}
uint64_t TeeNpuDriver::jobs_abandoned() const {
  MutexLock lock(&mu_);
  return jobs_abandoned_;
}
uint64_t TeeNpuDriver::jobs_recovered() const {
  MutexLock lock(&mu_);
  return jobs_recovered_;
}
uint64_t TeeNpuDriver::fallback_jobs() const {
  MutexLock lock(&mu_);
  return fallback_jobs_;
}
uint64_t TeeNpuDriver::fallback_matmuls() const {
  MutexLock lock(&mu_);
  return fallback_matmuls_;
}

uint64_t TeeNpuDriver::faults_injected() const {
  // Leaf-only locking: read the device's counter first, outside mu_.
  const uint64_t device_faults = platform_->npu().faults_injected();
  MutexLock lock(&mu_);
  return injected_faults_ + device_faults;
}

void TeeNpuDriver::MarkSeqDeadLocked(uint64_t seq) {
  dead_seqs_.insert(seq);
  while (!dead_seqs_.empty() && *dead_seqs_.begin() == next_exec_seq_) {
    dead_seqs_.erase(dead_seqs_.begin());
    ++next_exec_seq_;
  }
}

Result<uint64_t> TeeNpuDriver::CreateJob(TaId ta, const NpuJobDesc& desc) {
  // Region containment implies ownership today (one TA per protected
  // region); `ta` stays in the signature for the multi-TA region registry.
  (void)ta;
  // The execution context must be confined to the TA's protected regions:
  // otherwise a compromised TA (or a confused deputy) could point the NPU at
  // other TAs' memory. This is the "TEE OS only allows the NPU to access the
  // execution contexts of secure NPU jobs" property (§4.3 Minimal TCB).
  // The TEE OS region queries are read-only and happen before mu_ is taken.
  auto in_regions = [&](PhysAddr addr, uint64_t len) {
    if (len == 0) {
      return true;
    }
    return tee_os_->InProtectedRegion(SecureRegionId::kParams, addr, len) ||
           tee_os_->InProtectedRegion(SecureRegionId::kScratch, addr, len);
  };
  bool valid = in_regions(desc.cmd_addr, desc.cmd_size) &&
               in_regions(desc.iopt_addr, desc.iopt_size);
  const char* what = "NPU job context outside TA secure regions";
  if (valid) {
    for (const auto& [addr, len] : desc.buffers) {
      if (!in_regions(addr, len)) {
        valid = false;
        what = "NPU job buffer outside TA secure regions";
        break;
      }
    }
  }
  MutexLock lock(&mu_);
  if (!valid) {
    ++validation_failures_;
    return SecurityViolation(what);
  }
  const uint64_t id = next_job_id_++;
  SecureJob job;
  job.desc = desc;
  jobs_.emplace(id, std::move(job));
  return id;
}

Status TeeNpuDriver::IssueJob(uint64_t job_id,
                              std::function<void(Status)> on_complete) {
  bool inject_submit_stall = false;
  {
    MutexLock lock(&mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return NotFound("unknown secure NPU job");
    }
    SecureJob& job = it->second;
    if (job.state != JobState::kInitialized) {
      return FailedPrecondition("job already issued");
    }
    job.state = JobState::kIssued;
    job.seq = next_issue_seq_++;
    job.on_complete = std::move(on_complete);

    // Injected post-submit stall: the job is issued but its shadow is lost
    // on the way to the REE queue — no takeover will ever arrive, so the
    // waiter's deadline (and the sequence-hole bookkeeping in WaitForJob's
    // abandon path) is the only way out. Models a dropped RPC / wedged
    // control plane.
    if (fault_plan_.fault == NpuFaultClass::kSubmit &&
        fault_plan_.Hits(FaultOrdinalLocked(job.seq))) {
      ++injected_faults_;
      inject_submit_stall = true;
    }
  }
  if (inject_submit_stall) {
    TZLLM_LOG_WARN("tee-npu", "injected post-submit stall on job %llu",
                   static_cast<unsigned long long>(job_id));
    return OkStatus();
  }

  // Pair with a shadow job in the REE scheduling queue. The RPC re-enters
  // this driver on the same call stack when the shadow reaches the queue
  // head (REE ScheduleNext -> kNpuTakeover smc -> OnTakeover), so mu_ must
  // not be held here.
  SmcArgs args;
  args.a[0] = job_id;
  const SmcResult r =
      platform_->monitor().RpcToRee(SmcFunc::kRpcNpuEnqueueShadow, args);
  {
    MutexLock lock(&mu_);
    total_smc_time_ += kSmcRoundTrip;
  }
  return r.status;
}

Result<uint64_t> TeeNpuDriver::SubmitJob(
    TaId ta, const NpuJobDesc& desc, std::function<void(Status)> on_complete) {
  auto id = CreateJob(ta, desc);
  if (!id.ok()) {
    return id.status();
  }
  TZLLM_RETURN_IF_ERROR(IssueJob(*id, std::move(on_complete)));
  return *id;
}

Status TeeNpuDriver::WaitForJob(uint64_t job_id, SimDuration timeout) {
  bool finished = false;
  {
    MutexLock lock(&mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return NotFound("unknown secure NPU job");
    }
    finished = it->second.finished;
  }
  if (!finished) {
    // Everything between issue and completion — shadow-queue scheduling,
    // takeover smc, world switches, the NPU execution itself and the exit
    // path — is simulator events; drive them until this job retires (or the
    // virtual deadline passes: a busy simulator must not let a lost job
    // spin the waiter forever). The predicate runs between events, so
    // taking mu_ inside it nests no locks.
    const SimTime deadline =
        timeout > 0 ? platform_->sim().Now() + timeout : 0;
    platform_->sim().RunUntilIdleOr([this, job_id, deadline] {
      const SimTime now = platform_->sim().Now();
      MutexLock lock(&mu_);
      auto jt = jobs_.find(job_id);
      if (jt == jobs_.end() || jt->second.finished) {
        return true;
      }
      return deadline != 0 && now >= deadline;
    });
    bool settled = false;
    bool need_abort = false;
    {
      MutexLock lock(&mu_);
      auto it = jobs_.find(job_id);
      if (it != jobs_.end() && it->second.finished) {
        settled = true;
      } else if (it != jobs_.end()) {
        // The caller is abandoning the job: neutralize its payload and
        // callback so a later revival of the stuck shadow cannot write
        // through pointers whose owner is gone. The entry itself stays —
        // the replay/reorder sequencing defenses still account for it.
        SecureJob& job = it->second;
        if (job.state == JobState::kLaunched && running_job_ == job_id) {
          // Already launched: the device captured its own payload copy at
          // MmioLaunch, so nulling our descriptor is not enough — abort
          // the device's compute stage below, once mu_ is dropped (the NPU
          // is still secure while its job runs, so the MMIO write passes
          // the TZPC gate). For a stalled device the abort doubles as the
          // reset that finally raises the completion interrupt, so the
          // exit path still runs and the device is reusable by the
          // caller's retry.
          need_abort = true;
        } else if (job.state == JobState::kIssued &&
                   running_job_ != job_id && job.seq >= next_exec_seq_) {
          // Issued but never taken over (lost shadow, or its takeover was
          // rejected): close its execution-sequence hole so successors'
          // takeovers aren't rejected as reorders forever, and spend its
          // window so a late takeover for it dies as a replay.
          job.state = JobState::kCompleted;
          MarkSeqDeadLocked(job.seq);
        }
        job.abandoned = true;
        job.desc.compute = nullptr;
        job.on_complete = nullptr;
        ++jobs_abandoned_;
      }
    }
    if (!settled) {
      if (need_abort) {
        // Best-effort device abort; failure leaves the payload dropped
        // driver-side either way.
        (void)platform_->npu().MmioAbort(World::kSecure);
      }
      if (deadline != 0 && platform_->sim().Now() >= deadline) {
        return DeadlineExceeded(
            "secure NPU job did not complete within the wait timeout");
      }
      return Internal(
          "simulator drained before secure NPU job completion (takeover "
          "rejected, or the shadow job never reached the queue head?)");
    }
  }
  // The status is consumed; drop the bookkeeping entry so a TA streaming
  // thousands of jobs (NPU prefill) doesn't grow the map without bound. A
  // replayed takeover for the erased id still dies in ValidateTakeover —
  // as an unknown-job (arbitrary-launch) violation instead of a replay.
  MutexLock lock(&mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return NotFound("unknown secure NPU job");
  }
  const Status status = it->second.completion_status;
  jobs_.erase(it);
  return status;
}

Result<bool> TeeNpuDriver::TryPollJob(uint64_t job_id) const {
  MutexLock lock(&mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return NotFound("unknown secure NPU job");
  }
  return it->second.finished;
}

Status TeeNpuDriver::ValidateTakeoverLocked(uint64_t job_id) const {
  auto it = jobs_.find(job_id);
  // Arbitrary-launch defense: the job must exist and have been initialized
  // by the TA through CreateJob.
  if (it == jobs_.end()) {
    return SecurityViolation("takeover for unknown job (arbitrary launch?)");
  }
  const SecureJob& job = it->second;
  // Replay defense: issued exactly once, not yet launched.
  if (job.state != JobState::kIssued) {
    return SecurityViolation("takeover replay / double launch rejected");
  }
  // Reorder defense: monotonic sequence check.
  if (job.seq != next_exec_seq_) {
    return SecurityViolation("takeover out of issue order rejected");
  }
  if (running_job_ != 0) {
    return FailedPrecondition("secure job already running");
  }
  return OkStatus();
}

SmcResult TeeNpuDriver::OnTakeover(const SmcArgs& args) {
  const uint64_t job_id = args.a[0];
  const SimTime now = platform_->sim().Now();
  enum class Outcome : uint8_t { kReject, kCtxFault, kProceed };
  Outcome outcome = Outcome::kProceed;
  Status st;
  std::function<void(Status)> cb;
  {
    MutexLock lock(&mu_);
    total_smc_time_ += kSmcRoundTrip;
    st = ValidateTakeoverLocked(job_id);
    if (!st.ok()) {
      ++validation_failures_;
      outcome = Outcome::kReject;
    } else {
      SecureJob& job = jobs_[job_id];
      if (fault_plan_.fault == NpuFaultClass::kContext &&
          fault_plan_.Hits(FaultOrdinalLocked(job.seq))) {
        // Injected context-validation fault: an otherwise-valid takeover is
        // rejected as if the job's execution context failed revalidation at
        // the secure boundary. Toward the REE this is exactly a real
        // validation failure (error SmcResult — the control plane drops the
        // shadow and keeps scheduling; no world switch was applied yet, so
        // there is nothing to revert and no shadow-complete RPC to
        // double-release). Unlike a real one, the job is retired finished
        // so its waiter reads a clean SecurityViolation, and its sequence
        // window is spent so successors' takeovers still validate.
        ++injected_faults_;
        ++validation_failures_;
        st = SecurityViolation("injected context-validation fault");
        job.state = JobState::kCompleted;
        job.finished = true;
        job.completion_status = st;
        job.desc.compute = nullptr;
        MarkSeqDeadLocked(job.seq);
        cb = std::move(job.on_complete);
        job.on_complete = nullptr;
        outcome = Outcome::kCtxFault;
      } else {
        // The job stays kIssued until the doorbell actually rings: a
        // drained non-secure job's completion interrupt (now routed to the
        // secure world) must not be mistaken for the secure job's
        // completion.
        ++next_exec_seq_;
        running_job_ = job_id;
        job.takeover_at = now;
      }
    }
  }
  if (outcome == Outcome::kReject) {
    TZLLM_LOG_WARN("tee-npu", "takeover validation failed: %s",
                   st.ToString().c_str());
    return SmcResult{std::move(st), {}};
  }
  if (outcome == Outcome::kCtxFault) {
    if (cb) {
      cb(st);
    }
    return SmcResult{std::move(st), {}};
  }

  // Secure-mode entry, in the paper's mandated order:
  //  (1) TZPC: isolate the NPU MMIO from the REE; GIC: route its interrupt
  //      to the secure world. From here no *new* non-secure job can launch.
  Tzpc& tzpc = platform_->tzpc();
  Gic& gic = platform_->gic();
  Status hw = tzpc.SetSecure(World::kSecure, DeviceId::kNpu, true);
  if (hw.ok()) {
    hw = gic.Route(World::kSecure, kIrqNpu, World::kSecure);
  }
  if (!hw.ok()) {
    // The job can never launch now (its takeover window is spent); retire it
    // with the real error so a waiting TA sees the hardware failure instead
    // of WaitForJob's drained-simulator fallback. No TZASC grant was applied
    // yet. (Both hw calls always succeed from the secure world today; this
    // is defensive completeness.)
    RetireFailedJob(job_id, hw, /*revert_tzasc=*/false);
    return SmcResult{std::move(hw), {}};
  }
  {
    MutexLock lock(&mu_);
    total_config_time_ += kTzpcConfigTime + kGicRouteTime;
  }

  //  (2) Drain: wait for any previously launched non-secure job to finish
  //      before granting secure-memory access. Modeled as a poll loop.
  //  (3) TZASC grant + launch happen in EnterSecureModeAndLaunch.
  // The smc world switch and register writes take real (virtual) time.
  const SimDuration entry_delay =
      kSmcRoundTrip + kTzpcConfigTime + kGicRouteTime + 2 * kTzascConfigTime;
  platform_->sim().Schedule(entry_delay, [this, job_id] {
    EnterSecureModeAndLaunch(job_id);
  });
  return SmcResult{OkStatus(), {}};
}

void TeeNpuDriver::EnterSecureModeAndLaunch(uint64_t job_id) {
  if (platform_->npu().busy()) {
    // A non-secure job launched before the TZPC flip is still running; poll
    // until it drains. Its completion interrupt is now routed to the secure
    // world, so we also re-raise it to the REE handler semantics by simply
    // waiting: the REE driver sees completion via the shadow-complete path.
    platform_->sim().Schedule(10 * kMicrosecond,
                              [this, job_id] {
                                EnterSecureModeAndLaunch(job_id);
                              });
    return;
  }
  Tzasc& tzasc = platform_->tzasc();
  // Grant the NPU DMA access to the TA's two data regions.
  Status st = tzasc.SetDmaPermission(World::kSecure, kTzascIndexParams,
                                     DeviceId::kNpu, true);
  if (st.ok()) {
    st = tzasc.SetDmaPermission(World::kSecure, kTzascIndexScratch,
                                DeviceId::kNpu, true);
  }

  NpuJobDesc desc;
  {
    MutexLock lock(&mu_);
    total_config_time_ += 2 * kTzascConfigTime;
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return;  // Defensive: the entry outlives every launch path today.
    }
    if (st.ok()) {
      desc = it->second.desc;
    }
  }
  if (st.ok()) {
    // The MMIO doorbell is rung without mu_ held (device model, TZASC
    // checks); the descriptor copy above is the launch snapshot.
    desc.duration += kNpuJobLaunchOverhead;
    st = platform_->npu().MmioLaunch(World::kSecure, desc);
    if (st.ok()) {
      const SimTime launched_at = platform_->sim().Now();
      MutexLock lock(&mu_);
      auto it = jobs_.find(job_id);
      if (it != jobs_.end()) {
        SecureJob& job = it->second;
        job.state = JobState::kLaunched;
        // Entry-side measured switch time: takeover smc arrival to secure
        // launch, drain polls included (vs the PerJobSwitchCost model,
        // which assumes an idle device).
        job.launched_at = launched_at;
        total_measured_switch_time_ +=
            kSmcRoundTrip + (launched_at - job.takeover_at);
      }
    }
  }
  if (!st.ok()) {
    TZLLM_LOG_WARN("tee-npu", "secure launch failed: %s",
                   st.ToString().c_str());
    RetireFailedJob(job_id, st, /*revert_tzasc=*/true);
  }
}

void TeeNpuDriver::RetireFailedJob(uint64_t job_id, const Status& st,
                                   bool revert_tzasc) {
  std::function<void(Status)> cb;
  {
    MutexLock lock(&mu_);
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) {
      SecureJob& job = it->second;
      job.state = JobState::kCompleted;
      job.completion_status = st;
      job.finished = true;
      job.desc.compute = nullptr;  // Release the functional payload.
      cb = std::move(job.on_complete);
      job.on_complete = nullptr;
    }
    running_job_ = 0;
  }
  // Revert to non-secure mode (in reverse order of application) and release
  // the shadow job so the REE scheduling queue proceeds. The reverts and
  // the RPC (which re-enters the REE scheduler and possibly this driver)
  // run outside mu_.
  if (revert_tzasc) {
    Tzasc& tzasc = platform_->tzasc();
    (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexParams,
                                 DeviceId::kNpu, false);
    (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexScratch,
                                 DeviceId::kNpu, false);
  }
  (void)platform_->gic().Route(World::kSecure, kIrqNpu, World::kNonSecure);
  (void)platform_->tzpc().SetSecure(World::kSecure, DeviceId::kNpu, false);
  SmcArgs args;
  args.a[0] = job_id;
  platform_->monitor().RpcToRee(SmcFunc::kRpcNpuShadowComplete, args);
  if (cb) {
    cb(st);
  }
}

void TeeNpuDriver::OnSecureCompletion() {
  uint64_t job_id = 0;
  bool abandoned = false;
  {
    MutexLock lock(&mu_);
    if (running_job_ == 0) {
      return;  // Spurious: e.g. a drained non-secure job's completion.
    }
    auto it = jobs_.find(running_job_);
    if (it == jobs_.end() || it->second.state != JobState::kLaunched) {
      return;  // Spurious.
    }
    job_id = running_job_;
    running_job_ = 0;
    SecureJob& job = it->second;
    job.state = JobState::kCompleted;
    ++secure_jobs_completed_;
    total_job_npu_time_ += job.desc.duration + kNpuJobLaunchOverhead;
    total_matmuls_completed_ += job.desc.matmuls.size();
    abandoned = job.abandoned;
  }

  // The device latches the job's fault state in its status register; read
  // it while the MMIO window is still secure so a failing functional
  // payload propagates to the waiter instead of completing silently.
  Status payload_status;
  (void)platform_->npu().MmioReadJobStatus(World::kSecure, &payload_status);
  if (!payload_status.ok() && !abandoned) {
    // A driver-initiated abort also latches an error in the status
    // register, but no payload ran — only genuine payload faults count.
    MutexLock lock(&mu_);
    ++payload_failures_;
  }
  const SimTime irq_at = platform_->sim().Now();

  // Secure-mode exit: revoke TZASC grants, re-route the interrupt, return
  // the MMIO window to the REE, then tell the control plane.
  Tzasc& tzasc = platform_->tzasc();
  (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexParams,
                               DeviceId::kNpu, false);
  (void)tzasc.SetDmaPermission(World::kSecure, kTzascIndexScratch,
                               DeviceId::kNpu, false);
  (void)platform_->gic().Route(World::kSecure, kIrqNpu, World::kNonSecure);
  (void)platform_->tzpc().SetSecure(World::kSecure, DeviceId::kNpu, false);
  {
    MutexLock lock(&mu_);
    total_config_time_ +=
        2 * kTzascConfigTime + kGicRouteTime + kTzpcConfigTime;
  }

  // The reverse reprogramming plus the shadow-complete and next-enqueue smc
  // round trips cost real time before the control plane (and the TA's
  // completion path) proceed.
  const SimDuration exit_delay =
      2 * kTzascConfigTime + kGicRouteTime + kTzpcConfigTime +
      2 * kSmcRoundTrip;
  platform_->sim().Schedule(exit_delay, [this, job_id, irq_at,
                                         payload_status] {
    SmcArgs args;
    args.a[0] = job_id;
    // The shadow-complete RPC re-enters the REE scheduler (and possibly
    // this driver, via the next shadow's takeover) — before mu_ is taken.
    platform_->monitor().RpcToRee(SmcFunc::kRpcNpuShadowComplete, args);
    const SimTime handed_back_at = platform_->sim().Now();
    std::function<void(Status)> cb;
    {
      MutexLock lock(&mu_);
      total_smc_time_ += kSmcRoundTrip;
      // Exit-side measured switch time: completion interrupt to the shadow
      // job handed back to the REE queue.
      total_measured_switch_time_ += handed_back_at - irq_at;
      auto it = jobs_.find(job_id);
      if (it != jobs_.end()) {
        SecureJob& done = it->second;
        done.completion_status = payload_status;
        done.finished = true;
        // The device is done with the execution context: release the
        // functional payload (it pins the job's input buffers) for callers
        // that keep the entry around instead of consuming it via
        // WaitForJob.
        done.desc.compute = nullptr;
        cb = std::move(done.on_complete);
        done.on_complete = nullptr;
      }
    }
    if (cb) {
      cb(payload_status);
    }
  });
}

}  // namespace tzllm
