// TEE OS model: trusted-application isolation, the pipeline-aware secure
// memory management interface (paper §4.2, Figure 7a), the model-key service
// (§6) and TEE-managed TA thread synchronization (§3.2).
//
// The paper extends a 17-KLoC production TEE OS by only ~112 LoC; this class
// is the union of that extension and the interfaces the extension relies on.
// The three-verb memory interface is implemented exactly as specified:
//
//   extend_allocated(region, size)  — delegate to REE CMA, VERIFY the
//                                     returned extent is adjacent to the
//                                     previous one (Iago defense);
//   extend_protected(region, size)  — grow the TZASC region over already-
//                                     allocated memory and map it into the
//                                     TA's address space;
//   shrink(region, size)            — scrub, unmap, shrink TZASC, return the
//                                     tail extent to the REE CMA.

#ifndef SRC_TEE_TEE_OS_H_
#define SRC_TEE_TEE_OS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/calibration.h"
#include "src/common/status.h"
#include "src/crypto/key_hierarchy.h"
#include "src/hw/platform.h"
#include "src/ree/tz_driver.h"

namespace tzllm {

using TaId = int;

// TZASC region indices reserved by the TEE OS.
inline constexpr int kTzascIndexTeeOs = 0;    // TEE OS static carveout.
inline constexpr int kTzascIndexParams = 1;   // LLM parameters (scalable).
inline constexpr int kTzascIndexScratch = 2;  // KV cache / activations / etc.

struct SecureRegionStats {
  PhysAddr base = 0;
  uint64_t allocated_bytes = 0;  // CMA-allocated (possibly unprotected tail).
  uint64_t protected_bytes = 0;  // TZASC-covered prefix.
};

class TeeOs {
 public:
  TeeOs(SocPlatform* platform, TzDriver* tz_driver, uint64_t root_key_seed);

  // Boot-time setup: claims the TEE OS static carveout and learns the CMA
  // region geometry for the two scalable regions.
  Status Boot();

  // --- TA management. ---
  Result<TaId> CreateTa(const std::string& name);
  bool TaCanAccess(TaId ta, PhysAddr addr, uint64_t len) const;

  // --- Secure memory scaling (Figure 7a). ---
  // Returns the CPU time consumed REE-side by CMA migration; the caller
  // (restoration pipeline) accounts it on a CPU lane.
  Result<CmaExtent> ExtendAllocated(TaId ta, SecureRegionId region,
                                    uint64_t bytes);
  Status ExtendProtected(TaId ta, SecureRegionId region, uint64_t bytes);
  // Scrubs and releases `bytes` from the end of the region. Returns the CPU
  // time spent scrubbing.
  Result<SimDuration> Shrink(TaId ta, SecureRegionId region, uint64_t bytes);

  SecureRegionStats RegionStats(SecureRegionId region) const;
  PhysAddr RegionBase(SecureRegionId region) const;
  // True if [addr, addr+len) lies inside the protected part of the region.
  bool InProtectedRegion(SecureRegionId region, PhysAddr addr,
                         uint64_t len) const;

  // --- Model key service (§6). ---
  // Provisioning: store a wrapped key blob (normally read from flash).
  void InstallWrappedKey(const WrappedModelKey& wrapped);
  // Unwraps for an authorized TA only (the LLM TA). The REE never sees this.
  Result<AesKey128> GetModelKey(TaId ta, const std::string& model_id);
  Status AuthorizeKeyAccess(TaId ta, const std::string& model_id);

  // --- TA thread scheduling defense (§3.2, §6 Iago / CPU scheduling). ---
  // TA threads register; the REE resumes them by id via kResumeTaThread. The
  // TEE OS refuses to run a thread that TEE-managed synchronization has
  // blocked, so a malicious REE scheduler cannot violate execution order.
  Status RegisterTaThread(TaId ta, int thread_id);
  Status BlockTaThread(int thread_id);    // Called by TEE-side sync objects.
  Status UnblockTaThread(int thread_id);
  Result<bool> TryResumeFromRee(int thread_id);  // smc entry point.

  const KeyHierarchy& keys() const { return keys_; }
  SocPlatform& platform() { return *platform_; }
  TzDriver& tz_driver() { return *tz_driver_; }

  uint64_t scrubbed_bytes() const { return scrubbed_bytes_; }
  uint64_t contiguity_rejections() const { return contiguity_rejections_; }

 private:
  struct RegionState {
    int tzasc_index = -1;
    PhysAddr expected_base = 0;  // CMA region base from the device tree.
    PhysAddr base = 0;           // Fixed at first allocation.
    uint64_t allocated = 0;
    uint64_t protected_bytes = 0;
    TaId owner = -1;
  };

  struct TaState {
    std::string name;
    // Mapped ranges (addr -> len).
    std::map<PhysAddr, uint64_t> mappings;
  };

  enum class ThreadState : uint8_t { kRunnable, kBlocked };

  RegionState& StateOf(SecureRegionId region);
  const RegionState& StateOf(SecureRegionId region) const;
  Status CheckOwner(TaId ta, const RegionState& state) const;

  SocPlatform* platform_;
  TzDriver* tz_driver_;
  KeyHierarchy keys_;
  RegionState params_region_;
  RegionState scratch_region_;
  std::unordered_map<TaId, TaState> tas_;
  std::unordered_map<std::string, WrappedModelKey> wrapped_keys_;
  std::unordered_map<std::string, TaId> key_authorizations_;
  std::unordered_map<int, ThreadState> ta_threads_;
  std::unordered_map<int, TaId> thread_owner_;
  TaId next_ta_id_ = 1;
  uint64_t scrubbed_bytes_ = 0;
  uint64_t contiguity_rejections_ = 0;
  bool booted_ = false;
};

}  // namespace tzllm

#endif  // SRC_TEE_TEE_OS_H_
