#include "src/tee/checkpoint.h"

#include <cstring>

#include "src/crypto/key_hierarchy.h"

namespace tzllm {

namespace {
constexpr char kMagic[8] = {'T', 'Z', 'C', 'K', 'P', 'T', '0', '1'};
}  // namespace

CheckpointService::CheckpointService(FlashDevice* flash) : flash_(flash) {}

Result<uint64_t> CheckpointService::Save(const std::string& model_id,
                                         const AesKey128& key,
                                         const std::vector<uint8_t>& state) {
  // Layout: magic | u64 payload_len | sha256(plaintext) | encrypted payload.
  std::vector<uint8_t> blob;
  blob.reserve(sizeof(kMagic) + 8 + 32 + state.size());
  blob.insert(blob.end(), kMagic, kMagic + sizeof(kMagic));
  const uint64_t len = state.size();
  for (int i = 0; i < 8; ++i) {
    blob.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  const Sha256Digest digest = Sha256::Hash(state.data(), state.size());
  blob.insert(blob.end(), digest.begin(), digest.end());

  std::vector<uint8_t> payload = state;
  AesCtr ctr(key, KeyHierarchy::ModelIv("ckpt/" + model_id));
  ctr.CryptAll(payload.data(), payload.size());
  blob.insert(blob.end(), payload.begin(), payload.end());

  const uint64_t total = blob.size();
  TZLLM_RETURN_IF_ERROR(flash_->CreateFile(FileName(model_id), std::move(blob)));
  return total;
}

Result<std::vector<uint8_t>> CheckpointService::Restore(
    const std::string& model_id, const AesKey128& key) {
  const std::string file = FileName(model_id);
  auto size = flash_->FileSize(file);
  if (!size.ok()) {
    return size.status();
  }
  if (*size < sizeof(kMagic) + 8 + 32) {
    return Status(ErrorCode::kDataCorruption, "checkpoint truncated");
  }
  std::vector<uint8_t> blob(*size);
  TZLLM_RETURN_IF_ERROR(flash_->PeekBytes(file, 0, *size, blob.data()));

  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status(ErrorCode::kDataCorruption, "checkpoint magic mismatch");
  }
  uint64_t len = 0;
  for (int i = 7; i >= 0; --i) {
    len = (len << 8) | blob[sizeof(kMagic) + i];
  }
  if (sizeof(kMagic) + 8 + 32 + len != *size) {
    return Status(ErrorCode::kDataCorruption, "checkpoint length mismatch");
  }
  Sha256Digest stored;
  std::memcpy(stored.data(), blob.data() + sizeof(kMagic) + 8, 32);

  std::vector<uint8_t> payload(blob.begin() + sizeof(kMagic) + 8 + 32,
                               blob.end());
  AesCtr ctr(key, KeyHierarchy::ModelIv("ckpt/" + model_id));
  ctr.CryptAll(payload.data(), payload.size());

  if (Sha256::Hash(payload.data(), payload.size()) != stored) {
    return Status(ErrorCode::kDataCorruption,
                  "checkpoint integrity check failed");
  }
  return payload;
}

bool CheckpointService::Exists(const std::string& model_id) const {
  return flash_->Exists(FileName(model_id));
}

Status CheckpointService::Delete(const std::string& model_id) {
  return flash_->DeleteFile(FileName(model_id));
}

}  // namespace tzllm
