#include "src/tee/tee_os.h"

#include "src/common/log.h"

namespace tzllm {

TeeOs::TeeOs(SocPlatform* platform, TzDriver* tz_driver,
             uint64_t root_key_seed)
    : platform_(platform), tz_driver_(tz_driver), keys_(root_key_seed) {}

Status TeeOs::Boot() {
  if (booted_) {
    return FailedPrecondition("TEE OS already booted");
  }
  // Learn the CMA geometry (device-tree knowledge: base addresses of the two
  // scalable regions). The TEE trusts its own configuration, not the REE.
  ReeMemoryManager& mm = tz_driver_->memory();
  params_region_.tzasc_index = kTzascIndexParams;
  params_region_.expected_base = mm.param_cma_base();
  scratch_region_.tzasc_index = kTzascIndexScratch;
  scratch_region_.expected_base = mm.scratch_cma_base();

  // Static TEE OS carveout: the first 64 MiB of DRAM after the kernel is a
  // simplification; any fixed region works. It is TZASC region 0.
  TZLLM_RETURN_IF_ERROR(platform_->tzasc().ConfigureRegion(
      World::kSecure, kTzascIndexTeeOs, /*base=*/128 * kMiB,
      /*size=*/64 * kMiB));

  // Install the shadow-thread resume entry point.
  platform_->monitor().InstallSecureHandler(
      SmcFunc::kResumeTaThread, [this](const SmcArgs& args) {
        auto ran = TryResumeFromRee(static_cast<int>(args.a[0]));
        if (!ran.ok()) {
          return SmcResult{ran.status(), {}};
        }
        SmcResult result{OkStatus(), {}};
        result.r[0] = *ran ? 1 : 0;
        return result;
      });

  booted_ = true;
  return OkStatus();
}

Result<TaId> TeeOs::CreateTa(const std::string& name) {
  const TaId id = next_ta_id_++;
  tas_[id] = TaState{name, {}};
  return id;
}

bool TeeOs::TaCanAccess(TaId ta, PhysAddr addr, uint64_t len) const {
  auto it = tas_.find(ta);
  if (it == tas_.end()) {
    return false;
  }
  // Find the last mapping starting at or before addr.
  const auto& mappings = it->second.mappings;
  auto m = mappings.upper_bound(addr);
  if (m == mappings.begin()) {
    return false;
  }
  --m;
  return addr >= m->first && addr + len <= m->first + m->second;
}

TeeOs::RegionState& TeeOs::StateOf(SecureRegionId region) {
  return region == SecureRegionId::kParams ? params_region_ : scratch_region_;
}
const TeeOs::RegionState& TeeOs::StateOf(SecureRegionId region) const {
  return region == SecureRegionId::kParams ? params_region_ : scratch_region_;
}

Status TeeOs::CheckOwner(TaId ta, const RegionState& state) const {
  if (state.owner != -1 && state.owner != ta) {
    return PermissionDenied("secure region owned by another TA");
  }
  return OkStatus();
}

Result<CmaExtent> TeeOs::ExtendAllocated(TaId ta, SecureRegionId region,
                                         uint64_t bytes) {
  if (tas_.count(ta) == 0) {
    return InvalidArgument("unknown TA");
  }
  RegionState& state = StateOf(region);
  TZLLM_RETURN_IF_ERROR(CheckOwner(ta, state));
  bytes = AlignUp(bytes, kPageSize);

  const PhysAddr expected =
      state.allocated == 0 ? state.expected_base : state.base + state.allocated;
  auto extent = tz_driver_->CmaAlloc(region, expected, bytes);
  if (!extent.ok()) {
    return extent.status();
  }
  // Iago defense (§6): the REE kernel may return an arbitrary address; the
  // TEE accepts only the extent adjacent to previously allocated memory.
  if (extent->addr != expected || extent->bytes != bytes) {
    ++contiguity_rejections_;
    // Return the bogus extent so the (untrusted) allocation is not leaked.
    (void)tz_driver_->CmaFree(region, extent->addr, extent->bytes);
    return SecurityViolation(
        "REE returned a non-contiguous CMA extent; rejected");
  }
  if (state.allocated == 0) {
    state.base = extent->addr;
    state.owner = ta;
  }
  state.allocated += bytes;
  return *extent;
}

Status TeeOs::ExtendProtected(TaId ta, SecureRegionId region, uint64_t bytes) {
  RegionState& state = StateOf(region);
  TZLLM_RETURN_IF_ERROR(CheckOwner(ta, state));
  bytes = AlignUp(bytes, kPageSize);
  if (state.protected_bytes + bytes > state.allocated) {
    return FailedPrecondition("extend_protected beyond allocated memory");
  }
  if (state.protected_bytes == 0) {
    TZLLM_RETURN_IF_ERROR(platform_->tzasc().ConfigureRegion(
        World::kSecure, state.tzasc_index, state.base, bytes));
  } else {
    TZLLM_RETURN_IF_ERROR(platform_->tzasc().ResizeRegion(
        World::kSecure, state.tzasc_index, state.protected_bytes + bytes));
  }
  // Map the newly protected extent into the TA's address space.
  tas_[ta].mappings[state.base + state.protected_bytes] = bytes;
  state.protected_bytes += bytes;
  return OkStatus();
}

Result<SimDuration> TeeOs::Shrink(TaId ta, SecureRegionId region,
                                  uint64_t bytes) {
  RegionState& state = StateOf(region);
  TZLLM_RETURN_IF_ERROR(CheckOwner(ta, state));
  bytes = AlignUp(bytes, kPageSize);
  if (bytes > state.protected_bytes) {
    return FailedPrecondition("shrink beyond protected memory");
  }
  const PhysAddr tail = state.base + state.protected_bytes - bytes;

  // 1. Unmap from the TA address space (must match mapped extents; the
  //    first-in-last-out pattern guarantees extent-aligned shrink for the
  //    LLM TA, but arbitrary callers get best-effort removal).
  auto& mappings = tas_[ta].mappings;
  for (auto it = mappings.lower_bound(tail); it != mappings.end();) {
    it = mappings.erase(it);
  }

  // 2. Scrub before the memory leaves the secure world (§4.2: "clears all
  //    sensitive data before releasing").
  TZLLM_RETURN_IF_ERROR(platform_->dram().Fill(tail, 0, bytes));
  scrubbed_bytes_ += bytes;
  const SimDuration scrub_time = TransferTime(bytes, kMemsetBw);

  // 3. Shrink the TZASC window, then return the pages to the REE.
  state.protected_bytes -= bytes;
  state.allocated -= bytes;
  TZLLM_RETURN_IF_ERROR(platform_->tzasc().ResizeRegion(
      World::kSecure, state.tzasc_index, state.protected_bytes));
  TZLLM_RETURN_IF_ERROR(tz_driver_->CmaFree(region, tail, bytes));
  if (state.allocated == 0) {
    state.owner = -1;
    state.base = 0;
  }
  return scrub_time;
}

SecureRegionStats TeeOs::RegionStats(SecureRegionId region) const {
  const RegionState& state = StateOf(region);
  return SecureRegionStats{state.base, state.allocated,
                           state.protected_bytes};
}

PhysAddr TeeOs::RegionBase(SecureRegionId region) const {
  const RegionState& state = StateOf(region);
  return state.base != 0 ? state.base : state.expected_base;
}

bool TeeOs::InProtectedRegion(SecureRegionId region, PhysAddr addr,
                              uint64_t len) const {
  const RegionState& state = StateOf(region);
  return state.protected_bytes >= len && addr >= state.base &&
         addr + len <= state.base + state.protected_bytes;
}

void TeeOs::InstallWrappedKey(const WrappedModelKey& wrapped) {
  wrapped_keys_[wrapped.model_id] = wrapped;
}

Status TeeOs::AuthorizeKeyAccess(TaId ta, const std::string& model_id) {
  if (tas_.count(ta) == 0) {
    return InvalidArgument("unknown TA");
  }
  key_authorizations_[model_id] = ta;
  return OkStatus();
}

Result<AesKey128> TeeOs::GetModelKey(TaId ta, const std::string& model_id) {
  auto auth = key_authorizations_.find(model_id);
  if (auth == key_authorizations_.end() || auth->second != ta) {
    return PermissionDenied("TA not authorized for this model key");
  }
  auto it = wrapped_keys_.find(model_id);
  if (it == wrapped_keys_.end()) {
    return NotFound("no wrapped key installed for model");
  }
  return keys_.UnwrapModelKey(it->second);
}

Status TeeOs::RegisterTaThread(TaId ta, int thread_id) {
  if (tas_.count(ta) == 0) {
    return InvalidArgument("unknown TA");
  }
  ta_threads_[thread_id] = ThreadState::kRunnable;
  thread_owner_[thread_id] = ta;
  return OkStatus();
}

Status TeeOs::BlockTaThread(int thread_id) {
  auto it = ta_threads_.find(thread_id);
  if (it == ta_threads_.end()) {
    return NotFound("unknown TA thread");
  }
  it->second = ThreadState::kBlocked;
  return OkStatus();
}

Status TeeOs::UnblockTaThread(int thread_id) {
  auto it = ta_threads_.find(thread_id);
  if (it == ta_threads_.end()) {
    return NotFound("unknown TA thread");
  }
  it->second = ThreadState::kRunnable;
  return OkStatus();
}

Result<bool> TeeOs::TryResumeFromRee(int thread_id) {
  auto it = ta_threads_.find(thread_id);
  if (it == ta_threads_.end()) {
    return Status(ErrorCode::kNotFound, "unknown TA thread");
  }
  // The REE scheduler proposes; TEE-managed synchronization disposes. A
  // thread blocked on a TEE-side primitive simply does not run (§3.2).
  return it->second == ThreadState::kRunnable;
}

}  // namespace tzllm
