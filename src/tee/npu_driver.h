// TEE NPU driver — the minimal data plane of the co-driver design (§4.3).
//
// Responsibilities (and nothing else — the control plane stays in the REE):
//   * initialize secure-job execution contexts (validated to live inside the
//     TA's TZASC regions),
//   * pair each secure job with a shadow job in the REE scheduling queue,
//   * on takeover: validate the job (initialized-but-not-launched, monotonic
//     sequence number), switch the NPU to secure mode in the paper's exact
//     order (TZPC+GIC first, drain non-secure work, then TZASC grant),
//     launch, and on the secure completion interrupt revert and notify.
//
// The driver runs as a *user-mode* TEE component (paper "Minimal TCB"): it
// only ever touches the NPU MMIO window and the job execution contexts; the
// TEE OS brokers all TZASC changes through region indices the driver cannot
// widen.
//
// Locking: mu_ guards the job table, the issue/execution sequence state and
// every statistic counter — the shared mutable surface the multi-session
// serving work will hit from concurrent session steps. Critical sections are
// leaf-only (thread_annotations.h): the SMC fabric re-enters this driver
// synchronously on ONE call stack (IssueJob -> REE ScheduleNext ->
// OnTakeover), so no platform/simulator/RPC call and no completion callback
// ever runs under mu_. Clang's -Wthread-safety proves the discipline on
// every path.

#ifndef SRC_TEE_NPU_DRIVER_H_
#define SRC_TEE_NPU_DRIVER_H_

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>

#include "src/common/calibration.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/hw/platform.h"
#include "src/tee/tee_os.h"

namespace tzllm {

class TeeNpuDriver {
 public:
  TeeNpuDriver(SocPlatform* platform, TeeOs* tee_os);

  // Installs the kNpuTakeover smc handler and the secure interrupt handler.
  void Init();

  // --- TA-facing API. ---
  // Validates and registers a secure job. The execution context (command
  // stream, I/O page table, buffers) must lie inside the TA's protected
  // TZASC regions; `ta` must own them. Returns the job id.
  Result<uint64_t> CreateJob(TaId ta, const NpuJobDesc& desc)
      TZLLM_EXCLUDES(mu_);

  // Assigns the next monotonic sequence number and enqueues the paired
  // shadow job in the REE driver. `on_complete` fires when the secure job
  // finishes (or fails validation at takeover time).
  Status IssueJob(uint64_t job_id, std::function<void(Status)> on_complete)
      TZLLM_EXCLUDES(mu_);

  // Convenience: create + issue.
  Result<uint64_t> SubmitJob(TaId ta, const NpuJobDesc& desc,
                             std::function<void(Status)> on_complete)
      TZLLM_EXCLUDES(mu_);

  // Synchronous-wait helper for TA-side callers that need a job's result
  // before proceeding (the NPU prefill backend): drives the simulator until
  // the job's completion path has fired, then returns the job's completion
  // status — which carries the functional payload's failure, if any, read
  // from the device's job-status register at the completion interrupt.
  // CONSUME-ONCE: the bookkeeping entry is erased once the wait resolves
  // (so a streaming TA doesn't grow the job map without bound) — a second
  // wait on the same id returns NotFound. Fails with kInternal if the
  // simulator drains first (a job that can never complete — e.g. its shadow
  // never reached the queue head), or with kDeadlineExceeded if `timeout`
  // (> 0) of virtual time elapses without completion; in both cases the
  // abandoned job's payload is neutralized — including the copy a LAUNCHED
  // job's device already captured, via the NPU's MMIO abort — so it can
  // never fire into caller memory the caller has since reclaimed.
  Status WaitForJob(uint64_t job_id, SimDuration timeout = 0)
      TZLLM_EXCLUDES(mu_);

  // Non-blocking completion query for the pipelined prefill schedule: true
  // once the job's completion path has fired (WaitForJob would return
  // without driving the simulator), false while in flight, NotFound for an
  // unknown/already-consumed id. Never consumes the bookkeeping entry.
  Result<bool> TryPollJob(uint64_t job_id) const TZLLM_EXCLUDES(mu_);

  // --- Deterministic fault injection (recovery tests, CI fault sweep). ---
  // Arms `plan` against jobs issued from now on: ordinals restart at 1,
  // driver-visible classes (kContext, kSubmit) are handled here, device-
  // visible classes (kPayload, kTimeout) are forwarded to the NPU device.
  // Arming the inactive plan disarms everything.
  void ArmFaultPlan(const NpuFaultPlan& plan) TZLLM_EXCLUDES(mu_);

  // Degradation accounting for the recovery layer. The NPU prefill backend
  // reports its per-job recovery outcomes here so one stats surface (this
  // driver — what the benches and the crosscheck already read) carries the
  // whole fault story: injected faults, abandoned jobs, retried-to-success
  // jobs and CPU-fallback re-executions.
  void RecordRecovery(uint64_t recovered_jobs, uint64_t fallback_jobs,
                      uint64_t fallback_matmuls) TZLLM_EXCLUDES(mu_);

  // --- Statistics (§7.3 breakdown; per-job figures for the bench). ---
  // Each getter takes mu_: the pipelined-prefill poll loop (and, soon, the
  // serving layer's metrics scrape) reads these while the driver mutates
  // them on the completion path.
  uint64_t jobs_created() const TZLLM_EXCLUDES(mu_);
  uint64_t secure_jobs_completed() const TZLLM_EXCLUDES(mu_);
  uint64_t validation_failures() const TZLLM_EXCLUDES(mu_);
  SimDuration total_config_time() const TZLLM_EXCLUDES(mu_);
  SimDuration total_smc_time() const TZLLM_EXCLUDES(mu_);
  // Sum of completed jobs' modeled NPU execution time (desc.duration plus
  // the per-launch doorbell overhead) — what the bench divides by job count
  // to report per-job co-driver overhead next to per-job useful work.
  SimDuration total_job_npu_time() const TZLLM_EXCLUDES(mu_);
  // Matmuls carried by completed jobs (NpuJobDesc::matmuls): divided by
  // secure_jobs_completed() this is the average fused-group size, the
  // number the job-fusion work is judged on.
  uint64_t total_matmuls_completed() const TZLLM_EXCLUDES(mu_);
  // MEASURED per-job world-switch overhead, as opposed to the
  // PerJobSwitchCost() model: virtual time actually elapsed on the secure
  // entry path (takeover smc -> launch, including any non-secure drain
  // polling) plus the exit path (completion interrupt -> shadow-complete
  // handed back). Equals the model when the device never needs draining;
  // exceeds it under contention — the bench reports both so the model is
  // validated against the protocol's real behavior.
  SimDuration total_measured_switch_time() const TZLLM_EXCLUDES(mu_);
  // Jobs whose functional payload reported a failure through the device's
  // job-status register (propagated to the waiter's completion status).
  uint64_t payload_failures() const TZLLM_EXCLUDES(mu_);
  // Jobs a waiter gave up on (timeout or drained simulator): payload
  // neutralized, sequence hole closed so successors still execute.
  uint64_t jobs_abandoned() const TZLLM_EXCLUDES(mu_);
  // Faults the armed plan injected (driver-visible classes plus whatever
  // the device injected for the same plan).
  uint64_t faults_injected() const TZLLM_EXCLUDES(mu_);
  // Recovery outcomes reported by the prefill backend (RecordRecovery):
  // jobs that failed at least once and then completed on the NPU via retry,
  // and jobs re-executed on the CPU after retries were exhausted.
  uint64_t jobs_recovered() const TZLLM_EXCLUDES(mu_);
  uint64_t fallback_jobs() const TZLLM_EXCLUDES(mu_);
  uint64_t fallback_matmuls() const TZLLM_EXCLUDES(mu_);

  // Per-secure-job fixed cost on the NPU timeline: world-switch smcs plus
  // TZPC/GIC/TZASC reprogramming in both directions.
  static constexpr SimDuration PerJobSwitchCost() {
    // takeover smc + enqueue RPC + complete RPC.
    return 3 * kSmcRoundTrip +
           // secure entry: TZPC + GIC + param/scratch TZASC grants.
           (kTzpcConfigTime + kGicRouteTime + 2 * kTzascConfigTime) +
           // secure exit: revoke in reverse.
           (kTzpcConfigTime + kGicRouteTime + 2 * kTzascConfigTime);
  }

 private:
  enum class JobState : uint8_t {
    kInitialized,
    kIssued,
    kLaunched,
    kCompleted,
  };

  struct SecureJob {
    NpuJobDesc desc;
    JobState state = JobState::kInitialized;
    uint64_t seq = 0;  // Monotonic issue sequence number.
    std::function<void(Status)> on_complete;
    // Set when the completion path has fully run (including the exit-side
    // world switch) — the condition WaitForJob spins the simulator on.
    bool finished = false;
    Status completion_status;
    // Virtual timestamps for the measured (not modeled) per-job switch
    // overhead: takeover smc arrival and secure launch.
    SimTime takeover_at = 0;
    SimTime launched_at = 0;
    // Set when a waiter timed out and the driver aborted the job: its
    // completion then carries the abort status, which is not a *payload*
    // failure (no payload ever ran).
    bool abandoned = false;
  };

  // smc kNpuTakeover entry: REE control plane hands over the NPU.
  SmcResult OnTakeover(const SmcArgs& args) TZLLM_EXCLUDES(mu_);
  Status ValidateTakeoverLocked(uint64_t job_id) const TZLLM_REQUIRES(mu_);
  void EnterSecureModeAndLaunch(uint64_t job_id) TZLLM_EXCLUDES(mu_);
  void OnSecureCompletion() TZLLM_EXCLUDES(mu_);
  // Failure retirement shared by the takeover and launch paths: record the
  // error on the job, drop the payload, revert the world switch (TZASC
  // grants only if they were applied), release the shadow, fire the
  // callback. EXCLUDES(mu_): the shadow-complete RPC re-enters the REE
  // scheduler, which may immediately issue the next takeover back into us.
  void RetireFailedJob(uint64_t job_id, const Status& st, bool revert_tzasc)
      TZLLM_EXCLUDES(mu_);
  // Records an issued-but-never-executed job's sequence number as dead and
  // advances next_exec_seq_ over every contiguous dead hole. Without this an
  // abandoned job would wedge the reorder defense: every later takeover
  // arrives with seq != next_exec_seq_ forever.
  void MarkSeqDeadLocked(uint64_t seq) TZLLM_REQUIRES(mu_);
  // 1-based fault ordinal of an issued job under the armed plan (ordinals
  // restart when the plan is armed).
  uint64_t FaultOrdinalLocked(uint64_t seq) const TZLLM_REQUIRES(mu_) {
    return seq > fault_seq_base_ ? seq - fault_seq_base_ : 0;
  }

  SocPlatform* platform_;
  TeeOs* tee_os_;

  mutable Mutex mu_;
  std::unordered_map<uint64_t, SecureJob> jobs_ TZLLM_GUARDED_BY(mu_);
  uint64_t next_job_id_ TZLLM_GUARDED_BY(mu_) = 1;
  uint64_t next_issue_seq_ TZLLM_GUARDED_BY(mu_) = 1;
  // Expected execution order (anti-reorder).
  uint64_t next_exec_seq_ TZLLM_GUARDED_BY(mu_) = 1;
  // Sequence numbers of issued jobs retired without executing (abandoned,
  // or their takeover was rejected and the waiter gave up); next_exec_seq_
  // skips over contiguous dead prefixes so the queue keeps moving.
  std::set<uint64_t> dead_seqs_ TZLLM_GUARDED_BY(mu_);
  uint64_t running_job_ TZLLM_GUARDED_BY(mu_) = 0;  // 0 = none.
  uint64_t secure_jobs_completed_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t validation_failures_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t total_matmuls_completed_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t payload_failures_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t jobs_abandoned_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t jobs_recovered_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t fallback_jobs_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t fallback_matmuls_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t injected_faults_ TZLLM_GUARDED_BY(mu_) = 0;
  NpuFaultPlan fault_plan_ TZLLM_GUARDED_BY(mu_);
  // Issue seq when the plan was armed.
  uint64_t fault_seq_base_ TZLLM_GUARDED_BY(mu_) = 0;
  SimDuration total_config_time_ TZLLM_GUARDED_BY(mu_) = 0;
  SimDuration total_smc_time_ TZLLM_GUARDED_BY(mu_) = 0;
  SimDuration total_job_npu_time_ TZLLM_GUARDED_BY(mu_) = 0;
  SimDuration total_measured_switch_time_ TZLLM_GUARDED_BY(mu_) = 0;
};

}  // namespace tzllm

#endif  // SRC_TEE_NPU_DRIVER_H_
