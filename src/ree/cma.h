// Linux-style Contiguous Memory Allocator model with movable-page migration
// (paper §2.2/§2.3): a reserved physical range whose free pages may be
// borrowed for *movable* allocations; contiguous allocation migrates the
// squatters out (allocate destination outside CMA, copy, remap, free).
//
// The time model is page-granular and calibrated to the paper's measured
// 1.9 GB/s single-threaded migration throughput; the byte movement is real
// (through PhysMemory) whenever the source page was ever written.
//
// TZ-LLM-specific behaviour reproduced here: AllocContiguous can be asked to
// place the new extent *adjacent to the previous allocation* so the TEE can
// keep one TZASC region covering all parameter memory (§4.2).

#ifndef SRC_REE_CMA_H_
#define SRC_REE_CMA_H_

#include <cstdint>
#include <vector>

#include "src/common/calibration.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/hw/phys_mem.h"
#include "src/ree/buddy.h"

namespace tzllm {

class CmaRegion {
 public:
  // The region covers PFNs [base_pfn, base_pfn + num_pages). `outside` is
  // the buddy allocator used for migration destination pages.
  CmaRegion(uint64_t base_pfn, uint64_t num_pages, BuddyAllocator* outside,
            PhysMemory* dram);

  // --- Movable borrowing (what stress / page cache does under pressure). ---
  // Borrows one free CMA page for a movable allocation. Fails if none free.
  Result<uint64_t> BorrowMovablePage();
  Status ReturnMovablePage(uint64_t pfn);

  struct AllocOutcome {
    uint64_t base_pfn = 0;
    uint64_t pages = 0;
    uint64_t migrated_pages = 0;   // Movable pages evacuated.
    uint64_t claimed_free = 0;     // Pages that were simply free.
    SimDuration cpu_time = 0;      // Single-threaded CPU cost of the whole op.
  };

  // Allocates `pages` contiguous pages starting exactly at `at_pfn`
  // (callers pass prev_end for the adjacency requirement, or base_pfn for a
  // fresh region). Migrates movable squatters to `outside`; fails if any
  // page in range is pinned (owned by a previous contiguous allocation) or
  // if the outside allocator cannot absorb the evacuees.
  Result<AllocOutcome> AllocContiguousAt(uint64_t at_pfn, uint64_t pages);

  // Finds the lowest position where `pages` can be allocated, then allocates
  // (first-fit). Used by non-TZ-LLM CMA clients.
  Result<AllocOutcome> AllocContiguous(uint64_t pages);

  // Releases a contiguous range back to the CMA free pool.
  Status FreeContiguous(uint64_t base_pfn, uint64_t pages);

  uint64_t base_pfn() const { return base_pfn_; }
  uint64_t num_pages() const { return num_pages_; }
  uint64_t free_pages() const { return free_pages_; }
  uint64_t movable_pages() const { return movable_pages_; }
  uint64_t pinned_pages() const { return pinned_pages_; }
  uint64_t total_migrated() const { return total_migrated_; }

  // Single-threaded CPU time to migrate/claim the given page counts.
  static SimDuration MigrationCpuTime(uint64_t migrated, uint64_t claimed);

 private:
  enum class PageState : uint8_t { kFree, kMovable, kPinned };

  uint64_t base_pfn_;
  uint64_t num_pages_;
  BuddyAllocator* outside_;
  PhysMemory* dram_;
  std::vector<PageState> state_;
  uint64_t free_pages_;
  uint64_t movable_pages_ = 0;
  uint64_t pinned_pages_ = 0;
  uint64_t total_migrated_ = 0;
  uint64_t borrow_cursor_ = 0;  // Round-robin hint for BorrowMovablePage.
};

}  // namespace tzllm

#endif  // SRC_REE_CMA_H_
