// Binary buddy page allocator (Linux-like, orders 0..kMaxOrder) managing the
// non-CMA portion of DRAM. Used three ways:
//  * the REE-LLM-Flash baseline allocates its (non-contiguous) parameter
//    pages here (Figure 3 "Buddy system" series),
//  * stress / REE application pressure allocates movable pages here first,
//  * CMA migration allocates destination pages here when evacuating the
//    contiguous region.

#ifndef SRC_REE_BUDDY_H_
#define SRC_REE_BUDDY_H_

#include <array>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace tzllm {

class BuddyAllocator {
 public:
  static constexpr int kMaxOrder = 10;  // Largest block: 2^10 pages = 4 MiB.

  // Manages page frame numbers [base_pfn, base_pfn + num_pages).
  BuddyAllocator(uint64_t base_pfn, uint64_t num_pages);

  // Allocates one block of 2^order pages. Returns the first PFN.
  Result<uint64_t> AllocBlock(int order);

  // Frees a block previously returned by AllocBlock at the same order.
  Status FreeBlock(uint64_t pfn, int order);

  // Allocates `n` single pages (order-0), not necessarily contiguous.
  // Appends PFNs to `out`. Fails (without rollback) when exhausted.
  Status AllocPages(uint64_t n, std::vector<uint64_t>* out);
  Status FreePage(uint64_t pfn) { return FreeBlock(pfn, 0); }

  uint64_t free_pages() const { return free_pages_; }
  uint64_t total_pages() const { return num_pages_; }
  uint64_t base_pfn() const { return base_pfn_; }

  // Largest currently allocatable order (fragmentation probe).
  int LargestFreeOrder() const;

 private:
  uint64_t BuddyOf(uint64_t rel_pfn, int order) const {
    return rel_pfn ^ (1ull << order);
  }

  uint64_t base_pfn_;
  uint64_t num_pages_;
  uint64_t free_pages_ = 0;
  // Free lists per order hold *relative* PFNs; sets give deterministic
  // ordering and O(log n) buddy lookup.
  std::array<std::set<uint64_t>, kMaxOrder + 1> free_lists_;
};

}  // namespace tzllm

#endif  // SRC_REE_BUDDY_H_
