#include "src/ree/memory_manager.h"

#include <algorithm>

#include "src/common/calibration.h"

namespace tzllm {

ReeMemoryManager::ReeMemoryManager(const ReeMemoryLayout& layout,
                                   PhysMemory* dram)
    : layout_(layout) {
  const uint64_t total_pages = BytesToPages(layout.dram_bytes);
  const uint64_t kernel_pages = BytesToPages(layout.kernel_bytes);
  const uint64_t cma_pages = BytesToPages(layout.cma_bytes);
  const uint64_t cma2_pages = BytesToPages(layout.cma2_bytes);

  // Layout: [kernel][buddy ...][cma2][cma] — CMA regions at the top of DRAM
  // (as vendor device trees typically place them).
  const uint64_t cma_base = total_pages - cma_pages;
  const uint64_t cma2_base = cma_base - cma2_pages;
  buddy_ = std::make_unique<BuddyAllocator>(kernel_pages,
                                            cma2_base - kernel_pages);
  param_cma_ = std::make_unique<CmaRegion>(cma_base, cma_pages, buddy_.get(),
                                           dram);
  scratch_cma_ = std::make_unique<CmaRegion>(cma2_base, cma2_pages,
                                             buddy_.get(), dram);
}

CmaRegion* ReeMemoryManager::RegionFor(uint64_t pfn) {
  auto in = [&](CmaRegion& r) {
    return pfn >= r.base_pfn() && pfn < r.base_pfn() + r.num_pages();
  };
  if (in(*param_cma_)) {
    return param_cma_.get();
  }
  if (in(*scratch_cma_)) {
    return scratch_cma_.get();
  }
  return nullptr;
}

Status ReeMemoryManager::AllocMovablePages(uint64_t n,
                                           std::vector<uint64_t>* out,
                                           SimDuration* cpu_time) {
  // Movable allocations spread across the buddy zone and the CMA regions in
  // proportion to their free space (MIGRATE_CMA fallback behaviour): long-
  // running movable memory (page cache, anonymous pages) ends up inside CMA
  // regions roughly uniformly, which is why CMA allocation cost grows
  // linearly with REE memory pressure (Figure 3).
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t buddy_free =
        buddy_->free_pages() > kSpillWatermarkPages
            ? buddy_->free_pages() - kSpillWatermarkPages
            : 0;
    const uint64_t cma_free =
        param_cma_->free_pages() + scratch_cma_->free_pages();
    const uint64_t total = buddy_free + cma_free;
    if (total == 0) {
      // Last resort: dip below the watermark.
      TZLLM_ASSIGN_OR_RETURN(pfn, buddy_->AllocBlock(0));
      out->push_back(pfn);
    } else {
      const double frac =
          static_cast<double>(cma_free) / static_cast<double>(total);
      spill_accumulator_ += std::min(1.0, kCmaSpillBias * frac);
      bool placed = false;
      if (spill_accumulator_ >= 1.0 || buddy_free == 0) {
        auto borrowed = param_cma_->free_pages() >= scratch_cma_->free_pages()
                            ? param_cma_->BorrowMovablePage()
                            : scratch_cma_->BorrowMovablePage();
        if (!borrowed.ok()) {
          borrowed = param_cma_->BorrowMovablePage();
        }
        if (!borrowed.ok()) {
          borrowed = scratch_cma_->BorrowMovablePage();
        }
        if (borrowed.ok()) {
          if (spill_accumulator_ >= 1.0) {
            spill_accumulator_ -= 1.0;
          }
          out->push_back(*borrowed);
          placed = true;
        }
      }
      if (!placed) {
        TZLLM_ASSIGN_OR_RETURN(pfn, buddy_->AllocBlock(0));
        out->push_back(pfn);
      }
    }
    if (cpu_time != nullptr) {
      *cpu_time += kBuddyAllocPerPage;
    }
  }
  return OkStatus();
}

Status ReeMemoryManager::FreeMovablePage(uint64_t pfn) {
  CmaRegion* region = RegionFor(pfn);
  if (region != nullptr) {
    return region->ReturnMovablePage(pfn);
  }
  return buddy_->FreePage(pfn);
}

}  // namespace tzllm
