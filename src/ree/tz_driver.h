// REE-side TrustZone driver (the paper's 197-LoC Linux addition): services
// the TEE's delegated operations — CMA allocation/release for secure-memory
// scaling and file reads for model loading — and hosts the shadow threads
// that lend REE-scheduled CPU time to TA threads (§3.2).
//
// Everything here is UNTRUSTED. The TEE validates every result (contiguity
// of CMA extents, checksums of file contents); the test suite subclasses
// this driver with malicious variants to exercise those defenses.

#ifndef SRC_REE_TZ_DRIVER_H_
#define SRC_REE_TZ_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/platform.h"
#include "src/ree/memory_manager.h"

namespace tzllm {

// Which CMA-backed TZASC region a request targets (paper §4.2: one region
// for parameters, one for KV cache / activations / other data).
enum class SecureRegionId : int {
  kParams = 0,
  kScratch = 1,
};

struct CmaExtent {
  PhysAddr addr = 0;
  uint64_t bytes = 0;
  // Single-threaded CPU time the allocation (migration) consumed; the caller
  // schedules this on its CPU lane(s).
  SimDuration cpu_time = 0;
  uint64_t migrated_pages = 0;
};

class TzDriver {
 public:
  TzDriver(SocPlatform* platform, ReeMemoryManager* mm);
  virtual ~TzDriver() = default;

  // --- CMA delegation (RPC kRpcCmaAlloc / kRpcCmaFree). ---
  // Allocates `bytes` of contiguous CMA memory starting at `at_addr`
  // (callers pass the end of the previous extent; the kernel allocates
  // "adjacent to the previously allocated blocks", §4.2). at_addr == 0 means
  // "region base". Virtual so tests can model a malicious kernel.
  virtual Result<CmaExtent> CmaAlloc(SecureRegionId region, PhysAddr at_addr,
                                     uint64_t bytes);
  virtual Status CmaFree(SecureRegionId region, PhysAddr addr, uint64_t bytes);

  // --- File I/O delegation (RPC kRpcFileRead, issued as aio by the CA). ---
  // Reads into physical memory via the flash controller's DMA. Virtual so
  // tests can forge contents.
  virtual void FileReadAsync(const std::string& name, uint64_t offset,
                             uint64_t len, PhysAddr dst, bool materialize,
                             std::function<void(Status)> done);

  // --- Shadow threads (§3.2). ---
  // Registers a shadow thread for TA thread `ta_thread_id`; resuming it
  // costs one smc round trip, counted on the monitor.
  void RegisterShadowThread(int ta_thread_id);
  Status ResumeTaThread(int ta_thread_id);
  int shadow_thread_count() const {
    return static_cast<int>(shadow_threads_.size());
  }

  ReeMemoryManager& memory() { return *mm_; }
  SocPlatform& platform() { return *platform_; }

 protected:
  CmaRegion& RegionOf(SecureRegionId region);

  SocPlatform* platform_;
  ReeMemoryManager* mm_;
  std::vector<int> shadow_threads_;
};

}  // namespace tzllm

#endif  // SRC_REE_TZ_DRIVER_H_
