#include "src/ree/tz_driver.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace tzllm {

TzDriver::TzDriver(SocPlatform* platform, ReeMemoryManager* mm)
    : platform_(platform), mm_(mm) {
  // Install trivial RPC endpoints so every delegated operation crosses the
  // monitor (for world-switch accounting) even though the heavy lifting
  // happens in the methods below.
  auto ack = [](const SmcArgs&) { return SmcResult{OkStatus(), {}}; };
  platform_->monitor().InstallNonSecureHandler(SmcFunc::kRpcCmaAlloc, ack);
  platform_->monitor().InstallNonSecureHandler(SmcFunc::kRpcCmaFree, ack);
  platform_->monitor().InstallNonSecureHandler(SmcFunc::kRpcFileRead, ack);
}

CmaRegion& TzDriver::RegionOf(SecureRegionId region) {
  return region == SecureRegionId::kParams ? mm_->param_cma()
                                           : mm_->scratch_cma();
}

Result<CmaExtent> TzDriver::CmaAlloc(SecureRegionId region, PhysAddr at_addr,
                                     uint64_t bytes) {
  platform_->monitor().RpcToRee(SmcFunc::kRpcCmaAlloc, SmcArgs{});
  CmaRegion& cma = RegionOf(region);
  const uint64_t pages = BytesToPages(bytes);
  const uint64_t at_pfn =
      at_addr == 0 ? cma.base_pfn() : at_addr / kPageSize;
  auto outcome = cma.AllocContiguousAt(at_pfn, pages);
  if (!outcome.ok()) {
    return outcome.status();
  }
  CmaExtent extent;
  extent.addr = PagesToBytes(outcome->base_pfn);
  extent.bytes = PagesToBytes(outcome->pages);
  extent.cpu_time = outcome->cpu_time;
  extent.migrated_pages = outcome->migrated_pages;
  return extent;
}

Status TzDriver::CmaFree(SecureRegionId region, PhysAddr addr,
                         uint64_t bytes) {
  platform_->monitor().RpcToRee(SmcFunc::kRpcCmaFree, SmcArgs{});
  return RegionOf(region).FreeContiguous(addr / kPageSize,
                                         BytesToPages(bytes));
}

void TzDriver::FileReadAsync(const std::string& name, uint64_t offset,
                             uint64_t len, PhysAddr dst, bool materialize,
                             std::function<void(Status)> done) {
  platform_->monitor().RpcToRee(SmcFunc::kRpcFileRead, SmcArgs{});
  platform_->flash().ReadAsync(name, offset, len, dst, materialize,
                               std::move(done));
}

void TzDriver::RegisterShadowThread(int ta_thread_id) {
  shadow_threads_.push_back(ta_thread_id);
}

Status TzDriver::ResumeTaThread(int ta_thread_id) {
  if (std::find(shadow_threads_.begin(), shadow_threads_.end(),
                ta_thread_id) == shadow_threads_.end()) {
    return NotFound("no shadow thread registered for TA thread");
  }
  SmcArgs args;
  args.a[0] = static_cast<uint64_t>(ta_thread_id);
  const SmcResult result =
      platform_->monitor().SmcFromRee(SmcFunc::kResumeTaThread, args);
  return result.status;
}

}  // namespace tzllm
