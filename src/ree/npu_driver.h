// REE NPU driver — the full-fledged control plane (paper §4.3).
//
// Owns the *unified* scheduling queue for secure and non-secure NPU jobs.
// Non-secure jobs carry their execution context and are launched directly on
// the device; secure jobs appear only as "shadow jobs" (an opaque token with
// an empty execution context). When a shadow job reaches the head of the
// queue, the driver proactively hands the NPU to the TEE with the
// kNpuTakeover smc and waits for the TEE's shadow-complete RPC before
// scheduling anything else.
//
// Also models the naive detach/attach alternative (32 ms full control-plane
// reinitialization) that the co-driver design eliminates, for the ablation
// benchmark.

#ifndef SRC_REE_NPU_DRIVER_H_
#define SRC_REE_NPU_DRIVER_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/calibration.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/hw/platform.h"

namespace tzllm {

// Locking: mu_ guards the unified scheduling queue, the ownership/running
// flags and the counters. Critical sections are leaf-only: the takeover smc
// runs the whole TEE-side secure entry on this stack, the launch doorbell
// re-enters the device, and completion callbacks re-enter this driver (the
// shadow-complete RPC arrives mid-ScheduleNext) — none of it under mu_.
class ReeNpuDriver {
 public:
  explicit ReeNpuDriver(SocPlatform* platform);

  // Registers interrupt handling and the TEE-facing RPC endpoints. Call once.
  void Init();

  // --- Non-secure client API (REE NN applications). ---
  void SubmitJob(NpuJobDesc desc, std::function<void(Status)> on_complete)
      TZLLM_EXCLUDES(mu_);

  // --- TEE-facing scheduling interface. ---
  // Enqueues a shadow job for TEE job `token` (RPC kRpcNpuEnqueueShadow).
  void EnqueueShadowJob(uint64_t token) TZLLM_EXCLUDES(mu_);
  // TEE reports the secure job finished (RPC kRpcNpuShadowComplete).
  void OnShadowComplete(uint64_t token) TZLLM_EXCLUDES(mu_);

  size_t queue_depth() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return queue_.size();
  }
  bool npu_owned_by_tee() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return npu_owned_by_tee_;
  }
  uint64_t ns_jobs_completed() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return ns_jobs_completed_;
  }
  uint64_t shadow_jobs_completed() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return shadow_jobs_completed_;
  }

  // Naive-baseline hook: full detach/attach control-plane reinit cost.
  static constexpr SimDuration DetachAttachCost() {
    return kNpuDetachAttachTime;
  }

 private:
  struct Entry {
    bool shadow = false;
    uint64_t token = 0;
    NpuJobDesc desc;
    std::function<void(Status)> on_complete;
  };

  // Dispatch loop: pops queue entries under mu_, performs each dispatch
  // (takeover smc or launch doorbell) with mu_ released, and keeps going
  // while dispatches fail. EXCLUDES(mu_) — both dispatch forms re-enter
  // this driver on the same call stack.
  void ScheduleNext() TZLLM_EXCLUDES(mu_);

  SocPlatform* platform_;

  mutable Mutex mu_;
  std::deque<Entry> queue_ TZLLM_GUARDED_BY(mu_);
  bool npu_owned_by_tee_ TZLLM_GUARDED_BY(mu_) = false;
  bool ns_job_running_ TZLLM_GUARDED_BY(mu_) = false;
  std::function<void(Status)> running_cb_ TZLLM_GUARDED_BY(mu_);
  uint64_t ns_jobs_completed_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t shadow_jobs_completed_ TZLLM_GUARDED_BY(mu_) = 0;
};

}  // namespace tzllm

#endif  // SRC_REE_NPU_DRIVER_H_
