// REE NPU driver — the full-fledged control plane (paper §4.3).
//
// Owns the *unified* scheduling queue for secure and non-secure NPU jobs.
// Non-secure jobs carry their execution context and are launched directly on
// the device; secure jobs appear only as "shadow jobs" (an opaque token with
// an empty execution context). When a shadow job reaches the head of the
// queue, the driver proactively hands the NPU to the TEE with the
// kNpuTakeover smc and waits for the TEE's shadow-complete RPC before
// scheduling anything else.
//
// Also models the naive detach/attach alternative (32 ms full control-plane
// reinitialization) that the co-driver design eliminates, for the ablation
// benchmark.

#ifndef SRC_REE_NPU_DRIVER_H_
#define SRC_REE_NPU_DRIVER_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/calibration.h"
#include "src/common/status.h"
#include "src/hw/platform.h"

namespace tzllm {

class ReeNpuDriver {
 public:
  explicit ReeNpuDriver(SocPlatform* platform);

  // Registers interrupt handling and the TEE-facing RPC endpoints. Call once.
  void Init();

  // --- Non-secure client API (REE NN applications). ---
  void SubmitJob(NpuJobDesc desc, std::function<void(Status)> on_complete);

  // --- TEE-facing scheduling interface. ---
  // Enqueues a shadow job for TEE job `token` (RPC kRpcNpuEnqueueShadow).
  void EnqueueShadowJob(uint64_t token);
  // TEE reports the secure job finished (RPC kRpcNpuShadowComplete).
  void OnShadowComplete(uint64_t token);

  size_t queue_depth() const { return queue_.size(); }
  bool npu_owned_by_tee() const { return npu_owned_by_tee_; }
  uint64_t ns_jobs_completed() const { return ns_jobs_completed_; }
  uint64_t shadow_jobs_completed() const { return shadow_jobs_completed_; }

  // Naive-baseline hook: full detach/attach control-plane reinit cost.
  static constexpr SimDuration DetachAttachCost() {
    return kNpuDetachAttachTime;
  }

 private:
  struct Entry {
    bool shadow = false;
    uint64_t token = 0;
    NpuJobDesc desc;
    std::function<void(Status)> on_complete;
  };

  void ScheduleNext();

  SocPlatform* platform_;
  std::deque<Entry> queue_;
  bool npu_owned_by_tee_ = false;
  bool ns_job_running_ = false;
  std::function<void(Status)> running_cb_;
  uint64_t ns_jobs_completed_ = 0;
  uint64_t shadow_jobs_completed_ = 0;
};

}  // namespace tzllm

#endif  // SRC_REE_NPU_DRIVER_H_
