// stress-ng model (paper §7 "Models and deployment"): maps a configurable
// amount of movable memory and keeps it hot, creating the REE memory
// pressure that forces CMA migration during secure-memory scaling. Also
// exposes a dirty-bandwidth figure used by the interference models
// (Figures 2 and 16).

#ifndef SRC_REE_STRESS_H_
#define SRC_REE_STRESS_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/hw/phys_mem.h"
#include "src/ree/memory_manager.h"

namespace tzllm {

class StressWorkload {
 public:
  StressWorkload(ReeMemoryManager* mm, PhysMemory* dram);
  ~StressWorkload();

  // Maps `bytes` of movable memory. When `dirty_pages` is true the first
  // byte of each page is written so that migration really copies data
  // (functional tests); paper-scale benchmarks pass false to keep the sparse
  // DRAM model small — the migration *time* model is unaffected.
  Status MapPressure(uint64_t bytes, bool dirty_pages = true);
  Status AddPressure(uint64_t bytes, bool dirty_pages = true) {
    return MapPressure(bytes, dirty_pages);
  }

  // Releases all pressure pages.
  void Release();

  uint64_t mapped_bytes() const { return PagesToBytes(pages_.size()); }

 private:
  ReeMemoryManager* mm_;
  PhysMemory* dram_;
  std::vector<uint64_t> pages_;
};

}  // namespace tzllm

#endif  // SRC_REE_STRESS_H_
