#include "src/ree/buddy.h"

#include <algorithm>

namespace tzllm {

BuddyAllocator::BuddyAllocator(uint64_t base_pfn, uint64_t num_pages)
    : base_pfn_(base_pfn), num_pages_(num_pages) {
  // Seed free lists greedily with the largest aligned blocks.
  uint64_t pfn = 0;
  while (pfn < num_pages) {
    int order = kMaxOrder;
    while (order > 0 &&
           ((pfn & ((1ull << order) - 1)) != 0 ||
            pfn + (1ull << order) > num_pages)) {
      --order;
    }
    free_lists_[order].insert(pfn);
    free_pages_ += 1ull << order;
    pfn += 1ull << order;
  }
}

Result<uint64_t> BuddyAllocator::AllocBlock(int order) {
  if (order < 0 || order > kMaxOrder) {
    return InvalidArgument("bad buddy order");
  }
  int o = order;
  while (o <= kMaxOrder && free_lists_[o].empty()) {
    ++o;
  }
  if (o > kMaxOrder) {
    return OutOfMemory("buddy exhausted at requested order");
  }
  uint64_t rel = *free_lists_[o].begin();
  free_lists_[o].erase(free_lists_[o].begin());
  // Split down to the requested order, returning the low half each time.
  while (o > order) {
    --o;
    free_lists_[o].insert(rel + (1ull << o));
  }
  free_pages_ -= 1ull << order;
  return base_pfn_ + rel;
}

Status BuddyAllocator::FreeBlock(uint64_t pfn, int order) {
  if (order < 0 || order > kMaxOrder) {
    return InvalidArgument("bad buddy order");
  }
  if (pfn < base_pfn_ || pfn + (1ull << order) > base_pfn_ + num_pages_) {
    return InvalidArgument("free outside buddy range");
  }
  uint64_t rel = pfn - base_pfn_;
  free_pages_ += 1ull << order;
  // Coalesce with the buddy while possible.
  while (order < kMaxOrder) {
    const uint64_t buddy = BuddyOf(rel, order);
    auto it = free_lists_[order].find(buddy);
    if (it == free_lists_[order].end()) {
      break;
    }
    free_lists_[order].erase(it);
    rel = std::min(rel, buddy);
    ++order;
  }
  free_lists_[order].insert(rel);
  return OkStatus();
}

Status BuddyAllocator::AllocPages(uint64_t n, std::vector<uint64_t>* out) {
  for (uint64_t i = 0; i < n; ++i) {
    TZLLM_ASSIGN_OR_RETURN(pfn, AllocBlock(0));
    out->push_back(pfn);
  }
  return OkStatus();
}

int BuddyAllocator::LargestFreeOrder() const {
  for (int o = kMaxOrder; o >= 0; --o) {
    if (!free_lists_[o].empty()) {
      return o;
    }
  }
  return -1;
}

}  // namespace tzllm
