#include "src/ree/npu_driver.h"

#include <utility>

#include "src/common/log.h"

namespace tzllm {

ReeNpuDriver::ReeNpuDriver(SocPlatform* platform) : platform_(platform) {}

void ReeNpuDriver::Init() {
  // Non-secure completion interrupt: fires while the NPU interrupt line is
  // routed to the non-secure world.
  platform_->gic().RegisterHandler(World::kNonSecure, kIrqNpu, [this] {
    ns_job_running_ = false;
    ++ns_jobs_completed_;
    auto cb = std::move(running_cb_);
    running_cb_ = nullptr;
    if (cb) {
      cb(OkStatus());
    }
    ScheduleNext();
  });

  // TEE -> REE scheduling RPCs.
  platform_->monitor().InstallNonSecureHandler(
      SmcFunc::kRpcNpuEnqueueShadow, [this](const SmcArgs& args) {
        EnqueueShadowJob(args.a[0]);
        return SmcResult{OkStatus(), {}};
      });
  platform_->monitor().InstallNonSecureHandler(
      SmcFunc::kRpcNpuShadowComplete, [this](const SmcArgs& args) {
        OnShadowComplete(args.a[0]);
        return SmcResult{OkStatus(), {}};
      });
}

void ReeNpuDriver::SubmitJob(NpuJobDesc desc,
                             std::function<void(Status)> on_complete) {
  Entry entry;
  entry.shadow = false;
  entry.desc = std::move(desc);
  entry.on_complete = std::move(on_complete);
  queue_.push_back(std::move(entry));
  ScheduleNext();
}

void ReeNpuDriver::EnqueueShadowJob(uint64_t token) {
  Entry entry;
  entry.shadow = true;
  entry.token = token;
  queue_.push_back(std::move(entry));
  ScheduleNext();
}

void ReeNpuDriver::ScheduleNext() {
  if (npu_owned_by_tee_ || ns_job_running_ || queue_.empty()) {
    return;
  }
  Entry entry = std::move(queue_.front());
  queue_.pop_front();

  if (entry.shadow) {
    // Proactively transfer NPU control to the TEE driver. The TEE performs
    // the secure-mode switch, validates and launches the job; ownership
    // returns via OnShadowComplete.
    npu_owned_by_tee_ = true;
    SmcArgs args;
    args.a[0] = entry.token;
    const SmcResult result =
        platform_->monitor().SmcFromRee(SmcFunc::kNpuTakeover, args);
    if (!result.status.ok()) {
      // The TEE rejected the takeover (e.g. replayed token). Drop the shadow
      // job and move on; the TEE side surfaces the real error to the TA.
      TZLLM_LOG_WARN("ree-npu", "takeover rejected: %s",
                     result.status.ToString().c_str());
      npu_owned_by_tee_ = false;
      ScheduleNext();
    }
    return;
  }

  // Non-secure job: driver-side launch overhead then the doorbell write.
  ns_job_running_ = true;
  running_cb_ = std::move(entry.on_complete);
  NpuJobDesc desc = std::move(entry.desc);
  desc.duration += kNpuJobLaunchOverhead;
  const Status st = platform_->npu().MmioLaunch(World::kNonSecure, desc);
  if (!st.ok()) {
    ns_job_running_ = false;
    auto cb = std::move(running_cb_);
    running_cb_ = nullptr;
    if (cb) {
      cb(st);
    }
    ScheduleNext();
  }
}

void ReeNpuDriver::OnShadowComplete(uint64_t token) {
  (void)token;
  ++shadow_jobs_completed_;
  npu_owned_by_tee_ = false;
  ScheduleNext();
}

}  // namespace tzllm
