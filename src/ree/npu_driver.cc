#include "src/ree/npu_driver.h"

#include <utility>

#include "src/common/log.h"

namespace tzllm {

ReeNpuDriver::ReeNpuDriver(SocPlatform* platform) : platform_(platform) {}

void ReeNpuDriver::Init() {
  // Non-secure completion interrupt: fires while the NPU interrupt line is
  // routed to the non-secure world.
  platform_->gic().RegisterHandler(World::kNonSecure, kIrqNpu, [this] {
    std::function<void(Status)> cb;
    {
      MutexLock lock(&mu_);
      ns_job_running_ = false;
      ++ns_jobs_completed_;
      cb = std::move(running_cb_);
      running_cb_ = nullptr;
    }
    // Client callback and the next dispatch both re-enter this driver.
    if (cb) {
      cb(OkStatus());
    }
    ScheduleNext();
  });

  // TEE -> REE scheduling RPCs.
  platform_->monitor().InstallNonSecureHandler(
      SmcFunc::kRpcNpuEnqueueShadow, [this](const SmcArgs& args) {
        EnqueueShadowJob(args.a[0]);
        return SmcResult{OkStatus(), {}};
      });
  platform_->monitor().InstallNonSecureHandler(
      SmcFunc::kRpcNpuShadowComplete, [this](const SmcArgs& args) {
        OnShadowComplete(args.a[0]);
        return SmcResult{OkStatus(), {}};
      });
}

void ReeNpuDriver::SubmitJob(NpuJobDesc desc,
                             std::function<void(Status)> on_complete) {
  {
    MutexLock lock(&mu_);
    Entry entry;
    entry.shadow = false;
    entry.desc = std::move(desc);
    entry.on_complete = std::move(on_complete);
    queue_.push_back(std::move(entry));
  }
  ScheduleNext();
}

void ReeNpuDriver::EnqueueShadowJob(uint64_t token) {
  {
    MutexLock lock(&mu_);
    Entry entry;
    entry.shadow = true;
    entry.token = token;
    queue_.push_back(std::move(entry));
  }
  ScheduleNext();
}

void ReeNpuDriver::ScheduleNext() {
  // Loop (not tail recursion): each iteration claims one queue entry under
  // mu_, then dispatches it with mu_ released — the takeover smc runs the
  // whole TEE secure-entry path on this stack, and a failed dispatch fires
  // the client callback, which may submit again. A failed dispatch
  // continues with the next entry, which is what the recursive form did.
  for (;;) {
    Entry entry;
    {
      MutexLock lock(&mu_);
      if (npu_owned_by_tee_ || ns_job_running_ || queue_.empty()) {
        return;
      }
      entry = std::move(queue_.front());
      queue_.pop_front();
      if (entry.shadow) {
        // Claim ownership before the smc: the TEE-side takeover handler may
        // observe this driver's state on the same call stack.
        npu_owned_by_tee_ = true;
      } else {
        ns_job_running_ = true;
        running_cb_ = std::move(entry.on_complete);
      }
    }

    if (entry.shadow) {
      // Proactively transfer NPU control to the TEE driver. The TEE
      // performs the secure-mode switch, validates and launches the job;
      // ownership returns via OnShadowComplete.
      SmcArgs args;
      args.a[0] = entry.token;
      const SmcResult result =
          platform_->monitor().SmcFromRee(SmcFunc::kNpuTakeover, args);
      if (result.status.ok()) {
        return;
      }
      // The TEE rejected the takeover (e.g. replayed token) without a
      // shadow-complete RPC. Drop the shadow job and move on; the TEE side
      // surfaces the real error to the TA.
      TZLLM_LOG_WARN("ree-npu", "takeover rejected: %s",
                     result.status.ToString().c_str());
      {
        MutexLock lock(&mu_);
        npu_owned_by_tee_ = false;
      }
      continue;
    }

    // Non-secure job: driver-side launch overhead then the doorbell write.
    NpuJobDesc desc = std::move(entry.desc);
    desc.duration += kNpuJobLaunchOverhead;
    const Status st = platform_->npu().MmioLaunch(World::kNonSecure, desc);
    if (st.ok()) {
      return;
    }
    std::function<void(Status)> cb;
    {
      MutexLock lock(&mu_);
      ns_job_running_ = false;
      cb = std::move(running_cb_);
      running_cb_ = nullptr;
    }
    if (cb) {
      cb(st);
    }
  }
}

void ReeNpuDriver::OnShadowComplete(uint64_t token) {
  (void)token;  // The queue keys shadow jobs by position, not token.
  {
    MutexLock lock(&mu_);
    ++shadow_jobs_completed_;
    npu_owned_by_tee_ = false;
  }
  ScheduleNext();
}

}  // namespace tzllm
