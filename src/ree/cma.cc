#include "src/ree/cma.h"

#include <algorithm>

namespace tzllm {

CmaRegion::CmaRegion(uint64_t base_pfn, uint64_t num_pages,
                     BuddyAllocator* outside, PhysMemory* dram)
    : base_pfn_(base_pfn),
      num_pages_(num_pages),
      outside_(outside),
      dram_(dram),
      state_(num_pages, PageState::kFree),
      free_pages_(num_pages) {}

Result<uint64_t> CmaRegion::BorrowMovablePage() {
  if (free_pages_ == 0) {
    return OutOfMemory("CMA region has no free pages to borrow");
  }
  // Scan from the cursor so borrowed pages spread across the region the way
  // long-running page-cache / anonymous allocations do, rather than packing
  // at the start (this is what makes migration cost scale with pressure).
  for (uint64_t i = 0; i < num_pages_; ++i) {
    const uint64_t idx = (borrow_cursor_ + i) % num_pages_;
    if (state_[idx] == PageState::kFree) {
      state_[idx] = PageState::kMovable;
      --free_pages_;
      ++movable_pages_;
      borrow_cursor_ = (idx + 1) % num_pages_;
      return base_pfn_ + idx;
    }
  }
  return OutOfMemory("CMA region has no free pages to borrow");
}

Status CmaRegion::ReturnMovablePage(uint64_t pfn) {
  if (pfn < base_pfn_ || pfn >= base_pfn_ + num_pages_) {
    return InvalidArgument("PFN outside CMA region");
  }
  const uint64_t idx = pfn - base_pfn_;
  if (state_[idx] != PageState::kMovable) {
    return FailedPrecondition("page is not a borrowed movable page");
  }
  state_[idx] = PageState::kFree;
  ++free_pages_;
  --movable_pages_;
  return OkStatus();
}

SimDuration CmaRegion::MigrationCpuTime(uint64_t migrated, uint64_t claimed) {
  return migrated * (kCmaMigrateCopyPerPage + kCmaMigrateFixedPerPage) +
         claimed * kBuddyAllocPerPage;
}

Result<CmaRegion::AllocOutcome> CmaRegion::AllocContiguousAt(uint64_t at_pfn,
                                                             uint64_t pages) {
  if (at_pfn < base_pfn_ || at_pfn + pages > base_pfn_ + num_pages_) {
    return InvalidArgument("contiguous range outside CMA region");
  }
  const uint64_t start = at_pfn - base_pfn_;
  // Pass 1: validate and count.
  AllocOutcome outcome;
  for (uint64_t i = start; i < start + pages; ++i) {
    switch (state_[i]) {
      case PageState::kFree:
        ++outcome.claimed_free;
        break;
      case PageState::kMovable:
        ++outcome.migrated_pages;
        break;
      case PageState::kPinned:
        return FailedPrecondition("contiguous range overlaps pinned pages");
    }
  }
  // Pass 2: migrate movable squatters out, then pin the range.
  for (uint64_t i = start; i < start + pages; ++i) {
    if (state_[i] == PageState::kMovable) {
      TZLLM_ASSIGN_OR_RETURN(dst_pfn, outside_->AllocBlock(0));
      // Copy the page contents if the squatter ever wrote them. (Contents of
      // movable pages are opaque to the kernel: always preserved.)
      const PhysAddr src = PagesToBytes(base_pfn_ + i);
      const PhysAddr dst = PagesToBytes(dst_pfn);
      if (dram_->IsTouched(src, kPageSize)) {
        TZLLM_RETURN_IF_ERROR(dram_->Copy(dst, src, kPageSize));
      }
      --movable_pages_;
      ++total_migrated_;
    } else {
      --free_pages_;
    }
    state_[i] = PageState::kPinned;
    ++pinned_pages_;
  }
  outcome.base_pfn = at_pfn;
  outcome.pages = pages;
  outcome.cpu_time =
      MigrationCpuTime(outcome.migrated_pages, outcome.claimed_free);
  return outcome;
}

Result<CmaRegion::AllocOutcome> CmaRegion::AllocContiguous(uint64_t pages) {
  // First-fit over non-pinned runs.
  uint64_t run = 0;
  for (uint64_t i = 0; i < num_pages_; ++i) {
    if (state_[i] == PageState::kPinned) {
      run = 0;
      continue;
    }
    ++run;
    if (run == pages) {
      return AllocContiguousAt(base_pfn_ + i + 1 - pages, pages);
    }
  }
  return OutOfMemory("no contiguous run available in CMA region");
}

Status CmaRegion::FreeContiguous(uint64_t base_pfn, uint64_t pages) {
  if (base_pfn < base_pfn_ || base_pfn + pages > base_pfn_ + num_pages_) {
    return InvalidArgument("free range outside CMA region");
  }
  const uint64_t start = base_pfn - base_pfn_;
  for (uint64_t i = start; i < start + pages; ++i) {
    if (state_[i] != PageState::kPinned) {
      return FailedPrecondition("freeing a page that was not allocated");
    }
  }
  for (uint64_t i = start; i < start + pages; ++i) {
    state_[i] = PageState::kFree;
    --pinned_pages_;
    ++free_pages_;
  }
  return OkStatus();
}

}  // namespace tzllm
