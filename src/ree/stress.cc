#include "src/ree/stress.h"

namespace tzllm {

StressWorkload::StressWorkload(ReeMemoryManager* mm, PhysMemory* dram)
    : mm_(mm), dram_(dram) {}

StressWorkload::~StressWorkload() { Release(); }

Status StressWorkload::MapPressure(uint64_t bytes, bool dirty_pages) {
  const uint64_t n = BytesToPages(bytes);
  std::vector<uint64_t> pfns;
  pfns.reserve(n);
  TZLLM_RETURN_IF_ERROR(mm_->AllocMovablePages(n, &pfns));
  for (uint64_t pfn : pfns) {
    if (dirty_pages) {
      // Dirty one byte per page: enough to force a real copy at migration.
      const uint8_t marker = static_cast<uint8_t>(pfn);
      TZLLM_RETURN_IF_ERROR(dram_->Write(PagesToBytes(pfn), &marker, 1));
    }
    pages_.push_back(pfn);
  }
  return OkStatus();
}

void StressWorkload::Release() {
  for (uint64_t pfn : pages_) {
    // Teardown: a page the manager no longer recognizes is already free.
    (void)mm_->FreeMovablePage(pfn);
  }
  pages_.clear();
}

}  // namespace tzllm
