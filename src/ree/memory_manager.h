// REE memory-management facade: one buddy allocator for the non-CMA range
// plus the CMA region(s), with the Linux placement policy that matters for
// the paper's Figure 3: movable allocations prefer free non-CMA memory and
// spill into CMA free pages only when the rest of DRAM runs low. That spill
// is what turns REE memory pressure into CMA migration work at LLM start.

#ifndef SRC_REE_MEMORY_MANAGER_H_
#define SRC_REE_MEMORY_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/hw/phys_mem.h"
#include "src/ree/buddy.h"
#include "src/ree/cma.h"

namespace tzllm {

struct ReeMemoryLayout {
  // DRAM is [0, dram_bytes). The layout reserves:
  //   [0, kernel_bytes)                       : non-movable kernel/firmware.
  //   [cma_base, cma_base + cma_bytes)        : CMA region (parameters).
  //   [cma2_base, cma2_base + cma2_bytes)     : CMA region (KV/activations).
  // Everything else is buddy-managed.
  uint64_t dram_bytes = 0;
  uint64_t kernel_bytes = 0;
  uint64_t cma_bytes = 0;
  uint64_t cma2_bytes = 0;
};

class ReeMemoryManager {
 public:
  ReeMemoryManager(const ReeMemoryLayout& layout, PhysMemory* dram);

  BuddyAllocator& buddy() { return *buddy_; }
  CmaRegion& param_cma() { return *param_cma_; }
  CmaRegion& scratch_cma() { return *scratch_cma_; }

  // Allocates `n` movable pages with the spill policy described above.
  // Appends PFNs to `out`; `cpu_time` (optional) accumulates allocation cost.
  Status AllocMovablePages(uint64_t n, std::vector<uint64_t>* out,
                           SimDuration* cpu_time = nullptr);
  Status FreeMovablePage(uint64_t pfn);

  // Free pages outside the CMA regions.
  uint64_t FreeOutsideCma() const { return buddy_->free_pages(); }
  uint64_t TotalFree() const {
    return buddy_->free_pages() + param_cma_->free_pages() +
           scratch_cma_->free_pages();
  }

  // Keep this many pages free outside CMA before spilling into CMA
  // (low-watermark analogue).
  static constexpr uint64_t kSpillWatermarkPages = 64 * kMiB / kPageSize;

  const ReeMemoryLayout& layout() const { return layout_; }
  PhysAddr param_cma_base() const { return PagesToBytes(param_cma_->base_pfn()); }
  PhysAddr scratch_cma_base() const {
    return PagesToBytes(scratch_cma_->base_pfn());
  }

 private:
  CmaRegion* RegionFor(uint64_t pfn);

  ReeMemoryLayout layout_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<CmaRegion> param_cma_;
  std::unique_ptr<CmaRegion> scratch_cma_;
  double spill_accumulator_ = 0.0;
};

}  // namespace tzllm

#endif  // SRC_REE_MEMORY_MANAGER_H_
