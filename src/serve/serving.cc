#include "src/serve/serving.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/log.h"

namespace tzllm {

namespace {

// Little-endian field helpers for the fleet manifest (same idiom as the
// session blobs in llm_ta.cc).
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU32(const std::vector<uint8_t>& in, size_t* off, uint32_t* v) {
  if (*off + 4 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(in[*off + i]) << (8 * i);
  }
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& in, size_t* off, uint64_t* v) {
  if (*off + 8 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(in[*off + i]) << (8 * i);
  }
  *off += 8;
  return true;
}

// Fleet-manifest magic. V1: u64 next_request, u32 count, then per request
// id/sid/state/priority-bits/budget/deadline/sampling/prompt.
constexpr char kManifestMagic[8] = {'T', 'Z', 'S', 'R', 'V', 'M', 'F', '1'};

}  // namespace

ServingRuntime::ServingRuntime(LlmTa* ta, Simulator* sim)
    : ta_(ta),
      pool_(sim, "serve-admit",
            std::max(1, ta->engine_options().max_sessions)),
      t0_(std::chrono::steady_clock::now()) {}

double ServingRuntime::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

ServingRuntime::Request* ServingRuntime::Find(uint64_t id) {
  auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : &it->second;
}

void ServingRuntime::SubmitJob(const Request& r) {
  const uint64_t id = r.id;
  ServerPool::Job job;
  job.priority = r.priority;
  job.label = "serve-req";
  job.on_complete = [this, id] { popped_request_ = id; };
  pool_.SubmitHeld(std::move(job));
}

Result<uint64_t> ServingRuntime::Enqueue(ServeRequest request) {
  const int queue_max = ta_->engine_options().serve_queue_max;
  if (queue_max > 0) {
    int waiting = 0;
    for (const auto& [id, r] : requests_) {
      waiting += (r.state == State::kQueued || r.state == State::kEvicted);
    }
    if (waiting >= queue_max) {
      ++stats_.requests_rejected;
      return Unavailable(
          "admission queue full (EngineOptions::serve_queue_max): retry "
          "later");
    }
  }
  const uint64_t id = next_request_++;
  Request r;
  r.id = id;
  r.prompt = std::move(request.prompt);
  r.max_new_tokens = request.max_new_tokens;
  r.priority = request.priority;
  r.sampling = request.sampling;
  r.submit_s = Now();
  r.submit_tick = stats_.ticks;
  r.deadline_ticks = request.deadline_ticks;
  SubmitJob(r);
  requests_.emplace(id, std::move(r));
  return id;
}

Status ServingRuntime::AdmitTop() {
  ServerPool::Job job;
  if (!pool_.TakeTop(&job)) {
    return Internal("admission queue empty at AdmitTop");
  }
  popped_request_ = 0;
  if (job.on_complete) {
    job.on_complete();  // Writes the request id into popped_request_.
  }
  Request* r = Find(popped_request_);
  if (r == nullptr) {
    return Internal("admission queue handed back an unknown request");
  }
  if (r->state == State::kDone) {
    // A request shed past its deadline leaves its held job behind; consume
    // it without admitting anything.
    return OkStatus();
  }
  if (r->state == State::kQueued) {
    TZLLM_ASSIGN_OR_RETURN(
        sid, ta_->AdmitSession(r->prompt, r->max_new_tokens, r->sampling));
    r->sid = sid;
  } else if (r->state == State::kEvicted) {
    // Bit-identical resumption: the restored session decodes exactly the
    // tokens the uninterrupted run would have.
    auto restored = ta_->RestoreSession(r->sid);
    if (!restored.ok()) {
      const ErrorCode code = restored.status().code();
      if (code != ErrorCode::kDataCorruption && code != ErrorCode::kNotFound) {
        return restored.status();
      }
      // The sealed blob is gone or tampered (ckpt_drop / hostile flash):
      // restart from the prompt. Generation is deterministic (same tokens,
      // same sampler seed and RNG start), so the final token sequence is
      // identical to the uninterrupted run — only latency is lost.
      TZLLM_LOG_WARN(
          "serve", "request %llu checkpoint unusable (%s); restarting",
          static_cast<unsigned long long>(r->id),
          restored.status().ToString().c_str());
      TZLLM_ASSIGN_OR_RETURN(
          sid, ta_->AdmitSession(r->prompt, r->max_new_tokens, r->sampling));
      r->sid = sid;
      r->token_s.clear();
      r->has_first_token = false;
      r->first_token_s = 0.0;
      r->from_manifest = false;
      ++stats_.sessions_restarted;
      r->state = State::kActive;
      return OkStatus();
    }
    if (r->from_manifest) {
      // First successful post-crash restore of a manifested session.
      r->from_manifest = false;
      ++stats_.sessions_recovered;
    }
  } else {
    return Internal("admission queue held a request in a non-waiting state");
  }
  r->state = State::kActive;
  return OkStatus();
}

Status ServingRuntime::Evict(Request* r) {
  TZLLM_RETURN_IF_ERROR(ta_->CheckpointSession(r->sid));
  r->state = State::kEvicted;
  ++r->preemptions;
  ++stats_.preemptions;
  SubmitJob(*r);
  return OkStatus();
}

ServingRuntime::Request* ServingRuntime::LeastUrgentRunning() {
  Request* victim = nullptr;
  for (auto& [id, r] : requests_) {
    if (r.state != State::kActive || !ta_->session_prefilled(r.sid) ||
        ta_->session_done(r.sid)) {
      continue;
    }
    // >= : among equal priorities the youngest (largest id) session yields,
    // so long-running work is preempted last.
    if (victim == nullptr || r.priority >= victim->priority) {
      victim = &r;
    }
  }
  return victim;
}

ServingRuntime::Request* ServingRuntime::NextPrefill() {
  Request* next = nullptr;
  for (auto& [id, r] : requests_) {
    if (r.state != State::kActive || ta_->session_prefilled(r.sid)) {
      continue;
    }
    // < : most urgent first; FIFO (smallest id) among equals.
    if (next == nullptr || r.priority < next->priority) {
      next = &r;
    }
  }
  return next;
}

Result<bool> ServingRuntime::Tick() {
  ++stats_.ticks;
  bool worked = false;

  // ta_crash fault: the whole TA dies at this tick ordinal — the caller
  // sees kAborted mid-run and must boot a fresh TA + Recover(), exactly the
  // crash the auto-checkpoint cadence exists for.
  const ServeFaultPlan& plan = ta_->serve_fault_plan();
  if (plan.active() && plan.fault == ServeFaultClass::kTaCrash &&
      plan.Hits(stats_.ticks)) {
    return Aborted("ta_crash fault: serving TA crashed at tick " +
                   std::to_string(stats_.ticks));
  }

  // Test hook: a stalled engine makes no progress this tick; only the
  // watchdog accounting below runs.
  const bool stalled = stall_inject_ > 0;
  if (stalled) {
    --stall_inject_;
  }

  // --- 0. Deadline shedding: queued requests that waited past their
  // deadline_ticks without ever being admitted complete with kUnavailable
  // (their held admission job is consumed as a no-op when it surfaces).
  // Runs before admission so an expired request cannot grab the slot a
  // within-deadline one is waiting for.
  for (auto& [id, r] : requests_) {
    if (stalled || r.state != State::kQueued || r.deadline_ticks == 0 ||
        stats_.ticks - r.submit_tick < r.deadline_ticks) {
      continue;
    }
    ServeRequestResult shed;
    shed.request_id = r.id;
    shed.priority = r.priority;
    shed.status = Unavailable(
        "request shed: queued past its deadline_ticks admission budget");
    shed.submit_s = r.submit_s;
    shed.finish_s = Now();
    results_.push_back(std::move(shed));
    r.state = State::kDone;
    ++stats_.requests_shed;
    worked = true;
  }

  // --- 1. Admission + preemption: fill free slots most-urgent-first; under
  // kPriority, a waiting request strictly more urgent than the least urgent
  // running session evicts it and takes the slot. The loop cannot ping-pong
  // within a tick: an evictee's priority is strictly greater than the
  // request that displaced it, so it never displaces anything back.
  double top = 0.0;
  while (!stalled && pool_.TopPriority(&top)) {
    if (ta_->free_session_slots() > 0) {
      TZLLM_RETURN_IF_ERROR(AdmitTop());
      worked = true;
      continue;
    }
    if (ta_->engine_options().serve_eviction != ServeEvictPolicy::kPriority) {
      break;
    }
    Request* victim = LeastUrgentRunning();
    if (victim == nullptr || !(victim->priority > top)) {
      break;
    }
    TZLLM_RETURN_IF_ERROR(Evict(victim));
    worked = true;
  }

  // --- 2. One prefill quantum for the most urgent admitted prompt.
  if (Request* pf = stalled ? nullptr : NextPrefill(); pf != nullptr) {
    TZLLM_ASSIGN_OR_RETURN(finished, ta_->PrefillSessionChunk(pf->sid));
    if (finished && !pf->has_first_token) {
      pf->first_token_s = Now();  // First generated token just sampled.
      pf->has_first_token = true;
    }
    worked = true;
  }

  // --- 3. One batched decode step across every running session.
  std::vector<SessionId> running;
  std::vector<Request*> running_reqs;
  for (auto& [id, r] : requests_) {
    if (!stalled && r.state == State::kActive &&
        ta_->session_prefilled(r.sid) && !ta_->session_done(r.sid)) {
      running.push_back(r.sid);
      running_reqs.push_back(&r);
    }
  }
  if (!running.empty()) {
    const double before = Now();
    TZLLM_RETURN_IF_ERROR(ta_->DecodeSessions(running));
    const double now = Now();
    for (Request* r : running_reqs) {
      r->token_s.push_back(now);
    }
    stats_.decode_tokens += running.size();
    stats_.decode_time_s += now - before;
    worked = true;
  }

  // --- 4. Retire finished sessions; their slots admit new work next tick.
  for (auto& [id, r] : requests_) {
    if (stalled || r.state != State::kActive || !ta_->session_done(r.sid)) {
      continue;
    }
    auto generation = ta_->FinishSession(r.sid);
    if (!generation.ok()) {
      return generation.status();
    }
    ServeRequestResult done;
    done.request_id = r.id;
    done.priority = r.priority;
    done.generation = std::move(*generation);
    done.submit_s = r.submit_s;
    done.first_token_s = r.first_token_s;
    done.finish_s = Now();
    done.token_s = std::move(r.token_s);
    done.preemptions = r.preemptions;
    results_.push_back(std::move(done));
    r.state = State::kDone;
    worked = true;
  }

  // --- 5. Auto-checkpoint cadence: snapshot the fleet so a whole-TA crash
  // loses at most the ticks since the last round.
  const int every = ta_->engine_options().serve_checkpoint_every_n_ticks;
  if (!stalled && every > 0 && stats_.ticks % static_cast<uint64_t>(every) ==
                                   0) {
    TZLLM_RETURN_IF_ERROR(CheckpointFleet());
  }

  SnapshotKvStats();
  const int left = pending();
  if (left > 0 && !worked) {
    const int watchdog = ta_->engine_options().serve_watchdog_ticks;
    if (watchdog <= 0) {
      // Pre-watchdog contract: a no-work tick with requests outstanding is
      // a scheduler bug, surfaced immediately.
      return Status(ErrorCode::kInternal,
                    "serving scheduler stalled with requests outstanding");
    }
    if (++stall_ticks_ >= watchdog) {
      int queued = 0, active = 0, evicted = 0;
      for (const auto& [id, r] : requests_) {
        queued += r.state == State::kQueued;
        active += r.state == State::kActive;
        evicted += r.state == State::kEvicted;
      }
      return DeadlineExceeded(
          "serving watchdog: " + std::to_string(stall_ticks_) +
          " consecutive zero-progress ticks at tick " +
          std::to_string(stats_.ticks) + " (" + std::to_string(queued) +
          " queued, " + std::to_string(active) + " active, " +
          std::to_string(evicted) + " evicted, " +
          std::to_string(ta_->free_session_slots()) + " free slots)");
    }
  } else {
    stall_ticks_ = 0;
  }
  if (left == 0 && every > 0 && ta_->HasServeManifest()) {
    // The fleet completed: a stale manifest must not resurrect finished
    // sessions on the next boot.
    TZLLM_RETURN_IF_ERROR(ta_->DropServeManifest());
  }
  return left > 0;
}

Status ServingRuntime::CheckpointFleet() {
  bool any = false;
  for (const auto& [id, r] : requests_) {
    if (r.state != State::kActive) {
      continue;
    }
    // Retirement already ran: every remaining active session is live on the
    // TA. SnapshotSession seals without evicting.
    TZLLM_RETURN_IF_ERROR(ta_->SnapshotSession(r.sid));
    any = true;
  }
  if (!any && pending() == 0) {
    return OkStatus();  // Nothing in flight — no manifest round needed.
  }
  const std::vector<uint8_t> manifest = SerializeManifest();
  auto saved = ta_->SaveServeManifest(manifest);
  if (!saved.ok()) {
    return saved.status();
  }
  ++stats_.auto_checkpoints;
  return OkStatus();
}

std::vector<uint8_t> ServingRuntime::SerializeManifest() const {
  // Range-construct off the magic (see the gcc 12 note in llm_ta.cc).
  std::vector<uint8_t> out(kManifestMagic,
                           kManifestMagic + sizeof(kManifestMagic));
  PutU64(&out, next_request_);
  uint32_t count = 0;
  for (const auto& [id, r] : requests_) {
    count += r.state != State::kDone;
  }
  PutU32(&out, count);
  for (const auto& [id, r] : requests_) {
    if (r.state == State::kDone) {
      continue;
    }
    PutU64(&out, r.id);
    PutU64(&out, r.sid);
    // kActive sessions were just snapshotted, so a recovering runtime
    // treats them exactly like evictees: restore the sealed blob.
    PutU32(&out, r.state == State::kQueued ? 0u : 1u);
    uint64_t priority_bits = 0;
    static_assert(sizeof(priority_bits) == sizeof(r.priority));
    std::memcpy(&priority_bits, &r.priority, sizeof(priority_bits));
    PutU64(&out, priority_bits);
    PutU32(&out, static_cast<uint32_t>(r.max_new_tokens));
    PutU64(&out, r.deadline_ticks);
    PutU32(&out, r.sampling.greedy ? 1 : 0);
    PutU32(&out, static_cast<uint32_t>(r.sampling.top_k));
    uint64_t temp_bits = 0;
    static_assert(sizeof(temp_bits) == sizeof(r.sampling.temperature));
    std::memcpy(&temp_bits, &r.sampling.temperature, sizeof(temp_bits));
    PutU64(&out, temp_bits);
    PutU64(&out, r.sampling.seed);
    PutU32(&out, static_cast<uint32_t>(r.prompt.size()));
    out.insert(out.end(), r.prompt.begin(), r.prompt.end());
  }
  return out;
}

Status ServingRuntime::Recover() {
  if (!requests_.empty()) {
    return FailedPrecondition(
        "Recover() requires a fresh runtime (no requests enqueued yet)");
  }
  auto manifest = ta_->LoadServeManifest();
  if (!manifest.ok()) {
    return manifest.status();
  }
  size_t off = 0;
  if (manifest->size() < sizeof(kManifestMagic) ||
      std::memcmp(manifest->data(), kManifestMagic, sizeof(kManifestMagic)) !=
          0) {
    return Status(ErrorCode::kDataCorruption, "serving manifest bad magic");
  }
  off = sizeof(kManifestMagic);
  uint64_t next_request = 0;
  uint32_t count = 0;
  if (!GetU64(*manifest, &off, &next_request) ||
      !GetU32(*manifest, &off, &count) || count > (1u << 20)) {
    return Status(ErrorCode::kDataCorruption, "serving manifest truncated");
  }
  for (uint32_t i = 0; i < count; ++i) {
    Request r;
    uint64_t sid = 0, priority_bits = 0, temp_bits = 0;
    uint32_t state = 0, max_new = 0, greedy = 0, top_k = 0, prompt_len = 0;
    const bool ok =
        GetU64(*manifest, &off, &r.id) && GetU64(*manifest, &off, &sid) &&
        GetU32(*manifest, &off, &state) &&
        GetU64(*manifest, &off, &priority_bits) &&
        GetU32(*manifest, &off, &max_new) &&
        GetU64(*manifest, &off, &r.deadline_ticks) &&
        GetU32(*manifest, &off, &greedy) && GetU32(*manifest, &off, &top_k) &&
        GetU64(*manifest, &off, &temp_bits) &&
        GetU64(*manifest, &off, &r.sampling.seed) &&
        GetU32(*manifest, &off, &prompt_len) &&
        off + prompt_len <= manifest->size();
    if (!ok || state > 1) {
      return Status(ErrorCode::kDataCorruption, "serving manifest truncated");
    }
    r.prompt.assign(reinterpret_cast<const char*>(manifest->data() + off),
                    prompt_len);
    off += prompt_len;
    r.sid = sid;
    r.max_new_tokens = static_cast<int>(max_new);
    std::memcpy(&r.priority, &priority_bits, sizeof(r.priority));
    r.sampling.greedy = greedy != 0;
    r.sampling.top_k = static_cast<int>(top_k);
    std::memcpy(&r.sampling.temperature, &temp_bits,
                sizeof(r.sampling.temperature));
    r.submit_s = Now();
    r.submit_tick = stats_.ticks;
    if (state == 1 && ta_->HasSessionCheckpoint(r.sid)) {
      // Sealed session state survives the crash: resume it bit-identically
      // on admission.
      r.state = State::kEvicted;
      r.from_manifest = true;
    } else {
      // Never admitted, or its checkpoint was lost with the crash window:
      // restart from the prompt (deterministic generation keeps the final
      // tokens identical).
      if (state == 1) {
        ++stats_.sessions_restarted;
      }
      r.state = State::kQueued;
      r.sid = 0;
    }
    SubmitJob(r);
    requests_.emplace(r.id, std::move(r));
  }
  next_request_ = std::max(next_request_, next_request);
  TZLLM_LOG_INFO("serve", "recovered %u manifested requests",
                 static_cast<unsigned>(count));
  return OkStatus();
}

void ServingRuntime::SnapshotKvStats() {
  const LlmTa::KvRecoveryStats& recovery = ta_->kv_recovery_stats();
  stats_.pages_recomputed = recovery.pages_recomputed;
  stats_.kv_recoveries = recovery.recoveries;
  stats_.recompute_ms = recovery.recompute_ms;
  const KvArena* arena = ta_->kv_arena();
  if (arena == nullptr || !arena->paged()) {
    return;
  }
  const KvPageStats& pages = arena->pool()->stats();
  stats_.page_spills = pages.spills;
  stats_.page_restores = pages.restores;
  stats_.cow_copies = pages.cow_copies;
  stats_.pages_lost = pages.pages_lost;
  const KvArena::PrefixStats& prefix = arena->prefix_stats();
  stats_.prefix_lookups = prefix.lookups;
  stats_.prefix_hits = prefix.hits;
}

int ServingRuntime::pending() const {
  int n = 0;
  for (const auto& [id, r] : requests_) {
    n += r.state != State::kDone ? 1 : 0;
  }
  return n;
}

Status ServingRuntime::RunToCompletion() {
  for (;;) {
    TZLLM_ASSIGN_OR_RETURN(more, Tick());
    if (!more) {
      return OkStatus();
    }
  }
}

}  // namespace tzllm
