#include "src/serve/serving.h"

#include <algorithm>
#include <utility>

namespace tzllm {

ServingRuntime::ServingRuntime(LlmTa* ta, Simulator* sim)
    : ta_(ta),
      pool_(sim, "serve-admit",
            std::max(1, ta->engine_options().max_sessions)),
      t0_(std::chrono::steady_clock::now()) {}

double ServingRuntime::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

ServingRuntime::Request* ServingRuntime::Find(uint64_t id) {
  auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : &it->second;
}

uint64_t ServingRuntime::Enqueue(ServeRequest request) {
  const uint64_t id = next_request_++;
  Request r;
  r.id = id;
  r.prompt = std::move(request.prompt);
  r.max_new_tokens = request.max_new_tokens;
  r.priority = request.priority;
  r.sampling = request.sampling;
  r.submit_s = Now();
  requests_.emplace(id, std::move(r));
  ServerPool::Job job;
  job.priority = request.priority;
  job.label = "serve-req";
  job.on_complete = [this, id] { popped_request_ = id; };
  pool_.SubmitHeld(std::move(job));
  return id;
}

Status ServingRuntime::AdmitTop() {
  ServerPool::Job job;
  if (!pool_.TakeTop(&job)) {
    return Internal("admission queue empty at AdmitTop");
  }
  popped_request_ = 0;
  if (job.on_complete) {
    job.on_complete();  // Writes the request id into popped_request_.
  }
  Request* r = Find(popped_request_);
  if (r == nullptr) {
    return Internal("admission queue handed back an unknown request");
  }
  if (r->state == State::kQueued) {
    TZLLM_ASSIGN_OR_RETURN(
        sid, ta_->AdmitSession(r->prompt, r->max_new_tokens, r->sampling));
    r->sid = sid;
  } else if (r->state == State::kEvicted) {
    // Bit-identical resumption: the restored session decodes exactly the
    // tokens the uninterrupted run would have.
    auto restored = ta_->RestoreSession(r->sid);
    if (!restored.ok()) {
      return restored.status();
    }
  } else {
    return Internal("admission queue held a request in a non-waiting state");
  }
  r->state = State::kActive;
  return OkStatus();
}

Status ServingRuntime::Evict(Request* r) {
  TZLLM_RETURN_IF_ERROR(ta_->CheckpointSession(r->sid));
  r->state = State::kEvicted;
  ++r->preemptions;
  ++stats_.preemptions;
  const uint64_t id = r->id;
  ServerPool::Job job;
  job.priority = r->priority;
  job.label = "serve-req";
  job.on_complete = [this, id] { popped_request_ = id; };
  pool_.SubmitHeld(std::move(job));
  return OkStatus();
}

ServingRuntime::Request* ServingRuntime::LeastUrgentRunning() {
  Request* victim = nullptr;
  for (auto& [id, r] : requests_) {
    if (r.state != State::kActive || !ta_->session_prefilled(r.sid) ||
        ta_->session_done(r.sid)) {
      continue;
    }
    // >= : among equal priorities the youngest (largest id) session yields,
    // so long-running work is preempted last.
    if (victim == nullptr || r.priority >= victim->priority) {
      victim = &r;
    }
  }
  return victim;
}

ServingRuntime::Request* ServingRuntime::NextPrefill() {
  Request* next = nullptr;
  for (auto& [id, r] : requests_) {
    if (r.state != State::kActive || ta_->session_prefilled(r.sid)) {
      continue;
    }
    // < : most urgent first; FIFO (smallest id) among equals.
    if (next == nullptr || r.priority < next->priority) {
      next = &r;
    }
  }
  return next;
}

Result<bool> ServingRuntime::Tick() {
  ++stats_.ticks;
  bool worked = false;

  // --- 1. Admission + preemption: fill free slots most-urgent-first; under
  // kPriority, a waiting request strictly more urgent than the least urgent
  // running session evicts it and takes the slot. The loop cannot ping-pong
  // within a tick: an evictee's priority is strictly greater than the
  // request that displaced it, so it never displaces anything back.
  double top = 0.0;
  while (pool_.TopPriority(&top)) {
    if (ta_->free_session_slots() > 0) {
      TZLLM_RETURN_IF_ERROR(AdmitTop());
      worked = true;
      continue;
    }
    if (ta_->engine_options().serve_eviction != ServeEvictPolicy::kPriority) {
      break;
    }
    Request* victim = LeastUrgentRunning();
    if (victim == nullptr || !(victim->priority > top)) {
      break;
    }
    TZLLM_RETURN_IF_ERROR(Evict(victim));
    worked = true;
  }

  // --- 2. One prefill quantum for the most urgent admitted prompt.
  if (Request* pf = NextPrefill(); pf != nullptr) {
    TZLLM_ASSIGN_OR_RETURN(finished, ta_->PrefillSessionChunk(pf->sid));
    if (finished && !pf->has_first_token) {
      pf->first_token_s = Now();  // First generated token just sampled.
      pf->has_first_token = true;
    }
    worked = true;
  }

  // --- 3. One batched decode step across every running session.
  std::vector<SessionId> running;
  std::vector<Request*> running_reqs;
  for (auto& [id, r] : requests_) {
    if (r.state == State::kActive && ta_->session_prefilled(r.sid) &&
        !ta_->session_done(r.sid)) {
      running.push_back(r.sid);
      running_reqs.push_back(&r);
    }
  }
  if (!running.empty()) {
    const double before = Now();
    TZLLM_RETURN_IF_ERROR(ta_->DecodeSessions(running));
    const double now = Now();
    for (Request* r : running_reqs) {
      r->token_s.push_back(now);
    }
    stats_.decode_tokens += running.size();
    stats_.decode_time_s += now - before;
    worked = true;
  }

  // --- 4. Retire finished sessions; their slots admit new work next tick.
  for (auto& [id, r] : requests_) {
    if (r.state != State::kActive || !ta_->session_done(r.sid)) {
      continue;
    }
    auto generation = ta_->FinishSession(r.sid);
    if (!generation.ok()) {
      return generation.status();
    }
    ServeRequestResult done;
    done.request_id = r.id;
    done.priority = r.priority;
    done.generation = std::move(*generation);
    done.submit_s = r.submit_s;
    done.first_token_s = r.first_token_s;
    done.finish_s = Now();
    done.token_s = std::move(r.token_s);
    done.preemptions = r.preemptions;
    results_.push_back(std::move(done));
    r.state = State::kDone;
    worked = true;
  }

  SnapshotKvStats();
  const int left = pending();
  if (left > 0 && !worked) {
    return Status(ErrorCode::kInternal,
                  "serving scheduler stalled with requests outstanding");
  }
  return left > 0;
}

void ServingRuntime::SnapshotKvStats() {
  const KvArena* arena = ta_->kv_arena();
  if (arena == nullptr || !arena->paged()) {
    return;
  }
  const KvPageStats& pages = arena->pool()->stats();
  stats_.page_spills = pages.spills;
  stats_.page_restores = pages.restores;
  stats_.cow_copies = pages.cow_copies;
  const KvArena::PrefixStats& prefix = arena->prefix_stats();
  stats_.prefix_lookups = prefix.lookups;
  stats_.prefix_hits = prefix.hits;
}

int ServingRuntime::pending() const {
  int n = 0;
  for (const auto& [id, r] : requests_) {
    n += r.state != State::kDone ? 1 : 0;
  }
  return n;
}

Status ServingRuntime::RunToCompletion() {
  for (;;) {
    TZLLM_ASSIGN_OR_RETURN(more, Tick());
    if (!more) {
      return OkStatus();
    }
  }
}

}  // namespace tzllm
