// Multi-session serving runtime: continuous batching over one LlmTa.
//
// The runtime admits up to EngineOptions::max_sessions concurrent generation
// sessions onto a single TA and drives them with a tick-based scheduler.
// Each tick:
//
//   1. Admission/preemption — free KV slots are filled with the most urgent
//      waiting requests (a held-job ServerPool is the admission queue);
//      under ServeEvictPolicy::kPriority a more urgent arrival preempts the
//      least urgent running session via CheckpointSession (the PR 6 sealed
//      blob), whose slot it takes; the victim re-queues at its own priority
//      and is restored bit-identically when capacity frees up. With
//      paged_kv, a slot is a page table, not a resident arena: admission is
//      no longer bounded by what secure scratch can hold resident — the
//      pool spills cold PAGES to encrypted REE memory under pressure, so
//      the expensive whole-session checkpoint eviction above becomes the
//      policy of last resort rather than the only pressure valve.
//   2. One prefill quantum — ONE admitted prompt advances by one chunk of
//      prefill_batch positions (LlmTa::PrefillSessionChunk), so a long
//      incoming prompt interleaves with everyone else's decode instead of
//      blocking the TA for its whole prefill.
//   3. One batched decode step — every running session advances one token
//      through LlmTa::DecodeSessions: per layer one MatMatQ8 across all
//      sessions' current positions, so the weights stream through the cache
//      once per step regardless of how many sessions ride it. Per-session
//      logits are bit-identical to stepping that session alone.
//   4. Retirement — sessions that hit EOS / budget / context window are
//      finished and their slots freed.
//
// Scheduling is deterministic (priority then FIFO, session order by id);
// wall-clock timestamps are recorded per token for the fig18 latency
// metrics but never feed back into scheduling decisions.

#ifndef SRC_SERVE_SERVING_H_
#define SRC_SERVE_SERVING_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/llm_ta.h"
#include "src/sim/server.h"

namespace tzllm {

// One generation request submitted to the serving runtime.
struct ServeRequest {
  std::string prompt;
  int max_new_tokens = 0;
  // Lower value = more urgent; ties admit in submission (FIFO) order.
  double priority = 0.0;
  Sampler::Options sampling;
};

// A completed request with its timing record. Timestamps are seconds on the
// runtime's own clock (0 = runtime construction).
struct ServeRequestResult {
  uint64_t request_id = 0;
  double priority = 0.0;
  GenerationResult generation;
  double submit_s = 0.0;
  // When the first generated token was sampled (prefill completion) — TTFT
  // is first_token_s - submit_s.
  double first_token_s = 0.0;
  double finish_s = 0.0;
  // Emission time of each decoded token; adjacent differences are the
  // inter-token latencies.
  std::vector<double> token_s;
  int preemptions = 0;
};

// Aggregate scheduler counters.
struct ServeStats {
  uint64_t ticks = 0;
  uint64_t decode_tokens = 0;
  // Wall time spent inside batched decode steps. decode_tokens /
  // decode_time_s is the aggregate decode throughput — decode only, so it
  // is directly comparable across batch sizes (prefill cost is a latency
  // question and shows up in TTFT, not here).
  double decode_time_s = 0.0;
  int preemptions = 0;
  // Paged-KV counters, snapshotted from the TA's page pool and prefix
  // registry each tick (all zero when paged_kv is off). Under paging the
  // cheap pressure valve is a page spill/restore — whole-session
  // checkpoint preemptions above should stay rare by comparison.
  uint64_t page_spills = 0;
  uint64_t page_restores = 0;
  uint64_t cow_copies = 0;
  uint64_t prefix_lookups = 0;
  uint64_t prefix_hits = 0;
};

class ServingRuntime {
 public:
  // `ta` must outlive the runtime and have a model loaded; its
  // EngineOptions supply the session capacity (max_sessions), the prefill
  // quantum (prefill_batch), the decode grouping (decode_batch) and the
  // eviction policy (serve_eviction). `sim` backs the admission-queue
  // ServerPool (held jobs never schedule on it, but the pool needs its
  // substrate).
  ServingRuntime(LlmTa* ta, Simulator* sim);

  // Queues a request; returns its id. Admission happens inside Tick.
  uint64_t Enqueue(ServeRequest request);

  // Runs one scheduler tick (the four stages above). Returns true while any
  // request is still queued, running or evicted; false once everything
  // completed. kInternal if a tick can make no progress (scheduler bug, not
  // a load condition).
  Result<bool> Tick();

  // Ticks until every enqueued request has completed.
  Status RunToCompletion();

  // Completed requests in completion order.
  const std::vector<ServeRequestResult>& results() const { return results_; }
  const ServeStats& stats() const { return stats_; }
  // Requests not yet completed (queued, running or evicted).
  int pending() const;

 private:
  enum class State {
    kQueued,   // Waiting in the admission queue; no session yet.
    kActive,   // Holds a KV slot (prefilling or decoding).
    kEvicted,  // Checkpointed to flash; waiting in the admission queue.
    kDone,
  };

  struct Request {
    uint64_t id = 0;
    std::string prompt;
    int max_new_tokens = 0;
    double priority = 0.0;
    Sampler::Options sampling;
    State state = State::kQueued;
    SessionId sid = 0;  // Valid from first admission on (survives eviction).
    int preemptions = 0;
    double submit_s = 0.0;
    double first_token_s = 0.0;
    bool has_first_token = false;
    std::vector<double> token_s;
  };

  double Now() const;
  Request* Find(uint64_t id);
  // Pops the admission queue's most urgent request and admits it into a
  // free KV slot (fresh AdmitSession or RestoreSession for an evictee).
  Status AdmitTop();
  // Seals `r`'s session to flash, frees its slot and re-queues it.
  Status Evict(Request* r);
  // The least urgent session eligible as a preemption victim (active,
  // prefilled, not done); ties broken toward the youngest session.
  Request* LeastUrgentRunning();
  // Copies the TA's page-pool / prefix-registry counters into stats_.
  void SnapshotKvStats();
  // The most urgent admitted session still mid-prefill; nullptr if none.
  Request* NextPrefill();

  LlmTa* ta_;
  ServerPool pool_;
  std::map<uint64_t, Request> requests_;  // Deterministic iteration order.
  std::vector<ServeRequestResult> results_;
  ServeStats stats_;
  uint64_t next_request_ = 1;
  // Handoff slot for the admission queue's job closures (see AdmitTop).
  uint64_t popped_request_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace tzllm

#endif  // SRC_SERVE_SERVING_H_
