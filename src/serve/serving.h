// Multi-session serving runtime: continuous batching over one LlmTa.
//
// The runtime admits up to EngineOptions::max_sessions concurrent generation
// sessions onto a single TA and drives them with a tick-based scheduler.
// Each tick:
//
//   1. Admission/preemption — free KV slots are filled with the most urgent
//      waiting requests (a held-job ServerPool is the admission queue);
//      under ServeEvictPolicy::kPriority a more urgent arrival preempts the
//      least urgent running session via CheckpointSession (the PR 6 sealed
//      blob), whose slot it takes; the victim re-queues at its own priority
//      and is restored bit-identically when capacity frees up. With
//      paged_kv, a slot is a page table, not a resident arena: admission is
//      no longer bounded by what secure scratch can hold resident — the
//      pool spills cold PAGES to encrypted REE memory under pressure, so
//      the expensive whole-session checkpoint eviction above becomes the
//      policy of last resort rather than the only pressure valve.
//   2. One prefill quantum — ONE admitted prompt advances by one chunk of
//      prefill_batch positions (LlmTa::PrefillSessionChunk), so a long
//      incoming prompt interleaves with everyone else's decode instead of
//      blocking the TA for its whole prefill.
//   3. One batched decode step — every running session advances one token
//      through LlmTa::DecodeSessions: per layer one MatMatQ8 across all
//      sessions' current positions, so the weights stream through the cache
//      once per step regardless of how many sessions ride it. Per-session
//      logits are bit-identical to stepping that session alone.
//   4. Retirement — sessions that hit EOS / budget / context window are
//      finished and their slots freed.
//
// Scheduling is deterministic (priority then FIFO, session order by id);
// wall-clock timestamps are recorded per token for the fig18 latency
// metrics but never feed back into scheduling decisions. Overload and
// failure handling (ISSUE 10) is deterministic too:
//
//   * Admission bound — EngineOptions::serve_queue_max caps the waiting
//     set; Enqueue rejects beyond it with kUnavailable. Queued requests
//     with a deadline_ticks budget that expires before admission are shed
//     with a kUnavailable result instead of degrading admitted sessions.
//   * Stuck-tick watchdog — serve_watchdog_ticks consecutive zero-progress
//     ticks surface kDeadlineExceeded with queue diagnostics.
//   * Crash recovery — every serve_checkpoint_every_n_ticks ticks the
//     runtime snapshots all active sessions (LlmTa::SnapshotSession) and
//     seals a fleet manifest; after a TA crash, Recover() on a fresh
//     runtime over a freshly booted TA re-queues every manifested request,
//     restoring checkpointed sessions token-identically and restarting the
//     rest from their prompts (same tokens either way — generation is
//     deterministic).

#ifndef SRC_SERVE_SERVING_H_
#define SRC_SERVE_SERVING_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/llm_ta.h"
#include "src/sim/server.h"

namespace tzllm {

// One generation request submitted to the serving runtime.
struct ServeRequest {
  std::string prompt;
  int max_new_tokens = 0;
  // Lower value = more urgent; ties admit in submission (FIFO) order.
  double priority = 0.0;
  Sampler::Options sampling;
  // Admission deadline in scheduler ticks: still queued (never admitted)
  // this many ticks after submission => shed with a kUnavailable result.
  // 0 = wait forever. Tick-based, not wall-clock: scheduling decisions stay
  // deterministic (tzlint bans wall time in this layer).
  uint64_t deadline_ticks = 0;
};

// A completed request with its timing record. Timestamps are seconds on the
// runtime's own clock (0 = runtime construction).
struct ServeRequestResult {
  uint64_t request_id = 0;
  double priority = 0.0;
  // OK for a completed generation; kUnavailable for a request shed after
  // its deadline_ticks expired in the queue (generation is then empty).
  Status status;
  GenerationResult generation;
  double submit_s = 0.0;
  // When the first generated token was sampled (prefill completion) — TTFT
  // is first_token_s - submit_s.
  double first_token_s = 0.0;
  double finish_s = 0.0;
  // Emission time of each decoded token; adjacent differences are the
  // inter-token latencies.
  std::vector<double> token_s;
  int preemptions = 0;
};

// Aggregate scheduler counters.
struct ServeStats {
  uint64_t ticks = 0;
  uint64_t decode_tokens = 0;
  // Wall time spent inside batched decode steps. decode_tokens /
  // decode_time_s is the aggregate decode throughput — decode only, so it
  // is directly comparable across batch sizes (prefill cost is a latency
  // question and shows up in TTFT, not here).
  double decode_time_s = 0.0;
  int preemptions = 0;
  // Paged-KV counters, snapshotted from the TA's page pool and prefix
  // registry each tick (all zero when paged_kv is off). Under paging the
  // cheap pressure valve is a page spill/restore — whole-session
  // checkpoint preemptions above should stay rare by comparison.
  uint64_t page_spills = 0;
  uint64_t page_restores = 0;
  uint64_t cow_copies = 0;
  uint64_t prefix_lookups = 0;
  uint64_t prefix_hits = 0;
  // Loss-recovery counters (ISSUE 10): pages whose REE spill blob came back
  // tampered/truncated/missing, and what re-prefilling them cost.
  uint64_t pages_lost = 0;
  uint64_t pages_recomputed = 0;
  uint64_t kv_recoveries = 0;
  double recompute_ms = 0.0;
  // Overload counters: Enqueue rejections (serve_queue_max) and queued
  // requests shed past their deadline_ticks.
  uint64_t requests_rejected = 0;
  uint64_t requests_shed = 0;
  // Crash-recovery counters: auto-checkpoint rounds taken, sessions resumed
  // from a sealed blob by Recover()/admission, and sessions restarted from
  // their prompt because the blob was missing or corrupt.
  uint64_t auto_checkpoints = 0;
  uint64_t sessions_recovered = 0;
  uint64_t sessions_restarted = 0;
};

class ServingRuntime {
 public:
  // `ta` must outlive the runtime and have a model loaded; its
  // EngineOptions supply the session capacity (max_sessions), the prefill
  // quantum (prefill_batch), the decode grouping (decode_batch) and the
  // eviction policy (serve_eviction). `sim` backs the admission-queue
  // ServerPool (held jobs never schedule on it, but the pool needs its
  // substrate).
  ServingRuntime(LlmTa* ta, Simulator* sim);

  // Queues a request; returns its id. Admission happens inside Tick.
  // kUnavailable once serve_queue_max requests are already waiting (queued
  // or evicted) — overload sheds new arrivals instead of degrading every
  // admitted session.
  Result<uint64_t> Enqueue(ServeRequest request);

  // Rebuilds the fleet from the sealed serving manifest on a FRESH runtime
  // (no requests yet) over a freshly booted TA with the same model: every
  // manifested request re-queues at its original id and priority; sessions
  // with a sealed checkpoint resume token-identically on admission, the
  // rest restart from their prompts (deterministic generation makes the
  // final tokens identical either way). kNotFound when no manifest exists.
  Status Recover();

  // Runs one scheduler tick (the four stages above). Returns true while any
  // request is still queued, running or evicted; false once everything
  // completed. kInternal if a tick can make no progress (scheduler bug, not
  // a load condition).
  Result<bool> Tick();

  // Ticks until every enqueued request has completed.
  Status RunToCompletion();

  // Completed requests in completion order.
  const std::vector<ServeRequestResult>& results() const { return results_; }
  const ServeStats& stats() const { return stats_; }
  // Requests not yet completed (queued, running or evicted).
  int pending() const;

  // Test hook: the next `n` ticks skip every scheduler stage (as if the
  // engine made no progress), driving the stuck-tick watchdog
  // deterministically.
  void InjectStallTicksForTest(int n) { stall_inject_ = n; }

 private:
  enum class State {
    kQueued,   // Waiting in the admission queue; no session yet.
    kActive,   // Holds a KV slot (prefilling or decoding).
    kEvicted,  // Checkpointed to flash; waiting in the admission queue.
    kDone,
  };

  struct Request {
    uint64_t id = 0;
    std::string prompt;
    int max_new_tokens = 0;
    double priority = 0.0;
    Sampler::Options sampling;
    State state = State::kQueued;
    SessionId sid = 0;  // Valid from first admission on (survives eviction).
    int preemptions = 0;
    double submit_s = 0.0;
    double first_token_s = 0.0;
    bool has_first_token = false;
    std::vector<double> token_s;
    // Tick counter value at submission; with deadline_ticks > 0 the request
    // is shed once it waits past the budget without ever being admitted.
    uint64_t submit_tick = 0;
    uint64_t deadline_ticks = 0;
    // Re-queued by Recover() with a sealed session checkpoint to restore;
    // its first successful admission counts as a session recovered.
    bool from_manifest = false;
  };

  double Now() const;
  Request* Find(uint64_t id);
  // Pops the admission queue's most urgent request and admits it into a
  // free KV slot (fresh AdmitSession or RestoreSession for an evictee).
  Status AdmitTop();
  // Seals `r`'s session to flash, frees its slot and re-queues it.
  Status Evict(Request* r);
  // The least urgent session eligible as a preemption victim (active,
  // prefilled, not done); ties broken toward the youngest session.
  Request* LeastUrgentRunning();
  // Copies the TA's page-pool / prefix-registry counters into stats_.
  void SnapshotKvStats();
  // The most urgent admitted session still mid-prefill; nullptr if none.
  Request* NextPrefill();
  // Re-queues `r` on the admission ServerPool (held job carrying its id).
  void SubmitJob(const Request& r);
  // Auto-checkpoint round: snapshot every active session and seal the fleet
  // manifest (serve_checkpoint_every_n_ticks cadence).
  Status CheckpointFleet();
  // The sealed manifest bytes: every non-done request's identity, priority,
  // budget, sampling options and prompt.
  std::vector<uint8_t> SerializeManifest() const;

  LlmTa* ta_;
  ServerPool pool_;
  std::map<uint64_t, Request> requests_;  // Deterministic iteration order.
  std::vector<ServeRequestResult> results_;
  ServeStats stats_;
  uint64_t next_request_ = 1;
  // Handoff slot for the admission queue's job closures (see AdmitTop).
  uint64_t popped_request_ = 0;
  // Consecutive zero-progress ticks (watchdog) and pending injected stalls
  // (test hook).
  int stall_ticks_ = 0;
  int stall_inject_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace tzllm

#endif  // SRC_SERVE_SERVING_H_
