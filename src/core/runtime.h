// End-to-end inference runtimes over the simulated SoC (paper §7 baselines):
//
//   kTzLlm     — the full system: TEE-protected parameters, elastic secure
//                memory with pipelined restoration, checkpointed framework
//                state, NPU via the co-driver path, partial caching.
//   kStrawman  — TEE protection without the optimizations: cold start, CMA
//                allocation, sequential restore, CPU-only compute (§2.3).
//   kReeFlash  — unmodified llama.cpp in the REE, parameters loaded at
//                inference start with pipelined restoration (buddy pages,
//                no decryption), NPU via the REE driver.
//   kReeMemory — llama.cpp in the REE with all parameters preloaded:
//                the impractical performance upper bound.
//
// One class drives all four so every difference between systems is an
// explicit branch on SystemKind, mirroring the ablation structure of §7.1.

#ifndef SRC_CORE_RUNTIME_H_
#define SRC_CORE_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/llm_ta.h"
#include "src/core/pipeline.h"
#include "src/core/restore_plan.h"
#include "src/hw/platform.h"
#include "src/llm/cost_model.h"
#include "src/llm/engine_options.h"
#include "src/llm/graph.h"
#include "src/llm/model_spec.h"
#include "src/ree/memory_manager.h"
#include "src/ree/npu_driver.h"
#include "src/ree/stress.h"
#include "src/ree/tz_driver.h"
#include "src/tee/npu_driver.h"
#include "src/tee/tee_os.h"

namespace tzllm {

enum class SystemKind : uint8_t {
  kTzLlm,
  kStrawman,
  kReeFlash,
  kReeMemory,
};

const char* SystemKindName(SystemKind kind);

struct RuntimeConfig {
  LlmConfig model;
  SystemKind system = SystemKind::kTzLlm;
  SchedulePolicy policy = SchedulePolicy::kPriorityPreemptive;
  bool pipelined = true;   // Figure 13 ablation: false = no pipeline.
  bool use_npu = true;     // Forced false for kStrawman.
  bool checkpoint = true;  // Forced false for kStrawman.
  // Functional-engine knobs, handed to LlmTa/LlmEngine by stacks that run
  // real token generation (thread-count and prefill-batch sweeps).
  EngineOptions engine;
  // Provision the model with real tensor bytes so CreateFunctionalTa can
  // run actual token generation on this runtime's platform — the
  // modeled-vs-measured co-driver cross-check path. Off for the paper-scale
  // stacks (their models are shape-only).
  bool materialize_model = false;
  uint64_t root_key_seed = 0x7EE5EED;
};

struct InferenceRequest {
  int prompt_tokens = 128;
  int decode_tokens = 0;
  // Fraction of parameters to leave cached in secure memory afterwards
  // (kTzLlm only; §4.1 partial parameter caching).
  double cache_proportion_after = 0.0;
  bool record_trace = false;
};

struct InferenceReport {
  Status status;
  SimDuration init_time = 0;
  SimDuration scratch_alloc_time = 0;  // KV cache + activation allocation.
  SimDuration prefill_time = 0;        // Restoration pipeline makespan.
  SimDuration ttft = 0;                // init + scratch + prefill.
  SimDuration decode_time = 0;
  double decode_tokens_per_s = 0.0;
  SimDuration release_time = 0;
  uint64_t restored_bytes = 0;
  uint64_t cached_hit_bytes = 0;
  // §7.3 accounting (deltas over this inference).
  uint64_t smc_round_trips = 0;
  uint64_t secure_npu_jobs = 0;
  SimDuration npu_switch_time = 0;  // smc + TZPC/TZASC/GIC time.
  PipelineResult prefill_pipeline;
};

// Owns the whole software stack above a SocPlatform. Create one platform +
// one runtime per evaluated system configuration.
class SystemRuntime {
 public:
  SystemRuntime(SocPlatform* platform, const RuntimeConfig& config);

  // Boots the stack and provisions the (synthetic) model on flash.
  Status Setup();

  // Runs one inference request to completion on the simulator.
  InferenceReport RunInference(const InferenceRequest& request);

  // Releases everything still cached (back to cold state).
  Status ReleaseAll();

  // Builds a functional LLM TA on this runtime's TEE stack, wired through
  // the same engine options (RuntimeConfig::engine) and — when the runtime
  // has an NPU — the same TeeNpuDriver instance the modeled fig09/fig10
  // paths submit through. This is the cross-check seam: run real NPU-
  // offloaded prefill here, then compare the driver's measured per-job
  // co-driver stats against the cost-model constants the paper-scale
  // figures are priced with. Requires RuntimeConfig::materialize_model.
  Result<std::unique_ptr<LlmTa>> CreateFunctionalTa();

  uint64_t cached_bytes() const { return cached_bytes_; }
  const ModelSpec& spec() const { return spec_; }
  const ComputeGraph& prefill_graph() const { return prefill_graph_; }
  const ComputeGraph& decode_graph() const { return decode_graph_; }
  const CostModel& cost_model() const { return cost_model_; }
  ReeMemoryManager& memory() { return *memory_; }
  StressWorkload& stress() { return *stress_; }
  TeeOs& tee_os() { return *tee_os_; }
  TeeNpuDriver& tee_npu() { return *tee_npu_; }
  ReeNpuDriver& ree_npu() { return *ree_npu_; }
  SocPlatform& platform() { return *platform_; }
  const RuntimeConfig& config() const { return config_; }

  // Decode-phase compute time for one token at position `pos`, including
  // driver-path overheads. Exposed for analytic cross-checks in tests.
  SimDuration DecodeTokenTime(int pos) const;

 private:
  bool IsTee() const {
    return config_.system == SystemKind::kTzLlm ||
           config_.system == SystemKind::kStrawman;
  }
  bool UsesNpu() const {
    return config_.use_npu && config_.system != SystemKind::kStrawman;
  }

  Result<SimDuration> PlanAllocTee(uint64_t bytes);
  Result<SimDuration> PlanAllocBuddy(uint64_t bytes);
  NpuSubmitFn MakeNpuSubmit();
  SimDuration RunDecode(int prompt_tokens, int n_tokens);
  void AdvanceSim(SimDuration d);

  SocPlatform* platform_;
  RuntimeConfig config_;
  ModelSpec spec_;
  ComputeGraph prefill_graph_;
  ComputeGraph decode_graph_;
  CostModel cost_model_;

  std::unique_ptr<ReeMemoryManager> memory_;
  std::unique_ptr<StressWorkload> stress_;
  std::unique_ptr<TzDriver> tz_driver_;
  std::unique_ptr<ReeNpuDriver> ree_npu_;
  std::unique_ptr<TeeOs> tee_os_;
  std::unique_ptr<TeeNpuDriver> tee_npu_;
  TaId ta_ = -1;

  // REE baseline page bookkeeping.
  std::vector<uint64_t> ree_param_pages_;

  uint64_t cached_bytes_ = 0;
  bool scratch_mapped_ = false;
  uint64_t scratch_bytes_ = 0;
  bool setup_done_ = false;
};

}  // namespace tzllm

#endif  // SRC_CORE_RUNTIME_H_
