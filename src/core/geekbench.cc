#include "src/core/geekbench.h"

namespace tzllm {

const std::vector<GeekbenchWorkload>& GeekbenchSuite() {
  // tlb_walk_share is calibrated so S2ptOverheadPercent reproduces the
  // Figure 2 annotations (4.3, 9.8, 0.6, 3.7, 1.3, 1.4, 1.8, 0.2, 0.6, 0.9,
  // 5.2, 0.8, 1.7, 0.2, 0.3, -0.1 %). overhead ~= share * (inflation - 1) /
  // (1 + share * (inflation - 1)) with inflation 5 => share ~= pct / (4 *
  // (1 - pct)).
  static const std::vector<GeekbenchWorkload> kSuite = {
      {"File Comp.", 0.01124, 0.55, 1530},
      {"Navigation", 0.02717, 0.35, 1065},
      {"HTML5", 0.00151, 0.40, 1280},
      {"PDF Rend.", 0.00961, 0.45, 1410},
      {"Photo Lib.", 0.00329, 0.60, 1710},
      {"Clang", 0.00355, 0.50, 1340},
      {"Text Proc.", 0.00458, 0.45, 1195},
      {"Asset Comp.", 0.00050, 0.70, 1620},
      {"Obj. Detect.", 0.00151, 0.65, 1450},
      {"Back. Blur", 0.00227, 0.75, 1880},
      {"Obj. Remover", 0.01372, 0.80, 1255},
      {"HDR", 0.00202, 0.85, 2040},
      {"Photo Filter", 0.00432, 0.70, 1760},
      {"Ray Tracer", 0.00050, 0.25, 1995},
      {"Motion", 0.00075, 0.30, 1540},
      {"Horizon", -0.00025, 0.35, 1385},
  };
  return kSuite;
}

double ScoreWithS2pt(const GeekbenchWorkload& w) {
  // Runtime inflates by the extra page-walk cost: walk share multiplied by
  // the two-dimensional walk factor.
  const double extra = w.tlb_walk_share * (kS2ptWalkInflation - 1.0);
  return w.base_score / (1.0 + extra);
}

double S2ptOverheadPercent(const GeekbenchWorkload& w) {
  return (1.0 - ScoreWithS2pt(w) / w.base_score) * 100.0;
}

double ScoreUnderMigration(const GeekbenchWorkload& w, double migration_duty,
                           double bandwidth_share) {
  // While migration runs (duty fraction of the benchmark window), memory-
  // bound phases lose `bandwidth_share` of their bandwidth.
  const double slow_factor =
      1.0 + w.memory_intensity * bandwidth_share / (1.0 - bandwidth_share);
  const double t = (1.0 - migration_duty) + migration_duty * slow_factor;
  return w.base_score / t;
}

}  // namespace tzllm
