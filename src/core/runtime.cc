#include "src/core/runtime.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/llm/tzguf.h"
#include "src/tee/checkpoint.h"

namespace tzllm {

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kTzLlm:
      return "TZ-LLM";
    case SystemKind::kStrawman:
      return "Strawman";
    case SystemKind::kReeFlash:
      return "REE-LLM-Flash";
    case SystemKind::kReeMemory:
      return "REE-LLM-Memory";
  }
  return "?";
}

SystemRuntime::SystemRuntime(SocPlatform* platform,
                             const RuntimeConfig& config)
    : platform_(platform),
      config_(config),
      spec_(ModelSpec::Create(config.model)),
      prefill_graph_(ComputeGraph::BuildPrefill(spec_)),
      decode_graph_(ComputeGraph::BuildDecode(spec_)),
      cost_model_(&spec_) {
  if (config_.system == SystemKind::kStrawman) {
    config_.use_npu = false;
    config_.checkpoint = false;
    config_.pipelined = false;
    config_.policy = SchedulePolicy::kFifo;
  }
}

Status SystemRuntime::Setup() {
  if (setup_done_) {
    return FailedPrecondition("Setup already ran");
  }
  // --- Memory layout: CMA regions sized for this model. ---
  ReeMemoryLayout layout;
  layout.dram_bytes = platform_->config().dram_bytes;
  layout.kernel_bytes = kReeBaseUsage;
  layout.cma_bytes = AlignUp(spec_.total_param_bytes() + 128 * kMiB,
                             2 * kMiB);
  const uint64_t scratch_need =
      spec_.KvCacheBytes(spec_.config().max_ctx) + spec_.ActivationBytes();
  layout.cma2_bytes = AlignUp(scratch_need + 64 * kMiB, 2 * kMiB);
  memory_ = std::make_unique<ReeMemoryManager>(layout, &platform_->dram());
  stress_ = std::make_unique<StressWorkload>(memory_.get(),
                                             &platform_->dram());

  // --- Drivers and TEE stack. ---
  tz_driver_ = std::make_unique<TzDriver>(platform_, memory_.get());
  ree_npu_ = std::make_unique<ReeNpuDriver>(platform_);
  ree_npu_->Init();
  tee_os_ = std::make_unique<TeeOs>(platform_, tz_driver_.get(),
                                    config_.root_key_seed);
  TZLLM_RETURN_IF_ERROR(tee_os_->Boot());
  tee_npu_ = std::make_unique<TeeNpuDriver>(platform_, tee_os_.get());
  tee_npu_->Init();
  auto ta = tee_os_->CreateTa("llm-ta");
  if (!ta.ok()) {
    return ta.status();
  }
  ta_ = *ta;

  // --- Provision the (synthetic) encrypted model on flash. ---
  auto meta = Tzguf::Provision(&platform_->flash(), tee_os_->keys(),
                               spec_.config().name, spec_,
                               /*weight_seed=*/0xC0FFEE,
                               config_.materialize_model);
  if (!meta.ok()) {
    return meta.status();
  }
  auto wrapped = Tzguf::ReadWrappedKey(&platform_->flash(),
                                       spec_.config().name);
  if (!wrapped.ok()) {
    return wrapped.status();
  }
  tee_os_->InstallWrappedKey(*wrapped);
  TZLLM_RETURN_IF_ERROR(tee_os_->AuthorizeKeyAccess(ta_, spec_.config().name));

  if (config_.system == SystemKind::kReeMemory) {
    // Preload: parameters resident in REE memory before timing starts.
    SimDuration ignored = 0;
    TZLLM_RETURN_IF_ERROR(memory_->AllocMovablePages(
        BytesToPages(spec_.total_param_bytes()), &ree_param_pages_,
        &ignored));
  }
  setup_done_ = true;
  return OkStatus();
}

void SystemRuntime::AdvanceSim(SimDuration d) {
  platform_->sim().RunUntil(platform_->sim().Now() + d);
}

Result<SimDuration> SystemRuntime::PlanAllocTee(uint64_t bytes) {
  auto extent = tee_os_->ExtendAllocated(ta_, SecureRegionId::kParams, bytes);
  if (!extent.ok()) {
    return extent.status();
  }
  return extent->cpu_time;
}

Result<SimDuration> SystemRuntime::PlanAllocBuddy(uint64_t bytes) {
  SimDuration cpu_time = 0;
  TZLLM_RETURN_IF_ERROR(memory_->AllocMovablePages(
      BytesToPages(bytes), &ree_param_pages_, &cpu_time));
  return cpu_time;
}

NpuSubmitFn SystemRuntime::MakeNpuSubmit() {
  if (IsTee()) {
    return [this](SimDuration duration, std::function<void(Status)> done) {
      // Execution context lives in the protected scratch region.
      const PhysAddr scratch = tee_os_->RegionBase(SecureRegionId::kScratch);
      NpuJobDesc desc;
      desc.cmd_addr = scratch;
      desc.cmd_size = 4 * kKiB;
      desc.iopt_addr = scratch + 4 * kKiB;
      desc.iopt_size = 4 * kKiB;
      desc.buffers = {{scratch + 8 * kKiB, 64 * kKiB}};
      desc.duration = duration;
      auto submitted = tee_npu_->SubmitJob(ta_, desc, std::move(done));
      if (!submitted.ok()) {
        TZLLM_LOG_ERROR("runtime", "secure NPU submit failed: %s",
                        submitted.status().ToString().c_str());
      }
    };
  }
  return [this](SimDuration duration, std::function<void(Status)> done) {
    NpuJobDesc desc;
    // Non-secure execution context in REE memory (outside CMA regions).
    desc.cmd_addr = 512 * kMiB;
    desc.cmd_size = 4 * kKiB;
    desc.iopt_addr = 512 * kMiB + 4 * kKiB;
    desc.iopt_size = 4 * kKiB;
    desc.buffers = {{512 * kMiB + 8 * kKiB, 64 * kKiB}};
    desc.duration = duration;
    ree_npu_->SubmitJob(desc, std::move(done));
  };
}

InferenceReport SystemRuntime::RunInference(const InferenceRequest& request) {
  InferenceReport report;
  if (!setup_done_) {
    report.status = FailedPrecondition("call Setup first");
    return report;
  }
  Simulator& sim = platform_->sim();
  SecureMonitor& monitor = platform_->monitor();
  const uint64_t smc_before = monitor.round_trips();
  const uint64_t jobs_before = tee_npu_->secure_jobs_completed();
  const SimDuration switch_before =
      tee_npu_->total_config_time() + tee_npu_->total_smc_time();
  const SimTime t0 = sim.Now();

  // --- Phase 1: framework initialization. ---
  if (IsTee()) {
    report.init_time = config_.checkpoint ? CheckpointService::RestoreTime()
                                          : CheckpointService::FullInitTime();
  } else {
    // Warm llama.cpp process in the REE: boot only.
    report.init_time = kLlamaBootTime;
  }
  AdvanceSim(report.init_time);

  // --- Phase 2: KV cache + activation allocation (scratch region). ---
  const int total_tokens =
      std::min(request.prompt_tokens + request.decode_tokens + 8,
               spec_.config().max_ctx);
  const uint64_t scratch_bytes = AlignUp(
      spec_.KvCacheBytes(total_tokens) + spec_.ActivationBytes(), kPageSize);
  if (!scratch_mapped_) {
    SimDuration scratch_time = 0;
    if (IsTee()) {
      auto extent =
          tee_os_->ExtendAllocated(ta_, SecureRegionId::kScratch,
                                   scratch_bytes);
      if (!extent.ok()) {
        report.status = extent.status();
        return report;
      }
      Status prot = tee_os_->ExtendProtected(ta_, SecureRegionId::kScratch,
                                             scratch_bytes);
      if (!prot.ok()) {
        report.status = prot;
        return report;
      }
      scratch_time = extent->cpu_time + 2 * kTzascConfigTime;
    } else {
      auto buddy_time = PlanAllocBuddy(scratch_bytes);
      if (!buddy_time.ok()) {
        report.status = buddy_time.status();
        return report;
      }
      scratch_time = *buddy_time;
    }
    report.scratch_alloc_time = scratch_time;
    AdvanceSim(scratch_time);
    scratch_mapped_ = true;
    scratch_bytes_ = scratch_bytes;
  }

  // --- Phase 3: prefill with pipelined restoration. ---
  RestorePlanOptions plan_options;
  plan_options.npu_available = UsesNpu();
  plan_options.decrypt = IsTee();
  plan_options.restore = config_.system != SystemKind::kReeMemory;
  plan_options.pipelined = config_.pipelined;
  plan_options.preemptible =
      config_.policy == SchedulePolicy::kPriorityPreemptive;
  plan_options.cached_bytes = cached_bytes_;

  RestoreHooks hooks;
  if (plan_options.restore) {
    if (IsTee()) {
      hooks.plan_alloc = [this](uint64_t bytes) { return PlanAllocTee(bytes); };
      hooks.load = [this](uint64_t /*offset*/, uint64_t bytes) {
        // §4.2: protect right after the (unprotected) load completes, before
        // decryption writes plaintext.
        return tee_os_->ExtendProtected(ta_, SecureRegionId::kParams, bytes);
      };
    } else {
      hooks.plan_alloc = [this](uint64_t bytes) {
        return PlanAllocBuddy(bytes);
      };
    }
  }

  auto plan = BuildRestorePlan(spec_, prefill_graph_, request.prompt_tokens,
                               cost_model_, plan_options, hooks);
  if (!plan.ok()) {
    report.status = plan.status();
    return report;
  }
  report.restored_bytes = plan->restored_bytes;
  report.cached_hit_bytes = plan->cached_hit_bytes;

  PipelineConfig pipe_config;
  pipe_config.cpu_lanes = platform_->config().cpu_big_cores;
  pipe_config.policy = config_.policy;
  pipe_config.max_alloc_concurrency =
      config_.system == SystemKind::kStrawman ? 1 : 2;
  pipe_config.record_trace = request.record_trace;
  PipelineExecutor executor(&sim, pipe_config);
  if (UsesNpu()) {
    executor.set_npu_submit(MakeNpuSubmit());
  }
  report.prefill_pipeline = executor.RunToCompletion(std::move(plan->ops));
  if (!report.prefill_pipeline.status.ok()) {
    report.status = report.prefill_pipeline.status;
    return report;
  }
  report.prefill_time = report.prefill_pipeline.makespan;
  report.ttft = sim.Now() - t0;

  // --- Phase 4: decoding. ---
  if (request.decode_tokens > 0) {
    report.decode_time =
        RunDecode(request.prompt_tokens, request.decode_tokens);
    report.decode_tokens_per_s =
        request.decode_tokens / ToSeconds(report.decode_time);
  }

  // --- Phase 5: release / partial parameter caching. ---
  const SimTime release_start = sim.Now();
  if (IsTee()) {
    const uint64_t total = spec_.total_param_bytes();
    const uint64_t target = config_.system == SystemKind::kTzLlm
                                ? AlignUp(static_cast<uint64_t>(
                                              request.cache_proportion_after *
                                              total),
                                          kPageSize)
                                : 0;
    const SecureRegionStats stats =
        tee_os_->RegionStats(SecureRegionId::kParams);
    if (stats.protected_bytes > target) {
      auto scrub = tee_os_->Shrink(ta_, SecureRegionId::kParams,
                                   stats.protected_bytes - target);
      if (!scrub.ok()) {
        report.status = scrub.status();
        return report;
      }
      AdvanceSim(*scrub);
    }
    cached_bytes_ = tee_os_->RegionStats(SecureRegionId::kParams)
                        .protected_bytes;
    // Scratch (KV/activation) memory is fully released every inference.
    if (scratch_mapped_) {
      auto scrub = tee_os_->Shrink(ta_, SecureRegionId::kScratch,
                                   scratch_bytes_);
      if (scrub.ok()) {
        AdvanceSim(*scrub);
      }
      scratch_mapped_ = false;
    }
  } else if (config_.system == SystemKind::kReeFlash) {
    for (uint64_t pfn : ree_param_pages_) {
      (void)memory_->FreeMovablePage(pfn);
    }
    ree_param_pages_.clear();
    scratch_mapped_ = false;
  }
  report.release_time = sim.Now() - release_start;

  report.smc_round_trips = monitor.round_trips() - smc_before;
  report.secure_npu_jobs = tee_npu_->secure_jobs_completed() - jobs_before;
  report.npu_switch_time = tee_npu_->total_config_time() +
                           tee_npu_->total_smc_time() - switch_before;
  report.status = OkStatus();
  return report;
}

SimDuration SystemRuntime::RunDecode(int prompt_tokens, int n_tokens) {
  Simulator& sim = platform_->sim();
  const SimTime start = sim.Now();
  NpuSubmitFn submit = UsesNpu() ? MakeNpuSubmit() : nullptr;
  for (int t = 0; t < n_tokens; ++t) {
    const int pos = prompt_tokens + t;
    for (const OpNode& node : decode_graph_.nodes()) {
      const bool on_npu = UsesNpu() && node.backend == Backend::kNpu;
      const SimDuration d = cost_model_.DecodeOpTime(
          node, pos, on_npu ? Backend::kNpu : Backend::kCpu);
      if (on_npu) {
        bool done = false;
        submit(d, [&done](Status) { done = true; });
        sim.RunUntilIdleOr([&done] { return done; });
      } else {
        AdvanceSim(d);
      }
    }
  }
  return sim.Now() - start;
}

SimDuration SystemRuntime::DecodeTokenTime(int pos) const {
  SimDuration total = 0;
  for (const OpNode& node : decode_graph_.nodes()) {
    const bool on_npu = UsesNpu() && node.backend == Backend::kNpu;
    total += cost_model_.DecodeOpTime(node, pos,
                                      on_npu ? Backend::kNpu : Backend::kCpu);
    if (on_npu) {
      total += kNpuJobLaunchOverhead;
      if (IsTee()) {
        total += TeeNpuDriver::PerJobSwitchCost();
      }
    }
  }
  return total;
}

Result<std::unique_ptr<LlmTa>> SystemRuntime::CreateFunctionalTa() {
  if (!setup_done_) {
    return FailedPrecondition("call Setup first");
  }
  if (!config_.materialize_model) {
    return FailedPrecondition(
        "functional TA needs RuntimeConfig::materialize_model (paper-scale "
        "models carry shapes, not bytes)");
  }
  auto ta = std::make_unique<LlmTa>(platform_, tee_os_.get(),
                                    tz_driver_.get(), config_.engine,
                                    UsesNpu() ? tee_npu_.get() : nullptr);
  TZLLM_RETURN_IF_ERROR(ta->Attach());
  TZLLM_RETURN_IF_ERROR(
      tee_os_->AuthorizeKeyAccess(ta->ta_id(), spec_.config().name));
  return ta;
}

Status SystemRuntime::ReleaseAll() {
  if (IsTee()) {
    const SecureRegionStats stats =
        tee_os_->RegionStats(SecureRegionId::kParams);
    if (stats.protected_bytes > 0) {
      auto scrub = tee_os_->Shrink(ta_, SecureRegionId::kParams,
                                   stats.protected_bytes);
      if (!scrub.ok()) {
        return scrub.status();
      }
    }
    cached_bytes_ = 0;
  } else {
    for (uint64_t pfn : ree_param_pages_) {
      (void)memory_->FreeMovablePage(pfn);
    }
    ree_param_pages_.clear();
  }
  return OkStatus();
}

}  // namespace tzllm
