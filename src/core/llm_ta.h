// The LLM Trusted Application — the functional (real-bytes) end-to-end path:
//
//   unwrap model key (TEE key service) -> read + verify TZGUF metadata ->
//   pipelined restoration with REAL side effects (CMA extents, DMA-checked
//   flash loads into unprotected memory, extend_protected, in-place AES-CTR
//   decryption, per-tensor SHA-256 verification) -> token generation with
//   the transformer executor reading TZASC-protected secure memory.
//
// Everything an attacker-facing test wants to probe happens on real bytes
// here; the paper-scale benchmarks use SystemRuntime instead (same control
// flow, cost models only).

#ifndef SRC_CORE_LLM_TA_H_
#define SRC_CORE_LLM_TA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/pipeline.h"
#include "src/core/restore_plan.h"
#include "src/hw/platform.h"
#include "src/llm/engine.h"
#include "src/llm/tzguf.h"
#include "src/tee/npu_driver.h"
#include "src/tee/tee_os.h"

namespace tzllm {

class LlmTa {
 public:
  // `engine_options` (thread count, prefill batching, NPU prefill) comes
  // from RuntimeConfig::engine in the benchmark stacks. `npu_driver` is the
  // secure co-driver data plane — the caller wires it iff the platform has
  // an NPU (RuntimeConfig::use_npu); it is what RestoreParameters' plan and
  // the prefill backend key "NPU available" off. EngineOptions::npu_prefill
  // without a driver fails LoadModel with a clear Status.
  LlmTa(SocPlatform* platform, TeeOs* tee_os, TzDriver* tz_driver,
        const EngineOptions& engine_options = {},
        TeeNpuDriver* npu_driver = nullptr);

  TaId ta_id() const { return ta_; }

  // Registers the TA with the TEE OS. Call once.
  Status Attach();

  // Cold start for `model_id` (must be provisioned on flash, key installed
  // and authorized): restores all parameters through the pipeline.
  Status LoadModel(const std::string& model_id,
                   SchedulePolicy policy = SchedulePolicy::kPriorityPreemptive);

  // Generates text with the protected weights.
  Result<GenerationResult> Generate(const std::string& prompt,
                                    int max_new_tokens,
                                    const Sampler::Options& sampling = {});

  // Releases all secure memory (scrubbed by the TEE OS).
  Status Unload();

  const PipelineResult& restore_result() const { return restore_result_; }
  const ModelSpec& spec() const { return *spec_; }
  TeeOs& tee_os() { return *tee_os_; }

  // Weight source reading decrypted tensors out of the protected region
  // through TA mappings. Exposed for tests.
  class SecureWeightSource : public WeightSource {
   public:
    SecureWeightSource(LlmTa* ta) : ta_(ta) {}
    Result<const uint8_t*> TensorData(int tensor_index) override;

   private:
    LlmTa* ta_;
    std::unordered_map<int, std::vector<uint8_t>> cache_;
  };

 private:
  Status RestoreParameters(SchedulePolicy policy);
  Status LoadExtent(uint64_t offset, uint64_t bytes);
  Status DecryptExtent(uint64_t offset, uint64_t bytes);

  SocPlatform* platform_;
  TeeOs* tee_os_;
  TzDriver* tz_driver_;
  EngineOptions engine_options_;
  TeeNpuDriver* npu_driver_;
  TaId ta_ = -1;

  std::string model_id_;
  AesKey128 model_key_{};
  std::unique_ptr<TzgufMeta> meta_;
  std::unique_ptr<ModelSpec> spec_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<SecureWeightSource> weights_;
  std::unique_ptr<KvCache> kv_;
  // NPU prefill backend (engine_options_.npu_prefill): job execution
  // contexts live in the tail of the scratch region, which the scratch
  // budget covers. Must outlive executor_, which holds a raw pointer.
  std::unique_ptr<NpuBackend> npu_backend_;
  std::unique_ptr<TransformerExecutor> executor_;
  PipelineResult restore_result_;
  uint64_t scratch_bytes_ = 0;
  uint64_t npu_ctx_bytes_ = 0;
  bool loaded_ = false;
};

}  // namespace tzllm

#endif  // SRC_CORE_LLM_TA_H_
