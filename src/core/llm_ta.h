// The LLM Trusted Application — the functional (real-bytes) end-to-end path:
//
//   unwrap model key (TEE key service) -> read + verify TZGUF metadata ->
//   pipelined restoration with REAL side effects (CMA extents, DMA-checked
//   flash loads into unprotected memory, extend_protected, in-place AES-CTR
//   decryption, per-tensor SHA-256 verification) -> token generation with
//   the transformer executor reading TZASC-protected secure memory.
//
// Everything an attacker-facing test wants to probe happens on real bytes
// here; the paper-scale benchmarks use SystemRuntime instead (same control
// flow, cost models only).

#ifndef SRC_CORE_LLM_TA_H_
#define SRC_CORE_LLM_TA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/pipeline.h"
#include "src/core/restore_plan.h"
#include "src/hw/platform.h"
#include "src/llm/engine.h"
#include "src/llm/tzguf.h"
#include "src/tee/npu_driver.h"
#include "src/tee/tee_os.h"

namespace tzllm {

class LlmTa {
 public:
  // `engine_options` (thread count, prefill batching, NPU prefill) comes
  // from RuntimeConfig::engine in the benchmark stacks. `npu_driver` is the
  // secure co-driver data plane — the caller wires it iff the platform has
  // an NPU (RuntimeConfig::use_npu); it is what RestoreParameters' plan and
  // the prefill backend key "NPU available" off. EngineOptions::npu_prefill
  // without a driver fails LoadModel with a clear Status.
  LlmTa(SocPlatform* platform, TeeOs* tee_os, TzDriver* tz_driver,
        const EngineOptions& engine_options = {},
        TeeNpuDriver* npu_driver = nullptr);

  TaId ta_id() const { return ta_; }

  // Registers the TA with the TEE OS. Call once.
  Status Attach();

  // Cold start for `model_id` (must be provisioned on flash, key installed
  // and authorized): restores all parameters through the pipeline.
  Status LoadModel(const std::string& model_id,
                   SchedulePolicy policy = SchedulePolicy::kPriorityPreemptive);

  // Generates text with the protected weights. Implemented on top of the
  // session API below (Begin + Step-to-exhaustion + Finish), so one token
  // loop serves both one-shot generation and checkpointable sessions.
  Result<GenerationResult> Generate(const std::string& prompt,
                                    int max_new_tokens,
                                    const Sampler::Options& sampling = {});

  // --- Incremental generation sessions (checkpoint/evict/restore). ---
  //
  // A session is the paper's preemptible inference unit: prefill runs at
  // Begin, decode advances in Step increments, and at any point between
  // steps the full generation state (KV arena, sampler RNG, position and
  // budget) can be sealed to flash, the secure memory evicted, and the
  // session restored later — on this TA or a freshly booted one — resuming
  // with exactly the tokens the uninterrupted run would have produced.

  // Tokenizes `prompt`, runs prefill, and samples the first token. Fails
  // FailedPrecondition if a session is already active (Finish or Abandon it
  // first).
  Status BeginSession(const std::string& prompt, int max_new_tokens,
                      const Sampler::Options& sampling = {});

  // Advances the active session by up to `max_steps` decode steps (capped by
  // the session's remaining token budget, EOS, and the context window).
  // Returns the number of tokens emitted; 0 means the session is finished.
  Result<int> StepSession(int max_steps);

  // Completes the active session and returns its GenerationResult.
  Result<GenerationResult> FinishSession();

  // True while BeginSession has an unfinished session open.
  bool session_active() const { return session_.active; }
  // True once the session hit EOS / the context window / its token budget.
  bool session_done() const;
  // Tokens emitted so far by the active session.
  const std::vector<TokenId>& session_tokens() const {
    return session_.output_tokens;
  }

  // Seals the active session's complete generation state (prompt/output
  // tokens, next sampled token, remaining budget, sampler options + RNG
  // words, KV cache contents) to flash, encrypted and integrity-tagged
  // under the model key, then evicts it: the KV arena is scrubbed and the
  // session deactivated. Crash-consistent: the blob is self-contained, so a
  // RestoreSession on a brand-new TA (same model) resumes identically.
  Status CheckpointSession();

  // Restores the most recent CheckpointSession blob for this model and
  // reactivates the session mid-generation. kDataCorruption if the blob was
  // tampered with on flash; InvalidArgument if it belongs to a different
  // model geometry.
  Status RestoreSession();

  // True if a sealed session checkpoint for this model exists on flash.
  bool HasSessionCheckpoint() const;

  // Releases all secure memory (scrubbed by the TEE OS).
  Status Unload();

  const PipelineResult& restore_result() const { return restore_result_; }
  const ModelSpec& spec() const { return *spec_; }
  TeeOs& tee_os() { return *tee_os_; }

  // Weight source reading decrypted tensors out of the protected region
  // through TA mappings. Exposed for tests.
  class SecureWeightSource : public WeightSource {
   public:
    SecureWeightSource(LlmTa* ta) : ta_(ta) {}
    Result<const uint8_t*> TensorData(int tensor_index) override;

   private:
    LlmTa* ta_;
    std::unordered_map<int, std::vector<uint8_t>> cache_;
  };

 private:
  // Live state of an in-progress generation session. Everything here plus
  // the KvCache contents is exactly what CheckpointSession serializes.
  struct Session {
    bool active = false;
    bool done = false;  // EOS or context window reached.
    std::vector<TokenId> prompt_tokens;
    std::vector<TokenId> output_tokens;
    TokenId next_token = 0;  // Sampled but not yet emitted/decoded.
    int remaining = 0;       // Token budget left.
    Sampler::Options sampling;
    std::unique_ptr<Sampler> sampler;
  };

  Status RestoreParameters(SchedulePolicy policy);
  Status LoadExtent(uint64_t offset, uint64_t bytes);
  Status DecryptExtent(uint64_t offset, uint64_t bytes);

  SocPlatform* platform_;
  TeeOs* tee_os_;
  TzDriver* tz_driver_;
  EngineOptions engine_options_;
  TeeNpuDriver* npu_driver_;
  TaId ta_ = -1;

  std::string model_id_;
  AesKey128 model_key_{};
  std::unique_ptr<TzgufMeta> meta_;
  std::unique_ptr<ModelSpec> spec_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<SecureWeightSource> weights_;
  std::unique_ptr<KvCache> kv_;
  // NPU prefill backend (engine_options_.npu_prefill): job execution
  // contexts live in the tail of the scratch region, which the scratch
  // budget covers. Must outlive executor_, which holds a raw pointer.
  std::unique_ptr<NpuBackend> npu_backend_;
  std::unique_ptr<TransformerExecutor> executor_;
  Session session_;
  PipelineResult restore_result_;
  uint64_t scratch_bytes_ = 0;
  uint64_t npu_ctx_bytes_ = 0;
  bool loaded_ = false;
};

}  // namespace tzllm

#endif  // SRC_CORE_LLM_TA_H_
