// The LLM Trusted Application — the functional (real-bytes) end-to-end path:
//
//   unwrap model key (TEE key service) -> read + verify TZGUF metadata ->
//   pipelined restoration with REAL side effects (CMA extents, DMA-checked
//   flash loads into unprotected memory, extend_protected, in-place AES-CTR
//   decryption, per-tensor SHA-256 verification) -> token generation with
//   the transformer executor reading TZASC-protected secure memory.
//
// Everything an attacker-facing test wants to probe happens on real bytes
// here; the paper-scale benchmarks use SystemRuntime instead (same control
// flow, cost models only).
//
// Generation is handle-based: one TA admits up to EngineOptions::max_sessions
// concurrent sessions, each identified by a SessionId and owning a private
// KV-arena slot. The serving runtime (src/serve/) schedules across handles;
// the legacy no-argument methods remain as documented single-session shims.

#ifndef SRC_CORE_LLM_TA_H_
#define SRC_CORE_LLM_TA_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/pipeline.h"
#include "src/core/restore_plan.h"
#include "src/hw/platform.h"
#include "src/llm/engine.h"
#include "src/llm/serve_fault.h"
#include "src/llm/tzguf.h"
#include "src/tee/npu_driver.h"
#include "src/tee/tee_os.h"

namespace tzllm {

// Handle for one generation session on an LlmTa. Ids are never reused within
// a TA's lifetime (and survive checkpoint/restore — the sealed blob carries
// its id), so a stale handle fails cleanly instead of touching a successor
// session's state.
using SessionId = uint64_t;

class LlmTa {
 public:
  // `engine_options` (thread count, prefill batching, NPU prefill, serving
  // concurrency) comes from RuntimeConfig::engine in the benchmark stacks.
  // `npu_driver` is the secure co-driver data plane — the caller wires it
  // iff the platform has an NPU (RuntimeConfig::use_npu); it is what
  // RestoreParameters' plan and the prefill backend key "NPU available" off.
  // EngineOptions::npu_prefill without a driver fails LoadModel with a clear
  // Status.
  LlmTa(SocPlatform* platform, TeeOs* tee_os, TzDriver* tz_driver,
        const EngineOptions& engine_options = {},
        TeeNpuDriver* npu_driver = nullptr);

  TaId ta_id() const { return ta_; }

  // Registers the TA with the TEE OS. Call once.
  Status Attach();

  // Cold start for `model_id` (must be provisioned on flash, key installed
  // and authorized): validates the engine configuration
  // (EngineOptions::Validate), budgets the secure scratch region for
  // max_sessions KV slots, and restores all parameters through the pipeline.
  Status LoadModel(const std::string& model_id,
                   SchedulePolicy policy = SchedulePolicy::kPriorityPreemptive);

  // Generates text with the protected weights. Implemented on top of the
  // session API below (Begin + Step-to-exhaustion + Finish), so one token
  // loop serves both one-shot generation and checkpointable sessions.
  Result<GenerationResult> Generate(const std::string& prompt,
                                    int max_new_tokens,
                                    const Sampler::Options& sampling = {});

  // --- Handle-based generation sessions. --------------------------------
  //
  // A session is the paper's preemptible inference unit: prefill runs at
  // Begin (or chunk-by-chunk under the serving scheduler), decode advances
  // in Step increments, and at any point between steps the full generation
  // state (KV slot, sampler RNG, position, budget, prefill progress) can be
  // sealed to flash, the secure memory evicted, and the session restored
  // later — on this TA or a freshly booted one — resuming with exactly the
  // tokens the uninterrupted run would have produced.

  // Tokenizes `prompt`, claims a KV-arena slot, runs the full prefill and
  // samples the first token. kResourceExhausted when every session slot is
  // live; with max_sessions == 1 a second Begin keeps the legacy
  // FailedPrecondition("a generation session is already active") semantics.
  Result<SessionId> BeginSession(const std::string& prompt, int max_new_tokens,
                                 const Sampler::Options& sampling = {});

  // BeginSession minus the prefill: admits the session (tokenize + slot
  // claim) with the prompt not yet run. The serving scheduler's entry point
  // — it advances admitted prompts with PrefillSessionChunk so prefill
  // interleaves with other sessions' decode instead of blocking them.
  Result<SessionId> AdmitSession(const std::string& prompt, int max_new_tokens,
                                 const Sampler::Options& sampling = {});

  // Advances an admitted session's prompt by one chunk of up to
  // prefill_batch positions (the serving quantum). Chunk boundaries are
  // exactly ForwardPrompt's, so the chunked prompt lands bit-identical KV
  // rows and first-token logits to the one-shot BeginSession. Returns true
  // once the prompt is fully in and the first token is sampled; true
  // immediately (no-op) on an already-prefilled session.
  Result<bool> PrefillSessionChunk(SessionId sid);

  // One batched decode step advancing EVERY listed session by one token:
  // per layer one MatMatQ8 over all their current positions (weights stream
  // once per step) with per-session attention — per-session bit-identical
  // to stepping each alone. Groups of EngineOptions::decode_batch (0 = all
  // at once). Every listed session must be prefilled and not done; sessions
  // must be distinct.
  Status DecodeSessions(const std::vector<SessionId>& sids);

  // Advances one session by up to `max_steps` decode steps (capped by the
  // session's remaining token budget, EOS, and the context window). Runs
  // any unfinished prefill to completion first. Returns the number of
  // tokens emitted; 0 means the session is finished.
  Result<int> StepSession(SessionId sid, int max_steps);

  // Completes the session and returns its GenerationResult; the KV slot is
  // scrubbed and released.
  Result<GenerationResult> FinishSession(SessionId sid);

  // Drops the session without a result (failed or cancelled requests): the
  // KV slot is scrubbed and released, nothing is sealed to flash.
  Status AbandonSession(SessionId sid);

  // Seals the session's complete generation state (prompt/output tokens,
  // next sampled token, remaining budget, prefill progress, sampler options
  // + RNG words, KV slot contents) to flash under
  // "<model_id>.sess.<sid>.ckpt", encrypted and integrity-tagged under the
  // model key, then evicts it: the KV slot is scrubbed and released and the
  // handle becomes inactive. Crash-consistent: the blob is self-contained
  // (it carries the sid), so RestoreSession on a brand-new TA (same model)
  // resumes identically.
  Status CheckpointSession(SessionId sid);

  // Restores the sealed checkpoint for `sid` and reactivates it
  // mid-generation under the same handle. kDataCorruption if the blob was
  // tampered with on flash; InvalidArgument if it belongs to a different
  // model geometry; kResourceExhausted when no KV slot is free (evict
  // something first).
  Result<SessionId> RestoreSession(SessionId sid);

  // True if a sealed checkpoint for `sid` exists on flash.
  bool HasSessionCheckpoint(SessionId sid) const;

  // CheckpointSession WITHOUT the eviction: seals the same self-contained
  // blob to "<model_id>.sess.<sid>.ckpt" but keeps the session live — the
  // serving runtime's auto-checkpoint cadence, so a whole-TA crash loses at
  // most the tokens generated since the last snapshot (and those are
  // regenerated bit-identically on restore).
  Status SnapshotSession(SessionId sid);

  // --- Recompute-on-loss KV recovery (ISSUE 10). -------------------------
  // A spilled KV page whose REE blob fails restore (tampered, truncated,
  // dropped) is quarantined and its positions re-prefilled from the
  // session's own token history — deterministic, so the recomputed rows are
  // bit-identical and generation continues as if nothing happened, bounded
  // by EngineOptions::kv_recompute_max pages per session lifetime.

  struct KvRecoveryStats {
    uint64_t pages_recomputed = 0;  // Lost pages healed by re-prefill.
    uint64_t recoveries = 0;        // Recovery passes that healed >= 1 page.
    double recompute_ms = 0.0;      // Wall time spent re-prefilling (stats
                                    // only — never fed back to scheduling).
  };
  const KvRecoveryStats& kv_recovery_stats() const {
    return kv_recovery_stats_;
  }

  // --- Serving-fleet manifest (whole-TA crash recovery, ISSUE 10). -------
  // The serving runtime periodically seals its queue/session state as a
  // manifest blob through tee/checkpoint ("<model_id>.serve.ckpt"), and
  // ServingRuntime::Recover() on a freshly booted TA reads it back. The TA
  // only stores/loads the sealed bytes; the manifest format is the
  // runtime's.

  Result<uint64_t> SaveServeManifest(const std::vector<uint8_t>& manifest);
  Result<std::vector<uint8_t>> LoadServeManifest();
  bool HasServeManifest() const;
  Status DropServeManifest();

  // The armed serving-layer fault plan (options string wins over
  // TZLLM_SERVE_FAULT_PLAN, parsed at LoadModel). The runtime reads it for
  // the ta_crash class; spill/ckpt classes inject below this accessor.
  const ServeFaultPlan& serve_fault_plan() const { return serve_fault_plan_; }
  // Session-checkpoint blobs deleted right after sealing by an armed
  // ckpt_drop plan.
  uint64_t ckpt_drops_injected() const { return ckpt_drops_injected_; }

  // Session queries. A handle that was finished, abandoned or evicted is no
  // longer active; session_done on it reports true (nothing left to step).
  bool session_active(SessionId sid) const;
  bool session_prefilled(SessionId sid) const;
  bool session_done(SessionId sid) const;
  const std::vector<TokenId>& session_tokens(SessionId sid) const;
  int open_sessions() const { return static_cast<int>(sessions_.size()); }
  // Free KV-arena slots = sessions that can still be admitted or restored.
  int free_session_slots() const;

  // --- Legacy single-session surface (shims). ---------------------------
  //
  // The pre-serving API: no handles, one implicit session. Each shim
  // requires EXACTLY one open session (FailedPrecondition otherwise) and
  // forwards to it; the no-argument checkpoint methods use the original
  // un-suffixed flash id "<model_id>.sess.ckpt" so pre-redesign checkpoints
  // stay restorable. New code should pass SessionIds.

  Result<int> StepSession(int max_steps);
  Result<GenerationResult> FinishSession();
  Status CheckpointSession();
  Status RestoreSession();
  bool HasSessionCheckpoint() const;
  // True while any session is open.
  bool session_active() const { return !sessions_.empty(); }
  // The sole open session's done state; true with none open (nothing to
  // step — the pre-redesign idle behavior).
  bool session_done() const;
  // The sole open session's emitted tokens; empty with none open.
  const std::vector<TokenId>& session_tokens() const;

  // Releases all secure memory (scrubbed by the TEE OS); open sessions are
  // dropped with it.
  Status Unload();

  const PipelineResult& restore_result() const { return restore_result_; }
  const ModelSpec& spec() const { return *spec_; }
  TeeOs& tee_os() { return *tee_os_; }
  const EngineOptions& engine_options() const { return engine_options_; }
  // The per-session KV slots (sized by EngineOptions::max_sessions).
  // nullptr before LoadModel.
  const KvArena* kv_arena() const { return kv_arena_.get(); }

  // Weight source reading decrypted tensors out of the protected region
  // through TA mappings. Exposed for tests.
  class SecureWeightSource : public WeightSource {
   public:
    SecureWeightSource(LlmTa* ta) : ta_(ta) {}
    Result<const uint8_t*> TensorData(int tensor_index) override;

   private:
    LlmTa* ta_;
    std::unordered_map<int, std::vector<uint8_t>> cache_;
  };

 private:
  // Live state of an in-progress generation session. Everything here plus
  // the KV slot contents is exactly what CheckpointSession serializes
  // (per_position and logits are derived/scratch, recomputed on restore).
  struct Session {
    SessionId sid = 0;
    int slot = -1;             // KV-arena slot index.
    bool prefilled = false;    // Prompt fully in; next_token sampled.
    int prefill_pos = 0;       // Prompt positions already through the model.
    bool per_position = false; // Prefill path (mirrors Prefill's dispatch).
    bool done = false;         // EOS or context window reached.
    std::vector<TokenId> prompt_tokens;
    std::vector<TokenId> output_tokens;
    TokenId next_token = 0;    // Sampled but not yet emitted/decoded.
    int remaining = 0;         // Token budget left.
    Sampler::Options sampling;
    std::unique_ptr<Sampler> sampler;
    std::vector<float> logits; // vocab_size scratch row for this session.
    // Lifetime recompute-on-loss spend, charged against kv_recompute_max.
    int pages_recomputed = 0;
  };

  Status RestoreParameters(SchedulePolicy policy);
  Status LoadExtent(uint64_t offset, uint64_t bytes);
  Status DecryptExtent(uint64_t offset, uint64_t bytes);

  Session* FindSession(SessionId sid);
  const Session* FindSession(SessionId sid) const;
  // The sole open session, for the legacy shims; FailedPrecondition with
  // zero or several open.
  Result<Session*> SoleSession();
  bool SessionStopped(const Session& s) const;
  // Releases the session's KV slot (scrubbed) and erases it.
  void CloseSession(Session* s);
  // CheckpointSession body against an explicit flash id (the legacy shim
  // passes the un-suffixed id; the handle API the per-sid one).
  Status SealSession(Session* s, const std::string& ckpt_id);
  // SealSession's two halves, split so SnapshotSession can seal without
  // evicting: serialize the session (KV rows included, recovering lost
  // pages first), then store the blob (counting checkpoint saves for the
  // ckpt_drop injection ordinal).
  Status BuildSessionBlob(Session* s, std::vector<uint8_t>* blob);
  Result<uint64_t> SaveSessionBlob(const std::string& ckpt_id,
                                   const std::vector<uint8_t>& blob);
  // Probes every listed session for lost pages, quarantines and re-prefills
  // them from token history. `*recovered` reports whether any page was
  // healed; an exhausted kv_recompute_max budget is an error.
  Status RecoverLostKv(const std::vector<Session*>& sessions, bool* recovered);
  // Runs `step`, and on kDataCorruption recovers lost KV pages and retries
  // — the loop that turns REE spill sabotage into a latency event. Safe
  // because a corrupt restore can only surface while pinning at step START
  // (mid-step every page is pinned resident), so no partial step state
  // exists when `step` reruns.
  Status RetryWithKvRecovery(const std::vector<Session*>& sessions,
                             const std::function<Status()>& step);
  // RestoreSession body: unseal, parse, claim a slot, reactivate under the
  // blob's own sid.
  Result<SessionId> RestoreSessionBlob(const std::string& ckpt_id);

  SocPlatform* platform_;
  TeeOs* tee_os_;
  TzDriver* tz_driver_;
  EngineOptions engine_options_;
  TeeNpuDriver* npu_driver_;
  TaId ta_ = -1;

  std::string model_id_;
  AesKey128 model_key_{};
  std::unique_ptr<TzgufMeta> meta_;
  std::unique_ptr<ModelSpec> spec_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<SecureWeightSource> weights_;
  // Per-session KV slots (max_sessions of them), all budgeted into the
  // secure scratch region at load.
  std::unique_ptr<KvArena> kv_arena_;
  // NPU prefill backend (engine_options_.npu_prefill): job execution
  // contexts live in the tail of the scratch region, which the scratch
  // budget covers. Must outlive executor_, which holds a raw pointer.
  std::unique_ptr<NpuBackend> npu_backend_;
  std::unique_ptr<TransformerExecutor> executor_;
  // Open sessions by id. std::map: the serving scheduler and Unload iterate
  // it, and iteration order must be deterministic.
  std::map<SessionId, Session> sessions_;
  SessionId next_sid_ = 1;
  const std::vector<TokenId> no_tokens_;
  PipelineResult restore_result_;
  uint64_t scratch_bytes_ = 0;
  uint64_t npu_ctx_bytes_ = 0;
  bool loaded_ = false;
  // Serving-layer fault injection + recovery accounting (ISSUE 10).
  ServeFaultPlan serve_fault_plan_;
  KvRecoveryStats kv_recovery_stats_;
  uint64_t ckpt_saves_ = 0;  // ckpt_drop ordinal: session blobs sealed.
  uint64_t ckpt_drops_injected_ = 0;
};

}  // namespace tzllm

#endif  // SRC_CORE_LLM_TA_H_
