#include "src/core/restore_plan.h"

#include <algorithm>

namespace tzllm {

Result<RestorePlan> BuildRestorePlan(const ModelSpec& spec,
                                     const ComputeGraph& graph, int n_tokens,
                                     const CostModel& cost,
                                     const RestorePlanOptions& options,
                                     const RestoreHooks& hooks) {
  RestorePlan plan;
  auto& ops = plan.ops;
  ops.reserve(graph.size() * 4);

  auto chunks_for = [&](uint64_t bytes) -> uint32_t {
    if (!options.preemptible || options.chunk_bytes == 0) {
      return 1;
    }
    return static_cast<uint32_t>(
        std::max<uint64_t>(1, (bytes + options.chunk_bytes - 1) /
                                  options.chunk_bytes));
  };

  int prev_alloc = -1;
  int prev_compute = -1;
  int last_restore = -1;
  uint64_t weight_cursor = 0;  // Cumulative weight bytes in topo order.
  std::vector<int> alloc_ids, load_ids, decrypt_ids;

  for (const OpNode& node : graph.nodes()) {
    int gate = -1;  // Restoration op the compute op must wait for.
    const uint64_t extent_bytes = node.weight_bytes;
    const bool has_weights = extent_bytes > 0;
    const bool cached =
        has_weights && weight_cursor + extent_bytes <= options.cached_bytes;
    if (has_weights && cached) {
      plan.cached_hit_bytes += extent_bytes;
    }
    const uint64_t extent_offset =
        has_weights ? spec.tensor(node.tensor_indices.front()).file_offset : 0;

    if (has_weights && !cached && options.restore) {
      plan.restored_bytes += extent_bytes;
      ++plan.restored_extents;

      // --- Alloc ---
      if (!hooks.plan_alloc) {
        return Status(ErrorCode::kInvalidArgument,
                      "restore requires an allocation planner");
      }
      auto alloc_time = hooks.plan_alloc(extent_bytes);
      if (!alloc_time.ok()) {
        return alloc_time.status();
      }
      PipelineOp alloc;
      alloc.kind = PipelineOpKind::kAlloc;
      alloc.comp_index = node.id;
      alloc.label = "A" + std::to_string(node.id);
      alloc.duration = *alloc_time;
      alloc.chunks = chunks_for(extent_bytes);
      alloc.bytes = extent_bytes;
      if (prev_alloc >= 0) {
        alloc.deps.push_back(prev_alloc);
      }
      ops.push_back(std::move(alloc));
      const int alloc_id = static_cast<int>(ops.size()) - 1;
      prev_alloc = alloc_id;
      alloc_ids.push_back(alloc_id);

      // --- Load ---
      PipelineOp load;
      load.kind = PipelineOpKind::kLoad;
      load.comp_index = node.id;
      load.label = "L" + std::to_string(node.id);
      load.duration = CostModel::LoadTime(extent_bytes);
      load.bytes = extent_bytes;
      load.deps.push_back(alloc_id);
      if (hooks.load) {
        load.on_complete = [fn = hooks.load, extent_offset, extent_bytes] {
          return fn(extent_offset, extent_bytes);
        };
      }
      ops.push_back(std::move(load));
      const int load_id = static_cast<int>(ops.size()) - 1;
      gate = load_id;
      load_ids.push_back(load_id);

      // --- Decrypt ---
      if (options.decrypt) {
        PipelineOp dec;
        dec.kind = PipelineOpKind::kDecrypt;
        dec.comp_index = node.id;
        dec.label = "D" + std::to_string(node.id);
        dec.duration = CostModel::DecryptTime(extent_bytes);
        dec.chunks = chunks_for(extent_bytes);
        dec.bytes = extent_bytes;
        dec.deps.push_back(load_id);
        if (hooks.decrypt) {
          dec.on_complete = [fn = hooks.decrypt, extent_offset,
                             extent_bytes] {
            return fn(extent_offset, extent_bytes);
          };
        }
        ops.push_back(std::move(dec));
        gate = static_cast<int>(ops.size()) - 1;
        decrypt_ids.push_back(gate);
      }
      last_restore = gate;
    }
    if (has_weights) {
      weight_cursor += extent_bytes;
    }

    // --- Computation operator ---
    PipelineOp comp;
    const Backend backend = options.npu_available && node.backend == Backend::kNpu
                                ? Backend::kNpu
                                : Backend::kCpu;
    comp.kind = backend == Backend::kNpu ? PipelineOpKind::kComputeNpu
                                         : PipelineOpKind::kComputeCpu;
    comp.comp_index = node.id;
    comp.label = node.DebugName();
    comp.duration = cost.PrefillOpTime(node, n_tokens, backend);
    if (prev_compute >= 0) {
      comp.deps.push_back(prev_compute);
    }
    if (gate >= 0) {
      comp.deps.push_back(gate);
    }
    ops.push_back(std::move(comp));
    prev_compute = static_cast<int>(ops.size()) - 1;
  }

  // Strawman ordering (Figure 1): restoration happens in strictly
  // sequential phases — allocate everything, then load everything, then
  // decrypt everything — and computation starts only afterwards.
  if (!options.pipelined && last_restore >= 0) {
    auto add_dep = [&](int id, int dep) {
      auto& deps = ops[id].deps;
      if (std::find(deps.begin(), deps.end(), dep) == deps.end()) {
        deps.push_back(dep);
      }
    };
    if (!alloc_ids.empty()) {
      for (int id : load_ids) {
        add_dep(id, alloc_ids.back());
      }
    }
    if (!load_ids.empty()) {
      for (int id : decrypt_ids) {
        add_dep(id, load_ids.back());
      }
    }
    for (PipelineOp& op : ops) {
      if (op.kind == PipelineOpKind::kComputeCpu ||
          op.kind == PipelineOpKind::kComputeNpu) {
        op.deps.push_back(last_restore);
        break;
      }
    }
  }
  return plan;
}

}  // namespace tzllm
