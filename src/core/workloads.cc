#include "src/core/workloads.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace tzllm {

const char* BenchmarkName(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kUltraChat:
      return "UltraChat";
    case BenchmarkId::kPersonaChat:
      return "PersonaChat";
    case BenchmarkId::kDroidTask:
      return "DroidTask";
  }
  return "?";
}

const char* BenchmarkShortName(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kUltraChat:
      return "UC";
    case BenchmarkId::kPersonaChat:
      return "PC";
    case BenchmarkId::kDroidTask:
      return "DT";
  }
  return "?";
}

std::vector<BenchmarkId> AllBenchmarks() {
  return {BenchmarkId::kUltraChat, BenchmarkId::kPersonaChat,
          BenchmarkId::kDroidTask};
}

namespace {

struct LengthProfile {
  double log_mean;
  double log_stddev;
  int min_tokens;
  int max_tokens;
  const char* flavor;
};

LengthProfile ProfileOf(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kUltraChat:
      // Conversational turns: mostly 30-120 tokens.
      return {std::log(64.0), 0.45, 16, 256, "user asks the assistant: "};
    case BenchmarkId::kPersonaChat:
      // Summarize a chat transcript: 250-600 tokens.
      return {std::log(384.0), 0.30, 128, 768,
              "summarize the following conversation: "};
    case BenchmarkId::kDroidTask:
      // Serialized UI tree + task: 300-700 tokens.
      return {std::log(448.0), 0.25, 192, 768,
              "given the user interface tree perform the task: "};
  }
  return {std::log(128.0), 0.3, 32, 512, ""};
}

}  // namespace

std::vector<BenchmarkPrompt> BenchmarkPrompts(BenchmarkId id, int count,
                                              uint64_t seed) {
  const LengthProfile profile = ProfileOf(id);
  Rng rng(SplitMix64(seed) ^ (static_cast<uint64_t>(id) << 32));
  std::vector<BenchmarkPrompt> prompts;
  prompts.reserve(count);
  static const char* kFiller[] = {
      "the user ",  "opened ",   "the app ",   "and then ", "tapped ",
      "the button ", "to send ",  "a message ", "about ",    "the photo ",
      "while ",     "checking ", "settings ",  "for ",      "the device ",
  };
  for (int i = 0; i < count; ++i) {
    BenchmarkPrompt p;
    const double len =
        std::exp(rng.NextGaussian(profile.log_mean, profile.log_stddev));
    p.n_tokens = std::clamp(static_cast<int>(len), profile.min_tokens,
                            profile.max_tokens);
    p.text = profile.flavor;
    // ~4.5 chars/token of filler text keeps functional prompts realistic.
    const size_t target_chars = static_cast<size_t>(p.n_tokens) * 4;
    while (p.text.size() < target_chars) {
      p.text += kFiller[rng.NextBounded(std::size(kFiller))];
    }
    prompts.push_back(std::move(p));
  }
  return prompts;
}

}  // namespace tzllm
