#include "src/core/nn_apps.h"

namespace tzllm {

NnAppProfile Yolov5Profile() {
  return NnAppProfile{"YOLOv5", FromMillis(9.5)};
}

NnAppProfile MobileNetProfile() {
  return NnAppProfile{"MobileNet", FromMillis(4.5)};
}

NnApp::NnApp(Simulator* sim, ReeNpuDriver* driver,
             const NnAppProfile& profile)
    : sim_(sim), driver_(driver), profile_(profile) {}

void NnApp::Start() {
  running_ = true;
  completed_ = 0;
  start_time_ = sim_->Now();
  SubmitNext();
}

void NnApp::Stop() { running_ = false; }

void NnApp::SubmitNext() {
  if (!running_) {
    return;
  }
  NpuJobDesc desc;
  // Non-secure execution context in REE memory.
  desc.cmd_addr = 768 * kMiB;
  desc.cmd_size = 4 * kKiB;
  desc.iopt_addr = 768 * kMiB + 4 * kKiB;
  desc.iopt_size = 4 * kKiB;
  desc.buffers = {{768 * kMiB + 8 * kKiB, 2 * kMiB}};
  desc.duration = profile_.job_duration;
  driver_->SubmitJob(desc, [this](Status st) {
    if (st.ok()) {
      ++completed_;
    }
    SubmitNext();
  });
}

double NnApp::Throughput() const {
  const SimDuration elapsed = sim_->Now() - start_time_;
  if (elapsed == 0) {
    return 0.0;
  }
  return static_cast<double>(completed_) / ToSeconds(elapsed);
}

}  // namespace tzllm
