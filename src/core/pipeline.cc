#include "src/core/pipeline.h"

#include <algorithm>
#include <cassert>

namespace tzllm {

const char* PipelineOpKindName(PipelineOpKind kind) {
  switch (kind) {
    case PipelineOpKind::kAlloc:
      return "alloc";
    case PipelineOpKind::kLoad:
      return "load";
    case PipelineOpKind::kDecrypt:
      return "decrypt";
    case PipelineOpKind::kComputeCpu:
      return "compute-cpu";
    case PipelineOpKind::kComputeNpu:
      return "compute-npu";
  }
  return "?";
}

SimDuration PipelineResult::LowerBound(int cpu_lanes, int alloc_lanes) const {
  return std::max({IoPath(), CpuPath(cpu_lanes, alloc_lanes), ComputePath()});
}

PipelineExecutor::PipelineExecutor(Simulator* sim,
                                   const PipelineConfig& config)
    : sim_(sim), config_(config) {}

PipelineResult PipelineExecutor::RunToCompletion(std::vector<PipelineOp> ops) {
  PipelineResult out;
  bool finished = false;
  Start(std::move(ops), [&](const PipelineResult& r) {
    out = r;
    finished = true;
  });
  sim_->RunUntilIdleOr([&] { return finished; });
  if (!finished) {
    out.status = Internal("pipeline deadlocked: simulator drained");
  }
  return out;
}

void PipelineExecutor::Start(std::vector<PipelineOp> ops,
                             std::function<void(const PipelineResult&)> done) {
  assert(!running_ && "executor already running");
  ops_ = std::move(ops);
  done_ = std::move(done);
  state_.assign(ops_.size(), OpState{});
  ready_cpu_.clear();
  ready_io_.clear();
  ready_npu_.clear();
  cpu_busy_ = 0;
  alloc_running_ = 0;
  io_busy_ = false;
  npu_busy_ = false;
  aborted_ = false;
  running_ = true;
  start_time_ = sim_->Now();
  result_ = PipelineResult{};
  remaining_ops_ = static_cast<int>(ops_.size());

  for (size_t i = 0; i < ops_.size(); ++i) {
    PipelineOp& op = ops_[i];
    op.id = static_cast<int>(i);
    OpState& st = state_[i];
    st.chunks_left = std::max<uint32_t>(op.chunks, 1);
    st.deps_left = static_cast<int>(op.deps.size());
    switch (op.kind) {
      case PipelineOpKind::kAlloc:
        result_.sum_alloc += op.duration;
        break;
      case PipelineOpKind::kLoad:
        result_.sum_load += op.duration;
        break;
      case PipelineOpKind::kDecrypt:
        result_.sum_decrypt += op.duration;
        break;
      case PipelineOpKind::kComputeCpu:
        result_.sum_cpu_compute += op.duration;
        break;
      case PipelineOpKind::kComputeNpu:
        result_.sum_npu_compute += op.duration;
        break;
    }
  }
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (state_[i].deps_left == 0) {
      switch (ops_[i].kind) {
        case PipelineOpKind::kLoad:
          ready_io_.insert(static_cast<int>(i));
          break;
        case PipelineOpKind::kComputeNpu:
          ready_npu_.insert(static_cast<int>(i));
          break;
        default:
          ready_cpu_.insert(static_cast<int>(i));
          break;
      }
    }
  }
  if (ops_.empty()) {
    Finish();
    return;
  }
  TryDispatch();
}

bool PipelineExecutor::IsReady(int op_id) const {
  const OpState& st = state_[op_id];
  return st.deps_left == 0 && !st.done && !st.dispatched;
}

int PipelineExecutor::PickCpuOp() const {
  int best = -1;
  auto better = [&](int a, int b) {
    // True if a should run before b under the active policy.
    const PipelineOp& oa = ops_[a];
    const PipelineOp& ob = ops_[b];
    if (config_.policy == SchedulePolicy::kFifo) {
      return a < b;
    }
    // Priority policies: CPU computation first, then the restoration op of
    // the earliest computation operator.
    const bool ca = oa.kind == PipelineOpKind::kComputeCpu;
    const bool cb = ob.kind == PipelineOpKind::kComputeCpu;
    if (ca != cb) {
      return ca;
    }
    if (oa.comp_index != ob.comp_index) {
      return oa.comp_index < ob.comp_index;
    }
    return a < b;
  };
  for (int id : ready_cpu_) {
    if (ops_[id].kind == PipelineOpKind::kAlloc &&
        alloc_running_ >= config_.max_alloc_concurrency) {
      continue;  // Allocation concurrency cap (migration scaling limit).
    }
    if (best == -1 || better(id, best)) {
      best = id;
    }
  }
  return best;
}

void PipelineExecutor::TryDispatch() {
  if (aborted_) {
    return;
  }
  DispatchIo();
  DispatchNpu();
  DispatchCpu();
}

void PipelineExecutor::DispatchCpu() {
  while (cpu_busy_ < config_.cpu_lanes) {
    const int id = PickCpuOp();
    if (id < 0) {
      return;
    }
    ready_cpu_.erase(id);
    state_[id].dispatched = true;
    ++cpu_busy_;
    if (ops_[id].kind == PipelineOpKind::kAlloc) {
      ++alloc_running_;
    }
    RunChunk(id, "CPU", cpu_busy_ - 1);
  }
}

void PipelineExecutor::DispatchIo() {
  if (io_busy_ || ready_io_.empty()) {
    return;
  }
  // Loads are created in topological order, so the lowest id is the
  // earliest computation operator's load (I/O scheduled in topo order §4.1).
  const int id = *ready_io_.begin();
  ready_io_.erase(ready_io_.begin());
  state_[id].dispatched = true;
  io_busy_ = true;
  RunChunk(id, "IO", 0);
}

void PipelineExecutor::DispatchNpu() {
  if (npu_busy_ || ready_npu_.empty()) {
    return;
  }
  const int id = *ready_npu_.begin();
  ready_npu_.erase(ready_npu_.begin());
  state_[id].dispatched = true;
  npu_busy_ = true;
  const SimTime begin = sim_->Now();
  const SimDuration duration = ops_[id].duration;
  auto complete = [this, id, begin, duration](Status st) {
    npu_busy_ = false;
    if (aborted_) {
      return;
    }
    if (config_.record_trace) {
      result_.trace.Add("NPU", ops_[id].label.empty()
                                   ? PipelineOpKindName(ops_[id].kind)
                                   : ops_[id].label,
                        begin - start_time_, sim_->Now() - start_time_);
    }
    if (!st.ok()) {
      Abort(std::move(st));
      return;
    }
    state_[id].chunks_left = 0;
    OnOpComplete(id);
  };
  if (npu_submit_) {
    npu_submit_(duration, complete);
  } else {
    sim_->Schedule(duration, [complete] { complete(OkStatus()); });
  }
}

void PipelineExecutor::RunChunk(int op_id, const std::string& lane_name,
                                int lane_slot) {
  PipelineOp& op = ops_[op_id];
  OpState& st = state_[op_id];
  const uint32_t total = std::max<uint32_t>(op.chunks, 1);
  // Last chunk absorbs the rounding remainder.
  const SimDuration base = op.duration / total;
  const SimDuration dur = st.chunks_left == 1
                              ? op.duration - base * (total - 1)
                              : base;
  const SimTime begin = sim_->Now();
  sim_->Schedule(dur, [this, op_id, lane_name, lane_slot, begin] {
    if (aborted_) {
      return;
    }
    PipelineOp& op = ops_[op_id];
    OpState& st = state_[op_id];
    if (config_.record_trace) {
      result_.trace.Add(
          lane_name + (lane_name == "CPU" ? std::to_string(lane_slot) : ""),
          op.label.empty() ? PipelineOpKindName(op.kind) : op.label,
          begin - start_time_, sim_->Now() - start_time_);
    }
    // Release the resource.
    if (op.kind == PipelineOpKind::kLoad) {
      io_busy_ = false;
    } else {
      --cpu_busy_;
      if (op.kind == PipelineOpKind::kAlloc) {
        --alloc_running_;
      }
    }
    --st.chunks_left;
    st.dispatched = false;
    if (st.chunks_left == 0) {
      OnOpComplete(op_id);
    } else {
      // Preemption point: the op re-enters the ready set and competes with
      // whatever became ready meanwhile (Figure 5d).
      ready_cpu_.insert(op_id);
      TryDispatch();
    }
  });
}

void PipelineExecutor::OnOpComplete(int op_id) {
  PipelineOp& op = ops_[op_id];
  OpState& st = state_[op_id];
  st.done = true;
  if (op.on_complete) {
    Status hook = op.on_complete();
    if (!hook.ok()) {
      Abort(std::move(hook));
      return;
    }
  }
  --remaining_ops_;
  // Wake dependents. Op counts are small (<~2k); a linear scan is fine and
  // keeps the structure simple.
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (state_[i].done || state_[i].deps_left == 0) {
      continue;
    }
    for (int dep : ops_[i].deps) {
      if (dep == op_id) {
        if (--state_[i].deps_left == 0) {
          switch (ops_[i].kind) {
            case PipelineOpKind::kLoad:
              ready_io_.insert(static_cast<int>(i));
              break;
            case PipelineOpKind::kComputeNpu:
              ready_npu_.insert(static_cast<int>(i));
              break;
            default:
              ready_cpu_.insert(static_cast<int>(i));
              break;
          }
        }
      }
    }
  }
  if (remaining_ops_ == 0) {
    Finish();
    return;
  }
  TryDispatch();
}

void PipelineExecutor::Abort(Status status) {
  if (aborted_) {
    return;
  }
  aborted_ = true;
  result_.status = std::move(status);
  Finish();
}

void PipelineExecutor::Finish() {
  running_ = false;
  result_.makespan = sim_->Now() - start_time_;
  if (done_) {
    auto done = std::move(done_);
    done_ = nullptr;
    done(result_);
  }
}

}  // namespace tzllm
