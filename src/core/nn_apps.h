// Mainstream NN applications used in the NPU time-sharing evaluation
// (Figure 15): YOLOv5 object detection and MobileNet image classification.
// Each app is a closed-loop client: one inference job outstanding at a
// time, resubmitted on completion — the standard camera-pipeline pattern.

#ifndef SRC_CORE_NN_APPS_H_
#define SRC_CORE_NN_APPS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/units.h"
#include "src/ree/npu_driver.h"
#include "src/sim/simulator.h"

namespace tzllm {

struct NnAppProfile {
  std::string name;
  SimDuration job_duration;  // NPU execution time per inference.
};

// Per-inference NPU times (RK3588-class NPU): exclusive throughput lands
// near the paper's ~100 ops/s (YOLOv5) and ~200 ops/s (MobileNet).
NnAppProfile Yolov5Profile();
NnAppProfile MobileNetProfile();

class NnApp {
 public:
  NnApp(Simulator* sim, ReeNpuDriver* driver, const NnAppProfile& profile);

  // Starts the closed loop; jobs keep resubmitting until Stop().
  void Start();
  void Stop();

  uint64_t completed() const { return completed_; }
  // Completions per second over the window since Start().
  double Throughput() const;
  const NnAppProfile& profile() const { return profile_; }

 private:
  void SubmitNext();

  Simulator* sim_;
  ReeNpuDriver* driver_;
  NnAppProfile profile_;
  bool running_ = false;
  uint64_t completed_ = 0;
  SimTime start_time_ = 0;
};

}  // namespace tzllm

#endif  // SRC_CORE_NN_APPS_H_
