// Builds the restoration-extended operator list (paper Figure 6) that the
// PipelineExecutor runs: for every weight-consuming computation operator of
// the prefill graph, an Alloc -> Load -> Decrypt chain is prepended, with
//   * alloc operators serialized (contiguity: each extent starts where the
//     previous one ended),
//   * load operators ordered by the single IO engine in topological order,
//   * computation operators chained and gated on their decrypt.
//
// Partial parameter caching (§4.1) removes the chains of the first
// `cached_bytes` of parameters; REE baselines disable decryption (and, for
// REE-Memory, restoration entirely).

#ifndef SRC_CORE_RESTORE_PLAN_H_
#define SRC_CORE_RESTORE_PLAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/core/pipeline.h"
#include "src/llm/cost_model.h"
#include "src/llm/graph.h"
#include "src/llm/model_spec.h"

namespace tzllm {

struct RestoreHooks {
  // Performs the actual (bookkeeping) allocation of the next `bytes` of the
  // parameter region and returns the single-threaded CPU time it costs.
  // Called at plan-build time, in extent order.
  std::function<Result<SimDuration>(uint64_t bytes)> plan_alloc;
  // Functional-mode side effects, run at operator completion.
  std::function<Status(uint64_t offset, uint64_t bytes)> load;
  std::function<Status(uint64_t offset, uint64_t bytes)> decrypt;
};

struct RestorePlanOptions {
  bool npu_available = true;
  bool decrypt = true;         // false for REE baselines (plaintext flash).
  bool restore = true;         // false for REE-Memory (already resident).
  bool pipelined = true;       // false inserts the strawman barrier.
  bool preemptible = true;     // Chunk alloc/decrypt into micro-operators.
  uint64_t cached_bytes = 0;   // Prefix of parameters already in memory.
  uint64_t chunk_bytes = 32 * kMiB;
};

struct RestorePlan {
  std::vector<PipelineOp> ops;
  uint64_t restored_bytes = 0;  // Parameters that go through restoration.
  uint64_t cached_hit_bytes = 0;
  int restored_extents = 0;
};

// Builds the plan for a prefill of `n_tokens`. `hooks.plan_alloc` is invoked
// here (mutating the allocator) for every restored extent.
Result<RestorePlan> BuildRestorePlan(const ModelSpec& spec,
                                     const ComputeGraph& graph, int n_tokens,
                                     const CostModel& cost,
                                     const RestorePlanOptions& options,
                                     const RestoreHooks& hooks);

}  // namespace tzllm

#endif  // SRC_CORE_RESTORE_PLAN_H_
