// Real-world benchmark workloads (paper §7 "Benchmarks"): prompt-length
// distributions and synthetic prompt text for
//   * UltraChat   — multi-turn dialogues (short prompts; this is why the
//                   paper sees the largest relative TTFT overhead there),
//   * PersonaChat — chat summarization (medium-long prompts),
//   * DroidTask   — UI automation (long serialized UI trees).
// Lengths are drawn from seeded log-normal-ish distributions so every run
// of the harness evaluates the identical prompt set.

#ifndef SRC_CORE_WORKLOADS_H_
#define SRC_CORE_WORKLOADS_H_

#include <string>
#include <vector>

namespace tzllm {

enum class BenchmarkId : int {
  kUltraChat = 0,
  kPersonaChat = 1,
  kDroidTask = 2,
};

const char* BenchmarkName(BenchmarkId id);
const char* BenchmarkShortName(BenchmarkId id);  // UC / PC / DT.

struct BenchmarkPrompt {
  int n_tokens = 0;
  std::string text;  // Synthetic content for functional runs.
};

// Deterministic prompt set for a benchmark (default 12 prompts, enough for
// a stable geometric mean as in §7.1.1).
std::vector<BenchmarkPrompt> BenchmarkPrompts(BenchmarkId id, int count = 12,
                                              uint64_t seed = 2026);

std::vector<BenchmarkId> AllBenchmarks();

}  // namespace tzllm

#endif  // SRC_CORE_WORKLOADS_H_
