#include "src/core/llm_ta.h"

#include <algorithm>
#include <cstring>

#include "src/common/log.h"
#include "src/llm/cost_model.h"
#include "src/llm/graph.h"
#include "src/tee/checkpoint.h"

namespace tzllm {

LlmTa::LlmTa(SocPlatform* platform, TeeOs* tee_os, TzDriver* tz_driver,
             const EngineOptions& engine_options, TeeNpuDriver* npu_driver)
    : platform_(platform),
      tee_os_(tee_os),
      tz_driver_(tz_driver),
      engine_options_(engine_options),
      npu_driver_(npu_driver) {}

Status LlmTa::Attach() {
  auto ta = tee_os_->CreateTa("llm-ta");
  if (!ta.ok()) {
    return ta.status();
  }
  ta_ = *ta;
  return OkStatus();
}

Status LlmTa::LoadModel(const std::string& model_id, SchedulePolicy policy) {
  if (loaded_) {
    return FailedPrecondition("a model is already loaded");
  }
  model_id_ = model_id;

  // 1. Key: only the TEE can unwrap; only this TA is authorized.
  auto key = tee_os_->GetModelKey(ta_, model_id);
  if (!key.ok()) {
    return key.status();
  }
  model_key_ = *key;

  // 2. Metadata (decrypt + integrity check against flash tampering).
  auto meta = Tzguf::ReadMeta(&platform_->flash(), model_id, model_key_);
  if (!meta.ok()) {
    return meta.status();
  }
  meta_ = std::make_unique<TzgufMeta>(*meta);
  if (!meta_->materialized) {
    return FailedPrecondition(
        "LlmTa requires a materialized (functional) model");
  }
  spec_ = std::make_unique<ModelSpec>(ModelSpec::Create(meta_->config));

  // 3. Scratch region for KV cache / activations (also hosts NPU job
  //    execution contexts). Budgeted at the width the cache will actually
  //    store: ModelSpec::KvCacheBytes accounts the default f16 arena, and
  //    the f32 reference mode doubles it — accounted == resident in every
  //    mode, not just the production one. NPU prefill adds the job
  //    execution-context window (double-buffered cmd/iopt/in/out slots) at
  //    the region tail, so CreateJob's TZASC validation passes exactly
  //    because the budget covered it.
  // Reference mode and prefill_batch <= 1 force the per-position CPU path
  // (executor.cc), so NPU prefill is genuinely inert under them: no
  // job-context budget, no backend, no NPU-rate pricing — accounted ==
  // executed in those combinations too.
  const bool npu_prefill_active = engine_options_.npu_prefill &&
                                  !engine_options_.use_reference_kernels &&
                                  engine_options_.prefill_batch > 1;
  if (npu_prefill_active) {
    if (npu_driver_ == nullptr) {
      return FailedPrecondition(
          "NPU prefill requested (EngineOptions::npu_prefill) but the "
          "platform has no NPU co-driver (RuntimeConfig::use_npu is off or "
          "TeeNpuDriver was not wired into this TA)");
    }
    if (engine_options_.npu_job_timeout == 0) {
      return InvalidArgument(
          "EngineOptions::npu_job_timeout must be positive: a zero per-job "
          "deadline would classify every NPU job as timed out");
    }
    if (engine_options_.npu_max_retries < 0) {
      return InvalidArgument("EngineOptions::npu_max_retries must be >= 0");
    }
    npu_ctx_bytes_ = NpuBackend::ContextBytes(*spec_, engine_options_);
    // Fault-injection plan: the options string wins; otherwise the
    // TZLLM_FAULT_PLAN environment variable (CI fault sweeps). A malformed
    // options string is a configuration error, not a warning.
    NpuFaultPlan fault_plan;
    if (!engine_options_.npu_fault_plan.empty()) {
      auto parsed = NpuFaultPlan::Parse(engine_options_.npu_fault_plan);
      if (!parsed.ok()) {
        return parsed.status();
      }
      fault_plan = *parsed;
    } else {
      fault_plan = NpuFaultPlan::FromEnv();
    }
    if (fault_plan.active()) {
      npu_driver_->ArmFaultPlan(fault_plan);
      TZLLM_LOG_INFO("llm-ta", "armed NPU fault plan %s",
                     fault_plan.ToString().c_str());
    }
  }
  const uint64_t kv_width_factor =
      KvStorageFor(engine_options_) == KvStorage::kF32 ? 2 : 1;
  scratch_bytes_ =
      AlignUp(spec_->KvCacheBytes(spec_->config().max_ctx) * kv_width_factor +
                  spec_->ActivationBytes() + npu_ctx_bytes_ + 64 * kKiB,
              kPageSize);
  auto scratch =
      tee_os_->ExtendAllocated(ta_, SecureRegionId::kScratch, scratch_bytes_);
  if (!scratch.ok()) {
    return scratch.status();
  }
  TZLLM_RETURN_IF_ERROR(
      tee_os_->ExtendProtected(ta_, SecureRegionId::kScratch, scratch_bytes_));

  // 4. Pipelined restoration with real side effects.
  TZLLM_RETURN_IF_ERROR(RestoreParameters(policy));

  // 5. Framework state: tokenizer (checkpointable) + executor, with the
  //    prefill backend seam wired to the NPU co-driver when requested.
  tokenizer_ = std::make_unique<Tokenizer>(spec_->config().vocab_size);
  weights_ = std::make_unique<SecureWeightSource>(this);
  kv_ = std::make_unique<KvCache>(*spec_, KvStorageFor(engine_options_),
                                  KernelsFor(engine_options_));
  if (npu_prefill_active) {
    NpuBackendConfig backend_config;
    backend_config.platform = platform_;
    backend_config.driver = npu_driver_;
    backend_config.ta = ta_;
    backend_config.ctx_bytes = npu_ctx_bytes_;
    // Job contexts live in the tail of this TA's scratch extent. The extent
    // address comes from the allocation itself (not RegionBase) so the math
    // stays right even if the single-owner region model ever loosens.
    backend_config.ctx_base =
        scratch->addr + scratch_bytes_ - npu_ctx_bytes_;
    // The payloads must run the engine's own table: the fused layer tail
    // carries norm/silu glue whose floats have to match the CPU path
    // bit-for-bit, not just the (table-invariant) integer-dot rows.
    backend_config.kernels = KernelsFor(engine_options_);
    backend_config.fuse_jobs = engine_options_.npu_fusion;
    backend_config.job_timeout = engine_options_.npu_job_timeout;
    backend_config.max_retries = engine_options_.npu_max_retries;
    backend_config.retry_backoff = engine_options_.npu_retry_backoff;
    backend_config.cpu_fallback = engine_options_.npu_cpu_fallback;
    npu_backend_ =
        std::make_unique<NpuBackend>(backend_config);
  }
  executor_ = std::make_unique<TransformerExecutor>(
      spec_.get(), weights_.get(), engine_options_, npu_backend_.get());
  loaded_ = true;
  return OkStatus();
}

Status LlmTa::LoadExtent(uint64_t offset, uint64_t bytes) {
  // The CA loads the encrypted extent from flash into the *unprotected*
  // freshly allocated CMA memory: the flash controller's DMA is checked
  // against the TZASC, so this only works because extend_protected has not
  // yet covered the extent (paper §4.2 bounce-buffer elimination).
  const PhysAddr dst = tee_os_->RegionBase(SecureRegionId::kParams) + offset;
  TZLLM_RETURN_IF_ERROR(platform_->tzasc().CheckDmaAccess(
      DeviceId::kFlashController, dst, bytes));
  std::vector<uint8_t> buf(bytes);
  TZLLM_RETURN_IF_ERROR(platform_->flash().PeekBytes(meta_->DataFile(), offset,
                                                     bytes, buf.data()));
  TZLLM_RETURN_IF_ERROR(platform_->dram().Write(dst, buf.data(), bytes));
  // Now cover it with the TZASC before plaintext ever exists.
  return tee_os_->ExtendProtected(ta_, SecureRegionId::kParams, bytes);
}

Status LlmTa::DecryptExtent(uint64_t offset, uint64_t bytes) {
  const PhysAddr base = tee_os_->RegionBase(SecureRegionId::kParams);
  std::vector<uint8_t> buf(bytes);
  TZLLM_RETURN_IF_ERROR(platform_->dram().Read(base + offset, buf.data(),
                                               bytes));
  Tzguf::DecryptExtent(model_key_, model_id_, offset, buf.data(), bytes);
  // Verify every tensor fully contained in this extent (Iago defense for
  // model loading, §6).
  for (const TensorSpec& t : spec_->tensors()) {
    if (t.file_offset >= offset && t.file_offset + t.bytes <= offset + bytes) {
      TZLLM_RETURN_IF_ERROR(
          Tzguf::VerifyTensor(*meta_, t.index,
                              buf.data() + (t.file_offset - offset),
                              t.data_bytes));
    }
  }
  return platform_->dram().Write(base + offset, buf.data(), bytes);
}

Status LlmTa::RestoreParameters(SchedulePolicy policy) {
  const ComputeGraph graph = ComputeGraph::BuildPrefill(*spec_);
  const CostModel cost(spec_.get());

  RestorePlanOptions options;
  // NPU availability comes from the runtime wiring (RuntimeConfig::use_npu
  // hands this TA the co-driver) plus the engine knobs, not a hardcoded
  // false: the plan prices prefill compute ops at NPU rates exactly when
  // the configuration routes prefill there. npu_ctx_bytes_ is nonzero
  // exactly when LoadModel decided NPU prefill is active (driver wired,
  // npu_prefill set, not forced onto the per-position CPU path) — one
  // predicate, no second spelling to drift. The plan is nominal per model
  // (n_tokens=16 below), so per-request divergence — e.g. a single-token
  // prompt taking the per-position CPU path — is outside its scope either
  // way.
  options.npu_available = npu_ctx_bytes_ > 0;
  options.decrypt = true;
  options.preemptible = policy == SchedulePolicy::kPriorityPreemptive;
  options.chunk_bytes = 256 * kKiB;  // Functional models are small.

  RestoreHooks hooks;
  hooks.plan_alloc = [this](uint64_t bytes) -> Result<SimDuration> {
    auto extent =
        tee_os_->ExtendAllocated(ta_, SecureRegionId::kParams, bytes);
    if (!extent.ok()) {
      return extent.status();
    }
    return extent->cpu_time;
  };
  hooks.load = [this](uint64_t offset, uint64_t bytes) {
    return LoadExtent(offset, bytes);
  };
  hooks.decrypt = [this](uint64_t offset, uint64_t bytes) {
    return DecryptExtent(offset, bytes);
  };

  auto plan = BuildRestorePlan(*spec_, graph, /*n_tokens=*/16, cost, options,
                               hooks);
  if (!plan.ok()) {
    return plan.status();
  }
  PipelineConfig config;
  config.policy = policy;
  PipelineExecutor executor(&platform_->sim(), config);
  restore_result_ = executor.RunToCompletion(std::move(plan->ops));
  return restore_result_.status;
}

Result<const uint8_t*> LlmTa::SecureWeightSource::TensorData(
    int tensor_index) {
  auto it = cache_.find(tensor_index);
  if (it != cache_.end()) {
    return static_cast<const uint8_t*>(it->second.data());
  }
  LlmTa* ta = ta_;
  const TensorSpec& spec = ta->spec_->tensor(tensor_index);
  const PhysAddr addr =
      ta->tee_os_->RegionBase(SecureRegionId::kParams) + spec.file_offset;
  // A real TA reads through its secure VA mapping; the TEE OS enforces that
  // the mapping exists. We model the same check explicitly.
  if (!ta->tee_os_->TaCanAccess(ta->ta_, addr, spec.data_bytes)) {
    return Status(ErrorCode::kPermissionDenied,
                  "tensor not mapped into TA address space");
  }
  std::vector<uint8_t> buf(spec.data_bytes);
  Status st = ta->platform_->dram().Read(addr, buf.data(), spec.data_bytes);
  if (!st.ok()) {
    return st;
  }
  auto [slot, inserted] = cache_.emplace(tensor_index, std::move(buf));
  return static_cast<const uint8_t*>(slot->second.data());
}

Status LlmTa::BeginSession(const std::string& prompt, int max_new_tokens,
                           const Sampler::Options& sampling) {
  if (!loaded_) {
    return FailedPrecondition("no model loaded");
  }
  if (session_.active) {
    return FailedPrecondition(
        "a generation session is already active (Finish it first)");
  }
  if (max_new_tokens < 0) {
    return InvalidArgument("max_new_tokens must be >= 0");
  }
  Session s;
  s.prompt_tokens = tokenizer_->Encode(prompt);
  if (s.prompt_tokens.empty()) {
    return InvalidArgument("empty prompt");
  }
  kv_->Reset();
  auto logits = executor_->Prefill(s.prompt_tokens, kv_.get());
  if (!logits.ok()) {
    return logits.status();
  }
  s.sampling = sampling;
  s.sampler = std::make_unique<Sampler>(sampling);
  s.next_token = s.sampler->Sample(*logits);
  s.remaining = max_new_tokens;
  s.active = true;
  session_ = std::move(s);
  return OkStatus();
}

bool LlmTa::session_done() const {
  return session_.done || session_.remaining == 0 ||
         session_.next_token == Tokenizer::kEos ||
         (kv_ != nullptr && kv_->seq_len() >= spec_->config().max_ctx);
}

Result<int> LlmTa::StepSession(int max_steps) {
  if (!session_.active) {
    return Status(ErrorCode::kFailedPrecondition, "no active session");
  }
  // Token-for-token the classic Generate loop: check stop conditions before
  // emitting, decode the emitted token, then sample its successor.
  int emitted = 0;
  std::vector<float> next(spec_->config().vocab_size);
  while (emitted < max_steps && session_.remaining > 0) {
    if (session_.next_token == Tokenizer::kEos ||
        kv_->seq_len() >= spec_->config().max_ctx) {
      session_.done = true;
      break;
    }
    session_.output_tokens.push_back(session_.next_token);
    Status st =
        executor_->DecodeStepInto(session_.next_token, kv_.get(), next.data());
    if (!st.ok()) {
      return st;
    }
    session_.next_token = session_.sampler->Sample(next);
    --session_.remaining;
    ++emitted;
  }
  return emitted;
}

Result<GenerationResult> LlmTa::FinishSession() {
  if (!session_.active) {
    return Status(ErrorCode::kFailedPrecondition, "no active session");
  }
  GenerationResult result;
  result.prompt_tokens = std::move(session_.prompt_tokens);
  result.output_tokens = std::move(session_.output_tokens);
  result.text = tokenizer_->Decode(result.output_tokens);
  session_ = Session{};
  return result;
}

Result<GenerationResult> LlmTa::Generate(const std::string& prompt,
                                         int max_new_tokens,
                                         const Sampler::Options& sampling) {
  TZLLM_RETURN_IF_ERROR(BeginSession(prompt, max_new_tokens, sampling));
  while (!session_done()) {
    auto stepped = StepSession(session_.remaining);
    if (!stepped.ok()) {
      session_ = Session{};  // Don't leave a half-dead session latched.
      return stepped.status();
    }
    if (*stepped == 0) {
      break;
    }
  }
  return FinishSession();
}

namespace {

// Session-blob primitives (little-endian, explicit widths — the same idiom
// as the TZGUF metadata and KvCache snapshots).
constexpr char kSessionMagic[8] = {'T', 'Z', 'S', 'E', 'S', 'S', '0', '1'};

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU32(const std::vector<uint8_t>& in, size_t* off, uint32_t* v) {
  if (*off + 4 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(in[*off + i]) << (8 * i);
  }
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& in, size_t* off, uint64_t* v) {
  if (*off + 8 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(in[*off + i]) << (8 * i);
  }
  *off += 8;
  return true;
}

// Session checkpoints live beside the framework checkpoint but in their own
// flash file: "<model_id>.sess.ckpt".
std::string SessionCheckpointId(const std::string& model_id) {
  return model_id + ".sess";
}

}  // namespace

Status LlmTa::CheckpointSession() {
  if (!session_.active) {
    return FailedPrecondition("no active session to checkpoint");
  }
  // assign (not insert-at-end on the empty vector): gcc 12 -O2 misanalyzes
  // the char* range insert as a 1-byte-destination memcpy overflow.
  std::vector<uint8_t> blob(kSessionMagic, kSessionMagic + sizeof(kSessionMagic));
  PutU32(&blob, static_cast<uint32_t>(session_.prompt_tokens.size()));
  for (TokenId t : session_.prompt_tokens) {
    PutU32(&blob, static_cast<uint32_t>(t));
  }
  PutU32(&blob, static_cast<uint32_t>(session_.output_tokens.size()));
  for (TokenId t : session_.output_tokens) {
    PutU32(&blob, static_cast<uint32_t>(t));
  }
  PutU32(&blob, static_cast<uint32_t>(session_.next_token));
  PutU32(&blob, static_cast<uint32_t>(session_.remaining));
  PutU32(&blob, session_.done ? 1 : 0);
  // Sampler options + RNG words: a restored non-greedy sampler must draw the
  // exact remaining sequence.
  PutU32(&blob, session_.sampling.greedy ? 1 : 0);
  PutU32(&blob, static_cast<uint32_t>(session_.sampling.top_k));
  uint64_t temp_bits = 0;
  static_assert(sizeof(temp_bits) == sizeof(session_.sampling.temperature));
  std::memcpy(&temp_bits, &session_.sampling.temperature, sizeof(temp_bits));
  PutU64(&blob, temp_bits);
  PutU64(&blob, session_.sampling.seed);
  uint64_t rng_state[4];
  session_.sampler->SaveRngState(rng_state);
  for (uint64_t word : rng_state) {
    PutU64(&blob, word);
  }
  kv_->SerializeState(&blob);

  CheckpointService checkpoints(&platform_->flash());
  auto saved =
      checkpoints.Save(SessionCheckpointId(model_id_), model_key_, blob);
  if (!saved.ok()) {
    return saved.status();
  }
  // Eviction: the sealed blob is now the only copy of the session — scrub
  // the KV plaintext and drop the live state.
  kv_->Scrub();
  session_ = Session{};
  TZLLM_LOG_INFO("llm-ta", "session checkpoint sealed (%llu bytes)",
                 static_cast<unsigned long long>(*saved));
  return OkStatus();
}

Status LlmTa::RestoreSession() {
  if (!loaded_) {
    return FailedPrecondition("no model loaded");
  }
  if (session_.active) {
    return FailedPrecondition(
        "a generation session is already active (Finish it first)");
  }
  CheckpointService checkpoints(&platform_->flash());
  auto blob = checkpoints.Restore(SessionCheckpointId(model_id_), model_key_);
  if (!blob.ok()) {
    return blob.status();
  }
  size_t off = 0;
  if (blob->size() < sizeof(kSessionMagic) ||
      std::memcmp(blob->data(), kSessionMagic, sizeof(kSessionMagic)) != 0) {
    return Status(ErrorCode::kDataCorruption, "session checkpoint bad magic");
  }
  off = sizeof(kSessionMagic);
  auto read_tokens = [&](std::vector<TokenId>* out) -> bool {
    uint32_t n = 0;
    if (!GetU32(*blob, &off, &n) || n > (1u << 24)) {
      return false;
    }
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t t = 0;
      if (!GetU32(*blob, &off, &t)) {
        return false;
      }
      (*out)[i] = static_cast<TokenId>(t);
    }
    return true;
  };
  Session s;
  uint32_t next_token = 0, remaining = 0, done = 0, greedy = 0, top_k = 0;
  uint64_t temp_bits = 0, seed = 0, rng_state[4] = {};
  bool ok = read_tokens(&s.prompt_tokens) && read_tokens(&s.output_tokens) &&
            GetU32(*blob, &off, &next_token) &&
            GetU32(*blob, &off, &remaining) && GetU32(*blob, &off, &done) &&
            GetU32(*blob, &off, &greedy) && GetU32(*blob, &off, &top_k) &&
            GetU64(*blob, &off, &temp_bits) && GetU64(*blob, &off, &seed);
  for (uint64_t& word : rng_state) {
    ok = ok && GetU64(*blob, &off, &word);
  }
  if (!ok) {
    return Status(ErrorCode::kDataCorruption, "session checkpoint truncated");
  }
  s.next_token = static_cast<TokenId>(next_token);
  s.remaining = static_cast<int>(remaining);
  s.done = done != 0;
  s.sampling.greedy = greedy != 0;
  s.sampling.top_k = static_cast<int>(top_k);
  std::memcpy(&s.sampling.temperature, &temp_bits,
              sizeof(s.sampling.temperature));
  s.sampling.seed = seed;
  s.sampler = std::make_unique<Sampler>(s.sampling);
  s.sampler->LoadRngState(rng_state);
  TZLLM_RETURN_IF_ERROR(
      kv_->RestoreState(blob->data() + off, blob->size() - off));
  s.active = true;
  session_ = std::move(s);
  return OkStatus();
}

bool LlmTa::HasSessionCheckpoint() const {
  CheckpointService checkpoints(&platform_->flash());
  return !model_id_.empty() &&
         checkpoints.Exists(SessionCheckpointId(model_id_));
}

Status LlmTa::Unload() {
  if (!loaded_ && spec_ == nullptr) {
    return OkStatus();
  }
  const SecureRegionStats params =
      tee_os_->RegionStats(SecureRegionId::kParams);
  if (params.protected_bytes > 0) {
    auto scrub =
        tee_os_->Shrink(ta_, SecureRegionId::kParams, params.protected_bytes);
    if (!scrub.ok()) {
      return scrub.status();
    }
  }
  const SecureRegionStats scratch =
      tee_os_->RegionStats(SecureRegionId::kScratch);
  if (scratch.protected_bytes > 0) {
    auto scrub = tee_os_->Shrink(ta_, SecureRegionId::kScratch,
                                 scratch.protected_bytes);
    if (!scrub.ok()) {
      return scrub.status();
    }
  }
  loaded_ = false;
  executor_.reset();  // Before npu_backend_: the executor points into it.
  npu_backend_.reset();
  weights_.reset();
  npu_ctx_bytes_ = 0;
  return OkStatus();
}

}  // namespace tzllm
