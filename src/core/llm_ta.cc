#include "src/core/llm_ta.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>

#include "src/common/log.h"
#include "src/crypto/sha256.h"
#include "src/llm/cost_model.h"
#include "src/llm/graph.h"
#include "src/tee/checkpoint.h"

namespace tzllm {

namespace {

// KV spill blobs live in attacker-controlled REE memory, so they get their
// own key, derived from the model key with a fixed label (never the model
// key itself: a break of the spill path must not expose the weights).
AesKey128 DeriveKvSpillKey(const AesKey128& model_key) {
  Sha256 hasher;
  hasher.Update(model_key.data(), model_key.size());
  hasher.Update("kv-spill");
  const Sha256Digest digest = hasher.Finalize();
  AesKey128 key{};
  std::copy(digest.begin(), digest.begin() + key.size(), key.begin());
  return key;
}

}  // namespace

LlmTa::LlmTa(SocPlatform* platform, TeeOs* tee_os, TzDriver* tz_driver,
             const EngineOptions& engine_options, TeeNpuDriver* npu_driver)
    : platform_(platform),
      tee_os_(tee_os),
      tz_driver_(tz_driver),
      engine_options_(engine_options),
      npu_driver_(npu_driver) {}

Status LlmTa::Attach() {
  auto ta = tee_os_->CreateTa("llm-ta");
  if (!ta.ok()) {
    return ta.status();
  }
  ta_ = *ta;
  return OkStatus();
}

Status LlmTa::LoadModel(const std::string& model_id, SchedulePolicy policy) {
  if (loaded_) {
    return FailedPrecondition("a model is already loaded");
  }
  // Whole-configuration validation up front (EngineOptions::Validate is the
  // one entry point — serving, NPU and fault knobs together), so every
  // rejected configuration fails before a key is unwrapped or secure memory
  // is allocated.
  TZLLM_RETURN_IF_ERROR(engine_options_.Validate());
  model_id_ = model_id;

  // Serving-layer fault plan: the options string wins (Validate() vetted
  // its syntax); otherwise the TZLLM_SERVE_FAULT_PLAN environment variable
  // (the CI chaos sweep). Resolved once here so every injection point — the
  // KV pool's spill path, the checkpoint saves, the serving runtime's tick
  // crash — reads the same plan.
  if (!engine_options_.serve_fault_plan.empty()) {
    auto serve_plan = ServeFaultPlan::Parse(engine_options_.serve_fault_plan);
    if (!serve_plan.ok()) {
      return serve_plan.status();
    }
    serve_fault_plan_ = *serve_plan;
  } else {
    serve_fault_plan_ = ServeFaultPlan::FromEnv();
  }

  // 1. Key: only the TEE can unwrap; only this TA is authorized.
  auto key = tee_os_->GetModelKey(ta_, model_id);
  if (!key.ok()) {
    return key.status();
  }
  model_key_ = *key;

  // 2. Metadata (decrypt + integrity check against flash tampering).
  auto meta = Tzguf::ReadMeta(&platform_->flash(), model_id, model_key_);
  if (!meta.ok()) {
    return meta.status();
  }
  meta_ = std::make_unique<TzgufMeta>(*meta);
  if (!meta_->materialized) {
    return FailedPrecondition(
        "LlmTa requires a materialized (functional) model");
  }
  spec_ = std::make_unique<ModelSpec>(ModelSpec::Create(meta_->config));

  // 3. Scratch region for the KV arena / activations (also hosts NPU job
  //    execution contexts). Budgeted at the width the caches will actually
  //    store: KvArena::BudgetBytes accounts the flat per-session slots or
  //    the shared KV page pool (whichever this configuration builds), plus
  //    a vocab-size logits row per admissible session — so accounted ==
  //    resident in every mode.
  //    NPU prefill adds the job execution-context window (double-buffered
  //    cmd/iopt/in/out slots) at the region tail, so CreateJob's TZASC
  //    validation passes exactly because the budget covered it.
  if (engine_options_.npu_prefill_active()) {
    if (npu_driver_ == nullptr) {
      return FailedPrecondition(
          "NPU prefill requested (EngineOptions::npu_prefill) but the "
          "platform has no NPU co-driver (RuntimeConfig::use_npu is off or "
          "TeeNpuDriver was not wired into this TA)");
    }
    npu_ctx_bytes_ = NpuBackend::ContextBytes(*spec_, engine_options_);
    // Fault-injection plan: the options string wins (Validate() already
    // vetted its syntax); otherwise the TZLLM_FAULT_PLAN environment
    // variable (CI fault sweeps).
    NpuFaultPlan fault_plan;
    if (!engine_options_.npu_fault_plan.empty()) {
      auto parsed = NpuFaultPlan::Parse(engine_options_.npu_fault_plan);
      if (!parsed.ok()) {
        return parsed.status();
      }
      fault_plan = *parsed;
    } else {
      fault_plan = NpuFaultPlan::FromEnv();
    }
    if (fault_plan.active()) {
      npu_driver_->ArmFaultPlan(fault_plan);
      TZLLM_LOG_INFO("llm-ta", "armed NPU fault plan %s",
                     fault_plan.ToString().c_str());
    }
  }
  // The KV share of the budget comes from the SAME static the arena itself
  // is sized by (KvArena::BudgetBytes) — flat slots and the paged pool alike
  // — so accounted == ArenaBytes() in every mode and the two can never
  // drift. With paged_kv and kv_pool_bytes == 0 the pool inherits the flat
  // slots x per-session product: paging never grows the scratch region.
  KvArenaOptions arena_options;
  arena_options.slots = engine_options_.max_sessions;
  arena_options.storage = KvStorageFor(engine_options_);
  arena_options.kernels = KernelsFor(engine_options_);
  arena_options.paged = engine_options_.paged_kv;
  arena_options.pool.page_positions = engine_options_.kv_page_positions;
  arena_options.pool.pool_bytes = engine_options_.kv_pool_bytes;
  arena_options.pool.spill = engine_options_.kv_spill;
  arena_options.pool.spill_key = DeriveKvSpillKey(model_key_);
  arena_options.prefix_entries = engine_options_.kv_prefix_entries;
  const uint64_t n_slots =
      static_cast<uint64_t>(engine_options_.max_sessions);
  scratch_bytes_ = AlignUp(
      KvArena::BudgetBytes(*spec_, arena_options) +
          spec_->ActivationBytes() +
          n_slots * spec_->config().vocab_size * sizeof(float) +
          npu_ctx_bytes_ + 64 * kKiB,
      kPageSize);
  auto scratch =
      tee_os_->ExtendAllocated(ta_, SecureRegionId::kScratch, scratch_bytes_);
  if (!scratch.ok()) {
    return scratch.status();
  }
  TZLLM_RETURN_IF_ERROR(
      tee_os_->ExtendProtected(ta_, SecureRegionId::kScratch, scratch_bytes_));

  // 4. Pipelined restoration with real side effects.
  TZLLM_RETURN_IF_ERROR(RestoreParameters(policy));

  // 5. Framework state: tokenizer (checkpointable), the per-session KV
  //    arena, and the executor with the prefill backend seam wired to the
  //    NPU co-driver when requested.
  tokenizer_ = std::make_unique<Tokenizer>(spec_->config().vocab_size);
  weights_ = std::make_unique<SecureWeightSource>(this);
  kv_arena_ = std::make_unique<KvArena>(*spec_, arena_options);
  if (kv_arena_->paged()) {
    // The pool may be smaller than slots x full-context (over-subscription
    // is the point), but it must at least hold ONE session's full context
    // resident: a decode step pins every page of its session, so a pool
    // below that floor could wedge with every frame pinned.
    const KvPagePool* pool = kv_arena_->pool();
    if (static_cast<uint64_t>(pool->frames()) * pool->page_positions() <
        static_cast<uint64_t>(spec_->config().max_ctx)) {
      return InvalidArgument(
          "EngineOptions::kv_pool_bytes too small: the KV page pool cannot "
          "hold one session's full context resident");
    }
    // Spill-class fault plans arm the pool itself: every Nth spill blob is
    // tampered with (or truncated) on its way into REE memory, modeling a
    // hostile normal world — detected at restore, recovered by recompute.
    if (serve_fault_plan_.active() &&
        (serve_fault_plan_.fault == ServeFaultClass::kSpillTamper ||
         serve_fault_plan_.fault == ServeFaultClass::kSpillDrop)) {
      kv_arena_->pool()->ArmSpillFault(
          serve_fault_plan_.fault == ServeFaultClass::kSpillDrop,
          serve_fault_plan_.first, serve_fault_plan_.count);
      TZLLM_LOG_INFO("llm-ta", "armed serve fault plan %s on the KV pool",
                     serve_fault_plan_.ToString().c_str());
    }
  }
  if (engine_options_.npu_prefill_active()) {
    NpuBackendConfig backend_config;
    backend_config.platform = platform_;
    backend_config.driver = npu_driver_;
    backend_config.ta = ta_;
    backend_config.ctx_bytes = npu_ctx_bytes_;
    // Job contexts live in the tail of this TA's scratch extent. The extent
    // address comes from the allocation itself (not RegionBase) so the math
    // stays right even if the single-owner region model ever loosens.
    backend_config.ctx_base =
        scratch->addr + scratch_bytes_ - npu_ctx_bytes_;
    // The payloads must run the engine's own table: the fused layer tail
    // carries norm/silu glue whose floats have to match the CPU path
    // bit-for-bit, not just the (table-invariant) integer-dot rows.
    backend_config.kernels = KernelsFor(engine_options_);
    backend_config.fuse_jobs = engine_options_.npu_fusion;
    backend_config.job_timeout = engine_options_.npu_job_timeout;
    backend_config.max_retries = engine_options_.npu_max_retries;
    backend_config.retry_backoff = engine_options_.npu_retry_backoff;
    backend_config.cpu_fallback = engine_options_.npu_cpu_fallback;
    npu_backend_ =
        std::make_unique<NpuBackend>(backend_config);
  }
  executor_ = std::make_unique<TransformerExecutor>(
      spec_.get(), weights_.get(), engine_options_, npu_backend_.get());
  loaded_ = true;
  return OkStatus();
}

Status LlmTa::LoadExtent(uint64_t offset, uint64_t bytes) {
  // The CA loads the encrypted extent from flash into the *unprotected*
  // freshly allocated CMA memory: the flash controller's DMA is checked
  // against the TZASC, so this only works because extend_protected has not
  // yet covered the extent (paper §4.2 bounce-buffer elimination).
  const PhysAddr dst = tee_os_->RegionBase(SecureRegionId::kParams) + offset;
  TZLLM_RETURN_IF_ERROR(platform_->tzasc().CheckDmaAccess(
      DeviceId::kFlashController, dst, bytes));
  std::vector<uint8_t> buf(bytes);
  TZLLM_RETURN_IF_ERROR(platform_->flash().PeekBytes(meta_->DataFile(), offset,
                                                     bytes, buf.data()));
  TZLLM_RETURN_IF_ERROR(platform_->dram().Write(dst, buf.data(), bytes));
  // Now cover it with the TZASC before plaintext ever exists.
  return tee_os_->ExtendProtected(ta_, SecureRegionId::kParams, bytes);
}

Status LlmTa::DecryptExtent(uint64_t offset, uint64_t bytes) {
  const PhysAddr base = tee_os_->RegionBase(SecureRegionId::kParams);
  std::vector<uint8_t> buf(bytes);
  TZLLM_RETURN_IF_ERROR(platform_->dram().Read(base + offset, buf.data(),
                                               bytes));
  Tzguf::DecryptExtent(model_key_, model_id_, offset, buf.data(), bytes);
  // Verify every tensor fully contained in this extent (Iago defense for
  // model loading, §6).
  for (const TensorSpec& t : spec_->tensors()) {
    if (t.file_offset >= offset && t.file_offset + t.bytes <= offset + bytes) {
      TZLLM_RETURN_IF_ERROR(
          Tzguf::VerifyTensor(*meta_, t.index,
                              buf.data() + (t.file_offset - offset),
                              t.data_bytes));
    }
  }
  return platform_->dram().Write(base + offset, buf.data(), bytes);
}

Status LlmTa::RestoreParameters(SchedulePolicy policy) {
  const ComputeGraph graph = ComputeGraph::BuildPrefill(*spec_);
  const CostModel cost(spec_.get());

  RestorePlanOptions options;
  // NPU availability comes from the runtime wiring (RuntimeConfig::use_npu
  // hands this TA the co-driver) plus the engine knobs, not a hardcoded
  // false: the plan prices prefill compute ops at NPU rates exactly when
  // the configuration routes prefill there. npu_ctx_bytes_ is nonzero
  // exactly when LoadModel decided NPU prefill is active (driver wired,
  // npu_prefill set, not forced onto the per-position CPU path) — one
  // predicate, no second spelling to drift. The plan is nominal per model
  // (n_tokens=16 below), so per-request divergence — e.g. a single-token
  // prompt taking the per-position CPU path — is outside its scope either
  // way.
  options.npu_available = npu_ctx_bytes_ > 0;
  options.decrypt = true;
  options.preemptible = policy == SchedulePolicy::kPriorityPreemptive;
  options.chunk_bytes = 256 * kKiB;  // Functional models are small.

  RestoreHooks hooks;
  hooks.plan_alloc = [this](uint64_t bytes) -> Result<SimDuration> {
    auto extent =
        tee_os_->ExtendAllocated(ta_, SecureRegionId::kParams, bytes);
    if (!extent.ok()) {
      return extent.status();
    }
    return extent->cpu_time;
  };
  hooks.load = [this](uint64_t offset, uint64_t bytes) {
    return LoadExtent(offset, bytes);
  };
  hooks.decrypt = [this](uint64_t offset, uint64_t bytes) {
    return DecryptExtent(offset, bytes);
  };

  auto plan = BuildRestorePlan(*spec_, graph, /*n_tokens=*/16, cost, options,
                               hooks);
  if (!plan.ok()) {
    return plan.status();
  }
  PipelineConfig config;
  config.policy = policy;
  PipelineExecutor executor(&platform_->sim(), config);
  restore_result_ = executor.RunToCompletion(std::move(plan->ops));
  return restore_result_.status;
}

Result<const uint8_t*> LlmTa::SecureWeightSource::TensorData(
    int tensor_index) {
  auto it = cache_.find(tensor_index);
  if (it != cache_.end()) {
    return static_cast<const uint8_t*>(it->second.data());
  }
  LlmTa* ta = ta_;
  const TensorSpec& spec = ta->spec_->tensor(tensor_index);
  const PhysAddr addr =
      ta->tee_os_->RegionBase(SecureRegionId::kParams) + spec.file_offset;
  // A real TA reads through its secure VA mapping; the TEE OS enforces that
  // the mapping exists. We model the same check explicitly.
  if (!ta->tee_os_->TaCanAccess(ta->ta_, addr, spec.data_bytes)) {
    return Status(ErrorCode::kPermissionDenied,
                  "tensor not mapped into TA address space");
  }
  std::vector<uint8_t> buf(spec.data_bytes);
  Status st = ta->platform_->dram().Read(addr, buf.data(), spec.data_bytes);
  if (!st.ok()) {
    return st;
  }
  auto [slot, inserted] = cache_.emplace(tensor_index, std::move(buf));
  return static_cast<const uint8_t*>(slot->second.data());
}

// --- Session bookkeeping. -------------------------------------------------

LlmTa::Session* LlmTa::FindSession(SessionId sid) {
  auto it = sessions_.find(sid);
  return it == sessions_.end() ? nullptr : &it->second;
}

const LlmTa::Session* LlmTa::FindSession(SessionId sid) const {
  auto it = sessions_.find(sid);
  return it == sessions_.end() ? nullptr : &it->second;
}

Result<LlmTa::Session*> LlmTa::SoleSession() {
  if (sessions_.empty()) {
    return Status(ErrorCode::kFailedPrecondition, "no active session");
  }
  if (sessions_.size() > 1) {
    return Status(ErrorCode::kFailedPrecondition,
                  "legacy single-session call with several sessions open "
                  "(pass a SessionId)");
  }
  return &sessions_.begin()->second;
}

bool LlmTa::SessionStopped(const Session& s) const {
  if (s.done) {
    return true;
  }
  if (!s.prefilled) {
    return false;  // Still mid-prefill: there is work left, not a stop.
  }
  const KvCache* kv = kv_arena_->cache(s.slot);
  return s.remaining == 0 || s.next_token == Tokenizer::kEos ||
         kv->seq_len() >= spec_->config().max_ctx;
}

void LlmTa::CloseSession(Session* s) {
  const Status released = kv_arena_->Release(s->slot);
  if (!released.ok()) {
    // Double-release can only mean corrupted bookkeeping; surface it loudly
    // but don't mask the caller's path — the session entry goes either way.
    TZLLM_LOG_ERROR("llm-ta", "session %llu slot release failed: %s",
                    static_cast<unsigned long long>(s->sid),
                    released.ToString().c_str());
  }
  sessions_.erase(s->sid);
}

// --- Recompute-on-loss KV recovery (ISSUE 10). -----------------------------

Status LlmTa::RecoverLostKv(const std::vector<Session*>& sessions,
                            bool* recovered) {
  *recovered = false;
  if (!kv_arena_->paged() || engine_options_.kv_recompute_max <= 0) {
    return OkStatus();
  }
  for (Session* s : sessions) {
    KvCache* kv = kv_arena_->cache(s->slot);
    std::vector<int> lost;
    TZLLM_RETURN_IF_ERROR(kv->ProbeLostPages(&lost));
    if (lost.empty()) {
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const int seq = kv->seq_len();
    const int pp = kv->page_positions();
    const int prompt_len = static_cast<int>(s->prompt_tokens.size());
    // Ranges still to heal, ascending. Healing one range can surface MORE
    // loss — the re-prefill pins the whole prefix, and under a hostile REE
    // those restores fail too — so every nested kDataCorruption folds the
    // new casualties into this set and the loop restarts from the lowest
    // index. Recovery then survives arbitrarily unreliable spill storage,
    // up to the recompute budget.
    std::set<int> pending;
    uint64_t healed = 0;
    std::vector<TokenId> span;
    auto absorb = [&](const std::vector<int>& found) -> Status {
      // A registry entry holding a lost page would hand zeros to the next
      // AdoptPrefix — invalidate those before detaching anything.
      const int dropped = kv_arena_->DropLostPrefixEntries();
      if (dropped > 0) {
        TZLLM_LOG_WARN("llm-ta",
                       "dropped %d prefix registry entries over lost pages",
                       dropped);
      }
      if (s->pages_recomputed + static_cast<int>(healed + found.size()) >
          engine_options_.kv_recompute_max) {
        return Status(
            ErrorCode::kDataCorruption,
            "KV recompute budget exhausted (EngineOptions::kv_recompute_max):"
            " REE spill storage keeps losing this session's pages");
      }
      // Detach/heal the whole found set first: a page still shared with
      // other holders is swapped for a fresh private one, and the
      // re-prefill below must only ever write pages this session owns
      // exclusively.
      for (int idx : found) {
        TZLLM_RETURN_IF_ERROR(kv->PrepareRecompute(idx));
        pending.insert(idx);
      }
      return OkStatus();
    };
    TZLLM_RETURN_IF_ERROR(absorb(lost));
    // Lowest pending range first: recomputing page i attends over positions
    // < i*pp only, so earlier lost pages are already healed by the time a
    // later one reads them.
    while (!pending.empty()) {
      const int idx = *pending.begin();
      const int a = idx * pp;
      const int b = std::min((idx + 1) * pp, seq);
      if (b <= a) {
        // Allocated-but-unfilled tail page: nothing to recompute.
        pending.erase(pending.begin());
        ++healed;
        continue;
      }
      span.clear();
      span.reserve(b - a);
      for (int p = a; p < b; ++p) {
        // The token that produced position p: the prompt, then the emitted
        // outputs. Every output token is pushed BEFORE its decode step, so
        // the history covers every cached position even when the failed
        // step was the one that appended last.
        span.push_back(p < prompt_len ? s->prompt_tokens[p]
                                      : s->output_tokens[p - prompt_len]);
      }
      // Rewind the fill marks to the lost range and run the standard
      // chunked prefill over it: ForwardChunk takes its RoPE start from the
      // cache's seq_len, so the rows land at exactly positions [a, b) with
      // the same floats the original pass produced (chunked prefill is
      // bit-identical at any boundary — the house invariant).
      TZLLM_RETURN_IF_ERROR(kv->RewindFill(a));
      const Status refilled = executor_->PrefillChunk(
          span.data(), b - a, s->per_position, kv, nullptr);
      if (!refilled.ok()) {
        Status surface = refilled;
        if (refilled.code() == ErrorCode::kDataCorruption) {
          // The re-prefill's own pin quarantined more spilled pages (they
          // sit below `idx` — its attention reads them). Fold them in and
          // restart from the new lowest range.
          std::vector<int> more;
          const Status probed = kv->ProbeLostPages(&more);
          if (!probed.ok()) {
            surface = probed;
          } else if (!more.empty()) {
            const Status absorbed = absorb(more);
            if (absorbed.ok()) {
              continue;
            }
            surface = absorbed;
          }
        }
        // Leave the marks honest before surfacing: positions past `a` are
        // unreliable now.
        (void)kv->RewindFill(a);  // Cannot fail for an in-range position.
        return surface;
      }
      pending.erase(pending.begin());
      ++healed;
    }
    TZLLM_RETURN_IF_ERROR(kv->RewindFill(seq));
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    s->pages_recomputed += static_cast<int>(healed);
    kv_recovery_stats_.pages_recomputed += healed;
    ++kv_recovery_stats_.recoveries;
    kv_recovery_stats_.recompute_ms += ms;
    *recovered = true;
    TZLLM_LOG_WARN("llm-ta",
                   "session %llu lost %llu KV pages to REE misbehavior; "
                   "recomputed them from token history (%.2f ms)",
                   static_cast<unsigned long long>(s->sid),
                   static_cast<unsigned long long>(healed), ms);
  }
  return OkStatus();
}

Status LlmTa::RetryWithKvRecovery(const std::vector<Session*>& sessions,
                                  const std::function<Status()>& step) {
  for (;;) {
    const Status st = step();
    if (st.ok() || st.code() != ErrorCode::kDataCorruption) {
      return st;
    }
    // A spilled page failed its integrity check while the step pinned the
    // cache. Corruption can only surface at pin time — before any append —
    // so no partial step state exists and rerunning the step is safe.
    bool recovered = false;
    TZLLM_RETURN_IF_ERROR(RecoverLostKv(sessions, &recovered));
    if (!recovered) {
      return st;  // Not a lost-page condition (or recovery is disabled).
    }
    // Terminates: every pass through here healed >= 1 page and the
    // per-session budget (kv_recompute_max) is finite.
  }
}

// --- Handle-based session API. --------------------------------------------

Result<SessionId> LlmTa::AdmitSession(const std::string& prompt,
                                      int max_new_tokens,
                                      const Sampler::Options& sampling) {
  if (!loaded_) {
    return Status(ErrorCode::kFailedPrecondition, "no model loaded");
  }
  if (max_new_tokens < 0) {
    return InvalidArgument("max_new_tokens must be >= 0");
  }
  if (engine_options_.max_sessions == 1 && !sessions_.empty()) {
    // The legacy single-session contract, verbatim: a 1-slot TA refuses a
    // second Begin as a precondition failure, not a capacity condition.
    return Status(ErrorCode::kFailedPrecondition,
                  "a generation session is already active (Finish it first)");
  }
  Session s;
  s.prompt_tokens = tokenizer_->Encode(prompt);
  if (s.prompt_tokens.empty()) {
    return InvalidArgument("empty prompt");
  }
  TZLLM_ASSIGN_OR_RETURN(slot, kv_arena_->Acquire());
  s.sid = next_sid_++;
  s.slot = slot;
  // Cross-session prefix sharing: if a registered prompt prefix matches,
  // the fresh cache maps its read-only pages and prefill resumes past them.
  // Exact-token match against KV rows produced by this same engine
  // configuration, and chunked prefill is bit-identical at any boundary —
  // so adoption changes TTFT, never a logit.
  const int adopted = kv_arena_->AdoptPrefix(slot, s.prompt_tokens);
  s.prefill_pos = adopted;
  // Mirror Prefill's dispatch exactly so the chunked prompt runs the same
  // schedule the one-shot call would have.
  s.per_position = engine_options_.use_reference_kernels ||
                   engine_options_.prefill_batch <= 1 ||
                   s.prompt_tokens.size() <= 1;
  s.remaining = max_new_tokens;
  s.sampling = sampling;
  s.sampler = std::make_unique<Sampler>(sampling);
  s.logits.resize(spec_->config().vocab_size);
  const SessionId sid = s.sid;
  sessions_.emplace(sid, std::move(s));
  return sid;
}

Result<bool> LlmTa::PrefillSessionChunk(SessionId sid) {
  Session* s = FindSession(sid);
  if (s == nullptr) {
    return Status(ErrorCode::kFailedPrecondition, "no active session");
  }
  if (s->prefilled) {
    return true;
  }
  KvCache* kv = kv_arena_->cache(s->slot);
  const int total = static_cast<int>(s->prompt_tokens.size());
  const int quantum = std::max(1, engine_options_.prefill_batch);
  const int m = std::min(quantum, total - s->prefill_pos);
  const bool last = s->prefill_pos + m == total;
  // Wrapped in KV recovery: a tampered/dropped REE spill blob surfaces as
  // kDataCorruption when the chunk pins the cache; the lost pages are then
  // re-prefilled from token history and the chunk reruns.
  TZLLM_RETURN_IF_ERROR(RetryWithKvRecovery({s}, [&]() {
    return executor_->PrefillChunk(
        s->prompt_tokens.data() + s->prefill_pos, m, s->per_position, kv,
        last ? s->logits.data() : nullptr);
  }));
  s->prefill_pos += m;
  if (last) {
    s->prefilled = true;
    s->next_token = s->sampler->Sample(s->logits);
    // The fully-prefilled prompt becomes a shareable prefix: later sessions
    // with the same leading tokens map these pages read-only (our own next
    // append copies-on-write off the shared tail page). No-op when paging
    // or sharing is disabled.
    TZLLM_RETURN_IF_ERROR(
        kv_arena_->RegisterPrefix(s->slot, s->prompt_tokens));
  }
  return s->prefilled;
}

Result<SessionId> LlmTa::BeginSession(const std::string& prompt,
                                      int max_new_tokens,
                                      const Sampler::Options& sampling) {
  TZLLM_ASSIGN_OR_RETURN(sid, AdmitSession(prompt, max_new_tokens, sampling));
  // Run the whole prompt through in one go — the non-serving behavior. A
  // failed prefill abandons the admission so the slot is not leaked.
  for (;;) {
    auto finished = PrefillSessionChunk(sid);
    if (!finished.ok()) {
      CloseSession(FindSession(sid));
      return finished.status();
    }
    if (*finished) {
      return sid;
    }
  }
}

Status LlmTa::DecodeSessions(const std::vector<SessionId>& sids) {
  if (!loaded_) {
    return FailedPrecondition("no model loaded");
  }
  if (sids.empty()) {
    return OkStatus();
  }
  std::vector<Session*> batch;
  batch.reserve(sids.size());
  std::set<SessionId> seen;
  for (SessionId sid : sids) {
    Session* s = FindSession(sid);
    if (s == nullptr) {
      return FailedPrecondition("decode batch names an inactive session");
    }
    if (!s->prefilled) {
      return FailedPrecondition(
          "decode batch names a session still in prefill");
    }
    if (SessionStopped(*s)) {
      return FailedPrecondition("decode batch names a finished session");
    }
    if (!seen.insert(sid).second) {
      return InvalidArgument("decode batch lists a session twice");
    }
    batch.push_back(s);
  }
  // Groups of decode_batch sessions (0 = everything at once). Sessions are
  // independent, so the grouping changes scheduling only, never a logit.
  const int group = engine_options_.decode_batch > 0
                        ? engine_options_.decode_batch
                        : static_cast<int>(batch.size());
  std::vector<TransformerExecutor::DecodeEntry> entries;
  auto run_group = [&](size_t off, int n) -> Status {
    entries.resize(n);
    std::vector<Session*> group(batch.begin() + off, batch.begin() + off + n);
    for (int i = 0; i < n; ++i) {
      Session* s = group[i];
      // Same per-token order as the solo loop: emit, decode, then sample
      // the successor below.
      s->output_tokens.push_back(s->next_token);
      entries[i].token = s->next_token;
      entries[i].kv = kv_arena_->cache(s->slot);
      entries[i].logits = s->logits.data();
    }
    // Only the step itself is retried on a lost spill blob — the token
    // pushes above are not rerun (corruption surfaces at pin time, before
    // the step appends anything).
    TZLLM_RETURN_IF_ERROR(RetryWithKvRecovery(group, [&]() {
      return executor_->DecodeStepBatch(entries.data(), n);
    }));
    for (int i = 0; i < n; ++i) {
      Session* s = batch[off + i];
      s->next_token = s->sampler->Sample(s->logits);
      --s->remaining;
    }
    return OkStatus();
  };
  if (!kv_arena_->paged()) {
    for (size_t off = 0; off < batch.size();
         off += static_cast<size_t>(group)) {
      const int n = static_cast<int>(
          std::min(static_cast<size_t>(group), batch.size() - off));
      TZLLM_RETURN_IF_ERROR(run_group(off, n));
    }
    return OkStatus();
  }
  // Paged: a decode step pins every page of every session in its group, so
  // greedily cap each group to what the pool can hold resident at once
  // (PageCount + 2 per session: the step's append may open a page, and a
  // shared tail page may privatize). An over-subscribed pool then decodes
  // in several smaller steps — more ticks, never a wedge, and still the
  // same per-session floats.
  const uint64_t frames = static_cast<uint64_t>(kv_arena_->pool()->frames());
  size_t off = 0;
  while (off < batch.size()) {
    int n = 0;
    uint64_t need_sum = 0;
    while (off + n < batch.size() && n < group) {
      const uint64_t need = static_cast<uint64_t>(
          kv_arena_->cache(batch[off + n]->slot)->PageCount() + 2);
      if (n > 0 && need_sum + need > frames) {
        break;
      }
      need_sum += need;
      ++n;
    }
    TZLLM_RETURN_IF_ERROR(run_group(off, n));
    off += static_cast<size_t>(n);
  }
  return OkStatus();
}

Result<int> LlmTa::StepSession(SessionId sid, int max_steps) {
  Session* s = FindSession(sid);
  if (s == nullptr) {
    return Status(ErrorCode::kFailedPrecondition, "no active session");
  }
  // Finish any outstanding prefill first (a session restored mid-prefill
  // resumes here).
  while (!s->prefilled) {
    auto finished = PrefillSessionChunk(sid);
    if (!finished.ok()) {
      return finished.status();
    }
  }
  // Token-for-token the classic Generate loop: check stop conditions before
  // emitting, decode the emitted token, then sample its successor.
  KvCache* kv = kv_arena_->cache(s->slot);
  int emitted = 0;
  while (emitted < max_steps && s->remaining > 0) {
    if (s->next_token == Tokenizer::kEos ||
        kv->seq_len() >= spec_->config().max_ctx) {
      s->done = true;
      break;
    }
    s->output_tokens.push_back(s->next_token);
    TZLLM_RETURN_IF_ERROR(RetryWithKvRecovery({s}, [&]() {
      return executor_->DecodeStepInto(s->next_token, kv, s->logits.data());
    }));
    s->next_token = s->sampler->Sample(s->logits);
    --s->remaining;
    ++emitted;
  }
  return emitted;
}

Result<GenerationResult> LlmTa::FinishSession(SessionId sid) {
  Session* s = FindSession(sid);
  if (s == nullptr) {
    return Status(ErrorCode::kFailedPrecondition, "no active session");
  }
  GenerationResult result;
  result.prompt_tokens = std::move(s->prompt_tokens);
  result.output_tokens = std::move(s->output_tokens);
  result.text = tokenizer_->Decode(result.output_tokens);
  CloseSession(s);
  return result;
}

Status LlmTa::AbandonSession(SessionId sid) {
  Session* s = FindSession(sid);
  if (s == nullptr) {
    return FailedPrecondition("no active session");
  }
  CloseSession(s);
  return OkStatus();
}

Result<GenerationResult> LlmTa::Generate(const std::string& prompt,
                                         int max_new_tokens,
                                         const Sampler::Options& sampling) {
  TZLLM_ASSIGN_OR_RETURN(sid,
                         BeginSession(prompt, max_new_tokens, sampling));
  while (!session_done(sid)) {
    auto stepped = StepSession(sid, FindSession(sid)->remaining);
    if (!stepped.ok()) {
      // Don't leave a half-dead session latched (or its KV slot leaked).
      TZLLM_RETURN_IF_ERROR(AbandonSession(sid));
      return stepped.status();
    }
    if (*stepped == 0) {
      break;
    }
  }
  return FinishSession(sid);
}

// --- Session queries. ------------------------------------------------------

bool LlmTa::session_active(SessionId sid) const {
  return FindSession(sid) != nullptr;
}

bool LlmTa::session_prefilled(SessionId sid) const {
  const Session* s = FindSession(sid);
  return s != nullptr && s->prefilled;
}

bool LlmTa::session_done(SessionId sid) const {
  const Session* s = FindSession(sid);
  return s == nullptr || SessionStopped(*s);
}

const std::vector<TokenId>& LlmTa::session_tokens(SessionId sid) const {
  const Session* s = FindSession(sid);
  return s != nullptr ? s->output_tokens : no_tokens_;
}

int LlmTa::free_session_slots() const {
  return kv_arena_ != nullptr ? kv_arena_->free_slots() : 0;
}

bool LlmTa::session_done() const {
  // The pre-redesign semantics: with no session open there is nothing left
  // to step (the default-constructed session's budget was 0).
  return sessions_.size() == 1
             ? SessionStopped(sessions_.begin()->second)
             : true;
}

const std::vector<TokenId>& LlmTa::session_tokens() const {
  return sessions_.size() == 1 ? sessions_.begin()->second.output_tokens
                               : no_tokens_;
}

// --- Session checkpoint / restore. -----------------------------------------

namespace {

// Session-blob primitives (little-endian, explicit widths — the same idiom
// as the TZGUF metadata and KvCache snapshots). TZSESS02 extends the
// original TZSESS01 layout with the session id (right after the magic) and
// the prefill progress (after `done`), so a session preempted mid-prefill
// under the serving scheduler round-trips too.
constexpr char kSessionMagic[8] = {'T', 'Z', 'S', 'E', 'S', 'S', '0', '2'};

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU32(const std::vector<uint8_t>& in, size_t* off, uint32_t* v) {
  if (*off + 4 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(in[*off + i]) << (8 * i);
  }
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& in, size_t* off, uint64_t* v) {
  if (*off + 8 > in.size()) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(in[*off + i]) << (8 * i);
  }
  *off += 8;
  return true;
}

// Session checkpoints live beside the framework checkpoint but in their own
// flash files: the handle API seals to "<model_id>.sess.<sid>.ckpt" (one
// file per session, so N evicted sessions coexist); the legacy no-argument
// shims keep the original un-suffixed "<model_id>.sess.ckpt".
std::string SessionCheckpointId(const std::string& model_id) {
  return model_id + ".sess";
}

std::string SessionCheckpointId(const std::string& model_id, SessionId sid) {
  return model_id + ".sess." + std::to_string(sid);
}

// The serving runtime's fleet manifest lives beside the session blobs under
// one flash file per model ("<model_id>.serve.ckpt").
std::string ServeManifestId(const std::string& model_id) {
  return model_id + ".serve";
}

}  // namespace

Status LlmTa::BuildSessionBlob(Session* s, std::vector<uint8_t>* blob) {
  // Range-assign (not insert-at-end on the empty vector): gcc 12 -O2
  // misanalyzes the char* range insert as a 1-byte-destination memcpy
  // overflow.
  blob->assign(kSessionMagic, kSessionMagic + sizeof(kSessionMagic));
  PutU64(blob, s->sid);
  PutU32(blob, static_cast<uint32_t>(s->prompt_tokens.size()));
  for (TokenId t : s->prompt_tokens) {
    PutU32(blob, static_cast<uint32_t>(t));
  }
  PutU32(blob, static_cast<uint32_t>(s->output_tokens.size()));
  for (TokenId t : s->output_tokens) {
    PutU32(blob, static_cast<uint32_t>(t));
  }
  PutU32(blob, static_cast<uint32_t>(s->next_token));
  PutU32(blob, static_cast<uint32_t>(s->remaining));
  PutU32(blob, s->done ? 1 : 0);
  PutU32(blob, s->prefilled ? 1 : 0);
  PutU32(blob, static_cast<uint32_t>(s->prefill_pos));
  // Sampler options + RNG words: a restored non-greedy sampler must draw the
  // exact remaining sequence.
  PutU32(blob, s->sampling.greedy ? 1 : 0);
  PutU32(blob, static_cast<uint32_t>(s->sampling.top_k));
  uint64_t temp_bits = 0;
  static_assert(sizeof(temp_bits) == sizeof(s->sampling.temperature));
  std::memcpy(&temp_bits, &s->sampling.temperature, sizeof(temp_bits));
  PutU64(blob, temp_bits);
  PutU64(blob, s->sampling.seed);
  uint64_t rng_state[4];
  s->sampler->SaveRngState(rng_state);
  for (uint64_t word : rng_state) {
    PutU64(blob, word);
  }
  // Paged caches restore any spilled page first; a lost page (tampered or
  // dropped REE blob) is recomputed from token history and the
  // serialization retried, so the sealed KV is never poisoned.
  const size_t header_end = blob->size();
  return RetryWithKvRecovery({s}, [&]() {
    blob->resize(header_end);  // Discard any partial KV from a failed try.
    return kv_arena_->cache(s->slot)->SerializeState(blob);
  });
}

Result<uint64_t> LlmTa::SaveSessionBlob(const std::string& ckpt_id,
                                        const std::vector<uint8_t>& blob) {
  CheckpointService checkpoints(&platform_->flash());
  TZLLM_ASSIGN_OR_RETURN(saved, checkpoints.Save(ckpt_id, model_key_, blob));
  ++ckpt_saves_;
  // ckpt_drop fault: the REE discards the blob it just promised to keep —
  // the restore path must then surface kNotFound, and the serving runtime
  // restarts the session from its prompt.
  if (serve_fault_plan_.active() &&
      serve_fault_plan_.fault == ServeFaultClass::kCkptDrop &&
      serve_fault_plan_.Hits(ckpt_saves_)) {
    TZLLM_RETURN_IF_ERROR(checkpoints.Delete(ckpt_id));
    ++ckpt_drops_injected_;
    TZLLM_LOG_WARN("llm-ta", "ckpt_drop fault: dropped %s after sealing",
                   ckpt_id.c_str());
  }
  return saved;
}

Status LlmTa::SealSession(Session* s, const std::string& ckpt_id) {
  std::vector<uint8_t> blob;
  TZLLM_RETURN_IF_ERROR(BuildSessionBlob(s, &blob));
  TZLLM_ASSIGN_OR_RETURN(saved, SaveSessionBlob(ckpt_id, blob));
  const SessionId sid = s->sid;
  // Eviction: the sealed blob is now the only copy of the session — scrub
  // the KV plaintext, free the slot and drop the live state.
  CloseSession(s);
  TZLLM_LOG_INFO("llm-ta", "session %llu checkpoint sealed (%llu bytes)",
                 static_cast<unsigned long long>(sid),
                 static_cast<unsigned long long>(saved));
  return OkStatus();
}

Status LlmTa::SnapshotSession(SessionId sid) {
  Session* s = FindSession(sid);
  if (s == nullptr) {
    return FailedPrecondition("no active session to snapshot");
  }
  std::vector<uint8_t> blob;
  TZLLM_RETURN_IF_ERROR(BuildSessionBlob(s, &blob));
  TZLLM_ASSIGN_OR_RETURN(
      saved, SaveSessionBlob(SessionCheckpointId(model_id_, sid), blob));
  (void)saved;  // Size is interesting only for the eviction log line.
  return OkStatus();
}

Status LlmTa::CheckpointSession(SessionId sid) {
  Session* s = FindSession(sid);
  if (s == nullptr) {
    return FailedPrecondition("no active session to checkpoint");
  }
  return SealSession(s, SessionCheckpointId(model_id_, sid));
}

Status LlmTa::CheckpointSession() {
  auto sole = SoleSession();
  if (!sole.ok()) {
    return sole.status();
  }
  return SealSession(*sole, SessionCheckpointId(model_id_));
}

Result<SessionId> LlmTa::RestoreSessionBlob(const std::string& ckpt_id) {
  CheckpointService checkpoints(&platform_->flash());
  auto blob = checkpoints.Restore(ckpt_id, model_key_);
  if (!blob.ok()) {
    return blob.status();
  }
  size_t off = 0;
  if (blob->size() < sizeof(kSessionMagic) ||
      std::memcmp(blob->data(), kSessionMagic, sizeof(kSessionMagic)) != 0) {
    return Status(ErrorCode::kDataCorruption, "session checkpoint bad magic");
  }
  off = sizeof(kSessionMagic);
  auto read_tokens = [&](std::vector<TokenId>* out) -> bool {
    uint32_t n = 0;
    if (!GetU32(*blob, &off, &n) || n > (1u << 24)) {
      return false;
    }
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t t = 0;
      if (!GetU32(*blob, &off, &t)) {
        return false;
      }
      (*out)[i] = static_cast<TokenId>(t);
    }
    return true;
  };
  Session s;
  uint64_t sid = 0;
  uint32_t next_token = 0, remaining = 0, done = 0, prefilled = 0,
           prefill_pos = 0, greedy = 0, top_k = 0;
  uint64_t temp_bits = 0, seed = 0, rng_state[4] = {};
  bool ok = GetU64(*blob, &off, &sid) && read_tokens(&s.prompt_tokens) &&
            read_tokens(&s.output_tokens) &&
            GetU32(*blob, &off, &next_token) &&
            GetU32(*blob, &off, &remaining) && GetU32(*blob, &off, &done) &&
            GetU32(*blob, &off, &prefilled) &&
            GetU32(*blob, &off, &prefill_pos) &&
            GetU32(*blob, &off, &greedy) && GetU32(*blob, &off, &top_k) &&
            GetU64(*blob, &off, &temp_bits) && GetU64(*blob, &off, &seed);
  for (uint64_t& word : rng_state) {
    ok = ok && GetU64(*blob, &off, &word);
  }
  if (!ok) {
    return Status(ErrorCode::kDataCorruption, "session checkpoint truncated");
  }
  if (prefill_pos > s.prompt_tokens.size() ||
      (prefilled != 0 && prefill_pos != s.prompt_tokens.size())) {
    return Status(ErrorCode::kDataCorruption,
                  "session checkpoint prefill marks are inconsistent");
  }
  if (sid == 0 || FindSession(sid) != nullptr) {
    return FailedPrecondition(
        "a session with this id is already active (Finish it first)");
  }
  s.sid = sid;
  s.next_token = static_cast<TokenId>(next_token);
  s.remaining = static_cast<int>(remaining);
  s.done = done != 0;
  s.prefilled = prefilled != 0;
  s.prefill_pos = static_cast<int>(prefill_pos);
  s.per_position = engine_options_.use_reference_kernels ||
                   engine_options_.prefill_batch <= 1 ||
                   s.prompt_tokens.size() <= 1;
  s.sampling.greedy = greedy != 0;
  s.sampling.top_k = static_cast<int>(top_k);
  std::memcpy(&s.sampling.temperature, &temp_bits,
              sizeof(s.sampling.temperature));
  s.sampling.seed = seed;
  s.sampler = std::make_unique<Sampler>(s.sampling);
  s.sampler->LoadRngState(rng_state);
  s.logits.resize(spec_->config().vocab_size);
  TZLLM_ASSIGN_OR_RETURN(slot, kv_arena_->Acquire());
  s.slot = slot;
  Status restored = kv_arena_->cache(slot)->RestoreState(
      blob->data() + off, blob->size() - off);
  if (!restored.ok()) {
    const Status released = kv_arena_->Release(slot);
    if (!released.ok()) {
      TZLLM_LOG_ERROR("llm-ta", "slot release after failed restore: %s",
                      released.ToString().c_str());
    }
    return restored;
  }
  next_sid_ = std::max(next_sid_, sid + 1);
  sessions_.emplace(sid, std::move(s));
  return sid;
}

Result<SessionId> LlmTa::RestoreSession(SessionId sid) {
  if (!loaded_) {
    return Status(ErrorCode::kFailedPrecondition, "no model loaded");
  }
  TZLLM_ASSIGN_OR_RETURN(
      restored, RestoreSessionBlob(SessionCheckpointId(model_id_, sid)));
  if (restored != sid) {
    // The blob under this sid's file names another session: flash-level
    // tampering or file mixup either way.
    TZLLM_RETURN_IF_ERROR(AbandonSession(restored));
    return Status(ErrorCode::kDataCorruption,
                  "session checkpoint names a different session");
  }
  return sid;
}

Status LlmTa::RestoreSession() {
  if (!loaded_) {
    return FailedPrecondition("no model loaded");
  }
  if (!sessions_.empty()) {
    return FailedPrecondition(
        "a generation session is already active (Finish it first)");
  }
  auto sid = RestoreSessionBlob(SessionCheckpointId(model_id_));
  if (!sid.ok()) {
    return sid.status();
  }
  return OkStatus();
}

bool LlmTa::HasSessionCheckpoint(SessionId sid) const {
  CheckpointService checkpoints(&platform_->flash());
  return !model_id_.empty() &&
         checkpoints.Exists(SessionCheckpointId(model_id_, sid));
}

bool LlmTa::HasSessionCheckpoint() const {
  CheckpointService checkpoints(&platform_->flash());
  return !model_id_.empty() &&
         checkpoints.Exists(SessionCheckpointId(model_id_));
}

// --- Serving-fleet manifest (whole-TA crash recovery). ----------------------
// The TA stores/loads sealed bytes only; the manifest format is
// ServingRuntime's (src/serve/serving.cc). Sealed under the model key like
// every other checkpoint, so a tampered manifest fails restore instead of
// resurrecting a forged fleet.

Result<uint64_t> LlmTa::SaveServeManifest(
    const std::vector<uint8_t>& manifest) {
  if (!loaded_) {
    return Status(ErrorCode::kFailedPrecondition, "no model loaded");
  }
  CheckpointService checkpoints(&platform_->flash());
  return checkpoints.Save(ServeManifestId(model_id_), model_key_, manifest);
}

Result<std::vector<uint8_t>> LlmTa::LoadServeManifest() {
  if (!loaded_) {
    return Status(ErrorCode::kFailedPrecondition, "no model loaded");
  }
  CheckpointService checkpoints(&platform_->flash());
  return checkpoints.Restore(ServeManifestId(model_id_), model_key_);
}

bool LlmTa::HasServeManifest() const {
  CheckpointService checkpoints(&platform_->flash());
  return !model_id_.empty() &&
         checkpoints.Exists(ServeManifestId(model_id_));
}

Status LlmTa::DropServeManifest() {
  if (!loaded_) {
    return FailedPrecondition("no model loaded");
  }
  CheckpointService checkpoints(&platform_->flash());
  return checkpoints.Delete(ServeManifestId(model_id_));
}

// --- Legacy single-session shims. ------------------------------------------

Result<int> LlmTa::StepSession(int max_steps) {
  auto sole = SoleSession();
  if (!sole.ok()) {
    return sole.status();
  }
  return StepSession((*sole)->sid, max_steps);
}

Result<GenerationResult> LlmTa::FinishSession() {
  auto sole = SoleSession();
  if (!sole.ok()) {
    return sole.status();
  }
  return FinishSession((*sole)->sid);
}

Status LlmTa::Unload() {
  if (!loaded_ && spec_ == nullptr) {
    return OkStatus();
  }
  const SecureRegionStats params =
      tee_os_->RegionStats(SecureRegionId::kParams);
  if (params.protected_bytes > 0) {
    auto scrub =
        tee_os_->Shrink(ta_, SecureRegionId::kParams, params.protected_bytes);
    if (!scrub.ok()) {
      return scrub.status();
    }
  }
  const SecureRegionStats scratch =
      tee_os_->RegionStats(SecureRegionId::kScratch);
  if (scratch.protected_bytes > 0) {
    auto scrub = tee_os_->Shrink(ta_, SecureRegionId::kScratch,
                                 scratch.protected_bytes);
    if (!scrub.ok()) {
      return scrub.status();
    }
  }
  loaded_ = false;
  sessions_.clear();
  executor_.reset();  // Before npu_backend_: the executor points into it.
  npu_backend_.reset();
  kv_arena_.reset();
  weights_.reset();
  npu_ctx_bytes_ = 0;
  return OkStatus();
}

}  // namespace tzllm
