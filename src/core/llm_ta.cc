#include "src/core/llm_ta.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/llm/cost_model.h"
#include "src/llm/graph.h"

namespace tzllm {

LlmTa::LlmTa(SocPlatform* platform, TeeOs* tee_os, TzDriver* tz_driver,
             const EngineOptions& engine_options, TeeNpuDriver* npu_driver)
    : platform_(platform),
      tee_os_(tee_os),
      tz_driver_(tz_driver),
      engine_options_(engine_options),
      npu_driver_(npu_driver) {}

Status LlmTa::Attach() {
  auto ta = tee_os_->CreateTa("llm-ta");
  if (!ta.ok()) {
    return ta.status();
  }
  ta_ = *ta;
  return OkStatus();
}

Status LlmTa::LoadModel(const std::string& model_id, SchedulePolicy policy) {
  if (loaded_) {
    return FailedPrecondition("a model is already loaded");
  }
  model_id_ = model_id;

  // 1. Key: only the TEE can unwrap; only this TA is authorized.
  auto key = tee_os_->GetModelKey(ta_, model_id);
  if (!key.ok()) {
    return key.status();
  }
  model_key_ = *key;

  // 2. Metadata (decrypt + integrity check against flash tampering).
  auto meta = Tzguf::ReadMeta(&platform_->flash(), model_id, model_key_);
  if (!meta.ok()) {
    return meta.status();
  }
  meta_ = std::make_unique<TzgufMeta>(*meta);
  if (!meta_->materialized) {
    return FailedPrecondition(
        "LlmTa requires a materialized (functional) model");
  }
  spec_ = std::make_unique<ModelSpec>(ModelSpec::Create(meta_->config));

  // 3. Scratch region for KV cache / activations (also hosts NPU job
  //    execution contexts). Budgeted at the width the cache will actually
  //    store: ModelSpec::KvCacheBytes accounts the default f16 arena, and
  //    the f32 reference mode doubles it — accounted == resident in every
  //    mode, not just the production one. NPU prefill adds the job
  //    execution-context window (double-buffered cmd/iopt/in/out slots) at
  //    the region tail, so CreateJob's TZASC validation passes exactly
  //    because the budget covered it.
  // Reference mode and prefill_batch <= 1 force the per-position CPU path
  // (executor.cc), so NPU prefill is genuinely inert under them: no
  // job-context budget, no backend, no NPU-rate pricing — accounted ==
  // executed in those combinations too.
  const bool npu_prefill_active = engine_options_.npu_prefill &&
                                  !engine_options_.use_reference_kernels &&
                                  engine_options_.prefill_batch > 1;
  if (npu_prefill_active) {
    if (npu_driver_ == nullptr) {
      return FailedPrecondition(
          "NPU prefill requested (EngineOptions::npu_prefill) but the "
          "platform has no NPU co-driver (RuntimeConfig::use_npu is off or "
          "TeeNpuDriver was not wired into this TA)");
    }
    npu_ctx_bytes_ = NpuBackend::ContextBytes(*spec_, engine_options_);
  }
  const uint64_t kv_width_factor =
      KvStorageFor(engine_options_) == KvStorage::kF32 ? 2 : 1;
  scratch_bytes_ =
      AlignUp(spec_->KvCacheBytes(spec_->config().max_ctx) * kv_width_factor +
                  spec_->ActivationBytes() + npu_ctx_bytes_ + 64 * kKiB,
              kPageSize);
  auto scratch =
      tee_os_->ExtendAllocated(ta_, SecureRegionId::kScratch, scratch_bytes_);
  if (!scratch.ok()) {
    return scratch.status();
  }
  TZLLM_RETURN_IF_ERROR(
      tee_os_->ExtendProtected(ta_, SecureRegionId::kScratch, scratch_bytes_));

  // 4. Pipelined restoration with real side effects.
  TZLLM_RETURN_IF_ERROR(RestoreParameters(policy));

  // 5. Framework state: tokenizer (checkpointable) + executor, with the
  //    prefill backend seam wired to the NPU co-driver when requested.
  tokenizer_ = std::make_unique<Tokenizer>(spec_->config().vocab_size);
  weights_ = std::make_unique<SecureWeightSource>(this);
  kv_ = std::make_unique<KvCache>(*spec_, KvStorageFor(engine_options_),
                                  KernelsFor(engine_options_));
  if (npu_prefill_active) {
    NpuBackendConfig backend_config;
    backend_config.platform = platform_;
    backend_config.driver = npu_driver_;
    backend_config.ta = ta_;
    backend_config.ctx_bytes = npu_ctx_bytes_;
    // Job contexts live in the tail of this TA's scratch extent. The extent
    // address comes from the allocation itself (not RegionBase) so the math
    // stays right even if the single-owner region model ever loosens.
    backend_config.ctx_base =
        scratch->addr + scratch_bytes_ - npu_ctx_bytes_;
    // The payloads must run the engine's own table: the fused layer tail
    // carries norm/silu glue whose floats have to match the CPU path
    // bit-for-bit, not just the (table-invariant) integer-dot rows.
    backend_config.kernels = KernelsFor(engine_options_);
    backend_config.fuse_jobs = engine_options_.npu_fusion;
    npu_backend_ =
        std::make_unique<NpuBackend>(backend_config);
  }
  executor_ = std::make_unique<TransformerExecutor>(
      spec_.get(), weights_.get(), engine_options_, npu_backend_.get());
  loaded_ = true;
  return OkStatus();
}

Status LlmTa::LoadExtent(uint64_t offset, uint64_t bytes) {
  // The CA loads the encrypted extent from flash into the *unprotected*
  // freshly allocated CMA memory: the flash controller's DMA is checked
  // against the TZASC, so this only works because extend_protected has not
  // yet covered the extent (paper §4.2 bounce-buffer elimination).
  const PhysAddr dst = tee_os_->RegionBase(SecureRegionId::kParams) + offset;
  TZLLM_RETURN_IF_ERROR(platform_->tzasc().CheckDmaAccess(
      DeviceId::kFlashController, dst, bytes));
  std::vector<uint8_t> buf(bytes);
  TZLLM_RETURN_IF_ERROR(platform_->flash().PeekBytes(meta_->DataFile(), offset,
                                                     bytes, buf.data()));
  TZLLM_RETURN_IF_ERROR(platform_->dram().Write(dst, buf.data(), bytes));
  // Now cover it with the TZASC before plaintext ever exists.
  return tee_os_->ExtendProtected(ta_, SecureRegionId::kParams, bytes);
}

Status LlmTa::DecryptExtent(uint64_t offset, uint64_t bytes) {
  const PhysAddr base = tee_os_->RegionBase(SecureRegionId::kParams);
  std::vector<uint8_t> buf(bytes);
  TZLLM_RETURN_IF_ERROR(platform_->dram().Read(base + offset, buf.data(),
                                               bytes));
  Tzguf::DecryptExtent(model_key_, model_id_, offset, buf.data(), bytes);
  // Verify every tensor fully contained in this extent (Iago defense for
  // model loading, §6).
  for (const TensorSpec& t : spec_->tensors()) {
    if (t.file_offset >= offset && t.file_offset + t.bytes <= offset + bytes) {
      TZLLM_RETURN_IF_ERROR(
          Tzguf::VerifyTensor(*meta_, t.index,
                              buf.data() + (t.file_offset - offset),
                              t.data_bytes));
    }
  }
  return platform_->dram().Write(base + offset, buf.data(), bytes);
}

Status LlmTa::RestoreParameters(SchedulePolicy policy) {
  const ComputeGraph graph = ComputeGraph::BuildPrefill(*spec_);
  const CostModel cost(spec_.get());

  RestorePlanOptions options;
  // NPU availability comes from the runtime wiring (RuntimeConfig::use_npu
  // hands this TA the co-driver) plus the engine knobs, not a hardcoded
  // false: the plan prices prefill compute ops at NPU rates exactly when
  // the configuration routes prefill there. npu_ctx_bytes_ is nonzero
  // exactly when LoadModel decided NPU prefill is active (driver wired,
  // npu_prefill set, not forced onto the per-position CPU path) — one
  // predicate, no second spelling to drift. The plan is nominal per model
  // (n_tokens=16 below), so per-request divergence — e.g. a single-token
  // prompt taking the per-position CPU path — is outside its scope either
  // way.
  options.npu_available = npu_ctx_bytes_ > 0;
  options.decrypt = true;
  options.preemptible = policy == SchedulePolicy::kPriorityPreemptive;
  options.chunk_bytes = 256 * kKiB;  // Functional models are small.

  RestoreHooks hooks;
  hooks.plan_alloc = [this](uint64_t bytes) -> Result<SimDuration> {
    auto extent =
        tee_os_->ExtendAllocated(ta_, SecureRegionId::kParams, bytes);
    if (!extent.ok()) {
      return extent.status();
    }
    return extent->cpu_time;
  };
  hooks.load = [this](uint64_t offset, uint64_t bytes) {
    return LoadExtent(offset, bytes);
  };
  hooks.decrypt = [this](uint64_t offset, uint64_t bytes) {
    return DecryptExtent(offset, bytes);
  };

  auto plan = BuildRestorePlan(*spec_, graph, /*n_tokens=*/16, cost, options,
                               hooks);
  if (!plan.ok()) {
    return plan.status();
  }
  PipelineConfig config;
  config.policy = policy;
  PipelineExecutor executor(&platform_->sim(), config);
  restore_result_ = executor.RunToCompletion(std::move(plan->ops));
  return restore_result_.status;
}

Result<const uint8_t*> LlmTa::SecureWeightSource::TensorData(
    int tensor_index) {
  auto it = cache_.find(tensor_index);
  if (it != cache_.end()) {
    return static_cast<const uint8_t*>(it->second.data());
  }
  LlmTa* ta = ta_;
  const TensorSpec& spec = ta->spec_->tensor(tensor_index);
  const PhysAddr addr =
      ta->tee_os_->RegionBase(SecureRegionId::kParams) + spec.file_offset;
  // A real TA reads through its secure VA mapping; the TEE OS enforces that
  // the mapping exists. We model the same check explicitly.
  if (!ta->tee_os_->TaCanAccess(ta->ta_, addr, spec.data_bytes)) {
    return Status(ErrorCode::kPermissionDenied,
                  "tensor not mapped into TA address space");
  }
  std::vector<uint8_t> buf(spec.data_bytes);
  Status st = ta->platform_->dram().Read(addr, buf.data(), spec.data_bytes);
  if (!st.ok()) {
    return st;
  }
  auto [slot, inserted] = cache_.emplace(tensor_index, std::move(buf));
  return static_cast<const uint8_t*>(slot->second.data());
}

Result<GenerationResult> LlmTa::Generate(const std::string& prompt,
                                         int max_new_tokens,
                                         const Sampler::Options& sampling) {
  if (!loaded_) {
    return Status(ErrorCode::kFailedPrecondition, "no model loaded");
  }
  GenerationResult result;
  result.prompt_tokens = tokenizer_->Encode(prompt);
  if (result.prompt_tokens.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty prompt");
  }
  kv_->Reset();
  auto logits = executor_->Prefill(result.prompt_tokens, kv_.get());
  if (!logits.ok()) {
    return logits.status();
  }
  Sampler sampler(sampling);
  TokenId token = sampler.Sample(*logits);
  // Reusable logits buffer: the decode loop allocates nothing per step.
  std::vector<float> next(spec_->config().vocab_size);
  for (int i = 0; i < max_new_tokens; ++i) {
    if (token == Tokenizer::kEos || kv_->seq_len() >= spec_->config().max_ctx) {
      break;
    }
    result.output_tokens.push_back(token);
    Status st = executor_->DecodeStepInto(token, kv_.get(), next.data());
    if (!st.ok()) {
      return st;
    }
    token = sampler.Sample(next);
  }
  result.text = tokenizer_->Decode(result.output_tokens);
  return result;
}

Status LlmTa::Unload() {
  if (!loaded_ && spec_ == nullptr) {
    return OkStatus();
  }
  const SecureRegionStats params =
      tee_os_->RegionStats(SecureRegionId::kParams);
  if (params.protected_bytes > 0) {
    auto scrub =
        tee_os_->Shrink(ta_, SecureRegionId::kParams, params.protected_bytes);
    if (!scrub.ok()) {
      return scrub.status();
    }
  }
  const SecureRegionStats scratch =
      tee_os_->RegionStats(SecureRegionId::kScratch);
  if (scratch.protected_bytes > 0) {
    auto scrub = tee_os_->Shrink(ta_, SecureRegionId::kScratch,
                                 scratch.protected_bytes);
    if (!scrub.ok()) {
      return scrub.status();
    }
  }
  loaded_ = false;
  executor_.reset();  // Before npu_backend_: the executor points into it.
  npu_backend_.reset();
  weights_.reset();
  npu_ctx_bytes_ = 0;
  return OkStatus();
}

}  // namespace tzllm
