// Pipelined parameter restoration executor (paper §4.1, Figures 5 and 6).
//
// The restoration-extended computation graph is a set of operators over
// three hardware resources:
//   CPU lanes (4xA76): allocation, decryption, CPU computation;
//   NPU:               matmul computation (submitted through a pluggable
//                      hook so the real co-driver path provides the device);
//   IO engine:         parameter loading from flash.
//
// Scheduling policies (ablated in Figure 13):
//   kNoPipeline          — restoration fully precedes computation (strawman
//                          ordering; builder inserts a barrier);
//   kFifo                — ready operators run in creation order;
//   kPriority            — the paper's greedy rule: a ready CPU computation
//                          operator wins; otherwise the restoration operator
//                          belonging to the earliest computation operator;
//   kPriorityPreemptive  — kPriority + allocation/decryption split into
//                          micro-operators with preemption points (§4.1).

#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace tzllm {

enum class PipelineOpKind : uint8_t {
  kAlloc,
  kLoad,
  kDecrypt,
  kComputeCpu,
  kComputeNpu,
};

const char* PipelineOpKindName(PipelineOpKind kind);

enum class SchedulePolicy : uint8_t {
  kNoPipeline,
  kFifo,
  kPriority,
  kPriorityPreemptive,
};

struct PipelineOp {
  int id = 0;
  PipelineOpKind kind = PipelineOpKind::kComputeCpu;
  // Index of the computation operator this (restoration) operator belongs
  // to; computation operators carry their own index. Drives priority.
  int comp_index = 0;
  std::string label;
  SimDuration duration = 0;
  // Micro-operator count (>1 only for preemptible alloc/decrypt ops).
  uint32_t chunks = 1;
  std::vector<int> deps;
  uint64_t bytes = 0;
  // Side effect executed at completion (load/decrypt hooks in functional
  // mode). A failure aborts the pipeline.
  std::function<Status()> on_complete;
};

struct PipelineConfig {
  int cpu_lanes = 4;
  SchedulePolicy policy = SchedulePolicy::kPriorityPreemptive;
  // Concurrent allocation micro-operators are capped: CMA migration scales
  // to ~2x with multithreading (§2.4.2: 1.9 -> 3.8 GB/s), so at most two
  // lanes migrate at once.
  int max_alloc_concurrency = 2;
  bool record_trace = false;
};

struct PipelineResult {
  Status status;
  SimDuration makespan = 0;

  // Aggregate operator demand, for critical-path analysis (Figure 12).
  SimDuration sum_alloc = 0;
  SimDuration sum_load = 0;
  SimDuration sum_decrypt = 0;
  SimDuration sum_cpu_compute = 0;
  SimDuration sum_npu_compute = 0;

  // The three potential critical paths of §4.1 and their max (the
  // theoretical TTFT lower bound for any scheduling policy).
  SimDuration IoPath() const { return sum_load; }
  SimDuration CpuPath(int cpu_lanes, int alloc_lanes) const {
    return sum_cpu_compute + sum_decrypt / cpu_lanes +
           sum_alloc / alloc_lanes;
  }
  SimDuration ComputePath() const {
    return sum_cpu_compute + sum_npu_compute;
  }
  SimDuration LowerBound(int cpu_lanes, int alloc_lanes) const;

  TraceRecorder trace;
};

// NPU submission hook: (duration, completion callback). The TZ-LLM runtime
// plugs the TEE data-plane driver here; REE baselines plug the REE driver;
// the default runs a private single-server NPU.
using NpuSubmitFn =
    std::function<void(SimDuration, std::function<void(Status)>)>;

class PipelineExecutor {
 public:
  PipelineExecutor(Simulator* sim, const PipelineConfig& config);

  void set_npu_submit(NpuSubmitFn fn) { npu_submit_ = std::move(fn); }

  // Starts executing `ops` on the simulator; `done` fires when every op has
  // completed or the pipeline aborted. Non-blocking: co-simulates with any
  // other event sources on the same Simulator.
  void Start(std::vector<PipelineOp> ops,
             std::function<void(const PipelineResult&)> done);

  // Convenience: Start + run the simulator until the pipeline finishes.
  PipelineResult RunToCompletion(std::vector<PipelineOp> ops);

  bool running() const { return running_; }

 private:
  struct OpState {
    uint32_t chunks_left = 0;
    int deps_left = 0;
    bool dispatched = false;  // A chunk is currently on a resource.
    bool done = false;
  };

  void TryDispatch();
  void DispatchCpu();
  void DispatchIo();
  void DispatchNpu();
  void RunChunk(int op_id, const std::string& lane_name, int lane_slot);
  void OnOpComplete(int op_id);
  void Abort(Status status);
  void Finish();

  bool IsReady(int op_id) const;
  // Picks the best ready CPU op under the policy; -1 if none eligible.
  int PickCpuOp() const;

  Simulator* sim_;
  PipelineConfig config_;
  NpuSubmitFn npu_submit_;

  std::vector<PipelineOp> ops_;
  std::vector<OpState> state_;
  std::set<int> ready_cpu_;
  std::set<int> ready_io_;
  std::set<int> ready_npu_;
  int cpu_busy_ = 0;
  int alloc_running_ = 0;
  bool io_busy_ = false;
  bool npu_busy_ = false;  // Only used by the default internal NPU.
  int remaining_ops_ = 0;
  bool running_ = false;
  bool aborted_ = false;
  SimTime start_time_ = 0;
  PipelineResult result_;
  std::function<void(const PipelineResult&)> done_;
};

}  // namespace tzllm

#endif  // SRC_CORE_PIPELINE_H_
