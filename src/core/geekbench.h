// Geekbench workload model: the 16 subtests of Figures 2 and 16 with
// per-workload TLB sensitivity (drives the S2PT stage-2 translation
// overhead) and memory intensity (drives interference from CMA migration
// bandwidth). Scores are synthetic but the *relative degradations* — the
// quantities the paper argues about — emerge from the cost models.

#ifndef SRC_CORE_GEEKBENCH_H_
#define SRC_CORE_GEEKBENCH_H_

#include <string>
#include <vector>

#include "src/common/calibration.h"
#include "src/common/units.h"

namespace tzllm {

struct GeekbenchWorkload {
  std::string name;
  // Fraction of runtime attributable to TLB-miss page walks (4 KB stage-2
  // mappings multiply this by kS2ptWalkInflation). Calibrated so the S2PT
  // overhead percentages match Figure 2.
  double tlb_walk_share;
  // Fraction of runtime bound on DRAM bandwidth (CMA migration steals it).
  double memory_intensity;
  double base_score;  // Score with no interference, no S2PT.
};

// The 16 workloads of Figure 2 / Figure 16, in the paper's order.
const std::vector<GeekbenchWorkload>& GeekbenchSuite();

// Score with stage-2 translation enabled at 4 KB granularity (§2.4.2).
double ScoreWithS2pt(const GeekbenchWorkload& w);

// Score while a fraction `migration_duty` of the run overlaps CMA page
// migration that consumes `bandwidth_share` of DRAM bandwidth (Figure 16).
double ScoreUnderMigration(const GeekbenchWorkload& w, double migration_duty,
                           double bandwidth_share);

// S2PT overhead percentage (positive = slower with S2PT).
double S2ptOverheadPercent(const GeekbenchWorkload& w);

}  // namespace tzllm

#endif  // SRC_CORE_GEEKBENCH_H_
