// EL3 security monitor model: the single gate between worlds.
//
// REE code reaches the TEE only through SmcFromRee (the `smc` instruction);
// the TEE delegates work to the REE (file I/O, CMA allocation, NPU job
// scheduling) through RpcToRee, which models the OP-TEE-style return-to-REE
// RPC. Every crossing is counted and costed so the §7.3 overhead breakdown
// (smc share of TTFT / decode time) falls out of the accounting.

#ifndef SRC_HW_SMC_H_
#define SRC_HW_SMC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "src/common/calibration.h"
#include "src/common/status.h"
#include "src/hw/types.h"

namespace tzllm {

struct SmcArgs {
  std::array<uint64_t, 6> a{};
};

struct SmcResult {
  Status status;
  std::array<uint64_t, 4> r{};
};

// Well-known SMC / RPC function ids.
enum class SmcFunc : uint32_t {
  // REE -> TEE.
  kInvokeTa = 0x1000,           // CA invokes the LLM TA.
  kResumeTaThread = 0x1001,     // Shadow thread resumes its TA thread.
  kNpuTakeover = 0x1002,        // REE NPU driver hands the NPU to the TEE.
  // TEE -> REE (RPC).
  kRpcCmaAlloc = 0x2000,
  kRpcCmaFree = 0x2001,
  kRpcFileRead = 0x2002,
  kRpcNpuEnqueueShadow = 0x2003,
  kRpcNpuShadowComplete = 0x2004,
};

class SecureMonitor {
 public:
  using Handler = std::function<SmcResult(const SmcArgs&)>;

  // TEE OS installs handlers callable from the REE.
  void InstallSecureHandler(SmcFunc func, Handler handler);
  // REE TZ driver installs handlers callable from the TEE (RPC targets).
  void InstallNonSecureHandler(SmcFunc func, Handler handler);

  // Issue an smc from the REE into the TEE.
  SmcResult SmcFromRee(SmcFunc func, const SmcArgs& args);
  // Issue an RPC from the TEE into the REE.
  SmcResult RpcToRee(SmcFunc func, const SmcArgs& args);

  // Accounting: each call above is one world-switch round trip.
  uint64_t round_trips() const { return round_trips_; }
  SimDuration total_switch_time() const {
    return round_trips_ * kSmcRoundTrip;
  }
  static constexpr SimDuration switch_cost() { return kSmcRoundTrip; }

  void ResetCounters() { round_trips_ = 0; }

 private:
  std::unordered_map<uint32_t, Handler> secure_handlers_;
  std::unordered_map<uint32_t, Handler> nonsecure_handlers_;
  uint64_t round_trips_ = 0;
};

}  // namespace tzllm

#endif  // SRC_HW_SMC_H_
