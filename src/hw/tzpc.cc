#include "src/hw/tzpc.h"

namespace tzllm {

Status Tzpc::SetSecure(World caller, DeviceId device, bool secure) {
  if (caller != World::kSecure) {
    return PermissionDenied("TZPC registers are secure-world only");
  }
  secure_[static_cast<size_t>(device)] = secure;
  ++reconfigurations_;
  return OkStatus();
}

Status Tzpc::CheckMmio(World world, DeviceId device) const {
  if (world == World::kNonSecure && IsSecure(device)) {
    ++mmio_faults_;
    return PermissionDenied(std::string("non-secure MMIO to secure device ") +
                            DeviceName(device));
  }
  return OkStatus();
}

}  // namespace tzllm
