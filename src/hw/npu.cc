#include "src/hw/npu.h"

#include "src/common/log.h"
#include "src/hw/types.h"

namespace tzllm {

NpuDevice::NpuDevice(Simulator* sim, Tzasc* tzasc, Tzpc* tzpc, Gic* gic)
    : sim_(sim), tzasc_(tzasc), tzpc_(tzpc), gic_(gic) {}

Status NpuDevice::MmioLaunch(World caller, const NpuJobDesc& job) {
  // 1. MMIO gate: while the NPU is TZPC-secure, REE doorbell writes fault.
  Status st = tzpc_->CheckMmio(caller, DeviceId::kNpu);
  if (!st.ok()) {
    ++launch_rejections_;
    return st;
  }
  if (busy_) {
    ++launch_rejections_;
    return FailedPrecondition("NPU busy");
  }

  // 2. DMA gate: every part of the execution context must be reachable by
  // the NPU under the *current* TZASC programming. This is where a job
  // launched before the TEE driver granted region access — or a non-secure
  // job racing a secure window — actually fails.
  auto check = [&](PhysAddr addr, uint64_t len) -> Status {
    if (len == 0) {
      return OkStatus();
    }
    return tzasc_->CheckDmaAccess(DeviceId::kNpu, addr, len);
  };
  st = check(job.cmd_addr, job.cmd_size);
  if (st.ok()) {
    st = check(job.iopt_addr, job.iopt_size);
  }
  for (const auto& [addr, len] : job.buffers) {
    if (!st.ok()) {
      break;
    }
    st = check(addr, len);
  }
  if (!st.ok()) {
    ++launch_rejections_;
    TZLLM_LOG_DEBUG("npu", "DMA check failed: %s", st.ToString().c_str());
    return st;
  }

  busy_ = true;
  abort_armed_ = false;
  busy_time_ += job.duration;
  // The payload lives on the device, not in the completion closure, so an
  // MmioAbort between launch and completion really drops it.
  pending_compute_ = job.compute;
  sim_->Schedule(job.duration, [this] {
    Status cst;
    std::function<Status()> compute = std::move(pending_compute_);
    pending_compute_ = nullptr;
    if (abort_armed_) {
      cst = Internal("NPU job aborted via MMIO reset");
      abort_armed_ = false;
    } else if (compute) {
      cst = compute();
      if (!cst.ok()) {
        ++compute_failures_;
        TZLLM_LOG_WARN("npu", "functional job payload failed: %s",
                       cst.ToString().c_str());
      }
    }
    // Latch the job status so the owning driver's completion handler can
    // read it (a real device raises its interrupt either way and reports
    // faults through a status register).
    last_job_status_ = cst;
    busy_ = false;
    ++jobs_completed_;
    gic_->Raise(kIrqNpu);
  });
  return OkStatus();
}

Status NpuDevice::MmioAbort(World caller) {
  TZLLM_RETURN_IF_ERROR(tzpc_->CheckMmio(caller, DeviceId::kNpu));
  if (!busy_) {
    return OkStatus();
  }
  pending_compute_ = nullptr;
  abort_armed_ = true;
  return OkStatus();
}

Result<bool> NpuDevice::MmioIsBusy(World caller) const {
  TZLLM_RETURN_IF_ERROR(tzpc_->CheckMmio(caller, DeviceId::kNpu));
  return busy_;
}

Status NpuDevice::MmioReadJobStatus(World caller, Status* out) const {
  TZLLM_RETURN_IF_ERROR(tzpc_->CheckMmio(caller, DeviceId::kNpu));
  *out = last_job_status_;
  return OkStatus();
}

}  // namespace tzllm
