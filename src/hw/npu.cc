#include "src/hw/npu.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"
#include "src/hw/types.h"

namespace tzllm {

namespace {

// Reset latency of the abort doorbell when it must revive a stalled device
// (no completion event in flight): small next to the per-job switch cost,
// nonzero so the recovery path still pays real virtual time.
constexpr SimDuration kAbortResetDelay = 10 * kMicrosecond;

}  // namespace

std::string NpuFaultPlan::ToString() const {
  if (!active()) {
    return "none";
  }
  const char* name = "?";
  switch (fault) {
    case NpuFaultClass::kNone:
      name = "none";
      break;
    case NpuFaultClass::kPayload:
      name = "payload";
      break;
    case NpuFaultClass::kTimeout:
      name = "timeout";
      break;
    case NpuFaultClass::kContext:
      name = "ctx";
      break;
    case NpuFaultClass::kSubmit:
      name = "submit";
      break;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s@%llu x%llu", name,
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(count));
  return buf;
}

Result<NpuFaultPlan> NpuFaultPlan::Parse(const std::string& text) {
  NpuFaultPlan plan;
  if (text.empty() || text == "none") {
    return plan;
  }
  const size_t at = text.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= text.size()) {
    return InvalidArgument(
        "fault plan must be <class>@<first>[x<count>], got: " + text);
  }
  const std::string cls = text.substr(0, at);
  if (cls == "payload") {
    plan.fault = NpuFaultClass::kPayload;
  } else if (cls == "timeout" || cls == "stall") {
    plan.fault = NpuFaultClass::kTimeout;
  } else if (cls == "ctx" || cls == "context") {
    plan.fault = NpuFaultClass::kContext;
  } else if (cls == "submit") {
    plan.fault = NpuFaultClass::kSubmit;
  } else {
    return InvalidArgument("unknown fault class: " + cls);
  }
  const std::string ords = text.substr(at + 1);
  const size_t x = ords.find('x');
  char* end = nullptr;
  const std::string first_str = x == std::string::npos ? ords
                                                       : ords.substr(0, x);
  plan.first = std::strtoull(first_str.c_str(), &end, 10);
  if (end == first_str.c_str() || *end != '\0' || plan.first == 0) {
    return InvalidArgument("bad fault ordinal in plan: " + text);
  }
  if (x != std::string::npos) {
    const std::string count_str = ords.substr(x + 1);
    plan.count = std::strtoull(count_str.c_str(), &end, 10);
    if (end == count_str.c_str() || *end != '\0' || plan.count == 0) {
      return InvalidArgument("bad fault count in plan: " + text);
    }
  }
  return plan;
}

NpuFaultPlan NpuFaultPlan::FromEnv() {
  const char* env = std::getenv("TZLLM_FAULT_PLAN");
  if (env == nullptr || *env == '\0') {
    return NpuFaultPlan{};
  }
  auto plan = Parse(env);
  if (!plan.ok()) {
    TZLLM_LOG_WARN("npu", "ignoring malformed TZLLM_FAULT_PLAN: %s",
                   plan.status().ToString().c_str());
    return NpuFaultPlan{};
  }
  return *plan;
}

NpuDevice::NpuDevice(Simulator* sim, Tzasc* tzasc, Tzpc* tzpc, Gic* gic)
    : sim_(sim), tzasc_(tzasc), tzpc_(tzpc), gic_(gic) {}

void NpuDevice::ArmFaultPlan(const NpuFaultPlan& plan) {
  MutexLock lock(&mu_);
  fault_plan_ = plan;
  secure_launches_ = 0;
  faults_injected_ = 0;
}

Status NpuDevice::MmioLaunch(World caller, const NpuJobDesc& job) {
  // 1. MMIO gate: while the NPU is TZPC-secure, REE doorbell writes fault.
  // The TZPC/TZASC gate checks are other components' (const) state and run
  // outside mu_.
  Status st = tzpc_->CheckMmio(caller, DeviceId::kNpu);
  if (!st.ok()) {
    MutexLock lock(&mu_);
    ++launch_rejections_;
    return st;
  }
  {
    MutexLock lock(&mu_);
    if (busy_) {
      ++launch_rejections_;
      return FailedPrecondition("NPU busy");
    }
  }

  // 2. DMA gate: every part of the execution context must be reachable by
  // the NPU under the *current* TZASC programming. This is where a job
  // launched before the TEE driver granted region access — or a non-secure
  // job racing a secure window — actually fails.
  auto check = [&](PhysAddr addr, uint64_t len) -> Status {
    if (len == 0) {
      return OkStatus();
    }
    return tzasc_->CheckDmaAccess(DeviceId::kNpu, addr, len);
  };
  st = check(job.cmd_addr, job.cmd_size);
  if (st.ok()) {
    st = check(job.iopt_addr, job.iopt_size);
  }
  for (const auto& [addr, len] : job.buffers) {
    if (!st.ok()) {
      break;
    }
    st = check(addr, len);
  }
  if (!st.ok()) {
    TZLLM_LOG_DEBUG("npu", "DMA check failed: %s", st.ToString().c_str());
    MutexLock lock(&mu_);
    ++launch_rejections_;
    return st;
  }

  bool schedule_completion = true;
  {
    MutexLock lock(&mu_);
    busy_ = true;
    abort_armed_ = false;
    busy_time_ += job.duration;
    // The payload lives on the device, not in the completion closure, so an
    // MmioAbort between launch and completion really drops it.
    pending_compute_ = job.compute;

    // Deterministic fault injection (device-visible classes), counted per
    // secure launch so a retried job occupies the next ordinal.
    if (caller == World::kSecure && fault_plan_.active()) {
      const uint64_t ordinal = ++secure_launches_;
      if (fault_plan_.fault == NpuFaultClass::kPayload &&
          fault_plan_.Hits(ordinal)) {
        ++faults_injected_;
        pending_compute_ = [] {
          return Internal("injected NPU payload fault (fault plan)");
        };
      } else if (fault_plan_.fault == NpuFaultClass::kTimeout &&
                 fault_plan_.Hits(ordinal)) {
        // The device wedges: launch accepted, no completion event exists.
        // Only the abort doorbell's reset path can revive it.
        ++faults_injected_;
        stalled_ = true;
        schedule_completion = false;
      }
    } else if (caller == World::kSecure) {
      ++secure_launches_;
    }
  }

  if (schedule_completion) {
    sim_->Schedule(job.duration, [this] { CompleteJob(); });
  }
  return OkStatus();
}

void NpuDevice::CompleteJob() {
  std::function<Status()> compute;
  bool aborted = false;
  {
    MutexLock lock(&mu_);
    compute = std::move(pending_compute_);
    pending_compute_ = nullptr;
    aborted = abort_armed_;
    abort_armed_ = false;
  }
  // The functional payload executes outside mu_: it is arbitrary caller
  // code (CPU matmuls over DRAM) and must not serialize against MMIO polls.
  Status cst;
  if (aborted) {
    cst = Internal("NPU job aborted via MMIO reset");
  } else if (compute) {
    cst = compute();
    if (!cst.ok()) {
      TZLLM_LOG_WARN("npu", "functional job payload failed: %s",
                     cst.ToString().c_str());
    }
  }
  {
    MutexLock lock(&mu_);
    if (!aborted && !cst.ok()) {
      ++compute_failures_;
    }
    // Latch the job status so the owning driver's completion handler can
    // read it (a real device raises its interrupt either way and reports
    // faults through a status register).
    last_job_status_ = cst;
    busy_ = false;
    ++jobs_completed_;
  }
  // The interrupt re-enters the owning driver, which reads this device's
  // registers back (MmioReadJobStatus, busy()) on this same call stack —
  // raise it with mu_ released.
  gic_->Raise(kIrqNpu);
}

Status NpuDevice::MmioAbort(World caller) {
  TZLLM_RETURN_IF_ERROR(tzpc_->CheckMmio(caller, DeviceId::kNpu));
  bool reset_stalled = false;
  {
    MutexLock lock(&mu_);
    if (!busy_) {
      return OkStatus();
    }
    pending_compute_ = nullptr;
    abort_armed_ = true;
    if (stalled_) {
      // A stalled job has no completion event in flight; the abort doubles
      // as the device reset, raising the (fault-latched) completion
      // interrupt after the reset delay so the driver's exit path frees the
      // device.
      stalled_ = false;
      reset_stalled = true;
    }
  }
  if (reset_stalled) {
    sim_->Schedule(kAbortResetDelay, [this] { CompleteJob(); });
  }
  return OkStatus();
}

Result<bool> NpuDevice::MmioIsBusy(World caller) const {
  TZLLM_RETURN_IF_ERROR(tzpc_->CheckMmio(caller, DeviceId::kNpu));
  MutexLock lock(&mu_);
  return busy_;
}

Status NpuDevice::MmioReadJobStatus(World caller, Status* out) const {
  TZLLM_RETURN_IF_ERROR(tzpc_->CheckMmio(caller, DeviceId::kNpu));
  MutexLock lock(&mu_);
  *out = last_job_status_;
  return OkStatus();
}

}  // namespace tzllm
