// NPU device model (Rockchip RK3588-like: 3 cores, up to 6 TOPS).
//
// The device exposes exactly the data-plane surface the paper's co-driver
// design depends on (§4.3): an MMIO launch doorbell (gated by the TZPC), DMA
// transactions for the job's execution context (gated by the TZASC, with the
// NPU's own DeviceId), and a completion interrupt (routed by the GIC). All
// three checks are live: a mis-sequenced world switch produces a real fault
// or a real leak opportunity that the security tests probe for.

#ifndef SRC_HW_NPU_H_
#define SRC_HW_NPU_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/hw/gic.h"
#include "src/hw/tzasc.h"
#include "src/hw/tzpc.h"
#include "src/sim/simulator.h"

namespace tzllm {

// Shape of one matmul inside a (possibly fused) NPU job: an m-position
// batch over a rows x cols weight. Carried on the job descriptor so the
// driver layer can account fused-group sizes and the cost model can price a
// multi-matmul job as the sum of its members.
struct NpuMatmulShape {
  uint64_t rows = 0;
  uint64_t cols = 0;
  int m = 0;
};

// Execution context of one NPU job, all in physical memory (paper Figure 8:
// register commands, I/O page table, input/output buffers).
//
// A job may carry a whole fused matmul group (one command stream issuing
// several matmuls plus their elementwise glue) — `matmuls` lists the member
// shapes, `buffers` every sub-buffer the fused group will DMA. This is the
// multi-matmul execution-context format the co-driver validates and the
// fused NPU prefill path batches per transformer layer.
struct NpuJobDesc {
  PhysAddr cmd_addr = 0;   // Register command stream ("NPU job code").
  uint64_t cmd_size = 0;
  PhysAddr iopt_addr = 0;  // I/O page table root.
  uint64_t iopt_size = 0;
  // Input and output buffers the job will DMA.
  std::vector<std::pair<PhysAddr, uint64_t>> buffers;
  // Matmuls fused into this job (empty for non-matmul / purely modeled
  // jobs). Stats only — execution is `compute` + `duration`.
  std::vector<NpuMatmulShape> matmuls;
  // Modeled execution time on the NPU.
  SimDuration duration = 0;
  // Optional functional payload executed at completion (reads inputs /
  // writes outputs through DRAM); null in simulated mode.
  std::function<Status()> compute;
};

class NpuDevice {
 public:
  NpuDevice(Simulator* sim, Tzasc* tzasc, Tzpc* tzpc, Gic* gic);

  // MMIO doorbell: validates TZPC (caller world vs device security state),
  // device idle, then all DMA targets against the TZASC. On success the job
  // occupies the device for job.duration and raises kIrqNpu on completion.
  Status MmioLaunch(World caller, const NpuJobDesc& job);

  // MMIO status poll (also TZPC-gated).
  Result<bool> MmioIsBusy(World caller) const;

  // MMIO abort doorbell (TZPC-gated): drops the in-flight job's functional
  // payload at the device — the compute stage is reset, though the job
  // still raises its completion interrupt (with a fault latched in the
  // status register). This is what lets a driver abandon a LAUNCHED job on
  // timeout without leaving a payload armed against caller memory it no
  // longer owns; nulling the driver-side descriptor copy alone cannot
  // reach the copy the device captured at launch.
  Status MmioAbort(World caller);

  // MMIO job-status register: completion status of the most recently
  // finished job (a real NPU latches a fault bit; here the functional
  // payload's Status) written into *out. TZPC-gated like every MMIO access,
  // so only the world owning the device can observe a secure job's failure.
  // Read by the TEE driver's completion handler so a failing payload
  // propagates to the waiting TA instead of completing silently.
  Status MmioReadJobStatus(World caller, Status* out) const;

  bool busy() const { return busy_; }

  uint64_t jobs_completed() const { return jobs_completed_; }
  uint64_t launch_rejections() const { return launch_rejections_; }
  // Functional payloads that returned an error (the device still completes
  // the job — a real NPU raises its interrupt regardless — but tests assert
  // this stays zero so a silently failing payload cannot hide).
  uint64_t compute_failures() const { return compute_failures_; }
  SimDuration busy_time() const { return busy_time_; }

 private:
  Simulator* sim_;
  Tzasc* tzasc_;
  Tzpc* tzpc_;
  Gic* gic_;
  bool busy_ = false;
  bool abort_armed_ = false;  // In-flight payload dropped via MmioAbort.
  uint64_t jobs_completed_ = 0;
  uint64_t launch_rejections_ = 0;
  uint64_t compute_failures_ = 0;
  SimDuration busy_time_ = 0;
  Status last_job_status_;  // Latched at each job completion.
  // The in-flight job's functional payload. Held by the device (not the
  // completion closure) so MmioAbort can actually drop it.
  std::function<Status()> pending_compute_;
};

}  // namespace tzllm

#endif  // SRC_HW_NPU_H_
