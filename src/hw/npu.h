// NPU device model (Rockchip RK3588-like: 3 cores, up to 6 TOPS).
//
// The device exposes exactly the data-plane surface the paper's co-driver
// design depends on (§4.3): an MMIO launch doorbell (gated by the TZPC), DMA
// transactions for the job's execution context (gated by the TZASC, with the
// NPU's own DeviceId), and a completion interrupt (routed by the GIC). All
// three checks are live: a mis-sequenced world switch produces a real fault
// or a real leak opportunity that the security tests probe for.

#ifndef SRC_HW_NPU_H_
#define SRC_HW_NPU_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/hw/gic.h"
#include "src/hw/tzasc.h"
#include "src/hw/tzpc.h"
#include "src/sim/simulator.h"

namespace tzllm {

// Deterministic fault injection for the secure-NPU offload path. One plan
// names a fault class and the 1-based ordinal window of secure jobs it hits
// — "the Nth secure launch fails", repeatable, so a CI sweep can walk every
// class and the recovery tests can pin a fault to an exact job of an exact
// schedule. Device-visible classes (payload, timeout) are armed on the
// NpuDevice and count secure MmioLaunch doorbells; driver-visible classes
// (ctx, submit) are armed on the TeeNpuDriver and count issue sequence
// numbers. A retried job rings the doorbell again, so `count` is what
// separates a transient fault (retry succeeds) from a persistent one
// (retries exhaust, CPU fallback takes over).
enum class NpuFaultClass : uint8_t {
  kNone = 0,
  // The functional payload reports a failure through the job-status
  // register (the device still completes and interrupts).
  kPayload,
  // The device accepts the launch and never completes: no interrupt, no
  // status — the job is only recoverable through the waiter's deadline and
  // an MMIO abort/reset.
  kTimeout,
  // The co-driver's takeover-time context validation rejects the job (as if
  // its execution context failed revalidation at the secure boundary).
  kContext,
  // Post-submit stall: the job is issued but its shadow never reaches the
  // REE scheduling queue, so no takeover ever arrives.
  kSubmit,
};

struct NpuFaultPlan {
  NpuFaultClass fault = NpuFaultClass::kNone;
  uint64_t first = 0;  // 1-based ordinal of the first faulted job; 0 = never.
  uint64_t count = 1;  // Consecutive faulted ordinals starting at `first`.

  bool active() const { return fault != NpuFaultClass::kNone && first > 0; }
  bool Hits(uint64_t ordinal) const {
    return active() && ordinal >= first && ordinal < first + count;
  }
  std::string ToString() const;

  // "<class>@<first>[x<count>]" with class one of payload | timeout (alias
  // stall) | ctx (alias context) | submit; "" or "none" parse to the
  // inactive plan. Examples: "payload@5", "timeout@3x2".
  static Result<NpuFaultPlan> Parse(const std::string& text);
  // Parses the TZLLM_FAULT_PLAN environment variable (the CI fault-sweep
  // hook); unset or empty means no faults. A malformed value is a test-rig
  // error: it is logged and treated as inactive rather than silently
  // faulting job 0.
  static NpuFaultPlan FromEnv();
};

// Shape of one matmul inside a (possibly fused) NPU job: an m-position
// batch over a rows x cols weight. Carried on the job descriptor so the
// driver layer can account fused-group sizes and the cost model can price a
// multi-matmul job as the sum of its members.
struct NpuMatmulShape {
  uint64_t rows = 0;
  uint64_t cols = 0;
  int m = 0;
};

// Execution context of one NPU job, all in physical memory (paper Figure 8:
// register commands, I/O page table, input/output buffers).
//
// A job may carry a whole fused matmul group (one command stream issuing
// several matmuls plus their elementwise glue) — `matmuls` lists the member
// shapes, `buffers` every sub-buffer the fused group will DMA. This is the
// multi-matmul execution-context format the co-driver validates and the
// fused NPU prefill path batches per transformer layer.
struct NpuJobDesc {
  PhysAddr cmd_addr = 0;   // Register command stream ("NPU job code").
  uint64_t cmd_size = 0;
  PhysAddr iopt_addr = 0;  // I/O page table root.
  uint64_t iopt_size = 0;
  // Input and output buffers the job will DMA.
  std::vector<std::pair<PhysAddr, uint64_t>> buffers;
  // Matmuls fused into this job (empty for non-matmul / purely modeled
  // jobs). Stats only — execution is `compute` + `duration`.
  std::vector<NpuMatmulShape> matmuls;
  // Modeled execution time on the NPU.
  SimDuration duration = 0;
  // Optional functional payload executed at completion (reads inputs /
  // writes outputs through DRAM); null in simulated mode.
  std::function<Status()> compute;
};

// Locking: mu_ guards the device's register file — busy/stall/abort state,
// the latched job-status register, the armed fault plan and every counter.
// Critical sections are leaf-only: raising the completion interrupt re-enters
// the owning driver (which immediately reads this device's registers back),
// and the TZPC/TZASC gate checks are other components' state — none of it
// runs under mu_.
class NpuDevice {
 public:
  NpuDevice(Simulator* sim, Tzasc* tzasc, Tzpc* tzpc, Gic* gic);

  // MMIO doorbell: validates TZPC (caller world vs device security state),
  // device idle, then all DMA targets against the TZASC. On success the job
  // occupies the device for job.duration and raises kIrqNpu on completion.
  Status MmioLaunch(World caller, const NpuJobDesc& job) TZLLM_EXCLUDES(mu_);

  // MMIO status poll (also TZPC-gated).
  Result<bool> MmioIsBusy(World caller) const TZLLM_EXCLUDES(mu_);

  // MMIO abort doorbell (TZPC-gated): drops the in-flight job's functional
  // payload at the device — the compute stage is reset, though the job
  // still raises its completion interrupt (with a fault latched in the
  // status register). This is what lets a driver abandon a LAUNCHED job on
  // timeout without leaving a payload armed against caller memory it no
  // longer owns; nulling the driver-side descriptor copy alone cannot
  // reach the copy the device captured at launch. Aborting a *stalled* job
  // (kTimeout fault: no completion was ever scheduled) acts as the device
  // reset: the completion interrupt is raised after a short reset delay, so
  // the driver's exit path runs and the device is reusable.
  Status MmioAbort(World caller) TZLLM_EXCLUDES(mu_);

  // Arms `plan` for the device-visible fault classes (kPayload, kTimeout),
  // counting secure launches from zero again; other classes are ignored
  // here (the co-driver arms them). Arming the inactive plan disarms.
  void ArmFaultPlan(const NpuFaultPlan& plan) TZLLM_EXCLUDES(mu_);
  // Secure launches whose behavior the armed plan altered.
  uint64_t faults_injected() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return faults_injected_;
  }

  // MMIO job-status register: completion status of the most recently
  // finished job (a real NPU latches a fault bit; here the functional
  // payload's Status) written into *out. TZPC-gated like every MMIO access,
  // so only the world owning the device can observe a secure job's failure.
  // Read by the TEE driver's completion handler so a failing payload
  // propagates to the waiting TA instead of completing silently.
  Status MmioReadJobStatus(World caller, Status* out) const
      TZLLM_EXCLUDES(mu_);

  bool busy() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return busy_;
  }

  uint64_t jobs_completed() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return jobs_completed_;
  }
  uint64_t launch_rejections() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return launch_rejections_;
  }
  // Functional payloads that returned an error (the device still completes
  // the job — a real NPU raises its interrupt regardless — but tests assert
  // this stays zero so a silently failing payload cannot hide).
  uint64_t compute_failures() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return compute_failures_;
  }
  SimDuration busy_time() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return busy_time_;
  }

 private:
  // Shared tail of a job's life: runs/aborts the payload, latches the
  // status register, clears busy and raises the completion interrupt. The
  // normal path schedules it at launch + duration; the abort-reset path
  // schedules it for a stalled job that never got a completion event.
  // EXCLUDES(mu_): the interrupt re-enters the owning driver, which reads
  // this device's registers back on the same call stack.
  void CompleteJob() TZLLM_EXCLUDES(mu_);

  Simulator* sim_;
  Tzasc* tzasc_;
  Tzpc* tzpc_;
  Gic* gic_;

  mutable Mutex mu_;
  bool busy_ TZLLM_GUARDED_BY(mu_) = false;
  // In-flight payload dropped via MmioAbort.
  bool abort_armed_ TZLLM_GUARDED_BY(mu_) = false;
  // In-flight job stalled by the armed kTimeout fault: no completion event
  // exists until MmioAbort resets the device.
  bool stalled_ TZLLM_GUARDED_BY(mu_) = false;
  uint64_t jobs_completed_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t launch_rejections_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t compute_failures_ TZLLM_GUARDED_BY(mu_) = 0;
  // Fault-plan ordinal counter.
  uint64_t secure_launches_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t faults_injected_ TZLLM_GUARDED_BY(mu_) = 0;
  NpuFaultPlan fault_plan_ TZLLM_GUARDED_BY(mu_);
  SimDuration busy_time_ TZLLM_GUARDED_BY(mu_) = 0;
  // Latched at each job completion.
  Status last_job_status_ TZLLM_GUARDED_BY(mu_);
  // The in-flight job's functional payload. Held by the device (not the
  // completion closure) so MmioAbort can actually drop it.
  std::function<Status()> pending_compute_ TZLLM_GUARDED_BY(mu_);
};

}  // namespace tzllm

#endif  // SRC_HW_NPU_H_
