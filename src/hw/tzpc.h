// TrustZone Protection Controller model: classifies each peripheral as
// secure or non-secure and gates MMIO accordingly (paper §2.2). The TEE NPU
// driver flips the NPU's bit on every world switch (§4.3) — while the bit is
// set, REE MMIO to the NPU faults, which is what prevents the REE from
// launching jobs during the secure-job window.

#ifndef SRC_HW_TZPC_H_
#define SRC_HW_TZPC_H_

#include <array>
#include <cstdint>

#include "src/common/status.h"
#include "src/hw/types.h"

namespace tzllm {

class Tzpc {
 public:
  // Only the secure world may reclassify peripherals.
  Status SetSecure(World caller, DeviceId device, bool secure);

  bool IsSecure(DeviceId device) const {
    return secure_[static_cast<size_t>(device)];
  }

  // MMIO access check: non-secure CPUs cannot touch secure peripherals.
  Status CheckMmio(World world, DeviceId device) const;

  uint64_t mmio_faults() const { return mmio_faults_; }
  uint64_t reconfigurations() const { return reconfigurations_; }

 private:
  std::array<bool, kNumDeviceIds> secure_{};
  mutable uint64_t mmio_faults_ = 0;
  uint64_t reconfigurations_ = 0;
};

}  // namespace tzllm

#endif  // SRC_HW_TZPC_H_
