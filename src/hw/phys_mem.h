// Sparse physical memory model.
//
// Backs the functional mode: model bytes really live here, CMA migration
// really copies them, the TEE really decrypts them in place, and `shrink`
// really scrubs them. Frames are allocated lazily so a 16 GiB address space
// costs only what is touched.
//
// PhysMemory itself performs no security checks: it models DRAM. All checked
// paths go through SecureBus (bus.h), which consults the TZASC.

#ifndef SRC_HW_PHYS_MEM_H_
#define SRC_HW_PHYS_MEM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/hw/types.h"

namespace tzllm {

class PhysMemory {
 public:
  explicit PhysMemory(uint64_t size_bytes);

  uint64_t size() const { return size_; }

  // Raw DRAM access (no security checks — see SecureBus).
  Status Read(PhysAddr addr, uint8_t* out, uint64_t len) const;
  Status Write(PhysAddr addr, const uint8_t* data, uint64_t len);

  // Fills [addr, addr+len) with `value` (used for secure-memory scrubbing).
  Status Fill(PhysAddr addr, uint8_t value, uint64_t len);

  // Copies len bytes within DRAM (used by CMA page migration).
  Status Copy(PhysAddr dst, PhysAddr src, uint64_t len);

  // True if any frame overlapping the range has ever been written.
  bool IsTouched(PhysAddr addr, uint64_t len) const;

  // Returns a direct pointer to a frame-contained range for in-place compute
  // (e.g. TEE decryption); nullptr if the range crosses a frame boundary that
  // has not been materialized. Materializes frames on demand.
  uint8_t* RawWindow(PhysAddr addr, uint64_t len);

  size_t materialized_frames() const { return frames_.size(); }
  uint64_t materialized_bytes() const { return frames_.size() * kFrameSize; }

  // Frames are larger than a page to keep the map small.
  static constexpr uint64_t kFrameSize = 256 * kKiB;

 private:
  const uint8_t* FrameFor(PhysAddr addr) const;  // nullptr if untouched.
  uint8_t* MutableFrameFor(PhysAddr addr);       // materializes.

  Status CheckRange(PhysAddr addr, uint64_t len) const;

  uint64_t size_;
  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> frames_;
};

}  // namespace tzllm

#endif  // SRC_HW_PHYS_MEM_H_
