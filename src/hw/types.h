// Shared hardware-model vocabulary types.

#ifndef SRC_HW_TYPES_H_
#define SRC_HW_TYPES_H_

#include <cstdint>

namespace tzllm {

// TrustZone world a CPU (or CPU-originated transaction) executes in.
enum class World : uint8_t {
  kNonSecure = 0,  // REE
  kSecure = 1,     // TEE
};

inline const char* WorldName(World w) {
  return w == World::kSecure ? "secure" : "non-secure";
}

// Bus master / peripheral identifiers on the modeled SoC (RK3588-like).
enum class DeviceId : uint8_t {
  kCpu = 0,
  kNpu = 1,
  kFlashController = 2,
  kGpu = 3,
  kUsbController = 4,
  kDisplayController = 5,
};

inline const char* DeviceName(DeviceId id) {
  switch (id) {
    case DeviceId::kCpu:
      return "cpu";
    case DeviceId::kNpu:
      return "npu";
    case DeviceId::kFlashController:
      return "flash";
    case DeviceId::kGpu:
      return "gpu";
    case DeviceId::kUsbController:
      return "usb";
    case DeviceId::kDisplayController:
      return "display";
  }
  return "unknown";
}

inline constexpr int kNumDeviceIds = 6;

// Interrupt lines (GIC SPI numbers, arbitrary but stable).
inline constexpr int kIrqNpu = 110;
inline constexpr int kIrqFlash = 48;

using PhysAddr = uint64_t;

}  // namespace tzllm

#endif  // SRC_HW_TYPES_H_
