#include "src/hw/smc.h"

#include <utility>

namespace tzllm {

void SecureMonitor::InstallSecureHandler(SmcFunc func, Handler handler) {
  secure_handlers_[static_cast<uint32_t>(func)] = std::move(handler);
}

void SecureMonitor::InstallNonSecureHandler(SmcFunc func, Handler handler) {
  nonsecure_handlers_[static_cast<uint32_t>(func)] = std::move(handler);
}

SmcResult SecureMonitor::SmcFromRee(SmcFunc func, const SmcArgs& args) {
  ++round_trips_;
  auto it = secure_handlers_.find(static_cast<uint32_t>(func));
  if (it == secure_handlers_.end()) {
    return SmcResult{NotFound("no secure handler for smc function"), {}};
  }
  return it->second(args);
}

SmcResult SecureMonitor::RpcToRee(SmcFunc func, const SmcArgs& args) {
  ++round_trips_;
  auto it = nonsecure_handlers_.find(static_cast<uint32_t>(func));
  if (it == nonsecure_handlers_.end()) {
    return SmcResult{NotFound("no non-secure handler for RPC function"), {}};
  }
  return it->second(args);
}

}  // namespace tzllm
