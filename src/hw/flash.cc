#include "src/hw/flash.h"

#include <algorithm>
#include <utility>

#include "src/common/rng.h"

namespace tzllm {

FlashDevice::FlashDevice(Simulator* sim, PhysMemory* dram, Tzasc* tzasc)
    : sim_(sim),
      dram_(dram),
      tzasc_(tzasc),
      channel_(sim, "flash-channel", /*capacity=*/1) {}

Status FlashDevice::CreateFile(const std::string& name,
                               std::vector<uint8_t> bytes) {
  File file;
  file.size = bytes.size();
  file.synthetic = false;
  file.bytes = std::move(bytes);
  files_[name] = std::move(file);
  return OkStatus();
}

Status FlashDevice::CreateSyntheticFile(const std::string& name, uint64_t size,
                                        uint64_t seed) {
  File file;
  file.size = size;
  file.synthetic = true;
  file.seed = seed;
  files_[name] = std::move(file);
  return OkStatus();
}

Status FlashDevice::DeleteFile(const std::string& name) {
  return files_.erase(name) > 0 ? OkStatus() : NotFound("no such file");
}

bool FlashDevice::Exists(const std::string& name) const {
  return files_.count(name) > 0;
}

Result<uint64_t> FlashDevice::FileSize(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  return it->second.size;
}

Status FlashDevice::FillFromFile(const File& file, uint64_t offset,
                                 uint64_t len, uint8_t* out) const {
  if (offset + len > file.size) {
    return InvalidArgument("read past end of file");
  }
  if (file.synthetic) {
    for (uint64_t i = 0; i < len; ++i) {
      out[i] = SyntheticByteAt(file.seed, offset + i);
    }
  } else {
    std::copy(file.bytes.begin() + offset, file.bytes.begin() + offset + len,
              out);
  }
  return OkStatus();
}

Status FlashDevice::PeekBytes(const std::string& name, uint64_t offset,
                              uint64_t len, uint8_t* out) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  return FillFromFile(it->second, offset, len, out);
}

Status FlashDevice::CorruptBytes(const std::string& name, uint64_t offset,
                                 uint64_t len) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  File& file = it->second;
  if (offset + len > file.size) {
    return InvalidArgument("corrupt range past end of file");
  }
  if (file.synthetic) {
    // Re-seed the stream; every byte changes.
    file.seed = SplitMix64(file.seed ^ 0xBADC0DEull);
    return OkStatus();
  }
  for (uint64_t i = 0; i < len; ++i) {
    file.bytes[offset + i] ^= 0xA5;
  }
  return OkStatus();
}

SimDuration FlashDevice::EstimateReadTime(uint64_t len) {
  return kFlashRequestLatency + TransferTime(len, kFlashSequentialReadBw);
}

void FlashDevice::ReadAsync(const std::string& name, uint64_t offset,
                            uint64_t len, PhysAddr dst, bool materialize,
                            std::function<void(Status)> done) {
  ++reads_issued_;
  const SimDuration service = EstimateReadTime(len);
  channel_.Submit(service, [this, name, offset, len, dst, materialize,
                            done = std::move(done)] {
    auto finish = [&](Status st) {
      if (done) {
        done(std::move(st));
      }
    };
    auto it = files_.find(name);
    if (it == files_.end()) {
      finish(NotFound("no such file: " + name));
      return;
    }
    // The flash controller is a non-secure bus master: its DMA into DRAM is
    // checked at transfer time. Loading into TZASC-protected memory faults —
    // which is exactly why the paper defers extend_protected until after the
    // load completes.
    Status st =
        tzasc_->CheckDmaAccess(DeviceId::kFlashController, dst, len);
    if (!st.ok()) {
      ++dma_rejections_;
      finish(std::move(st));
      return;
    }
    bytes_read_ += len;
    if (materialize) {
      std::vector<uint8_t> buf(len);
      st = FillFromFile(it->second, offset, len, buf.data());
      if (st.ok()) {
        st = dram_->Write(dst, buf.data(), len);
      }
    } else {
      if (offset + len > it->second.size) {
        st = InvalidArgument("read past end of file");
      }
    }
    finish(std::move(st));
  });
}

}  // namespace tzllm
