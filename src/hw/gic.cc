#include "src/hw/gic.h"

#include <utility>

namespace tzllm {

void Gic::RegisterHandler(World world, int irq, Handler handler) {
  lines_[irq].handlers[static_cast<size_t>(world)] = std::move(handler);
}

Status Gic::Route(World caller, int irq, World target) {
  if (caller != World::kSecure) {
    return PermissionDenied("GIC interrupt grouping is secure-world only");
  }
  lines_[irq].route = target;
  ++regroup_count_;
  return OkStatus();
}

World Gic::RouteOf(int irq) const {
  auto it = lines_.find(irq);
  return it == lines_.end() ? World::kNonSecure : it->second.route;
}

void Gic::Raise(int irq) {
  auto it = lines_.find(irq);
  if (it == lines_.end()) {
    ++spurious_;
    return;
  }
  Line& line = it->second;
  const Handler& handler = line.handlers[static_cast<size_t>(line.route)];
  if (!handler) {
    ++spurious_;
    return;
  }
  ++delivered_[static_cast<size_t>(line.route)];
  handler();
}

}  // namespace tzllm
