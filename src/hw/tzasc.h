// TrustZone Address Space Controller (TZC-400-like) model.
//
// Mirrors the constraints the paper builds on (§2.2):
//  * at most eight regions,
//  * each region covers one *contiguous* physical range,
//  * regions gate both CPU accesses by world and DMA accesses by device,
//  * only the secure world may reprogram the controller.
//
// All memory traffic in the reproduction funnels through CheckCpuAccess /
// CheckDmaAccess, so a missing or mis-ordered TZASC update is an actual,
// test-observable fault — not just a comment.

#ifndef SRC_HW_TZASC_H_
#define SRC_HW_TZASC_H_

#include <array>
#include <cstdint>

#include "src/common/status.h"
#include "src/hw/types.h"

namespace tzllm {

struct TzascRegion {
  bool enabled = false;
  PhysAddr base = 0;
  uint64_t size = 0;
  // Per-device DMA permission into this (secure) region. CPU-secure access
  // is always allowed; non-secure CPU access never is.
  std::array<bool, kNumDeviceIds> dma_allowed{};

  bool Contains(PhysAddr addr, uint64_t len) const {
    return enabled && addr >= base && len <= size && addr - base <= size - len;
  }
  bool Overlaps(PhysAddr addr, uint64_t len) const {
    if (!enabled || len == 0 || size == 0) {
      return false;
    }
    const PhysAddr end = addr + len;
    const PhysAddr region_end = base + size;
    return addr < region_end && base < end;
  }
};

class Tzasc {
 public:
  static constexpr int kNumRegions = 8;

  // All mutators take the calling world; the hardware rejects non-secure
  // reprogramming attempts.
  Status ConfigureRegion(World caller, int index, PhysAddr base, uint64_t size);
  Status DisableRegion(World caller, int index);

  // Adjusts the *end* of an existing region (the paper's extend/shrink secure
  // memory scaling maps to exactly this operation). base stays fixed.
  Status ResizeRegion(World caller, int index, uint64_t new_size);

  Status SetDmaPermission(World caller, int index, DeviceId device,
                          bool allowed);

  const TzascRegion& region(int index) const { return regions_.at(index); }

  // True if the byte range overlaps any enabled secure region.
  bool IsSecure(PhysAddr addr, uint64_t len) const;

  // CPU-originated access: secure world sees everything; non-secure world
  // faults on any overlap with a secure region.
  Status CheckCpuAccess(World world, PhysAddr addr, uint64_t len) const;

  // DMA access by `device`: allowed into non-secure memory always; into a
  // secure region only if that region's permission bit for the device is set
  // AND the transaction is contained in a single region (no straddling).
  Status CheckDmaAccess(DeviceId device, PhysAddr addr, uint64_t len) const;

  uint64_t cpu_faults() const { return cpu_faults_; }
  uint64_t dma_faults() const { return dma_faults_; }
  uint64_t reconfigurations() const { return reconfigurations_; }

 private:
  Status CheckCallerSecure(World caller) const;

  std::array<TzascRegion, kNumRegions> regions_;
  mutable uint64_t cpu_faults_ = 0;
  mutable uint64_t dma_faults_ = 0;
  uint64_t reconfigurations_ = 0;
};

}  // namespace tzllm

#endif  // SRC_HW_TZASC_H_
