// SoC platform: wires the hardware models into one RK3588-like board with
// the Orange Pi 5 Plus memory map used in the paper's evaluation (§7).

#ifndef SRC_HW_PLATFORM_H_
#define SRC_HW_PLATFORM_H_

#include <memory>

#include "src/common/calibration.h"
#include "src/hw/flash.h"
#include "src/hw/gic.h"
#include "src/hw/npu.h"
#include "src/hw/phys_mem.h"
#include "src/hw/smc.h"
#include "src/hw/tzasc.h"
#include "src/hw/tzpc.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace tzllm {

struct PlatformConfig {
  uint64_t dram_bytes = kDramBytes;
  int cpu_big_cores = 4;  // Cortex-A76 cluster; the LLM TA runs here.
};

class SocPlatform {
 public:
  explicit SocPlatform(const PlatformConfig& config = PlatformConfig());

  Simulator& sim() { return sim_; }
  PhysMemory& dram() { return *dram_; }
  Tzasc& tzasc() { return tzasc_; }
  Tzpc& tzpc() { return tzpc_; }
  Gic& gic() { return gic_; }
  SecureMonitor& monitor() { return monitor_; }
  NpuDevice& npu() { return *npu_; }
  FlashDevice& flash() { return *flash_; }
  TraceRecorder& trace() { return trace_; }
  const PlatformConfig& config() const { return config_; }

 private:
  PlatformConfig config_;
  Simulator sim_;
  std::unique_ptr<PhysMemory> dram_;
  Tzasc tzasc_;
  Tzpc tzpc_;
  Gic gic_;
  SecureMonitor monitor_;
  std::unique_ptr<NpuDevice> npu_;
  std::unique_ptr<FlashDevice> flash_;
  TraceRecorder trace_;
};

}  // namespace tzllm

#endif  // SRC_HW_PLATFORM_H_
