// NVMe flash device model (PCIe 3.0 x4: ~2 GB/s sequential reads).
//
// Files are either materialized (real bytes — functional mode) or synthetic
// (size + seed; any extent is regenerated deterministically — paper-scale
// mode, so an "8 GB model file" costs nothing to store). Reads are DMA
// transactions by the flash controller into physical memory and are subject
// to TZASC checks: this is what makes the paper's bounce-buffer-free design
// (§4.2, load into *unprotected* CMA memory, then extend_protected, then
// decrypt) an enforced ordering rather than a convention.

#ifndef SRC_HW_FLASH_H_
#define SRC_HW_FLASH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/calibration.h"
#include "src/common/status.h"
#include "src/hw/phys_mem.h"
#include "src/hw/tzasc.h"
#include "src/sim/server.h"
#include "src/sim/simulator.h"

namespace tzllm {

class FlashDevice {
 public:
  FlashDevice(Simulator* sim, PhysMemory* dram, Tzasc* tzasc);

  // --- File management (host-side provisioning; not timed). ---
  Status CreateFile(const std::string& name, std::vector<uint8_t> bytes);
  Status CreateSyntheticFile(const std::string& name, uint64_t size,
                             uint64_t seed);
  Status DeleteFile(const std::string& name);
  bool Exists(const std::string& name) const;
  Result<uint64_t> FileSize(const std::string& name) const;

  // Reads file content into a host buffer without timing or DMA checks.
  // Used by provisioning tools and by tests to inspect flash content (the
  // "attacker reads flash" probe).
  Status PeekBytes(const std::string& name, uint64_t offset, uint64_t len,
                   uint8_t* out) const;

  // Overwrites a byte range in place (tamper primitive for security tests).
  Status CorruptBytes(const std::string& name, uint64_t offset, uint64_t len);

  // --- Timed DMA read path. ---
  // Queues a read of file[offset, offset+len) into DRAM at dst. The flash
  // controller's DMA is checked against the TZASC when the transfer starts.
  // If `materialize` is false only timing and checks are modeled (paper-
  // scale mode). `done` fires at completion time with the transfer status.
  void ReadAsync(const std::string& name, uint64_t offset, uint64_t len,
                 PhysAddr dst, bool materialize,
                 std::function<void(Status)> done);

  // Service time of one read (base latency + len / sequential bandwidth).
  static SimDuration EstimateReadTime(uint64_t len);

  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t dma_rejections() const { return dma_rejections_; }
  const ServerPool& channel() const { return channel_; }

 private:
  struct File {
    uint64_t size = 0;
    bool synthetic = false;
    uint64_t seed = 0;
    std::vector<uint8_t> bytes;  // Materialized content (if !synthetic).
  };

  Status FillFromFile(const File& file, uint64_t offset, uint64_t len,
                      uint8_t* out) const;

  Simulator* sim_;
  PhysMemory* dram_;
  Tzasc* tzasc_;
  ServerPool channel_;
  std::unordered_map<std::string, File> files_;
  uint64_t reads_issued_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t dma_rejections_ = 0;
};

}  // namespace tzllm

#endif  // SRC_HW_FLASH_H_
