#include "src/hw/phys_mem.h"

#include <algorithm>
#include <cstring>

namespace tzllm {

PhysMemory::PhysMemory(uint64_t size_bytes) : size_(size_bytes) {}

Status PhysMemory::CheckRange(PhysAddr addr, uint64_t len) const {
  if (len > size_ || addr > size_ - len) {
    return InvalidArgument("physical access out of DRAM range");
  }
  return OkStatus();
}

const uint8_t* PhysMemory::FrameFor(PhysAddr addr) const {
  auto it = frames_.find(addr / kFrameSize);
  return it == frames_.end() ? nullptr : it->second.get();
}

uint8_t* PhysMemory::MutableFrameFor(PhysAddr addr) {
  auto& slot = frames_[addr / kFrameSize];
  if (!slot) {
    slot = std::make_unique<uint8_t[]>(kFrameSize);
    std::memset(slot.get(), 0, kFrameSize);
  }
  return slot.get();
}

Status PhysMemory::Read(PhysAddr addr, uint8_t* out, uint64_t len) const {
  TZLLM_RETURN_IF_ERROR(CheckRange(addr, len));
  uint64_t done = 0;
  while (done < len) {
    const PhysAddr cur = addr + done;
    const uint64_t in_frame = cur % kFrameSize;
    const uint64_t n = std::min(len - done, kFrameSize - in_frame);
    const uint8_t* frame = FrameFor(cur);
    if (frame == nullptr) {
      std::memset(out + done, 0, n);  // Untouched DRAM reads as zero.
    } else {
      std::memcpy(out + done, frame + in_frame, n);
    }
    done += n;
  }
  return OkStatus();
}

Status PhysMemory::Write(PhysAddr addr, const uint8_t* data, uint64_t len) {
  TZLLM_RETURN_IF_ERROR(CheckRange(addr, len));
  uint64_t done = 0;
  while (done < len) {
    const PhysAddr cur = addr + done;
    const uint64_t in_frame = cur % kFrameSize;
    const uint64_t n = std::min(len - done, kFrameSize - in_frame);
    std::memcpy(MutableFrameFor(cur) + in_frame, data + done, n);
    done += n;
  }
  return OkStatus();
}

Status PhysMemory::Fill(PhysAddr addr, uint8_t value, uint64_t len) {
  TZLLM_RETURN_IF_ERROR(CheckRange(addr, len));
  uint64_t done = 0;
  while (done < len) {
    const PhysAddr cur = addr + done;
    const uint64_t in_frame = cur % kFrameSize;
    const uint64_t n = std::min(len - done, kFrameSize - in_frame);
    // Skip materializing frames when filling untouched memory with zero.
    if (value != 0 || FrameFor(cur) != nullptr) {
      std::memset(MutableFrameFor(cur) + in_frame, value, n);
    }
    done += n;
  }
  return OkStatus();
}

Status PhysMemory::Copy(PhysAddr dst, PhysAddr src, uint64_t len) {
  TZLLM_RETURN_IF_ERROR(CheckRange(dst, len));
  TZLLM_RETURN_IF_ERROR(CheckRange(src, len));
  std::vector<uint8_t> tmp(len);
  TZLLM_RETURN_IF_ERROR(Read(src, tmp.data(), len));
  return Write(dst, tmp.data(), len);
}

bool PhysMemory::IsTouched(PhysAddr addr, uint64_t len) const {
  const uint64_t first = addr / kFrameSize;
  const uint64_t last = (addr + len - 1) / kFrameSize;
  for (uint64_t f = first; f <= last; ++f) {
    if (frames_.count(f) > 0) {
      return true;
    }
  }
  return false;
}

uint8_t* PhysMemory::RawWindow(PhysAddr addr, uint64_t len) {
  if (!CheckRange(addr, len).ok()) {
    return nullptr;
  }
  const uint64_t in_frame = addr % kFrameSize;
  if (in_frame + len > kFrameSize) {
    return nullptr;  // Crosses a frame boundary.
  }
  return MutableFrameFor(addr) + in_frame;
}

}  // namespace tzllm
