// Generic Interrupt Controller model with the TrustZone security extension:
// each interrupt line belongs to a world (Group 0 = secure, Group 1 =
// non-secure), and raising a line dispatches to the handler registered by
// that world only. The TEE NPU driver re-groups the NPU interrupt on every
// mode switch so secure-job completions are delivered to the TEE (§4.3).

#ifndef SRC_HW_GIC_H_
#define SRC_HW_GIC_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/common/status.h"
#include "src/hw/types.h"

namespace tzllm {

class Gic {
 public:
  using Handler = std::function<void()>;

  // Registers the handler a given world uses for `irq`. Both worlds may have
  // a handler registered simultaneously; routing decides which one fires.
  void RegisterHandler(World world, int irq, Handler handler);

  // Routes `irq` to a world (grouping). Only the secure world may change
  // grouping — this is the GIC security extension.
  Status Route(World caller, int irq, World target);

  World RouteOf(int irq) const;

  // Raises the line: dispatches to the handler of the owning world. If that
  // world has no handler the interrupt is counted as spurious.
  void Raise(int irq);

  uint64_t spurious_interrupts() const { return spurious_; }
  uint64_t delivered(World world) const {
    return delivered_[static_cast<size_t>(world)];
  }
  uint64_t regroup_count() const { return regroup_count_; }

 private:
  struct Line {
    World route = World::kNonSecure;
    Handler handlers[2];
  };

  std::unordered_map<int, Line> lines_;
  uint64_t spurious_ = 0;
  uint64_t delivered_[2] = {0, 0};
  uint64_t regroup_count_ = 0;
};

}  // namespace tzllm

#endif  // SRC_HW_GIC_H_
