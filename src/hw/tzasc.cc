#include "src/hw/tzasc.h"

#include "src/common/units.h"

namespace tzllm {

Status Tzasc::CheckCallerSecure(World caller) const {
  if (caller != World::kSecure) {
    return PermissionDenied("TZASC registers are secure-world only");
  }
  return OkStatus();
}

Status Tzasc::ConfigureRegion(World caller, int index, PhysAddr base,
                              uint64_t size) {
  TZLLM_RETURN_IF_ERROR(CheckCallerSecure(caller));
  if (index < 0 || index >= kNumRegions) {
    return InvalidArgument("TZASC region index out of range");
  }
  if (!IsAligned(base, kPageSize) || !IsAligned(size, kPageSize)) {
    return InvalidArgument("TZASC regions must be page aligned");
  }
  TzascRegion& r = regions_[index];
  r.enabled = size > 0;
  r.base = base;
  r.size = size;
  r.dma_allowed.fill(false);
  ++reconfigurations_;
  return OkStatus();
}

Status Tzasc::DisableRegion(World caller, int index) {
  TZLLM_RETURN_IF_ERROR(CheckCallerSecure(caller));
  if (index < 0 || index >= kNumRegions) {
    return InvalidArgument("TZASC region index out of range");
  }
  regions_[index] = TzascRegion{};
  ++reconfigurations_;
  return OkStatus();
}

Status Tzasc::ResizeRegion(World caller, int index, uint64_t new_size) {
  TZLLM_RETURN_IF_ERROR(CheckCallerSecure(caller));
  if (index < 0 || index >= kNumRegions) {
    return InvalidArgument("TZASC region index out of range");
  }
  if (!IsAligned(new_size, kPageSize)) {
    return InvalidArgument("TZASC regions must be page aligned");
  }
  TzascRegion& r = regions_[index];
  if (!r.enabled && new_size == 0) {
    return OkStatus();
  }
  r.size = new_size;
  r.enabled = new_size > 0;
  ++reconfigurations_;
  return OkStatus();
}

Status Tzasc::SetDmaPermission(World caller, int index, DeviceId device,
                               bool allowed) {
  TZLLM_RETURN_IF_ERROR(CheckCallerSecure(caller));
  if (index < 0 || index >= kNumRegions) {
    return InvalidArgument("TZASC region index out of range");
  }
  regions_[index].dma_allowed[static_cast<size_t>(device)] = allowed;
  ++reconfigurations_;
  return OkStatus();
}

bool Tzasc::IsSecure(PhysAddr addr, uint64_t len) const {
  for (const TzascRegion& r : regions_) {
    if (r.Overlaps(addr, len)) {
      return true;
    }
  }
  return false;
}

Status Tzasc::CheckCpuAccess(World world, PhysAddr addr, uint64_t len) const {
  if (world == World::kSecure) {
    return OkStatus();
  }
  if (IsSecure(addr, len)) {
    ++cpu_faults_;
    return PermissionDenied("non-secure CPU access to secure memory");
  }
  return OkStatus();
}

Status Tzasc::CheckDmaAccess(DeviceId device, PhysAddr addr,
                             uint64_t len) const {
  for (int i = 0; i < kNumRegions; ++i) {
    const TzascRegion& r = regions_[i];
    if (!r.Overlaps(addr, len)) {
      continue;
    }
    if (!r.Contains(addr, len)) {
      ++dma_faults_;
      return PermissionDenied("DMA transaction straddles a secure region");
    }
    if (!r.dma_allowed[static_cast<size_t>(device)]) {
      ++dma_faults_;
      return PermissionDenied(std::string("DMA into secure region denied for ") +
                              DeviceName(device));
    }
    return OkStatus();
  }
  return OkStatus();
}

}  // namespace tzllm
