#include "src/hw/platform.h"

namespace tzllm {

SocPlatform::SocPlatform(const PlatformConfig& config) : config_(config) {
  dram_ = std::make_unique<PhysMemory>(config.dram_bytes);
  npu_ = std::make_unique<NpuDevice>(&sim_, &tzasc_, &tzpc_, &gic_);
  flash_ = std::make_unique<FlashDevice>(&sim_, dram_.get(), &tzasc_);
}

}  // namespace tzllm
