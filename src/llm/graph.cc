#include "src/llm/graph.h"

namespace tzllm {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kEmbed:
      return "embed";
    case OpKind::kAttnNorm:
      return "attn_norm";
    case OpKind::kQkvMatmul:
      return "qkv";
    case OpKind::kAttention:
      return "attention";
    case OpKind::kAttnOut:
      return "attn_out";
    case OpKind::kFfnNorm:
      return "ffn_norm";
    case OpKind::kFfnGateUp:
      return "ffn_gate_up";
    case OpKind::kFfnAct:
      return "ffn_act";
    case OpKind::kFfnDown:
      return "ffn_down";
    case OpKind::kAttnFused:
      return "attn_fused";
    case OpKind::kFfnFused:
      return "ffn_fused";
    case OpKind::kOutputNorm:
      return "output_norm";
    case OpKind::kLmHead:
      return "lm_head";
  }
  return "?";
}

std::string OpNode::DebugName() const {
  std::string out = OpKindName(kind);
  if (layer >= 0) {
    out += "[" + std::to_string(layer) + "]";
  }
  return out;
}

int ComputeGraph::AddNode(OpKind kind, int layer, Backend backend,
                          std::vector<int> tensor_indices,
                          const ModelSpec& spec) {
  OpNode node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = kind;
  node.layer = layer;
  node.backend = backend;
  node.tensor_indices = std::move(tensor_indices);
  for (int ti : node.tensor_indices) {
    const TensorSpec& t = spec.tensor(ti);
    node.weight_elems += t.rows * t.cols;
    node.weight_bytes += t.bytes;
  }
  if (node.id > 0) {
    node.deps.push_back(node.id - 1);  // Transformer ops form a chain.
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

namespace {
int IndexOf(const ModelSpec& spec, TensorRole role, int layer) {
  const TensorSpec* t = spec.Find(role, layer);
  return t == nullptr ? -1 : t->index;
}
}  // namespace

ComputeGraph ComputeGraph::BuildPrefill(const ModelSpec& spec) {
  ComputeGraph g;
  g.phase_ = GraphPhase::kPrefill;
  g.AddNode(OpKind::kEmbed, -1, Backend::kCpu,
            {IndexOf(spec, TensorRole::kTokEmbedding, -1)}, spec);
  for (int l = 0; l < spec.config().n_layers; ++l) {
    g.AddNode(OpKind::kAttnNorm, l, Backend::kCpu,
              {IndexOf(spec, TensorRole::kAttnNorm, l)}, spec);
    g.AddNode(OpKind::kQkvMatmul, l, Backend::kNpu,
              {IndexOf(spec, TensorRole::kWq, l),
               IndexOf(spec, TensorRole::kWk, l),
               IndexOf(spec, TensorRole::kWv, l)},
              spec);
    g.AddNode(OpKind::kAttention, l, Backend::kCpu, {}, spec);
    g.AddNode(OpKind::kAttnOut, l, Backend::kNpu,
              {IndexOf(spec, TensorRole::kWo, l)}, spec);
    g.AddNode(OpKind::kFfnNorm, l, Backend::kCpu,
              {IndexOf(spec, TensorRole::kFfnNorm, l)}, spec);
    g.AddNode(OpKind::kFfnGateUp, l, Backend::kNpu,
              {IndexOf(spec, TensorRole::kWGate, l),
               IndexOf(spec, TensorRole::kWUp, l)},
              spec);
    g.AddNode(OpKind::kFfnAct, l, Backend::kCpu, {}, spec);
    g.AddNode(OpKind::kFfnDown, l, Backend::kNpu,
              {IndexOf(spec, TensorRole::kWDown, l)}, spec);
  }
  g.AddNode(OpKind::kOutputNorm, -1, Backend::kCpu,
            {IndexOf(spec, TensorRole::kOutputNorm, -1)}, spec);
  g.AddNode(OpKind::kLmHead, -1, Backend::kNpu,
            {IndexOf(spec, TensorRole::kLmHead, -1)}, spec);
  return g;
}

ComputeGraph ComputeGraph::BuildDecode(const ModelSpec& spec) {
  ComputeGraph g;
  g.phase_ = GraphPhase::kDecode;
  g.AddNode(OpKind::kEmbed, -1, Backend::kCpu,
            {IndexOf(spec, TensorRole::kTokEmbedding, -1)}, spec);
  for (int l = 0; l < spec.config().n_layers; ++l) {
    g.AddNode(OpKind::kAttnNorm, l, Backend::kCpu,
              {IndexOf(spec, TensorRole::kAttnNorm, l)}, spec);
    g.AddNode(OpKind::kAttnFused, l, Backend::kNpu,
              {IndexOf(spec, TensorRole::kWq, l),
               IndexOf(spec, TensorRole::kWk, l),
               IndexOf(spec, TensorRole::kWv, l),
               IndexOf(spec, TensorRole::kWo, l)},
              spec);
    g.AddNode(OpKind::kFfnNorm, l, Backend::kCpu,
              {IndexOf(spec, TensorRole::kFfnNorm, l)}, spec);
    g.AddNode(OpKind::kFfnFused, l, Backend::kNpu,
              {IndexOf(spec, TensorRole::kWGate, l),
               IndexOf(spec, TensorRole::kWUp, l),
               IndexOf(spec, TensorRole::kWDown, l)},
              spec);
  }
  g.AddNode(OpKind::kOutputNorm, -1, Backend::kCpu,
            {IndexOf(spec, TensorRole::kOutputNorm, -1)}, spec);
  g.AddNode(OpKind::kLmHead, -1, Backend::kNpu,
            {IndexOf(spec, TensorRole::kLmHead, -1)}, spec);
  return g;
}

std::vector<int> ComputeGraph::WeightConsumers() const {
  std::vector<int> out;
  for (const OpNode& n : nodes_) {
    if (!n.tensor_indices.empty()) {
      out.push_back(n.id);
    }
  }
  return out;
}

uint64_t ComputeGraph::WeightBytesUpTo(int up_to_id) const {
  uint64_t total = 0;
  for (const OpNode& n : nodes_) {
    if (n.id > up_to_id) {
      break;
    }
    total += n.weight_bytes;
  }
  return total;
}

uint64_t ComputeGraph::TotalWeightBytes() const {
  return WeightBytesUpTo(size() - 1);
}

int ComputeGraph::NpuOpCount() const {
  int count = 0;
  for (const OpNode& n : nodes_) {
    if (n.backend == Backend::kNpu) {
      ++count;
    }
  }
  return count;
}

}  // namespace tzllm
