// Model architecture descriptions: the four on-device LLMs the paper
// evaluates (§7, "Models and deployment") plus tiny functional-test models.
//
// For the paper models the per-tensor byte sizes are scaled so the Q8_0
// total matches the quoted parameter sizes (1.0 / 3.3 / 3.7 / 7.9 GiB —
// Figure 1's "8137 MB" for Llama-3-8B is 7.95 GiB). Scaled models cannot be
// materialized; the tiny models (scale 1.0) carry real weights.

#ifndef SRC_LLM_MODEL_SPEC_H_
#define SRC_LLM_MODEL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/llm/tensor.h"

namespace tzllm {

struct LlmConfig {
  std::string name;
  int n_layers = 0;
  int d_model = 0;
  int n_heads = 0;
  int n_kv_heads = 0;
  int d_ff = 0;
  int vocab_size = 0;
  int max_ctx = 2048;
  // If non-zero, tensor byte sizes are scaled so the total matches.
  uint64_t target_param_bytes = 0;

  int head_dim() const { return d_model / n_heads; }
  int kv_dim() const { return n_kv_heads * head_dim(); }
};

enum class TensorRole : uint8_t {
  kTokEmbedding,
  kAttnNorm,
  kWq,
  kWk,
  kWv,
  kWo,
  kFfnNorm,
  kWGate,
  kWUp,
  kWDown,
  kOutputNorm,
  kLmHead,
};

// Precomputed RoPE rotation table: head_dim floats per position, laid out as
// interleaved (cos, sin) pairs for each rotation pair index. Built once per
// ModelSpec so the hot loop never calls std::pow/cos/sin per element.
class RopeTable {
 public:
  RopeTable() = default;
  RopeTable(int head_dim, int max_ctx);

  bool empty() const { return data_.empty(); }
  int head_dim() const { return head_dim_; }
  int max_ctx() const { return max_ctx_; }
  // head_dim floats: cos/sin of pos * freq_j for rotation pair j.
  const float* Row(int pos) const {
    return data_.data() + static_cast<size_t>(pos) * head_dim_;
  }

 private:
  int head_dim_ = 0;
  int max_ctx_ = 0;
  std::vector<float> data_;
};

struct TensorSpec {
  int index = 0;
  std::string name;
  TensorRole role = TensorRole::kTokEmbedding;
  int layer = -1;  // -1 for global tensors.
  uint64_t rows = 0;
  uint64_t cols = 0;
  DType dtype = DType::kQ8_0;
  // Payload size (natural storage size x model scale).
  uint64_t data_bytes = 0;
  // Storage extent in the data file / parameter region: data_bytes rounded
  // up to a page. Page alignment is load-bearing: TZASC protection is page-
  // granular, and extend_protected must never cover bytes a later flash DMA
  // still has to write (§4.2).
  uint64_t bytes = 0;
  uint64_t file_offset = 0;
};

class ModelSpec {
 public:
  static ModelSpec Create(const LlmConfig& config);

  const LlmConfig& config() const { return config_; }
  const std::vector<TensorSpec>& tensors() const { return tensors_; }
  const TensorSpec& tensor(int index) const { return tensors_.at(index); }

  uint64_t total_param_bytes() const { return total_param_bytes_; }
  double size_scale() const { return size_scale_; }
  bool materializable() const { return size_scale_ == 1.0; }

  // Finds the tensor for (role, layer); layer = -1 for globals.
  const TensorSpec* Find(TensorRole role, int layer) const;

  // Head-geometry checks the functional engine depends on: positive
  // dimensions, d_model divisible into heads, GQA head grouping, and — the
  // sharp edge — an even head_dim (RoPE rotates (i, i+1) element pairs; an
  // odd head_dim would read one float past every head). The executor fails
  // fast on this instead of corrupting activations.
  Status ValidateGeometry() const;

  // Rotation table covering positions [0, max_ctx). Empty for paper-scale
  // (non-materializable) specs — they never run the functional engine — and
  // for configs without a valid head geometry; the executor falls back to
  // per-call ApplyRope when empty.
  const RopeTable& rope() const { return rope_; }

  // KV-cache bytes for a context of `n_tokens` (f16 K and V per layer —
  // the production KvStorage::kF16 arena width; the f32 reference mode
  // stores, and must be budgeted at, twice this).
  uint64_t KvCacheBytes(int n_tokens) const;
  // Activation workspace bytes (fixed-size buffers, §4.2).
  uint64_t ActivationBytes() const;

 private:
  LlmConfig config_;
  std::vector<TensorSpec> tensors_;
  RopeTable rope_;
  uint64_t total_param_bytes_ = 0;
  double size_scale_ = 1.0;
};

// --- Paper model presets. ---
LlmConfig TinyLlama1_1B();  // 1.0 GiB at Q8_0.
LlmConfig Qwen2_5_3B();     // 3.3 GiB.
LlmConfig Phi3_3_8B();      // 3.7 GiB.
LlmConfig Llama3_8B();      // 7.9 GiB.
// All four, in the paper's order.
std::vector<LlmConfig> PaperModels();

// --- Functional-test presets (materializable). ---
LlmConfig TestTinyModel();   // 2 layers, d=64: fast real inference.
LlmConfig TestSmallModel();  // 4 layers, d=128: heavier integration tests.

}  // namespace tzllm

#endif  // SRC_LLM_MODEL_SPEC_H_
