// Byte-fallback greedy tokenizer: 256 byte tokens + BOS/EOS + a merge
// vocabulary built deterministically from a seed corpus (the same way a BPE
// vocab ships inside a GGUF file). Exact encode/decode round-trip for any
// byte string — which is what the integration tests assert when comparing
// protected vs. unprotected inference.
//
// The tokenizer state is part of the framework checkpoint (§3.2): building
// the vocab is deliberately non-trivial work that Save/Restore elides.

#ifndef SRC_LLM_TOKENIZER_H_
#define SRC_LLM_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace tzllm {

using TokenId = int32_t;

class Tokenizer {
 public:
  static constexpr TokenId kBos = 256;
  static constexpr TokenId kEos = 257;
  static constexpr TokenId kFirstMerged = 258;

  // Builds a vocabulary of `vocab_size` tokens (>= 258). Merged tokens are
  // derived from frequent n-grams of an embedded seed corpus.
  explicit Tokenizer(int vocab_size);

  // Greedy longest-match encoding (no BOS prepended; callers decide).
  std::vector<TokenId> Encode(const std::string& text) const;
  std::string Decode(const std::vector<TokenId>& tokens) const;
  std::string DecodeToken(TokenId token) const;

  int vocab_size() const { return static_cast<int>(pieces_.size()); }

  // Serialization for the checkpoint service.
  std::vector<uint8_t> Serialize() const;
  static Result<Tokenizer> Deserialize(const std::vector<uint8_t>& blob);

 private:
  Tokenizer() = default;
  void BuildIndex();

  std::vector<std::string> pieces_;  // pieces_[id] = token string.
  // Longest-match index: piece -> id (byte pieces included).
  std::unordered_map<std::string, TokenId> index_;
  size_t max_piece_len_ = 1;
};

}  // namespace tzllm

#endif  // SRC_LLM_TOKENIZER_H_
