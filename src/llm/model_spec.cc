#include "src/llm/model_spec.h"

#include <cmath>

namespace tzllm {

namespace {

void AddTensor(std::vector<TensorSpec>* tensors, const std::string& name,
               TensorRole role, int layer, uint64_t rows, uint64_t cols,
               DType dtype) {
  TensorSpec spec;
  spec.index = static_cast<int>(tensors->size());
  spec.name = name;
  spec.role = role;
  spec.layer = layer;
  spec.rows = rows;
  spec.cols = cols;
  spec.dtype = dtype;
  spec.data_bytes = DTypeByteSize(dtype, rows * cols);
  spec.bytes = AlignUp(spec.data_bytes, kPageSize);
  tensors->push_back(std::move(spec));
}

}  // namespace

RopeTable::RopeTable(int head_dim, int max_ctx)
    : head_dim_(head_dim), max_ctx_(max_ctx) {
  data_.resize(static_cast<size_t>(max_ctx) * head_dim);
  // Same frequency formula as the legacy ApplyRope (float pow so the table
  // matches the per-call path bit-for-bit): freq_j = 10000^(-2j/head_dim),
  // position-independent, so computed once per pair.
  std::vector<float> freqs(head_dim / 2);
  for (int i = 0; i < head_dim; i += 2) {
    freqs[i / 2] = std::pow(10000.0f, -static_cast<float>(i) / head_dim);
  }
  for (int pos = 0; pos < max_ctx; ++pos) {
    float* row = data_.data() + static_cast<size_t>(pos) * head_dim;
    for (int i = 0; i < head_dim; i += 2) {
      const float angle = pos * freqs[i / 2];
      row[i] = std::cos(angle);
      row[i + 1] = std::sin(angle);
    }
  }
}

ModelSpec ModelSpec::Create(const LlmConfig& config) {
  ModelSpec spec;
  spec.config_ = config;
  auto& tensors = spec.tensors_;
  const uint64_t d = config.d_model;
  const uint64_t kv = config.kv_dim();
  const uint64_t ff = config.d_ff;
  const uint64_t vocab = config.vocab_size;

  AddTensor(&tensors, "token_embd.weight", TensorRole::kTokEmbedding, -1,
            vocab, d, DType::kQ8_0);
  for (int l = 0; l < config.n_layers; ++l) {
    const std::string p = "blk." + std::to_string(l) + ".";
    AddTensor(&tensors, p + "attn_norm.weight", TensorRole::kAttnNorm, l, 1, d,
              DType::kF32);
    AddTensor(&tensors, p + "attn_q.weight", TensorRole::kWq, l, d, d,
              DType::kQ8_0);
    AddTensor(&tensors, p + "attn_k.weight", TensorRole::kWk, l, kv, d,
              DType::kQ8_0);
    AddTensor(&tensors, p + "attn_v.weight", TensorRole::kWv, l, kv, d,
              DType::kQ8_0);
    AddTensor(&tensors, p + "attn_output.weight", TensorRole::kWo, l, d, d,
              DType::kQ8_0);
    AddTensor(&tensors, p + "ffn_norm.weight", TensorRole::kFfnNorm, l, 1, d,
              DType::kF32);
    AddTensor(&tensors, p + "ffn_gate.weight", TensorRole::kWGate, l, ff, d,
              DType::kQ8_0);
    AddTensor(&tensors, p + "ffn_up.weight", TensorRole::kWUp, l, ff, d,
              DType::kQ8_0);
    AddTensor(&tensors, p + "ffn_down.weight", TensorRole::kWDown, l, d, ff,
              DType::kQ8_0);
  }
  AddTensor(&tensors, "output_norm.weight", TensorRole::kOutputNorm, -1, 1, d,
            DType::kF32);
  AddTensor(&tensors, "output.weight", TensorRole::kLmHead, -1, vocab, d,
            DType::kQ8_0);

  uint64_t natural = 0;
  for (const TensorSpec& t : tensors) {
    natural += t.data_bytes;
  }
  if (config.target_param_bytes != 0) {
    spec.size_scale_ =
        static_cast<double>(config.target_param_bytes) / natural;
    for (TensorSpec& t : tensors) {
      t.data_bytes = AlignUp(
          static_cast<uint64_t>(std::llround(t.data_bytes * spec.size_scale_)),
          64);
      t.bytes = AlignUp(t.data_bytes, kPageSize);
    }
  }
  uint64_t offset = 0;
  uint64_t total = 0;
  for (TensorSpec& t : tensors) {
    t.file_offset = offset;
    offset += t.bytes;
    total += t.bytes;
  }
  spec.total_param_bytes_ = total;
  // Only materializable specs can run the functional engine; paper-scale
  // (cost-model-only) specs skip the table fill and its memory.
  if (spec.materializable() && config.n_heads > 0 && config.d_model > 0 &&
      config.max_ctx > 0 && config.head_dim() % 2 == 0) {
    spec.rope_ = RopeTable(config.head_dim(), config.max_ctx);
  }
  return spec;
}

Status ModelSpec::ValidateGeometry() const {
  const LlmConfig& c = config_;
  if (c.n_layers <= 0 || c.d_model <= 0 || c.n_heads <= 0 ||
      c.n_kv_heads <= 0 || c.d_ff <= 0 || c.vocab_size <= 0 ||
      c.max_ctx <= 0) {
    return InvalidArgument("model config has a non-positive dimension");
  }
  if (c.d_model % c.n_heads != 0) {
    return InvalidArgument("d_model=" + std::to_string(c.d_model) +
                           " not divisible by n_heads=" +
                           std::to_string(c.n_heads));
  }
  if (c.head_dim() % 2 != 0) {
    return InvalidArgument(
        "head_dim=" + std::to_string(c.head_dim()) +
        " is odd: RoPE rotates (i, i+1) element pairs and requires an even "
        "head_dim");
  }
  if (c.n_heads % c.n_kv_heads != 0) {
    return InvalidArgument("n_heads=" + std::to_string(c.n_heads) +
                           " not divisible by n_kv_heads=" +
                           std::to_string(c.n_kv_heads) +
                           " (GQA groups must be uniform)");
  }
  return OkStatus();
}

const TensorSpec* ModelSpec::Find(TensorRole role, int layer) const {
  for (const TensorSpec& t : tensors_) {
    if (t.role == role && t.layer == layer) {
      return &t;
    }
  }
  return nullptr;
}

uint64_t ModelSpec::KvCacheBytes(int n_tokens) const {
  // K and V, f16, per layer.
  return 2ull * config_.n_layers * config_.kv_dim() * n_tokens * 2;
}

uint64_t ModelSpec::ActivationBytes() const {
  // Hidden state, attention scratch, logits and graph workspace. Matches the
  // order of magnitude in Figure 1 (266.5 MB for Llama-3-8B).
  return static_cast<uint64_t>(config_.d_model) * config_.max_ctx * 4 * 8 +
         static_cast<uint64_t>(config_.vocab_size) * 4;
}

LlmConfig TinyLlama1_1B() {
  LlmConfig c;
  c.name = "TinyLlama-1.1B";
  c.n_layers = 22;
  c.d_model = 2048;
  c.n_heads = 32;
  c.n_kv_heads = 4;
  c.d_ff = 5632;
  c.vocab_size = 32000;
  c.target_param_bytes = static_cast<uint64_t>(1.0 * kGiB);
  return c;
}

LlmConfig Qwen2_5_3B() {
  LlmConfig c;
  c.name = "Qwen2.5-3B";
  c.n_layers = 36;
  c.d_model = 2048;
  c.n_heads = 16;
  c.n_kv_heads = 2;
  c.d_ff = 11008;
  c.vocab_size = 151936;
  c.target_param_bytes = static_cast<uint64_t>(3.3 * kGiB);
  return c;
}

LlmConfig Phi3_3_8B() {
  LlmConfig c;
  c.name = "Phi-3-3.8B";
  c.n_layers = 32;
  c.d_model = 3072;
  c.n_heads = 32;
  c.n_kv_heads = 32;
  c.d_ff = 8192;
  c.vocab_size = 32064;
  c.target_param_bytes = static_cast<uint64_t>(3.7 * kGiB);
  return c;
}

LlmConfig Llama3_8B() {
  LlmConfig c;
  c.name = "Llama-3-8B";
  c.n_layers = 32;
  c.d_model = 4096;
  c.n_heads = 32;
  c.n_kv_heads = 8;
  c.d_ff = 14336;
  c.vocab_size = 128256;
  c.target_param_bytes = static_cast<uint64_t>(7.9 * kGiB);
  return c;
}

std::vector<LlmConfig> PaperModels() {
  return {TinyLlama1_1B(), Qwen2_5_3B(), Phi3_3_8B(), Llama3_8B()};
}

LlmConfig TestTinyModel() {
  LlmConfig c;
  c.name = "test-tiny";
  c.n_layers = 2;
  c.d_model = 64;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 160;
  c.vocab_size = 256;
  c.max_ctx = 128;
  return c;
}

LlmConfig TestSmallModel() {
  LlmConfig c;
  c.name = "test-small";
  c.n_layers = 4;
  c.d_model = 128;
  c.n_heads = 8;
  c.n_kv_heads = 4;
  c.d_ff = 352;
  c.vocab_size = 512;
  c.max_ctx = 256;
  return c;
}

}  // namespace tzllm
