// NpuBackend — batched-prefill matmuls as secure NPU jobs (paper §4.3).
//
// Each MatMat becomes one self-contained execution context: the chunk's
// quantized activations are snapshotted into the slot (the job's pinned
// input buffer), the command stream / I/O page table / buffers are laid out
// in the TA's TZASC-protected scratch window, the duration is priced by the
// cost model's NPU throughput, and the functional payload reuses the scalar
// kernel table so the offloaded result is bit-identical to the CPU path.
// Contexts are double-buffered: while job n executes on the (simulated) NPU
// timeline, job n+1's context is prepared on the CPU and submitted, and the
// co-driver's shadow-job queue sequences the launches.

#include <algorithm>
#include <utility>

#include "src/common/units.h"
#include "src/llm/backend/backend.h"
#include "src/llm/cost_model.h"
#include "src/llm/engine_options.h"
#include "src/llm/model_spec.h"
#include "src/llm/simd/kernels.h"
#include "src/tee/npu_driver.h"

namespace tzllm {

namespace {

// One execution context's layout for an m-position matmul over a rows x cols
// weight: command stream + I/O page table (one page each), then the pinned
// input (int8 activations + one float scale per 32-block) and output (m rows
// of floats) buffers, page-aligned. The single source of truth for both the
// budget (ContextBytes) and the runtime layout (MatMat) — they cannot drift.
struct SlotLayout {
  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  uint64_t slot_bytes = 0;
};

SlotLayout LayoutFor(uint64_t m, uint64_t rows, uint64_t cols) {
  SlotLayout layout;
  layout.in_bytes = AlignUp(
      m * cols + m * (cols / kQ8BlockElems) * sizeof(float), kPageSize);
  layout.out_bytes = AlignUp(m * rows * sizeof(float), kPageSize);
  layout.slot_bytes = 2 * kPageSize + layout.in_bytes + layout.out_bytes;
  return layout;
}

}  // namespace

uint64_t NpuBackend::ContextBytes(const ModelSpec& spec,
                                  const EngineOptions& options) {
  const LlmConfig& c = spec.config();
  const uint64_t m =
      static_cast<uint64_t>(std::max(1, options.prefill_batch));
  // Every prefill matmul has rows, cols in {d_model, kv_dim, d_ff}; size the
  // slot for the worst case so any chunk's job fits.
  const uint64_t dim = std::max<uint64_t>(
      {static_cast<uint64_t>(c.d_model), static_cast<uint64_t>(c.d_ff),
       static_cast<uint64_t>(c.kv_dim())});
  return kJobSlots * LayoutFor(m, dim, dim).slot_bytes;
}

NpuBackend::NpuBackend(const NpuBackendConfig& config)
    : config_(config), slot_bytes_(config.ctx_bytes / kJobSlots) {}

NpuBackend::~NpuBackend() {
  // Never leave a job's completion callback pointing at a destroyed slot.
  (void)Sync();
}

Status NpuBackend::AwaitSlot(int slot) {
  Slot& s = slots_[slot];
  if (!s.pending) {
    return OkStatus();
  }
  s.pending = false;
  return config_.driver->WaitForJob(s.job_id);
}

std::shared_ptr<const Q8Acts> NpuBackend::SnapshotActs(const Q8Acts& x) {
  // One quantization feeds several matmuls (QKV share one, gate/up share
  // one); key the pinned copy on (source, generation) so the group copies
  // the buffer once instead of once per job.
  if (snapshot_src_ != &x || snapshot_gen_ != x.generation ||
      snapshot_ == nullptr) {
    auto snap = std::make_shared<Q8Acts>();
    const uint64_t q_bytes = x.m * x.cols;
    const uint64_t n_scales = x.m * (x.cols / kQ8BlockElems);
    snap->q.assign(x.q.begin(), x.q.begin() + q_bytes);
    snap->scale.assign(x.scale.begin(), x.scale.begin() + n_scales);
    snap->cols = x.cols;
    snap->m = x.m;
    snapshot_ = std::move(snap);
    snapshot_src_ = &x;
    snapshot_gen_ = x.generation;
  }
  return snapshot_;
}

Status NpuBackend::MatMat(const uint8_t* w, uint64_t rows, uint64_t cols,
                          const Q8Acts& x, float* y) {
  const Status st = MatMatImpl(w, rows, cols, x, y);
  if (!st.ok()) {
    // Failing a group must not leave earlier jobs of it in flight: their
    // payloads write through captured pointers into the caller's workspace,
    // which the caller is free to destroy once we return the error (the
    // executor tears down before this backend). Drain first, report the
    // original error.
    (void)Sync();
  }
  return st;
}

Status NpuBackend::MatMatImpl(const uint8_t* w, uint64_t rows, uint64_t cols,
                              const Q8Acts& x, float* y) {
  if (config_.driver == nullptr || config_.platform == nullptr) {
    return FailedPrecondition("NpuBackend not wired to a co-driver");
  }
  const int slot = static_cast<int>(next_slot_++ % kJobSlots);
  // Double buffering: reusing a slot means its previous job (two MatMats
  // ago) must have retired; everything younger may still be in flight.
  TZLLM_RETURN_IF_ERROR(AwaitSlot(slot));
  Slot& s = slots_[slot];

  // Context preparation — the part that overlaps the in-flight job's NPU
  // execution. The snapshot makes the job self-contained (the executor
  // reuses its Q8Acts scratch for the next group as soon as Sync returns).
  s.acts = SnapshotActs(x);

  NpuJobDesc desc;
  const PhysAddr base = config_.ctx_base + slot * slot_bytes_;
  const SlotLayout layout = LayoutFor(x.m, rows, cols);
  desc.cmd_addr = base;
  desc.cmd_size = kPageSize;
  desc.iopt_addr = base + kPageSize;
  desc.iopt_size = kPageSize;
  // Input (pinned activation snapshot) and output buffers. Weight pages are
  // streamed through the params-region TZASC grant the co-driver programs
  // for the secure window; the job-private context lives in scratch.
  desc.buffers = {{base + 2 * kPageSize, layout.in_bytes},
                  {base + 2 * kPageSize + layout.in_bytes, layout.out_bytes}};
  if (layout.slot_bytes > slot_bytes_) {
    return ResourceExhausted("NPU job context exceeds its scratch slot");
  }
  desc.duration =
      CostModel::NpuMatmulTime(rows, cols, static_cast<int>(x.m));
  // Functional payload: bit-exact with the CPU path by construction — the
  // scalar table is the frozen baseline every backend matches on the
  // integer-dot rows. The shared_ptr keeps the pinned input alive for the
  // job's whole lifetime, independent of slot reuse.
  desc.compute = [acts = s.acts, w, rows, cols, y]() -> Status {
    MatMatQ8(w, rows, cols, *acts, y, /*pool=*/nullptr, ScalarKernels());
    return OkStatus();
  };

  auto id = config_.driver->SubmitJob(config_.ta, desc, nullptr);
  if (!id.ok()) {
    return id.status();
  }
  s.job_id = *id;
  s.pending = true;
  ++jobs_submitted_;
  return OkStatus();
}

Status NpuBackend::MatVec(const float* x, uint64_t cols,
                          const MatTarget* targets, int n_targets) {
  (void)x;
  (void)cols;
  (void)targets;
  (void)n_targets;
  return Status(ErrorCode::kUnimplemented,
                "NpuBackend handles batched-prefill MatMat only; "
                "single-position MatVec belongs on the CPU backend");
}

Status NpuBackend::Sync() {
  Status first;
  for (int i = 0; i < kJobSlots; ++i) {
    const Status st = AwaitSlot(i);
    if (!st.ok() && first.ok()) {
      first = st;
    }
  }
  return first;
}

}  // namespace tzllm
