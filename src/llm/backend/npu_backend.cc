// NpuBackend — batched-prefill work as *fused* secure NPU jobs (paper §4.3).
//
// One submission = one job: a whole matmul group (QKV) or a whole
// post-attention layer tail (Wo + residual + FFN) rides a single execution
// context — command stream, I/O page table and every sub-buffer laid out in
// the TA's TZASC-protected scratch window and validated by the co-driver —
// so the per-job world-switch cost (~54 us modeled) is paid 2x per
// layer-chunk instead of 7x. Jobs are zero-copy: the pinned input buffer is
// the caller's own activation buffer, stable until the ticket retires (the
// ComputeBackend lifetime contract), so context preparation is descriptor
// packing, not memcpy.
//
// Durations are priced by CostModel::NpuFusedJobTime; the functional
// payload runs the same host helpers (MatMatQ8 / layer-tail stages) over
// the engine's kernel table, so the offloaded result is bit-identical to
// the CPU path. Completion is per job: the executor's pipelined prefill
// defers each blocking Await to the true dependency point, computing
// another chunk's attention on the CPU while jobs run on the (simulated)
// NPU timeline (TryPoll/TryPollJob expose the matching non-blocking query
// for diagnostics and poll-driven schedulers). With hybrid_timeline on,
// the backend charges
// the host's measured wall time between backend calls to the simulator
// clock, so the virtual prefill makespan composes real CPU segments with
// modeled NPU execution — overlap and pipeline bubbles both show up in one
// coherent number.

#include <algorithm>
#include <utility>

#include "src/common/units.h"
#include "src/llm/backend/backend.h"
#include "src/llm/cost_model.h"
#include "src/llm/engine_options.h"
#include "src/llm/model_spec.h"
#include "src/llm/simd/kernels.h"
#include "src/tee/npu_driver.h"

namespace tzllm {

namespace {

uint64_t ActsBytes(uint64_t m, uint64_t cols) {
  return AlignUp(m * cols + m * (cols / kQ8BlockElems) * sizeof(float),
                 kPageSize);
}

uint64_t OutBytes(uint64_t m, uint64_t rows) {
  return AlignUp(m * rows * sizeof(float), kPageSize);
}

// EVERY buffer a fused layer-tail payload touches beyond the pinned input:
// the residual stream, the proj/norm scratch, the d_ff-wide requantization
// activations and the gate/up/down rows. Single source of truth for the
// submit-time descriptor AND the ContextBytes budget — the TZASC
// validation story ("every sub-buffer validated") only holds if this list
// is exhaustive, so additions to RunLayerTail must extend it.
std::vector<uint64_t> TailBufferBytes(uint64_t m, uint64_t d, uint64_t ff) {
  return {OutBytes(m, d),   // hiddens (read + write)
          OutBytes(m, d),   // proj
          OutBytes(m, d),   // norm
          ActsBytes(m, ff), // requantization acts (largest use: d_ff cols)
          OutBytes(m, ff),  // gate
          OutBytes(m, ff),  // up
          OutBytes(m, d)};  // down
}

}  // namespace

uint64_t NpuBackend::ContextBytes(const ModelSpec& spec,
                                  const EngineOptions& options) {
  const LlmConfig& c = spec.config();
  const uint64_t m =
      static_cast<uint64_t>(std::max(1, options.prefill_batch));
  const uint64_t d = static_cast<uint64_t>(c.d_model);
  const uint64_t ff = static_cast<uint64_t>(c.d_ff);
  const uint64_t kv = static_cast<uint64_t>(c.kv_dim());
  // The two job shapes, each: command + iopt page, pinned input
  // activations, then every data buffer the payload touches. The unfused
  // stage jobs are strict subsets of the fused tail (same lists, split),
  // so the max over these two covers every granularity.
  const uint64_t qkv_slot = 2 * kPageSize + ActsBytes(m, d) +
                            OutBytes(m, d) + 2 * OutBytes(m, kv);
  uint64_t tail_slot = 2 * kPageSize + ActsBytes(m, d);
  for (uint64_t bytes : TailBufferBytes(m, d, ff)) {
    tail_slot += bytes;
  }
  return kJobSlots * std::max(qkv_slot, tail_slot);
}

NpuBackend::NpuBackend(const NpuBackendConfig& config)
    : config_(config), slot_bytes_(config.ctx_bytes / kJobSlots) {
  if (config_.kernels == nullptr) {
    config_.kernels = ScalarKernels();
  }
}

NpuBackend::~NpuBackend() {
  // Never leave a job's completion callback pointing at destroyed state.
  (void)Sync();
}

void NpuBackend::AdvanceHostTime() {
  if (!config_.hybrid_timeline || config_.platform == nullptr) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  double dt = 0;
  {
    MutexLock lock(&mu_);
    if (host_mark_valid_) {
      dt = std::chrono::duration<double>(now - host_mark_).count();
    }
    host_mark_valid_ = true;
    host_mark_ = now;
  }
  if (dt > 0) {
    // The CPU worked for dt wall seconds since the last backend call;
    // advance the virtual clock through that segment so concurrently
    // in-flight NPU jobs complete "during" it — this is the overlap.
    // Driving the simulator runs completion chains on this stack: mu_ is
    // released first.
    Simulator& sim = config_.platform->sim();
    sim.RunUntil(sim.Now() + FromSeconds(dt));
  }
}

void NpuBackend::MarkHostTime() {
  if (!config_.hybrid_timeline) {
    return;
  }
  MutexLock lock(&mu_);
  host_mark_valid_ = true;
  host_mark_ = std::chrono::steady_clock::now();
}

Status NpuBackend::AwaitOldest() {
  Pending oldest;
  {
    MutexLock lock(&mu_);
    if (pending_.empty()) {
      return OkStatus();
    }
    oldest = std::move(pending_.front());
    pending_.pop_front();
  }
  Simulator& sim = config_.platform->sim();
  const SimTime before = sim.Now();
  Status st = config_.driver->WaitForJob(oldest.job_id, config_.job_timeout);
  if (st.ok()) {
    const SimDuration stalled = sim.Now() - before;
    MutexLock lock(&mu_);
    await_stall_time_ += stalled;
    return st;
  }
  // Fault quiesce: a failed/lost job can leave execution-sequence holes
  // that make the co-driver reject every younger takeover as a reorder —
  // including the retries themselves if they are issued behind jobs still
  // in limbo. So recovery first settles the ENTIRE in-flight window (each
  // job either completes normally or joins the failed set, its sequence
  // window consumed or closed by WaitForJob's abandon bookkeeping), then
  // replays the failures one at a time into an empty window where a fresh
  // submission's takeover always validates. The in-flight window only ever
  // holds mutually independent work (the executor awaits at every data
  // dependency), so settling younger jobs before replaying older ones
  // cannot change any result.
  std::vector<Pending> failed;
  failed.push_back(std::move(oldest));
  for (;;) {
    Pending p;
    bool have = false;
    {
      MutexLock lock(&mu_);
      if (!pending_.empty()) {
        p = std::move(pending_.front());
        pending_.pop_front();
        have = true;
      }
    }
    if (!have) {
      break;
    }
    const Status pst =
        config_.driver->WaitForJob(p.job_id, config_.job_timeout);
    if (!pst.ok()) {
      failed.push_back(std::move(p));
    }
  }
  Status first;
  for (const Pending& job : failed) {
    const Status jst = RecoverJob(job, st);
    if (!jst.ok() && first.ok()) {
      first = jst;
    }
  }
  const SimDuration stalled = sim.Now() - before;
  MutexLock lock(&mu_);
  await_stall_time_ += stalled;
  return first;
}

Status NpuBackend::RecoverJob(const Pending& job, Status st) {
  // Bounded recovery, entirely on the virtual clock so the makespan metric
  // stays honest: each resubmission waits out the backoff (letting an
  // aborted device finish its reset), reuses the retired job's context
  // slot, and occupies a fresh job id / sequence number. A transient fault
  // clears within max_retries; a persistent one exhausts them and — with
  // cpu_fallback — the job's payload runs on the host instead. The payload
  // IS the CPU implementation of the group (the same kernel-table helpers
  // a CpuBackend submit runs), so fallback output is bit-identical.
  Simulator& sim = config_.platform->sim();
  for (int attempt = 0; attempt < config_.max_retries; ++attempt) {
    sim.RunUntil(sim.Now() + config_.retry_backoff);
    auto id = SubmitJobInSlot(job.slot, job.shapes, job.in_bytes,
                              job.out_bytes, job.compute);
    if (!id.ok()) {
      st = id.status();
      break;
    }
    st = config_.driver->WaitForJob(*id, config_.job_timeout);
    if (st.ok()) {
      {
        MutexLock lock(&mu_);
        ++jobs_recovered_;
      }
      config_.driver->RecordRecovery(1, 0, 0);
      return OkStatus();
    }
  }
  if (config_.cpu_fallback && job.compute) {
    const Status fst = job.compute();
    if (fst.ok()) {
      {
        MutexLock lock(&mu_);
        ++fallback_jobs_;
        fallback_matmuls_ += job.shapes.size();
      }
      config_.driver->RecordRecovery(0, 1, job.shapes.size());
      return OkStatus();
    }
    return fst;
  }
  return st;
}

Result<uint64_t> NpuBackend::SubmitJobInSlot(
    int slot, const std::vector<NpuMatmulShape>& shapes, uint64_t in_bytes,
    const std::vector<uint64_t>& out_bytes, std::function<Status()> compute) {
  if (config_.driver == nullptr || config_.platform == nullptr) {
    return FailedPrecondition("NpuBackend not wired to a co-driver");
  }
  if (config_.job_timeout == 0) {
    return InvalidArgument(
        "NpuBackendConfig::job_timeout must be positive (a zero deadline "
        "turns a lost job into a hang)");
  }
  if (config_.max_retries < 0) {
    return InvalidArgument("negative NPU retry budget");
  }
  const PhysAddr base = config_.ctx_base + slot * slot_bytes_;

  NpuJobDesc desc;
  desc.cmd_addr = base;
  desc.cmd_size = kPageSize;
  desc.iopt_addr = base + kPageSize;
  desc.iopt_size = kPageSize;
  // Sub-buffer packing: pinned input first, then each data buffer of the
  // fused group, page-aligned, every one individually validated against the
  // TA's protected regions by CreateJob. Weight pages stream through the
  // params-region TZASC grant the co-driver programs for the secure window.
  PhysAddr cursor = base + 2 * kPageSize;
  desc.buffers.emplace_back(cursor, in_bytes);
  cursor += in_bytes;
  for (uint64_t bytes : out_bytes) {
    desc.buffers.emplace_back(cursor, bytes);
    cursor += bytes;
  }
  if (cursor - base > slot_bytes_) {
    return ResourceExhausted("fused NPU job context exceeds its scratch slot");
  }
  desc.matmuls = shapes;
  desc.duration = CostModel::NpuFusedJobTime(shapes);
  desc.compute = std::move(compute);

  auto id = config_.driver->SubmitJob(config_.ta, desc, nullptr);
  if (!id.ok()) {
    return id.status();
  }
  MutexLock lock(&mu_);
  ++jobs_submitted_;
  matmuls_submitted_ += shapes.size();
  return *id;
}

Status NpuBackend::SubmitJob(BackendTicket ticket,
                             const std::vector<NpuMatmulShape>& shapes,
                             uint64_t in_bytes,
                             const std::vector<uint64_t>& out_bytes,
                             std::function<Status()> compute) {
  // Double buffering: a context slot is reusable once the job two
  // submissions ago has retired; jobs complete in submit order (the
  // co-driver enforces monotonic execution sequencing), so retiring the
  // oldest pending job frees the slot this submission reuses.
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (pending_.size() < static_cast<size_t>(kJobSlots)) {
        break;
      }
    }
    TZLLM_RETURN_IF_ERROR(AwaitOldest());
  }
  int slot;
  {
    MutexLock lock(&mu_);
    slot = static_cast<int>(next_slot_++ % kJobSlots);
  }
  // The Pending entry keeps a copy of the payload and the descriptor
  // geometry: that is the replay state AwaitOldest's retry/fallback path
  // rebuilds the job from (the original closure moves into the descriptor
  // and is neutralized on failure, so a copy must outlive the attempt).
  auto id = SubmitJobInSlot(slot, shapes, in_bytes, out_bytes, compute);
  if (!id.ok()) {
    return id.status();
  }
  MutexLock lock(&mu_);
  pending_.push_back(
      {*id, ticket, slot, shapes, in_bytes, out_bytes, std::move(compute)});
  return OkStatus();
}

Result<BackendTicket> NpuBackend::SubmitMatMatGroup(const MatMatOp* ops,
                                                    int n, const Q8Acts& x) {
  AdvanceHostTime();
  BackendTicket ticket;
  {
    MutexLock lock(&mu_);
    ticket = next_ticket_++;
  }
  const int m = static_cast<int>(x.m);
  const uint64_t in_bytes = ActsBytes(x.m, x.cols);
  auto submit_range = [&](int lo, int hi) -> Status {
    std::vector<NpuMatmulShape> shapes;
    std::vector<uint64_t> outs;
    for (int i = lo; i < hi; ++i) {
      shapes.push_back({ops[i].rows, x.cols, m});
      outs.push_back(OutBytes(x.m, ops[i].rows));
    }
    // Zero-copy functional payload: references the caller's activation
    // buffer and output rows directly (stable until the ticket retires).
    std::vector<MatMatOp> group(ops + lo, ops + hi);
    return SubmitJob(ticket, shapes, in_bytes, outs,
                     [group = std::move(group), xp = &x,
                      kernels = config_.kernels]() -> Status {
                       for (const MatMatOp& op : group) {
                         MatMatQ8(op.w, op.rows, xp->cols, *xp, op.y,
                                  /*pool=*/nullptr, kernels);
                       }
                       return OkStatus();
                     });
  };
  Status st;
  if (config_.fuse_jobs) {
    st = submit_range(0, n);  // Whole group, one job.
  } else {
    for (int i = 0; i < n && st.ok(); ++i) {
      st = submit_range(i, i + 1);  // Pre-fusion granularity.
    }
  }
  if (!st.ok()) {
    // Failing a group must not leave earlier jobs of it in flight: their
    // payloads write through captured pointers into the caller's workspace.
    // Drain first, report the original error.
    (void)Sync();
    return st;
  }
  MarkHostTime();
  return ticket;
}

Result<BackendTicket> NpuBackend::SubmitLayerTail(const LayerTailOp& op,
                                                  const Q8Acts& x_attn) {
  AdvanceHostTime();
  BackendTicket ticket;
  {
    MutexLock lock(&mu_);
    ticket = next_ticket_++;
  }
  const uint64_t d = static_cast<uint64_t>(op.d_model);
  const uint64_t ff = static_cast<uint64_t>(op.d_ff);
  const uint64_t m = static_cast<uint64_t>(op.m);
  const uint64_t in_bytes = ActsBytes(m, d);
  const KernelDispatch* kernels = config_.kernels;
  Status st;
  if (config_.fuse_jobs) {
    // The whole post-attention segment as ONE job: four matmuls plus their
    // elementwise glue in a single execution context. Buffers: the pinned
    // attention activations plus every scratch/output row the fused chain
    // touches (TailBufferBytes — exhaustive by contract).
    const std::vector<NpuMatmulShape> shapes = {{d, d, op.m},
                                                {ff, d, op.m},
                                                {ff, d, op.m},
                                                {d, ff, op.m}};
    const std::vector<uint64_t> outs = TailBufferBytes(m, d, ff);
    st = SubmitJob(ticket, shapes, in_bytes, outs,
                   [op, xp = &x_attn, kernels]() -> Status {
                     RunLayerTail(op, *xp, kernels, /*pool=*/nullptr);
                     return OkStatus();
                   });
  } else {
    // Pre-fusion granularity: one job per matmul. Each payload composes the
    // exact stage helpers RunLayerTail uses, and the device executes jobs
    // in submission order, so the unfused schedule computes the identical
    // floats — just with 4x the world switches. Each stage declares its
    // pinned input at the width it actually consumes and every buffer its
    // glue touches.
    struct Stage {
      std::vector<NpuMatmulShape> shapes;
      uint64_t in_bytes;
      std::vector<uint64_t> outs;
      std::function<Status()> compute;
    };
    const Stage stages[] = {
        {{{d, d, op.m}},
         in_bytes,  // x_attn (d_model cols).
         // proj + hiddens + norm + the d_model-wide requantization.
         {OutBytes(m, d), OutBytes(m, d), OutBytes(m, d), ActsBytes(m, d)},
         [op, xp = &x_attn, kernels] {
           MatMatQ8(op.wo, static_cast<uint64_t>(op.d_model), xp->cols, *xp,
                    op.proj, nullptr, kernels);
           LayerTailProjResidualNormQuant(op, kernels);
           return OkStatus();
         }},
        {{{ff, d, op.m}},
         ActsBytes(m, d),  // Requantized norm activations.
         {OutBytes(m, ff)},
         [op, kernels] {
           MatMatQ8(op.w_gate, static_cast<uint64_t>(op.d_ff),
                    static_cast<uint64_t>(op.d_model), *op.acts, op.gate,
                    nullptr, kernels);
           return OkStatus();
         }},
        {{{ff, d, op.m}},
         ActsBytes(m, d),  // Same requantized norm activations.
         // up + gate (silu rewrites it) + the d_ff-wide requantization.
         {OutBytes(m, ff), OutBytes(m, ff), ActsBytes(m, ff)},
         [op, kernels] {
           MatMatQ8(op.w_up, static_cast<uint64_t>(op.d_ff),
                    static_cast<uint64_t>(op.d_model), *op.acts, op.up,
                    nullptr, kernels);
           LayerTailSwiGluQuant(op);
           return OkStatus();
         }},
        {{{d, ff, op.m}},
         ActsBytes(m, ff),  // Requantized SwiGLU activations (d_ff cols).
         {OutBytes(m, d), OutBytes(m, d)},  // down + hiddens residual.
         [op, kernels] {
           MatMatQ8(op.w_down, static_cast<uint64_t>(op.d_model),
                    static_cast<uint64_t>(op.d_ff), *op.acts, op.down,
                    nullptr, kernels);
           LayerTailDownResidual(op);
           return OkStatus();
         }},
    };
    int stage_index = 0;
    for (const Stage& stage : stages) {
      st = SubmitJob(ticket, stage.shapes, stage.in_bytes, stage.outs,
                     stage.compute);
      if (!st.ok()) {
        break;
      }
      // Recovery soundness: the stages chain through the shared
      // requantization scratch, and a failed job may be retried or replayed
      // on the CPU *after* anything concurrently in flight has executed —
      // so a stage must retire before its dependent successor is submitted,
      // or the successor could consume stale scratch the replay then
      // overwrites too late. Each stage is awaited except the last (its
      // consumers await the ticket); only independent work may share the
      // in-flight window.
      if (++stage_index < 4) {
        st = Await(ticket);
        if (!st.ok()) {
          break;
        }
      }
    }
  }
  if (!st.ok()) {
    (void)Sync();
    return st;
  }
  MarkHostTime();
  return ticket;
}

Status NpuBackend::Await(BackendTicket ticket) {
  if (ticket == kCompletedTicket) {
    return OkStatus();
  }
  AdvanceHostTime();
  Status first;
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (pending_.empty() || pending_.front().ticket > ticket) {
        break;
      }
    }
    const Status st = AwaitOldest();
    if (!st.ok() && first.ok()) {
      first = st;
    }
  }
  if (!first.ok()) {
    // A failed job's group-mates may still be in flight against the same
    // caller workspace; drain them before surfacing the error.
    (void)Sync();
  }
  MarkHostTime();
  return first;
}

Result<bool> NpuBackend::TryPoll(BackendTicket ticket) {
  if (ticket == kCompletedTicket) {
    return true;
  }
  // Snapshot the relevant job ids under mu_, then query the driver with it
  // released (the driver takes its own lock; TryPollJob never drives the
  // simulator, so the window cannot change between the two phases today).
  std::vector<uint64_t> job_ids;
  {
    MutexLock lock(&mu_);
    for (const Pending& p : pending_) {
      if (p.ticket > ticket) {
        break;
      }
      job_ids.push_back(p.job_id);
    }
  }
  for (uint64_t job_id : job_ids) {
    auto done = config_.driver->TryPollJob(job_id);
    if (!done.ok()) {
      return done.status();
    }
    if (!*done) {
      return false;
    }
  }
  return true;
}

Status NpuBackend::MatVec(const float* x, uint64_t cols,
                          const MatTarget* targets, int n_targets) {
  (void)x;
  (void)cols;
  (void)targets;
  (void)n_targets;
  return Status(ErrorCode::kUnimplemented,
                "NpuBackend handles batched-prefill submissions only; "
                "single-position MatVec belongs on the CPU backend");
}

Status NpuBackend::Sync() {
  Status first;
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (pending_.empty()) {
        break;
      }
    }
    const Status st = AwaitOldest();
    if (!st.ok() && first.ok()) {
      first = st;
    }
  }
  return first;
}

}  // namespace tzllm
