#include <cmath>

#include "src/llm/backend/backend.h"
#include "src/llm/engine_options.h"
#include "src/llm/simd/kernels.h"

namespace tzllm {

void LayerTailProjResidualNormQuant(const LayerTailOp& op,
                                    const KernelDispatch* kernels) {
  const uint64_t d = static_cast<uint64_t>(op.d_model);
  // Attention-output residual, then the FFN norm over all m positions.
  for (int i = 0; i < op.m * op.d_model; ++i) {
    op.hiddens[i] += op.proj[i];
  }
  for (int i = 0; i < op.m; ++i) {
    kernels->rms_norm(op.hiddens + static_cast<size_t>(i) * d,
                      op.ffn_norm_gain, op.norm + static_cast<size_t>(i) * d,
                      op.d_model);
  }
  op.acts->QuantizeRows(op.norm, op.m, d);
}

void LayerTailSwiGluQuant(const LayerTailOp& op) {
  for (int i = 0; i < op.m * op.d_ff; ++i) {
    const float g = op.gate[i];
    const float silu = g / (1.0f + std::exp(-g));
    op.gate[i] = silu * op.up[i];
  }
  op.acts->QuantizeRows(op.gate, op.m, static_cast<uint64_t>(op.d_ff));
}

void LayerTailDownResidual(const LayerTailOp& op) {
  for (int i = 0; i < op.m * op.d_model; ++i) {
    op.hiddens[i] += op.down[i];
  }
}

void RunLayerTail(const LayerTailOp& op, const Q8Acts& x_attn,
                  const KernelDispatch* kernels, ThreadPool* pool) {
  const uint64_t d = static_cast<uint64_t>(op.d_model);
  const uint64_t ff = static_cast<uint64_t>(op.d_ff);
  // x_attn is consumed by the Wo matmul before the first requantization
  // below may overwrite an aliased op.acts.
  MatMatQ8(op.wo, d, d, x_attn, op.proj, pool, kernels);
  LayerTailProjResidualNormQuant(op, kernels);
  MatMatQ8(op.w_gate, ff, d, *op.acts, op.gate, pool, kernels);
  MatMatQ8(op.w_up, ff, d, *op.acts, op.up, pool, kernels);
  LayerTailSwiGluQuant(op);
  MatMatQ8(op.w_down, d, ff, *op.acts, op.down, pool, kernels);
  LayerTailDownResidual(op);
}

CpuBackend::CpuBackend(const EngineOptions& options, ThreadPool* pool,
                       const KernelDispatch* kernels)
    : use_reference_(options.use_reference_kernels),
      pool_(pool),
      kernels_(kernels) {}

Result<BackendTicket> CpuBackend::SubmitMatMatGroup(const MatMatOp* ops, int n,
                                                    const Q8Acts& x) {
  for (int i = 0; i < n; ++i) {
    MatMatQ8(ops[i].w, ops[i].rows, x.cols, x, ops[i].y, pool_, kernels_);
  }
  return kCompletedTicket;
}

Result<BackendTicket> CpuBackend::SubmitLayerTail(const LayerTailOp& op,
                                                  const Q8Acts& x_attn) {
  RunLayerTail(op, x_attn, kernels_, pool_);
  return kCompletedTicket;
}

Status CpuBackend::MatVec(const float* x, uint64_t cols,
                          const MatTarget* targets, int n_targets) {
  if (use_reference_) {
    // The seed's scalar float-activation path — the one reference code path
    // that used to be scattered as per-call-site branches in the executor.
    for (int i = 0; i < n_targets; ++i) {
      MatVecQ8Reference(targets[i].w, targets[i].rows, cols, x, targets[i].y);
    }
    return OkStatus();
  }
  // One activation quantization feeds every projection in the group.
  acts_.Quantize(x, cols);
  for (int i = 0; i < n_targets; ++i) {
    MatVecQ8Pre(targets[i].w, targets[i].rows, cols, acts_, targets[i].y,
                pool_, kernels_);
  }
  return OkStatus();
}

}  // namespace tzllm
