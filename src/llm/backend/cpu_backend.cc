#include "src/llm/backend/backend.h"
#include "src/llm/engine_options.h"
#include "src/llm/simd/kernels.h"

namespace tzllm {

CpuBackend::CpuBackend(const EngineOptions& options, ThreadPool* pool,
                       const KernelDispatch* kernels)
    : use_reference_(options.use_reference_kernels),
      pool_(pool),
      kernels_(kernels) {}

Status CpuBackend::MatMat(const uint8_t* w, uint64_t rows, uint64_t cols,
                          const Q8Acts& x, float* y) {
  MatMatQ8(w, rows, cols, x, y, pool_, kernels_);
  return OkStatus();
}

Status CpuBackend::MatVec(const float* x, uint64_t cols,
                          const MatTarget* targets, int n_targets) {
  if (use_reference_) {
    // The seed's scalar float-activation path — the one reference code path
    // that used to be scattered as per-call-site branches in the executor.
    for (int i = 0; i < n_targets; ++i) {
      MatVecQ8Reference(targets[i].w, targets[i].rows, cols, x, targets[i].y);
    }
    return OkStatus();
  }
  // One activation quantization feeds every projection in the group.
  acts_.Quantize(x, cols);
  for (int i = 0; i < n_targets; ++i) {
    MatVecQ8Pre(targets[i].w, targets[i].rows, cols, acts_, targets[i].y,
                pool_, kernels_);
  }
  return OkStatus();
}

}  // namespace tzllm
