// ComputeBackend — the seam between the transformer executor and whatever
// hardware runs its heavyweight matmuls.
//
// The executor no longer calls the kernel table directly for prefill: every
// batched-prefill matmul group routes through a ComputeBackend, so the same
// schedule can run a chunk's QKV/FFN work on the CPU kernel pool
// (CpuBackend) or hand it to the secure NPU behind the TEE's minimal
// co-driver data plane (NpuBackend, paper §4.3). Decode stays on the CPU
// KernelDispatch path by construction: the executor always owns a CpuBackend
// and only the *prefill* seam is swappable.
//
// The submission API is asynchronous: SubmitMatMatGroup/SubmitLayerTail
// return a ticket, and the caller observes completion through Await/TryPoll
// (or the Sync barrier). A synchronous backend (CpuBackend) executes at
// submit time and returns the kCompletedTicket; an asynchronous backend
// (NpuBackend) turns each submission into one fused secure NPU job and lets
// the caller overlap its own CPU work — the executor's pipelined prefill
// computes one chunk's attention while another chunk's fused layer job runs
// on the NPU timeline.
//
// Lifetime contract for asynchronous submissions: every buffer a submission
// references — the quantized activations, the output rows, the layer-tail
// scratch — is caller-owned and must stay untouched until the ticket
// retires (Await returned, or Sync). This is what makes the NPU path
// zero-copy: the job's pinned input *is* the caller's buffer.
//
// Numerics contract: a backend must produce outputs bit-identical to the
// same group run through MatMatQ8 + RunLayerTail over the engine's kernel
// table. For CpuBackend this is definitional (it *is* that code path);
// NpuBackend's functional payloads call the exact same helpers with the
// same table, so swapping backends never changes a single logit.

#ifndef SRC_LLM_BACKEND_BACKEND_H_
#define SRC_LLM_BACKEND_BACKEND_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"
#include "src/hw/npu.h"
#include "src/hw/types.h"
#include "src/llm/tensor.h"

namespace tzllm {

struct EngineOptions;
struct KernelDispatch;
class ModelSpec;
class SocPlatform;
class TeeNpuDriver;
class ThreadPool;

// One projection sharing the caller's activation row: y = W x with W a
// Q8_0 row-major (rows x cols) matrix.
struct MatTarget {
  const uint8_t* w = nullptr;
  uint64_t rows = 0;
  float* y = nullptr;
};

// One matmul of a fused batched-prefill group; all members share the
// group's quantized activations: y[p * rows + r] = W row r . X position p.
struct MatMatOp {
  const uint8_t* w = nullptr;
  uint64_t rows = 0;
  float* y = nullptr;
};

// The whole post-attention segment of one transformer layer over an
// m-position chunk, fused into a single submission:
//
//   proj    = Wo x_attn                  (x_attn = quantized attention out)
//   hiddens += proj                      (residual)
//   norm    = RmsNorm(hiddens, gain)     (per position)
//   acts    = Q8(norm)
//   gate    = Wg acts;  up = Wu acts
//   gate    = silu(gate) * up            (SwiGLU)
//   acts    = Q8(gate)
//   down    = Wd acts
//   hiddens += down                      (residual)
//
// Everything from the attention output to the layer's final residual is a
// straight-line chain with no other consumer, so a backend may run it as
// ONE fused NPU job — this is where 7 jobs per layer-chunk become 2. All
// pointers are caller-owned workspace for the chunk, untouched until the
// ticket retires; `acts` is requantization scratch the chain reuses (it may
// alias the x_attn object passed alongside — the Wo matmul consumes x_attn
// before the first requantization overwrites it).
struct LayerTailOp {
  int m = 0;
  int d_model = 0;
  int d_ff = 0;
  const uint8_t* wo = nullptr;
  const float* ffn_norm_gain = nullptr;
  const uint8_t* w_gate = nullptr;
  const uint8_t* w_up = nullptr;
  const uint8_t* w_down = nullptr;
  float* hiddens = nullptr;  // [m][d_model] residual stream, updated in place.
  float* proj = nullptr;     // [m][d_model] scratch.
  float* norm = nullptr;     // [m][d_model] scratch.
  float* gate = nullptr;     // [m][d_ff] scratch.
  float* up = nullptr;       // [m][d_ff] scratch.
  float* down = nullptr;     // [m][d_model] scratch.
  Q8Acts* acts = nullptr;    // Requantization scratch.
};

// Executes a layer tail on the host with `kernels` — the single functional
// definition of the fused chain, shared by CpuBackend and the NPU job
// payload so both backends compute the identical floats in the identical
// order (and so it cannot drift from what the executor used to inline).
void RunLayerTail(const LayerTailOp& op, const Q8Acts& x_attn,
                  const KernelDispatch* kernels, ThreadPool* pool);

// The elementwise stages between the tail's matmuls, exposed so the
// unfused (one-job-per-matmul) NPU mode composes the exact same stage
// functions RunLayerTail does — fused and unfused schedules are therefore
// bit-identical by construction, not by parallel maintenance.
void LayerTailProjResidualNormQuant(const LayerTailOp& op,
                                    const KernelDispatch* kernels);
void LayerTailSwiGluQuant(const LayerTailOp& op);
void LayerTailDownResidual(const LayerTailOp& op);

// Completion handle for an asynchronous submission. Monotonic per backend;
// kCompletedTicket means the work already ran synchronously at submit.
using BackendTicket = uint64_t;
inline constexpr BackendTicket kCompletedTicket = 0;

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  virtual const char* name() const = 0;
  // True when submissions may complete after the submit call returns — the
  // executor picks the pipelined prefill schedule for such backends.
  virtual bool asynchronous() const { return false; }

  // Batched-prefill matmul group over pre-quantized activations `x` shared
  // by every member op. May execute asynchronously; see the lifetime
  // contract above.
  virtual Result<BackendTicket> SubmitMatMatGroup(const MatMatOp* ops, int n,
                                                  const Q8Acts& x) = 0;

  // Fused post-attention layer segment (see LayerTailOp). `x_attn` is the
  // chunk's quantized attention output.
  virtual Result<BackendTicket> SubmitLayerTail(const LayerTailOp& op,
                                                const Q8Acts& x_attn) = 0;

  // Blocks until the submission behind `ticket` (and, on an in-order
  // backend, everything submitted before it) has completed; returns its
  // completion status. Await(kCompletedTicket) is a no-op.
  virtual Status Await(BackendTicket ticket) = 0;

  // Non-blocking: true when Await(ticket) would return without waiting.
  virtual Result<bool> TryPoll(BackendTicket ticket) = 0;

  // Single-position projections sharing one activation row `x` of `cols`
  // floats (decode and per-position prefill). Synchronous; reference mode
  // (EngineOptions::use_reference_kernels) is handled inside the backend so
  // call sites are one code path.
  virtual Status MatVec(const float* x, uint64_t cols, const MatTarget* targets,
                        int n_targets) = 0;

  // Barrier: returns once every outstanding submission has completed, with
  // the first failure if any job failed.
  virtual Status Sync() = 0;
};

// Wraps the existing CPU path: reference scalar kernels or quantized
// integer-dot kernels on the thread pool, inner loops through the SIMD table
// the engine resolved at construction. Fully synchronous — every submit
// executes inline and returns kCompletedTicket.
class CpuBackend : public ComputeBackend {
 public:
  // `pool` (optional) and `kernels` (nullptr = process-wide table) are owned
  // by the caller and must outlive the backend.
  CpuBackend(const EngineOptions& options, ThreadPool* pool,
             const KernelDispatch* kernels);

  const char* name() const override { return "cpu"; }
  Result<BackendTicket> SubmitMatMatGroup(const MatMatOp* ops, int n,
                                          const Q8Acts& x) override;
  Result<BackendTicket> SubmitLayerTail(const LayerTailOp& op,
                                        const Q8Acts& x_attn) override;
  Status Await(BackendTicket /*ticket*/) override { return OkStatus(); }
  Result<bool> TryPoll(BackendTicket /*ticket*/) override { return true; }
  Status MatVec(const float* x, uint64_t cols, const MatTarget* targets,
                int n_targets) override;
  Status Sync() override { return OkStatus(); }

 private:
  bool use_reference_;
  ThreadPool* pool_;
  const KernelDispatch* kernels_;
  Q8Acts acts_;  // Reusable single-row quantization scratch.
};

// Wiring for the secure NPU prefill path. All pointers are non-owning and
// must outlive the backend.
struct NpuBackendConfig {
  SocPlatform* platform = nullptr;
  TeeNpuDriver* driver = nullptr;
  int ta = -1;  // TaId owning the job execution contexts.
  // Window inside the TA's TZASC-protected scratch region hosting the job
  // execution contexts (command stream, I/O page table, in/out buffers).
  // Must be at least ContextBytes(spec, options) long; the co-driver rejects
  // jobs whose context falls outside the TA's protected regions.
  PhysAddr ctx_base = 0;
  uint64_t ctx_bytes = 0;
  // Kernel table for the functional job payloads — pass the engine's own
  // KernelsFor(options) so the offloaded chain (matmuls AND the layer
  // tail's norm/silu glue) computes bit-identically to the CPU path.
  // nullptr = the frozen scalar table.
  const KernelDispatch* kernels = nullptr;
  // One fused job per matmul group / layer tail (default) vs one job per
  // matmul (the pre-fusion granularity; EngineOptions::npu_fusion).
  bool fuse_jobs = true;
  // Hybrid timeline: charge the host CPU's measured wall time between
  // backend calls to the simulator clock, so the virtual prefill makespan
  // composes real CPU segments with modeled NPU job execution — the number
  // that answers "what would this take on the real SoC", and the one the
  // bench reports for the offloaded path. Off = the virtual clock only
  // advances for NPU/protocol events.
  bool hybrid_timeline = true;
  // Per-job wait deadline on the virtual clock (EngineOptions::
  // npu_job_timeout). Non-positive values are rejected at submit with
  // InvalidArgument — zero would mean "wait forever", which a lost job
  // turns into a hang.
  SimDuration job_timeout = 2000 * kMillisecond;
  // Recovery policy for a failed/timed-out job: bounded resubmissions
  // (each after retry_backoff of virtual time, so the makespan metric
  // stays honest), then — when cpu_fallback — the job's matmul group is
  // re-executed on the CPU path and the prefill continues. Both paths run
  // the same kernel-table helpers the NPU payload would have, so recovery
  // never changes a logit. cpu_fallback=false surfaces the final Status.
  int max_retries = 2;
  SimDuration retry_backoff = 1 * kMillisecond;
  bool cpu_fallback = true;
};

// Packages prefill work as secure NPU jobs: one *fused* job per matmul
// group or layer tail (buffers pinned inside the TA's TZASC regions, every
// sub-buffer validated by the co-driver, duration priced by
// CostModel::NpuFusedJobTime, functional payload the shared host helpers
// over the engine's kernel table for bit-exact results). Jobs are submitted
// through TeeNpuDriver::SubmitJob and double-buffered across kJobSlots
// execution contexts, so preparing job n+1's context overlaps job n's
// execution; completion is observed per ticket — the pipelined schedule
// defers each blocking Await to its dependency point (that deferral is
// the overlap), and TryPoll gives the non-blocking query for diagnostics
// or poll-driven schedulers.
// Locking: mu_ guards the in-flight ticket window (pending_), the
// execution-context slot cursor, the ticket counter, the hybrid-timeline
// host mark and every statistic. Critical sections are leaf-only: WaitForJob
// and the hybrid-timeline advance DRIVE THE SIMULATOR (running arbitrary
// completion chains on this stack), and a driver submit runs the whole SMC
// round trip — none of it ever under mu_.
class NpuBackend : public ComputeBackend {
 public:
  // Execution contexts double-buffered: prepare job n+1 while n runs.
  static constexpr int kJobSlots = 2;

  // Scratch bytes the TA must budget (and protect) for the job execution
  // contexts of chunks up to options.prefill_batch positions of `spec` —
  // what config.ctx_bytes must be computed with. Sized for the largest
  // fused job (a layer tail touches in + hiddens + gate/up scratch + out).
  static uint64_t ContextBytes(const ModelSpec& spec,
                               const EngineOptions& options);

  explicit NpuBackend(const NpuBackendConfig& config);
  ~NpuBackend() override;

  const char* name() const override { return "npu"; }
  bool asynchronous() const override { return true; }
  Result<BackendTicket> SubmitMatMatGroup(const MatMatOp* ops, int n,
                                          const Q8Acts& x) override
      TZLLM_EXCLUDES(mu_);
  Result<BackendTicket> SubmitLayerTail(const LayerTailOp& op,
                                        const Q8Acts& x_attn) override
      TZLLM_EXCLUDES(mu_);
  Status Await(BackendTicket ticket) override TZLLM_EXCLUDES(mu_);
  Result<bool> TryPoll(BackendTicket ticket) override TZLLM_EXCLUDES(mu_);
  // Decode never routes here — the executor keeps its own CpuBackend for
  // every MatVec — so this surfaces misuse as kUnimplemented instead of
  // silently computing on a shadow CPU path.
  Status MatVec(const float* x, uint64_t cols, const MatTarget* targets,
                int n_targets) override;
  Status Sync() override TZLLM_EXCLUDES(mu_);

  uint64_t jobs_submitted() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return jobs_submitted_;
  }
  uint64_t matmuls_submitted() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return matmuls_submitted_;
  }
  // Virtual time the caller spent stalled in Await/Sync driving the
  // simulator to a job's completion (prefill bubbles the pipeline could not
  // hide).
  SimDuration await_stall_time() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return await_stall_time_;
  }
  // Degradation stats: jobs that failed at least once and then completed on
  // the NPU via resubmission, and jobs (plus the matmuls they carried)
  // re-executed on the CPU after retries were exhausted. Mirrored into
  // TeeNpuDriver::RecordRecovery so the driver's stats surface carries the
  // whole fault story.
  uint64_t jobs_recovered() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return jobs_recovered_;
  }
  uint64_t fallback_jobs() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return fallback_jobs_;
  }
  uint64_t fallback_matmuls() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return fallback_matmuls_;
  }
  // In-flight submissions (drained to zero by Sync — including the error
  // paths, so a failed prefill leaves no dangling job context behind).
  size_t pending_jobs() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pending_.size();
  }

 private:
  // One in-flight fused job occupying a context slot. Carries everything
  // needed to rebuild the job for a retry (or run it on the CPU as the
  // fallback): the descriptor geometry and a copy of the functional
  // payload, which stays valid until the ticket retires by the backend's
  // buffer-lifetime contract.
  struct Pending {
    uint64_t job_id = 0;
    BackendTicket ticket = 0;
    int slot = 0;
    std::vector<NpuMatmulShape> shapes;
    uint64_t in_bytes = 0;
    std::vector<uint64_t> out_bytes;
    std::function<Status()> compute;
  };

  // Charges host wall time since the last backend call to the virtual
  // clock (hybrid timeline), running any NPU/protocol events that fall
  // inside the segment. EXCLUDES(mu_): driving the simulator runs
  // completion chains on this stack.
  void AdvanceHostTime() TZLLM_EXCLUDES(mu_);
  void MarkHostTime() TZLLM_EXCLUDES(mu_);
  // Retires the oldest pending job (jobs complete in submit order — the
  // co-driver enforces monotonic execution sequencing). On failure it
  // quiesces the whole in-flight window, then replays each failed job via
  // RecoverJob.
  Status AwaitOldest() TZLLM_EXCLUDES(mu_);
  // Replays one settled-but-failed job into the (now empty) in-flight
  // window: resubmitted up to config_.max_retries times with retry_backoff
  // of virtual time between attempts; after that, with cpu_fallback, its
  // payload runs on the host — bit-identical by construction — and the
  // prefill continues. `st` is the original failure, returned if recovery
  // is disabled or exhausted.
  Status RecoverJob(const Pending& job, Status st) TZLLM_EXCLUDES(mu_);
  // Builds, validates and submits one fused job into `slot`.
  Result<uint64_t> SubmitJobInSlot(int slot,
                                   const std::vector<NpuMatmulShape>& shapes,
                                   uint64_t in_bytes,
                                   const std::vector<uint64_t>& out_bytes,
                                   std::function<Status()> compute)
      TZLLM_EXCLUDES(mu_);
  // Slot-allocating submit wrapper: retires slots as needed, records the
  // Pending replay entry under `ticket`.
  Status SubmitJob(BackendTicket ticket,
                   const std::vector<NpuMatmulShape>& shapes,
                   uint64_t in_bytes, const std::vector<uint64_t>& out_bytes,
                   std::function<Status()> compute) TZLLM_EXCLUDES(mu_);

  // Immutable after construction.
  NpuBackendConfig config_;
  uint64_t slot_bytes_ = 0;

  mutable Mutex mu_;
  uint64_t next_slot_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t jobs_submitted_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t matmuls_submitted_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t jobs_recovered_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t fallback_jobs_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t fallback_matmuls_ TZLLM_GUARDED_BY(mu_) = 0;
  BackendTicket next_ticket_ TZLLM_GUARDED_BY(mu_) = 1;
  std::deque<Pending> pending_ TZLLM_GUARDED_BY(mu_);
  SimDuration await_stall_time_ TZLLM_GUARDED_BY(mu_) = 0;
  bool host_mark_valid_ TZLLM_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point host_mark_ TZLLM_GUARDED_BY(mu_);
};

}  // namespace tzllm

#endif  // SRC_LLM_BACKEND_BACKEND_H_
