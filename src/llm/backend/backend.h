// ComputeBackend — the seam between the transformer executor and whatever
// hardware runs its heavyweight matmuls.
//
// The executor no longer calls the kernel table directly for prefill: every
// batched-prefill MatMatQ8 call site routes through a ComputeBackend, so the
// same schedule can run the chunk's QKV/FFN matmuls on the CPU kernel pool
// (CpuBackend) or hand them to the secure NPU behind the TEE's minimal
// co-driver data plane (NpuBackend, paper §4.3). Decode stays on the CPU
// KernelDispatch path by construction: the executor always owns a CpuBackend
// and only the *prefill* seam is swappable.
//
// Numerics contract: a backend must produce outputs bit-identical to
// MatMatQ8 over the scalar kernel table. For CpuBackend this holds because
// the integer-dot row kernels are bit-identical across SIMD backends
// (simd/kernels.h); NpuBackend's functional payload simply *is* the scalar
// table. Swapping backends therefore never changes a single logit.

#ifndef SRC_LLM_BACKEND_BACKEND_H_
#define SRC_LLM_BACKEND_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/hw/types.h"
#include "src/llm/tensor.h"

namespace tzllm {

struct EngineOptions;
struct KernelDispatch;
class ModelSpec;
class SocPlatform;
class TeeNpuDriver;
class ThreadPool;

// One projection sharing the caller's activation row: y = W x with W a
// Q8_0 row-major (rows x cols) matrix.
struct MatTarget {
  const uint8_t* w = nullptr;
  uint64_t rows = 0;
  float* y = nullptr;
};

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  virtual const char* name() const = 0;

  // Batched-prefill matmul over pre-quantized activations:
  // y[p * rows + r] = W row r . X position p, for all x.m positions. May
  // execute asynchronously — outputs are guaranteed visible only after
  // Sync(). The caller must not reuse `x` or read `y` before then.
  virtual Status MatMat(const uint8_t* w, uint64_t rows, uint64_t cols,
                        const Q8Acts& x, float* y) = 0;

  // Single-position projections sharing one activation row `x` of `cols`
  // floats (decode and per-position prefill). Synchronous; reference mode
  // (EngineOptions::use_reference_kernels) is handled inside the backend so
  // call sites are one code path.
  virtual Status MatVec(const float* x, uint64_t cols, const MatTarget* targets,
                        int n_targets) = 0;

  // Barrier: returns once every outstanding MatMat has completed, with the
  // first failure if any job failed.
  virtual Status Sync() = 0;
};

// Wraps the existing CPU path: reference scalar kernels or quantized
// integer-dot kernels on the thread pool, inner loops through the SIMD table
// the engine resolved at construction.
class CpuBackend : public ComputeBackend {
 public:
  // `pool` (optional) and `kernels` (nullptr = process-wide table) are owned
  // by the caller and must outlive the backend.
  CpuBackend(const EngineOptions& options, ThreadPool* pool,
             const KernelDispatch* kernels);

  const char* name() const override { return "cpu"; }
  Status MatMat(const uint8_t* w, uint64_t rows, uint64_t cols, const Q8Acts& x,
                float* y) override;
  Status MatVec(const float* x, uint64_t cols, const MatTarget* targets,
                int n_targets) override;
  Status Sync() override { return OkStatus(); }

 private:
  bool use_reference_;
  ThreadPool* pool_;
  const KernelDispatch* kernels_;
  Q8Acts acts_;  // Reusable single-row quantization scratch.
};

// Wiring for the secure NPU prefill path. All pointers are non-owning and
// must outlive the backend.
struct NpuBackendConfig {
  SocPlatform* platform = nullptr;
  TeeNpuDriver* driver = nullptr;
  int ta = -1;  // TaId owning the job execution contexts.
  // Window inside the TA's TZASC-protected scratch region hosting the job
  // execution contexts (command stream, I/O page table, in/out buffers).
  // Must be at least ContextBytes(spec, options) long; the co-driver rejects
  // jobs whose context falls outside the TA's protected regions.
  PhysAddr ctx_base = 0;
  uint64_t ctx_bytes = 0;
};

// Packages each prefill chunk's matmuls as secure NPU jobs: one NpuJobDesc
// per MatMat, its buffers pinned inside the TA's TZASC regions, its duration
// priced by the cost model (kNpuMatmulFlops), its functional payload the
// scalar kernel table for bit-exact results. Jobs are submitted through
// TeeNpuDriver::SubmitJob and double-buffered across kJobSlots execution
// contexts, so job n+1's context preparation (activation snapshot + desc
// build on the CPU) overlaps job n's execution on the NPU timeline; Sync()
// drives the simulator until every outstanding job's completion callback has
// fired.
class NpuBackend : public ComputeBackend {
 public:
  // Execution contexts double-buffered: prepare chunk job n+1 while n runs.
  static constexpr int kJobSlots = 2;

  // Scratch bytes the TA must budget (and protect) for the job execution
  // contexts of chunks up to options.prefill_batch positions of `spec` —
  // what config.ctx_bytes must be computed with.
  static uint64_t ContextBytes(const ModelSpec& spec,
                               const EngineOptions& options);

  explicit NpuBackend(const NpuBackendConfig& config);
  ~NpuBackend() override;

  const char* name() const override { return "npu"; }
  Status MatMat(const uint8_t* w, uint64_t rows, uint64_t cols, const Q8Acts& x,
                float* y) override;
  // Decode never routes here — the executor keeps its own CpuBackend for
  // every MatVec — so this surfaces misuse as kUnimplemented instead of
  // silently computing on a shadow CPU path.
  Status MatVec(const float* x, uint64_t cols, const MatTarget* targets,
                int n_targets) override;
  Status Sync() override;

  uint64_t jobs_submitted() const { return jobs_submitted_; }

 private:
  // One self-contained execution context: the input buffer snapshot (the
  // chunk's quantized activations, conceptually pinned at the slot's
  // in-buffer address) plus the in-flight job handle. The snapshot is
  // shared: one quantization feeding several matmuls (QKV, gate/up) is
  // copied once and referenced by every job of the group.
  struct Slot {
    bool pending = false;
    uint64_t job_id = 0;
    std::shared_ptr<const Q8Acts> acts;
  };

  // MatMat's body; the public wrapper drains in-flight jobs on error so a
  // failed group can never leave a payload pending against caller-owned
  // output buffers.
  Status MatMatImpl(const uint8_t* w, uint64_t rows, uint64_t cols,
                    const Q8Acts& x, float* y);
  // Waits (driving the simulator) for the slot's in-flight job, if any.
  Status AwaitSlot(int slot);
  // The pinned-input snapshot for `x`, reused while (source, generation)
  // is unchanged since the last call.
  std::shared_ptr<const Q8Acts> SnapshotActs(const Q8Acts& x);

  NpuBackendConfig config_;
  uint64_t slot_bytes_ = 0;
  uint64_t next_slot_ = 0;
  uint64_t jobs_submitted_ = 0;
  Slot slots_[kJobSlots];
  std::shared_ptr<const Q8Acts> snapshot_;
  const Q8Acts* snapshot_src_ = nullptr;
  uint64_t snapshot_gen_ = 0;
};

}  // namespace tzllm

#endif  // SRC_LLM_BACKEND_BACKEND_H_
