// Knobs for the functional inference engine, threaded from RuntimeConfig
// down through LlmTa / LlmEngine to the TransformerExecutor so benchmarks
// can sweep thread counts and prefill batching.

#ifndef SRC_LLM_ENGINE_OPTIONS_H_
#define SRC_LLM_ENGINE_OPTIONS_H_

#include "src/llm/kv_cache.h"

namespace tzllm {

struct EngineOptions {
  // CPU lanes for the kernel pool; 1 = no pool, fully single-threaded.
  int n_threads = 1;
  // Positions per batched-prefill chunk (MatMatQ8 weight reuse); <= 1 falls
  // back to the per-position path.
  int prefill_batch = 32;
  // Runs the seed's scalar float-activation kernels and per-call RoPE — the
  // performance/numerics baseline the benches and parity tests compare
  // against. Implies per-position prefill and f32 KV storage.
  bool use_reference_kernels = false;
  // Stores the KV cache at f32 instead of the default f16 — the full-width
  // numerics baseline the f16-KV parity suite diffs against. Costs 2x cache
  // footprint, so CurrentBytes() reports 2x the f16 accounting.
  bool kv_f32 = false;
  // Binds this engine to the portable-scalar kernel table even when the CPU
  // supports a SIMD backend — the software half of the SIMD-vs-scalar parity
  // suite (the process-wide TZLLM_SIMD=off env override is the other half),
  // so both dispatch paths are testable on one machine. Unlike
  // use_reference_kernels this keeps the quantized kernels, batched prefill
  // and f16 KV cache; only the inner-loop table changes.
  bool force_scalar = false;
  // Accumulates attention-phase wall time in the executor (bench
  // instrumentation; off by default so production decode takes no clock
  // reads).
  bool collect_stats = false;
  // Routes the batched-prefill matmuls through the secure NPU co-driver
  // (the ComputeBackend seam): each chunk's QKV/FFN matmuls become
  // TZASC-validated NpuJobDesc execution contexts submitted via
  // TeeNpuDriver::SubmitJob. Decode stays on the CPU KernelDispatch path.
  // Requires the co-driver to be wired (LlmTa's npu_driver parameter, from
  // RuntimeConfig::use_npu) — loading fails with a clear Status otherwise.
  // Composes with TZLLM_SIMD: the NPU functional payload is pinned to the
  // scalar table (bit-exact by the dispatch contract), while CPU-resident
  // ops (norms, attention, decode) keep the dispatched table. Inert under
  // use_reference_kernels or prefill_batch <= 1, which force the
  // per-position CPU path.
  bool npu_prefill = false;
};

// Arena element type for the options' KV mode (reference kernels keep the
// seed's full-width cache so the baseline numerics stay frozen).
inline KvStorage KvStorageFor(const EngineOptions& options) {
  return options.kv_f32 || options.use_reference_kernels ? KvStorage::kF32
                                                         : KvStorage::kF16;
}

}  // namespace tzllm

#endif  // SRC_LLM_ENGINE_OPTIONS_H_
