// Knobs for the functional inference engine, threaded from RuntimeConfig
// down through LlmTa / LlmEngine to the TransformerExecutor so benchmarks
// can sweep thread counts, prefill batching, NPU offload and serving
// concurrency.
//
// The knobs are grouped (kernel, npu, fault, serving) and validated by ONE
// entry point — EngineOptions::Validate() — instead of scattered per-knob
// checks in LoadModel / llm_ta.cc: a configuration either passes Validate()
// or the load fails with a clear InvalidArgument before any secure memory
// is touched.

#ifndef SRC_LLM_ENGINE_OPTIONS_H_
#define SRC_LLM_ENGINE_OPTIONS_H_

#include <algorithm>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/llm/kv_cache.h"

namespace tzllm {

// What the serving runtime does when a more urgent request arrives and
// every session slot is occupied (src/serve/serving.h).
enum class ServeEvictPolicy : uint8_t {
  // Never preempt: urgent requests wait for a slot to free up naturally.
  kNone = 0,
  // Checkpoint the least-urgent *running* session to flash (the PR 6
  // CheckpointSession primitive), hand its slot to the more urgent request,
  // and re-queue the victim at its original priority — restored later with
  // bit-identical resumption.
  kPriority = 1,
};

struct EngineOptions {
  // --- Kernel group: where and how the CPU math runs. -------------------

  // CPU lanes for the kernel pool; 1 = no pool, fully single-threaded;
  // 0 = auto (all hardware threads). Always clamped to the machine's
  // hardware concurrency at executor construction (ResolvedThreads):
  // oversubscribing a 1-core box measurably *loses* throughput (the fig17
  // snapshot showed threads_4 slower than threads_1), so a request beyond
  // the hardware is treated as "use everything", not honored literally.
  int n_threads = 1;
  // Positions per batched-prefill chunk (MatMatQ8 weight reuse); <= 1 falls
  // back to the per-position path. Also the serving runtime's prefill
  // scheduling quantum: each scheduler tick advances one admitted session
  // by one chunk of this many positions.
  int prefill_batch = 32;
  // Runs the seed's scalar float-activation kernels and per-call RoPE — the
  // performance/numerics baseline the benches and parity tests compare
  // against. Implies per-position prefill and f32 KV storage.
  bool use_reference_kernels = false;
  // Stores the KV cache at f32 instead of the default f16 — the full-width
  // numerics baseline the f16-KV parity suite diffs against. Costs 2x cache
  // footprint, so CurrentBytes() reports 2x the f16 accounting.
  bool kv_f32 = false;
  // Binds this engine to the portable-scalar kernel table even when the CPU
  // supports a SIMD backend — the software half of the SIMD-vs-scalar parity
  // suite (the process-wide TZLLM_SIMD=off env override is the other half),
  // so both dispatch paths are testable on one machine. Unlike
  // use_reference_kernels this keeps the quantized kernels, batched prefill
  // and f16 KV cache; only the inner-loop table changes.
  bool force_scalar = false;
  // Accumulates attention-phase wall time in the executor (bench
  // instrumentation; off by default so production decode takes no clock
  // reads).
  bool collect_stats = false;

  // --- NPU group: secure co-driver prefill offload. ---------------------

  // Routes the batched-prefill matmuls through the secure NPU co-driver
  // (the ComputeBackend seam): each chunk's QKV/FFN matmuls become
  // TZASC-validated NpuJobDesc execution contexts submitted via
  // TeeNpuDriver::SubmitJob. Decode stays on the CPU KernelDispatch path.
  // Requires the co-driver to be wired (LlmTa's npu_driver parameter, from
  // RuntimeConfig::use_npu) — loading fails with a clear Status otherwise.
  // Composes with TZLLM_SIMD: the NPU functional payload runs the engine's
  // own kernel table (the integer-dot rows are bit-identical across tables,
  // and the fused layer-tail's norm/silu glue must match the CPU path
  // exactly), so the combination never changes a logit. Inert under
  // use_reference_kernels or prefill_batch <= 1, which force the
  // per-position CPU path (see npu_prefill_active()).
  bool npu_prefill = false;
  // Fuses each chunk-layer's matmul group into one secure NPU job (QKV as
  // one job; the whole post-attention segment — Wo + residual + FFN norm +
  // gate/up/silu/down — as another), amortizing the per-job world-switch
  // cost: 2 jobs per layer-chunk instead of 7. Off = one job per matmul
  // (the pre-fusion granularity, kept for the fused-vs-unfused parity test
  // and the co-driver ablation).
  bool npu_fusion = true;
  // Pipelined wavefront schedule for NPU prefill (overlap one chunk's CPU
  // attention with another chunk's fused jobs). Off = the serial chunk
  // schedule (submit, then immediately await) on the same backend — the
  // {serial, pipelined} axis of the fault-recovery test matrix.
  bool npu_pipeline = true;

  // --- Fault group: NPU failure injection and recovery. -----------------

  // Per-job wait deadline for secure NPU jobs, on the virtual clock. Must
  // be positive when NPU prefill is active: Validate() / the backend reject
  // non-positive values with InvalidArgument (a zero deadline would mean
  // "wait forever", which a lost job turns into a hang).
  SimDuration npu_job_timeout = 2000 * kMillisecond;
  // Recovery policy for a failed or timed-out secure job: up to
  // npu_max_retries resubmissions (each preceded by npu_retry_backoff of
  // virtual time, charged to the sim clock so the makespan metric stays
  // honest), then — if npu_cpu_fallback — the failed fused job's matmul
  // group is re-executed on the CPU path and the prefill continues.
  // Bit-identical either way: retry and fallback both run the same kernel
  // table the NPU payload would have. npu_cpu_fallback=false surfaces the
  // final Status to the caller instead (the pre-recovery behavior).
  int npu_max_retries = 2;
  SimDuration npu_retry_backoff = 1 * kMillisecond;
  bool npu_cpu_fallback = true;
  // Deterministic fault plan ("payload@5", "timeout@3x2", "ctx@1",
  // "submit@4" — see NpuFaultPlan::Parse). Empty = fall back to the
  // TZLLM_FAULT_PLAN environment variable (the CI fault-sweep hook); both
  // empty = no injection. A malformed plan string fails Validate() with
  // InvalidArgument.
  std::string npu_fault_plan;

  // --- Serving group: multi-session concurrency (src/serve/). -----------

  // Concurrent generation sessions one LlmTa admits: the KV arena holds
  // this many per-session cache slots (all budgeted into the secure scratch
  // region at load), and BeginSession/AdmitSession beyond it fails with
  // kResourceExhausted. 1 keeps the single-session footprint and the
  // legacy "exactly one open session" semantics.
  int max_sessions = 1;
  // Sessions per batched decode step (one MatMatQ8 over all their current
  // positions per layer, so weights stream once per step regardless of
  // batch size). 0 = all running sessions in one batch. The scheduler
  // splits larger running sets into groups of this size.
  int decode_batch = 0;
  // Under-pressure eviction policy for the serving runtime's admission
  // queue.
  ServeEvictPolicy serve_eviction = ServeEvictPolicy::kPriority;
  // Admission-queue bound: Enqueue rejects with kUnavailable once this many
  // requests are waiting (queued or evicted). 0 = unbounded (the pre-ISSUE
  // 10 behavior). Overload then sheds late-comers instead of degrading
  // every admitted session.
  int serve_queue_max = 0;
  // Stuck-tick watchdog: this many consecutive scheduler ticks with zero
  // session progress (no prefill advance, no decode token, no retirement)
  // surface kDeadlineExceeded with diagnostic stats instead of spinning.
  // 0 disables (a no-work tick is then an immediate kInternal, the pre-
  // watchdog contract).
  int serve_watchdog_ticks = 0;
  // Auto-checkpoint cadence for whole-TA crash recovery: every N scheduler
  // ticks the runtime seals every active session (SnapshotSession) plus a
  // serving manifest through tee/checkpoint, so a fresh TA can
  // ServingRuntime::Recover() the whole fleet. 0 disables.
  int serve_checkpoint_every_n_ticks = 0;
  // Deterministic serving-layer fault plan ("spill_tamper@1x100",
  // "ckpt_drop@2", "ta_crash@40" — see ServeFaultPlan::Parse). Empty =
  // fall back to TZLLM_SERVE_FAULT_PLAN (the CI chaos-sweep hook); both
  // empty = no injection. Malformed strings fail Validate().
  std::string serve_fault_plan;

  // --- Paged KV group: page pool, REE spill and prefix sharing. ---------

  // Backs the session KV slots with a shared page pool (fixed pages of
  // kv_page_positions positions x all layers, refcounted, LRU-spilled to
  // encrypted REE memory under pressure) instead of fully-resident flat
  // arenas. Logits are bit-identical either way; false keeps the flat
  // arenas as the paging ablation baseline.
  bool paged_kv = true;
  // Sequence positions per KV page. Smaller pages spill and share at finer
  // grain but add page hops to the attention walk.
  int kv_page_positions = 16;
  // Secure-resident budget of the page pool in bytes; 0 = the flat budget
  // (max_sessions x per-session arena bytes), so enabling paging never
  // grows the scratch region. Values below one session's full-context
  // footprint over-subscribe physical residency and lean on spill.
  uint64_t kv_pool_bytes = 0;
  // Allow evicting cold pages to AES-CTR + SHA-256 protected REE blobs
  // (restored and integrity-checked on demand; tamper => kDataCorruption).
  // Off = the pool is a hard allocation budget.
  bool kv_spill = true;
  // Capacity of the cross-session shared-prefix registry (sessions whose
  // prompts share a registered token prefix map the same read-only pages,
  // copy-on-write past the fork point). 0 disables sharing.
  int kv_prefix_entries = 16;
  // Recompute-on-loss budget: lifetime cap on KV pages re-prefilled per
  // session after a spilled page's REE blob came back tampered, truncated
  // or missing. Within the budget REE misbehavior is a latency event (the
  // covered positions are recomputed bit-identically from the session's
  // token history); past it — or at 0, which disables recovery — the
  // original kDataCorruption surfaces.
  int kv_recompute_max = 256;

  // True exactly when this configuration routes prefill to the NPU backend
  // (reference kernels and prefill_batch <= 1 force the per-position CPU
  // path, making npu_prefill genuinely inert) — THE predicate LoadModel
  // budgets job contexts with, and the one Validate() gates the NPU/fault
  // knob checks on, so there is no second spelling to drift.
  bool npu_prefill_active() const {
    return npu_prefill && !use_reference_kernels && prefill_batch > 1;
  }

  // Validates the whole configuration, cross-knob effects included
  // (NPU/fault checks apply only when npu_prefill_active()). The single
  // validation entry point: LoadModel calls this once instead of scattering
  // per-knob checks, so every rejected configuration fails before secure
  // memory is allocated. Does NOT check driver wiring (that is runtime
  // state, not configuration — LoadModel still verifies the co-driver is
  // present when NPU prefill is active).
  Status Validate() const;
};

// The thread count an engine configured with `options` actually runs:
// n_threads <= 0 means "all hardware threads", anything larger than the
// hardware is clamped to it (oversubscription only adds scheduler thrash —
// there is no configuration where it wins). hardware_concurrency() == 0
// means "unknown" per the standard, not "one core": honor the request then
// rather than silently de-threading a working configuration.
inline int ResolvedThreads(const EngineOptions& options) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) {
    return std::max(1, options.n_threads);
  }
  return options.n_threads <= 0 ? hw : std::min(options.n_threads, hw);
}

// Arena element type for the options' KV mode (reference kernels keep the
// seed's full-width cache so the baseline numerics stay frozen).
inline KvStorage KvStorageFor(const EngineOptions& options) {
  return options.kv_f32 || options.use_reference_kernels ? KvStorage::kF32
                                                         : KvStorage::kF16;
}

}  // namespace tzllm

#endif  // SRC_LLM_ENGINE_OPTIONS_H_
