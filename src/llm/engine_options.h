// Knobs for the functional inference engine, threaded from RuntimeConfig
// down through LlmTa / LlmEngine to the TransformerExecutor so benchmarks
// can sweep thread counts and prefill batching.

#ifndef SRC_LLM_ENGINE_OPTIONS_H_
#define SRC_LLM_ENGINE_OPTIONS_H_

namespace tzllm {

struct EngineOptions {
  // CPU lanes for the kernel pool; 1 = no pool, fully single-threaded.
  int n_threads = 1;
  // Positions per batched-prefill chunk (MatMatQ8 weight reuse); <= 1 falls
  // back to the per-position path.
  int prefill_batch = 32;
  // Runs the seed's scalar float-activation kernels and per-call RoPE — the
  // performance/numerics baseline the benches and parity tests compare
  // against. Implies per-position prefill.
  bool use_reference_kernels = false;
};

}  // namespace tzllm

#endif  // SRC_LLM_ENGINE_OPTIONS_H_
