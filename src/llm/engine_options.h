// Knobs for the functional inference engine, threaded from RuntimeConfig
// down through LlmTa / LlmEngine to the TransformerExecutor so benchmarks
// can sweep thread counts and prefill batching.

#ifndef SRC_LLM_ENGINE_OPTIONS_H_
#define SRC_LLM_ENGINE_OPTIONS_H_

#include <algorithm>
#include <string>
#include <thread>

#include "src/common/units.h"
#include "src/llm/kv_cache.h"

namespace tzllm {

struct EngineOptions {
  // CPU lanes for the kernel pool; 1 = no pool, fully single-threaded;
  // 0 = auto (all hardware threads). Always clamped to the machine's
  // hardware concurrency at executor construction (ResolvedThreads):
  // oversubscribing a 1-core box measurably *loses* throughput (the fig17
  // snapshot showed threads_4 slower than threads_1), so a request beyond
  // the hardware is treated as "use everything", not honored literally.
  int n_threads = 1;
  // Positions per batched-prefill chunk (MatMatQ8 weight reuse); <= 1 falls
  // back to the per-position path.
  int prefill_batch = 32;
  // Runs the seed's scalar float-activation kernels and per-call RoPE — the
  // performance/numerics baseline the benches and parity tests compare
  // against. Implies per-position prefill and f32 KV storage.
  bool use_reference_kernels = false;
  // Stores the KV cache at f32 instead of the default f16 — the full-width
  // numerics baseline the f16-KV parity suite diffs against. Costs 2x cache
  // footprint, so CurrentBytes() reports 2x the f16 accounting.
  bool kv_f32 = false;
  // Binds this engine to the portable-scalar kernel table even when the CPU
  // supports a SIMD backend — the software half of the SIMD-vs-scalar parity
  // suite (the process-wide TZLLM_SIMD=off env override is the other half),
  // so both dispatch paths are testable on one machine. Unlike
  // use_reference_kernels this keeps the quantized kernels, batched prefill
  // and f16 KV cache; only the inner-loop table changes.
  bool force_scalar = false;
  // Accumulates attention-phase wall time in the executor (bench
  // instrumentation; off by default so production decode takes no clock
  // reads).
  bool collect_stats = false;
  // Routes the batched-prefill matmuls through the secure NPU co-driver
  // (the ComputeBackend seam): each chunk's QKV/FFN matmuls become
  // TZASC-validated NpuJobDesc execution contexts submitted via
  // TeeNpuDriver::SubmitJob. Decode stays on the CPU KernelDispatch path.
  // Requires the co-driver to be wired (LlmTa's npu_driver parameter, from
  // RuntimeConfig::use_npu) — loading fails with a clear Status otherwise.
  // Composes with TZLLM_SIMD: the NPU functional payload runs the engine's
  // own kernel table (the integer-dot rows are bit-identical across tables,
  // and the fused layer-tail's norm/silu glue must match the CPU path
  // exactly), so the combination never changes a logit. Inert under
  // use_reference_kernels or prefill_batch <= 1, which force the
  // per-position CPU path.
  bool npu_prefill = false;
  // Fuses each chunk-layer's matmul group into one secure NPU job (QKV as
  // one job; the whole post-attention segment — Wo + residual + FFN norm +
  // gate/up/silu/down — as another), amortizing the per-job world-switch
  // cost: 2 jobs per layer-chunk instead of 7. Off = one job per matmul
  // (the pre-fusion granularity, kept for the fused-vs-unfused parity test
  // and the co-driver ablation).
  bool npu_fusion = true;
  // Pipelined wavefront schedule for NPU prefill (overlap one chunk's CPU
  // attention with another chunk's fused jobs). Off = the serial chunk
  // schedule (submit, then immediately await) on the same backend — the
  // {serial, pipelined} axis of the fault-recovery test matrix.
  bool npu_pipeline = true;
  // Per-job wait deadline for secure NPU jobs, on the virtual clock. Must
  // be positive when NPU prefill is active: LoadModel / the backend reject
  // non-positive values with InvalidArgument (a zero deadline would mean
  // "wait forever", which a lost job turns into a hang).
  SimDuration npu_job_timeout = 2000 * kMillisecond;
  // Recovery policy for a failed or timed-out secure job: up to
  // npu_max_retries resubmissions (each preceded by npu_retry_backoff of
  // virtual time, charged to the sim clock so the makespan metric stays
  // honest), then — if npu_cpu_fallback — the failed fused job's matmul
  // group is re-executed on the CPU path and the prefill continues.
  // Bit-identical either way: retry and fallback both run the same kernel
  // table the NPU payload would have. npu_cpu_fallback=false surfaces the
  // final Status to the caller instead (the pre-recovery behavior).
  int npu_max_retries = 2;
  SimDuration npu_retry_backoff = 1 * kMillisecond;
  bool npu_cpu_fallback = true;
  // Deterministic fault plan ("payload@5", "timeout@3x2", "ctx@1",
  // "submit@4" — see NpuFaultPlan::Parse). Empty = fall back to the
  // TZLLM_FAULT_PLAN environment variable (the CI fault-sweep hook); both
  // empty = no injection. A malformed plan string fails LoadModel with
  // InvalidArgument.
  std::string npu_fault_plan;
};

// The thread count an engine configured with `options` actually runs:
// n_threads <= 0 means "all hardware threads", anything larger than the
// hardware is clamped to it (oversubscription only adds scheduler thrash —
// there is no configuration where it wins). hardware_concurrency() == 0
// means "unknown" per the standard, not "one core": honor the request then
// rather than silently de-threading a working configuration.
inline int ResolvedThreads(const EngineOptions& options) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) {
    return std::max(1, options.n_threads);
  }
  return options.n_threads <= 0 ? hw : std::min(options.n_threads, hw);
}

// Arena element type for the options' KV mode (reference kernels keep the
// seed's full-width cache so the baseline numerics stay frozen).
inline KvStorage KvStorageFor(const EngineOptions& options) {
  return options.kv_f32 || options.use_reference_kernels ? KvStorage::kF32
                                                         : KvStorage::kF16;
}

}  // namespace tzllm

#endif  // SRC_LLM_ENGINE_OPTIONS_H_
