// llama.cpp-shaped inference facade for functional models: owns the
// tokenizer, KV cache, executor and sampler. This is the engine the REE
// baselines run directly; the LLM TA embeds the same pieces behind the
// secure-memory weight source (src/core/llm_ta.*).

#ifndef SRC_LLM_ENGINE_H_
#define SRC_LLM_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/llm/executor.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model_spec.h"
#include "src/llm/sampler.h"
#include "src/llm/tokenizer.h"

namespace tzllm {

struct GenerationResult {
  std::vector<TokenId> prompt_tokens;
  std::vector<TokenId> output_tokens;
  std::string text;
};

class LlmEngine {
 public:
  // Builds an engine over caller-provided weights (host memory).
  LlmEngine(const ModelSpec& spec, std::unique_ptr<WeightSource> weights,
            const EngineOptions& options = {});

  // Convenience: materializes reference weights for a functional spec.
  static std::unique_ptr<LlmEngine> CreateUnprotected(
      const ModelSpec& spec, uint64_t weight_seed,
      const EngineOptions& options = {});

  const ModelSpec& spec() const { return spec_; }
  const Tokenizer& tokenizer() const { return *tokenizer_; }

  // Full generation: tokenize, prefill, decode `max_new_tokens` (stops at
  // EOS or context limit).
  Result<GenerationResult> Generate(const std::string& prompt,
                                    int max_new_tokens,
                                    const Sampler::Options& sampling = {});

  // Lower-level API used by integration tests.
  Result<std::vector<float>> Prefill(const std::vector<TokenId>& tokens);
  Result<std::vector<float>> DecodeStep(TokenId token);
  // Allocation-free decode: writes vocab_size floats into `logits`.
  // Generate's token loop runs on this with one reusable buffer.
  Status DecodeStepInto(TokenId token, float* logits);
  void ResetContext() { kv_->Reset(); }

  // Introspection for benches/tests: the cache (resident-byte accounting)
  // and the executor's attention-phase timer (EngineOptions::collect_stats).
  const KvCache& kv() const { return *kv_; }
  double attend_seconds() const { return executor_->attend_seconds(); }

 private:
  ModelSpec spec_;
  std::unique_ptr<WeightSource> weights_;
  std::unique_ptr<Tokenizer> tokenizer_;
  std::unique_ptr<KvCache> kv_;
  std::unique_ptr<TransformerExecutor> executor_;
};

}  // namespace tzllm

#endif  // SRC_LLM_ENGINE_H_
