#include "src/llm/tzguf.h"

#include <cstring>

#include "src/common/rng.h"

namespace tzllm {

namespace {

constexpr char kMetaMagic[8] = {'T', 'Z', 'G', 'U', 'F', '0', '1', 0};

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void Bytes(const uint8_t* data, size_t len) {
    out_.insert(out_.end(), data, data + len);
  }
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) {
      return false;
    }
    *v = data_[pos_++];
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | data_[pos_ + i];
    }
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 7; i >= 0; --i) {
      *v = (*v << 8) | data_[pos_ + i];
    }
    pos_ += 8;
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len) || pos_ + len > data_.size()) {
      return false;
    }
    s->assign(data_.begin() + pos_, data_.begin() + pos_ + len);
    pos_ += len;
    return true;
  }
  bool Bytes(uint8_t* out, size_t len) {
    if (pos_ + len > data_.size()) {
      return false;
    }
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

std::vector<uint8_t> SerializeMetaBody(const TzgufMeta& meta) {
  ByteWriter w;
  w.Str(meta.model_id);
  const LlmConfig& c = meta.config;
  w.Str(c.name);
  w.U32(c.n_layers);
  w.U32(c.d_model);
  w.U32(c.n_heads);
  w.U32(c.n_kv_heads);
  w.U32(c.d_ff);
  w.U32(c.vocab_size);
  w.U32(c.max_ctx);
  w.U64(c.target_param_bytes);
  w.U8(meta.materialized ? 1 : 0);
  w.U64(meta.data_file_bytes);
  w.U32(static_cast<uint32_t>(meta.tensor_tags.size()));
  for (const Sha256Digest& tag : meta.tensor_tags) {
    w.Bytes(tag.data(), tag.size());
  }
  return w.Take();
}

Result<TzgufMeta> DeserializeMetaBody(const std::vector<uint8_t>& body) {
  TzgufMeta meta;
  ByteReader r(body);
  LlmConfig& c = meta.config;
  uint32_t layers = 0, d = 0, heads = 0, kv = 0, ff = 0, vocab = 0, ctx = 0;
  uint8_t materialized = 0;
  uint32_t n_tags = 0;
  if (!r.Str(&meta.model_id) || !r.Str(&c.name) || !r.U32(&layers) ||
      !r.U32(&d) || !r.U32(&heads) || !r.U32(&kv) || !r.U32(&ff) ||
      !r.U32(&vocab) || !r.U32(&ctx) || !r.U64(&c.target_param_bytes) ||
      !r.U8(&materialized) || !r.U64(&meta.data_file_bytes) ||
      !r.U32(&n_tags)) {
    return Status(ErrorCode::kDataCorruption, "truncated TZGUF meta");
  }
  c.n_layers = layers;
  c.d_model = d;
  c.n_heads = heads;
  c.n_kv_heads = kv;
  c.d_ff = ff;
  c.vocab_size = vocab;
  c.max_ctx = ctx;
  meta.materialized = materialized != 0;
  meta.tensor_tags.resize(n_tags);
  for (auto& tag : meta.tensor_tags) {
    if (!r.Bytes(tag.data(), tag.size())) {
      return Status(ErrorCode::kDataCorruption, "truncated TZGUF tags");
    }
  }
  return meta;
}

}  // namespace

std::vector<Tensor> Tzguf::ReferenceWeights(const ModelSpec& spec,
                                            uint64_t weight_seed) {
  std::vector<Tensor> tensors;
  tensors.reserve(spec.tensors().size());
  for (const TensorSpec& t : spec.tensors()) {
    // Norm gains around 1.0 keep activations stable; weights around 0.
    if (t.dtype == DType::kF32) {
      Tensor norm = MakeRandomTensor(t.name, DType::kF32, t.rows, t.cols,
                                     weight_seed, 0.02);
      for (uint64_t i = 0; i < norm.NumElements(); ++i) {
        norm.mutable_f32()[i] += 1.0f;
      }
      tensors.push_back(std::move(norm));
    } else {
      tensors.push_back(
          MakeRandomTensor(t.name, t.dtype, t.rows, t.cols, weight_seed));
    }
  }
  return tensors;
}

Result<TzgufMeta> Tzguf::Provision(FlashDevice* flash,
                                   const KeyHierarchy& keys,
                                   const std::string& model_id,
                                   const ModelSpec& spec, uint64_t weight_seed,
                                   bool materialize) {
  if (materialize && !spec.materializable()) {
    return Status(ErrorCode::kInvalidArgument,
                  "scaled (paper-size) models cannot be materialized");
  }
  const AesKey128 model_key = keys.DeriveModelKey(model_id);

  TzgufMeta meta;
  meta.model_id = model_id;
  meta.config = spec.config();
  meta.materialized = materialize;
  meta.data_file_bytes = spec.total_param_bytes();
  meta.tensor_tags.assign(spec.tensors().size(), Sha256Digest{});

  // --- Data file. ---
  if (materialize) {
    std::vector<Tensor> weights = ReferenceWeights(spec, weight_seed);
    std::vector<uint8_t> data(spec.total_param_bytes(), 0);
    AesCtr ctr(model_key, DataIv(model_id));
    for (size_t i = 0; i < weights.size(); ++i) {
      const TensorSpec& ts = spec.tensor(static_cast<int>(i));
      const Tensor& t = weights[i];
      if (t.data.size() != ts.data_bytes) {
        return Status(ErrorCode::kInternal, "tensor size mismatch");
      }
      meta.tensor_tags[i] = Sha256::Hash(t.data.data(), t.data.size());
      std::memcpy(data.data() + ts.file_offset, t.data.data(), t.data.size());
      // Encrypt the whole page-aligned extent (padding included) so the
      // flash image carries no plaintext-zero structure.
      ctr.Crypt(ts.file_offset, data.data() + ts.file_offset, ts.bytes);
    }
    TZLLM_RETURN_IF_ERROR(flash->CreateFile(meta.DataFile(), std::move(data)));
  } else {
    TZLLM_RETURN_IF_ERROR(flash->CreateSyntheticFile(
        meta.DataFile(), spec.total_param_bytes(), SplitMix64(weight_seed)));
  }

  // --- Meta file: magic | sha256(body) | encrypted body. ---
  std::vector<uint8_t> body = SerializeMetaBody(meta);
  const Sha256Digest body_digest = Sha256::Hash(body.data(), body.size());
  AesCtr meta_ctr(model_key, KeyHierarchy::ModelIv("meta/" + model_id));
  meta_ctr.CryptAll(body.data(), body.size());

  ByteWriter w;
  w.Bytes(reinterpret_cast<const uint8_t*>(kMetaMagic), sizeof(kMetaMagic));
  w.Bytes(body_digest.data(), body_digest.size());
  w.Bytes(body.data(), body.size());
  TZLLM_RETURN_IF_ERROR(flash->CreateFile(meta.MetaFile(), w.Take()));

  // --- Wrapped key file. ---
  const WrappedModelKey wrapped = keys.WrapModelKey(model_id, model_key);
  ByteWriter kw;
  kw.Str(wrapped.model_id);
  kw.U32(static_cast<uint32_t>(wrapped.ciphertext.size()));
  kw.Bytes(wrapped.ciphertext.data(), wrapped.ciphertext.size());
  kw.Bytes(wrapped.iv.data(), wrapped.iv.size());
  kw.Bytes(wrapped.integrity_tag.data(), wrapped.integrity_tag.size());
  TZLLM_RETURN_IF_ERROR(flash->CreateFile(KeyFile(model_id), kw.Take()));

  return meta;
}

Result<WrappedModelKey> Tzguf::ReadWrappedKey(FlashDevice* flash,
                                              const std::string& model_id) {
  auto size = flash->FileSize(KeyFile(model_id));
  if (!size.ok()) {
    return size.status();
  }
  std::vector<uint8_t> blob(*size);
  TZLLM_RETURN_IF_ERROR(
      flash->PeekBytes(KeyFile(model_id), 0, *size, blob.data()));
  ByteReader r(blob);
  WrappedModelKey wrapped;
  uint32_t ct_len = 0;
  if (!r.Str(&wrapped.model_id) || !r.U32(&ct_len) || ct_len > 64) {
    return Status(ErrorCode::kDataCorruption, "bad wrapped key blob");
  }
  wrapped.ciphertext.resize(ct_len);
  if (!r.Bytes(wrapped.ciphertext.data(), ct_len) ||
      !r.Bytes(wrapped.iv.data(), wrapped.iv.size()) ||
      !r.Bytes(wrapped.integrity_tag.data(), wrapped.integrity_tag.size())) {
    return Status(ErrorCode::kDataCorruption, "bad wrapped key blob");
  }
  return wrapped;
}

Result<TzgufMeta> Tzguf::ReadMeta(FlashDevice* flash,
                                  const std::string& model_id,
                                  const AesKey128& key) {
  const std::string file = model_id + ".meta";
  auto size = flash->FileSize(file);
  if (!size.ok()) {
    return size.status();
  }
  if (*size < sizeof(kMetaMagic) + 32) {
    return Status(ErrorCode::kDataCorruption, "TZGUF meta truncated");
  }
  std::vector<uint8_t> blob(*size);
  TZLLM_RETURN_IF_ERROR(flash->PeekBytes(file, 0, *size, blob.data()));
  if (std::memcmp(blob.data(), kMetaMagic, sizeof(kMetaMagic)) != 0) {
    return Status(ErrorCode::kDataCorruption, "TZGUF magic mismatch");
  }
  Sha256Digest stored;
  std::memcpy(stored.data(), blob.data() + sizeof(kMetaMagic), 32);
  std::vector<uint8_t> body(blob.begin() + sizeof(kMetaMagic) + 32,
                            blob.end());
  AesCtr ctr(key, KeyHierarchy::ModelIv("meta/" + model_id));
  ctr.CryptAll(body.data(), body.size());
  if (Sha256::Hash(body.data(), body.size()) != stored) {
    return Status(ErrorCode::kDataCorruption,
                  "TZGUF meta integrity check failed (wrong key or tamper)");
  }
  return DeserializeMetaBody(body);
}

void Tzguf::DecryptExtent(const AesKey128& key, const std::string& model_id,
                          uint64_t file_offset, uint8_t* data, uint64_t len) {
  AesCtr ctr(key, DataIv(model_id));
  ctr.Crypt(file_offset, data, len);
}

Status Tzguf::VerifyTensor(const TzgufMeta& meta, int index,
                           const uint8_t* data, uint64_t len) {
  if (index < 0 || index >= static_cast<int>(meta.tensor_tags.size())) {
    return InvalidArgument("tensor index out of range");
  }
  if (!meta.materialized) {
    return OkStatus();  // Paper-scale models are tagless.
  }
  if (Sha256::Hash(data, len) != meta.tensor_tags[index]) {
    return DataCorruption("tensor checksum mismatch (forged model content?)");
  }
  return OkStatus();
}

}  // namespace tzllm
