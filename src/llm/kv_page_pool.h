// Global KV page pool: the paged backing store for the serving KV arena.
//
// A page is a fixed block of kv_page_positions consecutive sequence
// positions spanning ALL layers' K and V planes at the cache's storage
// width — the unit of allocation, refcounting, sharing and eviction.
// Within a page the layout mirrors the flat arena: a K plane then a V
// plane, each [layer][pos_in_page][kv_dim], so positions of one layer stay
// contiguous inside a page and attention walks runs of kv_page_positions
// rows between page hops.
//
// The pool owns a fixed number of resident frames in secure scratch (sized
// to the old slots x ArenaBytes budget by the TA). When every frame is in
// use, allocation and restore evict the least-recently-touched unpinned
// page to REE memory, encrypted and integrity-tagged under the session
// spill key (AES-128-CTR + SHA-256, the PR 6 checkpoint idiom): REE memory
// is attacker-controlled, so a tampered spilled page fails restore with
// kDataCorruption, never with silently wrong KV. Pinned pages (a decode
// step in flight) are never evicted. Recency is a monotonic counter, not a
// clock — eviction order is deterministic and replayable.
//
// Pages are refcounted so sessions admitted with a common token prefix can
// map the same read-only pages (KvArena's prefix registry holds one ref per
// registered prefix); writes to a shared page copy it first (COW, handled
// by KvCache::AppendBatch).

#ifndef SRC_LLM_KV_PAGE_POOL_H_
#define SRC_LLM_KV_PAGE_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/aes.h"
#include "src/llm/model_spec.h"

namespace tzllm {

// Cached vectors per position per layer: one K and one V.
inline constexpr uint64_t kKvVectorsPerPosition = 2;
// Element width of the default f16 storage — the width the secure scratch
// budget and the decode cost model assume. The arena really stores entries
// at this width (KvStorage::kF16), so accounting equals residency.
inline constexpr uint64_t kKvAccountedBytesPerElem = 2;

// Element type of the cache arena. kF16 is the production mode; kF32 is the
// reference baseline the parity tests diff the half-width path against.
enum class KvStorage : uint8_t {
  kF16 = 0,
  kF32 = 1,
};

// Logical page handle. Ids are pool-scoped and recycled only after the last
// reference drops.
using KvPageId = uint32_t;
inline constexpr KvPageId kInvalidKvPage = 0xffffffffu;

struct KvPagePoolOptions {
  // Sequence positions per page. Smaller pages spill at finer grain but add
  // page-table hops to attention; 16 keeps a full page at one SIMD-friendly
  // run.
  int page_positions = 16;
  // Secure-resident budget the frame store is carved from; the frame count
  // is pool_bytes / page_bytes (at least one). The TA passes the old
  // slots x per-session ArenaBytes product so paging never grows the
  // scratch region.
  uint64_t pool_bytes = 0;
  // Allow evicting cold pages to encrypted REE memory. Off = the pool is a
  // hard budget: allocation beyond the frames fails with ResourceExhausted.
  bool spill = true;
  // Key the spill blobs are encrypted under (derived from the model key by
  // the TA; tests may use any fixed key).
  AesKey128 spill_key{};
};

struct KvPageStats {
  uint64_t spills = 0;    // Pages encrypted out to REE memory.
  uint64_t restores = 0;  // Pages decrypted back into a frame.
  uint64_t cow_copies = 0;  // Shared pages privatized before a write.
  uint64_t pages_lost = 0;  // Spilled pages quarantined after failed restore.
  uint64_t spill_faults_injected = 0;  // Blobs tampered/dropped by the plan.
};

class KvPagePool {
 public:
  KvPagePool(const ModelSpec& spec, KvStorage storage,
             const KvPagePoolOptions& opts);

  // Static so LlmTa can budget the scratch region with EXACTLY the numbers
  // the constructed pool will report (the accounting-agreement invariant).
  static uint64_t PageBytes(const ModelSpec& spec, KvStorage storage,
                            int page_positions);
  static int FramesFor(const ModelSpec& spec, KvStorage storage,
                       const KvPagePoolOptions& opts);

  int page_positions() const { return page_positions_; }
  uint64_t page_bytes() const { return page_bytes_; }
  int frames() const { return static_cast<int>(frame_owner_.size()); }
  int free_frames() const { return static_cast<int>(free_frames_.size()); }
  int resident_pages() const { return frames() - free_frames(); }
  int spilled_pages() const { return spilled_pages_; }
  bool spill_enabled() const { return spill_; }

  // --- Page lifecycle. ---------------------------------------------------

  // Allocates a zeroed resident page with refcount 1 (pin count 1 when
  // `pinned` — a page allocated mid-step must not become an eviction victim
  // of a later allocation in the same step). Evicts the LRU unpinned page
  // when no frame is free; ResourceExhausted when spill is off or every
  // frame is pinned.
  Result<KvPageId> Alloc(bool pinned);
  // Adds / drops a reference. The last Unref scrubs the frame (or drops the
  // spill blob) and recycles the id.
  void Ref(KvPageId id);
  Status Unref(KvPageId id);
  int refcount(KvPageId id) const;

  // --- Residency. --------------------------------------------------------

  bool resident(KvPageId id) const;
  // Restores a spilled page into a frame (decrypt + integrity check;
  // kDataCorruption on tamper), evicting colder unpinned pages if needed.
  // No-op when already resident. Counts as a recency touch. Fails with
  // kDataCorruption on a quarantined (lost) page until ClearLost — zeros
  // must never be silently read as KV data.
  Status EnsureResident(KvPageId id);
  // EnsureResident + pin: the page cannot be evicted until Unpin. Pins
  // nest.
  Status Pin(KvPageId id);
  void Unpin(KvPageId id);
  // Recency bump (deterministic monotonic counter).
  void Touch(KvPageId id);

  // --- Loss & recovery (ISSUE 10). ---------------------------------------
  // When RestorePage fails (tampered, truncated or dropped REE blob) the
  // page's data is gone but the session that references it is not: the
  // owner quarantines the page — blob discarded, a zeroed frame claimed,
  // state resident but flagged `lost` so every read path refuses it — and
  // then recomputes the covered positions before calling ClearLost.

  // Spilled -> resident+lost on a zeroed frame. refs/pins are untouched.
  Status Quarantine(KvPageId id);
  bool lost(KvPageId id) const;
  // Recompute finished: the frame holds valid data again.
  Status ClearLost(KvPageId id);

  // Deterministic REE-misbehavior injection (ServeFaultPlan): sabotage the
  // 1-based `first..first+count-1`-th spills right after encryption — a
  // flipped ciphertext byte (tamper) or a truncated blob (drop). Restores
  // of those generations then fail exactly like a real adversarial REE.
  void ArmSpillFault(bool drop, uint64_t first, uint64_t count);

  // --- Frame data (valid only while resident; callers pin around use). ---

  uint16_t* Data16(KvPageId id);
  const uint16_t* Data16(KvPageId id) const;
  float* Data32(KvPageId id);
  const float* Data32(KvPageId id) const;
  // Element offsets of row `pos_in_page` of `layer` within a page's K / V
  // plane.
  size_t KOffset(int layer, int pos_in_page) const {
    return (static_cast<size_t>(layer) * page_positions_ + pos_in_page) *
           kv_dim_;
  }
  size_t VOffset(int layer, int pos_in_page) const {
    return v_plane_ + KOffset(layer, pos_in_page);
  }

  // --- Accounting. -------------------------------------------------------

  // Full secure footprint of the frame store: frames() x page_bytes(). This
  // is what the TA's scratch budget covers — identical to
  // FramesFor(...) x PageBytes(...) by construction.
  uint64_t PoolBytes() const { return frame_owner_.size() * page_bytes_; }
  // Secure bytes currently holding page data.
  uint64_t ResidentBytes() const {
    return static_cast<uint64_t>(resident_pages()) * page_bytes_;
  }
  // Plaintext-equivalent bytes of pages currently spilled to REE memory
  // (the encrypted blobs add a constant header per page).
  uint64_t SpilledBytes() const {
    return static_cast<uint64_t>(spilled_pages_) * page_bytes_;
  }
  const KvPageStats& stats() const { return stats_; }
  void RecordCowCopy() { ++stats_.cow_copies; }

  // --- REE-visible spill surface. ----------------------------------------
  // A spilled page's blob lives in untrusted REE memory, which the threat
  // model says an attacker can rewrite at will; tests model tampering
  // through this mutable view. nullptr / 0 when the page is not spilled.
  uint8_t* ree_blob_data(KvPageId id);
  size_t ree_blob_size(KvPageId id) const;

 private:
  enum class PageState : uint8_t { kFree = 0, kResident = 1, kSpilled = 2 };

  struct Page {
    PageState state = PageState::kFree;
    int frame = -1;
    int refs = 0;
    int pins = 0;
    bool lost = false;  // Quarantined: frame is zeroed, awaiting recompute.
    uint64_t lru = 0;
    uint64_t spill_seq = 0;           // CTR-IV uniqueness across re-spills.
    std::vector<uint8_t> ree_blob;    // Encrypted page while spilled.
  };

  bool ValidLive(KvPageId id) const {
    return id < pages_.size() && pages_[id].state != PageState::kFree;
  }
  uint8_t* FrameBytes(int frame) {
    return reinterpret_cast<uint8_t*>(frames_.data()) +
           static_cast<size_t>(frame) * page_bytes_;
  }
  const uint8_t* FrameBytes(int frame) const {
    return reinterpret_cast<const uint8_t*>(frames_.data()) +
           static_cast<size_t>(frame) * page_bytes_;
  }
  void ScrubFrame(int frame);
  // Claims a frame: free list first, else spill the LRU unpinned page.
  Result<int> TakeFrame();
  Status SpillPage(KvPageId id);
  Status RestorePage(KvPageId id);

  int n_layers_;
  int kv_dim_;
  int page_positions_;
  KvStorage storage_;
  bool spill_;
  AesKey128 spill_key_;
  size_t v_plane_ = 0;       // Element offset of the V plane within a page.
  size_t page_elems_ = 0;    // Elements per page (K+V, all layers).
  uint64_t page_bytes_ = 0;
  // Frame store: uint64 words for alignment; page_bytes_ is always a
  // multiple of 8 (kv_dim is even, K+V doubles it, elements are 2 or 4
  // bytes).
  std::vector<uint64_t> frames_;
  std::vector<KvPageId> frame_owner_;  // frame -> page (kInvalidKvPage free).
  std::vector<int> free_frames_;
  std::vector<Page> pages_;
  std::vector<KvPageId> free_ids_;
  int spilled_pages_ = 0;
  uint64_t lru_clock_ = 0;   // Monotonic recency counter — never wall time.
  uint64_t spill_clock_ = 0;
  // Armed spill-fault window (ArmSpillFault): ordinal is stats_.spills.
  bool spill_fault_armed_ = false;
  bool spill_fault_drop_ = false;
  uint64_t spill_fault_first_ = 0;
  uint64_t spill_fault_count_ = 0;
  KvPageStats stats_;
};

}  // namespace tzllm

#endif  // SRC_LLM_KV_PAGE_POOL_H_
