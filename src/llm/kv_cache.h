// Key/value cache: real storage for functional inference plus the size
// accounting the secure scratch region needs (paper §4.2: the KV cache is
// initialized to the prompt size in prefill, grows during decode, and is
// fully released after inference).
//
// Two storage modes share one interface:
//
//  * Flat (the default constructor): one contiguous arena — a K plane then
//    a V plane, each [layer][pos][kv_dim] — so per-layer appends are a
//    single contiguous run and attention walks sequential memory. This is
//    the single-engine mode and the paging ablation baseline.
//  * Paged (constructed over a KvPagePool): the cache holds a page table of
//    refcounted pool pages, each covering kv_page_positions positions of
//    every layer's K/V planes. Pages are shareable across sessions (prefix
//    sharing) with copy-on-write on append, and cold pages spill to
//    encrypted REE memory under pool pressure — restored on demand when a
//    step pins the cache. Attention walks contiguous runs WITHIN a page and
//    hops between pages (KvCache::RunLen), visiting positions in exactly
//    the flat order: paging changes where the bytes live, never their
//    values or the attend order, so logits stay bit-identical to the flat
//    path.
//
// Entries are stored at f16 by default (convert on Append, expand in the
// attention dot), which halves the cache footprint and makes CurrentBytes()
// equal the bytes actually resident — in paged mode that means resident
// SECURE bytes only (spilled pages are accounted separately by
// SpilledBytes()). KvStorage::kF32 keeps a full-width mode as the numerics
// baseline for the f16 parity suite.

#ifndef SRC_LLM_KV_CACHE_H_
#define SRC_LLM_KV_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/llm/kv_page_pool.h"
#include "src/llm/model_spec.h"
#include "src/llm/tokenizer.h"

namespace tzllm {

struct KernelDispatch;
class KvCache;

// RAII handle for a step pin (KvCache::PinForStep): while alive, every page
// of the cache is resident and immune to eviction, so the raw row pointers
// the executor walks stay valid across the interleaved appends of a batched
// step. Move-only; unpins on destruction.
class KvCachePin {
 public:
  KvCachePin() = default;
  KvCachePin(KvCachePin&& other) noexcept : cache_(other.cache_) {
    other.cache_ = nullptr;
  }
  KvCachePin& operator=(KvCachePin&& other) noexcept;
  KvCachePin(const KvCachePin&) = delete;
  KvCachePin& operator=(const KvCachePin&) = delete;
  ~KvCachePin();

 private:
  friend class KvCache;
  explicit KvCachePin(KvCache* cache) : cache_(cache) {}
  KvCache* cache_ = nullptr;
};

class KvCache {
 public:
  // Flat mode. `kernels` supplies the f32->f16 append converter (nullptr =
  // the process-wide ActiveKernels() table); engines pass KernelsFor(options)
  // so a force_scalar/reference engine fills the arena with the scalar
  // converter. The converters are bit-identical across backends
  // (simd/kernels.h), so this choice never changes the cached bytes — it
  // only decides which code path produces them.
  explicit KvCache(const ModelSpec& spec, KvStorage storage = KvStorage::kF16,
                   const KernelDispatch* kernels = nullptr);
  // Paged mode over a shared pool (must match `storage` and outlive the
  // cache). Pages are allocated lazily as positions are appended.
  KvCache(const ModelSpec& spec, KvPagePool* pool, KvStorage storage,
          const KernelDispatch* kernels);
  ~KvCache();

  KvStorage storage() const { return storage_; }
  bool paged() const { return pool_ != nullptr; }
  uint64_t bytes_per_elem() const {
    return storage_ == KvStorage::kF16 ? 2 : 4;
  }

  // Appends one position's K and V vectors (kv_dim floats each) for `layer`;
  // converted to the storage width on the way in. In paged mode a write to
  // a page shared with other sessions (refcount > 1) privatizes it first
  // (copy-on-write), so divergence past a shared prefix never alters the
  // shared rows.
  Status Append(int layer, const float* k, const float* v);

  // Appends `m` consecutive positions for `layer` in one call; `k` and `v`
  // are [m][kv_dim] row-major (the batched-prefill path).
  Status AppendBatch(int layer, int m, const float* k, const float* v);

  // Current sequence length (positions stored). Uniform across layers once a
  // full forward pass completes.
  int seq_len() const { return seq_len_; }
  void FinishPosition() { ++seq_len_; }
  void FinishPositions(int m) { seq_len_ += m; }
  void Reset();

  int max_ctx() const { return max_ctx_; }
  int kv_dim() const { return kv_dim_; }

  // f16-mode accessors (valid only when storage() == kF16). Positions are
  // contiguous in runs of RunLen(pos) rows: within a run,
  // KeyHalfAt(l, p + 1) == KeyHalfAt(l, p) + kv_dim(). Flat mode is one
  // max_ctx-long run; paged rows are valid only while the page is resident
  // (the executor pins the cache for the step).
  const uint16_t* KeyHalfAt(int layer, int pos) const {
    if (pool_ == nullptr) {
      return arena16_.data() + Offset(layer, pos);
    }
    return pool_->Data16(pages_[pos / page_positions_]) +
           pool_->KOffset(layer, pos % page_positions_);
  }
  const uint16_t* ValueHalfAt(int layer, int pos) const {
    if (pool_ == nullptr) {
      return arena16_.data() + v_plane_ + Offset(layer, pos);
    }
    return pool_->Data16(pages_[pos / page_positions_]) +
           pool_->VOffset(layer, pos % page_positions_);
  }

  // f32-mode accessors (valid only when storage() == kF32).
  const float* KeyAt(int layer, int pos) const {
    if (pool_ == nullptr) {
      return arena32_.data() + Offset(layer, pos);
    }
    return pool_->Data32(pages_[pos / page_positions_]) +
           pool_->KOffset(layer, pos % page_positions_);
  }
  const float* ValueAt(int layer, int pos) const {
    if (pool_ == nullptr) {
      return arena32_.data() + v_plane_ + Offset(layer, pos);
    }
    return pool_->Data32(pages_[pos / page_positions_]) +
           pool_->VOffset(layer, pos % page_positions_);
  }

  // Positions at-and-after `pos` guaranteed adjacent in memory — the
  // attention walk's hop size. Flat: everything to max_ctx; paged: the rest
  // of the page.
  int RunLen(int pos) const {
    return pool_ == nullptr ? max_ctx_ - pos
                            : page_positions_ - pos % page_positions_;
  }

  // --- Paged-mode residency. ---------------------------------------------

  // Pins every page of the cache resident for the duration of a forward
  // step (restoring spilled ones — kDataCorruption if a spilled page was
  // tampered with in REE memory). Pages appended or privatized while pinned
  // are pinned too. Nests; a no-op handle in flat mode.
  Result<KvCachePin> PinForStep();
  // Restores every spilled page without pinning (serialization and
  // inspection paths).
  Status EnsureResident();
  // The cache's page table (paged mode; empty in flat mode). Exposed for
  // the arena's prefix registry.
  const std::vector<KvPageId>& pages() const { return pages_; }
  int PageCount() const { return static_cast<int>(pages_.size()); }
  // Maps `positions` prompt positions of an existing shared prefix into
  // this (empty) cache: references the pages and sets every layer's fill
  // mark, so prefill resumes at `positions` with the shared rows readable
  // and copy-on-write armed for the first divergent append.
  Status AdoptPrefix(const KvPageId* page_ids, size_t n_pages, int positions);

  // --- Loss recovery (ISSUE 10): recompute-on-loss plumbing. -------------
  // A spilled page whose REE blob was tampered with or dropped is *lost*:
  // its data is gone but the token history that produced it is not, so the
  // TA re-prefills exactly the covered positions (bit-identical by the
  // house invariant). The cache provides the three primitives; the policy
  // (token sourcing, budget, ordering) lives in LlmTa::RecoverLostKv.

  int page_positions() const { return page_positions_; }
  // Walks the page table, quarantining every spilled page whose restore
  // fails with kDataCorruption, and records the table indices of all lost
  // pages into `lost_pages` (ascending). Non-corruption restore failures
  // propagate. Flat mode: trivially empty.
  Status ProbeLostPages(std::vector<int>* lost_pages);
  // Makes pages_[page_idx] safe to recompute into: sole holder -> clear the
  // lost flag in place; still shared (another session or the registry holds
  // it) -> detach onto a fresh private page, leaving the lost original to
  // its other holders so their own recovery — not our rows — heals them.
  Status PrepareRecompute(int page_idx);
  // Rewinds (or restores) every layer's fill mark and seq_len to `pos`
  // without touching page references or bytes — brackets a recompute
  // prefill so appended rows land at the lost positions.
  Status RewindFill(int pos);

  // Bytes of everything appended so far at the storage width, from per-layer
  // fill marks (mid-forward-pass, layers already appended this position
  // count too). In kF16 mode this is exactly what the scratch budget
  // accounts (kKvAccountedBytesPerElem) — no silent 2x divergence from the
  // arena's real element width. Paged mode counts RESIDENT secure bytes
  // only; rows currently spilled to REE memory are in SpilledBytes().
  uint64_t CurrentBytes() const;
  // Appended bytes whose page is currently spilled (plaintext-equivalent;
  // zero in flat mode). CurrentBytes() + SpilledBytes() is the full
  // appended footprint.
  uint64_t SpilledBytes() const;

  // Total bytes of the preallocated arena (the full max_ctx footprint).
  // Flat: CurrentBytes() == ArenaBytes() once every layer is filled to
  // max_ctx. Paged: the full-context page footprint of this one session.
  uint64_t ArenaBytes() const;

  // --- Session checkpointing (crash-consistent eviction/restore). ---
  // Appends a self-describing snapshot of the cache — geometry header,
  // sequence length, per-layer fill marks, then only the *filled* prefix of
  // every layer's K and V rows at the storage width — to `out`. The format
  // is identical in flat and paged mode (rows are gathered across pages),
  // so checkpoints move freely between the two. Paged mode restores spilled
  // pages first and can fail (kDataCorruption on a tampered spill).
  Status SerializeState(std::vector<uint8_t>* out) const;
  // Restores a SerializeState snapshot into this cache. The snapshot's
  // geometry (layers, kv_dim, max_ctx, storage width) must match this
  // cache's exactly — InvalidArgument otherwise, kDataCorruption on a
  // truncated/inconsistent blob. On success the cache is bit-identical to
  // the serialized one (decode resumes producing identical logits).
  Status RestoreState(const uint8_t* data, size_t len);
  // Eviction scrub: zeroes the arena (flat) or releases every page
  // reference (paged — the pool scrubs frames when the last reference
  // drops, so shared prefix pages survive for their other holders) and
  // resets the fill marks. A checkpointed-then-evicted session leaves no
  // private KV plaintext behind.
  void Scrub();

 private:
  friend class KvCachePin;

  size_t Offset(int layer, int pos) const {
    return (static_cast<size_t>(layer) * max_ctx_ + pos) * kv_dim_;
  }
  // Grows the page table to cover positions [0, pos_end).
  Status EnsurePagesFor(int pos_end);
  // Residency + copy-on-write: after this, pages_[page_idx] is resident,
  // exclusively owned and safe to write.
  Status MakeWritable(size_t page_idx);
  // Drops every page reference (pool scrubs frames when the last holder
  // leaves). Must not run while pinned.
  void ReleasePages();
  void UnpinStep();

  int n_layers_;
  int kv_dim_;
  int max_ctx_;
  KvStorage storage_;
  const KernelDispatch* kernels_;
  int seq_len_ = 0;
  std::vector<int> filled_;  // Per-layer appended positions.
  // Flat mode: exactly one of the arenas is sized, per storage_. Each is K
  // plane then V plane, [layer][pos][kv_dim].
  std::vector<uint16_t> arena16_;
  std::vector<float> arena32_;
  size_t v_plane_ = 0;  // Offset of the V plane within the arena.
  // Paged mode.
  KvPagePool* pool_ = nullptr;
  int page_positions_ = 0;
  std::vector<KvPageId> pages_;  // Page table: pages_[pos / page_positions_].
  int pin_depth_ = 0;
};

// Options for the serving KV arena. Flat keeps `slots` fully-private
// preallocated caches (the pre-paging behavior); paged backs the slots with
// one shared KvPagePool plus a prefix registry for cross-session sharing.
struct KvArenaOptions {
  int slots = 1;
  KvStorage storage = KvStorage::kF16;
  const KernelDispatch* kernels = nullptr;
  bool paged = false;
  // Pool geometry/budget/spill; pool.pool_bytes == 0 means "the old flat
  // budget" (slots x per-session arena bytes), so turning paging on never
  // grows the scratch region.
  KvPagePoolOptions pool;
  // Capacity of the shared-prefix registry (LRU-evicted); 0 disables
  // sharing. Paged mode only.
  int prefix_entries = 16;
};

// Per-session KV slots for the serving runtime: `slots` independent KvCache
// page tables (or flat arenas) over one geometry, acquired by AdmitSession
// and released on Finish/Checkpoint. Sessions never share MUTABLE state:
// shared prefix pages are read-only by construction (copy-on-write on the
// first divergent append), so per-session CurrentBytes() stays truthful and
// a slot's Scrub() on release leaves no other session's plaintext behind.
// The pool (paged) or slots x ArenaBytes (flat) is what the TA's secure
// scratch budget accounts.
class KvArena {
 public:
  KvArena(const ModelSpec& spec, const KvArenaOptions& options);
  // Legacy flat constructor.
  KvArena(const ModelSpec& spec, int slots, KvStorage storage = KvStorage::kF16,
          const KernelDispatch* kernels = nullptr);

  // The secure bytes an arena built with `options` will occupy — EXACTLY
  // ArenaBytes() of the constructed arena, so LlmTa's scratch budget and
  // the arena's own accounting can never drift (the invariant the
  // accounting regression test locks).
  static uint64_t BudgetBytes(const ModelSpec& spec,
                              const KvArenaOptions& options);

  // Claims a free slot (reset to empty) and returns its index;
  // kResourceExhausted when every slot is live.
  Result<int> Acquire();
  // Scrubs and frees a live slot. InvalidArgument for a bad or free index —
  // a double release would silently hand one cache to two sessions.
  Status Release(int slot);

  // The slot's cache; valid between Acquire and Release. nullptr for a bad
  // index (callers hold indices they acquired, so this is a programming
  // error, not a recoverable state).
  KvCache* cache(int slot);
  const KvCache* cache(int slot) const;

  int slots() const { return static_cast<int>(caches_.size()); }
  int live() const { return live_; }
  int free_slots() const { return slots() - live_; }

  bool paged() const { return pool_ != nullptr; }
  KvPagePool* pool() { return pool_.get(); }
  const KvPagePool* pool() const { return pool_.get(); }

  // Bytes one session's full-context footprint occupies (every slot is the
  // same geometry).
  uint64_t SlotBytes() const;
  // Resident appended bytes across live slots — the arena-wide analogue of
  // KvCache::CurrentBytes(). Shared pages count once per referencing
  // session (each session's accounting is truthful about what it can read).
  uint64_t CurrentBytes() const;
  // Appended bytes currently spilled to REE memory across live slots.
  uint64_t SpilledBytes() const;
  // Full preallocated secure footprint: the pool (paged) or
  // slots() x SlotBytes() (flat). Equals BudgetBytes() by construction.
  uint64_t ArenaBytes() const;

  // --- Cross-session prefix sharing (paged mode). ------------------------

  struct PrefixStats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t adopted_positions = 0;
    uint64_t registered = 0;
    uint64_t evicted = 0;
  };

  // Maps the longest registered token prefix of `prompt` into `slot`'s
  // empty cache (hash-keyed exact-token match, whole positions, capped at
  // prompt.size() - 1 so the final prompt position still runs and produces
  // the first-token logits). Returns the number of positions adopted; 0 on
  // a miss, in flat mode, or when sharing is disabled. Prefixes shorter
  // than one page are not adopted (the COW copy would cost more than the
  // skipped positions).
  int AdoptPrefix(int slot, const std::vector<TokenId>& prompt);
  // Registers `slot`'s first `tokens.size()` cached positions as a
  // shareable prefix (called once its prompt is fully prefilled). The
  // registry holds one reference per page, so the owner's first append past
  // registration copies-on-write instead of mutating the shared rows.
  // Deduplicated by token hash; LRU-evicted beyond the registry capacity.
  Status RegisterPrefix(int slot, const std::vector<TokenId>& tokens);
  // Invalidates every registry entry holding a lost page (the shared rows
  // are gone; adopting them would hand out zeros). Returns entries dropped.
  int DropLostPrefixEntries();
  const PrefixStats& prefix_stats() const { return prefix_stats_; }
  int prefix_entry_count() const { return static_cast<int>(prefix_.size()); }

 private:
  struct PrefixEntry {
    uint64_t hash = 0;
    std::vector<TokenId> tokens;
    std::vector<KvPageId> pages;  // One registry reference each.
    uint64_t last_hit = 0;
  };

  void DropPrefixEntry(size_t index);

  std::unique_ptr<KvPagePool> pool_;  // Paged mode only.
  std::vector<std::unique_ptr<KvCache>> caches_;
  std::vector<bool> live_slots_;
  int live_ = 0;
  uint64_t flat_slot_bytes_ = 0;
  std::vector<PrefixEntry> prefix_;
  int prefix_cap_ = 0;
  uint64_t prefix_clock_ = 0;  // Monotonic recency counter — never wall time.
  PrefixStats prefix_stats_;
};

}  // namespace tzllm

#endif  // SRC_LLM_KV_CACHE_H_
