// Key/value cache: real storage for functional inference plus the size
// accounting the secure scratch region needs (paper §4.2: the KV cache is
// initialized to the prompt size in prefill, grows during decode, and is
// fully released after inference).
//
// Storage is one flat contiguous arena — a K plane then a V plane, each laid
// out [layer][pos][kv_dim] — so per-layer appends are a single memcpy into a
// contiguous run and attention walks sequential memory, instead of the seed's
// vector-of-vectors.

#ifndef SRC_LLM_KV_CACHE_H_
#define SRC_LLM_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/llm/model_spec.h"

namespace tzllm {

// Cached vectors per position per layer: one K and one V.
inline constexpr uint64_t kKvVectorsPerPosition = 2;
// The secure scratch budget accounts KV entries at f16 width (paper §4.2),
// independent of the f32 functional storage here.
inline constexpr uint64_t kKvAccountedBytesPerElem = 2;

class KvCache {
 public:
  explicit KvCache(const ModelSpec& spec);

  // Appends one position's K and V vectors (kv_dim floats each) for `layer`.
  Status Append(int layer, const float* k, const float* v);

  // Appends `m` consecutive positions for `layer` in one call; `k` and `v`
  // are [m][kv_dim] row-major (the batched-prefill path).
  Status AppendBatch(int layer, int m, const float* k, const float* v);

  // Current sequence length (positions stored). Uniform across layers once a
  // full forward pass completes.
  int seq_len() const { return seq_len_; }
  void FinishPosition() { ++seq_len_; }
  void FinishPositions(int m) { seq_len_ += m; }
  void Reset();

  int max_ctx() const { return max_ctx_; }

  const float* KeyAt(int layer, int pos) const {
    return arena_.data() + Offset(layer, pos);
  }
  const float* ValueAt(int layer, int pos) const {
    return arena_.data() + v_plane_ + Offset(layer, pos);
  }

  // Accounted bytes of everything appended so far, from per-layer fill marks
  // (mid-forward-pass, layers already appended this position count too).
  uint64_t CurrentBytes() const;

 private:
  size_t Offset(int layer, int pos) const {
    return (static_cast<size_t>(layer) * max_ctx_ + pos) * kv_dim_;
  }

  int n_layers_;
  int kv_dim_;
  int max_ctx_;
  int seq_len_ = 0;
  std::vector<int> filled_;   // Per-layer appended positions.
  std::vector<float> arena_;  // K plane then V plane, [layer][pos][kv_dim].
  size_t v_plane_ = 0;        // Offset of the V plane within the arena.
};

}  // namespace tzllm

#endif  // SRC_LLM_KV_CACHE_H_
