// Key/value cache: real storage for functional inference plus the size
// accounting the secure scratch region needs (paper §4.2: the KV cache is
// initialized to the prompt size in prefill, grows during decode, and is
// fully released after inference).
//
// Storage is one flat contiguous arena — a K plane then a V plane, each laid
// out [layer][pos][kv_dim] — so per-layer appends are a single contiguous
// run and attention walks sequential memory, instead of the seed's
// vector-of-vectors. Entries are stored at f16 by default (convert on
// Append, expand in the attention dot), which halves the cache footprint and
// makes CurrentBytes() equal the bytes actually resident — the same width
// the secure scratch budget accounts (paper §4.2). KvStorage::kF32 keeps a
// full-width mode as the numerics baseline for the f16 parity suite.

#ifndef SRC_LLM_KV_CACHE_H_
#define SRC_LLM_KV_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/llm/model_spec.h"

namespace tzllm {

struct KernelDispatch;

// Cached vectors per position per layer: one K and one V.
inline constexpr uint64_t kKvVectorsPerPosition = 2;
// Element width of the default f16 storage — the width the secure scratch
// budget and the decode cost model assume. The arena really stores entries
// at this width (KvStorage::kF16), so accounting equals residency.
inline constexpr uint64_t kKvAccountedBytesPerElem = 2;

// Element type of the cache arena. kF16 is the production mode; kF32 is the
// reference baseline the parity tests diff the half-width path against.
enum class KvStorage : uint8_t {
  kF16 = 0,
  kF32 = 1,
};

class KvCache {
 public:
  // `kernels` supplies the f32->f16 append converter (nullptr = the
  // process-wide ActiveKernels() table); engines pass KernelsFor(options) so
  // a force_scalar/reference engine fills the arena with the scalar
  // converter. The converters are bit-identical across backends
  // (simd/kernels.h), so this choice never changes the cached bytes — it
  // only decides which code path produces them.
  explicit KvCache(const ModelSpec& spec, KvStorage storage = KvStorage::kF16,
                   const KernelDispatch* kernels = nullptr);

  KvStorage storage() const { return storage_; }
  uint64_t bytes_per_elem() const {
    return storage_ == KvStorage::kF16 ? 2 : 4;
  }

  // Appends one position's K and V vectors (kv_dim floats each) for `layer`;
  // converted to the storage width on the way in.
  Status Append(int layer, const float* k, const float* v);

  // Appends `m` consecutive positions for `layer` in one call; `k` and `v`
  // are [m][kv_dim] row-major (the batched-prefill path).
  Status AppendBatch(int layer, int m, const float* k, const float* v);

  // Current sequence length (positions stored). Uniform across layers once a
  // full forward pass completes.
  int seq_len() const { return seq_len_; }
  void FinishPosition() { ++seq_len_; }
  void FinishPositions(int m) { seq_len_ += m; }
  void Reset();

  int max_ctx() const { return max_ctx_; }
  int kv_dim() const { return kv_dim_; }

  // f16-mode accessors (valid only when storage() == kF16). Consecutive
  // positions of a layer stay adjacent: KeyHalfAt(l, p + 1) ==
  // KeyHalfAt(l, p) + kv_dim().
  const uint16_t* KeyHalfAt(int layer, int pos) const {
    return arena16_.data() + Offset(layer, pos);
  }
  const uint16_t* ValueHalfAt(int layer, int pos) const {
    return arena16_.data() + v_plane_ + Offset(layer, pos);
  }

  // f32-mode accessors (valid only when storage() == kF32).
  const float* KeyAt(int layer, int pos) const {
    return arena32_.data() + Offset(layer, pos);
  }
  const float* ValueAt(int layer, int pos) const {
    return arena32_.data() + v_plane_ + Offset(layer, pos);
  }

  // Bytes of everything appended so far at the storage width, from per-layer
  // fill marks (mid-forward-pass, layers already appended this position
  // count too). In kF16 mode this is exactly what the scratch budget
  // accounts (kKvAccountedBytesPerElem) — no silent 2x divergence from the
  // arena's real element width.
  uint64_t CurrentBytes() const;

  // Total bytes of the preallocated arena (the full max_ctx footprint).
  // CurrentBytes() == ArenaBytes() once every layer is filled to max_ctx.
  uint64_t ArenaBytes() const;

  // --- Session checkpointing (crash-consistent eviction/restore). ---
  // Appends a self-describing snapshot of the cache — geometry header,
  // sequence length, per-layer fill marks, then only the *filled* prefix of
  // every layer's K and V rows at the storage width — to `out`.
  void SerializeState(std::vector<uint8_t>* out) const;
  // Restores a SerializeState snapshot into this cache. The snapshot's
  // geometry (layers, kv_dim, max_ctx, storage width) must match this
  // cache's exactly — InvalidArgument otherwise, kDataCorruption on a
  // truncated/inconsistent blob. On success the cache is bit-identical to
  // the serialized one (decode resumes producing identical logits).
  Status RestoreState(const uint8_t* data, size_t len);
  // Eviction scrub: zeroes the whole arena and resets the fill marks, so a
  // checkpointed-then-evicted session leaves no KV plaintext behind.
  void Scrub();

 private:
  size_t Offset(int layer, int pos) const {
    return (static_cast<size_t>(layer) * max_ctx_ + pos) * kv_dim_;
  }

  int n_layers_;
  int kv_dim_;
  int max_ctx_;
  KvStorage storage_;
  const KernelDispatch* kernels_;
  int seq_len_ = 0;
  std::vector<int> filled_;  // Per-layer appended positions.
  // Exactly one of the arenas is sized, per storage_. Each is K plane then
  // V plane, [layer][pos][kv_dim].
  std::vector<uint16_t> arena16_;
  std::vector<float> arena32_;
  size_t v_plane_ = 0;  // Offset of the V plane within the arena.
};

// Per-session KV slots for the serving runtime: `slots` independent KvCache
// arenas over one geometry, acquired by AdmitSession and released on
// Finish/Checkpoint. Each slot is a full private cache — sessions never
// share rows, so per-session CurrentBytes() stays truthful and a slot's
// Scrub() on release leaves no other session's plaintext behind. The whole
// arena (slots x ArenaBytes) is what the TA's secure scratch budget
// accounts.
class KvArena {
 public:
  KvArena(const ModelSpec& spec, int slots, KvStorage storage = KvStorage::kF16,
          const KernelDispatch* kernels = nullptr);

  // Claims a free slot (reset to empty) and returns its index;
  // kResourceExhausted when every slot is live.
  Result<int> Acquire();
  // Scrubs and frees a live slot. InvalidArgument for a bad or free index —
  // a double release would silently hand one cache to two sessions.
  Status Release(int slot);

  // The slot's cache; valid between Acquire and Release. nullptr for a bad
  // index (callers hold indices they acquired, so this is a programming
  // error, not a recoverable state).
  KvCache* cache(int slot);
  const KvCache* cache(int slot) const;

  int slots() const { return static_cast<int>(caches_.size()); }
  int live() const { return live_; }
  int free_slots() const { return slots() - live_; }

  // Bytes one slot's full arena occupies (every slot is the same geometry).
  uint64_t SlotBytes() const;
  // Appended bytes across live slots — the arena-wide analogue of
  // KvCache::CurrentBytes().
  uint64_t CurrentBytes() const;
  // Full preallocated footprint: slots() x SlotBytes().
  uint64_t ArenaBytes() const;

 private:
  std::vector<std::unique_ptr<KvCache>> caches_;
  std::vector<bool> live_slots_;
  int live_ = 0;
};

}  // namespace tzllm

#endif  // SRC_LLM_KV_CACHE_H_
