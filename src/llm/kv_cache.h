// Key/value cache: real storage for functional inference plus the size
// accounting the secure scratch region needs (paper §4.2: the KV cache is
// initialized to the prompt size in prefill, grows during decode, and is
// fully released after inference).

#ifndef SRC_LLM_KV_CACHE_H_
#define SRC_LLM_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/llm/model_spec.h"

namespace tzllm {

class KvCache {
 public:
  explicit KvCache(const ModelSpec& spec);

  // Appends one position's K and V vectors (kv_dim floats each) for `layer`.
  Status Append(int layer, const float* k, const float* v);

  // Current sequence length (positions stored). Uniform across layers once a
  // full forward pass completes.
  int seq_len() const { return seq_len_; }
  void FinishPosition() { ++seq_len_; }
  void Reset();

  const float* KeyAt(int layer, int pos) const;
  const float* ValueAt(int layer, int pos) const;

  uint64_t CurrentBytes() const;

 private:
  int n_layers_;
  int kv_dim_;
  int max_ctx_;
  int seq_len_ = 0;
  std::vector<int> filled_;            // Per-layer appended positions.
  std::vector<std::vector<float>> k_;  // [layer][pos * kv_dim].
  std::vector<std::vector<float>> v_;
};

}  // namespace tzllm

#endif  // SRC_LLM_KV_CACHE_H_
