#include "src/llm/engine.h"

#include "src/llm/tzguf.h"

namespace tzllm {

LlmEngine::LlmEngine(const ModelSpec& spec,
                     std::unique_ptr<WeightSource> weights,
                     const EngineOptions& options)
    : spec_(spec), weights_(std::move(weights)) {
  tokenizer_ = std::make_unique<Tokenizer>(spec_.config().vocab_size);
  kv_ = std::make_unique<KvCache>(spec_, KvStorageFor(options),
                                  KernelsFor(options));
  executor_ = std::make_unique<TransformerExecutor>(&spec_, weights_.get(),
                                                    options);
}

std::unique_ptr<LlmEngine> LlmEngine::CreateUnprotected(
    const ModelSpec& spec, uint64_t weight_seed,
    const EngineOptions& options) {
  auto weights = std::make_unique<HostWeightSource>(
      Tzguf::ReferenceWeights(spec, weight_seed));
  return std::make_unique<LlmEngine>(spec, std::move(weights), options);
}

Result<std::vector<float>> LlmEngine::Prefill(
    const std::vector<TokenId>& tokens) {
  return executor_->Prefill(tokens, kv_.get());
}

Result<std::vector<float>> LlmEngine::DecodeStep(TokenId token) {
  return executor_->DecodeStep(token, kv_.get());
}

Status LlmEngine::DecodeStepInto(TokenId token, float* logits) {
  return executor_->DecodeStepInto(token, kv_.get(), logits);
}

Result<GenerationResult> LlmEngine::Generate(const std::string& prompt,
                                             int max_new_tokens,
                                             const Sampler::Options& sampling) {
  GenerationResult result;
  result.prompt_tokens = tokenizer_->Encode(prompt);
  if (result.prompt_tokens.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty prompt");
  }
  kv_->Reset();
  auto logits = executor_->Prefill(result.prompt_tokens, kv_.get());
  if (!logits.ok()) {
    return logits.status();
  }
  Sampler sampler(sampling);
  TokenId token = sampler.Sample(*logits);
  const int limit = spec_.config().max_ctx;
  // One logits buffer reused across the whole decode loop (DecodeStepInto
  // writes in place; the by-value DecodeStep would allocate per step).
  std::vector<float> next(spec_.config().vocab_size);
  for (int i = 0; i < max_new_tokens; ++i) {
    if (token == Tokenizer::kEos || kv_->seq_len() >= limit) {
      break;
    }
    result.output_tokens.push_back(token);
    Status st = executor_->DecodeStepInto(token, kv_.get(), next.data());
    if (!st.ok()) {
      return st;
    }
    token = sampler.Sample(next);
  }
  result.text = tokenizer_->Decode(result.output_tokens);
  return result;
}

}  // namespace tzllm
