#include "src/llm/kv_cache.h"

#include <algorithm>
#include <cstring>

#include "src/llm/simd/kernels.h"
#include "src/llm/tensor.h"

namespace tzllm {

KvCache::KvCache(const ModelSpec& spec, KvStorage storage,
                 const KernelDispatch* kernels)
    : n_layers_(spec.config().n_layers),
      kv_dim_(spec.config().kv_dim()),
      max_ctx_(spec.config().max_ctx),
      storage_(storage),
      kernels_(kernels != nullptr ? kernels : ActiveKernels()),
      filled_(n_layers_, 0) {
  v_plane_ = static_cast<size_t>(n_layers_) * max_ctx_ * kv_dim_;
  if (storage_ == KvStorage::kF16) {
    arena16_.resize(v_plane_ * kKvVectorsPerPosition);
  } else {
    arena32_.resize(v_plane_ * kKvVectorsPerPosition);
  }
}

Status KvCache::Append(int layer, const float* k, const float* v) {
  return AppendBatch(layer, 1, k, v);
}

Status KvCache::AppendBatch(int layer, int m, const float* k, const float* v) {
  if (layer < 0 || layer >= n_layers_) {
    return InvalidArgument("bad layer");
  }
  if (m <= 0) {
    return InvalidArgument("bad batch size");
  }
  if (filled_[layer] + m > max_ctx_) {
    return ResourceExhausted("KV cache full (context length exceeded)");
  }
  const size_t off = Offset(layer, filled_[layer]);
  const size_t n = static_cast<size_t>(m) * kv_dim_;
  if (storage_ == KvStorage::kF16) {
    kernels_->f32_to_f16(k, arena16_.data() + off, n);
    kernels_->f32_to_f16(v, arena16_.data() + v_plane_ + off, n);
  } else {
    std::memcpy(arena32_.data() + off, k, n * sizeof(float));
    std::memcpy(arena32_.data() + v_plane_ + off, v, n * sizeof(float));
  }
  filled_[layer] += m;
  return OkStatus();
}

void KvCache::Reset() {
  seq_len_ = 0;
  for (int l = 0; l < n_layers_; ++l) {
    filled_[l] = 0;
  }
}

uint64_t KvCache::CurrentBytes() const {
  uint64_t positions = 0;
  for (int l = 0; l < n_layers_; ++l) {
    positions += filled_[l];
  }
  return positions * kv_dim_ * kKvVectorsPerPosition * bytes_per_elem();
}

uint64_t KvCache::ArenaBytes() const {
  return storage_ == KvStorage::kF16
             ? arena16_.size() * sizeof(uint16_t)
             : arena32_.size() * sizeof(float);
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU32(const uint8_t* data, size_t len, size_t* off, uint32_t* v) {
  if (*off + 4 > len) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(data[*off + i]) << (8 * i);
  }
  *off += 4;
  return true;
}

}  // namespace

void KvCache::SerializeState(std::vector<uint8_t>* out) const {
  // Little-endian explicit layout (matches the checkpoint blob idiom):
  // geometry guard first so a restore into a differently-shaped cache is a
  // clean error, then seq_len + fills, then only the filled row prefixes —
  // an early-generation session costs its resident bytes, not max_ctx.
  PutU32(out, static_cast<uint32_t>(n_layers_));
  PutU32(out, static_cast<uint32_t>(kv_dim_));
  PutU32(out, static_cast<uint32_t>(max_ctx_));
  PutU32(out, static_cast<uint32_t>(storage_));
  PutU32(out, static_cast<uint32_t>(seq_len_));
  for (int l = 0; l < n_layers_; ++l) {
    PutU32(out, static_cast<uint32_t>(filled_[l]));
  }
  const size_t elem = bytes_per_elem();
  auto append_rows = [&](int layer, bool v_plane) {
    const size_t off = Offset(layer, 0) + (v_plane ? v_plane_ : 0);
    const size_t bytes =
        static_cast<size_t>(filled_[layer]) * kv_dim_ * elem;
    const uint8_t* src =
        storage_ == KvStorage::kF16
            ? reinterpret_cast<const uint8_t*>(arena16_.data() + off)
            : reinterpret_cast<const uint8_t*>(arena32_.data() + off);
    out->insert(out->end(), src, src + bytes);
  };
  for (int l = 0; l < n_layers_; ++l) {
    append_rows(l, /*v_plane=*/false);
    append_rows(l, /*v_plane=*/true);
  }
}

Status KvCache::RestoreState(const uint8_t* data, size_t len) {
  size_t off = 0;
  uint32_t layers = 0, dim = 0, ctx = 0, storage = 0, seq = 0;
  if (!GetU32(data, len, &off, &layers) || !GetU32(data, len, &off, &dim) ||
      !GetU32(data, len, &off, &ctx) || !GetU32(data, len, &off, &storage)) {
    return Status(ErrorCode::kDataCorruption, "truncated KV snapshot header");
  }
  if (layers != static_cast<uint32_t>(n_layers_) ||
      dim != static_cast<uint32_t>(kv_dim_) ||
      ctx != static_cast<uint32_t>(max_ctx_) ||
      storage != static_cast<uint32_t>(storage_)) {
    return InvalidArgument(
        "KV snapshot geometry does not match this cache (different model or "
        "storage mode)");
  }
  if (!GetU32(data, len, &off, &seq) || seq > static_cast<uint32_t>(max_ctx_)) {
    return Status(ErrorCode::kDataCorruption, "bad KV snapshot length");
  }
  std::vector<uint32_t> fills(n_layers_);
  for (int l = 0; l < n_layers_; ++l) {
    if (!GetU32(data, len, &off, &fills[l]) ||
        fills[l] > static_cast<uint32_t>(max_ctx_)) {
      return Status(ErrorCode::kDataCorruption, "bad KV snapshot fill mark");
    }
  }
  const size_t elem = bytes_per_elem();
  size_t body = 0;
  for (int l = 0; l < n_layers_; ++l) {
    body += static_cast<size_t>(fills[l]) * kv_dim_ * elem *
            kKvVectorsPerPosition;
  }
  if (len - off != body) {
    return Status(ErrorCode::kDataCorruption,
                  "KV snapshot body does not match its fill marks");
  }
  Scrub();
  auto restore_rows = [&](int layer, bool v_plane) {
    const size_t dst = Offset(layer, 0) + (v_plane ? v_plane_ : 0);
    const size_t bytes = static_cast<size_t>(fills[layer]) * kv_dim_ * elem;
    uint8_t* arena =
        storage_ == KvStorage::kF16
            ? reinterpret_cast<uint8_t*>(arena16_.data() + dst)
            : reinterpret_cast<uint8_t*>(arena32_.data() + dst);
    std::memcpy(arena, data + off, bytes);
    off += bytes;
  };
  for (int l = 0; l < n_layers_; ++l) {
    restore_rows(l, /*v_plane=*/false);
    restore_rows(l, /*v_plane=*/true);
    filled_[l] = static_cast<int>(fills[l]);
  }
  seq_len_ = static_cast<int>(seq);
  return OkStatus();
}

void KvCache::Scrub() {
  if (storage_ == KvStorage::kF16) {
    std::fill(arena16_.begin(), arena16_.end(), 0);
  } else {
    std::fill(arena32_.begin(), arena32_.end(), 0.0f);
  }
  Reset();
}

KvArena::KvArena(const ModelSpec& spec, int slots, KvStorage storage,
                 const KernelDispatch* kernels)
    : live_slots_(static_cast<size_t>(std::max(1, slots)), false) {
  caches_.reserve(live_slots_.size());
  for (size_t s = 0; s < live_slots_.size(); ++s) {
    caches_.push_back(std::make_unique<KvCache>(spec, storage, kernels));
  }
}

Result<int> KvArena::Acquire() {
  for (size_t s = 0; s < caches_.size(); ++s) {
    if (!live_slots_[s]) {
      live_slots_[s] = true;
      ++live_;
      caches_[s]->Reset();
      return static_cast<int>(s);
    }
  }
  return Status(ErrorCode::kResourceExhausted,
                "KV arena full: every session slot is live (raise "
                "EngineOptions::max_sessions or finish/evict a session)");
}

Status KvArena::Release(int slot) {
  if (slot < 0 || slot >= slots() || !live_slots_[slot]) {
    return InvalidArgument("KV arena release of a free or invalid slot");
  }
  caches_[slot]->Scrub();
  live_slots_[slot] = false;
  --live_;
  return OkStatus();
}

KvCache* KvArena::cache(int slot) {
  return slot >= 0 && slot < slots() ? caches_[slot].get() : nullptr;
}

const KvCache* KvArena::cache(int slot) const {
  return slot >= 0 && slot < slots() ? caches_[slot].get() : nullptr;
}

uint64_t KvArena::SlotBytes() const { return caches_[0]->ArenaBytes(); }

uint64_t KvArena::CurrentBytes() const {
  uint64_t total = 0;
  for (size_t s = 0; s < caches_.size(); ++s) {
    if (live_slots_[s]) {
      total += caches_[s]->CurrentBytes();
    }
  }
  return total;
}

uint64_t KvArena::ArenaBytes() const { return slots() * SlotBytes(); }

}  // namespace tzllm
