#include "src/llm/kv_cache.h"

#include <algorithm>
#include <cstring>

#include "src/llm/simd/kernels.h"
#include "src/llm/tensor.h"

namespace tzllm {

namespace {

// Full-context flat footprint of one session at `storage` width — the
// pre-paging per-slot arena size, and the per-slot share of the default
// paged pool budget (paging never grows the scratch region).
uint64_t FlatSlotBytes(const ModelSpec& spec, KvStorage storage) {
  const LlmConfig& c = spec.config();
  const uint64_t elem = storage == KvStorage::kF16 ? 2 : 4;
  return static_cast<uint64_t>(c.n_layers) * c.max_ctx * c.kv_dim() *
         kKvVectorsPerPosition * elem;
}

// FNV-1a over the token ids' little-endian bytes: the prefix registry key.
// Deterministic across runs and platforms (no pointer or clock input).
uint64_t HashTokens(const TokenId* tokens, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t t = static_cast<uint32_t>(tokens[i]);
    for (int b = 0; b < 4; ++b) {
      h ^= (t >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

KvCachePin& KvCachePin::operator=(KvCachePin&& other) noexcept {
  if (this != &other) {
    if (cache_ != nullptr) {
      cache_->UnpinStep();
    }
    cache_ = other.cache_;
    other.cache_ = nullptr;
  }
  return *this;
}

KvCachePin::~KvCachePin() {
  if (cache_ != nullptr) {
    cache_->UnpinStep();
  }
}

KvCache::KvCache(const ModelSpec& spec, KvStorage storage,
                 const KernelDispatch* kernels)
    : n_layers_(spec.config().n_layers),
      kv_dim_(spec.config().kv_dim()),
      max_ctx_(spec.config().max_ctx),
      storage_(storage),
      kernels_(kernels != nullptr ? kernels : ActiveKernels()),
      filled_(n_layers_, 0) {
  v_plane_ = static_cast<size_t>(n_layers_) * max_ctx_ * kv_dim_;
  if (storage_ == KvStorage::kF16) {
    arena16_.resize(v_plane_ * kKvVectorsPerPosition);
  } else {
    arena32_.resize(v_plane_ * kKvVectorsPerPosition);
  }
}

KvCache::KvCache(const ModelSpec& spec, KvPagePool* pool, KvStorage storage,
                 const KernelDispatch* kernels)
    : n_layers_(spec.config().n_layers),
      kv_dim_(spec.config().kv_dim()),
      max_ctx_(spec.config().max_ctx),
      storage_(storage),
      kernels_(kernels != nullptr ? kernels : ActiveKernels()),
      filled_(n_layers_, 0),
      pool_(pool),
      page_positions_(pool->page_positions()) {}

KvCache::~KvCache() {
  if (pool_ != nullptr) {
    ReleasePages();
  }
}

Status KvCache::Append(int layer, const float* k, const float* v) {
  return AppendBatch(layer, 1, k, v);
}

Status KvCache::AppendBatch(int layer, int m, const float* k, const float* v) {
  if (layer < 0 || layer >= n_layers_) {
    return InvalidArgument("bad layer");
  }
  if (m <= 0) {
    return InvalidArgument("bad batch size");
  }
  if (filled_[layer] + m > max_ctx_) {
    return ResourceExhausted("KV cache full (context length exceeded)");
  }
  if (pool_ == nullptr) {
    const size_t off = Offset(layer, filled_[layer]);
    const size_t n = static_cast<size_t>(m) * kv_dim_;
    if (storage_ == KvStorage::kF16) {
      kernels_->f32_to_f16(k, arena16_.data() + off, n);
      kernels_->f32_to_f16(v, arena16_.data() + v_plane_ + off, n);
    } else {
      std::memcpy(arena32_.data() + off, k, n * sizeof(float));
      std::memcpy(arena32_.data() + v_plane_ + off, v, n * sizeof(float));
    }
    filled_[layer] += m;
    return OkStatus();
  }
  // Paged: split the batch into per-page runs. Each destination page is made
  // resident and exclusively owned (copy-on-write off a shared prefix)
  // before its rows are converted in — page hops change only WHERE rows
  // land; the converter and the row order are exactly the flat path's, so
  // the stored bytes are bit-identical.
  TZLLM_RETURN_IF_ERROR(EnsurePagesFor(filled_[layer] + m));
  int done = 0;
  while (done < m) {
    const int pos = filled_[layer] + done;
    const size_t page_idx = static_cast<size_t>(pos) / page_positions_;
    const int in_page = pos % page_positions_;
    const int run = std::min(m - done, page_positions_ - in_page);
    TZLLM_RETURN_IF_ERROR(MakeWritable(page_idx));
    const size_t n = static_cast<size_t>(run) * kv_dim_;
    const size_t src = static_cast<size_t>(done) * kv_dim_;
    const size_t k_off = pool_->KOffset(layer, in_page);
    const size_t v_off = pool_->VOffset(layer, in_page);
    if (storage_ == KvStorage::kF16) {
      uint16_t* base = pool_->Data16(pages_[page_idx]);
      kernels_->f32_to_f16(k + src, base + k_off, n);
      kernels_->f32_to_f16(v + src, base + v_off, n);
    } else {
      float* base = pool_->Data32(pages_[page_idx]);
      std::memcpy(base + k_off, k + src, n * sizeof(float));
      std::memcpy(base + v_off, v + src, n * sizeof(float));
    }
    done += run;
  }
  filled_[layer] += m;
  return OkStatus();
}

Status KvCache::EnsurePagesFor(int pos_end) {
  while (static_cast<int>(pages_.size()) * page_positions_ < pos_end) {
    // A page allocated mid-step is born pinned once per active pin level so
    // it cannot become an eviction victim of a later allocation in the same
    // step (the invariant: while pinned, every page of this cache holds
    // pin_depth_ pins from it).
    TZLLM_ASSIGN_OR_RETURN(id, pool_->Alloc(/*pinned=*/pin_depth_ > 0));
    for (int d = 1; d < pin_depth_; ++d) {
      TZLLM_RETURN_IF_ERROR(pool_->Pin(id));
    }
    pages_.push_back(id);
  }
  return OkStatus();
}

Status KvCache::MakeWritable(size_t page_idx) {
  const KvPageId old_id = pages_[page_idx];
  TZLLM_RETURN_IF_ERROR(pool_->EnsureResident(old_id));
  if (pool_->refcount(old_id) == 1) {
    pool_->Touch(old_id);
    return OkStatus();
  }
  // Copy-on-write: the page is shared (another session or the prefix
  // registry holds it), so divergence privatizes it first. Pin the source
  // so allocating the copy cannot evict it mid-copy.
  TZLLM_RETURN_IF_ERROR(pool_->Pin(old_id));
  auto new_id_result = pool_->Alloc(/*pinned=*/pin_depth_ > 0);
  if (!new_id_result.ok()) {
    pool_->Unpin(old_id);
    return new_id_result.status();
  }
  const KvPageId new_id = *new_id_result;
  for (int d = 1; d < pin_depth_; ++d) {
    TZLLM_RETURN_IF_ERROR(pool_->Pin(new_id));
  }
  const uint64_t bytes = pool_->page_bytes();
  if (storage_ == KvStorage::kF16) {
    std::memcpy(pool_->Data16(new_id), pool_->Data16(old_id), bytes);
  } else {
    std::memcpy(pool_->Data32(new_id), pool_->Data32(old_id), bytes);
  }
  pool_->Unpin(old_id);  // The copy pin.
  // The source leaves this cache's page table, taking our step pins with it.
  for (int d = 0; d < pin_depth_; ++d) {
    pool_->Unpin(old_id);
  }
  TZLLM_RETURN_IF_ERROR(pool_->Unref(old_id));
  pages_[page_idx] = new_id;
  pool_->RecordCowCopy();
  return OkStatus();
}

Result<KvCachePin> KvCache::PinForStep() {
  if (pool_ == nullptr) {
    return KvCachePin();  // Flat caches never move; a no-op handle.
  }
  for (size_t i = 0; i < pages_.size(); ++i) {
    const Status st = pool_->Pin(pages_[i]);
    if (!st.ok()) {
      for (size_t j = 0; j < i; ++j) {
        pool_->Unpin(pages_[j]);
      }
      return st;
    }
  }
  ++pin_depth_;
  return KvCachePin(this);
}

void KvCache::UnpinStep() {
  if (pin_depth_ <= 0) {
    return;
  }
  --pin_depth_;
  for (KvPageId id : pages_) {
    pool_->Unpin(id);
  }
}

Status KvCache::EnsureResident() {
  if (pool_ == nullptr) {
    return OkStatus();
  }
  for (KvPageId id : pages_) {
    TZLLM_RETURN_IF_ERROR(pool_->EnsureResident(id));
  }
  return OkStatus();
}

Status KvCache::AdoptPrefix(const KvPageId* page_ids, size_t n_pages,
                            int positions) {
  if (pool_ == nullptr) {
    return InvalidArgument("AdoptPrefix on a flat (unpaged) KV cache");
  }
  if (seq_len_ != 0 || !pages_.empty()) {
    return InvalidArgument("AdoptPrefix into a non-empty cache");
  }
  if (positions <= 0 || positions > max_ctx_ ||
      n_pages != static_cast<size_t>((positions + page_positions_ - 1) /
                                     page_positions_)) {
    return InvalidArgument("AdoptPrefix pages do not cover the positions");
  }
  pages_.reserve(n_pages);
  for (size_t i = 0; i < n_pages; ++i) {
    pool_->Ref(page_ids[i]);
    pool_->Touch(page_ids[i]);
    pages_.push_back(page_ids[i]);
  }
  for (int l = 0; l < n_layers_; ++l) {
    filled_[l] = positions;
  }
  seq_len_ = positions;
  return OkStatus();
}

Status KvCache::ProbeLostPages(std::vector<int>* lost_pages) {
  lost_pages->clear();
  if (pool_ == nullptr) {
    return OkStatus();
  }
  for (size_t i = 0; i < pages_.size(); ++i) {
    const KvPageId id = pages_[i];
    if (pool_->lost(id)) {
      lost_pages->push_back(static_cast<int>(i));
      continue;
    }
    if (pool_->resident(id)) {
      continue;
    }
    const Status st = pool_->EnsureResident(id);
    if (st.ok()) {
      continue;
    }
    if (st.code() != ErrorCode::kDataCorruption) {
      return st;  // Pool pressure etc. — not a loss, the caller retries.
    }
    TZLLM_RETURN_IF_ERROR(pool_->Quarantine(id));
    lost_pages->push_back(static_cast<int>(i));
  }
  return OkStatus();
}

Status KvCache::PrepareRecompute(int page_idx) {
  if (pool_ == nullptr || page_idx < 0 ||
      page_idx >= static_cast<int>(pages_.size())) {
    return InvalidArgument("PrepareRecompute on a bad page index");
  }
  const KvPageId old_id = pages_[page_idx];
  if (!pool_->lost(old_id)) {
    return OkStatus();  // Another holder's recovery already healed it.
  }
  if (pool_->refcount(old_id) == 1) {
    return pool_->ClearLost(old_id);
  }
  // Shared: detach onto a fresh private page. The lost original keeps its
  // flag, so every other holder hits the same recovery path instead of
  // silently reading zeros.
  TZLLM_ASSIGN_OR_RETURN(new_id, pool_->Alloc(/*pinned=*/pin_depth_ > 0));
  for (int d = 1; d < pin_depth_; ++d) {
    TZLLM_RETURN_IF_ERROR(pool_->Pin(new_id));
  }
  for (int d = 0; d < pin_depth_; ++d) {
    pool_->Unpin(old_id);
  }
  TZLLM_RETURN_IF_ERROR(pool_->Unref(old_id));
  pages_[page_idx] = new_id;
  return OkStatus();
}

Status KvCache::RewindFill(int pos) {
  if (pos < 0 || pos > max_ctx_) {
    return InvalidArgument("RewindFill position out of range");
  }
  for (int l = 0; l < n_layers_; ++l) {
    filled_[l] = pos;
  }
  seq_len_ = pos;
  return OkStatus();
}

void KvCache::ReleasePages() {
  for (KvPageId id : pages_) {
    const Status st = pool_->Unref(id);
    (void)st;  // Unref of a table entry fails only on a state bug.
  }
  pages_.clear();
}

void KvCache::Reset() {
  if (pool_ != nullptr) {
    ReleasePages();
  }
  seq_len_ = 0;
  std::fill(filled_.begin(), filled_.end(), 0);
}

uint64_t KvCache::CurrentBytes() const {
  const uint64_t row = static_cast<uint64_t>(kv_dim_) *
                       kKvVectorsPerPosition * bytes_per_elem();
  if (pool_ == nullptr) {
    uint64_t positions = 0;
    for (int l = 0; l < n_layers_; ++l) {
      positions += filled_[l];
    }
    return positions * row;
  }
  // Resident secure bytes only: appended rows whose page currently occupies
  // a pool frame. Spilled rows are SpilledBytes() — the split the serving
  // admission math relies on.
  uint64_t positions = 0;
  for (size_t i = 0; i < pages_.size(); ++i) {
    if (!pool_->resident(pages_[i])) {
      continue;
    }
    const int page_start = static_cast<int>(i) * page_positions_;
    for (int l = 0; l < n_layers_; ++l) {
      positions += std::clamp(filled_[l] - page_start, 0, page_positions_);
    }
  }
  return positions * row;
}

uint64_t KvCache::SpilledBytes() const {
  if (pool_ == nullptr) {
    return 0;
  }
  uint64_t positions = 0;
  for (size_t i = 0; i < pages_.size(); ++i) {
    if (pool_->resident(pages_[i])) {
      continue;
    }
    const int page_start = static_cast<int>(i) * page_positions_;
    for (int l = 0; l < n_layers_; ++l) {
      positions += std::clamp(filled_[l] - page_start, 0, page_positions_);
    }
  }
  return positions * kv_dim_ * kKvVectorsPerPosition * bytes_per_elem();
}

uint64_t KvCache::ArenaBytes() const {
  if (pool_ == nullptr) {
    return storage_ == KvStorage::kF16 ? arena16_.size() * sizeof(uint16_t)
                                       : arena32_.size() * sizeof(float);
  }
  const uint64_t full_pages = (max_ctx_ + page_positions_ - 1) / page_positions_;
  return full_pages * pool_->page_bytes();
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU32(const uint8_t* data, size_t len, size_t* off, uint32_t* v) {
  if (*off + 4 > len) {
    return false;
  }
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(data[*off + i]) << (8 * i);
  }
  *off += 4;
  return true;
}

}  // namespace

Status KvCache::SerializeState(std::vector<uint8_t>* out) const {
  // Little-endian explicit layout (matches the checkpoint blob idiom):
  // geometry guard first so a restore into a differently-shaped cache is a
  // clean error, then seq_len + fills, then only the filled row prefixes —
  // an early-generation session costs its resident bytes, not max_ctx. The
  // format is storage-mode-only: paged caches gather rows across pages into
  // the same flat row order, so checkpoints move freely between modes.
  PutU32(out, static_cast<uint32_t>(n_layers_));
  PutU32(out, static_cast<uint32_t>(kv_dim_));
  PutU32(out, static_cast<uint32_t>(max_ctx_));
  PutU32(out, static_cast<uint32_t>(storage_));
  PutU32(out, static_cast<uint32_t>(seq_len_));
  for (int l = 0; l < n_layers_; ++l) {
    PutU32(out, static_cast<uint32_t>(filled_[l]));
  }
  const size_t elem = bytes_per_elem();
  if (pool_ == nullptr) {
    auto append_rows = [&](int layer, bool v_plane) {
      const size_t off = Offset(layer, 0) + (v_plane ? v_plane_ : 0);
      const size_t bytes =
          static_cast<size_t>(filled_[layer]) * kv_dim_ * elem;
      const uint8_t* src =
          storage_ == KvStorage::kF16
              ? reinterpret_cast<const uint8_t*>(arena16_.data() + off)
              : reinterpret_cast<const uint8_t*>(arena32_.data() + off);
      out->insert(out->end(), src, src + bytes);
    };
    for (int l = 0; l < n_layers_; ++l) {
      append_rows(l, /*v_plane=*/false);
      append_rows(l, /*v_plane=*/true);
    }
    return OkStatus();
  }
  for (int l = 0; l < n_layers_; ++l) {
    for (int plane = 0; plane < 2; ++plane) {
      int pos = 0;
      while (pos < filled_[l]) {
        const int run = std::min(RunLen(pos), filled_[l] - pos);
        // Per-run residency: restoring a later page may spill an earlier
        // one under pressure, but its rows are already copied out by then.
        TZLLM_RETURN_IF_ERROR(
            pool_->EnsureResident(pages_[pos / page_positions_]));
        const uint8_t* src =
            storage_ == KvStorage::kF16
                ? reinterpret_cast<const uint8_t*>(
                      plane == 0 ? KeyHalfAt(l, pos) : ValueHalfAt(l, pos))
                : reinterpret_cast<const uint8_t*>(
                      plane == 0 ? KeyAt(l, pos) : ValueAt(l, pos));
        out->insert(out->end(), src,
                    src + static_cast<size_t>(run) * kv_dim_ * elem);
        pos += run;
      }
    }
  }
  return OkStatus();
}

Status KvCache::RestoreState(const uint8_t* data, size_t len) {
  size_t off = 0;
  uint32_t layers = 0, dim = 0, ctx = 0, storage = 0, seq = 0;
  if (!GetU32(data, len, &off, &layers) || !GetU32(data, len, &off, &dim) ||
      !GetU32(data, len, &off, &ctx) || !GetU32(data, len, &off, &storage)) {
    return Status(ErrorCode::kDataCorruption, "truncated KV snapshot header");
  }
  if (layers != static_cast<uint32_t>(n_layers_) ||
      dim != static_cast<uint32_t>(kv_dim_) ||
      ctx != static_cast<uint32_t>(max_ctx_) ||
      storage != static_cast<uint32_t>(storage_)) {
    return InvalidArgument(
        "KV snapshot geometry does not match this cache (different model or "
        "storage mode)");
  }
  if (!GetU32(data, len, &off, &seq) || seq > static_cast<uint32_t>(max_ctx_)) {
    return Status(ErrorCode::kDataCorruption, "bad KV snapshot length");
  }
  std::vector<uint32_t> fills(n_layers_);
  for (int l = 0; l < n_layers_; ++l) {
    if (!GetU32(data, len, &off, &fills[l]) ||
        fills[l] > static_cast<uint32_t>(max_ctx_)) {
      return Status(ErrorCode::kDataCorruption, "bad KV snapshot fill mark");
    }
  }
  const size_t elem = bytes_per_elem();
  size_t body = 0;
  for (int l = 0; l < n_layers_; ++l) {
    body += static_cast<size_t>(fills[l]) * kv_dim_ * elem *
            kKvVectorsPerPosition;
  }
  if (len - off != body) {
    return Status(ErrorCode::kDataCorruption,
                  "KV snapshot body does not match its fill marks");
  }
  Scrub();
  if (pool_ == nullptr) {
    auto restore_rows = [&](int layer, bool v_plane) {
      const size_t dst = Offset(layer, 0) + (v_plane ? v_plane_ : 0);
      const size_t bytes = static_cast<size_t>(fills[layer]) * kv_dim_ * elem;
      uint8_t* arena =
          storage_ == KvStorage::kF16
              ? reinterpret_cast<uint8_t*>(arena16_.data() + dst)
              : reinterpret_cast<uint8_t*>(arena32_.data() + dst);
      std::memcpy(arena, data + off, bytes);
      off += bytes;
    };
    for (int l = 0; l < n_layers_; ++l) {
      restore_rows(l, /*v_plane=*/false);
      restore_rows(l, /*v_plane=*/true);
      filled_[l] = static_cast<int>(fills[l]);
    }
    seq_len_ = static_cast<int>(seq);
    return OkStatus();
  }
  // Paged scatter: pin for the duration so the pages written first cannot
  // be spilled by the allocation of the pages written last.
  int cover = static_cast<int>(seq);
  for (int l = 0; l < n_layers_; ++l) {
    cover = std::max(cover, static_cast<int>(fills[l]));
  }
  TZLLM_ASSIGN_OR_RETURN(pin, PinForStep());
  (void)pin;
  if (cover > 0) {
    TZLLM_RETURN_IF_ERROR(EnsurePagesFor(cover));
  }
  for (int l = 0; l < n_layers_; ++l) {
    for (int plane = 0; plane < 2; ++plane) {
      int pos = 0;
      const int fill = static_cast<int>(fills[l]);
      while (pos < fill) {
        const int run = std::min(RunLen(pos), fill - pos);
        const KvPageId id = pages_[pos / page_positions_];
        const int in_page = pos % page_positions_;
        const size_t at = plane == 0 ? pool_->KOffset(l, in_page)
                                     : pool_->VOffset(l, in_page);
        uint8_t* dst = storage_ == KvStorage::kF16
                           ? reinterpret_cast<uint8_t*>(pool_->Data16(id) + at)
                           : reinterpret_cast<uint8_t*>(pool_->Data32(id) + at);
        const size_t bytes = static_cast<size_t>(run) * kv_dim_ * elem;
        std::memcpy(dst, data + off, bytes);
        off += bytes;
        pos += run;
      }
    }
    filled_[l] = static_cast<int>(fills[l]);
  }
  seq_len_ = static_cast<int>(seq);
  return OkStatus();
}

void KvCache::Scrub() {
  if (storage_ == KvStorage::kF16) {
    std::fill(arena16_.begin(), arena16_.end(), 0);
  } else {
    std::fill(arena32_.begin(), arena32_.end(), 0.0f);
  }
  // Paged: Reset drops the page references; the pool scrubs each frame when
  // its LAST reference leaves, so shared prefix pages survive for their
  // other holders and private plaintext never outlives the session.
  Reset();
}

KvArena::KvArena(const ModelSpec& spec, const KvArenaOptions& options) {
  const int slots = std::max(1, options.slots);
  if (options.paged) {
    KvPagePoolOptions pool_opts = options.pool;
    if (pool_opts.pool_bytes == 0) {
      pool_opts.pool_bytes = slots * FlatSlotBytes(spec, options.storage);
    }
    pool_ = std::make_unique<KvPagePool>(spec, options.storage, pool_opts);
    prefix_cap_ = std::max(0, options.prefix_entries);
  }
  live_slots_.assign(slots, false);
  caches_.reserve(slots);
  for (int s = 0; s < slots; ++s) {
    caches_.push_back(
        pool_ != nullptr
            ? std::make_unique<KvCache>(spec, pool_.get(), options.storage,
                                        options.kernels)
            : std::make_unique<KvCache>(spec, options.storage,
                                        options.kernels));
  }
}

KvArena::KvArena(const ModelSpec& spec, int slots, KvStorage storage,
                 const KernelDispatch* kernels)
    : KvArena(spec, [&] {
        KvArenaOptions options;
        options.slots = slots;
        options.storage = storage;
        options.kernels = kernels;
        return options;
      }()) {}

uint64_t KvArena::BudgetBytes(const ModelSpec& spec,
                              const KvArenaOptions& options) {
  const int slots = std::max(1, options.slots);
  const uint64_t flat = slots * FlatSlotBytes(spec, options.storage);
  if (!options.paged) {
    return flat;
  }
  KvPagePoolOptions pool_opts = options.pool;
  if (pool_opts.pool_bytes == 0) {
    pool_opts.pool_bytes = flat;
  }
  return static_cast<uint64_t>(
             KvPagePool::FramesFor(spec, options.storage, pool_opts)) *
         KvPagePool::PageBytes(spec, options.storage,
                               pool_opts.page_positions);
}

Result<int> KvArena::Acquire() {
  for (size_t s = 0; s < caches_.size(); ++s) {
    if (!live_slots_[s]) {
      live_slots_[s] = true;
      ++live_;
      caches_[s]->Reset();
      return static_cast<int>(s);
    }
  }
  return Status(ErrorCode::kResourceExhausted,
                "KV arena full: every session slot is live (raise "
                "EngineOptions::max_sessions or finish/evict a session)");
}

Status KvArena::Release(int slot) {
  if (slot < 0 || slot >= slots() || !live_slots_[slot]) {
    return InvalidArgument("KV arena release of a free or invalid slot");
  }
  caches_[slot]->Scrub();
  live_slots_[slot] = false;
  --live_;
  return OkStatus();
}

KvCache* KvArena::cache(int slot) {
  return slot >= 0 && slot < slots() ? caches_[slot].get() : nullptr;
}

const KvCache* KvArena::cache(int slot) const {
  return slot >= 0 && slot < slots() ? caches_[slot].get() : nullptr;
}

uint64_t KvArena::SlotBytes() const { return caches_[0]->ArenaBytes(); }

uint64_t KvArena::CurrentBytes() const {
  uint64_t total = 0;
  for (size_t s = 0; s < caches_.size(); ++s) {
    if (live_slots_[s]) {
      total += caches_[s]->CurrentBytes();
    }
  }
  return total;
}

uint64_t KvArena::SpilledBytes() const {
  uint64_t total = 0;
  for (size_t s = 0; s < caches_.size(); ++s) {
    if (live_slots_[s]) {
      total += caches_[s]->SpilledBytes();
    }
  }
  return total;
}

uint64_t KvArena::ArenaBytes() const {
  return pool_ != nullptr ? pool_->PoolBytes() : slots() * SlotBytes();
}

int KvArena::AdoptPrefix(int slot, const std::vector<TokenId>& prompt) {
  if (pool_ == nullptr || prefix_cap_ == 0 || prompt.size() < 2) {
    return 0;
  }
  KvCache* c = cache(slot);
  if (c == nullptr || c->seq_len() != 0 || c->PageCount() != 0) {
    return 0;
  }
  ++prefix_stats_.lookups;
  const int page_positions = pool_->page_positions();
  // The final prompt position must run in-session — its forward pass
  // produces the first-token logits — so adoption is capped one short.
  const size_t cap = prompt.size() - 1;
  size_t best = prefix_.size();
  size_t best_len = 0;
  for (size_t e = 0; e < prefix_.size(); ++e) {
    const std::vector<TokenId>& tokens = prefix_[e].tokens;
    const size_t limit = std::min(cap, tokens.size());
    size_t lcp = 0;
    while (lcp < limit && tokens[lcp] == prompt[lcp]) {
      ++lcp;
    }
    if (lcp > best_len) {
      best = e;
      best_len = lcp;
    }
  }
  // Sub-page matches are skipped: the first divergent append would
  // copy-on-write the whole page, costing more than the positions saved.
  if (best == prefix_.size() ||
      best_len < static_cast<size_t>(page_positions)) {
    return 0;
  }
  const int positions = static_cast<int>(best_len);
  const size_t n_pages =
      static_cast<size_t>((positions + page_positions - 1) / page_positions);
  const Status adopted =
      c->AdoptPrefix(prefix_[best].pages.data(), n_pages, positions);
  if (!adopted.ok()) {
    return 0;
  }
  prefix_[best].last_hit = ++prefix_clock_;
  ++prefix_stats_.hits;
  prefix_stats_.adopted_positions += positions;
  return positions;
}

Status KvArena::RegisterPrefix(int slot, const std::vector<TokenId>& tokens) {
  if (pool_ == nullptr || prefix_cap_ == 0) {
    return OkStatus();
  }
  const int page_positions = pool_->page_positions();
  const int positions = static_cast<int>(tokens.size());
  if (positions < page_positions) {
    return OkStatus();  // Too short to ever be adopted; don't hold pages.
  }
  KvCache* c = cache(slot);
  if (c == nullptr || c->seq_len() < positions) {
    return InvalidArgument(
        "RegisterPrefix of positions the slot has not cached");
  }
  const uint64_t hash = HashTokens(tokens.data(), tokens.size());
  for (PrefixEntry& e : prefix_) {
    if (e.hash == hash && e.tokens == tokens) {
      e.last_hit = ++prefix_clock_;  // Dedup: recency bump only.
      return OkStatus();
    }
  }
  const size_t n_pages =
      static_cast<size_t>((positions + page_positions - 1) / page_positions);
  PrefixEntry entry;
  entry.hash = hash;
  entry.tokens = tokens;
  entry.pages.assign(c->pages().begin(), c->pages().begin() + n_pages);
  // One registry reference per page: the owner's next append into a covered
  // page copies-on-write instead of mutating the shared rows.
  for (KvPageId id : entry.pages) {
    pool_->Ref(id);
  }
  entry.last_hit = ++prefix_clock_;
  if (static_cast<int>(prefix_.size()) >= prefix_cap_) {
    size_t victim = 0;
    for (size_t e = 1; e < prefix_.size(); ++e) {
      if (prefix_[e].last_hit < prefix_[victim].last_hit) {
        victim = e;
      }
    }
    DropPrefixEntry(victim);
  }
  prefix_.push_back(std::move(entry));
  ++prefix_stats_.registered;
  return OkStatus();
}

int KvArena::DropLostPrefixEntries() {
  if (pool_ == nullptr) {
    return 0;
  }
  int dropped = 0;
  for (size_t e = prefix_.size(); e-- > 0;) {
    bool has_lost = false;
    for (KvPageId id : prefix_[e].pages) {
      if (pool_->lost(id)) {
        has_lost = true;
        break;
      }
    }
    if (has_lost) {
      DropPrefixEntry(e);
      ++dropped;
    }
  }
  return dropped;
}

void KvArena::DropPrefixEntry(size_t index) {
  for (KvPageId id : prefix_[index].pages) {
    const Status st = pool_->Unref(id);
    (void)st;  // A registry reference is always valid to drop.
  }
  prefix_.erase(prefix_.begin() + index);
  ++prefix_stats_.evicted;
}

}  // namespace tzllm
