#include "src/llm/kv_cache.h"

#include <cstring>

namespace tzllm {

KvCache::KvCache(const ModelSpec& spec)
    : n_layers_(spec.config().n_layers),
      kv_dim_(spec.config().kv_dim()),
      max_ctx_(spec.config().max_ctx),
      filled_(n_layers_, 0),
      k_(n_layers_),
      v_(n_layers_) {
  for (int l = 0; l < n_layers_; ++l) {
    k_[l].resize(static_cast<size_t>(max_ctx_) * kv_dim_);
    v_[l].resize(static_cast<size_t>(max_ctx_) * kv_dim_);
  }
}

Status KvCache::Append(int layer, const float* k, const float* v) {
  if (layer < 0 || layer >= n_layers_) {
    return InvalidArgument("bad layer");
  }
  if (filled_[layer] >= max_ctx_) {
    return ResourceExhausted("KV cache full (context length exceeded)");
  }
  const size_t off = static_cast<size_t>(filled_[layer]) * kv_dim_;
  std::memcpy(&k_[layer][off], k, kv_dim_ * sizeof(float));
  std::memcpy(&v_[layer][off], v, kv_dim_ * sizeof(float));
  ++filled_[layer];
  return OkStatus();
}

void KvCache::Reset() {
  seq_len_ = 0;
  for (int l = 0; l < n_layers_; ++l) {
    filled_[l] = 0;
  }
}

const float* KvCache::KeyAt(int layer, int pos) const {
  return &k_[layer][static_cast<size_t>(pos) * kv_dim_];
}

const float* KvCache::ValueAt(int layer, int pos) const {
  return &v_[layer][static_cast<size_t>(pos) * kv_dim_];
}

uint64_t KvCache::CurrentBytes() const {
  return 2ull * n_layers_ * kv_dim_ * seq_len_ * 2;  // f16 accounting.
}

}  // namespace tzllm
