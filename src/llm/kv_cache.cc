#include "src/llm/kv_cache.h"

#include <cstring>

namespace tzllm {

KvCache::KvCache(const ModelSpec& spec)
    : n_layers_(spec.config().n_layers),
      kv_dim_(spec.config().kv_dim()),
      max_ctx_(spec.config().max_ctx),
      filled_(n_layers_, 0) {
  v_plane_ = static_cast<size_t>(n_layers_) * max_ctx_ * kv_dim_;
  arena_.resize(v_plane_ * kKvVectorsPerPosition);
}

Status KvCache::Append(int layer, const float* k, const float* v) {
  return AppendBatch(layer, 1, k, v);
}

Status KvCache::AppendBatch(int layer, int m, const float* k, const float* v) {
  if (layer < 0 || layer >= n_layers_) {
    return InvalidArgument("bad layer");
  }
  if (m <= 0) {
    return InvalidArgument("bad batch size");
  }
  if (filled_[layer] + m > max_ctx_) {
    return ResourceExhausted("KV cache full (context length exceeded)");
  }
  const size_t off = Offset(layer, filled_[layer]);
  const size_t bytes = static_cast<size_t>(m) * kv_dim_ * sizeof(float);
  std::memcpy(arena_.data() + off, k, bytes);
  std::memcpy(arena_.data() + v_plane_ + off, v, bytes);
  filled_[layer] += m;
  return OkStatus();
}

void KvCache::Reset() {
  seq_len_ = 0;
  for (int l = 0; l < n_layers_; ++l) {
    filled_[l] = 0;
  }
}

uint64_t KvCache::CurrentBytes() const {
  uint64_t positions = 0;
  for (int l = 0; l < n_layers_; ++l) {
    positions += filled_[l];
  }
  return positions * kv_dim_ * kKvVectorsPerPosition * kKvAccountedBytesPerElem;
}

}  // namespace tzllm
