#include "src/llm/kv_cache.h"

#include <cstring>

#include "src/llm/simd/kernels.h"
#include "src/llm/tensor.h"

namespace tzllm {

KvCache::KvCache(const ModelSpec& spec, KvStorage storage,
                 const KernelDispatch* kernels)
    : n_layers_(spec.config().n_layers),
      kv_dim_(spec.config().kv_dim()),
      max_ctx_(spec.config().max_ctx),
      storage_(storage),
      kernels_(kernels != nullptr ? kernels : ActiveKernels()),
      filled_(n_layers_, 0) {
  v_plane_ = static_cast<size_t>(n_layers_) * max_ctx_ * kv_dim_;
  if (storage_ == KvStorage::kF16) {
    arena16_.resize(v_plane_ * kKvVectorsPerPosition);
  } else {
    arena32_.resize(v_plane_ * kKvVectorsPerPosition);
  }
}

Status KvCache::Append(int layer, const float* k, const float* v) {
  return AppendBatch(layer, 1, k, v);
}

Status KvCache::AppendBatch(int layer, int m, const float* k, const float* v) {
  if (layer < 0 || layer >= n_layers_) {
    return InvalidArgument("bad layer");
  }
  if (m <= 0) {
    return InvalidArgument("bad batch size");
  }
  if (filled_[layer] + m > max_ctx_) {
    return ResourceExhausted("KV cache full (context length exceeded)");
  }
  const size_t off = Offset(layer, filled_[layer]);
  const size_t n = static_cast<size_t>(m) * kv_dim_;
  if (storage_ == KvStorage::kF16) {
    kernels_->f32_to_f16(k, arena16_.data() + off, n);
    kernels_->f32_to_f16(v, arena16_.data() + v_plane_ + off, n);
  } else {
    std::memcpy(arena32_.data() + off, k, n * sizeof(float));
    std::memcpy(arena32_.data() + v_plane_ + off, v, n * sizeof(float));
  }
  filled_[layer] += m;
  return OkStatus();
}

void KvCache::Reset() {
  seq_len_ = 0;
  for (int l = 0; l < n_layers_; ++l) {
    filled_[l] = 0;
  }
}

uint64_t KvCache::CurrentBytes() const {
  uint64_t positions = 0;
  for (int l = 0; l < n_layers_; ++l) {
    positions += filled_[l];
  }
  return positions * kv_dim_ * kKvVectorsPerPosition * bytes_per_elem();
}

uint64_t KvCache::ArenaBytes() const {
  return storage_ == KvStorage::kF16
             ? arena16_.size() * sizeof(uint16_t)
             : arena32_.size() * sizeof(float);
}

}  // namespace tzllm
