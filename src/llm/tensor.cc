#include "src/llm/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/llm/simd/kernels.h"

namespace tzllm {

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kQ8_0:
      return "q8_0";
  }
  return "?";
}

uint64_t DTypeByteSize(DType dtype, uint64_t elems) {
  switch (dtype) {
    case DType::kF32:
      return elems * 4;
    case DType::kF16:
      return elems * 2;
    case DType::kQ8_0:
      return (elems + kQ8BlockElems - 1) / kQ8BlockElems * kQ8BlockBytes;
  }
  return 0;
}

uint16_t F32ToF16(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, 4);
  const uint32_t sign = (bits >> 16) & 0x8000;
  int32_t exp = static_cast<int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  uint32_t mant = bits & 0x7FFFFF;
  if (exp <= 0) {
    return static_cast<uint16_t>(sign);  // Flush subnormals/underflow to 0.
  }
  if (exp >= 0x1F) {
    return static_cast<uint16_t>(sign | 0x7C00);  // Inf.
  }
  // Round to nearest even on the 13 truncated bits.
  const uint32_t round_bit = 1u << 12;
  uint16_t half =
      static_cast<uint16_t>(sign | (exp << 10) | (mant >> 13));
  if ((mant & round_bit) && ((mant & (round_bit - 1)) || (half & 1))) {
    ++half;
  }
  return half;
}

float F16ToF32(uint16_t half) {
  const uint32_t sign = (half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1F;
  const uint32_t mant = half & 0x3FF;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      // Subnormal half: normalize.
      int e = -1;
      uint32_t m = mant;
      while ((m & 0x400) == 0) {
        m <<= 1;
        ++e;
      }
      bits = sign | ((127 - 15 - e) << 23) | ((m & 0x3FF) << 13);
    }
  } else if (exp == 0x1F) {
    bits = sign | 0x7F800000 | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, 4);
  return out;
}

void QuantizeQ8(const float* src, uint64_t n, uint8_t* dst) {
  const uint64_t blocks = (n + kQ8BlockElems - 1) / kQ8BlockElems;
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint64_t base = b * kQ8BlockElems;
    const uint64_t count = std::min(kQ8BlockElems, n - base);
    float amax = 0.0f;
    for (uint64_t i = 0; i < count; ++i) {
      amax = std::max(amax, std::fabs(src[base + i]));
    }
    const float scale = amax / 127.0f;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    uint8_t* out = dst + b * kQ8BlockBytes;
    const uint16_t h = F32ToF16(scale);
    out[0] = static_cast<uint8_t>(h);
    out[1] = static_cast<uint8_t>(h >> 8);
    for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
      float v = i < count ? src[base + i] * inv : 0.0f;
      v = std::max(-127.0f, std::min(127.0f, std::round(v)));
      out[2 + i] = static_cast<uint8_t>(static_cast<int8_t>(v));
    }
  }
}

void DequantizeQ8(const uint8_t* src, uint64_t n, float* dst) {
  const uint64_t blocks = (n + kQ8BlockElems - 1) / kQ8BlockElems;
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint8_t* in = src + b * kQ8BlockBytes;
    const float scale =
        F16ToF32(static_cast<uint16_t>(in[0] | (in[1] << 8)));
    const uint64_t base = b * kQ8BlockElems;
    const uint64_t count = std::min(kQ8BlockElems, n - base);
    for (uint64_t i = 0; i < count; ++i) {
      dst[base + i] = scale * static_cast<int8_t>(in[2 + i]);
    }
  }
}

void Q8Acts::QuantizeRows(const float* x, uint64_t m_rows, uint64_t n) {
  const uint64_t blocks = n / kQ8BlockElems;
  cols = n;
  m = m_rows;
  q.resize(m_rows * n);
  scale.resize(m_rows * blocks);
  for (uint64_t row = 0; row < m_rows; ++row) {
    const float* src = x + row * n;
    int8_t* out = q.data() + row * n;
    float* sc = scale.data() + row * blocks;
    for (uint64_t b = 0; b < blocks; ++b) {
      const float* xb = src + b * kQ8BlockElems;
      float amax = 0.0f;
      for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
        amax = std::max(amax, std::fabs(xb[i]));
      }
      const float s = amax / 127.0f;
      const float inv = s > 0.0f ? 1.0f / s : 0.0f;
      sc[b] = s;
      int8_t* qb = out + b * kQ8BlockElems;
      for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
        // lrintf (round-to-nearest-even) compiles to one cvtss2si; round()
        // is a libm call per element and dominated quantization time. The
        // clamp guards the |x| == amax element against float rounding up.
        const long r = std::lrintf(xb[i] * inv);
        qb[i] = static_cast<int8_t>(std::max(-127l, std::min(127l, r)));
      }
    }
  }
}

namespace {

// Below this many multiply-accumulates the fork/join handoff costs more than
// the kernel itself (small test models, decode-time K/V projections); such
// calls run inline on the caller.
constexpr uint64_t kParallelMinWork = 48 * 1024;

}  // namespace

void MatVecQ8Pre(const uint8_t* w, uint64_t rows, uint64_t cols,
                 const Q8Acts& x, float* y, ThreadPool* pool,
                 const KernelDispatch* kernels) {
  const KernelDispatch* k = kernels != nullptr ? kernels : ActiveKernels();
  const uint64_t blocks_per_row = cols / kQ8BlockElems;
  auto run = [&](uint64_t r0, uint64_t r1) {
    for (uint64_t r = r0; r < r1; ++r) {
      y[r] = k->dot_row_q8(w + r * blocks_per_row * kQ8BlockBytes,
                           x.q.data(), x.scale.data(), blocks_per_row);
    }
  };
  if (pool != nullptr && rows * cols >= kParallelMinWork) {
    pool->ParallelFor(0, rows, run);
  } else {
    run(0, rows);
  }
}

void MatVecQ8(const uint8_t* w, uint64_t rows, uint64_t cols, const float* x,
              float* y, ThreadPool* pool, const KernelDispatch* kernels) {
  thread_local Q8Acts acts;
  acts.Quantize(x, cols);
  MatVecQ8Pre(w, rows, cols, acts, y, pool, kernels);
}

void MatMatQ8(const uint8_t* w, uint64_t rows, uint64_t cols, const Q8Acts& x,
              float* y, ThreadPool* pool, const KernelDispatch* kernels) {
  const KernelDispatch* k = kernels != nullptr ? kernels : ActiveKernels();
  const uint64_t blocks_per_row = cols / kQ8BlockElems;
  const uint64_t m = x.m;
  // Groups of four positions take the rows4 kernel: one weight-block widen
  // (and one f16 header convert) is shared by four positions, which is
  // where batched decode recovers the weight-streaming bandwidth a
  // per-position loop re-pays. It wants the activation scales transposed
  // to [block][position]; build that once here and reuse it across every
  // row (and every worker thread — read-only). Remainder positions go
  // through dot_row_q8, which reads the same headers in-kernel, so no
  // pre-expanded wscales pass runs at all — that separate walk serialized
  // ~one F16ToF32 per 34 streamed bytes against the dot loop.
  std::vector<float> xs_t;
  if (m >= 4) {
    xs_t.resize(blocks_per_row * m);
    for (uint64_t p = 0; p < m; ++p) {
      for (uint64_t b = 0; b < blocks_per_row; ++b) {
        xs_t[b * m + p] = x.scale[p * blocks_per_row + b];
      }
    }
  }
  auto run = [&](uint64_t r0, uint64_t r1) {
    float out4[4];
    for (uint64_t r = r0; r < r1; ++r) {
      const uint8_t* row = w + r * blocks_per_row * kQ8BlockBytes;
      uint64_t p = 0;
      for (; p + 4 <= m; p += 4) {
        k->dot_rows4_q8(row, x.q.data() + p * cols, cols, xs_t.data() + p, m,
                        blocks_per_row, out4);
        for (int j = 0; j < 4; ++j) {
          y[(p + j) * rows + r] = out4[j];
        }
      }
      for (; p < m; ++p) {
        y[p * rows + r] = k->dot_row_q8(row, x.q.data() + p * cols,
                                        x.scale.data() + p * blocks_per_row,
                                        blocks_per_row);
      }
    }
  };
  if (pool != nullptr && rows * cols * m >= kParallelMinWork) {
    pool->ParallelFor(0, rows, run);
  } else {
    run(0, rows);
  }
}

void MatVecQ8Reference(const uint8_t* w, uint64_t rows, uint64_t cols,
                       const float* x, float* y) {
  const uint64_t blocks_per_row = cols / kQ8BlockElems;
  for (uint64_t r = 0; r < rows; ++r) {
    const uint8_t* row = w + r * blocks_per_row * kQ8BlockBytes;
    float acc = 0.0f;
    for (uint64_t b = 0; b < blocks_per_row; ++b) {
      const uint8_t* blk = row + b * kQ8BlockBytes;
      const float scale =
          F16ToF32(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
      const float* xb = x + b * kQ8BlockElems;
      float dot = 0.0f;
      for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
        dot += static_cast<int8_t>(blk[2 + i]) * xb[i];
      }
      acc += scale * dot;
    }
    y[r] = acc;
  }
}

Tensor MakeRandomTensor(const std::string& name, DType dtype, uint64_t rows,
                        uint64_t cols, uint64_t seed, double stddev) {
  Tensor t;
  t.name = name;
  t.dtype = dtype;
  t.rows = rows;
  t.cols = cols;
  const uint64_t n = rows * cols;
  Rng rng(SplitMix64(seed) ^ SplitMix64(std::hash<std::string>{}(name)));
  std::vector<float> values(n);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian(0.0, stddev));
  }
  if (dtype == DType::kF32) {
    t.data.resize(n * 4);
    std::memcpy(t.data.data(), values.data(), n * 4);
  } else if (dtype == DType::kQ8_0) {
    t.data.resize(DTypeByteSize(dtype, n));
    QuantizeQ8(values.data(), n, t.data.data());
  } else {
    t.data.resize(n * 2);
    auto* out = reinterpret_cast<uint16_t*>(t.data.data());
    for (uint64_t i = 0; i < n; ++i) {
      out[i] = F32ToF16(values[i]);
    }
  }
  return t;
}

}  // namespace tzllm
