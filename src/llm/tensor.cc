#include "src/llm/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "src/common/rng.h"

namespace tzllm {

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kQ8_0:
      return "q8_0";
  }
  return "?";
}

uint64_t DTypeByteSize(DType dtype, uint64_t elems) {
  switch (dtype) {
    case DType::kF32:
      return elems * 4;
    case DType::kF16:
      return elems * 2;
    case DType::kQ8_0:
      return (elems + kQ8BlockElems - 1) / kQ8BlockElems * kQ8BlockBytes;
  }
  return 0;
}

uint16_t F32ToF16(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, 4);
  const uint32_t sign = (bits >> 16) & 0x8000;
  int32_t exp = static_cast<int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  uint32_t mant = bits & 0x7FFFFF;
  if (exp <= 0) {
    return static_cast<uint16_t>(sign);  // Flush subnormals/underflow to 0.
  }
  if (exp >= 0x1F) {
    return static_cast<uint16_t>(sign | 0x7C00);  // Inf.
  }
  // Round to nearest even on the 13 truncated bits.
  const uint32_t round_bit = 1u << 12;
  uint16_t half =
      static_cast<uint16_t>(sign | (exp << 10) | (mant >> 13));
  if ((mant & round_bit) && ((mant & (round_bit - 1)) || (half & 1))) {
    ++half;
  }
  return half;
}

float F16ToF32(uint16_t half) {
  const uint32_t sign = (half & 0x8000u) << 16;
  const uint32_t exp = (half >> 10) & 0x1F;
  const uint32_t mant = half & 0x3FF;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      // Subnormal half: normalize.
      int e = -1;
      uint32_t m = mant;
      while ((m & 0x400) == 0) {
        m <<= 1;
        ++e;
      }
      bits = sign | ((127 - 15 - e) << 23) | ((m & 0x3FF) << 13);
    }
  } else if (exp == 0x1F) {
    bits = sign | 0x7F800000 | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, 4);
  return out;
}

void QuantizeQ8(const float* src, uint64_t n, uint8_t* dst) {
  const uint64_t blocks = (n + kQ8BlockElems - 1) / kQ8BlockElems;
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint64_t base = b * kQ8BlockElems;
    const uint64_t count = std::min(kQ8BlockElems, n - base);
    float amax = 0.0f;
    for (uint64_t i = 0; i < count; ++i) {
      amax = std::max(amax, std::fabs(src[base + i]));
    }
    const float scale = amax / 127.0f;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    uint8_t* out = dst + b * kQ8BlockBytes;
    const uint16_t h = F32ToF16(scale);
    out[0] = static_cast<uint8_t>(h);
    out[1] = static_cast<uint8_t>(h >> 8);
    for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
      float v = i < count ? src[base + i] * inv : 0.0f;
      v = std::max(-127.0f, std::min(127.0f, std::round(v)));
      out[2 + i] = static_cast<uint8_t>(static_cast<int8_t>(v));
    }
  }
}

void DequantizeQ8(const uint8_t* src, uint64_t n, float* dst) {
  const uint64_t blocks = (n + kQ8BlockElems - 1) / kQ8BlockElems;
  for (uint64_t b = 0; b < blocks; ++b) {
    const uint8_t* in = src + b * kQ8BlockBytes;
    const float scale =
        F16ToF32(static_cast<uint16_t>(in[0] | (in[1] << 8)));
    const uint64_t base = b * kQ8BlockElems;
    const uint64_t count = std::min(kQ8BlockElems, n - base);
    for (uint64_t i = 0; i < count; ++i) {
      dst[base + i] = scale * static_cast<int8_t>(in[2 + i]);
    }
  }
}

void MatVecQ8(const uint8_t* w, uint64_t rows, uint64_t cols, const float* x,
              float* y) {
  const uint64_t blocks_per_row = cols / kQ8BlockElems;
  for (uint64_t r = 0; r < rows; ++r) {
    const uint8_t* row = w + r * blocks_per_row * kQ8BlockBytes;
    float acc = 0.0f;
    for (uint64_t b = 0; b < blocks_per_row; ++b) {
      const uint8_t* blk = row + b * kQ8BlockBytes;
      const float scale =
          F16ToF32(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
      const float* xb = x + b * kQ8BlockElems;
      float dot = 0.0f;
      for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
        dot += static_cast<int8_t>(blk[2 + i]) * xb[i];
      }
      acc += scale * dot;
    }
    y[r] += acc;
  }
}

Tensor MakeRandomTensor(const std::string& name, DType dtype, uint64_t rows,
                        uint64_t cols, uint64_t seed, double stddev) {
  Tensor t;
  t.name = name;
  t.dtype = dtype;
  t.rows = rows;
  t.cols = cols;
  const uint64_t n = rows * cols;
  Rng rng(SplitMix64(seed) ^ SplitMix64(std::hash<std::string>{}(name)));
  std::vector<float> values(n);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian(0.0, stddev));
  }
  if (dtype == DType::kF32) {
    t.data.resize(n * 4);
    std::memcpy(t.data.data(), values.data(), n * 4);
  } else if (dtype == DType::kQ8_0) {
    t.data.resize(DTypeByteSize(dtype, n));
    QuantizeQ8(values.data(), n, t.data.data());
  } else {
    t.data.resize(n * 2);
    auto* out = reinterpret_cast<uint16_t*>(t.data.data());
    for (uint64_t i = 0; i < n; ++i) {
      out[i] = F32ToF16(values[i]);
    }
  }
  return t;
}

}  // namespace tzllm
