// Portable scalar kernel backend — the numerics baseline every other table
// is measured against, byte-for-byte the loops the executor ran before the
// dispatch layer existed. `use_reference_kernels` and `force_scalar` bind
// here, so frozen parity baselines keep producing the exact same floats.

#include <algorithm>
#include <cmath>

#include "src/llm/simd/kernels.h"
#include "src/llm/tensor.h"

namespace tzllm {
namespace {

float DotRowQ8Scalar(const uint8_t* row, const int8_t* xq,
                     const float* xscale, uint64_t nblocks) {
  float acc = 0.0f;
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint8_t* blk = row + b * kQ8BlockBytes;
    const float wscale =
        F16ToF32(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
    const int8_t* wq = reinterpret_cast<const int8_t*>(blk + 2);
    const int8_t* xb = xq + b * kQ8BlockElems;
    int32_t dot = 0;
    for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
      dot += static_cast<int32_t>(wq[i]) * static_cast<int32_t>(xb[i]);
    }
    acc += (wscale * xscale[b]) * static_cast<float>(dot);
  }
  return acc;
}

float DotRowQ8WsScalar(const uint8_t* row, const float* wscales,
                       const int8_t* xq, const float* xscale,
                       uint64_t nblocks) {
  float acc = 0.0f;
  for (uint64_t b = 0; b < nblocks; ++b) {
    const int8_t* wq =
        reinterpret_cast<const int8_t*>(row + b * kQ8BlockBytes + 2);
    const int8_t* xb = xq + b * kQ8BlockElems;
    int32_t dot = 0;
    for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
      dot += static_cast<int32_t>(wq[i]) * static_cast<int32_t>(xb[i]);
    }
    acc += (wscales[b] * xscale[b]) * static_cast<float>(dot);
  }
  return acc;
}

void DotRows4Q8Scalar(const uint8_t* row, const int8_t* xq,
                      uint64_t x_stride, const float* xs_t,
                      uint64_t xs_stride, uint64_t nblocks, float* out4) {
  // Block-outer so the header convert happens once per block (shared by
  // all four positions, like the SIMD tables); each position's accumulator
  // advances serially in block order with DotRowQ8Scalar's association.
  float acc[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint8_t* blk = row + b * kQ8BlockBytes;
    const float wscale =
        F16ToF32(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
    const int8_t* wq = reinterpret_cast<const int8_t*>(blk + 2);
    for (int p = 0; p < 4; ++p) {
      const int8_t* xb =
          xq + static_cast<uint64_t>(p) * x_stride + b * kQ8BlockElems;
      int32_t dot = 0;
      for (uint64_t i = 0; i < kQ8BlockElems; ++i) {
        dot += static_cast<int32_t>(wq[i]) * static_cast<int32_t>(xb[i]);
      }
      acc[p] += (wscale * xs_t[b * xs_stride + p]) * static_cast<float>(dot);
    }
  }
  for (int p = 0; p < 4; ++p) {
    out4[p] = acc[p];
  }
}

// Q.K dots, 4 independent accumulator lanes: a strict serial float reduction
// cannot be reordered by the compiler, so the lanes buy ILP/vectorization.
// The lane split is part of this table's definition (same result at every
// thread count), not a thread-dependent schedule.
float DotQkF16Scalar(const float* q, const uint16_t* k, int n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += q[j] * F16ToF32Fast(k[j]);
    s1 += q[j + 1] * F16ToF32Fast(k[j + 1]);
    s2 += q[j + 2] * F16ToF32Fast(k[j + 2]);
    s3 += q[j + 3] * F16ToF32Fast(k[j + 3]);
  }
  for (; j < n; ++j) {
    s0 += q[j] * F16ToF32Fast(k[j]);
  }
  return (s0 + s1) + (s2 + s3);
}

float DotQkF32Scalar(const float* q, const float* k, int n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += q[j] * k[j];
    s1 += q[j + 1] * k[j + 1];
    s2 += q[j + 2] * k[j + 2];
    s3 += q[j + 3] * k[j + 3];
  }
  for (; j < n; ++j) {
    s0 += q[j] * k[j];
  }
  return (s0 + s1) + (s2 + s3);
}

void AxpyF16Scalar(float w, const uint16_t* v, float* out, int n) {
  for (int j = 0; j < n; ++j) {
    out[j] += w * F16ToF32Fast(v[j]);
  }
}

void AxpyF32Scalar(float w, const float* v, float* out, int n) {
  for (int j = 0; j < n; ++j) {
    out[j] += w * v[j];
  }
}

void F32ToF16Scalar(const float* src, uint16_t* dst, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    dst[i] = F32ToF16(src[i]);
  }
}

// IEEE expand (not F16ToF32Fast) so the bulk converter round-trips every
// half including inf — it is not a hot-loop fusion, and matching the AVX2
// vcvtph2ps semantics bit-for-bit keeps the backends interchangeable.
void F16ToF32Scalar(const uint16_t* src, float* dst, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    dst[i] = F16ToF32(src[i]);
  }
}

void RmsNormScalar(const float* x, const float* gain, float* out, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(x[i]) * x[i];
  }
  const float inv = 1.0f / std::sqrt(static_cast<float>(sum / n) + 1e-5f);
  for (int i = 0; i < n; ++i) {
    out[i] = x[i] * inv * gain[i];
  }
}

void SoftmaxScalar(float* x, int n) {
  float max = x[0];
  for (int i = 1; i < n; ++i) {
    max = std::max(max, x[i]);
  }
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (int i = 0; i < n; ++i) {
    x[i] *= inv;
  }
}

const KernelDispatch kScalarTable = {
    SimdIsa::kScalar,
    DotRowQ8Scalar,
    DotRowQ8WsScalar,
    DotRows4Q8Scalar,
    DotQkF16Scalar,
    DotQkF32Scalar,
    AxpyF16Scalar,
    AxpyF32Scalar,
    F32ToF16Scalar,
    F16ToF32Scalar,
    RmsNormScalar,
    SoftmaxScalar,
};

}  // namespace

const KernelDispatch* ScalarKernels() { return &kScalarTable; }

}  // namespace tzllm
