// NEON kernel backend (aarch64). Compiled whenever the target is ARM64 —
// NEON is baseline there, no extra -m flags — and exercised by the aarch64
// qemu-user CI leg (kernel + parity suites), which is why auto dispatch now
// selects it on aarch64 (the scalar table stays one TZLLM_SIMD=off /
// EngineOptions::force_scalar away).
//
// Same structural contract as the AVX2 table: integer block dots reduce
// exactly and combine serially in block order (bit-identical to scalar);
// float dot/axpy lanes are tolerance-parity.

#include "src/llm/simd/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cmath>

#include "src/llm/tensor.h"

namespace tzllm {
namespace {

// Exact int32 dot of one 32-element int8 block pair.
inline int32_t DotBlock32(const int8_t* w, const int8_t* x) {
  int32x4_t acc = vdupq_n_s32(0);
  for (int off = 0; off < 32; off += 16) {
    const int8x16_t wv = vld1q_s8(w + off);
    const int8x16_t xv = vld1q_s8(x + off);
    const int16x8_t lo = vmull_s8(vget_low_s8(wv), vget_low_s8(xv));
    const int16x8_t hi = vmull_s8(vget_high_s8(wv), vget_high_s8(xv));
    acc = vpadalq_s16(acc, lo);
    acc = vpadalq_s16(acc, hi);
  }
  return vaddvq_s32(acc);
}

float DotRowQ8Neon(const uint8_t* row, const int8_t* xq, const float* xscale,
                   uint64_t nblocks) {
  float acc = 0.0f;
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint8_t* blk = row + b * kQ8BlockBytes;
    const float wscale =
        F16ToF32(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
    const int32_t dot = DotBlock32(reinterpret_cast<const int8_t*>(blk + 2),
                                   xq + b * kQ8BlockElems);
    acc += (wscale * xscale[b]) * static_cast<float>(dot);
  }
  return acc;
}

float DotRowQ8WsNeon(const uint8_t* row, const float* wscales,
                     const int8_t* xq, const float* xscale,
                     uint64_t nblocks) {
  float acc = 0.0f;
  for (uint64_t b = 0; b < nblocks; ++b) {
    const int32_t dot = DotBlock32(
        reinterpret_cast<const int8_t*>(row + b * kQ8BlockBytes + 2),
        xq + b * kQ8BlockElems);
    acc += (wscales[b] * xscale[b]) * static_cast<float>(dot);
  }
  return acc;
}

void DotRows4Q8Neon(const uint8_t* row, const int8_t* xq, uint64_t x_stride,
                    const float* xs_t, uint64_t xs_stride, uint64_t nblocks,
                    float* out4) {
  // Block-outer so each weight block's two int8x16 loads (and the f16
  // header convert, done through F16ToF32 — the exact software path, as
  // this table's single-row dots use) are shared by all four positions.
  // Each position's block dot is the exact DotBlock32 reduction and its
  // float accumulator advances serially in block order with the scalar
  // table's association — bit-identical per position.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  float* accs[4] = {&acc0, &acc1, &acc2, &acc3};
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint8_t* blk = row + b * kQ8BlockBytes;
    const float wscale =
        F16ToF32(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
    const int8_t* wq = reinterpret_cast<const int8_t*>(blk + 2);
    const int8x16_t w0 = vld1q_s8(wq);
    const int8x16_t w1 = vld1q_s8(wq + 16);
    for (int p = 0; p < 4; ++p) {
      const int8_t* xb =
          xq + static_cast<uint64_t>(p) * x_stride + b * kQ8BlockElems;
      int32x4_t acc = vdupq_n_s32(0);
      const int8x16_t x0 = vld1q_s8(xb);
      const int8x16_t x1 = vld1q_s8(xb + 16);
      acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(w0), vget_low_s8(x0)));
      acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(w0), vget_high_s8(x0)));
      acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(w1), vget_low_s8(x1)));
      acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(w1), vget_high_s8(x1)));
      const int32_t dot = vaddvq_s32(acc);
      *accs[p] += (wscale * xs_t[b * xs_stride + p]) *
                  static_cast<float>(dot);
    }
  }
  out4[0] = acc0;
  out4[1] = acc1;
  out4[2] = acc2;
  out4[3] = acc3;
}

float DotQkF16Neon(const float* q, const uint16_t* k, int n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const float16x4_t kh = vreinterpret_f16_u16(vld1_u16(k + j));
    acc = vfmaq_f32(acc, vld1q_f32(q + j), vcvt_f32_f16(kh));
  }
  float sum = vaddvq_f32(acc);
  for (; j < n; ++j) {
    sum += q[j] * F16ToF32Fast(k[j]);
  }
  return sum;
}

float DotQkF32Neon(const float* q, const float* k, int n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(q + j), vld1q_f32(k + j));
  }
  float sum = vaddvq_f32(acc);
  for (; j < n; ++j) {
    sum += q[j] * k[j];
  }
  return sum;
}

void AxpyF16Neon(float w, const uint16_t* v, float* out, int n) {
  const float32x4_t ww = vdupq_n_f32(w);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const float32x4_t vv =
        vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(v + j)));
    vst1q_f32(out + j, vfmaq_f32(vld1q_f32(out + j), ww, vv));
  }
  for (; j < n; ++j) {
    out[j] += w * F16ToF32Fast(v[j]);
  }
}

void AxpyF32Neon(float w, const float* v, float* out, int n) {
  const float32x4_t ww = vdupq_n_f32(w);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    vst1q_f32(out + j, vfmaq_f32(vld1q_f32(out + j), ww, vld1q_f32(v + j)));
  }
  for (; j < n; ++j) {
    out[j] += w * v[j];
  }
}

void F32ToF16Neon(const float* src, uint16_t* dst, uint64_t n) {
  // Scalar converter per element: it flushes subnormals to zero, and
  // matching that bit-for-bit matters more here than convert throughput
  // (vcvt_f16_f32 honors FPCR flush bits, which we don't control).
  for (uint64_t i = 0; i < n; ++i) {
    dst[i] = F32ToF16(src[i]);
  }
}

void F16ToF32Neon(const uint16_t* src, float* dst, uint64_t n) {
  uint64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(src + i))));
  }
  for (; i < n; ++i) {
    dst[i] = F16ToF32(src[i]);
  }
}

void RmsNormNeon(const float* x, const float* gain, float* out, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(x[i]) * x[i];
  }
  const float inv = 1.0f / std::sqrt(static_cast<float>(sum / n) + 1e-5f);
  const float32x4_t vinv = vdupq_n_f32(inv);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i,
              vmulq_f32(vmulq_f32(vld1q_f32(x + i), vinv),
                        vld1q_f32(gain + i)));
  }
  for (; i < n; ++i) {
    out[i] = x[i] * inv * gain[i];
  }
}

void SoftmaxNeon(float* x, int n) {
  float max = x[0];
  int i = 1;
  if (n >= 4) {
    float32x4_t vmax = vld1q_f32(x);
    for (i = 4; i + 4 <= n; i += 4) {
      vmax = vmaxq_f32(vmax, vld1q_f32(x + i));
    }
    max = vmaxvq_f32(vmax);
  }
  for (; i < n; ++i) {
    max = max < x[i] ? x[i] : max;
  }
  float sum = 0.0f;
  for (int j = 0; j < n; ++j) {
    x[j] = std::exp(x[j] - max);
    sum += x[j];
  }
  const float inv = 1.0f / sum;
  const float32x4_t vinv = vdupq_n_f32(inv);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    vst1q_f32(x + j, vmulq_f32(vld1q_f32(x + j), vinv));
  }
  for (; j < n; ++j) {
    x[j] *= inv;
  }
}

const KernelDispatch kNeonTable = {
    SimdIsa::kNeon,
    DotRowQ8Neon,
    DotRowQ8WsNeon,
    DotRows4Q8Neon,
    DotQkF16Neon,
    DotQkF32Neon,
    AxpyF16Neon,
    AxpyF32Neon,
    F32ToF16Neon,
    F16ToF32Neon,
    RmsNormNeon,
    SoftmaxNeon,
};

}  // namespace

const KernelDispatch* NeonKernels() { return &kNeonTable; }

}  // namespace tzllm

#else  // !(__aarch64__ && __ARM_NEON)

namespace tzllm {

const KernelDispatch* NeonKernels() { return nullptr; }

}  // namespace tzllm

#endif
