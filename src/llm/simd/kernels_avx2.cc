// AVX2 + F16C + FMA kernel backend. This translation unit is the only one
// compiled with -mavx2 -mf16c -mfma (CMake per-source flags); dispatch.cc
// only hands out this table after __builtin_cpu_supports confirms the ISA,
// so nothing here may be called on a lesser CPU.
//
// Bit-exactness notes (the contract kernels.h states):
//  - DotRowQ8*: the 32-wide int8 dot reduces in exact integer arithmetic
//    (madd_epi16 pairs fit int32 with huge margin: 32 * 127 * 127 < 2^19 per
//    lane pair), and the per-block float combine stays serial in block
//    order — so the result is bit-identical to the scalar table.
//  - F32ToF16: vcvtps2ph rounds to nearest-even like the scalar converter,
//    and a pre-mask reproduces its flush-subnormals-to-zero behavior, so
//    the f16 KV arena holds identical bytes whichever table filled it
//    (finite inputs; scalar turns NaN into inf, this path flushes it).
//  - Softmax: the max reduction is order-independent and exp/sum stay
//    serial, so it is bit-identical too.
//  - The QK dots, AV axpys and RMSNorm re-lane float accumulation (FMA,
//    8-wide), so those are tolerance-parity only.

#include "src/llm/simd/kernels.h"

#if defined(__AVX2__) && defined(__F16C__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

#include "src/llm/tensor.h"

namespace tzllm {
namespace {

inline float Hsum8(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

inline double Hsum4d(__m256d v) {
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// Exact int32 dot of one 32-element int8 block pair: widen to int16, madd
// to int32 pairs, reduce. Integer adds are associative, so the horizontal
// reduction order cannot change the value.
inline int32_t DotBlock32(const int8_t* w, const int8_t* x) {
  const __m256i w16a = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w)));
  const __m256i w16b = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + 16)));
  const __m256i x16a = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(x)));
  const __m256i x16b = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + 16)));
  const __m256i s = _mm256_add_epi32(_mm256_madd_epi16(w16a, x16a),
                                     _mm256_madd_epi16(w16b, x16b));
  __m128i s4 = _mm_add_epi32(_mm256_castsi256_si128(s),
                             _mm256_extracti128_si256(s, 1));
  s4 = _mm_add_epi32(s4, _mm_shuffle_epi32(s4, _MM_SHUFFLE(1, 0, 3, 2)));
  s4 = _mm_add_epi32(s4, _mm_shuffle_epi32(s4, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s4);
}

float DotRowQ8Avx2(const uint8_t* row, const int8_t* xq, const float* xscale,
                   uint64_t nblocks) {
  float acc = 0.0f;
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint8_t* blk = row + b * kQ8BlockBytes;
    const float wscale =
        F16ToF32(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
    const int32_t dot = DotBlock32(reinterpret_cast<const int8_t*>(blk + 2),
                                   xq + b * kQ8BlockElems);
    acc += (wscale * xscale[b]) * static_cast<float>(dot);
  }
  return acc;
}

float DotRowQ8WsAvx2(const uint8_t* row, const float* wscales,
                     const int8_t* xq, const float* xscale,
                     uint64_t nblocks) {
  float acc = 0.0f;
  for (uint64_t b = 0; b < nblocks; ++b) {
    const int32_t dot = DotBlock32(
        reinterpret_cast<const int8_t*>(row + b * kQ8BlockBytes + 2),
        xq + b * kQ8BlockElems);
    acc += (wscales[b] * xscale[b]) * static_cast<float>(dot);
  }
  return acc;
}

void DotRows4Q8Avx2(const uint8_t* row, const int8_t* xq, uint64_t x_stride,
                    const float* xs_t, uint64_t xs_stride, uint64_t nblocks,
                    float* out4) {
  // Block-outer: each weight block is loaded and widened ONCE, then all
  // four positions madd against the shared registers — the whole point of
  // the batched decode path (the single-row kernel re-streams the row per
  // position). The f16 scale header converts in-loop through vcvtsh2ss
  // (exact IEEE f16->f32, bit-identical to the scalar F16ToF32 for every
  // input), fused into the weight stream. Exactness of the rest: the three
  // hadds only reorder exact int32 adds; the float combine is one mul +
  // one mul + one add PER LANE, lane p carrying position p's serial
  // block-order accumulator with the same (wscale * xscale) * dot
  // association as the scalar loop — no FMA, which would skip the
  // intermediate rounding the scalar table performs.
  __m128 acc = _mm_setzero_ps();
  for (uint64_t b = 0; b < nblocks; ++b) {
    const uint8_t* blk = row + b * kQ8BlockBytes;
    const float wscale =
        _cvtsh_ss(static_cast<uint16_t>(blk[0] | (blk[1] << 8)));
    const int8_t* wq = reinterpret_cast<const int8_t*>(blk + 2);
    const __m256i w16a = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(wq)));
    const __m256i w16b = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(wq + 16)));
    __m256i part[4];
    for (int p = 0; p < 4; ++p) {
      const int8_t* xb =
          xq + static_cast<uint64_t>(p) * x_stride + b * kQ8BlockElems;
      const __m256i x16a = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xb)));
      const __m256i x16b = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xb + 16)));
      part[p] = _mm256_add_epi32(_mm256_madd_epi16(w16a, x16a),
                                 _mm256_madd_epi16(w16b, x16b));
    }
    // Cross-position reduction: fold each 8-lane partial to 4 lanes, then
    // hadd pairs so lane p of `dots` holds position p's exact block dot.
    const __m128i r0 = _mm_add_epi32(_mm256_castsi256_si128(part[0]),
                                     _mm256_extracti128_si256(part[0], 1));
    const __m128i r1 = _mm_add_epi32(_mm256_castsi256_si128(part[1]),
                                     _mm256_extracti128_si256(part[1], 1));
    const __m128i r2 = _mm_add_epi32(_mm256_castsi256_si128(part[2]),
                                     _mm256_extracti128_si256(part[2], 1));
    const __m128i r3 = _mm_add_epi32(_mm256_castsi256_si128(part[3]),
                                     _mm256_extracti128_si256(part[3], 1));
    const __m128i dots =
        _mm_hadd_epi32(_mm_hadd_epi32(r0, r1), _mm_hadd_epi32(r2, r3));
    const __m128 scales = _mm_mul_ps(_mm_set1_ps(wscale),
                                     _mm_loadu_ps(xs_t + b * xs_stride));
    acc = _mm_add_ps(acc, _mm_mul_ps(scales, _mm_cvtepi32_ps(dots)));
  }
  _mm_storeu_ps(out4, acc);
}

float DotQkF16Avx2(const float* q, const uint16_t* k, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256 k0 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(k + j)));
    const __m256 k1 = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(k + j + 8)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j), k0, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j + 8), k1, acc1);
  }
  for (; j + 8 <= n; j += 8) {
    const __m256 kk = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(k + j)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j), kk, acc0);
  }
  float sum = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; j < n; ++j) {
    sum += q[j] * F16ToF32Fast(k[j]);
  }
  return sum;
}

float DotQkF32Avx2(const float* q, const float* k, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int j = 0;
  for (; j + 16 <= n; j += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j), _mm256_loadu_ps(k + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j + 8),
                           _mm256_loadu_ps(k + j + 8), acc1);
  }
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + j), _mm256_loadu_ps(k + j),
                           acc0);
  }
  float sum = Hsum8(_mm256_add_ps(acc0, acc1));
  for (; j < n; ++j) {
    sum += q[j] * k[j];
  }
  return sum;
}

void AxpyF16Avx2(float w, const uint16_t* v, float* out, int n) {
  const __m256 ww = _mm256_set1_ps(w);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vv = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + j)));
    _mm256_storeu_ps(out + j,
                     _mm256_fmadd_ps(ww, vv, _mm256_loadu_ps(out + j)));
  }
  for (; j < n; ++j) {
    out[j] += w * F16ToF32Fast(v[j]);
  }
}

void AxpyF32Avx2(float w, const float* v, float* out, int n) {
  const __m256 ww = _mm256_set1_ps(w);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(
        out + j,
        _mm256_fmadd_ps(ww, _mm256_loadu_ps(v + j), _mm256_loadu_ps(out + j)));
  }
  for (; j < n; ++j) {
    out[j] += w * v[j];
  }
}

void F32ToF16Avx2(const float* src, uint16_t* dst, uint64_t n) {
  // vcvtps2ph would emit subnormal halves for |x| < 2^-14; the scalar
  // converter flushes that whole range to signed zero. Masking the inputs
  // below the f16 normal threshold reproduces the flush exactly (the
  // boundary is the same: |x| >= 2^-14 keeps full precision).
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  const __m256 sign_only =
      _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int>(0x80000000u)));
  const __m256 min_normal = _mm256_set1_ps(6.103515625e-05f);  // 2^-14.
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_loadu_ps(src + i);
    const __m256 keep =
        _mm256_cmp_ps(_mm256_and_ps(x, abs_mask), min_normal, _CMP_GE_OQ);
    x = _mm256_and_ps(x, _mm256_or_ps(keep, sign_only));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm256_cvtps_ph(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  for (; i < n; ++i) {
    dst[i] = F32ToF16(src[i]);
  }
}

void F16ToF32Avx2(const uint16_t* src, float* dst, uint64_t n) {
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_cvtph_ps(_mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(src + i))));
  }
  for (; i < n; ++i) {
    dst[i] = F16ToF32(src[i]);
  }
}

void RmsNormAvx2(const float* x, const float* gain, float* out, int n) {
  // Sum of squares in 4 double lanes (the scalar path accumulates in double
  // too, so the lanes only reorder, never narrow, the reduction).
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  double sum = Hsum4d(acc);
  for (; i < n; ++i) {
    sum += static_cast<double>(x[i]) * x[i];
  }
  const float inv = 1.0f / std::sqrt(static_cast<float>(sum / n) + 1e-5f);
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i,
                     _mm256_mul_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), vinv),
                                   _mm256_loadu_ps(gain + i)));
  }
  for (; i < n; ++i) {
    out[i] = x[i] * inv * gain[i];
  }
}

void SoftmaxAvx2(float* x, int n) {
  float max = x[0];
  int i = 1;
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + i));
    }
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(vmax),
                          _mm256_extractf128_ps(vmax, 1));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_movehdup_ps(m));
    max = _mm_cvtss_f32(m);
  }
  for (; i < n; ++i) {
    max = max < x[i] ? x[i] : max;
  }
  // exp and the sum stay serial: together with the order-independent max
  // and the elementwise scale this keeps softmax bit-identical to scalar.
  float sum = 0.0f;
  for (int j = 0; j < n; ++j) {
    x[j] = std::exp(x[j] - max);
    sum += x[j];
  }
  const float inv = 1.0f / sum;
  const __m256 vinv = _mm256_set1_ps(inv);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(x + j, _mm256_mul_ps(_mm256_loadu_ps(x + j), vinv));
  }
  for (; j < n; ++j) {
    x[j] *= inv;
  }
}

const KernelDispatch kAvx2Table = {
    SimdIsa::kAvx2F16c,
    DotRowQ8Avx2,
    DotRowQ8WsAvx2,
    DotRows4Q8Avx2,
    DotQkF16Avx2,
    DotQkF32Avx2,
    AxpyF16Avx2,
    AxpyF32Avx2,
    F32ToF16Avx2,
    F16ToF32Avx2,
    RmsNormAvx2,
    SoftmaxAvx2,
};

}  // namespace

const KernelDispatch* Avx2Kernels() { return &kAvx2Table; }

}  // namespace tzllm

#else  // !(__AVX2__ && __F16C__ && __FMA__)

namespace tzllm {

// Built without the ISA (non-x86 target or SIMD disabled at compile time):
// the backend is absent and dispatch falls back to scalar.
const KernelDispatch* Avx2Kernels() { return nullptr; }

}  // namespace tzllm

#endif
