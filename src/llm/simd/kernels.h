// Runtime-dispatched SIMD kernel backends for the functional inference
// engine (llama.cpp-style per-ISA translation units).
//
// Every hot inner loop of the engine — the Q8xQ8 integer-dot rows behind
// MatVecQ8/MatMatQ8, the f16/f32 attention QK dots and AV accumulates, the
// KV-cache width converts, and the RMSNorm/softmax reductions — is a slot in
// a KernelDispatch table. The table is resolved exactly once per process
// from CPUID (plus the TZLLM_SIMD env override), so call sites pay one
// indirect call instead of per-call feature branches, and each backend lives
// in its own translation unit compiled with exactly the -m flags it needs
// (the rest of the codebase stays portable baseline code).
//
// Numerics contract per slot:
//  - dot_row_q8 / dot_row_q8_ws / dot_rows4_q8 are BIT-IDENTICAL across
//    all backends: the 32-wide int8 MACs reduce in exact integer arithmetic
//    and the per-block float combine runs serially in block order (one
//    independent serial accumulator per position in the rows4 variant), so
//    vectorizing the integer dot cannot change a single bit of the output.
//  - f32_to_f16 is bit-identical across backends for FINITE inputs (the
//    AVX2 path reproduces the scalar converter's flush-subnormals-to-zero
//    behavior; NaN diverges — scalar emits inf, AVX2 flushes to zero — but
//    KV appends are finite by construction, the forward pass has already
//    diverged long before a NaN reaches the cache).
//  - dot_qk_*, axpy_*, rms_norm reorder float accumulation for lanes, so
//    SIMD-vs-scalar parity is tolerance-based (the parity suite bounds it
//    at the established 0.15/logit with greedy tokens identical).
//  - softmax is bit-identical (the max reduction is order-independent and
//    exp/sum stay serial; only max and the final scale are vectorized).

#ifndef SRC_LLM_SIMD_KERNELS_H_
#define SRC_LLM_SIMD_KERNELS_H_

#include <cstdint>

namespace tzllm {

struct EngineOptions;

enum class SimdIsa : uint8_t {
  kScalar = 0,
  kAvx2F16c = 1,
  kNeon = 2,
};

const char* SimdIsaName(SimdIsa isa);

// One function pointer per hot inner loop. `nblocks` counts 34-byte Q8_0
// blocks (tensor.h geometry); `row` points at a row of such blocks.
struct KernelDispatch {
  SimdIsa isa;

  // acc over blocks of (wscale_b * xscale_b) * <wq_b, xq_b>, wscale read
  // from the f16 header of each block. The MatVecQ8Pre row kernel.
  float (*dot_row_q8)(const uint8_t* row, const int8_t* xq,
                      const float* xscale, uint64_t nblocks);
  // Same dot with the row's weight scales pre-expanded by the caller (for
  // callers that amortize one expansion across many dots of the same row).
  float (*dot_row_q8_ws)(const uint8_t* row, const float* wscales,
                         const int8_t* xq, const float* xscale,
                         uint64_t nblocks);
  // Four positions against one weight row in a single pass — the MatMatQ8
  // group kernel behind batched multi-session decode. Each weight block is
  // loaded and widened ONCE and all four positions' activations dot
  // against it, so a batch streams the weight bytes (and converts each f16
  // scale header) once instead of four times; reading the header in-kernel
  // rather than via a pre-expanded wscales pass keeps the converts fused
  // into the weight stream, where they hide in the DRAM latency instead of
  // serializing against the dots. out4[j] is BIT-IDENTICAL to dot_row_q8
  // over position j: the block dots reduce in exact integer arithmetic (a
  // 4-wide horizontal add only reorders integer adds) and the per-position
  // float combine runs serially in block order with the same
  // (wscale * xscale) * dot association — four independent accumulators,
  // one per position, never mixed.
  //   xq:        position 0's quantized row; position j at xq+j*x_stride.
  //   xs_t:      activation scales TRANSPOSED to [block][position] — block
  //              b's four scales are xs_t[b*xs_stride + 0..3] — so backends
  //              load them as one vector (the caller builds the transpose
  //              once per matmul and reuses it across every row).
  void (*dot_rows4_q8)(const uint8_t* row, const int8_t* xq,
                       uint64_t x_stride, const float* xs_t,
                       uint64_t xs_stride, uint64_t nblocks, float* out4);

  // Attention primitives over one head row of `n` floats.
  float (*dot_qk_f16)(const float* q, const uint16_t* k, int n);
  float (*dot_qk_f32)(const float* q, const float* k, int n);
  void (*axpy_f16)(float w, const uint16_t* v, float* out, int n);
  void (*axpy_f32)(float w, const float* v, float* out, int n);

  // KV-cache width converts (Append compresses, tests/tools expand).
  void (*f32_to_f16)(const float* src, uint16_t* dst, uint64_t n);
  void (*f16_to_f32)(const uint16_t* src, float* dst, uint64_t n);

  // Reductions.
  void (*rms_norm)(const float* x, const float* gain, float* out, int n);
  void (*softmax)(float* x, int n);
};

// Backend tables. Scalar always exists; the others return nullptr when their
// translation unit was built without the ISA (wrong target arch).
const KernelDispatch* ScalarKernels();
const KernelDispatch* Avx2Kernels();
const KernelDispatch* NeonKernels();

// True when the running CPU can execute the AVX2+F16C+FMA backend.
bool CpuSupportsAvx2F16c();

// Pure resolution for a given TZLLM_SIMD value (nullptr/"" = auto): "off",
// "scalar" or "0" force the scalar table; "avx2"/"neon" request a backend
// (falling back to scalar when unavailable); anything else auto-selects the
// best supported table — AVX2 behind its CPUID gate on x86, NEON on aarch64
// (baseline there; covered by the aarch64 qemu-user CI leg that runs the
// kernel + parity suites). Exposed separately from ActiveKernels so tests
// can exercise every branch without mutating process env.
const KernelDispatch* ResolveKernels(const char* env_value);

// The process-wide table: ResolveKernels(getenv("TZLLM_SIMD")), resolved
// once on first use.
const KernelDispatch* ActiveKernels();

// The table an engine configured with `options` must use: the scalar table
// under force_scalar (and under use_reference_kernels, so parity baselines
// stay frozen), ActiveKernels() otherwise.
const KernelDispatch* KernelsFor(const EngineOptions& options);

}  // namespace tzllm

#endif  // SRC_LLM_SIMD_KERNELS_H_
