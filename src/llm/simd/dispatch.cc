// Kernel table resolution: CPUID gating + TZLLM_SIMD env override, computed
// once per process. An unsupported table can never be selected — explicit
// requests for an absent/unsupported backend degrade to scalar rather than
// fault on the first illegal instruction.

#include <cctype>
#include <cstdlib>
#include <string>

#include "src/llm/engine_options.h"
#include "src/llm/simd/kernels.h"

namespace tzllm {

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2F16c:
      return "avx2_f16c";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "?";
}

bool CpuSupportsAvx2F16c() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c") &&
         __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

// Best table auto mode may hand out. The AVX2 TU needs the CPUID gate
// because x86 binaries routinely run on pre-AVX2 silicon. The NEON table is
// baseline on aarch64 (no runtime feature gate needed) and auto mode now
// selects it: the aarch64 qemu-user CI leg cross-compiles the suite and runs
// the kernel + parity tests over the NEON table on every push, which was the
// graduation condition for dropping the TZLLM_SIMD=neon opt-in (ROADMAP).
const KernelDispatch* BestSupported() {
  if (Avx2Kernels() != nullptr && CpuSupportsAvx2F16c()) {
    return Avx2Kernels();
  }
  if (NeonKernels() != nullptr) {
    return NeonKernels();
  }
  return ScalarKernels();
}

}  // namespace

const KernelDispatch* ResolveKernels(const char* env_value) {
  if (env_value != nullptr && env_value[0] != '\0') {
    std::string v(env_value);
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "off" || v == "scalar" || v == "0" || v == "none") {
      return ScalarKernels();
    }
    if (v == "avx2") {
      return Avx2Kernels() != nullptr && CpuSupportsAvx2F16c()
                 ? Avx2Kernels()
                 : ScalarKernels();
    }
    if (v == "neon") {
      return NeonKernels() != nullptr ? NeonKernels() : ScalarKernels();
    }
    // Unknown value: fall through to auto rather than silently going scalar.
  }
  return BestSupported();
}

const KernelDispatch* ActiveKernels() {
  static const KernelDispatch* table =
      ResolveKernels(std::getenv("TZLLM_SIMD"));
  return table;
}

const KernelDispatch* KernelsFor(const EngineOptions& options) {
  return options.use_reference_kernels || options.force_scalar
             ? ScalarKernels()
             : ActiveKernels();
}

}  // namespace tzllm
