#include "src/llm/cost_model.h"

#include <cmath>

#include "src/llm/kv_cache.h"

namespace tzllm {

double CostModel::MatmulFlops(const OpNode& node, int n_tokens) const {
  return 2.0 * static_cast<double>(node.weight_elems) * n_tokens;
}

SimDuration CostModel::LightOpTime(const OpNode& node, int n_tokens) const {
  // CPU-resident ops (norms, rope, softmax, activation) are bandwidth bound;
  // model them as a calibrated fraction of the *layer's* CPU matmul time,
  // split across the layer's light ops, plus the quadratic attention term.
  const LlmConfig& c = spec_->config();
  const uint64_t d = c.d_model;
  const uint64_t ff = c.d_ff;
  const uint64_t kv = c.kv_dim();
  const double layer_matmul_flops =
      2.0 * (2.0 * d * d + 2.0 * d * kv + 3.0 * d * ff) * n_tokens;
  constexpr int kLightOpsPerLayer = 4;  // attn_norm, attention, ffn_norm, act.
  double t = kCpuLightOpFraction * (layer_matmul_flops / kCpuMatmulFlops) /
             kLightOpsPerLayer;
  if (node.kind == OpKind::kAttention) {
    // QK^T and attention-weighted V (fused kernels).
    t += kAttentionQuadCoeff * static_cast<double>(n_tokens) * n_tokens * d /
         kCpuMatmulFlops;
  }
  return FromSeconds(t);
}

SimDuration CostModel::PrefillOpTime(const OpNode& node, int n_tokens,
                                     Backend backend) const {
  if (node.weight_elems == 0 || node.kind == OpKind::kAttnNorm ||
      node.kind == OpKind::kFfnNorm || node.kind == OpKind::kOutputNorm ||
      node.kind == OpKind::kEmbed) {
    return LightOpTime(node, n_tokens);
  }
  const double flops = MatmulFlops(node, n_tokens);
  const double rate =
      backend == Backend::kNpu ? kNpuMatmulFlops : kCpuMatmulFlops;
  return FromSeconds(flops / rate);
}

SimDuration CostModel::DecodeOpTime(const OpNode& node, int pos,
                                    Backend backend) const {
  if (node.weight_bytes == 0) {
    // Attention over the KV cache: stream K and V rows [0, pos) at the f16
    // width the arena actually stores (KvStorage::kF16) — the same constants
    // KvCache::CurrentBytes accounts with.
    const uint64_t kv_bytes = kKvVectorsPerPosition *
                              spec_->config().kv_dim() *
                              static_cast<uint64_t>(pos) *
                              kKvAccountedBytesPerElem;
    return TransferTime(kv_bytes, kCpuDecodeBw) + 2 * kMicrosecond;
  }
  if (node.kind == OpKind::kAttnNorm || node.kind == OpKind::kFfnNorm ||
      node.kind == OpKind::kOutputNorm || node.kind == OpKind::kEmbed) {
    // Norm weights are tiny; fixed small cost.
    return 2 * kMicrosecond;
  }
  const double bw = backend == Backend::kNpu ? kNpuDecodeBw : kCpuDecodeBw;
  return TransferTime(node.weight_bytes, bw);
}

SimDuration CostModel::PrefillComputeTime(const ComputeGraph& graph,
                                          int n_tokens,
                                          bool npu_available) const {
  SimDuration total = 0;
  for (const OpNode& node : graph.nodes()) {
    const Backend b = npu_available ? node.backend : Backend::kCpu;
    total += PrefillOpTime(node, n_tokens, b);
    if (npu_available && node.backend == Backend::kNpu) {
      total += kNpuJobLaunchOverhead;
    }
  }
  return total;
}

SimDuration CostModel::DecodeComputeTime(const ComputeGraph& graph, int pos,
                                         bool npu_available) const {
  SimDuration total = 0;
  for (const OpNode& node : graph.nodes()) {
    const Backend b = npu_available ? node.backend : Backend::kCpu;
    total += DecodeOpTime(node, pos, b);
    if (npu_available && node.backend == Backend::kNpu) {
      total += kNpuJobLaunchOverhead;
    }
  }
  return total;
}

}  // namespace tzllm
