// Token sampling: greedy argmax and seeded top-k — enough for deterministic
// tests (greedy) and varied example output (top-k).

#ifndef SRC_LLM_SAMPLER_H_
#define SRC_LLM_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/llm/tokenizer.h"

namespace tzllm {

class Sampler {
 public:
  struct Options {
    bool greedy = true;
    int top_k = 40;
    double temperature = 0.8;
    uint64_t seed = 42;
  };

  Sampler() : Sampler(Options{}) {}
  explicit Sampler(const Options& options)
      : options_(options), rng_(options.seed) {}

  TokenId Sample(const std::vector<float>& logits);

 private:
  Options options_;
  Rng rng_;
};

}  // namespace tzllm

#endif  // SRC_LLM_SAMPLER_H_
