// Token sampling: greedy argmax and seeded top-k — enough for deterministic
// tests (greedy) and varied example output (top-k).

#ifndef SRC_LLM_SAMPLER_H_
#define SRC_LLM_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/llm/tokenizer.h"

namespace tzllm {

class Sampler {
 public:
  struct Options {
    bool greedy = true;
    int top_k = 40;
    double temperature = 0.8;
    uint64_t seed = 42;
  };

  Sampler() : Sampler(Options{}) {}
  explicit Sampler(const Options& options)
      : options_(options), rng_(options.seed) {}

  TokenId Sample(const std::vector<float>& logits);

  const Options& options() const { return options_; }

  // RNG state capture for session checkpointing: a sampler restored with
  // LoadRngState (over the same Options) draws the exact sequence the
  // saved one would have — non-greedy resumption stays token-identical.
  void SaveRngState(uint64_t out[4]) const { rng_.GetState(out); }
  void LoadRngState(const uint64_t in[4]) { rng_.SetState(in); }

 private:
  Options options_;
  Rng rng_;
};

}  // namespace tzllm

#endif  // SRC_LLM_SAMPLER_H_
