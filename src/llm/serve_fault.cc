#include "src/llm/serve_fault.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/log.h"

namespace tzllm {

std::string ServeFaultPlan::ToString() const {
  if (!active()) {
    return "none";
  }
  const char* name = "?";
  switch (fault) {
    case ServeFaultClass::kNone:
      name = "none";
      break;
    case ServeFaultClass::kSpillTamper:
      name = "spill_tamper";
      break;
    case ServeFaultClass::kSpillDrop:
      name = "spill_drop";
      break;
    case ServeFaultClass::kCkptDrop:
      name = "ckpt_drop";
      break;
    case ServeFaultClass::kTaCrash:
      name = "ta_crash";
      break;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s@%llu x%llu", name,
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(count));
  return buf;
}

Result<ServeFaultPlan> ServeFaultPlan::Parse(const std::string& text) {
  ServeFaultPlan plan;
  if (text.empty() || text == "none") {
    return plan;
  }
  const size_t at = text.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= text.size()) {
    return InvalidArgument(
        "serve fault plan must be <class>@<first>[x<count>], got: " + text);
  }
  const std::string cls = text.substr(0, at);
  if (cls == "spill_tamper") {
    plan.fault = ServeFaultClass::kSpillTamper;
  } else if (cls == "spill_drop") {
    plan.fault = ServeFaultClass::kSpillDrop;
  } else if (cls == "ckpt_drop") {
    plan.fault = ServeFaultClass::kCkptDrop;
  } else if (cls == "ta_crash") {
    plan.fault = ServeFaultClass::kTaCrash;
  } else {
    return InvalidArgument("unknown serve fault class: " + cls);
  }
  const std::string ords = text.substr(at + 1);
  const size_t x = ords.find('x');
  char* end = nullptr;
  const std::string first_str = x == std::string::npos ? ords
                                                       : ords.substr(0, x);
  plan.first = std::strtoull(first_str.c_str(), &end, 10);
  if (end == first_str.c_str() || *end != '\0' || plan.first == 0) {
    return InvalidArgument("bad serve fault ordinal in plan: " + text);
  }
  if (x != std::string::npos) {
    const std::string count_str = ords.substr(x + 1);
    plan.count = std::strtoull(count_str.c_str(), &end, 10);
    if (end == count_str.c_str() || *end != '\0' || plan.count == 0) {
      return InvalidArgument("bad serve fault count in plan: " + text);
    }
  }
  return plan;
}

ServeFaultPlan ServeFaultPlan::FromEnv() {
  const char* env = std::getenv("TZLLM_SERVE_FAULT_PLAN");
  if (env == nullptr || *env == '\0') {
    return ServeFaultPlan{};
  }
  auto plan = Parse(env);
  if (!plan.ok()) {
    TZLLM_LOG_WARN("serve", "ignoring malformed TZLLM_SERVE_FAULT_PLAN: %s",
                   plan.status().ToString().c_str());
    return ServeFaultPlan{};
  }
  return *plan;
}

}  // namespace tzllm
