// TZGUF: the encrypted on-flash model container (GGUF-shaped, TrustZone-
// hardened). A provisioned model is three flash files:
//
//   <id>.key  — the model key, wrapped under the device's TEE key (§6).
//   <id>.meta — encrypted metadata: architecture config + tensor table with
//               per-tensor PLAINTEXT SHA-256 tags. The tags are the Iago
//               defense for model loading: after the TEE decrypts a tensor
//               it verifies the tag, so a malicious REE filesystem cannot
//               substitute content.
//   <id>.data — per-tensor payloads encrypted with AES-128-CTR keyed at the
//               tensor's file offset (so arbitrary extents decrypt
//               independently — the property chunked restoration needs).
//
// Functional models carry real quantized weights; paper-scale models use a
// synthetic .data stream and tagless tensors.

#ifndef SRC_LLM_TZGUF_H_
#define SRC_LLM_TZGUF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/key_hierarchy.h"
#include "src/crypto/sha256.h"
#include "src/hw/flash.h"
#include "src/llm/model_spec.h"

namespace tzllm {

struct TzgufMeta {
  std::string model_id;
  LlmConfig config;
  // Parallel to ModelSpec::Create(config).tensors().
  std::vector<Sha256Digest> tensor_tags;
  bool materialized = false;
  uint64_t data_file_bytes = 0;

  std::string MetaFile() const { return model_id + ".meta"; }
  std::string DataFile() const { return model_id + ".data"; }
};

class Tzguf {
 public:
  // --- Provider-side provisioning (host tool; not timed). ---
  // Creates the three files on flash. When `materialize` is true real
  // weights are generated from `weight_seed`, quantized, tagged, encrypted
  // and stored; the spec must be materializable. Returns the meta.
  static Result<TzgufMeta> Provision(FlashDevice* flash,
                                     const KeyHierarchy& keys,
                                     const std::string& model_id,
                                     const ModelSpec& spec,
                                     uint64_t weight_seed, bool materialize);

  // Reference plaintext weights for a materialized model (what the REE
  // baselines load, and what tests compare the protected path against).
  static std::vector<Tensor> ReferenceWeights(const ModelSpec& spec,
                                              uint64_t weight_seed);

  // --- TEE-side access. ---
  // Reads the wrapped key blob from flash.
  static Result<WrappedModelKey> ReadWrappedKey(FlashDevice* flash,
                                                const std::string& model_id);
  // Decrypts and integrity-checks the metadata with the (unwrapped) key.
  static Result<TzgufMeta> ReadMeta(FlashDevice* flash,
                                    const std::string& model_id,
                                    const AesKey128& key);

  // In-place decryption of a data-file extent that has been loaded into a
  // buffer: `file_offset` is the extent's position in <id>.data.
  static void DecryptExtent(const AesKey128& key, const std::string& model_id,
                            uint64_t file_offset, uint8_t* data, uint64_t len);

  // Verifies tensor `index`'s plaintext bytes against the meta tag.
  static Status VerifyTensor(const TzgufMeta& meta, int index,
                             const uint8_t* data, uint64_t len);

  static AesBlock DataIv(const std::string& model_id) {
    return KeyHierarchy::ModelIv("data/" + model_id);
  }

  static std::string KeyFile(const std::string& model_id) {
    return model_id + ".key";
  }
};

}  // namespace tzllm

#endif  // SRC_LLM_TZGUF_H_
