#include "src/llm/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace tzllm {

void RmsNorm(const float* x, const float* gain, float* out, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(x[i]) * x[i];
  }
  const float inv = 1.0f / std::sqrt(static_cast<float>(sum / n) + 1e-5f);
  for (int i = 0; i < n; ++i) {
    out[i] = x[i] * inv * gain[i];
  }
}

void Softmax(float* x, int n) {
  float max = x[0];
  for (int i = 1; i < n; ++i) {
    max = std::max(max, x[i]);
  }
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max);
    sum += x[i];
  }
  const float inv = 1.0f / sum;
  for (int i = 0; i < n; ++i) {
    x[i] *= inv;
  }
}

void ApplyRope(float* vec, int n_heads, int head_dim, int pos) {
  for (int h = 0; h < n_heads; ++h) {
    float* head = vec + h * head_dim;
    for (int i = 0; i < head_dim; i += 2) {
      const float freq =
          std::pow(10000.0f, -static_cast<float>(i) / head_dim);
      const float angle = pos * freq;
      const float c = std::cos(angle);
      const float s = std::sin(angle);
      const float x0 = head[i];
      const float x1 = head[i + 1];
      head[i] = x0 * c - x1 * s;
      head[i + 1] = x0 * s + x1 * c;
    }
  }
}

TransformerExecutor::TransformerExecutor(const ModelSpec* spec,
                                         WeightSource* weights)
    : spec_(spec), weights_(weights) {}

Result<const uint8_t*> TransformerExecutor::Weights(TensorRole role,
                                                    int layer) {
  const TensorSpec* t = spec_->Find(role, layer);
  if (t == nullptr) {
    return Status(ErrorCode::kNotFound, "tensor spec missing");
  }
  return weights_->TensorData(t->index);
}

Status TransformerExecutor::EmbedToken(TokenId token,
                                       std::vector<float>* hidden) {
  const LlmConfig& c = spec_->config();
  if (token < 0 || token >= c.vocab_size) {
    return InvalidArgument("token out of vocabulary");
  }
  auto embd = Weights(TensorRole::kTokEmbedding, -1);
  if (!embd.ok()) {
    return embd.status();
  }
  hidden->assign(c.d_model, 0.0f);
  // Row `token` of the Q8_0 embedding matrix.
  const uint64_t row_blocks = c.d_model / kQ8BlockElems;
  const uint8_t* row = *embd + static_cast<uint64_t>(token) * row_blocks *
                                   kQ8BlockBytes;
  DequantizeQ8(row, c.d_model, hidden->data());
  return OkStatus();
}

Status TransformerExecutor::ForwardPosition(std::vector<float>* hidden,
                                            int pos, KvCache* kv) {
  const LlmConfig& c = spec_->config();
  const int d = c.d_model;
  const int head_dim = c.head_dim();
  const int kv_dim = c.kv_dim();
  const int group = c.n_heads / c.n_kv_heads;

  std::vector<float> norm(d), q(d), k(kv_dim), v(kv_dim), attn_out(d);
  std::vector<float> ff_norm(d), gate(c.d_ff), up(c.d_ff), down(d);

  for (int l = 0; l < c.n_layers; ++l) {
    // --- Attention block. ---
    TZLLM_ASSIGN_OR_RETURN(w_norm, Weights(TensorRole::kAttnNorm, l));
    RmsNorm(hidden->data(), reinterpret_cast<const float*>(w_norm),
            norm.data(), d);

    TZLLM_ASSIGN_OR_RETURN(wq, Weights(TensorRole::kWq, l));
    TZLLM_ASSIGN_OR_RETURN(wk, Weights(TensorRole::kWk, l));
    TZLLM_ASSIGN_OR_RETURN(wv, Weights(TensorRole::kWv, l));
    std::fill(q.begin(), q.end(), 0.0f);
    std::fill(k.begin(), k.end(), 0.0f);
    std::fill(v.begin(), v.end(), 0.0f);
    MatVecQ8(wq, d, d, norm.data(), q.data());
    MatVecQ8(wk, kv_dim, d, norm.data(), k.data());
    MatVecQ8(wv, kv_dim, d, norm.data(), v.data());

    ApplyRope(q.data(), c.n_heads, head_dim, pos);
    ApplyRope(k.data(), c.n_kv_heads, head_dim, pos);
    TZLLM_RETURN_IF_ERROR(kv->Append(l, k.data(), v.data()));

    // Causal attention over positions [0, pos].
    std::fill(attn_out.begin(), attn_out.end(), 0.0f);
    std::vector<float> scores(pos + 1);
    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
    for (int h = 0; h < c.n_heads; ++h) {
      const int kv_head = h / group;
      const float* qh = q.data() + h * head_dim;
      for (int p = 0; p <= pos; ++p) {
        const float* kp = kv->KeyAt(l, p) + kv_head * head_dim;
        float dot = 0.0f;
        for (int i = 0; i < head_dim; ++i) {
          dot += qh[i] * kp[i];
        }
        scores[p] = dot * scale;
      }
      Softmax(scores.data(), pos + 1);
      float* oh = attn_out.data() + h * head_dim;
      for (int p = 0; p <= pos; ++p) {
        const float* vp = kv->ValueAt(l, p) + kv_head * head_dim;
        const float w = scores[p];
        for (int i = 0; i < head_dim; ++i) {
          oh[i] += w * vp[i];
        }
      }
    }

    TZLLM_ASSIGN_OR_RETURN(wo, Weights(TensorRole::kWo, l));
    std::vector<float> proj(d, 0.0f);
    MatVecQ8(wo, d, d, attn_out.data(), proj.data());
    for (int i = 0; i < d; ++i) {
      (*hidden)[i] += proj[i];
    }

    // --- FFN block (SwiGLU). ---
    TZLLM_ASSIGN_OR_RETURN(w_ffn_norm, Weights(TensorRole::kFfnNorm, l));
    RmsNorm(hidden->data(), reinterpret_cast<const float*>(w_ffn_norm),
            ff_norm.data(), d);

    TZLLM_ASSIGN_OR_RETURN(w_gate, Weights(TensorRole::kWGate, l));
    TZLLM_ASSIGN_OR_RETURN(w_up, Weights(TensorRole::kWUp, l));
    TZLLM_ASSIGN_OR_RETURN(w_down, Weights(TensorRole::kWDown, l));
    std::fill(gate.begin(), gate.end(), 0.0f);
    std::fill(up.begin(), up.end(), 0.0f);
    std::fill(down.begin(), down.end(), 0.0f);
    MatVecQ8(w_gate, c.d_ff, d, ff_norm.data(), gate.data());
    MatVecQ8(w_up, c.d_ff, d, ff_norm.data(), up.data());
    for (int i = 0; i < c.d_ff; ++i) {
      const float g = gate[i];
      const float silu = g / (1.0f + std::exp(-g));
      gate[i] = silu * up[i];
    }
    MatVecQ8(w_down, d, c.d_ff, gate.data(), down.data());
    for (int i = 0; i < d; ++i) {
      (*hidden)[i] += down[i];
    }
  }
  kv->FinishPosition();
  return OkStatus();
}

Result<std::vector<float>> TransformerExecutor::Logits(
    const std::vector<float>& hidden) {
  const LlmConfig& c = spec_->config();
  std::vector<float> norm(c.d_model);
  auto w_norm = Weights(TensorRole::kOutputNorm, -1);
  if (!w_norm.ok()) {
    return w_norm.status();
  }
  RmsNorm(hidden.data(), reinterpret_cast<const float*>(*w_norm), norm.data(),
          c.d_model);
  auto head = Weights(TensorRole::kLmHead, -1);
  if (!head.ok()) {
    return head.status();
  }
  std::vector<float> logits(c.vocab_size, 0.0f);
  MatVecQ8(*head, c.vocab_size, c.d_model, norm.data(), logits.data());
  return logits;
}

Result<std::vector<float>> TransformerExecutor::Prefill(
    const std::vector<TokenId>& tokens, KvCache* kv) {
  if (tokens.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty prompt");
  }
  std::vector<float> hidden;
  for (size_t i = 0; i < tokens.size(); ++i) {
    TZLLM_RETURN_IF_ERROR(EmbedToken(tokens[i], &hidden));
    TZLLM_RETURN_IF_ERROR(ForwardPosition(&hidden, kv->seq_len(), kv));
  }
  return Logits(hidden);
}

Result<std::vector<float>> TransformerExecutor::DecodeStep(TokenId token,
                                                           KvCache* kv) {
  std::vector<float> hidden;
  TZLLM_RETURN_IF_ERROR(EmbedToken(token, &hidden));
  TZLLM_RETURN_IF_ERROR(ForwardPosition(&hidden, kv->seq_len(), kv));
  return Logits(hidden);
}

}  // namespace tzllm
