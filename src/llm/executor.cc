#include "src/llm/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

namespace tzllm {

namespace {

// Below this many multiply-accumulates the attention fork/join costs more
// than the heads themselves (first decode positions, tiny test models); such
// calls run inline on the caller. Same rationale and magnitude as the matmul
// kernels' threshold in tensor.cc.
constexpr uint64_t kAttnParallelMinWork = 48 * 1024;

}  // namespace

void RmsNorm(const float* x, const float* gain, float* out, int n) {
  ScalarKernels()->rms_norm(x, gain, out, n);
}

void Softmax(float* x, int n) { ScalarKernels()->softmax(x, n); }

void ApplyRope(float* vec, int n_heads, int head_dim, int pos) {
  for (int h = 0; h < n_heads; ++h) {
    float* head = vec + h * head_dim;
    for (int i = 0; i < head_dim; i += 2) {
      const float freq =
          std::pow(10000.0f, -static_cast<float>(i) / head_dim);
      const float angle = pos * freq;
      const float c = std::cos(angle);
      const float s = std::sin(angle);
      const float x0 = head[i];
      const float x1 = head[i + 1];
      head[i] = x0 * c - x1 * s;
      head[i + 1] = x0 * s + x1 * c;
    }
  }
}

void ApplyRopeTable(float* vec, int n_heads, int head_dim, int pos,
                    const RopeTable& table) {
  const float* row = table.Row(pos);
  for (int h = 0; h < n_heads; ++h) {
    float* head = vec + h * head_dim;
    for (int i = 0; i < head_dim; i += 2) {
      const float c = row[i];
      const float s = row[i + 1];
      const float x0 = head[i];
      const float x1 = head[i + 1];
      head[i] = x0 * c - x1 * s;
      head[i + 1] = x0 * s + x1 * c;
    }
  }
}

TransformerExecutor::TransformerExecutor(const ModelSpec* spec,
                                         WeightSource* weights,
                                         const EngineOptions& options,
                                         ComputeBackend* prefill_backend)
    : spec_(spec), weights_(weights), options_(options),
      kernels_(KernelsFor(options)),
      n_threads_(ResolvedThreads(options)),
      init_status_(spec->ValidateGeometry()) {
  if (n_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(n_threads_);
  }
  cpu_backend_ = std::make_unique<CpuBackend>(options_, pool_.get(), kernels_);
  prefill_backend_ =
      prefill_backend != nullptr ? prefill_backend : cpu_backend_.get();
}

Result<const uint8_t*> TransformerExecutor::Weights(TensorRole role,
                                                    int layer) {
  const TensorSpec* t = spec_->Find(role, layer);
  if (t == nullptr) {
    return Status(ErrorCode::kNotFound, "tensor spec missing");
  }
  return weights_->TensorData(t->index);
}

void TransformerExecutor::Rope(float* vec, int n_heads, int pos) const {
  const int head_dim = spec_->config().head_dim();
  const RopeTable& table = spec_->rope();
  if (options_.use_reference_kernels || table.empty() ||
      pos >= table.max_ctx()) {
    ApplyRope(vec, n_heads, head_dim, pos);
  } else {
    ApplyRopeTable(vec, n_heads, head_dim, pos, table);
  }
}

void TransformerExecutor::EnsureWorkspace(int m) {
  if (m <= workspace_m_) {
    return;
  }
  const LlmConfig& c = spec_->config();
  const size_t d = c.d_model, kv = c.kv_dim(), ff = c.d_ff;
  hiddens_.resize(m * d);
  norm_.resize(m * d);
  q_.resize(m * d);
  k_.resize(m * kv);
  v_.resize(m * kv);
  attn_.resize(m * d);
  proj_.resize(m * d);
  gate_.resize(m * ff);
  up_.resize(m * ff);
  down_.resize(m * d);
  // One attention-scores row per pool part (each (position, head) work item
  // fully rewrites its part's row before reading it), independent of m.
  scores_.resize(static_cast<size_t>(std::max(1, n_threads_)) * c.max_ctx);
  workspace_m_ = m;
}

Status TransformerExecutor::EmbedToken(TokenId token, float* hidden) {
  const LlmConfig& c = spec_->config();
  if (token < 0 || token >= c.vocab_size) {
    return InvalidArgument("token out of vocabulary");
  }
  auto embd = Weights(TensorRole::kTokEmbedding, -1);
  if (!embd.ok()) {
    return embd.status();
  }
  // Row `token` of the Q8_0 embedding matrix.
  const uint64_t row_blocks = c.d_model / kQ8BlockElems;
  const uint8_t* row = *embd + static_cast<uint64_t>(token) * row_blocks *
                                   kQ8BlockBytes;
  DequantizeQ8(row, c.d_model, hidden);
  return OkStatus();
}

void TransformerExecutor::Attend(int layer, int start, int m, const float* q,
                                 float* out, const KvCache& kv) {
  const LlmConfig& c = spec_->config();
  const int d = c.d_model;
  const int head_dim = c.head_dim();
  const int n_heads = c.n_heads;
  const int kv_dim = c.kv_dim();
  const int group = n_heads / c.n_kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const bool f16 = kv.storage() == KvStorage::kF16;

  // One flat work list of m x n_heads independent (position, head) items,
  // split into one contiguous range per pool part (the same static
  // partition as the matmul kernels, so the schedule — and the floats — is
  // identical at every thread count). Each item fully writes scores[0, pos]
  // before reading it, so one private max_ctx scratch row per part is
  // enough; the items themselves never share state.
  const uint64_t items = static_cast<uint64_t>(m) * n_heads;
  auto run_items = [&](uint64_t w0, uint64_t w1, float* scores) {
    for (uint64_t w = w0; w < w1; ++w) {
      const int i = static_cast<int>(w / n_heads);
      const int h = static_cast<int>(w % n_heads);
      const int pos = start + i;
      const int kv_head = h / group;
      const float* qh = q + static_cast<size_t>(i) * d + h * head_dim;
      const size_t head_off = static_cast<size_t>(kv_head) * head_dim;
      // Cache rows are contiguous in runs of RunLen(p) positions per plane
      // (one max_ctx run in flat mode, one page in paged mode); the walk
      // hops bases between runs but visits positions — and accumulates
      // floats — in exactly the flat order, so paging never moves a float.
      // The caller holds a step pin, so every page base stays valid across
      // this parallel region.
      if (f16) {
        for (int p = 0; p <= pos;) {
          const int run = std::min(kv.RunLen(p), pos + 1 - p);
          const uint16_t* kp = kv.KeyHalfAt(layer, p) + head_off;
          for (int r = 0; r < run; ++r, kp += kv_dim) {
            scores[p + r] = kernels_->dot_qk_f16(qh, kp, head_dim) * scale;
          }
          p += run;
        }
      } else {
        for (int p = 0; p <= pos;) {
          const int run = std::min(kv.RunLen(p), pos + 1 - p);
          const float* kp = kv.KeyAt(layer, p) + head_off;
          for (int r = 0; r < run; ++r, kp += kv_dim) {
            scores[p + r] = kernels_->dot_qk_f32(qh, kp, head_dim) * scale;
          }
          p += run;
        }
      }
      kernels_->softmax(scores, pos + 1);
      float* oh = out + static_cast<size_t>(i) * d + h * head_dim;
      std::fill(oh, oh + head_dim, 0.0f);
      if (f16) {
        for (int p = 0; p <= pos;) {
          const int run = std::min(kv.RunLen(p), pos + 1 - p);
          const uint16_t* vp = kv.ValueHalfAt(layer, p) + head_off;
          for (int r = 0; r < run; ++r, vp += kv_dim) {
            kernels_->axpy_f16(scores[p + r], vp, oh, head_dim);
          }
          p += run;
        }
      } else {
        for (int p = 0; p <= pos;) {
          const int run = std::min(kv.RunLen(p), pos + 1 - p);
          const float* vp = kv.ValueAt(layer, p) + head_off;
          for (int r = 0; r < run; ++r, vp += kv_dim) {
            kernels_->axpy_f32(scores[p + r], vp, oh, head_dim);
          }
          p += run;
        }
      }
    }
  };

  std::chrono::steady_clock::time_point t0;
  if (options_.collect_stats) {
    t0 = std::chrono::steady_clock::now();
  }
  // ~2 MACs per cached element per head; below the threshold the heads run
  // inline on the caller.
  const uint64_t work = items * static_cast<uint64_t>(start + m) * head_dim * 2;
  if (pool_ != nullptr && items > 1 && work >= kAttnParallelMinWork) {
    // Partition over part indices (chunk == 1 per part), not raw items, so
    // each part knows its own scratch row; the item split per part mirrors
    // the pool's contiguous static partition.
    const uint64_t n_parts = static_cast<uint64_t>(pool_->n_threads());
    pool_->ParallelFor(0, n_parts, [&](uint64_t p0, uint64_t p1) {
      for (uint64_t part = p0; part < p1; ++part) {
        run_items(part * items / n_parts, (part + 1) * items / n_parts,
                  scores_.data() + part * c.max_ctx);
      }
    });
  } else {
    run_items(0, items, scores_.data());
  }
  if (options_.collect_stats) {
    attend_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
}

Status TransformerExecutor::ForwardPosition(float* hidden, int pos,
                                            KvCache* kv) {
  const LlmConfig& c = spec_->config();
  const int d = c.d_model;
  const int kv_dim = c.kv_dim();
  EnsureWorkspace(1);
  // Paged caches: restore any spilled page and hold everything resident for
  // the position (appends mid-loop allocate born-pinned pages).
  TZLLM_ASSIGN_OR_RETURN(step_pin, kv->PinForStep());
  (void)step_pin;

  for (int l = 0; l < c.n_layers; ++l) {
    // --- Attention block. ---
    TZLLM_ASSIGN_OR_RETURN(w_norm, Weights(TensorRole::kAttnNorm, l));
    kernels_->rms_norm(hidden, reinterpret_cast<const float*>(w_norm),
                       norm_.data(), d);

    TZLLM_ASSIGN_OR_RETURN(wq, Weights(TensorRole::kWq, l));
    TZLLM_ASSIGN_OR_RETURN(wk, Weights(TensorRole::kWk, l));
    TZLLM_ASSIGN_OR_RETURN(wv, Weights(TensorRole::kWv, l));
    const MatTarget qkv[] = {
        {wq, static_cast<uint64_t>(d), q_.data()},
        {wk, static_cast<uint64_t>(kv_dim), k_.data()},
        {wv, static_cast<uint64_t>(kv_dim), v_.data()}};
    TZLLM_RETURN_IF_ERROR(cpu_backend_->MatVec(norm_.data(), d, qkv, 3));

    Rope(q_.data(), c.n_heads, pos);
    Rope(k_.data(), c.n_kv_heads, pos);
    TZLLM_RETURN_IF_ERROR(kv->Append(l, k_.data(), v_.data()));

    Attend(l, pos, /*m=*/1, q_.data(), attn_.data(), *kv);

    TZLLM_ASSIGN_OR_RETURN(wo, Weights(TensorRole::kWo, l));
    const MatTarget proj[] = {{wo, static_cast<uint64_t>(d), proj_.data()}};
    TZLLM_RETURN_IF_ERROR(cpu_backend_->MatVec(attn_.data(), d, proj, 1));
    for (int i = 0; i < d; ++i) {
      hidden[i] += proj_[i];
    }

    // --- FFN block (SwiGLU). ---
    TZLLM_ASSIGN_OR_RETURN(w_ffn_norm, Weights(TensorRole::kFfnNorm, l));
    kernels_->rms_norm(hidden, reinterpret_cast<const float*>(w_ffn_norm),
                       norm_.data(), d);

    TZLLM_ASSIGN_OR_RETURN(w_gate, Weights(TensorRole::kWGate, l));
    TZLLM_ASSIGN_OR_RETURN(w_up, Weights(TensorRole::kWUp, l));
    TZLLM_ASSIGN_OR_RETURN(w_down, Weights(TensorRole::kWDown, l));
    const MatTarget gate_up[] = {
        {w_gate, static_cast<uint64_t>(c.d_ff), gate_.data()},
        {w_up, static_cast<uint64_t>(c.d_ff), up_.data()}};
    TZLLM_RETURN_IF_ERROR(cpu_backend_->MatVec(norm_.data(), d, gate_up, 2));
    for (int i = 0; i < c.d_ff; ++i) {
      const float g = gate_[i];
      const float silu = g / (1.0f + std::exp(-g));
      gate_[i] = silu * up_[i];
    }
    const MatTarget down[] = {{w_down, static_cast<uint64_t>(d), down_.data()}};
    TZLLM_RETURN_IF_ERROR(cpu_backend_->MatVec(gate_.data(), c.d_ff, down, 1));
    for (int i = 0; i < d; ++i) {
      hidden[i] += down_[i];
    }
  }
  kv->FinishPosition();
  return OkStatus();
}

Status TransformerExecutor::ForwardChunk(const TokenId* tokens, int m,
                                         KvCache* kv) {
  const LlmConfig& c = spec_->config();
  const int d = c.d_model;
  const int kv_dim = c.kv_dim();
  const int start = kv->seq_len();
  if (start + m > c.max_ctx) {
    return ResourceExhausted("KV cache full (context length exceeded)");
  }
  EnsureWorkspace(m);
  TZLLM_ASSIGN_OR_RETURN(step_pin, kv->PinForStep());
  (void)step_pin;
  // Every heavyweight matmul of the chunk goes through the backend seam as
  // a grouped submission; the submit+Await pairs here make this the serial
  // schedule (the pipelined one lives in ForwardPromptPipelined).
  ComputeBackend* backend = prefill_backend_;

  for (int i = 0; i < m; ++i) {
    TZLLM_RETURN_IF_ERROR(EmbedToken(tokens[i], hiddens_.data() + i * d));
  }

  for (int l = 0; l < c.n_layers; ++l) {
    // --- Attention block, all m positions per weight pass. ---
    TZLLM_ASSIGN_OR_RETURN(w_norm, Weights(TensorRole::kAttnNorm, l));
    for (int i = 0; i < m; ++i) {
      kernels_->rms_norm(hiddens_.data() + i * d,
                         reinterpret_cast<const float*>(w_norm),
                         norm_.data() + i * d, d);
    }
    acts_.QuantizeRows(norm_.data(), m, d);

    TZLLM_ASSIGN_OR_RETURN(wq, Weights(TensorRole::kWq, l));
    TZLLM_ASSIGN_OR_RETURN(wk, Weights(TensorRole::kWk, l));
    TZLLM_ASSIGN_OR_RETURN(wv, Weights(TensorRole::kWv, l));
    const MatMatOp qkv[] = {
        {wq, static_cast<uint64_t>(d), q_.data()},
        {wk, static_cast<uint64_t>(kv_dim), k_.data()},
        {wv, static_cast<uint64_t>(kv_dim), v_.data()}};
    TZLLM_ASSIGN_OR_RETURN(qkv_ticket,
                           backend->SubmitMatMatGroup(qkv, 3, acts_));
    TZLLM_RETURN_IF_ERROR(backend->Await(qkv_ticket));

    for (int i = 0; i < m; ++i) {
      Rope(q_.data() + i * d, c.n_heads, start + i);
      Rope(k_.data() + i * kv_dim, c.n_kv_heads, start + i);
    }
    TZLLM_RETURN_IF_ERROR(kv->AppendBatch(l, m, k_.data(), v_.data()));

    // The whole chunk's attention is one fused call: every (position, head)
    // pair is independent once the chunk's K/V rows are in the cache;
    // causality is the p <= pos bound inside Attend.
    Attend(l, start, m, q_.data(), attn_.data(), *kv);

    // --- Post-attention segment (Wo + residual + FFN), one fused
    // submission. ---
    acts_.QuantizeRows(attn_.data(), m, d);
    TZLLM_ASSIGN_OR_RETURN(
        tail, BuildLayerTail(l, m, hiddens_.data(), proj_.data(),
                             norm_.data(), gate_.data(), up_.data(),
                             down_.data(), &acts_));
    TZLLM_ASSIGN_OR_RETURN(tail_ticket, backend->SubmitLayerTail(tail, acts_));
    TZLLM_RETURN_IF_ERROR(backend->Await(tail_ticket));
  }
  kv->FinishPositions(m);
  return OkStatus();
}

Result<LayerTailOp> TransformerExecutor::BuildLayerTail(
    int l, int m, float* hiddens, float* proj, float* norm, float* gate,
    float* up, float* down, Q8Acts* acts) {
  const LlmConfig& c = spec_->config();
  TZLLM_ASSIGN_OR_RETURN(wo, Weights(TensorRole::kWo, l));
  TZLLM_ASSIGN_OR_RETURN(w_ffn_norm, Weights(TensorRole::kFfnNorm, l));
  TZLLM_ASSIGN_OR_RETURN(w_gate, Weights(TensorRole::kWGate, l));
  TZLLM_ASSIGN_OR_RETURN(w_up, Weights(TensorRole::kWUp, l));
  TZLLM_ASSIGN_OR_RETURN(w_down, Weights(TensorRole::kWDown, l));
  LayerTailOp tail;
  tail.m = m;
  tail.d_model = c.d_model;
  tail.d_ff = c.d_ff;
  tail.wo = wo;
  tail.ffn_norm_gain = reinterpret_cast<const float*>(w_ffn_norm);
  tail.w_gate = w_gate;
  tail.w_up = w_up;
  tail.w_down = w_down;
  tail.hiddens = hiddens;
  tail.proj = proj;
  tail.norm = norm;
  tail.gate = gate;
  tail.up = up;
  tail.down = down;
  tail.acts = acts;
  return tail;
}

Status TransformerExecutor::PipeAdmit(PipeChunk* ch, int index, int start,
                                      const TokenId* tokens, int m) {
  const LlmConfig& c = spec_->config();
  const size_t d = c.d_model;
  // Buffers are sized up front by ForwardPromptPipelined, never here: the
  // OTHER slot's in-flight jobs hold raw pointers into its vectors (the
  // zero-copy contract), so admission must not reallocate anything.
  if (m > pipe_m_) {
    return Internal("pipeline slot admitted a chunk larger than its sizing");
  }
  ch->index = index;
  ch->start = start;
  ch->m = m;
  ch->layer = 0;
  ch->attend_next = false;
  ch->qkv_ticket = kCompletedTicket;
  ch->tail_ticket = kCompletedTicket;
  for (int i = 0; i < m; ++i) {
    TZLLM_RETURN_IF_ERROR(
        EmbedToken(tokens[i], ch->hiddens.data() + i * static_cast<int>(d)));
  }
  return OkStatus();
}

Status TransformerExecutor::PipeAdvance(PipeChunk* ch, KvCache* kv) {
  const LlmConfig& c = spec_->config();
  const int d = c.d_model;
  const int kv_dim = c.kv_dim();
  ComputeBackend* backend = prefill_backend_;
  const int l = ch->layer;

  if (!ch->attend_next) {
    // S0: the previous layer's tail must have landed in hiddens before the
    // attention norm reads it. While we waited (and while we norm +
    // quantize here), the other chunk's jobs run on the NPU timeline.
    TZLLM_RETURN_IF_ERROR(backend->Await(ch->tail_ticket));
    ch->tail_ticket = kCompletedTicket;
    TZLLM_ASSIGN_OR_RETURN(w_norm, Weights(TensorRole::kAttnNorm, l));
    for (int i = 0; i < ch->m; ++i) {
      kernels_->rms_norm(ch->hiddens.data() + i * d,
                         reinterpret_cast<const float*>(w_norm),
                         ch->norm.data() + i * d, d);
    }
    ch->qkv_acts.QuantizeRows(ch->norm.data(), ch->m, d);
    TZLLM_ASSIGN_OR_RETURN(wq, Weights(TensorRole::kWq, l));
    TZLLM_ASSIGN_OR_RETURN(wk, Weights(TensorRole::kWk, l));
    TZLLM_ASSIGN_OR_RETURN(wv, Weights(TensorRole::kWv, l));
    const MatMatOp qkv[] = {
        {wq, static_cast<uint64_t>(d), ch->q.data()},
        {wk, static_cast<uint64_t>(kv_dim), ch->k.data()},
        {wv, static_cast<uint64_t>(kv_dim), ch->v.data()}};
    TZLLM_ASSIGN_OR_RETURN(ticket,
                           backend->SubmitMatMatGroup(qkv, 3, ch->qkv_acts));
    ch->qkv_ticket = ticket;
    ch->attend_next = true;
    return OkStatus();
  }

  // S1: QKV landed; RoPE + KV append + attention on the CPU, then the whole
  // post-attention segment as one fused job. The cross-chunk dependency —
  // this chunk's attention reads every earlier chunk's KV rows at this
  // layer — holds because the wavefront advances chunks in order within
  // each layer.
  TZLLM_RETURN_IF_ERROR(backend->Await(ch->qkv_ticket));
  ch->qkv_ticket = kCompletedTicket;
  for (int i = 0; i < ch->m; ++i) {
    Rope(ch->q.data() + i * d, c.n_heads, ch->start + i);
    Rope(ch->k.data() + i * kv_dim, c.n_kv_heads, ch->start + i);
  }
  TZLLM_RETURN_IF_ERROR(
      kv->AppendBatch(l, ch->m, ch->k.data(), ch->v.data()));
  Attend(l, ch->start, ch->m, ch->q.data(), ch->attn.data(), *kv);

  ch->attn_acts.QuantizeRows(ch->attn.data(), ch->m, d);
  TZLLM_ASSIGN_OR_RETURN(
      tail, BuildLayerTail(l, ch->m, ch->hiddens.data(), ch->proj.data(),
                           ch->norm.data(), ch->gate.data(), ch->up.data(),
                           ch->down.data(), &ch->attn_acts));
  TZLLM_ASSIGN_OR_RETURN(ticket,
                         backend->SubmitLayerTail(tail, ch->attn_acts));
  ch->tail_ticket = ticket;
  ch->attend_next = false;
  ++ch->layer;
  return OkStatus();
}

Result<std::vector<float>> TransformerExecutor::ForwardPromptPipelined(
    const std::vector<TokenId>& tokens, KvCache* kv) {
  const LlmConfig& c = spec_->config();
  const size_t chunk = static_cast<size_t>(std::max(1, options_.prefill_batch));
  const int base = kv->seq_len();
  if (base + static_cast<int>(tokens.size()) > c.max_ctx) {
    return Status(ErrorCode::kResourceExhausted,
                  "KV cache full (context length exceeded)");
  }
  EnsureWorkspace(1);  // Attention scratch (scores_) and the logits path.
  // One pin spans the whole wavefront: chunk attentions read earlier
  // chunks' pages while later chunks append, so nothing may move.
  TZLLM_ASSIGN_OR_RETURN(step_pin, kv->PinForStep());
  (void)step_pin;
  const int n_chunks =
      static_cast<int>((tokens.size() + chunk - 1) / chunk);
  // Size the slots the wavefront will actually occupy (a single-chunk
  // prompt never touches the second one) for the largest chunk BEFORE it
  // starts: once jobs are in flight they hold raw pointers into these
  // vectors, so no admission may reallocate them (PipeAdmit enforces
  // this).
  const int m_max = static_cast<int>(std::min(chunk, tokens.size()));
  const int slots_needed = std::min(2, n_chunks);
  if (m_max > pipe_m_ || slots_needed > pipe_slots_) {
    const size_t d = c.d_model, kvd = c.kv_dim(), ff = c.d_ff;
    const size_t m_new = static_cast<size_t>(std::max(m_max, pipe_m_));
    const int n_size = std::max(slots_needed, pipe_slots_);
    for (int s = 0; s < n_size; ++s) {
      PipeChunk& slot = pipe_[s];
      slot.hiddens.resize(m_new * d);
      slot.norm.resize(m_new * d);
      slot.q.resize(m_new * d);
      slot.k.resize(m_new * kvd);
      slot.v.resize(m_new * kvd);
      slot.attn.resize(m_new * d);
      slot.proj.resize(m_new * d);
      slot.gate.resize(m_new * ff);
      slot.up.resize(m_new * ff);
      slot.down.resize(m_new * d);
    }
    pipe_m_ = static_cast<int>(m_new);
    pipe_slots_ = n_size;
  }

  // Run the wavefront; on any error the backend is drained before
  // returning so no in-flight job writes through freed state.
  auto run = [&]() -> Result<PipeChunk*> {
    int next_chunk = 0;
    PipeChunk* last = nullptr;
    std::vector<PipeChunk*> active;
    auto admit = [&](PipeChunk* slot) -> Status {
      const size_t off = static_cast<size_t>(next_chunk) * chunk;
      const int m =
          static_cast<int>(std::min(chunk, tokens.size() - off));
      TZLLM_RETURN_IF_ERROR(PipeAdmit(slot, next_chunk,
                                      base + static_cast<int>(off),
                                      tokens.data() + off, m));
      active.push_back(slot);
      ++next_chunk;
      return OkStatus();
    };
    for (int s = 0; s < 2 && next_chunk < n_chunks; ++s) {
      TZLLM_RETURN_IF_ERROR(admit(&pipe_[s]));
    }
    while (!active.empty()) {
      // Advance every in-flight chunk one stage, in chunk order — that
      // order is what serializes per-layer KV appends across chunks.
      for (PipeChunk* ch : active) {
        TZLLM_RETURN_IF_ERROR(PipeAdvance(ch, kv));
      }
      // Retire chunks that submitted their last layer tail; their slot is
      // refilled with the next chunk, which becomes the youngest member of
      // the wavefront.
      for (size_t i = 0; i < active.size();) {
        PipeChunk* ch = active[i];
        if (ch->layer < c.n_layers || ch->attend_next) {
          ++i;
          continue;
        }
        TZLLM_RETURN_IF_ERROR(prefill_backend_->Await(ch->tail_ticket));
        ch->tail_ticket = kCompletedTicket;
        kv->FinishPositions(ch->m);
        if (ch->index == n_chunks - 1) {
          last = ch;
        }
        active.erase(active.begin() + i);
        if (next_chunk < n_chunks) {
          TZLLM_RETURN_IF_ERROR(admit(ch));
        }
      }
    }
    if (last == nullptr) {
      return Status(ErrorCode::kInternal, "pipelined prefill lost its tail");
    }
    return last;
  };

  auto last = run();
  if (!last.ok()) {
    // Drain in-flight jobs before surfacing the error: their payloads write
    // through pointers into chunk workspaces this frame owns. The original
    // error is the one the caller needs; Sync's is at best a duplicate.
    (void)prefill_backend_->Sync();
    return last.status();
  }
  return Logits((*last)->hiddens.data() +
                static_cast<size_t>((*last)->m - 1) * c.d_model);
}

Status TransformerExecutor::LogitsInto(const float* hidden, float* out) {
  const LlmConfig& c = spec_->config();
  auto w_norm = Weights(TensorRole::kOutputNorm, -1);
  if (!w_norm.ok()) {
    return w_norm.status();
  }
  EnsureWorkspace(1);
  kernels_->rms_norm(hidden, reinterpret_cast<const float*>(*w_norm),
                     norm_.data(), c.d_model);
  auto head = Weights(TensorRole::kLmHead, -1);
  if (!head.ok()) {
    return head.status();
  }
  const MatTarget logits[] = {
      {*head, static_cast<uint64_t>(c.vocab_size), out}};
  return cpu_backend_->MatVec(norm_.data(), c.d_model, logits, 1);
}

Result<std::vector<float>> TransformerExecutor::Logits(const float* hidden) {
  std::vector<float> logits(spec_->config().vocab_size);
  TZLLM_RETURN_IF_ERROR(LogitsInto(hidden, logits.data()));
  return logits;
}

Result<std::vector<float>> TransformerExecutor::Prefill(
    const std::vector<TokenId>& tokens, KvCache* kv) {
  TZLLM_RETURN_IF_ERROR(init_status_);
  if (tokens.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty prompt");
  }
  if (!options_.use_reference_kernels && options_.prefill_batch > 1 &&
      tokens.size() > 1) {
    return ForwardPrompt(tokens, kv);
  }
  return PrefillPerPosition(tokens, kv);
}

Result<std::vector<float>> TransformerExecutor::PrefillPerPosition(
    const std::vector<TokenId>& tokens, KvCache* kv) {
  EnsureWorkspace(1);
  // hiddens_ row 0 is free here: ForwardPosition only touches the other
  // workspace buffers, so the residual stream can live in the workspace
  // instead of a fresh allocation per call.
  float* hidden = hiddens_.data();
  for (size_t i = 0; i < tokens.size(); ++i) {
    TZLLM_RETURN_IF_ERROR(EmbedToken(tokens[i], hidden));
    TZLLM_RETURN_IF_ERROR(ForwardPosition(hidden, kv->seq_len(), kv));
  }
  return Logits(hidden);
}

Result<std::vector<float>> TransformerExecutor::ForwardPrompt(
    const std::vector<TokenId>& tokens, KvCache* kv) {
  TZLLM_RETURN_IF_ERROR(init_status_);
  if (tokens.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty prompt");
  }
  if (options_.use_reference_kernels) {
    // The batched chunks are quantized-kernel only; a reference-configured
    // executor must stay on the seed path rather than mix numerics.
    return PrefillPerPosition(tokens, kv);
  }
  if (prefill_backend_->asynchronous() && options_.npu_pipeline) {
    // NPU offload: the pipelined wavefront overlaps one chunk's CPU
    // attention with another chunk's fused jobs. Same floats — only
    // independent work is reordered. npu_pipeline=false keeps an async
    // backend on the serial chunk schedule below (submit, then await at
    // each dependency) — the {serial, pipelined} axis of the
    // fault-recovery matrix.
    return ForwardPromptPipelined(tokens, kv);
  }
  const size_t chunk =
      static_cast<size_t>(std::max(1, options_.prefill_batch));
  const int d = spec_->config().d_model;
  size_t last_m = 0;
  for (size_t off = 0; off < tokens.size(); off += last_m) {
    last_m = std::min(chunk, tokens.size() - off);
    TZLLM_RETURN_IF_ERROR(
        ForwardChunk(tokens.data() + off, static_cast<int>(last_m), kv));
  }
  return Logits(hiddens_.data() + (last_m - 1) * d);
}

Status TransformerExecutor::DecodeStepInto(TokenId token, KvCache* kv,
                                           float* logits) {
  TZLLM_RETURN_IF_ERROR(init_status_);
  EnsureWorkspace(1);
  float* hidden = hiddens_.data();
  TZLLM_RETURN_IF_ERROR(EmbedToken(token, hidden));
  TZLLM_RETURN_IF_ERROR(ForwardPosition(hidden, kv->seq_len(), kv));
  return LogitsInto(hidden, logits);
}

Result<std::vector<float>> TransformerExecutor::DecodeStep(TokenId token,
                                                           KvCache* kv) {
  std::vector<float> logits(spec_->config().vocab_size);
  TZLLM_RETURN_IF_ERROR(DecodeStepInto(token, kv, logits.data()));
  return logits;
}

Status TransformerExecutor::DecodeStepBatch(const DecodeEntry* entries,
                                            int n) {
  TZLLM_RETURN_IF_ERROR(init_status_);
  if (entries == nullptr || n <= 0) {
    return InvalidArgument("empty decode batch");
  }
  if (n == 1 || options_.use_reference_kernels) {
    // A single session gains nothing from the MatMat path, and a reference
    // engine must stay on the seed per-position kernels (no mixed numerics);
    // both route through the solo step, so one-session serving IS solo
    // decode, not a claim about it.
    for (int i = 0; i < n; ++i) {
      TZLLM_RETURN_IF_ERROR(
          DecodeStepInto(entries[i].token, entries[i].kv, entries[i].logits));
    }
    return OkStatus();
  }
  const LlmConfig& c = spec_->config();
  const int d = c.d_model;
  const int kv_dim = c.kv_dim();
  for (int i = 0; i < n; ++i) {
    if (entries[i].kv == nullptr || entries[i].logits == nullptr) {
      return InvalidArgument("decode batch entry missing its cache or logits");
    }
    if (entries[i].kv->seq_len() >= c.max_ctx) {
      return ResourceExhausted("KV cache full (context length exceeded)");
    }
  }
  EnsureWorkspace(n);
  // Pin every cache in the group for the whole step: the per-layer loop
  // interleaves session appends, and an unpinned neighbor's page could
  // otherwise be evicted between a session's append and its attend.
  std::vector<KvCachePin> step_pins;
  step_pins.reserve(n);
  for (int i = 0; i < n; ++i) {
    auto pin = entries[i].kv->PinForStep();
    if (!pin.ok()) {
      return pin.status();
    }
    step_pins.push_back(std::move(*pin));
  }
  for (int i = 0; i < n; ++i) {
    TZLLM_RETURN_IF_ERROR(
        EmbedToken(entries[i].token, hiddens_.data() + i * d));
  }

  for (int l = 0; l < c.n_layers; ++l) {
    // --- Attention block: all n sessions share each weight pass. ---
    TZLLM_ASSIGN_OR_RETURN(w_norm, Weights(TensorRole::kAttnNorm, l));
    for (int i = 0; i < n; ++i) {
      kernels_->rms_norm(hiddens_.data() + i * d,
                         reinterpret_cast<const float*>(w_norm),
                         norm_.data() + i * d, d);
    }
    acts_.QuantizeRows(norm_.data(), n, d);

    TZLLM_ASSIGN_OR_RETURN(wq, Weights(TensorRole::kWq, l));
    TZLLM_ASSIGN_OR_RETURN(wk, Weights(TensorRole::kWk, l));
    TZLLM_ASSIGN_OR_RETURN(wv, Weights(TensorRole::kWv, l));
    const MatMatOp qkv[] = {
        {wq, static_cast<uint64_t>(d), q_.data()},
        {wk, static_cast<uint64_t>(kv_dim), k_.data()},
        {wv, static_cast<uint64_t>(kv_dim), v_.data()}};
    TZLLM_ASSIGN_OR_RETURN(qkv_ticket,
                           cpu_backend_->SubmitMatMatGroup(qkv, 3, acts_));
    TZLLM_RETURN_IF_ERROR(cpu_backend_->Await(qkv_ticket));

    // Per-session RoPE, KV append and attention: each row rotates at ITS
    // cache's current position and attends only against its own cache —
    // exactly the solo step's m=1 Attend call (same work partition, same
    // inline/pool threshold), so batching cannot mix sessions or move a
    // float. Entries must reference distinct caches; seq_len() only
    // advances at FinishPosition below, so a duplicated cache would stack
    // two appends on one position.
    for (int i = 0; i < n; ++i) {
      const int pos = entries[i].kv->seq_len();
      Rope(q_.data() + i * d, c.n_heads, pos);
      Rope(k_.data() + i * kv_dim, c.n_kv_heads, pos);
      TZLLM_RETURN_IF_ERROR(entries[i].kv->Append(
          l, k_.data() + i * kv_dim, v_.data() + i * kv_dim));
      Attend(l, pos, /*m=*/1, q_.data() + i * d, attn_.data() + i * d,
             *entries[i].kv);
    }

    // --- Post-attention segment, one fused pass over all n rows. ---
    acts_.QuantizeRows(attn_.data(), n, d);
    TZLLM_ASSIGN_OR_RETURN(
        tail, BuildLayerTail(l, n, hiddens_.data(), proj_.data(),
                             norm_.data(), gate_.data(), up_.data(),
                             down_.data(), &acts_));
    TZLLM_ASSIGN_OR_RETURN(tail_ticket,
                           cpu_backend_->SubmitLayerTail(tail, acts_));
    TZLLM_RETURN_IF_ERROR(cpu_backend_->Await(tail_ticket));
  }

  for (int i = 0; i < n; ++i) {
    entries[i].kv->FinishPosition();
  }
  // One shared LM-head pass: norm every session's hidden row, quantize them
  // together, and stream the vocabulary weights ONCE for the whole batch
  // (per-session LogitsInto would re-read the largest matrix in the model n
  // times per step). Each row norms, quantizes and dots independently —
  // bit-identical to the solo logits path, like every other batched matmul
  // in this step.
  TZLLM_ASSIGN_OR_RETURN(w_out_norm, Weights(TensorRole::kOutputNorm, -1));
  for (int i = 0; i < n; ++i) {
    kernels_->rms_norm(hiddens_.data() + i * d,
                       reinterpret_cast<const float*>(w_out_norm),
                       norm_.data() + i * d, d);
  }
  acts_.QuantizeRows(norm_.data(), n, d);
  TZLLM_ASSIGN_OR_RETURN(w_head, Weights(TensorRole::kLmHead, -1));
  logits_rows_.resize(static_cast<size_t>(n) * c.vocab_size);
  const MatMatOp lm[] = {
      {w_head, static_cast<uint64_t>(c.vocab_size), logits_rows_.data()}};
  TZLLM_ASSIGN_OR_RETURN(lm_ticket,
                         cpu_backend_->SubmitMatMatGroup(lm, 1, acts_));
  TZLLM_RETURN_IF_ERROR(cpu_backend_->Await(lm_ticket));
  for (int i = 0; i < n; ++i) {
    std::memcpy(entries[i].logits,
                logits_rows_.data() + static_cast<size_t>(i) * c.vocab_size,
                sizeof(float) * c.vocab_size);
  }
  return OkStatus();
}

Status TransformerExecutor::PrefillChunk(const TokenId* tokens, int m,
                                         bool per_position, KvCache* kv,
                                         float* logits) {
  TZLLM_RETURN_IF_ERROR(init_status_);
  if (tokens == nullptr || m <= 0) {
    return InvalidArgument("empty prefill chunk");
  }
  if (per_position) {
    // The seed schedule, one chunk's worth. Each position restarts from its
    // embedding, so nothing carries across chunks but the KV cache —
    // chunking at ANY boundary reproduces PrefillPerPosition exactly.
    EnsureWorkspace(1);
    float* hidden = hiddens_.data();
    for (int i = 0; i < m; ++i) {
      TZLLM_RETURN_IF_ERROR(EmbedToken(tokens[i], hidden));
      TZLLM_RETURN_IF_ERROR(ForwardPosition(hidden, kv->seq_len(), kv));
    }
    return logits != nullptr ? LogitsInto(hidden, logits) : OkStatus();
  }
  // The serial batched schedule, one chunk per call: identical to
  // ForwardPrompt's loop body, so a prompt fed in prefill_batch-sized
  // chunks lands the same KV rows and logits as the one-shot call.
  TZLLM_RETURN_IF_ERROR(ForwardChunk(tokens, m, kv));
  if (logits != nullptr) {
    return LogitsInto(
        hiddens_.data() + static_cast<size_t>(m - 1) * spec_->config().d_model,
        logits);
  }
  return OkStatus();
}

}  // namespace tzllm
