// Functional transformer forward pass (real math) over Q8_0 weights: RMSNorm
// -> GQA attention with RoPE -> SwiGLU FFN, pre-norm residual architecture —
// the computation llama.cpp performs for the Llama family.
//
// Weights are pulled through the WeightSource interface so the same executor
// runs against host memory (REE baselines) or TZASC-protected secure memory
// (the LLM TA): the integration tests assert bit-identical logits between
// the two, proving the protected path computes the same function.

#ifndef SRC_LLM_EXECUTOR_H_
#define SRC_LLM_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model_spec.h"
#include "src/llm/tokenizer.h"

namespace tzllm {

// Access to tensor bytes by spec index. Implementations: HostWeightSource
// (plain buffers) and the TA's secure-memory source.
class WeightSource {
 public:
  virtual ~WeightSource() = default;
  // Returns a pointer to the tensor's bytes (layout per TensorSpec dtype),
  // or an error if the tensor is unavailable.
  virtual Result<const uint8_t*> TensorData(int tensor_index) = 0;
};

class HostWeightSource : public WeightSource {
 public:
  explicit HostWeightSource(std::vector<Tensor> tensors)
      : tensors_(std::move(tensors)) {}

  Result<const uint8_t*> TensorData(int tensor_index) override {
    if (tensor_index < 0 ||
        tensor_index >= static_cast<int>(tensors_.size())) {
      return Status(ErrorCode::kInvalidArgument, "bad tensor index");
    }
    if (!tensors_[tensor_index].materialized()) {
      return Status(ErrorCode::kFailedPrecondition, "tensor not materialized");
    }
    return tensors_[tensor_index].data.data();
  }

  const std::vector<Tensor>& tensors() const { return tensors_; }

 private:
  std::vector<Tensor> tensors_;
};

class TransformerExecutor {
 public:
  TransformerExecutor(const ModelSpec* spec, WeightSource* weights);

  // Runs the prompt through the model, filling the KV cache. Returns the
  // logits of the last position (vocab_size floats).
  Result<std::vector<float>> Prefill(const std::vector<TokenId>& tokens,
                                     KvCache* kv);

  // One incremental decode step for `token` at the cache's current position.
  Result<std::vector<float>> DecodeStep(TokenId token, KvCache* kv);

 private:
  // Forward pass of one position given its embedding in `hidden`.
  Status ForwardPosition(std::vector<float>* hidden, int pos, KvCache* kv);
  Result<std::vector<float>> Logits(const std::vector<float>& hidden);
  Status EmbedToken(TokenId token, std::vector<float>* hidden);

  Result<const uint8_t*> Weights(TensorRole role, int layer);

  const ModelSpec* spec_;
  WeightSource* weights_;
};

// Numerics helpers shared with tests.
void RmsNorm(const float* x, const float* gain, float* out, int n);
void Softmax(float* x, int n);
void ApplyRope(float* vec, int n_heads, int head_dim, int pos);

}  // namespace tzllm

#endif  // SRC_LLM_EXECUTOR_H_
