// Functional transformer forward pass (real math) over Q8_0 weights: RMSNorm
// -> GQA attention with RoPE -> SwiGLU FFN, pre-norm residual architecture —
// the computation llama.cpp performs for the Llama family.
//
// Weights are pulled through the WeightSource interface so the same executor
// runs against host memory (REE baselines) or TZASC-protected secure memory
// (the LLM TA): the integration tests assert bit-identical logits between
// the two, proving the protected path computes the same function.

#ifndef SRC_LLM_EXECUTOR_H_
#define SRC_LLM_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/llm/backend/backend.h"
#include "src/llm/engine_options.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model_spec.h"
#include "src/llm/simd/kernels.h"
#include "src/llm/tokenizer.h"

namespace tzllm {

// Access to tensor bytes by spec index. Implementations: HostWeightSource
// (plain buffers) and the TA's secure-memory source.
class WeightSource {
 public:
  virtual ~WeightSource() = default;
  // Returns a pointer to the tensor's bytes (layout per TensorSpec dtype),
  // or an error if the tensor is unavailable.
  virtual Result<const uint8_t*> TensorData(int tensor_index) = 0;
};

class HostWeightSource : public WeightSource {
 public:
  explicit HostWeightSource(std::vector<Tensor> tensors)
      : tensors_(std::move(tensors)) {}

  Result<const uint8_t*> TensorData(int tensor_index) override {
    if (tensor_index < 0 ||
        tensor_index >= static_cast<int>(tensors_.size())) {
      return Status(ErrorCode::kInvalidArgument, "bad tensor index");
    }
    if (!tensors_[tensor_index].materialized()) {
      return Status(ErrorCode::kFailedPrecondition, "tensor not materialized");
    }
    return tensors_[tensor_index].data.data();
  }

  const std::vector<Tensor>& tensors() const { return tensors_; }

 private:
  std::vector<Tensor> tensors_;
};

class TransformerExecutor {
 public:
  // `prefill_backend` (optional, non-owning, must outlive the executor)
  // swaps where the batched-prefill matmuls run: nullptr keeps them on the
  // executor's own CpuBackend; the LLM TA passes an NpuBackend to offload
  // them through the secure co-driver. Decode and the per-position path
  // always run on the CPU backend regardless.
  TransformerExecutor(const ModelSpec* spec, WeightSource* weights,
                      const EngineOptions& options = {},
                      ComputeBackend* prefill_backend = nullptr);

  // Runs the prompt through the model, filling the KV cache. Returns the
  // logits of the last position (vocab_size floats). Dispatches to
  // ForwardPrompt (batched) or the per-position path per `options`.
  Result<std::vector<float>> Prefill(const std::vector<TokenId>& tokens,
                                     KvCache* kv);

  // Batched prefill: runs the prompt through each layer `prefill_batch`
  // positions at a time, so every weight row is streamed once per chunk
  // (MatMatQ8) instead of once per position. With use_reference_kernels it
  // degrades to the per-position seed path (no mixed numerics). On an
  // asynchronous prefill backend (NPU offload) it runs the pipelined
  // schedule: two chunks in flight, so one chunk's CPU attention overlaps
  // the other chunk's fused matmul jobs — same floats, reordered only
  // across independent work.
  Result<std::vector<float>> ForwardPrompt(const std::vector<TokenId>& tokens,
                                           KvCache* kv);

  // One incremental decode step for `token` at the cache's current position.
  Result<std::vector<float>> DecodeStep(TokenId token, KvCache* kv);

  // Same step into a caller-provided buffer of vocab_size floats — the
  // allocation-free decode path DecodeStep routes through (ROADMAP: the
  // by-value API allocated the logits vector every step).
  Status DecodeStepInto(TokenId token, KvCache* kv, float* logits);

  // One session's slice of a batched decode step: its pending token, its
  // private KV cache (positions may differ per session) and a vocab_size
  // logits row to fill.
  struct DecodeEntry {
    TokenId token = 0;
    KvCache* kv = nullptr;
    float* logits = nullptr;
  };

  // One decode step for `n` independent sessions at once: per layer, ONE
  // MatMatQ8 over all sessions' activation rows (weights stream once per
  // step regardless of batch size — the same reuse that made batched
  // prefill pay) instead of n MatVecs, then per-session attention against
  // each session's own cache at its own position. Bit-identical per session
  // to running DecodeStepInto solo: the row kernels, the fused layer tail
  // and the per-session m=1 attention are exactly the solo path's
  // computations (the backend numerics contract batched prefill already
  // rests on). n == 1 and reference-kernel engines route straight through
  // DecodeStepInto. Each session's cache advances one position on success.
  Status DecodeStepBatch(const DecodeEntry* entries, int n);

  // Advances a prompt by one chunk of `m` positions into `kv` — the serving
  // scheduler's prefill quantum. `per_position` selects the seed
  // per-position path (reference kernels / prefill_batch <= 1 /
  // single-token prompts), matching Prefill's dispatch so a chunked prompt
  // is bit-identical to the one-shot call. When `logits` is non-null (the
  // prompt's final chunk) the last position's logits are computed into it
  // (vocab_size floats).
  Status PrefillChunk(const TokenId* tokens, int m, bool per_position,
                      KvCache* kv, float* logits);

  const EngineOptions& options() const { return options_; }

  // Wall-clock seconds spent in Attend since construction / ResetStats.
  // Only accumulated when options.collect_stats is set.
  double attend_seconds() const { return attend_seconds_; }
  void ResetStats() { attend_seconds_ = 0.0; }

 private:
  // One prompt chunk flowing through the pipelined prefill schedule. Each
  // slot owns a full activation workspace so two chunks can be in flight at
  // once: while this chunk's fused layer job runs on the NPU timeline, the
  // other chunk's attention runs on the CPU against its own buffers. Every
  // buffer a submitted job references lives here, which is what makes the
  // NPU jobs zero-copy (the ComputeBackend lifetime contract).
  struct PipeChunk {
    int index = -1;  // Chunk ordinal within the prompt; -1 = slot free.
    int start = 0;   // First absolute position of the chunk.
    int m = 0;
    int layer = 0;
    // false: next step submits this layer's QKV group (S0). true: QKV is in
    // flight; next step runs attention and submits the layer tail (S1).
    bool attend_next = false;
    BackendTicket qkv_ticket = kCompletedTicket;
    BackendTicket tail_ticket = kCompletedTicket;
    std::vector<float> hiddens, norm, q, k, v, attn, proj, gate, up, down;
    Q8Acts qkv_acts, attn_acts;
  };

  // Forward pass of one position given its embedding in `hidden` (d_model
  // floats, updated in place).
  Status ForwardPosition(float* hidden, int pos, KvCache* kv);
  // The seed schedule: one position at a time through all layers.
  Result<std::vector<float>> PrefillPerPosition(
      const std::vector<TokenId>& tokens, KvCache* kv);
  // Forward pass of `m` prompt positions at once; leaves the residual
  // streams in hiddens_.
  Status ForwardChunk(const TokenId* tokens, int m, KvCache* kv);
  // The pipelined schedule for asynchronous backends: a layer-major
  // wavefront with up to two chunks in flight (one slot per NPU context
  // buffer). Per layer, chunk c's KV rows are appended before chunk c+1
  // attends — the only cross-chunk dependency — so logits are bit-identical
  // to the serial chunk schedule.
  Result<std::vector<float>> ForwardPromptPipelined(
      const std::vector<TokenId>& tokens, KvCache* kv);
  // Fetches layer `l`'s post-attention weights and wires a LayerTailOp over
  // the given chunk buffers — the ONE place the tail submission is packed,
  // shared by the serial and pipelined schedules so they cannot drift.
  // `acts` is the requantization scratch and aliases the attention
  // activations by contract (the Wo matmul consumes them first).
  Result<LayerTailOp> BuildLayerTail(int l, int m, float* hiddens, float* proj,
                                     float* norm, float* gate, float* up,
                                     float* down, Q8Acts* acts);
  // Sizes a pipeline slot's buffers and embeds the chunk's tokens.
  Status PipeAdmit(PipeChunk* ch, int index, int start, const TokenId* tokens,
                   int m);
  // Advances a chunk one stage (S0: norm+quantize, submit QKV; S1: rope +
  // KV append + attention, submit the fused layer tail).
  Status PipeAdvance(PipeChunk* ch, KvCache* kv);
  // Fused causal attention for `m` consecutive positions starting at
  // `start`: fills out rows [m][d_model] from q rows [m][d_model] and the KV
  // cache rows [0, start + i] of `layer`. The m x n_heads head loops are one
  // flat work list, statically partitioned over the pool (same deterministic
  // schedule as the matmul kernels): each (position, head) item is
  // independent, so the result is bit-identical at any thread count. Reads
  // the cache at its storage width (f16 expand via F16ToF32Fast, or the f32
  // reference arena).
  void Attend(int layer, int start, int m, const float* q, float* out,
              const KvCache& kv);
  Result<std::vector<float>> Logits(const float* hidden);
  Status LogitsInto(const float* hidden, float* out);
  Status EmbedToken(TokenId token, float* hidden);

  Result<const uint8_t*> Weights(TensorRole role, int layer);

  void Rope(float* vec, int n_heads, int pos) const;
  // Sizes the reusable activation buffers for chunks of up to `m` positions.
  void EnsureWorkspace(int m);

  const ModelSpec* spec_;
  WeightSource* weights_;
  EngineOptions options_;
  // The SIMD backend every inner loop routes through: the scalar table when
  // options force it (use_reference_kernels / force_scalar), otherwise the
  // CPUID-resolved process-wide table. One resolution at construction — hot
  // loops pay an indirect call, never a feature branch.
  const KernelDispatch* kernels_;
  // ResolvedThreads(options): 0 = auto, always clamped to the hardware —
  // oversubscription never wins (fig17 measured threads_4 *slower* than
  // threads_1 on a 1-core box), so it is not a configuration the executor
  // will run.
  int n_threads_;
  std::unique_ptr<ThreadPool> pool_;
  // The backend seam. cpu_backend_ always exists and serves decode, the
  // per-position path and the logits head (one code path for reference and
  // quantized kernels — CpuBackend internalizes the branch); every batched-
  // prefill MatMat goes through prefill_backend_, which is either the same
  // CpuBackend or a caller-provided backend (NPU offload).
  std::unique_ptr<CpuBackend> cpu_backend_;
  ComputeBackend* prefill_backend_ = nullptr;
  // Geometry validation result, computed once; entry points fail fast on it
  // (e.g. odd head_dim would read past the head in the RoPE pair loops).
  Status init_status_;
  double attend_seconds_ = 0.0;

  // Reusable workspace (grown once; no allocation in the token loop). All
  // are position-major: row i belongs to chunk position i — except scores_,
  // which holds one max_ctx attention-scratch row per pool part.
  int workspace_m_ = 0;
  std::vector<float> hiddens_, norm_, q_, k_, v_, attn_, proj_, gate_, up_,
      down_, scores_;
  // Batched-decode LM-head staging: MatMat writes the batch's logits rows
  // contiguously here before they scatter to each session's buffer.
  std::vector<float> logits_rows_;
  Q8Acts acts_;
  // Pipelined-prefill slots (double-buffered chunk workspaces), grown once;
  // pipe_slots_ tracks how many have sized buffers (a single-chunk prompt
  // only ever needs one).
  PipeChunk pipe_[2];
  int pipe_m_ = 0;
  int pipe_slots_ = 0;
};

// Numerics helpers shared with tests — always the portable-scalar table
// (simd/kernels_scalar.cc), so test baselines don't move with the host CPU.
void RmsNorm(const float* x, const float* gain, float* out, int n);
void Softmax(float* x, int n);
void ApplyRope(float* vec, int n_heads, int head_dim, int pos);
// Table-driven RoPE; bit-identical to ApplyRope for positions in the table.
void ApplyRopeTable(float* vec, int n_heads, int head_dim, int pos,
                    const RopeTable& table);

}  // namespace tzllm

#endif  // SRC_LLM_EXECUTOR_H_
