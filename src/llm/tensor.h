// Tensor representation and Q8_0 block quantization (llama.cpp-compatible
// layout: 32-element blocks, one fp16 scale + 32 int8 values = 34 bytes).
//
// Functional-mode models carry real data; paper-scale models carry only
// shape/size metadata (data stays empty) and flow through the cost models.

#ifndef SRC_LLM_TENSOR_H_
#define SRC_LLM_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace tzllm {

enum class DType : uint8_t {
  kF32 = 0,
  kF16 = 1,
  kQ8_0 = 2,
};

const char* DTypeName(DType dtype);

// Q8_0 geometry.
inline constexpr uint64_t kQ8BlockElems = 32;
inline constexpr uint64_t kQ8BlockBytes = 34;  // 2 (f16 scale) + 32 (int8).

// Storage bytes for `elems` elements of `dtype`.
uint64_t DTypeByteSize(DType dtype, uint64_t elems);

// IEEE-754 half-precision conversions (round-to-nearest-even on the way in).
uint16_t F32ToF16(float value);
float F16ToF32(uint16_t half);

// Branchless f16->f32 for hot loops that stream half floats (the f16 KV
// cache attention): shift the sign-stripped half into the f32 mantissa slot
// and rescale by 2^112 to rebias the exponent. Bit-exact with F16ToF32 for
// every finite half including subnormals; f16 inf/NaN come out as large
// finite floats instead (KV entries are finite by construction — F32ToF16
// only emits inf past |x| > 65504, where the forward pass has already
// diverged). Unlike a 65536-entry table this has no gather, so the
// surrounding dot loop auto-vectorizes.
inline float F16ToF32Fast(uint16_t half) {
  const uint32_t sign = static_cast<uint32_t>(half & 0x8000u) << 16;
  uint32_t bits = static_cast<uint32_t>(half & 0x7FFFu) << 13;
  float f;
  __builtin_memcpy(&f, &bits, 4);
  f *= 0x1p112f;  // 2^112: exponent rebias 15 -> 127.
  __builtin_memcpy(&bits, &f, 4);
  bits |= sign;
  __builtin_memcpy(&f, &bits, 4);
  return f;
}

// Quantizes `n` floats (n must be a multiple of 32 — pad beforehand) into
// Q8_0 blocks at dst (DTypeByteSize(kQ8_0, n) bytes).
void QuantizeQ8(const float* src, uint64_t n, uint8_t* dst);
// Dequantizes n elements.
void DequantizeQ8(const uint8_t* src, uint64_t n, float* dst);

class ThreadPool;
struct KernelDispatch;

// Activations quantized to Q8_0 blocks (llama.cpp's quantize_row_q8_0):
// int8 values plus one float scale per 32-element block, so the matvec inner
// loop is an int8xint8 integer dot instead of int8->float converts. Holds
// one or more rows; reusable scratch so hot loops don't allocate.
struct Q8Acts {
  std::vector<int8_t> q;     // [m * cols].
  std::vector<float> scale;  // [m * cols/32].
  uint64_t cols = 0;
  uint64_t m = 0;

  void Quantize(const float* x, uint64_t n) { QuantizeRows(x, 1, n); }
  // Quantizes m rows of n floats each (n a multiple of 32).
  void QuantizeRows(const float* x, uint64_t m_rows, uint64_t n);
};

// y[r] = sum_c W[r,c] * x[c] for a Q8_0 row-major weight matrix W
// (rows x cols, cols a multiple of 32); overwrites y. Quantizes x to Q8
// internally; `pool` (optional) splits the rows across threads when the
// matrix is large enough to amortize the fork/join. The workhorse of the
// functional CPU/NPU backends.
//
// `kernels` selects the SIMD backend for the row dots (nullptr = the
// process-wide ActiveKernels() table). Threading partitions rows while the
// backend vectorizes within a row, and the integer-dot row kernels are
// bit-identical across backends (simd/kernels.h), so the output never
// depends on either choice.
void MatVecQ8(const uint8_t* w, uint64_t rows, uint64_t cols, const float* x,
              float* y, ThreadPool* pool = nullptr,
              const KernelDispatch* kernels = nullptr);

// MatVecQ8 over pre-quantized activations (x.m == 1).
void MatVecQ8Pre(const uint8_t* w, uint64_t rows, uint64_t cols,
                 const Q8Acts& x, float* y, ThreadPool* pool = nullptr,
                 const KernelDispatch* kernels = nullptr);

// Batched-prefill matmul: y[p*rows + r] = sum_c W[r,c] * X[p,c] for all
// x.m positions. Row-blocked with positions innermost so each weight row is
// streamed once per batch instead of once per position. Per-(row, position)
// summation order matches MatVecQ8Pre exactly, so batched prefill and
// incremental decode produce bit-identical activations.
void MatMatQ8(const uint8_t* w, uint64_t rows, uint64_t cols, const Q8Acts& x,
              float* y, ThreadPool* pool = nullptr,
              const KernelDispatch* kernels = nullptr);

// The seed's scalar float-activation kernel (now overwrite semantics), kept
// as the numerics/performance baseline for parity tests and benches.
void MatVecQ8Reference(const uint8_t* w, uint64_t rows, uint64_t cols,
                       const float* x, float* y);

struct Tensor {
  std::string name;
  DType dtype = DType::kF32;
  uint64_t rows = 0;  // For 1-D tensors rows==1.
  uint64_t cols = 0;
  std::vector<uint8_t> data;  // Empty for virtual (paper-scale) tensors.

  uint64_t NumElements() const { return rows * cols; }
  uint64_t ByteSize() const { return DTypeByteSize(dtype, NumElements()); }
  bool materialized() const { return !data.empty(); }

  const float* f32() const {
    return reinterpret_cast<const float*>(data.data());
  }
  float* mutable_f32() { return reinterpret_cast<float*>(data.data()); }
};

// Builds a materialized tensor with small Gaussian weights (deterministic by
// seed), quantized to `dtype`.
Tensor MakeRandomTensor(const std::string& name, DType dtype, uint64_t rows,
                        uint64_t cols, uint64_t seed, double stddev = 0.08);

}  // namespace tzllm

#endif  // SRC_LLM_TENSOR_H_
