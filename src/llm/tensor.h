// Tensor representation and Q8_0 block quantization (llama.cpp-compatible
// layout: 32-element blocks, one fp16 scale + 32 int8 values = 34 bytes).
//
// Functional-mode models carry real data; paper-scale models carry only
// shape/size metadata (data stays empty) and flow through the cost models.

#ifndef SRC_LLM_TENSOR_H_
#define SRC_LLM_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace tzllm {

enum class DType : uint8_t {
  kF32 = 0,
  kF16 = 1,
  kQ8_0 = 2,
};

const char* DTypeName(DType dtype);

// Q8_0 geometry.
inline constexpr uint64_t kQ8BlockElems = 32;
inline constexpr uint64_t kQ8BlockBytes = 34;  // 2 (f16 scale) + 32 (int8).

// Storage bytes for `elems` elements of `dtype`.
uint64_t DTypeByteSize(DType dtype, uint64_t elems);

// IEEE-754 half-precision conversions (round-to-nearest-even on the way in).
uint16_t F32ToF16(float value);
float F16ToF32(uint16_t half);

// Quantizes `n` floats (n must be a multiple of 32 — pad beforehand) into
// Q8_0 blocks at dst (DTypeByteSize(kQ8_0, n) bytes).
void QuantizeQ8(const float* src, uint64_t n, uint8_t* dst);
// Dequantizes n elements.
void DequantizeQ8(const uint8_t* src, uint64_t n, float* dst);

// y[r] += sum_c W[r,c] * x[c] for a Q8_0 row-major weight matrix W
// (rows x cols, cols a multiple of 32). The workhorse of the functional
// CPU/NPU backends.
void MatVecQ8(const uint8_t* w, uint64_t rows, uint64_t cols, const float* x,
              float* y);

struct Tensor {
  std::string name;
  DType dtype = DType::kF32;
  uint64_t rows = 0;  // For 1-D tensors rows==1.
  uint64_t cols = 0;
  std::vector<uint8_t> data;  // Empty for virtual (paper-scale) tensors.

  uint64_t NumElements() const { return rows * cols; }
  uint64_t ByteSize() const { return DTypeByteSize(dtype, NumElements()); }
  bool materialized() const { return !data.empty(); }

  const float* f32() const {
    return reinterpret_cast<const float*>(data.data());
  }
  float* mutable_f32() { return reinterpret_cast<float*>(data.data()); }
};

// Builds a materialized tensor with small Gaussian weights (deterministic by
// seed), quantized to `dtype`.
Tensor MakeRandomTensor(const std::string& name, DType dtype, uint64_t rows,
                        uint64_t cols, uint64_t seed, double stddev = 0.08);

}  // namespace tzllm

#endif  // SRC_LLM_TENSOR_H_
