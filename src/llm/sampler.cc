#include "src/llm/sampler.h"

#include <algorithm>
#include <cmath>

namespace tzllm {

TokenId Sampler::Sample(const std::vector<float>& logits) {
  if (logits.empty()) {
    return -1;
  }
  if (options_.greedy) {
    return static_cast<TokenId>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  // Top-k with temperature.
  const int k = std::min<int>(options_.top_k, static_cast<int>(logits.size()));
  std::vector<int> ids(logits.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int>(i);
  }
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](int a, int b) { return logits[a] > logits[b]; });
  std::vector<double> probs(k);
  double sum = 0.0;
  const double inv_t = 1.0 / std::max(options_.temperature, 1e-3);
  for (int i = 0; i < k; ++i) {
    probs[i] = std::exp((logits[ids[i]] - logits[ids[0]]) * inv_t);
    sum += probs[i];
  }
  double r = rng_.NextDouble() * sum;
  for (int i = 0; i < k; ++i) {
    r -= probs[i];
    if (r <= 0.0) {
      return ids[i];
    }
  }
  return ids[k - 1];
}

}  // namespace tzllm
