// DAG computation graphs (paper §3.2/§4.1): the inference framework
// schedules operators in topological order, each consuming a known subset of
// parameters — the determinism TZ-LLM's pipelined restoration exploits.
//
// Two graph shapes mirror llama.cpp's behaviour on the Rockchip backend:
//   * prefill: per layer, four NPU matmul operators (QKV, attn-out,
//     gate+up, down) interleaved with CPU operators (norms, attention,
//     activation);
//   * decode: per layer, two *fused* NPU operators (attention block, FFN
//     block) — decode is launch-overhead sensitive, so the backend fuses.

#ifndef SRC_LLM_GRAPH_H_
#define SRC_LLM_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/llm/model_spec.h"

namespace tzllm {

enum class OpKind : uint8_t {
  kEmbed,
  kAttnNorm,
  kQkvMatmul,
  kAttention,   // scores/softmax/weighted sum (+rope), CPU-resident.
  kAttnOut,
  kFfnNorm,
  kFfnGateUp,
  kFfnAct,
  kFfnDown,
  kAttnFused,   // Decode: QKV + attention + out in one NPU job.
  kFfnFused,    // Decode: gate/up + act + down in one NPU job.
  kOutputNorm,
  kLmHead,
};

const char* OpKindName(OpKind kind);

enum class Backend : uint8_t { kCpu = 0, kNpu = 1 };

struct OpNode {
  int id = 0;
  OpKind kind = OpKind::kEmbed;
  int layer = -1;
  // Preferred placement when an NPU is available; CPU-only systems (the
  // strawman baseline) run everything on kCpu.
  Backend backend = Backend::kCpu;
  std::vector<int> tensor_indices;  // Weights this operator consumes.
  std::vector<int> deps;            // Predecessor op ids.
  uint64_t weight_elems = 0;        // Matmul weight elements (natural).
  uint64_t weight_bytes = 0;        // Accounting bytes (scaled).
  std::string DebugName() const;
};

enum class GraphPhase : uint8_t { kPrefill, kDecode };

class ComputeGraph {
 public:
  static ComputeGraph BuildPrefill(const ModelSpec& spec);
  static ComputeGraph BuildDecode(const ModelSpec& spec);

  GraphPhase phase() const { return phase_; }
  const std::vector<OpNode>& nodes() const { return nodes_; }
  const OpNode& node(int id) const { return nodes_.at(id); }
  int size() const { return static_cast<int>(nodes_.size()); }

  // Ids of nodes that consume at least one weight tensor, in topological
  // order — the restoration schedule (load order) of the model.
  std::vector<int> WeightConsumers() const;

  // Total accounting bytes of weights consumed by nodes [0, up_to_id].
  uint64_t WeightBytesUpTo(int up_to_id) const;
  uint64_t TotalWeightBytes() const;

  int NpuOpCount() const;

 private:
  int AddNode(OpKind kind, int layer, Backend backend,
              std::vector<int> tensor_indices, const ModelSpec& spec);

  GraphPhase phase_ = GraphPhase::kPrefill;
  std::vector<OpNode> nodes_;
};

}  // namespace tzllm

#endif  // SRC_LLM_GRAPH_H_
