// Calibrated per-operator timing model (see src/common/calibration.h for the
// provenance of every constant). Prefill operators are compute-bound
// (FLOPs / backend throughput); decode operators are weight-streaming
// bandwidth-bound. NPU job-launch overhead is *not* added here — the NPU
// driver layer adds it per launched job, so batching/fusion effects are
// modeled where they occur.

#ifndef SRC_LLM_COST_MODEL_H_
#define SRC_LLM_COST_MODEL_H_

#include <vector>

#include "src/common/calibration.h"
#include "src/common/units.h"
#include "src/hw/npu.h"
#include "src/llm/graph.h"
#include "src/llm/model_spec.h"

namespace tzllm {

class CostModel {
 public:
  explicit CostModel(const ModelSpec* spec) : spec_(spec) {}

  // Execution time of `node` on `backend` when processing `n_tokens` in the
  // prefill phase.
  SimDuration PrefillOpTime(const OpNode& node, int n_tokens,
                            Backend backend) const;

  // Execution time of `node` for one decode step at context position `pos`.
  SimDuration DecodeOpTime(const OpNode& node, int pos, Backend backend) const;

  // Aggregates over a graph (all ops on their preferred backend, or all on
  // CPU when `npu_available` is false). Pure compute, no pipeline effects.
  SimDuration PrefillComputeTime(const ComputeGraph& graph, int n_tokens,
                                 bool npu_available) const;
  SimDuration DecodeComputeTime(const ComputeGraph& graph, int pos,
                                bool npu_available) const;

  // Restoration-operator costs (per byte range of encrypted parameters).
  static SimDuration LoadTime(uint64_t bytes) {
    return kFlashRequestLatency + TransferTime(bytes, kFlashSequentialReadBw);
  }
  static SimDuration DecryptTime(uint64_t bytes) {
    // Single-thread cost; parallelism across CPU lanes is the scheduler's.
    return TransferTime(bytes, kDecryptPerThreadBw);
  }

  // NPU execution time of one batched-prefill matmul job (`m` positions over
  // a rows x cols Q8_0 weight) — the same compute-bound throughput constant
  // the paper-scale prefill graphs use, so the functional NpuBackend's job
  // durations and the Figure-9/10 models price NPU work identically. The
  // per-job launch overhead stays in the driver (kNpuJobLaunchOverhead).
  static SimDuration NpuMatmulTime(uint64_t rows, uint64_t cols, int m) {
    return FromSeconds(2.0 * static_cast<double>(rows) *
                       static_cast<double>(cols) * m / kNpuMatmulFlops);
  }

  // Execution time of one *fused* multi-matmul job: the sum of its member
  // matmuls at NPU throughput. Fusing never changes the useful-work pricing
  // — what it amortizes is the per-job launch overhead (driver) and the
  // per-job world-switch cost (co-driver), both of which stay per *job*
  // where they occur. Elementwise glue (residuals, norms, silu) inside a
  // fused job is bandwidth-trivial next to the matmuls and is not priced.
  static SimDuration NpuFusedJobTime(const std::vector<NpuMatmulShape>& mm) {
    SimDuration total = 0;
    for (const NpuMatmulShape& s : mm) {
      total += NpuMatmulTime(s.rows, s.cols, s.m);
    }
    return total;
  }

 private:
  // Natural (unscaled) weight elements drive FLOPs; scaled bytes drive
  // bandwidth and I/O.
  double MatmulFlops(const OpNode& node, int n_tokens) const;
  SimDuration LightOpTime(const OpNode& node, int n_tokens) const;

  const ModelSpec* spec_;
};

}  // namespace tzllm

#endif  // SRC_LLM_COST_MODEL_H_
