#include "src/llm/tokenizer.h"

#include <algorithm>
#include <map>

namespace tzllm {

namespace {

// Seed corpus for deterministic merge construction. Any text works; this one
// keeps the merged vocabulary English-flavoured for readable examples.
const char kSeedCorpus[] =
    "the quick brown fox jumps over the lazy dog and then the model "
    "generates tokens on the device while the trusted execution environment "
    "protects the parameters from the rich execution environment because "
    "confidential inference requires secure memory scaling and neural "
    "processing unit time sharing between worlds with pipelined restoration "
    "of encrypted weights that are loaded decrypted and computed in order "
    "hello world this is a summary of the conversation please refine the "
    "text and answer the question about the user interface automation task ";

}  // namespace

Tokenizer::Tokenizer(int vocab_size) {
  vocab_size = std::max(vocab_size, static_cast<int>(kFirstMerged));
  pieces_.reserve(vocab_size);
  for (int b = 0; b < 256; ++b) {
    pieces_.push_back(std::string(1, static_cast<char>(b)));
  }
  pieces_.push_back("<s>");   // kBos.
  pieces_.push_back("</s>");  // kEos.

  // Count n-grams (length 2..6) of the seed corpus; add the most frequent
  // (weighted by length) until the vocabulary is full.
  const std::string corpus(kSeedCorpus);
  std::map<std::string, int> counts;
  for (size_t len = 2; len <= 6; ++len) {
    for (size_t i = 0; i + len <= corpus.size(); ++i) {
      counts[corpus.substr(i, len)] += 1;
    }
  }
  std::vector<std::pair<std::string, int>> ranked(counts.begin(),
                                                  counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    const long sa = static_cast<long>(a.second) * a.first.size();
    const long sb = static_cast<long>(b.second) * b.first.size();
    if (sa != sb) {
      return sa > sb;
    }
    return a.first < b.first;  // Deterministic tie-break.
  });
  for (const auto& [piece, count] : ranked) {
    if (static_cast<int>(pieces_.size()) >= vocab_size) {
      break;
    }
    if (count < 2) {
      continue;
    }
    pieces_.push_back(piece);
  }
  BuildIndex();
}

void Tokenizer::BuildIndex() {
  index_.clear();
  max_piece_len_ = 1;
  for (size_t id = 0; id < pieces_.size(); ++id) {
    if (id == static_cast<size_t>(kBos) || id == static_cast<size_t>(kEos)) {
      continue;  // Specials are never produced by text matching.
    }
    index_[pieces_[id]] = static_cast<TokenId>(id);
    max_piece_len_ = std::max(max_piece_len_, pieces_[id].size());
  }
}

std::vector<TokenId> Tokenizer::Encode(const std::string& text) const {
  std::vector<TokenId> out;
  size_t i = 0;
  while (i < text.size()) {
    size_t len = std::min(max_piece_len_, text.size() - i);
    TokenId match = -1;
    for (; len >= 1; --len) {
      auto it = index_.find(text.substr(i, len));
      if (it != index_.end()) {
        match = it->second;
        break;
      }
    }
    // len >= 1 always matches: single bytes are all in the index.
    out.push_back(match);
    i += len;
  }
  return out;
}

std::string Tokenizer::DecodeToken(TokenId token) const {
  if (token < 0 || token >= static_cast<TokenId>(pieces_.size())) {
    return "";
  }
  if (token == kBos || token == kEos) {
    return "";
  }
  return pieces_[token];
}

std::string Tokenizer::Decode(const std::vector<TokenId>& tokens) const {
  std::string out;
  for (TokenId t : tokens) {
    out += DecodeToken(t);
  }
  return out;
}

std::vector<uint8_t> Tokenizer::Serialize() const {
  std::vector<uint8_t> blob;
  auto put_u32 = [&](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      blob.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  put_u32(static_cast<uint32_t>(pieces_.size()));
  for (const std::string& piece : pieces_) {
    put_u32(static_cast<uint32_t>(piece.size()));
    blob.insert(blob.end(), piece.begin(), piece.end());
  }
  return blob;
}

Result<Tokenizer> Tokenizer::Deserialize(const std::vector<uint8_t>& blob) {
  Tokenizer t;
  size_t pos = 0;
  auto get_u32 = [&](uint32_t* v) -> bool {
    if (pos + 4 > blob.size()) {
      return false;
    }
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | blob[pos + i];
    }
    pos += 4;
    return true;
  };
  uint32_t count = 0;
  if (!get_u32(&count) || count < kFirstMerged) {
    return Status(ErrorCode::kDataCorruption, "bad tokenizer blob");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!get_u32(&len) || pos + len > blob.size()) {
      return Status(ErrorCode::kDataCorruption, "bad tokenizer blob");
    }
    t.pieces_.emplace_back(blob.begin() + pos, blob.begin() + pos + len);
    pos += len;
  }
  t.BuildIndex();
  return t;
}

}  // namespace tzllm
