#include "src/llm/engine_options.h"

#include "src/hw/npu.h"
#include "src/llm/serve_fault.h"

namespace tzllm {

Status EngineOptions::Validate() const {
  // Serving group: these shape the KV arena and the scheduler, so a bad
  // value must fail the load, not surface as a mis-sized scratch region.
  if (max_sessions < 1) {
    return InvalidArgument(
        "EngineOptions::max_sessions must be >= 1 (the KV arena needs at "
        "least one session slot)");
  }
  if (decode_batch < 0) {
    return InvalidArgument(
        "EngineOptions::decode_batch must be >= 0 (0 = all running sessions "
        "in one batch)");
  }
  if (serve_queue_max < 0) {
    return InvalidArgument(
        "EngineOptions::serve_queue_max must be >= 0 (0 = unbounded "
        "admission queue)");
  }
  if (serve_watchdog_ticks < 0) {
    return InvalidArgument(
        "EngineOptions::serve_watchdog_ticks must be >= 0 (0 disables the "
        "stuck-tick watchdog)");
  }
  if (serve_checkpoint_every_n_ticks < 0) {
    return InvalidArgument(
        "EngineOptions::serve_checkpoint_every_n_ticks must be >= 0 (0 "
        "disables auto-checkpointing)");
  }
  if (!serve_fault_plan.empty()) {
    auto parsed = ServeFaultPlan::Parse(serve_fault_plan);
    if (!parsed.ok()) {
      return parsed.status();
    }
  }

  // Paged KV group: the pool is carved out of the secure scratch region at
  // load, so bad geometry must fail here, not as a mis-sized budget.
  if (paged_kv) {
    if (kv_page_positions < 1) {
      return InvalidArgument(
          "EngineOptions::kv_page_positions must be >= 1 (a KV page holds at "
          "least one sequence position)");
    }
    if (kv_prefix_entries < 0) {
      return InvalidArgument(
          "EngineOptions::kv_prefix_entries must be >= 0 (0 disables prefix "
          "sharing)");
    }
    if (kv_recompute_max < 0) {
      return InvalidArgument(
          "EngineOptions::kv_recompute_max must be >= 0 (0 disables "
          "recompute-on-loss)");
    }
  }

  // NPU / fault groups apply only when the configuration actually routes
  // prefill to the NPU backend; inert combinations (reference kernels,
  // per-position prefill) stay valid whatever the NPU knobs say.
  if (npu_prefill_active()) {
    if (npu_job_timeout == 0) {
      return InvalidArgument(
          "EngineOptions::npu_job_timeout must be positive: a zero per-job "
          "deadline would classify every NPU job as timed out");
    }
    if (npu_max_retries < 0) {
      return InvalidArgument("EngineOptions::npu_max_retries must be >= 0");
    }
    if (!npu_fault_plan.empty()) {
      auto parsed = NpuFaultPlan::Parse(npu_fault_plan);
      if (!parsed.ok()) {
        return parsed.status();
      }
    }
  }
  return OkStatus();
}

}  // namespace tzllm
