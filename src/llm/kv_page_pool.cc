#include "src/llm/kv_page_pool.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "src/crypto/key_hierarchy.h"
#include "src/crypto/sha256.h"

namespace tzllm {

namespace {

// Spill blob layout (all little-endian, the checkpoint idiom):
//   magic | u32 page_id | u64 spill_seq | sha256(plaintext) | ciphertext.
// The hash is over the plaintext page, so any bit flipped in the REE blob
// decrypts to a page whose digest no longer matches — kDataCorruption, the
// same contract the PR 6 session checkpoints enforce.
constexpr char kSpillMagic[8] = {'T', 'Z', 'K', 'V', 'P', 'G', '0', '1'};
constexpr size_t kSpillHeader = sizeof(kSpillMagic) + 4 + 8 + 32;

AesBlock SpillIv(KvPageId id, uint64_t seq) {
  // Fresh IV per (page, spill generation): CTR keystream never repeats even
  // when the same page spills repeatedly under one key.
  return KeyHierarchy::ModelIv("kv-page/" + std::to_string(id) + "/" +
                               std::to_string(seq));
}

}  // namespace

uint64_t KvPagePool::PageBytes(const ModelSpec& spec, KvStorage storage,
                               int page_positions) {
  const LlmConfig& c = spec.config();
  const uint64_t elem = storage == KvStorage::kF16 ? 2 : 4;
  return static_cast<uint64_t>(c.n_layers) * page_positions * c.kv_dim() *
         kKvVectorsPerPosition * elem;
}

int KvPagePool::FramesFor(const ModelSpec& spec, KvStorage storage,
                          const KvPagePoolOptions& opts) {
  const uint64_t page = PageBytes(spec, storage, opts.page_positions);
  return static_cast<int>(std::max<uint64_t>(1, opts.pool_bytes / page));
}

KvPagePool::KvPagePool(const ModelSpec& spec, KvStorage storage,
                       const KvPagePoolOptions& opts)
    : n_layers_(spec.config().n_layers),
      kv_dim_(spec.config().kv_dim()),
      page_positions_(std::max(1, opts.page_positions)),
      storage_(storage),
      spill_(opts.spill),
      spill_key_(opts.spill_key) {
  v_plane_ = static_cast<size_t>(n_layers_) * page_positions_ * kv_dim_;
  page_elems_ = v_plane_ * kKvVectorsPerPosition;
  page_bytes_ = PageBytes(spec, storage_, page_positions_);
  const int n_frames = FramesFor(spec, storage_, opts);
  frames_.resize(static_cast<size_t>(n_frames) * page_bytes_ / sizeof(uint64_t),
                 0);
  frame_owner_.assign(n_frames, kInvalidKvPage);
  free_frames_.reserve(n_frames);
  // Highest index first so pop_back hands out frame 0, 1, ... in order.
  for (int f = n_frames - 1; f >= 0; --f) {
    free_frames_.push_back(f);
  }
}

void KvPagePool::ScrubFrame(int frame) {
  std::memset(FrameBytes(frame), 0, page_bytes_);
}

Result<int> KvPagePool::TakeFrame() {
  if (!free_frames_.empty()) {
    const int frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  // Evict the least-recently-touched unpinned resident page. The scan is
  // over live pages (bounded by frames + spilled), and ties break toward
  // the smallest id — fully deterministic.
  KvPageId victim = kInvalidKvPage;
  for (KvPageId id = 0; id < pages_.size(); ++id) {
    const Page& p = pages_[id];
    // A lost page must not spill: its zeroed frame would round-trip the
    // encrypt/verify path and come back as silently "valid" zeros.
    if (p.state != PageState::kResident || p.pins > 0 || p.lost) {
      continue;
    }
    if (victim == kInvalidKvPage || p.lru < pages_[victim].lru) {
      victim = id;
    }
  }
  if (victim == kInvalidKvPage) {
    return Status(ErrorCode::kResourceExhausted,
                  "KV page pool exhausted: every resident page is pinned "
                  "(shrink the decode batch or raise kv_pool_bytes)");
  }
  if (!spill_) {
    return Status(ErrorCode::kResourceExhausted,
                  "KV page pool full and spill is disabled "
                  "(EngineOptions::kv_spill): raise kv_pool_bytes or finish "
                  "a session");
  }
  TZLLM_RETURN_IF_ERROR(SpillPage(victim));
  const int frame = free_frames_.back();
  free_frames_.pop_back();
  return frame;
}

Status KvPagePool::SpillPage(KvPageId id) {
  Page& p = pages_[id];
  if (p.state != PageState::kResident) {
    return Internal("spill of a non-resident KV page");
  }
  p.spill_seq = ++spill_clock_;
  std::vector<uint8_t> blob;
  blob.reserve(kSpillHeader + page_bytes_);
  blob.insert(blob.end(), kSpillMagic, kSpillMagic + sizeof(kSpillMagic));
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<uint8_t>(id >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    blob.push_back(static_cast<uint8_t>(p.spill_seq >> (8 * i)));
  }
  const uint8_t* plain = FrameBytes(p.frame);
  const Sha256Digest digest = Sha256::Hash(plain, page_bytes_);
  blob.insert(blob.end(), digest.begin(), digest.end());
  const size_t ct_off = blob.size();
  blob.insert(blob.end(), plain, plain + page_bytes_);
  AesCtr ctr(spill_key_, SpillIv(id, p.spill_seq));
  ctr.CryptAll(blob.data() + ct_off, page_bytes_);
  if (spill_fault_armed_) {
    const uint64_t ordinal = stats_.spills + 1;  // 1-based, like NpuFaultPlan.
    if (ordinal >= spill_fault_first_ &&
        ordinal < spill_fault_first_ + spill_fault_count_) {
      if (spill_fault_drop_) {
        // The REE "loses" the blob: nothing but a stub survives, so restore
        // fails the size/magic check.
        blob.resize(kSpillHeader / 2);
      } else {
        // One ciphertext byte flipped: decrypts fine, digest mismatches.
        blob[ct_off + page_bytes_ / 2] ^= 0x5a;
      }
      ++stats_.spill_faults_injected;
    }
  }
  p.ree_blob = std::move(blob);
  // Scrub before the frame is reused: no KV plaintext outlives eviction.
  ScrubFrame(p.frame);
  frame_owner_[p.frame] = kInvalidKvPage;
  free_frames_.push_back(p.frame);
  p.frame = -1;
  p.state = PageState::kSpilled;
  ++spilled_pages_;
  ++stats_.spills;
  return OkStatus();
}

Status KvPagePool::RestorePage(KvPageId id) {
  Page& p = pages_[id];
  if (p.state != PageState::kSpilled) {
    return Internal("restore of a non-spilled KV page");
  }
  const std::vector<uint8_t>& blob = p.ree_blob;
  if (blob.size() != kSpillHeader + page_bytes_ ||
      std::memcmp(blob.data(), kSpillMagic, sizeof(kSpillMagic)) != 0) {
    return Status(ErrorCode::kDataCorruption,
                  "spilled KV page blob truncated or bad magic");
  }
  size_t off = sizeof(kSpillMagic);
  uint32_t blob_id = 0;
  for (int i = 0; i < 4; ++i) {
    blob_id |= static_cast<uint32_t>(blob[off + i]) << (8 * i);
  }
  off += 4;
  uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq |= static_cast<uint64_t>(blob[off + i]) << (8 * i);
  }
  off += 8;
  if (blob_id != id || seq != p.spill_seq) {
    // A stale or foreign blob substituted in REE memory (replay of an older
    // spill generation included) decrypts under the wrong IV anyway; fail
    // on the labels first for a clear diagnosis.
    return Status(ErrorCode::kDataCorruption,
                  "spilled KV page blob labels do not match the page");
  }
  Sha256Digest stored;
  std::memcpy(stored.data(), blob.data() + off, 32);
  off += 32;

  TZLLM_ASSIGN_OR_RETURN(frame, TakeFrame());
  uint8_t* dst = FrameBytes(frame);
  std::memcpy(dst, blob.data() + off, page_bytes_);
  AesCtr ctr(spill_key_, SpillIv(id, p.spill_seq));
  ctr.CryptAll(dst, page_bytes_);
  if (Sha256::Hash(dst, page_bytes_) != stored) {
    ScrubFrame(frame);
    free_frames_.push_back(frame);
    return Status(ErrorCode::kDataCorruption,
                  "spilled KV page failed its integrity check (REE memory "
                  "tampered)");
  }
  p.ree_blob.clear();
  p.ree_blob.shrink_to_fit();
  p.frame = frame;
  frame_owner_[frame] = id;
  p.state = PageState::kResident;
  --spilled_pages_;
  ++stats_.restores;
  return OkStatus();
}

Result<KvPageId> KvPagePool::Alloc(bool pinned) {
  TZLLM_ASSIGN_OR_RETURN(frame, TakeFrame());
  KvPageId id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<KvPageId>(pages_.size());
    pages_.emplace_back();
  }
  Page& p = pages_[id];
  p.state = PageState::kResident;
  p.frame = frame;
  p.refs = 1;
  p.pins = pinned ? 1 : 0;
  p.lost = false;
  p.lru = ++lru_clock_;
  p.spill_seq = 0;
  frame_owner_[frame] = id;
  // Frames are scrubbed on every release, so a fresh page is already zero.
  return id;
}

void KvPagePool::Ref(KvPageId id) {
  if (ValidLive(id)) {
    ++pages_[id].refs;
  }
}

Status KvPagePool::Unref(KvPageId id) {
  if (!ValidLive(id)) {
    return InvalidArgument("unref of a free or invalid KV page");
  }
  Page& p = pages_[id];
  if (--p.refs > 0) {
    return OkStatus();
  }
  if (p.pins > 0) {
    return Internal("last unref of a pinned KV page");
  }
  if (p.state == PageState::kResident) {
    ScrubFrame(p.frame);
    frame_owner_[p.frame] = kInvalidKvPage;
    free_frames_.push_back(p.frame);
    p.frame = -1;
  } else {
    p.ree_blob.clear();
    p.ree_blob.shrink_to_fit();
    --spilled_pages_;
  }
  p.state = PageState::kFree;
  free_ids_.push_back(id);
  return OkStatus();
}

int KvPagePool::refcount(KvPageId id) const {
  return ValidLive(id) ? pages_[id].refs : 0;
}

bool KvPagePool::resident(KvPageId id) const {
  return ValidLive(id) && pages_[id].state == PageState::kResident;
}

Status KvPagePool::EnsureResident(KvPageId id) {
  if (!ValidLive(id)) {
    return InvalidArgument("EnsureResident on a free or invalid KV page");
  }
  Page& p = pages_[id];
  if (p.lost) {
    return Status(ErrorCode::kDataCorruption,
                  "KV page was lost to REE misbehavior and awaits recompute");
  }
  if (p.state == PageState::kSpilled) {
    TZLLM_RETURN_IF_ERROR(RestorePage(id));
  }
  p.lru = ++lru_clock_;
  return OkStatus();
}

Status KvPagePool::Pin(KvPageId id) {
  TZLLM_RETURN_IF_ERROR(EnsureResident(id));
  ++pages_[id].pins;
  return OkStatus();
}

void KvPagePool::Unpin(KvPageId id) {
  if (ValidLive(id) && pages_[id].pins > 0) {
    --pages_[id].pins;
  }
}

void KvPagePool::Touch(KvPageId id) {
  if (ValidLive(id)) {
    pages_[id].lru = ++lru_clock_;
  }
}

Status KvPagePool::Quarantine(KvPageId id) {
  if (!ValidLive(id)) {
    return InvalidArgument("Quarantine on a free or invalid KV page");
  }
  Page& p = pages_[id];
  if (p.state != PageState::kSpilled) {
    return FailedPrecondition("Quarantine of a resident KV page");
  }
  // The blob is unrecoverable — drop it before claiming a frame so the
  // eviction scan never considers this page a spill candidate mid-claim.
  p.ree_blob.clear();
  p.ree_blob.shrink_to_fit();
  TZLLM_ASSIGN_OR_RETURN(frame, TakeFrame());
  // Frames are scrubbed on release, so the quarantined page reads as zeros
  // — but `lost` makes every read path refuse it until ClearLost.
  p.frame = frame;
  frame_owner_[frame] = id;
  p.state = PageState::kResident;
  p.lost = true;
  p.lru = ++lru_clock_;
  --spilled_pages_;
  ++stats_.pages_lost;
  return OkStatus();
}

bool KvPagePool::lost(KvPageId id) const {
  return ValidLive(id) && pages_[id].lost;
}

Status KvPagePool::ClearLost(KvPageId id) {
  if (!ValidLive(id) || !pages_[id].lost) {
    return FailedPrecondition("ClearLost on a page that is not lost");
  }
  if (pages_[id].state != PageState::kResident) {
    return Internal("lost KV page is not resident");
  }
  pages_[id].lost = false;
  pages_[id].lru = ++lru_clock_;
  return OkStatus();
}

void KvPagePool::ArmSpillFault(bool drop, uint64_t first, uint64_t count) {
  spill_fault_armed_ = count > 0;
  spill_fault_drop_ = drop;
  spill_fault_first_ = first;
  spill_fault_count_ = count;
}

uint16_t* KvPagePool::Data16(KvPageId id) {
  return resident(id) ? reinterpret_cast<uint16_t*>(FrameBytes(pages_[id].frame))
                      : nullptr;
}

const uint16_t* KvPagePool::Data16(KvPageId id) const {
  return resident(id)
             ? reinterpret_cast<const uint16_t*>(FrameBytes(pages_[id].frame))
             : nullptr;
}

float* KvPagePool::Data32(KvPageId id) {
  return resident(id) ? reinterpret_cast<float*>(FrameBytes(pages_[id].frame))
                      : nullptr;
}

const float* KvPagePool::Data32(KvPageId id) const {
  return resident(id)
             ? reinterpret_cast<const float*>(FrameBytes(pages_[id].frame))
             : nullptr;
}

uint8_t* KvPagePool::ree_blob_data(KvPageId id) {
  if (!ValidLive(id) || pages_[id].state != PageState::kSpilled) {
    return nullptr;
  }
  return pages_[id].ree_blob.data();
}

size_t KvPagePool::ree_blob_size(KvPageId id) const {
  if (!ValidLive(id) || pages_[id].state != PageState::kSpilled) {
    return 0;
  }
  return pages_[id].ree_blob.size();
}

}  // namespace tzllm
