// Deterministic serving-layer fault injection (ISSUE 10) — the REE-side
// sibling of NpuFaultPlan. A plan names one misbehavior class and a 1-based
// ordinal window; the meaning of the ordinal depends on the class:
//
//   spill_tamper  — flip a ciphertext byte in the N-th..(N+count-1)-th KV
//                   page spill (counted by KvPagePool), so the restore
//                   fails its integrity check and recompute-on-loss runs.
//   spill_drop    — truncate those spill blobs instead (the REE "loses"
//                   them); restore fails the size/magic check.
//   ckpt_drop     — delete the N-th.. session-checkpoint blobs right after
//                   LlmTa seals them, so eviction-restore / crash-recovery
//                   must restart those sessions from their prompts.
//   ta_crash      — ServingRuntime::Tick aborts at tick N, modeling a
//                   whole-TA crash; the harness reboots a fresh TA and
//                   drives ServingRuntime::Recover().
//
// Plans compose with NpuFaultPlan (different env, different layers). The
// env hook is TZLLM_SERVE_FAULT_PLAN; EngineOptions::serve_fault_plan
// (options string) wins over the env, the same precedence the NPU plan
// uses. Like every fault path in this codebase the injection is counted by
// deterministic ordinals, never by clocks or randomness — a chaos run is
// exactly replayable.

#ifndef SRC_LLM_SERVE_FAULT_H_
#define SRC_LLM_SERVE_FAULT_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace tzllm {

enum class ServeFaultClass : uint8_t {
  kNone = 0,
  kSpillTamper,
  kSpillDrop,
  kCkptDrop,
  kTaCrash,
};

struct ServeFaultPlan {
  ServeFaultClass fault = ServeFaultClass::kNone;
  uint64_t first = 0;  // 1-based ordinal of the first fault; 0 = never.
  uint64_t count = 1;  // Consecutive faulted ordinals starting at `first`.

  bool active() const { return fault != ServeFaultClass::kNone && first > 0; }
  bool Hits(uint64_t ordinal) const {
    return active() && ordinal >= first && ordinal < first + count;
  }
  std::string ToString() const;

  // "<class>@<first>[x<count>]" with class one of spill_tamper |
  // spill_drop | ckpt_drop | ta_crash; "" or "none" parse to the inactive
  // plan. Examples: "spill_tamper@1x100", "ta_crash@40".
  static Result<ServeFaultPlan> Parse(const std::string& text);
  // Parses TZLLM_SERVE_FAULT_PLAN; unset or empty means no faults. A
  // malformed value is a test-rig error: logged and treated as inactive.
  static ServeFaultPlan FromEnv();
};

}  // namespace tzllm

#endif  // SRC_LLM_SERVE_FAULT_H_
