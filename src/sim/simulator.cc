#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace tzllm {

EventId Simulator::Schedule(SimDuration delay, Callback cb) {
  return ScheduleAt(Now() + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(SimTime when, Callback cb) {
  assert(when >= Now() && "cannot schedule in the past");
  MutexLock lock(&mu_);
  const uint64_t seq = next_seq_++;
  const EventId id = seq;  // Sequence numbers double as event ids.
  heap_.push(Event{when, seq, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::Cancel(EventId id) {
  MutexLock lock(&mu_);
  return callbacks_.erase(id) > 0;
}

bool Simulator::Step() {
  for (;;) {
    Callback cb;
    {
      MutexLock lock(&mu_);
      if (heap_.empty()) {
        return false;
      }
      Event ev = heap_.top();
      heap_.pop();
      auto it = callbacks_.find(ev.id);
      if (it == callbacks_.end()) {
        continue;  // Cancelled.
      }
      cb = std::move(it->second);
      callbacks_.erase(it);
      now_.store(ev.when, std::memory_order_relaxed);
      ++events_executed_;
    }
    // The callback runs with mu_ released: event handlers schedule follow-up
    // events (and run whole SMC chains) on this stack as a matter of course.
    cb();
    return true;
  }
}

void Simulator::Run(uint64_t max_events) {
  uint64_t executed = 0;
  while (executed < max_events && Step()) {
    ++executed;
  }
}

void Simulator::RunUntil(SimTime deadline) {
  for (;;) {
    bool step = false;
    {
      MutexLock lock(&mu_);
      // Skip over cancelled heap entries to find the real next event time.
      while (!heap_.empty() &&
             callbacks_.find(heap_.top().id) == callbacks_.end()) {
        heap_.pop();
      }
      step = !heap_.empty() && heap_.top().when <= deadline;
    }
    if (!step) {
      break;
    }
    Step();
  }
  if (Now() < deadline) {
    MutexLock lock(&mu_);
    now_.store(deadline, std::memory_order_relaxed);
  }
}

void Simulator::RunUntilIdleOr(const std::function<bool()>& done) {
  while (!done() && Step()) {
  }
}

}  // namespace tzllm
