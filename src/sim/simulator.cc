#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace tzllm {

EventId Simulator::Schedule(SimDuration delay, Callback cb) {
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(SimTime when, Callback cb) {
  assert(when >= now_ && "cannot schedule in the past");
  const uint64_t seq = next_seq_++;
  const EventId id = seq;  // Sequence numbers double as event ids.
  heap_.push(Event{when, seq, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::Cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {
      continue;  // Cancelled.
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.when;
    ++events_executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::Run(uint64_t max_events) {
  uint64_t executed = 0;
  while (executed < max_events && Step()) {
    ++executed;
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!heap_.empty()) {
    // Skip over cancelled heap entries to find the real next event time.
    Event ev = heap_.top();
    if (callbacks_.find(ev.id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (ev.when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdleOr(const std::function<bool()>& done) {
  while (!done() && Step()) {
  }
}

}  // namespace tzllm
