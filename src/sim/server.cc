#include "src/sim/server.h"

#include <cassert>
#include <utility>

namespace tzllm {

ServerPool::ServerPool(Simulator* sim, std::string name, int capacity)
    : sim_(sim), name_(std::move(name)), capacity_(capacity) {
  assert(capacity > 0);
}

void ServerPool::Submit(Job job) {
  queue_.push(PendingJob{job.priority, next_seq_++, std::move(job)});
  TryDispatch();
}

void ServerPool::Submit(SimDuration duration,
                        std::function<void()> on_complete, std::string label) {
  Submit(Job{0.0, duration, std::move(on_complete), std::move(label)});
}

void ServerPool::SubmitHeld(Job job) {
  job.held = true;
  queue_.push(PendingJob{job.priority, next_seq_++, std::move(job)});
}

bool ServerPool::TopPriority(double* priority) const {
  if (queue_.empty()) {
    return false;
  }
  *priority = queue_.top().priority;
  return true;
}

bool ServerPool::TakeTop(Job* out) {
  if (queue_.empty()) {
    return false;
  }
  *out = std::move(const_cast<PendingJob&>(queue_.top()).job);
  queue_.pop();
  return true;
}

bool ServerPool::ReleaseOne() {
  if (queue_.empty() || busy_ >= capacity_) {
    return false;
  }
  DispatchTop();
  // Releasing a held head may have unblocked auto-dispatchable jobs queued
  // behind it.
  TryDispatch();
  return true;
}

void ServerPool::DispatchTop() {
  Job job = std::move(const_cast<PendingJob&>(queue_.top()).job);
  queue_.pop();
  ++busy_;
  busy_time_ += job.duration;
  auto on_complete = std::move(job.on_complete);
  sim_->Schedule(job.duration, [this, on_complete = std::move(on_complete)] {
    --busy_;
    ++jobs_completed_;
    if (on_complete) {
      on_complete();
    }
    TryDispatch();
  });
}

void ServerPool::TryDispatch() {
  while (busy_ < capacity_ && !queue_.empty() && !queue_.top().job.held) {
    DispatchTop();
  }
}

}  // namespace tzllm
