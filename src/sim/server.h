// Queueing-model building blocks on top of the Simulator.
//
// A ServerPool models `capacity` identical execution units (CPU cores, NPU
// cores, an IO channel, ...). Jobs are submitted with a priority; whenever a
// unit is free the highest-priority pending job is dispatched and occupies the
// unit for its service duration. Used by the NPU time-sharing evaluation
// (Figure 15), the Geekbench interference models (Figures 2/16) and as the
// substrate under the restoration pipeline executor.
//
// Held jobs make the pool double as an admission-queue front: a job
// submitted with SubmitHeld keeps its place in the priority order but is
// never auto-dispatched — the owner either hands it to a unit explicitly
// (ReleaseOne) or takes it over entirely (TakeTop). The serving runtime
// (src/serve/) queues generation requests this way: the scheduler peeks the
// most urgent waiting request (TopPriority) to decide preemption, then pops
// it (TakeTop) when a session slot frees up.

#ifndef SRC_SIM_SERVER_H_
#define SRC_SIM_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace tzllm {

class ServerPool {
 public:
  struct Job {
    // Lower value = more urgent. Ties dispatch in submission (FIFO) order.
    double priority = 0.0;
    SimDuration duration = 0;
    std::function<void()> on_complete;
    // Optional label used by utilization traces.
    std::string label;
    // Held jobs queue in priority order but wait for an explicit ReleaseOne
    // / TakeTop instead of auto-dispatching. A held job at the head of the
    // queue blocks auto-dispatch behind it — admission is strict priority
    // order, a less-urgent job must not jump a more-urgent held one.
    bool held = false;
  };

  ServerPool(Simulator* sim, std::string name, int capacity);

  void Submit(Job job);

  // Convenience: submit with default priority.
  void Submit(SimDuration duration, std::function<void()> on_complete,
              std::string label = "");

  // Enqueues `job` as held (see Job::held).
  void SubmitHeld(Job job);

  // Most urgent queued job's priority into *priority; false when the queue
  // is empty.
  bool TopPriority(double* priority) const;

  // Pops the most urgent queued job (held or not) into *out WITHOUT running
  // it — the admission-front handoff: the caller decides when and where the
  // job executes. False when the queue is empty.
  bool TakeTop(Job* out);

  // Dispatches the most urgent queued job onto a free unit even if held.
  // False when the queue is empty or every unit is busy.
  bool ReleaseOne();

  int capacity() const { return capacity_; }
  int busy() const { return busy_; }
  size_t queued() const { return queue_.size(); }
  bool idle() const { return busy_ == 0 && queue_.empty(); }
  const std::string& name() const { return name_; }

  // Total unit-time spent servicing jobs (for utilization accounting).
  SimDuration busy_time() const { return busy_time_; }
  uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  struct PendingJob {
    double priority;
    uint64_t seq;
    Job job;
    bool operator>(const PendingJob& other) const {
      return priority != other.priority ? priority > other.priority
                                        : seq > other.seq;
    }
  };

  void TryDispatch();
  // Pops the queue head onto a free unit (caller checked both).
  void DispatchTop();

  Simulator* sim_;
  std::string name_;
  int capacity_;
  int busy_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t jobs_completed_ = 0;
  SimDuration busy_time_ = 0;
  std::priority_queue<PendingJob, std::vector<PendingJob>,
                      std::greater<PendingJob>>
      queue_;
};

}  // namespace tzllm

#endif  // SRC_SIM_SERVER_H_
