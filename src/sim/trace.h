// Execution trace recorder: captures (lane, label, start, end) spans during a
// simulated run and renders them as an ASCII Gantt chart (for benchmark
// output, mirroring the paper's Figure 5 timelines) or as Chrome
// chrome://tracing JSON for offline inspection.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <string>
#include <vector>

#include "src/common/units.h"

namespace tzllm {

struct TraceSpan {
  std::string lane;   // e.g. "CPU0", "NPU", "IO".
  std::string label;  // e.g. "decrypt[3]".
  SimTime start = 0;
  SimTime end = 0;
};

class TraceRecorder {
 public:
  void Add(std::string lane, std::string label, SimTime start, SimTime end);
  void Clear();

  const std::vector<TraceSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  // Span-weighted busy time per lane.
  SimDuration LaneBusyTime(const std::string& lane) const;

  // Renders a fixed-width Gantt chart, one row per lane, `width` columns
  // spanning [0, max end time]. Each span paints the first letter of its
  // label; idle time is '.'.
  std::string RenderAscii(int width = 100) const;

  // Chrome trace event format ("traceEvents" array of X events).
  std::string ToChromeTraceJson() const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace tzllm

#endif  // SRC_SIM_TRACE_H_
