#include "src/sim/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace tzllm {

void TraceRecorder::Add(std::string lane, std::string label, SimTime start,
                        SimTime end) {
  spans_.push_back(TraceSpan{std::move(lane), std::move(label), start, end});
}

void TraceRecorder::Clear() { spans_.clear(); }

SimDuration TraceRecorder::LaneBusyTime(const std::string& lane) const {
  SimDuration total = 0;
  for (const TraceSpan& s : spans_) {
    if (s.lane == lane) {
      total += s.end - s.start;
    }
  }
  return total;
}

std::string TraceRecorder::RenderAscii(int width) const {
  if (spans_.empty() || width <= 0) {
    return "(empty trace)\n";
  }
  SimTime max_end = 0;
  for (const TraceSpan& s : spans_) {
    max_end = std::max(max_end, s.end);
  }
  if (max_end == 0) {
    max_end = 1;
  }

  std::map<std::string, std::string> rows;
  for (const TraceSpan& s : spans_) {
    auto [it, inserted] = rows.try_emplace(s.lane, std::string(width, '.'));
    std::string& row = it->second;
    auto col = [&](SimTime t) {
      return static_cast<int>(static_cast<unsigned __int128>(t) * width /
                              max_end);
    };
    int c0 = std::min(col(s.start), width - 1);
    int c1 = std::min(std::max(col(s.end), c0 + 1), width);
    const char mark = s.label.empty() ? '#' : s.label[0];
    for (int c = c0; c < c1; ++c) {
      row[c] = mark;
    }
  }

  size_t lane_width = 0;
  for (const auto& [lane, row] : rows) {
    lane_width = std::max(lane_width, lane.size());
  }

  std::ostringstream out;
  for (const auto& [lane, row] : rows) {
    out << lane << std::string(lane_width - lane.size() + 1, ' ') << "|" << row
        << "|\n";
  }
  out << std::string(lane_width + 1, ' ') << "0" << std::string(width - 1, ' ')
      << FormatDuration(max_end) << "\n";
  return out.str();
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"" << s.label << "\",\"cat\":\"sim\",\"ph\":\"X\","
        << "\"ts\":" << s.start / 1000 << ",\"dur\":"
        << (s.end - s.start) / 1000 << ",\"pid\":1,\"tid\":\"" << s.lane
        << "\"}";
  }
  out << "]}";
  return out.str();
}

}  // namespace tzllm
