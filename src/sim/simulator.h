// Discrete-event simulator with a virtual nanosecond clock.
//
// Every latency-bearing component of the reproduction (flash, CMA migration,
// NPU jobs, pipeline operators, SMC world switches) advances this clock
// instead of wall time, which makes the full paper evaluation deterministic
// and fast. The simulator is intentionally single-threaded: concurrency in
// the modeled system is represented by interleaved events, exactly like a
// cycle-approximate system simulator.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"

namespace tzllm {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` to run at Now() + delay. Events scheduled for the same
  // instant run in schedule order (FIFO tie-break via sequence number).
  EventId Schedule(SimDuration delay, Callback cb);
  EventId ScheduleAt(SimTime when, Callback cb);

  // Cancels a pending event. Returns false if it already ran / was cancelled.
  bool Cancel(EventId id);

  // Runs the earliest pending event. Returns false if the queue is empty.
  bool Step();

  // Runs until no events remain (or `max_events` safety limit is hit).
  void Run(uint64_t max_events = std::numeric_limits<uint64_t>::max());

  // Runs events with time <= deadline, then sets Now() to deadline.
  void RunUntil(SimTime deadline);

  // Runs until `done` returns true or the queue drains.
  void RunUntilIdleOr(const std::function<bool()>& done);

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return callbacks_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    // Ordering for std::priority_queue (min-heap on {when, seq}).
    bool operator>(const Event& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  // Callbacks are stored out-of-line so Event stays trivially copyable;
  // cancellation simply erases the callback.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace tzllm

#endif  // SRC_SIM_SIMULATOR_H_
