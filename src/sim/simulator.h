// Discrete-event simulator with a virtual nanosecond clock.
//
// Every latency-bearing component of the reproduction (flash, CMA migration,
// NPU jobs, pipeline operators, SMC world switches) advances this clock
// instead of wall time, which makes the full paper evaluation deterministic
// and fast. The simulator is intentionally single-threaded: concurrency in
// the modeled system is represented by interleaved events, exactly like a
// cycle-approximate system simulator.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/units.h"

namespace tzllm {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Locking: mu_ guards the event heap, the callback table and the sequence
// counter. Callbacks run with mu_ released — an event handler re-enters the
// simulator freely (Schedule from inside a callback is the normal case, and
// whole SMC chains run on one Step's stack). The clock is an atomic read
// outside mu_: Now() sits on hot hybrid-timeline paths and must not
// serialize against scheduling.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_.load(std::memory_order_relaxed); }

  // Schedules `cb` to run at Now() + delay. Events scheduled for the same
  // instant run in schedule order (FIFO tie-break via sequence number).
  EventId Schedule(SimDuration delay, Callback cb) TZLLM_EXCLUDES(mu_);
  EventId ScheduleAt(SimTime when, Callback cb) TZLLM_EXCLUDES(mu_);

  // Cancels a pending event. Returns false if it already ran / was cancelled.
  bool Cancel(EventId id) TZLLM_EXCLUDES(mu_);

  // Runs the earliest pending event. Returns false if the queue is empty.
  bool Step() TZLLM_EXCLUDES(mu_);

  // Runs until no events remain (or `max_events` safety limit is hit).
  void Run(uint64_t max_events = std::numeric_limits<uint64_t>::max())
      TZLLM_EXCLUDES(mu_);

  // Runs events with time <= deadline, then sets Now() to deadline.
  void RunUntil(SimTime deadline) TZLLM_EXCLUDES(mu_);

  // Runs until `done` returns true or the queue drains. `done` runs between
  // events, with mu_ released — it may lock its own state (and this
  // simulator) freely.
  void RunUntilIdleOr(const std::function<bool()>& done) TZLLM_EXCLUDES(mu_);

  uint64_t events_executed() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return events_executed_;
  }
  size_t pending_events() const TZLLM_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return callbacks_.size();
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    // Ordering for std::priority_queue (min-heap on {when, seq}).
    bool operator>(const Event& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  mutable Mutex mu_;
  // Written only while mu_ is held (Step/RunUntil); read lock-free.
  std::atomic<SimTime> now_{0};
  uint64_t next_seq_ TZLLM_GUARDED_BY(mu_) = 1;
  uint64_t events_executed_ TZLLM_GUARDED_BY(mu_) = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_
      TZLLM_GUARDED_BY(mu_);
  // Callbacks are stored out-of-line so Event stays trivially copyable;
  // cancellation simply erases the callback.
  std::unordered_map<EventId, Callback> callbacks_ TZLLM_GUARDED_BY(mu_);
};

}  // namespace tzllm

#endif  // SRC_SIM_SIMULATOR_H_
