// Deterministic pseudo-random number generation.
//
// Everything in the reproduction must be reproducible bit-for-bit, so all
// randomness flows through explicitly seeded generators (never std::rand or
// hardware entropy). SplitMix64 is used for seeding and for keyed synthetic
// byte streams (virtual model files); Xoshiro256** is the general generator.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <cstddef>

namespace tzllm {

// SplitMix64: stateless mix usable as a hash of (seed, index).
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t s = seed;
    for (auto& word : state_) {
      s = SplitMix64(s + 0x1234ABCDull);
      word = s;
    }
  }

  // Xoshiro256**.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi].
  double NextDoubleIn(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Approximately normal via sum of uniforms (Irwin-Hall, 12 terms).
  double NextGaussian(double mean, double stddev) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) {
      sum += NextDouble();
    }
    return mean + (sum - 6.0) * stddev;
  }

  // State capture for session checkpointing: a generator restored with
  // SetState continues the exact sequence the saved one would have produced
  // (xoshiro256** state is its four words — nothing else).
  void GetState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) {
      out[i] = state_[i];
    }
  }
  void SetState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = in[i];
    }
  }

  void FillBytes(uint8_t* out, size_t len) {
    size_t i = 0;
    while (i + 8 <= len) {
      uint64_t v = NextU64();
      for (int b = 0; b < 8; ++b) {
        out[i++] = static_cast<uint8_t>(v >> (8 * b));
      }
    }
    if (i < len) {
      uint64_t v = NextU64();
      while (i < len) {
        out[i++] = static_cast<uint8_t>(v);
        v >>= 8;
      }
    }
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

// Deterministic byte at (stream_seed, offset); used by synthetic flash files
// so that any byte range can be regenerated without materializing the file.
constexpr uint8_t SyntheticByteAt(uint64_t stream_seed, uint64_t offset) {
  const uint64_t word = SplitMix64(stream_seed ^ (offset / 8));
  return static_cast<uint8_t>(word >> (8 * (offset % 8)));
}

}  // namespace tzllm

#endif  // SRC_COMMON_RNG_H_
