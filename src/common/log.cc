#include "src/common/log.h"

#include <cstdarg>

namespace tzllm {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* component, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, fmt);
  vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  fprintf(stderr, "[%s %s] %s\n", LevelTag(level), component, body);
}

}  // namespace tzllm
