// Byte-size and time units plus human-readable formatting helpers.

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace tzllm {

// ---------------------------------------------------------------------------
// Byte sizes.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;

// The paper quotes decimal GB throughputs (e.g. "2GB/s"); keep both.
inline constexpr uint64_t kKB = 1000ull;
inline constexpr uint64_t kMB = 1000ull * kKB;
inline constexpr uint64_t kGB = 1000ull * kMB;

inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kPageShift = 12;

constexpr uint64_t BytesToPages(uint64_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}
constexpr uint64_t PagesToBytes(uint64_t pages) { return pages * kPageSize; }
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}
constexpr uint64_t AlignDown(uint64_t v, uint64_t align) {
  return v / align * align;
}
constexpr bool IsAligned(uint64_t v, uint64_t align) { return v % align == 0; }

// "8.12 GiB", "512.0 MiB", "17 B".
std::string FormatBytes(uint64_t bytes);

// ---------------------------------------------------------------------------
// Virtual time. All simulation time is kept in nanoseconds as uint64_t.
// ---------------------------------------------------------------------------

using SimTime = uint64_t;      // Absolute time point, ns since simulation start.
using SimDuration = uint64_t;  // Non-negative span, ns.

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000ull;
inline constexpr SimDuration kMillisecond = 1000ull * kMicrosecond;
inline constexpr SimDuration kSecond = 1000ull * kMillisecond;

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}
constexpr SimDuration FromMillis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

// Duration of transferring `bytes` at `bytes_per_second`.
constexpr SimDuration TransferTime(uint64_t bytes, double bytes_per_second) {
  return bytes_per_second <= 0.0
             ? 0
             : static_cast<SimDuration>(static_cast<double>(bytes) /
                                        bytes_per_second *
                                        static_cast<double>(kSecond));
}

// "1.234 s", "56.7 ms", "890 us", "12 ns".
std::string FormatDuration(SimDuration d);

}  // namespace tzllm

#endif  // SRC_COMMON_UNITS_H_
