// Annotated mutex / condition-variable wrappers for clang thread-safety
// analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
// attributes, so a member declared TZLLM_GUARDED_BY(mu_) could never be
// proven locked through them — the analysis needs lock operations it can
// see. These minimal wrappers (the Abseil/Chromium idiom) annotate exactly
// that: Mutex is a capability, MutexLock a scoped acquisition, CondVar a
// wait that the analysis knows keeps the lock held across wakeups.
//
// Zero-cost next to the underlying primitives: Mutex is a std::mutex,
// MutexLock compiles to lock()/unlock() calls. CondVar wraps
// std::condition_variable_any (the any-lockable variant, needed because the
// lock type is ours, not std::unique_lock<std::mutex>).

#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace tzllm {

class TZLLM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Lowercase on purpose: Mutex satisfies BasicLockable, so CondVar's
  // condition_variable_any (and std::lock_guard, if ever needed) can take
  // it directly.
  void lock() TZLLM_ACQUIRE() { mu_.lock(); }
  void unlock() TZLLM_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII acquisition for one critical section. House rule for everything the
// simulator/SMC fabric can re-enter (see thread_annotations.h): critical
// sections are short and leaf-only — never hold a MutexLock across a
// platform, simulator, RPC, MMIO or callback invocation.
class TZLLM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TZLLM_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() TZLLM_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

class CondVar {
 public:
  // Atomically releases `mu` and blocks; `mu` is re-held on return. As with
  // std::condition_variable, spurious wakeups happen: wrap in a predicate
  // loop with `mu` held.
  void Wait(Mutex& mu) TZLLM_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tzllm

#endif  // SRC_COMMON_MUTEX_H_
