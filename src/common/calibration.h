// Central calibration constants for the TZ-LLM reproduction.
//
// Every constant is traceable to a measurement quoted in the paper (section
// references in comments). The benchmark harness derives all end-to-end
// results from these primitives plus the real scheduling/protocol logic —
// nothing downstream hardcodes a figure's output. A dedicated calibration
// test (tests/core_calibration_test.cc) asserts that the headline emergent
// numbers (e.g. strawman Llama-3-8B cold start, 12.5x NPU prefill ratio)
// reproduce within tolerance.

#ifndef SRC_COMMON_CALIBRATION_H_
#define SRC_COMMON_CALIBRATION_H_

#include "src/common/units.h"

namespace tzllm {

// ---------------------------------------------------------------------------
// TrustZone / world-switch primitives (§7.3 overhead sources).
// ---------------------------------------------------------------------------

// One smc round trip (REE<->TEE world switch pair) including monitor dispatch.
inline constexpr SimDuration kSmcRoundTrip = 8 * kMicrosecond;

// Reprogramming one TZASC region (base/size/DMA bits).
inline constexpr SimDuration kTzascConfigTime = 5 * kMicrosecond;

// Flipping a peripheral's TZPC secure bit.
inline constexpr SimDuration kTzpcConfigTime = 3 * kMicrosecond;

// Re-grouping one GIC interrupt line.
inline constexpr SimDuration kGicRouteTime = 2 * kMicrosecond;

// ---------------------------------------------------------------------------
// NPU (§2.3 challenge #2).
// ---------------------------------------------------------------------------

// "The detach-attach of a Rockchip NPU with the Linux driver takes 32ms."
// Used by the naive two-full-drivers baseline the co-driver design replaces.
inline constexpr SimDuration kNpuDetachAttachTime = 32 * kMillisecond;

// Fixed cost to launch one NPU job (descriptor setup + doorbell + completion
// handling) regardless of world. Calibrated so the per-model NPU decode gains
// land at the paper's +0.9%..+23.2% (Figure 11) with two fused NPU jobs per
// transformer layer in the decode graph.
inline constexpr SimDuration kNpuJobLaunchOverhead = 234 * kMicrosecond;

// ---------------------------------------------------------------------------
// Storage / memory movement (§2.3 challenge #1, Figures 1 and 3).
// ---------------------------------------------------------------------------

// "the I/O throughput of sequential reads on our platform (2GB/s)".
inline constexpr double kFlashSequentialReadBw = 2.0e9;  // bytes/s

// Per-request base latency of the NVMe path (queueing + command overhead).
inline constexpr SimDuration kFlashRequestLatency = 90 * kMicrosecond;

// "the CMA allocation throughput is 1.9GB/s" (single-threaded, fully
// pressured region) => per-4KiB-page migration cost ~2.16us, split between
// the copy itself and unmap/remap bookkeeping.
inline constexpr SimDuration kCmaMigrateCopyPerPage =
    1200 * kNanosecond;  // ~3.4 GB/s raw copy
inline constexpr SimDuration kCmaMigrateFixedPerPage =
    955 * kNanosecond;  // unmap + page-table update + TLB shootdown

// "by using multi-threading, the CMA allocation throughput can reach 3.8GB/s
// (4 threads)" => 4 threads give 2x aggregate speedup.
inline constexpr double kCmaFourThreadSpeedup = 2.0;

// Cost of handing a *free* page to an allocation (buddy bookkeeping). The
// buddy-system bar in Figure 3 (8 GiB in ~0.4 s) emerges from this.
inline constexpr SimDuration kBuddyAllocPerPage = 190 * kNanosecond;

// Movable allocations are biased toward CMA pageblocks relative to pure
// free-space proportionality (page cache and long-lived anonymous memory
// accumulate there); calibrated against the Figure 1 worst-case CMA
// allocation time (4.18 s for 8 GiB under pressure).
inline constexpr double kCmaSpillBias = 2.0;

// Clearing (scrubbing) secure memory on shrink, per byte.
inline constexpr double kMemsetBw = 12.0e9;  // bytes/s

// ---------------------------------------------------------------------------
// Crypto (Figure 1: 891.9 ms to decrypt 8137 MB with 4 threads).
// ---------------------------------------------------------------------------

// Per-thread AES-CTR + checksum throughput: 8.137e9 B / 0.8919 s / 4 threads.
inline constexpr double kDecryptPerThreadBw = 2.28e9;  // bytes/s
inline constexpr int kDecryptThreads = 4;

// ---------------------------------------------------------------------------
// llama.cpp framework initialization (Figure 1).
// ---------------------------------------------------------------------------

inline constexpr SimDuration kLlamaMetaInitTime = FromMillis(447.1);
inline constexpr SimDuration kLlamaBootTime = FromMillis(59.38);
inline constexpr SimDuration kTokenizerInitTime = FromMillis(1799.0);

// Restoring the checkpointed initial state (§3.2 "other techniques"): read
// ~140 MiB of serialized state at flash speed + decrypt + fixup.
inline constexpr SimDuration kCheckpointRestoreTime = FromMillis(118.0);

// Memory footprints of the non-parameter data (Figure 1, 8-bit Llama-3-8B).
inline constexpr uint64_t kFrameworkStateBytes = 140 * kMiB;  // meta+tokenizer

// ---------------------------------------------------------------------------
// Compute throughput (Figure 1: 164.558 s CPU prefill of 512 tokens on
// 8-bit Llama-3-8B => ~46 GFLOP/s effective across 4xA76; §2.3: Rockchip NPU
// gives 12.5x prefill and 1.3x decode on Llama-3-8B).
// ---------------------------------------------------------------------------

// Effective CPU matmul throughput (all 4 big cores cooperating on one op).
inline constexpr double kCpuMatmulFlops = 46.0e9;

// Effective NPU matmul throughput. 16.4x the CPU keeps the *end-to-end*
// prefill ratio at 12.5x once the CPU-resident ops (norms, attention
// softmax, rope) are accounted for.
inline constexpr double kNpuMatmulFlops = 754.0e9;

// CPU-resident light ops cost, expressed as a fraction of the model's CPU
// matmul time (they are bandwidth-bound; ~1.5% keeps 12.5x end-to-end).
inline constexpr double kCpuLightOpFraction = 0.015;

// CPU attention FLOPs coefficient: c * tokens^2 * d_model per layer
// (fused flash-attention-style kernels).
inline constexpr double kAttentionQuadCoeff = 2.0;

// Decode is memory-bandwidth bound: effective weight-streaming bandwidth.
inline constexpr double kCpuDecodeBw = 17.0e9;  // bytes/s
inline constexpr double kNpuDecodeBw = 22.1e9;  // 1.3x CPU (§2.3)

// ---------------------------------------------------------------------------
// S2PT alternative (Figure 2): stage-2 translation overhead model.
// ---------------------------------------------------------------------------

// TLB-miss page-walk cost inflation when a 4KB-granule stage-2 table is
// active (two-dimensional walk: up to 24 memory references vs 4).
inline constexpr double kS2ptWalkInflation = 5.0;
// Baseline fraction of runtime spent in page walks for a walk-heavy workload.
inline constexpr double kBaseWalkCost = 0.025;

// ---------------------------------------------------------------------------
// Platform memory map (Orange Pi 5 Plus, 16 GB variant used in §7).
// ---------------------------------------------------------------------------

inline constexpr uint64_t kDramBytes = 16ull * kGiB;
// Non-movable REE base usage (kernel, firmware, daemons) at boot.
inline constexpr uint64_t kReeBaseUsage = 1ull * kGiB;

}  // namespace tzllm

#endif  // SRC_COMMON_CALIBRATION_H_
