#include "src/common/status.h"

namespace tzllm {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kSecurityViolation:
      return "SECURITY_VIOLATION";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kDataCorruption:
      return "DATA_CORRUPTION";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tzllm
