#include "src/common/units.h"

#include <cinttypes>
#include <cstdio>

namespace tzllm {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    snprintf(buf, sizeof(buf), "%.2f GiB",
             static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    snprintf(buf, sizeof(buf), "%.1f MiB",
             static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    snprintf(buf, sizeof(buf), "%.1f KiB",
             static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

std::string FormatDuration(SimDuration d) {
  char buf[64];
  if (d >= kSecond) {
    snprintf(buf, sizeof(buf), "%.3f s",
             static_cast<double>(d) / static_cast<double>(kSecond));
  } else if (d >= kMillisecond) {
    snprintf(buf, sizeof(buf), "%.2f ms",
             static_cast<double>(d) / static_cast<double>(kMillisecond));
  } else if (d >= kMicrosecond) {
    snprintf(buf, sizeof(buf), "%.1f us",
             static_cast<double>(d) / static_cast<double>(kMicrosecond));
  } else {
    snprintf(buf, sizeof(buf), "%" PRIu64 " ns", d);
  }
  return buf;
}

}  // namespace tzllm
