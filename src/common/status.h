// Lightweight status / result types used across the TZ-LLM code base.
//
// The TEE-facing code paths deliberately avoid exceptions: every fallible
// operation returns a Status (or Result<T>), mirroring how a TEE OS kernel
// would propagate error codes across the SMC boundary.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace tzllm {

enum class ErrorCode : uint32_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kPermissionDenied,    // TZASC/TZPC/GIC or TEE OS rejected an access.
  kSecurityViolation,   // An Iago-style attack was detected and blocked.
  kFailedPrecondition,  // Operation issued in the wrong state.
  kAlreadyExists,
  kResourceExhausted,
  kIoError,
  kDataCorruption,  // Checksum / decryption verification failed.
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,  // A bounded wait ran out (virtual or wall time).
  kUnavailable,       // Transient overload: retry later (admission shedding).
  kAborted,           // The operation was cut short (injected TA crash).
};

// Human-readable name for an error code ("kOk" -> "OK").
const char* ErrorCodeName(ErrorCode code);

// [[nodiscard]] on the class covers every one of the ~390 Status-returning
// APIs at once: any call whose by-value Status result is ignored is a
// -Wunused-result warning on gcc AND clang (promoted to an error repo-wide
// via -Werror=unused-result in CMakeLists). Genuinely-discardable calls must
// say so with an explicit `(void)` cast and a comment explaining why.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code-name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfMemory(std::string msg) {
  return Status(ErrorCode::kOutOfMemory, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status SecurityViolation(std::string msg) {
  return Status(ErrorCode::kSecurityViolation, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status AlreadyExists(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(ErrorCode::kIoError, std::move(msg));
}
inline Status DataCorruption(std::string msg) {
  return Status(ErrorCode::kDataCorruption, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(ErrorCode::kDeadlineExceeded, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}
inline Status Aborted(std::string msg) {
  return Status(ErrorCode::kAborted, std::move(msg));
}

// Result<T>: either a value or an error status. Minimal StatusOr analogue.
// [[nodiscard]] for the same reason as Status: dropping a Result silently
// drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates errors up the call stack, kernel-style.
#define TZLLM_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::tzllm::Status _st = (expr);            \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

#define TZLLM_ASSIGN_OR_RETURN(lhs, expr)    \
  auto lhs##_result = (expr);                \
  if (!lhs##_result.ok()) {                  \
    return lhs##_result.status();            \
  }                                          \
  auto& lhs = *lhs##_result

}  // namespace tzllm

#endif  // SRC_COMMON_STATUS_H_
