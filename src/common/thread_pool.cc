#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace tzllm {

namespace {

// Clears the reentrancy flag even if `body` throws.
class ReentrancyGuard {
 public:
  explicit ReentrancyGuard(std::atomic<bool>* flag) : flag_(flag) {
    if (flag_->exchange(true, std::memory_order_acquire)) {
      std::fprintf(stderr,
                   "ThreadPool::ParallelFor is not reentrant: nested or "
                   "concurrent call on the same pool would deadlock\n");
      std::abort();
    }
  }
  ~ReentrancyGuard() { flag_->store(false, std::memory_order_release); }

 private:
  std::atomic<bool>* flag_;
};

}  // namespace

ThreadPool::ThreadPool(int n_threads) : n_threads_(std::max(1, n_threads)) {
  workers_.reserve(n_threads_ - 1);
  for (int i = 1; i < n_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop(int part_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(uint64_t, uint64_t)>* body;
    uint64_t begin, end, chunk;
    {
      MutexLock lock(&mu_);
      while (!stop_ && epoch_ == seen_epoch) {
        work_cv_.Wait(mu_);
      }
      if (stop_) {
        return;
      }
      seen_epoch = epoch_;
      body = body_;
      begin = begin_;
      end = end_;
      chunk = chunk_;
    }
    const uint64_t part_begin =
        std::min(end, begin + static_cast<uint64_t>(part_index) * chunk);
    const uint64_t part_end = std::min(end, part_begin + chunk);
    if (part_begin < part_end) {
      (*body)(part_begin, part_end);
    }
    {
      MutexLock lock(&mu_);
      --pending_;
    }
    done_cv_.NotifyOne();
  }
}

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, uint64_t)>& body) {
  if (begin >= end) {
    return;
  }
  // The guard covers the inline fast path too: nesting there happens to be
  // harmless today, but enforcing the documented contract uniformly keeps a
  // body that "worked" on a 1-thread pool from deadlocking on a larger one.
  ReentrancyGuard guard(&in_parallel_for_);
  const uint64_t span = end - begin;
  if (workers_.empty() || span == 1) {
    body(begin, end);
    return;
  }
  const uint64_t parts = static_cast<uint64_t>(n_threads_);
  const uint64_t chunk = (span + parts - 1) / parts;
  {
    MutexLock lock(&mu_);
    body_ = &body;
    begin_ = begin;
    end_ = end;
    chunk_ = chunk;
    pending_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.NotifyAll();
  // The caller is part 0.
  body(begin, std::min(end, begin + chunk));
  {
    MutexLock lock(&mu_);
    while (pending_ != 0) {
      done_cv_.Wait(mu_);
    }
  }
}

}  // namespace tzllm
