// Static-partition fork/join pool for the functional inference kernels.
//
// Deliberately simpler than a work-stealing scheduler: ParallelFor splits the
// index range into one contiguous chunk per thread (the caller runs chunk 0),
// which keeps per-row summation order — and therefore logits — bit-identical
// to the single-threaded schedule. Kernel parallelism here is regular enough
// (equal-cost rows) that stealing would buy nothing and cost determinism.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace tzllm {

class ThreadPool {
 public:
  // Spawns n_threads - 1 workers; the ParallelFor caller acts as thread 0.
  // n_threads <= 1 creates no workers and runs everything inline.
  explicit ThreadPool(int n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int n_threads() const { return n_threads_; }

  // Runs body(chunk_begin, chunk_end) over a static partition of
  // [begin, end): part i covers [begin + i*chunk, ...), one part per thread.
  // Blocks until every part finished. Not reentrant: body must not call
  // ParallelFor on the same pool — with workers present a nested call would
  // publish a new epoch while the outer one is still pending and deadlock
  // the outer caller. Enforced twice: at compile time on clang, the negative
  // capability TZLLM_REQUIRES(!mu_) rejects any caller that could already be
  // inside this pool's fork/join section; at run time, a nested (or
  // concurrent) call aborts with a diagnostic instead of hanging. The
  // runtime check is two relaxed atomic ops, noise next to the fork/join
  // handoff, so it stays on in release builds.
  void ParallelFor(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t, uint64_t)>& body)
      TZLLM_REQUIRES(!mu_);

 private:
  void WorkerLoop(int part_index) TZLLM_REQUIRES(!mu_);

  const int n_threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;  // Signals a new epoch to workers.
  CondVar done_cv_;  // Signals epoch completion to caller.
  uint64_t epoch_ TZLLM_GUARDED_BY(mu_) = 0;  // Incremented per ParallelFor.
  int pending_ TZLLM_GUARDED_BY(mu_) = 0;  // Workers still in this epoch.
  bool stop_ TZLLM_GUARDED_BY(mu_) = false;
  // Reentrancy guard: set for the duration of a ParallelFor call.
  std::atomic<bool> in_parallel_for_{false};

  // Current epoch's task (guarded by mu_ for publication).
  const std::function<void(uint64_t, uint64_t)>* body_ TZLLM_GUARDED_BY(mu_) =
      nullptr;
  uint64_t begin_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t end_ TZLLM_GUARDED_BY(mu_) = 0;
  uint64_t chunk_ TZLLM_GUARDED_BY(mu_) = 0;
};

}  // namespace tzllm

#endif  // SRC_COMMON_THREAD_POOL_H_
