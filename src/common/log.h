// Minimal leveled logger. Default level is kWarn so tests and benchmarks stay
// quiet; examples turn on kInfo to narrate what the system does.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdio>
#include <string>

namespace tzllm {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging with a component tag, e.g. LogInfo("tee", "...").
void LogMessage(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

#define TZLLM_LOG_DEBUG(component, ...) \
  ::tzllm::LogMessage(::tzllm::LogLevel::kDebug, component, __VA_ARGS__)
#define TZLLM_LOG_INFO(component, ...) \
  ::tzllm::LogMessage(::tzllm::LogLevel::kInfo, component, __VA_ARGS__)
#define TZLLM_LOG_WARN(component, ...) \
  ::tzllm::LogMessage(::tzllm::LogLevel::kWarn, component, __VA_ARGS__)
#define TZLLM_LOG_ERROR(component, ...) \
  ::tzllm::LogMessage(::tzllm::LogLevel::kError, component, __VA_ARGS__)

}  // namespace tzllm

#endif  // SRC_COMMON_LOG_H_
