// Clang thread-safety annotation macros (no-ops elsewhere).
//
// These let the compiler prove lock discipline over *all* code paths instead
// of the schedules a test happens to exercise: a member declared
// TZLLM_GUARDED_BY(mu_) can only be touched with mu_ held, a function
// declared TZLLM_REQUIRES(mu_) can only be called with it held, and a
// violation is a hard error under -Wthread-safety -Werror (the clang CI
// legs build with it; see README "Static analysis & invariants").
//
// The house locking discipline these annotations encode for the simulator-
// facing classes (TeeNpuDriver, NpuDevice, ReeNpuDriver, Simulator,
// NpuBackend): critical sections are short and leaf-only — NO platform,
// simulator, RPC, MMIO or callback invocation while holding a lock. The SMC
// fabric re-enters synchronously on one thread (IssueJob -> REE ScheduleNext
// -> OnTakeover is a single call stack), so holding a lock across any of
// those calls is a self-deadlock, not just contention. Functions that drive
// the simulator or fire callbacks are annotated TZLLM_EXCLUDES(mu_) so the
// analysis rejects call sites that would violate this.

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define TZLLM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TZLLM_THREAD_ANNOTATION(x)  // no-op on gcc/msvc
#endif

// A type that can be used as a capability (std::mutex qualifies via the
// analysis' built-in understanding; this is for our own wrapper types).
#define TZLLM_CAPABILITY(x) TZLLM_THREAD_ANNOTATION(capability(x))

// Data members: only accessible while holding the named mutex / the mutex
// behind the named pointer.
#define TZLLM_GUARDED_BY(x) TZLLM_THREAD_ANNOTATION(guarded_by(x))
#define TZLLM_PT_GUARDED_BY(x) TZLLM_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: caller must hold / must NOT hold the named mutexes.
#define TZLLM_REQUIRES(...) \
  TZLLM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TZLLM_REQUIRES_SHARED(...) \
  TZLLM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define TZLLM_EXCLUDES(...) TZLLM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that take / release the named mutexes themselves.
#define TZLLM_ACQUIRE(...) \
  TZLLM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TZLLM_ACQUIRE_SHARED(...) \
  TZLLM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define TZLLM_RELEASE(...) \
  TZLLM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Lock-ordering edge: this mutex must be acquired after x.
#define TZLLM_ACQUIRED_AFTER(...) \
  TZLLM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define TZLLM_ACQUIRED_BEFORE(...) \
  TZLLM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

// RAII types that hold a capability for their lifetime (std::lock_guard /
// unique_lock are already known to the analysis as scoped capabilities).
#define TZLLM_SCOPED_CAPABILITY TZLLM_THREAD_ANNOTATION(scoped_lockable)

// Return-value form: the function returns a reference to the mutex that
// guards its result.
#define TZLLM_RETURN_CAPABILITY(x) TZLLM_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot see through (e.g. a predicate
// lambda invoked under the lock by a std::condition_variable wait). Use
// sparingly and say why at the call site.
#define TZLLM_NO_THREAD_SAFETY_ANALYSIS \
  TZLLM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
