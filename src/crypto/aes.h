// AES-128 block cipher (FIPS-197) and CTR-mode streaming, implemented from
// scratch for the reproduction. The paper links llama.cpp against OpenSSL for
// parameter decryption; here the TEE uses this self-contained implementation
// so the repo has no external crypto dependency. Verified against FIPS-197 /
// NIST SP 800-38A test vectors in tests/crypto_aes_test.cc.
//
// CTR mode lets the restoration pipeline decrypt arbitrary tensor extents
// independently (seekable by block offset), which is exactly what the
// chunked, preemptible decryption micro-operators need.

#ifndef SRC_CRYPTO_AES_H_
#define SRC_CRYPTO_AES_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tzllm {

using AesKey128 = std::array<uint8_t, 16>;
using AesBlock = std::array<uint8_t, 16>;

class Aes128 {
 public:
  explicit Aes128(const AesKey128& key);

  // Encrypts one 16-byte block in place (ECB primitive).
  void EncryptBlock(uint8_t block[16]) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<uint8_t, 176> round_keys_;
};

// AES-128-CTR stream cipher. Encryption == decryption.
class AesCtr {
 public:
  AesCtr(const AesKey128& key, const AesBlock& iv);

  // XORs the keystream for absolute stream offset `offset` into
  // data[0..len). Offsets may be arbitrary (not block aligned) and calls may
  // be issued out of order — essential for parallel / preempted decryption
  // operators that each own a byte range of a tensor.
  void Crypt(uint64_t offset, uint8_t* data, size_t len) const;

  // Convenience for contiguous whole-buffer operation starting at offset 0.
  void CryptAll(uint8_t* data, size_t len) const { Crypt(0, data, len); }

 private:
  void KeystreamBlock(uint64_t block_index, uint8_t out[16]) const;

  Aes128 cipher_;
  AesBlock iv_;
};

}  // namespace tzllm

#endif  // SRC_CRYPTO_AES_H_
