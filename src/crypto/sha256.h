// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the TEE to verify model-file contents returned by the untrusted
// REE filesystem (the paper's Iago-attack defense for model loading, §6) and
// to derive checkpoint integrity tags. Verified against NIST vectors in
// tests/crypto_sha256_test.cc.

#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tzllm {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const std::string& s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  // Finalizes and returns the digest. The object must not be reused after.
  Sha256Digest Finalize();

  // One-shot helpers.
  static Sha256Digest Hash(const uint8_t* data, size_t len);
  static Sha256Digest Hash(const std::string& s);

 private:
  void ProcessBlock(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
};

// Lowercase hex string of a digest.
std::string DigestToHex(const Sha256Digest& digest);

// Truncated 64-bit tag, convenient for per-tensor checksum tables.
uint64_t DigestToTag64(const Sha256Digest& digest);

}  // namespace tzllm

#endif  // SRC_CRYPTO_SHA256_H_
