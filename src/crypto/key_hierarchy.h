// Model key hierarchy (paper §6, "Preventing direct access attacks"):
//
//   hardware root key (fused, never leaves the SoC model)
//     └── TEE key           (derived; only the TEE OS can use it)
//           └── model key   (per model; stored in flash wrapped by the TEE
//                            key; unwrapped inside the TEE, released only to
//                            the LLM TA)
//
// Keys are derived with SHA-256-based KDF and models are encrypted with
// AES-128-CTR under their model key.

#ifndef SRC_CRYPTO_KEY_HIERARCHY_H_
#define SRC_CRYPTO_KEY_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/crypto/aes.h"
#include "src/crypto/sha256.h"

namespace tzllm {

// A wrapped (encrypted) model key as stored in flash next to the model file.
struct WrappedModelKey {
  std::string model_id;
  std::vector<uint8_t> ciphertext;  // key material encrypted under TEE key.
  AesBlock iv{};                    // CTR IV used for wrapping.
  Sha256Digest integrity_tag{};     // Digest over (model_id || plaintext key).
};

class KeyHierarchy {
 public:
  // `root_seed` models the fused hardware unique key.
  explicit KeyHierarchy(uint64_t root_seed);

  // Derives the TEE key. In the threat model only TEE-side code may call
  // this; the REE never holds a KeyHierarchy with the correct seed.
  AesKey128 DeriveTeeKey() const;

  // Derives a fresh model key deterministically from the model id (provider
  // side; the provider knows the plaintext key and ships the wrapped form).
  AesKey128 DeriveModelKey(const std::string& model_id) const;

  // Wraps a model key under the TEE key for storage in untrusted flash.
  WrappedModelKey WrapModelKey(const std::string& model_id,
                               const AesKey128& model_key) const;

  // Unwraps and integrity-checks a model key. Fails with kDataCorruption if
  // the wrapped blob was tampered with (REE flash is untrusted).
  Result<AesKey128> UnwrapModelKey(const WrappedModelKey& wrapped) const;

  // Per-model CTR IV (public; derived from the model id).
  static AesBlock ModelIv(const std::string& model_id);

 private:
  AesKey128 Kdf(const std::string& label) const;

  uint64_t root_seed_;
};

}  // namespace tzllm

#endif  // SRC_CRYPTO_KEY_HIERARCHY_H_
