#include "src/crypto/key_hierarchy.h"

#include <cstring>

namespace tzllm {

KeyHierarchy::KeyHierarchy(uint64_t root_seed) : root_seed_(root_seed) {}

AesKey128 KeyHierarchy::Kdf(const std::string& label) const {
  Sha256 h;
  uint8_t seed_bytes[8];
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<uint8_t>(root_seed_ >> (8 * i));
  }
  h.Update(seed_bytes, sizeof(seed_bytes));
  h.Update(label);
  const Sha256Digest digest = h.Finalize();
  AesKey128 key;
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

AesKey128 KeyHierarchy::DeriveTeeKey() const { return Kdf("tzllm/tee-key/v1"); }

AesKey128 KeyHierarchy::DeriveModelKey(const std::string& model_id) const {
  return Kdf("tzllm/model-key/v1/" + model_id);
}

AesBlock KeyHierarchy::ModelIv(const std::string& model_id) {
  const Sha256Digest digest = Sha256::Hash("tzllm/model-iv/v1/" + model_id);
  AesBlock iv;
  std::memcpy(iv.data(), digest.data(), 8);
  // Zero the 64-bit counter half so CTR block indices start at 0.
  std::memset(iv.data() + 8, 0, 8);
  return iv;
}

WrappedModelKey KeyHierarchy::WrapModelKey(const std::string& model_id,
                                           const AesKey128& model_key) const {
  WrappedModelKey wrapped;
  wrapped.model_id = model_id;
  wrapped.iv = ModelIv("wrap/" + model_id);

  Sha256 tag;
  tag.Update(model_id);
  tag.Update(model_key.data(), model_key.size());
  wrapped.integrity_tag = tag.Finalize();

  wrapped.ciphertext.assign(model_key.begin(), model_key.end());
  AesCtr ctr(DeriveTeeKey(), wrapped.iv);
  ctr.CryptAll(wrapped.ciphertext.data(), wrapped.ciphertext.size());
  return wrapped;
}

Result<AesKey128> KeyHierarchy::UnwrapModelKey(
    const WrappedModelKey& wrapped) const {
  if (wrapped.ciphertext.size() != 16) {
    return Status(ErrorCode::kDataCorruption, "wrapped key has wrong size");
  }
  std::vector<uint8_t> plain = wrapped.ciphertext;
  AesCtr ctr(DeriveTeeKey(), wrapped.iv);
  ctr.CryptAll(plain.data(), plain.size());

  Sha256 tag;
  tag.Update(wrapped.model_id);
  tag.Update(plain.data(), plain.size());
  if (tag.Finalize() != wrapped.integrity_tag) {
    return Status(ErrorCode::kDataCorruption,
                  "model key integrity check failed (tampered flash?)");
  }
  AesKey128 key;
  std::memcpy(key.data(), plain.data(), key.size());
  return key;
}

}  // namespace tzllm
