// Paged KV cache (ISSUE 9): pool-backed page tables must change WHERE the
// cache bytes live, never their values — logits and greedy tokens stay
// bit-identical to the flat arena across page hops, encrypted REE spill +
// restore, copy-on-write forks off a shared prefix, and over-subscribed
// serving. Tampering with a spilled page in REE memory fails closed with
// kDataCorruption (the PR 6 checkpoint contract), and the accounting
// (CurrentBytes resident-only, BudgetBytes == ArenaBytes) stays truthful in
// every storage x paging mode.

#include "src/llm/kv_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/core/runtime.h"
#include "src/llm/tensor.h"

namespace tzllm {
namespace {

constexpr int kPagePositions = 4;

AesKey128 TestSpillKey() {
  AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0xA0 + i);
  }
  return key;
}

class PagedKvTest : public ::testing::Test {
 protected:
  PagedKvTest() : spec_(ModelSpec::Create(TestTinyModel())) {}

  int kv_dim() const { return spec_.config().kv_dim(); }
  int n_layers() const { return spec_.config().n_layers; }
  int max_ctx() const { return spec_.config().max_ctx; }

  KvPagePoolOptions PoolOpts(int frames, bool spill = true) const {
    KvPagePoolOptions o;
    o.page_positions = kPagePositions;
    o.pool_bytes = frames * KvPagePool::PageBytes(spec_, KvStorage::kF16,
                                                  kPagePositions);
    o.spill = spill;
    o.spill_key = TestSpillKey();
    return o;
  }

  // Deterministic small-integer rows: exactly representable at f16, so
  // every comparison below is equality, not tolerance. `salt` distinguishes
  // sessions.
  float KVal(int layer, int pos, int i, float salt = 0.0f) const {
    return 100.0f * layer + 10.0f * pos + i % 7 + salt;
  }
  float VVal(int layer, int pos, int i, float salt = 0.0f) const {
    return 1000.0f + KVal(layer, pos, i, salt);
  }

  void AppendPosition(KvCache* c, int pos, float salt = 0.0f) const {
    std::vector<float> k(kv_dim()), v(kv_dim());
    for (int l = 0; l < n_layers(); ++l) {
      for (int i = 0; i < kv_dim(); ++i) {
        k[i] = KVal(l, pos, i, salt);
        v[i] = VVal(l, pos, i, salt);
      }
      ASSERT_TRUE(c->Append(l, k.data(), v.data()).ok())
          << "layer " << l << " pos " << pos;
    }
    c->FinishPosition();
  }

  void FillCache(KvCache* c, int positions, float salt = 0.0f) const {
    for (int p = 0; p < positions; ++p) {
      AppendPosition(c, p, salt);
    }
  }

  // Reads one position's rows back (caller ensured residency for paged
  // caches) and checks them against the fill pattern.
  void ExpectRow(const KvCache& c, int layer, int pos,
                 float salt = 0.0f) const {
    for (int i = 0; i < kv_dim(); ++i) {
      EXPECT_EQ(F16ToF32(c.KeyHalfAt(layer, pos)[i]), KVal(layer, pos, i, salt))
          << "K layer " << layer << " pos " << pos << " elem " << i;
      EXPECT_EQ(F16ToF32(c.ValueHalfAt(layer, pos)[i]),
                VVal(layer, pos, i, salt))
          << "V layer " << layer << " pos " << pos << " elem " << i;
    }
  }

  // Paged read with residency: restore the position's page first (the
  // executor's pin does this in production).
  void ExpectRowResident(KvCache* c, KvPagePool* pool, int layer, int pos,
                         float salt = 0.0f) const {
    ASSERT_TRUE(pool->EnsureResident(c->pages()[pos / kPagePositions]).ok());
    ExpectRow(*c, layer, pos, salt);
  }

  ModelSpec spec_;
};

// --- Pool geometry and budgets. -------------------------------------------

TEST_F(PagedKvTest, PoolGeometryAndFrameFloor) {
  const uint64_t f16 =
      KvPagePool::PageBytes(spec_, KvStorage::kF16, kPagePositions);
  EXPECT_EQ(f16, static_cast<uint64_t>(n_layers()) * kPagePositions *
                     kv_dim() * kKvVectorsPerPosition * 2);
  EXPECT_EQ(KvPagePool::PageBytes(spec_, KvStorage::kF32, kPagePositions),
            2 * f16);

  // pool_bytes == 0 still yields one frame (the pool is never zero-sized);
  // otherwise the frame count is the floor of the budget.
  KvPagePoolOptions opts = PoolOpts(0);
  opts.pool_bytes = 0;
  EXPECT_EQ(KvPagePool::FramesFor(spec_, KvStorage::kF16, opts), 1);
  opts.pool_bytes = 3 * f16 + f16 / 2;
  EXPECT_EQ(KvPagePool::FramesFor(spec_, KvStorage::kF16, opts), 3);

  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(3));
  EXPECT_EQ(pool.frames(), 3);
  EXPECT_EQ(pool.free_frames(), 3);
  EXPECT_EQ(pool.page_bytes(), f16);
  EXPECT_EQ(pool.PoolBytes(), 3 * f16);
}

// --- Spill / restore. -----------------------------------------------------

TEST_F(PagedKvTest, SpillRoundTripRestoresExactBytes) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(1));
  auto a = pool.Alloc(/*pinned=*/false);
  ASSERT_TRUE(a.ok());
  uint16_t* data = pool.Data16(*a);
  ASSERT_NE(data, nullptr);
  const size_t elems = pool.page_bytes() / sizeof(uint16_t);
  for (size_t i = 0; i < elems; ++i) {
    data[i] = static_cast<uint16_t>(i * 2654435761u);
  }
  std::vector<uint16_t> expected(data, data + elems);

  // The second allocation evicts the only unpinned page to REE memory.
  auto b = pool.Alloc(false);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(pool.resident(*a));
  EXPECT_EQ(pool.spilled_pages(), 1);
  EXPECT_EQ(pool.stats().spills, 1u);
  EXPECT_EQ(pool.SpilledBytes(), pool.page_bytes());
  EXPECT_EQ(pool.Data16(*a), nullptr);

  // The REE blob is ciphertext: no plaintext KV row survives in it.
  ASSERT_NE(pool.ree_blob_data(*a), nullptr);
  ASSERT_GT(pool.ree_blob_size(*a), pool.page_bytes());
  const uint8_t* ct = pool.ree_blob_data(*a) +
                      (pool.ree_blob_size(*a) - pool.page_bytes());
  EXPECT_NE(std::memcmp(ct, expected.data(), pool.page_bytes()), 0);

  // Restore decrypts + verifies and hands back the exact bytes (evicting
  // the other page in turn — one frame total).
  ASSERT_TRUE(pool.EnsureResident(*a).ok());
  EXPECT_FALSE(pool.resident(*b));
  EXPECT_EQ(pool.stats().restores, 1u);
  data = pool.Data16(*a);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(std::memcmp(data, expected.data(), pool.page_bytes()), 0);
}

TEST_F(PagedKvTest, TamperedSpillBlobFailsClosed) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(1));
  auto a = pool.Alloc(false);
  ASSERT_TRUE(a.ok());
  pool.Data16(*a)[7] = 0x1234;
  auto b = pool.Alloc(false);
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(pool.resident(*a));

  // Flip one ciphertext byte: the decrypted page no longer matches its
  // SHA-256 digest — kDataCorruption, never silently wrong KV.
  uint8_t* blob = pool.ree_blob_data(*a);
  ASSERT_NE(blob, nullptr);
  const size_t last = pool.ree_blob_size(*a) - 1;
  blob[last] ^= 0x01;
  EXPECT_EQ(pool.EnsureResident(*a).code(), ErrorCode::kDataCorruption);

  // Undoing the flip makes the same blob restorable again: the failure was
  // the tamper, not the spill machinery.
  ASSERT_NE(pool.ree_blob_data(*a), nullptr);
  pool.ree_blob_data(*a)[last] ^= 0x01;
  EXPECT_TRUE(pool.EnsureResident(*a).ok());
  EXPECT_EQ(F16ToF32(pool.Data16(*a)[7]), F16ToF32(0x1234));

  // A relabeled blob (page-id bytes follow the 8-byte magic) is rejected on
  // its labels — substituting another page's spill is tampering too.
  ASSERT_FALSE(pool.resident(*b));
  pool.ree_blob_data(*b)[8] ^= 0xFF;
  EXPECT_EQ(pool.EnsureResident(*b).code(), ErrorCode::kDataCorruption);
}

TEST_F(PagedKvTest, PinnedPagesAreNeverEvicted) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(1));
  auto a = pool.Alloc(/*pinned=*/true);
  ASSERT_TRUE(a.ok());
  // The only frame is pinned: allocation cannot evict it.
  EXPECT_EQ(pool.Alloc(false).status().code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(pool.resident(*a));
  pool.Unpin(*a);
  auto b = pool.Alloc(false);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(pool.resident(*a));
}

TEST_F(PagedKvTest, SpillDisabledIsAHardBudget) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(1, /*spill=*/false));
  auto a = pool.Alloc(false);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool.Alloc(false).status().code(), ErrorCode::kResourceExhausted);
  // Nothing left the secure region.
  EXPECT_EQ(pool.spilled_pages(), 0);
  EXPECT_EQ(pool.stats().spills, 0u);
}

TEST_F(PagedKvTest, LastUnrefScrubsAndRecyclesTheFrame) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(2));
  auto a = pool.Alloc(false);
  ASSERT_TRUE(a.ok());
  pool.Data16(*a)[0] = 0xBEEF;
  pool.Ref(*a);
  EXPECT_EQ(pool.refcount(*a), 2);
  ASSERT_TRUE(pool.Unref(*a).ok());
  EXPECT_EQ(pool.refcount(*a), 1);
  EXPECT_TRUE(pool.resident(*a));
  ASSERT_TRUE(pool.Unref(*a).ok());
  EXPECT_EQ(pool.free_frames(), 2);

  // The recycled id hands out a scrubbed frame: no prior session's KV
  // plaintext is observable through a fresh allocation.
  auto again = pool.Alloc(false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *a);
  const uint16_t* data = pool.Data16(*again);
  const size_t elems = pool.page_bytes() / sizeof(uint16_t);
  for (size_t i = 0; i < elems; ++i) {
    ASSERT_EQ(data[i], 0) << "elem " << i;
  }
}

// --- Paged cache vs flat cache. -------------------------------------------

TEST_F(PagedKvTest, PagedRowsMatchFlatBitExactly) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(16));
  KvCache flat(spec_);
  KvCache paged(spec_, &pool, KvStorage::kF16, nullptr);
  EXPECT_FALSE(flat.paged());
  EXPECT_TRUE(paged.paged());

  const int positions = 10;  // 2 full pages + a partial third.
  FillCache(&flat, positions);
  FillCache(&paged, positions);
  EXPECT_EQ(paged.PageCount(), 3);

  for (int l = 0; l < n_layers(); ++l) {
    for (int p = 0; p < positions; ++p) {
      EXPECT_EQ(std::memcmp(paged.KeyHalfAt(l, p), flat.KeyHalfAt(l, p),
                            kv_dim() * sizeof(uint16_t)),
                0)
          << "K layer " << l << " pos " << p;
      EXPECT_EQ(std::memcmp(paged.ValueHalfAt(l, p), flat.ValueHalfAt(l, p),
                            kv_dim() * sizeof(uint16_t)),
                0)
          << "V layer " << l << " pos " << p;
    }
  }

  // The attend hop contract: flat is one max_ctx-long run; paged runs end
  // at page boundaries, and rows inside a run are adjacent.
  EXPECT_EQ(flat.RunLen(0), max_ctx());
  EXPECT_EQ(paged.RunLen(0), kPagePositions);
  EXPECT_EQ(paged.RunLen(kPagePositions - 1), 1);
  EXPECT_EQ(paged.RunLen(kPagePositions), kPagePositions);
  EXPECT_EQ(paged.KeyHalfAt(0, 1), paged.KeyHalfAt(0, 0) + kv_dim());
}

TEST_F(PagedKvTest, PagedF32ReferenceModeStoresExactFloats) {
  KvPagePoolOptions opts = PoolOpts(0);
  opts.pool_bytes =
      4 * KvPagePool::PageBytes(spec_, KvStorage::kF32, kPagePositions);
  KvPagePool pool(spec_, KvStorage::kF32, opts);
  KvCache paged(spec_, &pool, KvStorage::kF32, nullptr);
  EXPECT_EQ(paged.bytes_per_elem(), 4u);

  std::vector<float> k(kv_dim()), v(kv_dim());
  for (int i = 0; i < kv_dim(); ++i) {
    k[i] = 0.1f + 0.001f * i;
    v[i] = -2.0f / (i + 7);
  }
  ASSERT_TRUE(paged.AppendBatch(0, 1, k.data(), v.data()).ok());
  for (int i = 0; i < kv_dim(); ++i) {
    EXPECT_EQ(paged.KeyAt(0, 0)[i], k[i]);
    EXPECT_EQ(paged.ValueAt(0, 0)[i], v[i]);
  }
}

TEST_F(PagedKvTest, AppendThroughSpillRoundTripsAndAccountsTruthfully) {
  // 3 pages of appends through a 2-frame pool: the position-major fill
  // (layer 0 then layer 1 per position, like a real forward pass) keeps the
  // hot page resident and spills the cold ones.
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(2));
  KvCache paged(spec_, &pool, KvStorage::kF16, nullptr);
  const int positions = 3 * kPagePositions;
  FillCache(&paged, positions);
  EXPECT_EQ(paged.PageCount(), 3);
  EXPECT_GT(pool.stats().spills, 0u);

  // CurrentBytes() is truthful under spill: resident secure bytes only,
  // with the spilled remainder accounted separately and the sum equal to
  // everything appended.
  const uint64_t appended = static_cast<uint64_t>(n_layers()) * positions *
                            kv_dim() * kKvVectorsPerPosition *
                            kKvAccountedBytesPerElem;
  EXPECT_GT(paged.SpilledBytes(), 0u);
  EXPECT_EQ(paged.CurrentBytes() + paged.SpilledBytes(), appended);
  uint64_t resident = 0;
  for (int i = 0; i < paged.PageCount(); ++i) {
    resident += pool.resident(paged.pages()[i]) ? pool.page_bytes() : 0;
  }
  EXPECT_EQ(paged.CurrentBytes(), resident);

  // Every row survives the spill/restore churn bit-exactly.
  for (int p = 0; p < positions; ++p) {
    for (int l = 0; l < n_layers(); ++l) {
      ExpectRowResident(&paged, &pool, l, p);
    }
  }
  EXPECT_GT(pool.stats().restores, 0u);

  // A 3-page cache cannot be fully pinned into 2 frames: the step pin fails
  // as a capacity condition instead of silently attending spilled rows.
  EXPECT_EQ(paged.PinForStep().status().code(),
            ErrorCode::kResourceExhausted);
}

TEST_F(PagedKvTest, PinForStepRestoresEveryPageAndHoldsThem) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(3));
  KvCache paged(spec_, &pool, KvStorage::kF16, nullptr);
  const int positions = 3 * kPagePositions;
  FillCache(&paged, positions);

  // Evict one of the cache's pages with an unrelated allocation.
  auto temp = pool.Alloc(false);
  ASSERT_TRUE(temp.ok());
  int spilled = 0;
  for (int i = 0; i < paged.PageCount(); ++i) {
    spilled += pool.resident(paged.pages()[i]) ? 0 : 1;
  }
  ASSERT_EQ(spilled, 1);

  {
    auto pin = paged.PinForStep();
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    // While pinned every page is resident and directly readable — the raw
    // row pointers the executor walks are valid for the whole step.
    for (int i = 0; i < paged.PageCount(); ++i) {
      EXPECT_TRUE(pool.resident(paged.pages()[i]));
    }
    for (int p = 0; p < positions; ++p) {
      ExpectRow(paged, 0, p);
    }
    // The pinned pages displaced the temp page, not each other.
    EXPECT_FALSE(pool.resident(*temp));
  }
  // Pin released: the pages are evictable again.
  ASSERT_TRUE(pool.EnsureResident(*temp).ok());
  ASSERT_TRUE(pool.Unref(*temp).ok());
}

// --- Copy-on-write prefix forks. ------------------------------------------

TEST_F(PagedKvTest, CowPrivatizesTheForkPageAndIsolatesSessions) {
  KvPagePool pool(spec_, KvStorage::kF16, PoolOpts(8));
  KvCache a(spec_, &pool, KvStorage::kF16, nullptr);
  FillCache(&a, 2 * kPagePositions);  // Pages 0 and 1, both full.

  // B maps the first 6 positions of A's pages (a partial second page — the
  // fork point sits mid-page, the hard case).
  KvCache b(spec_, &pool, KvStorage::kF16, nullptr);
  ASSERT_TRUE(b.AdoptPrefix(a.pages().data(), 2, 6).ok());
  EXPECT_EQ(b.seq_len(), 6);
  EXPECT_EQ(pool.refcount(a.pages()[0]), 2);
  EXPECT_EQ(pool.refcount(a.pages()[1]), 2);
  // Adopting into a non-empty cache is a caller bug, not a merge.
  EXPECT_EQ(b.AdoptPrefix(a.pages().data(), 2, 6).code(),
            ErrorCode::kInvalidArgument);

  // B's first divergent append privatizes page 1 (one COW copy for the
  // whole position, not one per layer); page 0 stays shared.
  AppendPosition(&b, 6, /*salt=*/5.0f);
  EXPECT_EQ(pool.stats().cow_copies, 1u);
  EXPECT_EQ(b.pages()[0], a.pages()[0]);
  EXPECT_NE(b.pages()[1], a.pages()[1]);
  EXPECT_EQ(pool.refcount(a.pages()[1]), 1);

  // A is untouched through the fork — including position 6, where B wrote.
  for (int p = 0; p < 2 * kPagePositions; ++p) {
    for (int l = 0; l < n_layers(); ++l) {
      ExpectRowResident(&a, &pool, l, p);
    }
  }
  // B reads the shared prefix rows and its own divergent row.
  for (int p = 0; p < 6; ++p) {
    ExpectRowResident(&b, &pool, 0, p);
  }
  for (int l = 0; l < n_layers(); ++l) {
    ExpectRowResident(&b, &pool, l, 6, /*salt=*/5.0f);
  }

  // Scrubbing A releases only its references: the still-shared page 0
  // survives for B, A's private page 1 frame returns to the pool.
  const KvPageId shared = a.pages()[0];
  const int free_before = pool.free_frames();
  a.Scrub();
  EXPECT_EQ(pool.refcount(shared), 1);
  EXPECT_GT(pool.free_frames(), free_before);
  ExpectRowResident(&b, &pool, 1, 3);
}

// --- Checkpoints move between flat and paged caches. ----------------------

TEST_F(PagedKvTest, CheckpointMovesBetweenFlatAndPagedModes) {
  // Serialize out of a spilling paged cache (the gather crosses restores),
  // restore into a flat cache, then back into a roomier paged cache.
  KvPagePool tight(spec_, KvStorage::kF16, PoolOpts(2));
  KvCache paged(spec_, &tight, KvStorage::kF16, nullptr);
  const int positions = 3 * kPagePositions;
  FillCache(&paged, positions);

  std::vector<uint8_t> blob;
  ASSERT_TRUE(paged.SerializeState(&blob).ok());

  KvCache flat(spec_);
  ASSERT_TRUE(flat.RestoreState(blob.data(), blob.size()).ok());
  EXPECT_EQ(flat.seq_len(), positions);
  for (int p = 0; p < positions; ++p) {
    for (int l = 0; l < n_layers(); ++l) {
      ExpectRow(flat, l, p);
    }
  }

  std::vector<uint8_t> blob2;
  ASSERT_TRUE(flat.SerializeState(&blob2).ok());
  KvPagePool roomy(spec_, KvStorage::kF16, PoolOpts(4));
  KvCache paged2(spec_, &roomy, KvStorage::kF16, nullptr);
  ASSERT_TRUE(paged2.RestoreState(blob2.data(), blob2.size()).ok());
  EXPECT_EQ(paged2.seq_len(), positions);
  for (int p = 0; p < positions; ++p) {
    for (int l = 0; l < n_layers(); ++l) {
      ExpectRowResident(&paged2, &roomy, l, p);
    }
  }
}

// --- Arena accounting agreement. ------------------------------------------

TEST_F(PagedKvTest, ArenaBudgetBytesMatchesConstructionInEveryMode) {
  for (const KvStorage storage : {KvStorage::kF16, KvStorage::kF32}) {
    for (const bool paged : {false, true}) {
      KvArenaOptions o;
      o.slots = 3;
      o.storage = storage;
      o.paged = paged;
      o.pool.page_positions = kPagePositions;
      o.pool.spill_key = TestSpillKey();
      KvArena arena(spec_, o);
      // The scratch budget the TA carves (BudgetBytes) is EXACTLY what the
      // constructed arena reports — no drift in any storage x paging mode.
      EXPECT_EQ(KvArena::BudgetBytes(spec_, o), arena.ArenaBytes())
          << "storage=" << static_cast<int>(storage) << " paged=" << paged;
      EXPECT_EQ(arena.paged(), paged);
    }
  }

  // pool_bytes == 0 means "the flat budget": turning paging on does not
  // grow (or shrink) the secure scratch region.
  KvArenaOptions flat_opts;
  flat_opts.slots = 3;
  KvArenaOptions paged_opts = flat_opts;
  paged_opts.paged = true;
  paged_opts.pool.page_positions = kPagePositions;
  EXPECT_EQ(KvArena::BudgetBytes(spec_, paged_opts),
            KvArena::BudgetBytes(spec_, flat_opts));

  // An explicit sub-page-multiple budget rounds down to whole frames, and
  // BudgetBytes tracks the rounding.
  paged_opts.pool.pool_bytes =
      2 * KvPagePool::PageBytes(spec_, KvStorage::kF16, kPagePositions) + 100;
  KvArena trimmed(spec_, paged_opts);
  EXPECT_EQ(trimmed.ArenaBytes(),
            2 * KvPagePool::PageBytes(spec_, KvStorage::kF16, kPagePositions));
  EXPECT_EQ(KvArena::BudgetBytes(spec_, paged_opts), trimmed.ArenaBytes());
}

// --- Prefix registry. -----------------------------------------------------

TEST_F(PagedKvTest, PrefixRegistryAdoptRegisterAndEvict) {
  KvArenaOptions o;
  o.slots = 2;
  o.paged = true;
  o.pool.page_positions = kPagePositions;
  o.pool.spill_key = TestSpillKey();
  o.prefix_entries = 2;
  KvArena arena(spec_, o);

  const std::vector<TokenId> t1 = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto slot_a = arena.Acquire();
  ASSERT_TRUE(slot_a.ok());
  FillCache(arena.cache(*slot_a), static_cast<int>(t1.size()));
  ASSERT_TRUE(arena.RegisterPrefix(*slot_a, t1).ok());
  EXPECT_EQ(arena.prefix_entry_count(), 1);
  EXPECT_EQ(arena.prefix_stats().registered, 1u);
  // The registry holds one reference per covering page: the owner's next
  // append into those pages copies-on-write instead of mutating them.
  for (int i = 0; i < 3; ++i) {  // ceil(10 / 4) pages cover the prefix.
    EXPECT_EQ(arena.pool()->refcount(arena.cache(*slot_a)->pages()[i]), 2);
  }
  // Re-registering the same tokens dedups (recency bump, no new entry).
  ASSERT_TRUE(arena.RegisterPrefix(*slot_a, t1).ok());
  EXPECT_EQ(arena.prefix_entry_count(), 1);
  EXPECT_EQ(arena.prefix_stats().registered, 1u);

  // A prompt extending the registered prefix adopts all 10 positions...
  std::vector<TokenId> extended = t1;
  extended.push_back(99);
  extended.push_back(100);
  auto slot_b = arena.Acquire();
  ASSERT_TRUE(slot_b.ok());
  EXPECT_EQ(arena.AdoptPrefix(*slot_b, extended), 10);
  EXPECT_EQ(arena.cache(*slot_b)->seq_len(), 10);
  EXPECT_EQ(arena.prefix_stats().hits, 1u);
  EXPECT_EQ(arena.prefix_stats().adopted_positions, 10u);
  for (int p = 0; p < 10; ++p) {
    ExpectRowResident(arena.cache(*slot_b), arena.pool(), 0, p);
  }

  // ...an unrelated prompt misses, and a sub-page overlap is not worth a
  // COW copy so it misses too.
  ASSERT_TRUE(arena.Release(*slot_b).ok());
  slot_b = arena.Acquire();
  ASSERT_TRUE(slot_b.ok());
  EXPECT_EQ(arena.AdoptPrefix(*slot_b, {50, 51, 52, 53, 54, 55}), 0);
  EXPECT_EQ(arena.AdoptPrefix(*slot_b, {1, 2, 3, 77, 78, 79}), 0);
  EXPECT_EQ(arena.prefix_stats().hits, 1u);

  // Releasing the registering slot keeps the prefix alive: the registry's
  // references outlive the session, so a later admission still adopts.
  ASSERT_TRUE(arena.Release(*slot_a).ok());
  EXPECT_EQ(arena.AdoptPrefix(*slot_b, extended), 10);
  ExpectRowResident(arena.cache(*slot_b), arena.pool(), 1, 9);
  ASSERT_TRUE(arena.Release(*slot_b).ok());

  // Prefixes shorter than one page are never registered; registering more
  // positions than the slot cached is a caller bug.
  auto slot_c = arena.Acquire();
  ASSERT_TRUE(slot_c.ok());
  FillCache(arena.cache(*slot_c), kPagePositions);
  ASSERT_TRUE(arena.RegisterPrefix(*slot_c, {1, 2}).ok());
  EXPECT_EQ(arena.prefix_entry_count(), 1);
  EXPECT_EQ(arena
                .RegisterPrefix(*slot_c, std::vector<TokenId>(
                                             2 * kPagePositions, 7))
                .code(),
            ErrorCode::kInvalidArgument);

  // The registry LRU-evicts beyond its capacity (2 entries here).
  ASSERT_TRUE(
      arena.RegisterPrefix(*slot_c, {20, 21, 22, 23}).ok());
  EXPECT_EQ(arena.prefix_entry_count(), 2);
  ASSERT_TRUE(
      arena.RegisterPrefix(*slot_c, {30, 31, 32, 33}).ok());
  EXPECT_EQ(arena.prefix_entry_count(), 2);
  EXPECT_EQ(arena.prefix_stats().evicted, 1u);
}

// --- Engine-level bit-identity. -------------------------------------------

constexpr int kBudget = 12;

const std::vector<std::string>& EnginePrompts() {
  static const std::vector<std::string> prompts = {
      "paged kv parity check one",
      "a different second paged prompt",
      "third",
  };
  return prompts;
}

RuntimeConfig EngineConfig(int max_sessions, bool paged, bool force_scalar) {
  RuntimeConfig config;
  config.model = TestSmallModel();
  // A small context keeps per-session page tables short enough that a tiny
  // pool over-subscribes across sessions (the spill test below) while a
  // single session always fits pinned.
  config.model.max_ctx = 64;
  config.system = SystemKind::kTzLlm;
  config.materialize_model = true;
  config.engine.prefill_batch = 8;
  config.engine.max_sessions = max_sessions;
  config.engine.force_scalar = force_scalar;
  config.engine.paged_kv = paged;
  config.engine.kv_page_positions = 8;
  return config;
}

std::vector<GenerationResult> FlatSoloRuns(bool force_scalar) {
  SocPlatform plat;
  SystemRuntime runtime(&plat, EngineConfig(1, /*paged=*/false, force_scalar));
  EXPECT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  EXPECT_TRUE(ta.ok());
  EXPECT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());
  std::vector<GenerationResult> out;
  for (const std::string& prompt : EnginePrompts()) {
    auto result = (*ta)->Generate(prompt, kBudget);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.push_back(result.ok() ? *result : GenerationResult{});
  }
  return out;
}

std::vector<GenerationResult> PagedConcurrentRun(RuntimeConfig config,
                                                 uint64_t* spills,
                                                 uint64_t* restores,
                                                 int* free_frames_after,
                                                 int* total_frames) {
  SocPlatform plat;
  SystemRuntime runtime(&plat, config);
  EXPECT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  EXPECT_TRUE(ta.ok());
  EXPECT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());

  std::vector<SessionId> sids;
  for (const std::string& prompt : EnginePrompts()) {
    auto sid = (*ta)->BeginSession(prompt, kBudget);
    EXPECT_TRUE(sid.ok()) << sid.status().ToString();
    sids.push_back(sid.ok() ? *sid : 0);
  }
  for (;;) {
    std::vector<SessionId> running;
    for (SessionId sid : sids) {
      if (!(*ta)->session_done(sid)) {
        running.push_back(sid);
      }
    }
    if (running.empty()) {
      break;
    }
    Status step = (*ta)->DecodeSessions(running);
    EXPECT_TRUE(step.ok()) << step.ToString();
    if (!step.ok()) {
      break;
    }
  }
  if (spills != nullptr) {
    *spills = (*ta)->kv_arena()->pool()->stats().spills;
  }
  if (restores != nullptr) {
    *restores = (*ta)->kv_arena()->pool()->stats().restores;
  }

  std::vector<GenerationResult> out;
  for (SessionId sid : sids) {
    auto result = (*ta)->FinishSession(sid);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out.push_back(result.ok() ? *result : GenerationResult{});
  }
  if (free_frames_after != nullptr) {
    *free_frames_after = (*ta)->kv_arena()->pool()->free_frames();
  }
  if (total_frames != nullptr) {
    *total_frames = (*ta)->kv_arena()->pool()->frames();
  }
  return out;
}

void ExpectIdentical(const std::vector<GenerationResult>& solo,
                     const std::vector<GenerationResult>& paged) {
  ASSERT_EQ(solo.size(), paged.size());
  for (size_t i = 0; i < solo.size(); ++i) {
    ASSERT_GT(solo[i].output_tokens.size(), 0u) << "prompt " << i;
    EXPECT_EQ(paged[i].output_tokens, solo[i].output_tokens)
        << "prompt " << i << " diverged under paged KV";
    EXPECT_EQ(paged[i].text, solo[i].text) << "prompt " << i;
  }
}

class PagedEngineParityTest : public ::testing::TestWithParam<bool> {};

TEST_P(PagedEngineParityTest, PagedSessionsMatchFlatSoloBitIdentically) {
  const bool force_scalar = GetParam();
  const auto solo = FlatSoloRuns(force_scalar);
  const auto paged = PagedConcurrentRun(
      EngineConfig(static_cast<int>(EnginePrompts().size()), /*paged=*/true,
                   force_scalar),
      nullptr, nullptr, nullptr, nullptr);
  ExpectIdentical(solo, paged);
}

INSTANTIATE_TEST_SUITE_P(KernelMatrix, PagedEngineParityTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("scalar")
                                             : std::string("simd");
                         });

TEST(PagedEngineSpillTest, OverSubscribedPoolSpillsWithoutChangingTokens) {
  // Three concurrent sessions over a pool that holds exactly one session's
  // full context (the LoadModel floor): cold pages MUST spill to REE memory
  // and restore on demand, and not a single token may change.
  const auto solo = FlatSoloRuns(/*force_scalar=*/false);

  RuntimeConfig config = EngineConfig(
      static_cast<int>(EnginePrompts().size()), /*paged=*/true, false);
  const ModelSpec spec = ModelSpec::Create(config.model);
  config.engine.kv_pool_bytes =
      (config.model.max_ctx / config.engine.kv_page_positions) *
      KvPagePool::PageBytes(spec, KvStorage::kF16,
                            config.engine.kv_page_positions);
  // Sharing off: every page is session-private, so finishing all sessions
  // must return every frame to the pool (the refcount-release check).
  config.engine.kv_prefix_entries = 0;

  uint64_t spills = 0, restores = 0;
  int free_after = 0, frames = 0;
  const auto paged =
      PagedConcurrentRun(config, &spills, &restores, &free_after, &frames);
  ExpectIdentical(solo, paged);
  EXPECT_GT(spills, 0u);
  EXPECT_GT(restores, 0u);
  EXPECT_EQ(free_after, frames);
}

TEST(PagedEnginePrefixTest, SharedPrefixAdoptionKeepsTokensIdentical) {
  const std::string preamble = "system: shared serving preamble text. ";
  const std::string p1 = preamble + "alpha request";
  const std::string p2 = preamble + "beta query";
  constexpr int kPrefixBudget = 8;

  // Flat reference: each prompt alone, no sharing possible.
  std::vector<GenerationResult> flat;
  {
    SocPlatform plat;
    SystemRuntime runtime(&plat, EngineConfig(1, /*paged=*/false, false));
    ASSERT_TRUE(runtime.Setup().ok());
    auto ta = runtime.CreateFunctionalTa();
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());
    for (const std::string& prompt : {p1, p2}) {
      auto result = (*ta)->Generate(prompt, kPrefixBudget);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      flat.push_back(*result);
    }
  }

  // Paged engine, sequential: generating p1 registers its prompt as a
  // shareable prefix; admitting p2 adopts the common pages and prefills
  // only the divergent tail. TTFT work shrinks, tokens do not move.
  SocPlatform plat;
  SystemRuntime runtime(&plat, EngineConfig(1, /*paged=*/true, false));
  ASSERT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());

  auto r1 = (*ta)->Generate(p1, kPrefixBudget);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->output_tokens, flat[0].output_tokens);

  auto r2 = (*ta)->Generate(p2, kPrefixBudget);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->output_tokens, flat[1].output_tokens);

  const KvArena::PrefixStats& stats = (*ta)->kv_arena()->prefix_stats();
  EXPECT_GE(stats.hits, 1u);
  // At least one full page of prefill was skipped via the shared pages.
  EXPECT_GE(stats.adopted_positions, 8u);
  EXPECT_GT((*ta)->kv_arena()->pool()->stats().cow_copies, 0u);
}

}  // namespace
}  // namespace tzllm
