#include "src/crypto/key_hierarchy.h"

#include <gtest/gtest.h>

#include <cstring>

namespace tzllm {
namespace {

TEST(KeyHierarchyTest, DeterministicDerivation) {
  KeyHierarchy a(100), b(100);
  EXPECT_EQ(a.DeriveTeeKey(), b.DeriveTeeKey());
  EXPECT_EQ(a.DeriveModelKey("m"), b.DeriveModelKey("m"));
}

TEST(KeyHierarchyTest, DifferentRootsGiveDifferentKeys) {
  KeyHierarchy a(100), b(101);
  EXPECT_NE(a.DeriveTeeKey(), b.DeriveTeeKey());
  EXPECT_NE(a.DeriveModelKey("m"), b.DeriveModelKey("m"));
}

TEST(KeyHierarchyTest, ModelKeysAreIndependent) {
  KeyHierarchy keys(7);
  EXPECT_NE(keys.DeriveModelKey("llama"), keys.DeriveModelKey("qwen"));
  EXPECT_NE(keys.DeriveModelKey("llama"), keys.DeriveTeeKey());
}

TEST(KeyHierarchyTest, WrapUnwrapRoundTrip) {
  KeyHierarchy keys(42);
  const AesKey128 model_key = keys.DeriveModelKey("llama");
  const WrappedModelKey wrapped = keys.WrapModelKey("llama", model_key);
  // The wrapped ciphertext must not equal the plaintext key.
  EXPECT_NE(0, std::memcmp(wrapped.ciphertext.data(), model_key.data(), 16));
  auto unwrapped = keys.UnwrapModelKey(wrapped);
  ASSERT_TRUE(unwrapped.ok());
  EXPECT_EQ(*unwrapped, model_key);
}

TEST(KeyHierarchyTest, WrongDeviceCannotUnwrap) {
  KeyHierarchy device_a(42), device_b(43);
  const WrappedModelKey wrapped =
      device_a.WrapModelKey("llama", device_a.DeriveModelKey("llama"));
  auto unwrapped = device_b.UnwrapModelKey(wrapped);
  EXPECT_FALSE(unwrapped.ok());
  EXPECT_EQ(unwrapped.status().code(), ErrorCode::kDataCorruption);
}

TEST(KeyHierarchyTest, TamperedBlobRejected) {
  KeyHierarchy keys(42);
  WrappedModelKey wrapped =
      keys.WrapModelKey("llama", keys.DeriveModelKey("llama"));
  wrapped.ciphertext[3] ^= 0x80;
  EXPECT_FALSE(keys.UnwrapModelKey(wrapped).ok());
}

TEST(KeyHierarchyTest, RenamedBlobRejected) {
  // Swapping the wrapped key of one model onto another id must fail the
  // integrity tag (the tag binds model_id).
  KeyHierarchy keys(42);
  WrappedModelKey wrapped =
      keys.WrapModelKey("llama", keys.DeriveModelKey("llama"));
  wrapped.model_id = "qwen";
  EXPECT_FALSE(keys.UnwrapModelKey(wrapped).ok());
}

TEST(KeyHierarchyTest, ModelIvDeterministicAndZeroCounter) {
  const AesBlock iv1 = KeyHierarchy::ModelIv("x");
  const AesBlock iv2 = KeyHierarchy::ModelIv("x");
  EXPECT_EQ(iv1, iv2);
  for (int i = 8; i < 16; ++i) {
    EXPECT_EQ(iv1[i], 0);
  }
  EXPECT_NE(KeyHierarchy::ModelIv("y"), iv1);
}

}  // namespace
}  // namespace tzllm
