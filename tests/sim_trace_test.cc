#include "src/sim/trace.h"

#include <gtest/gtest.h>

namespace tzllm {
namespace {

TEST(TraceTest, LaneBusyTime) {
  TraceRecorder trace;
  trace.Add("CPU0", "alloc", 0, 100);
  trace.Add("CPU0", "decrypt", 150, 250);
  trace.Add("IO", "load", 0, 400);
  EXPECT_EQ(trace.LaneBusyTime("CPU0"), 200u);
  EXPECT_EQ(trace.LaneBusyTime("IO"), 400u);
  EXPECT_EQ(trace.LaneBusyTime("NPU"), 0u);
}

TEST(TraceTest, AsciiRenderContainsLanesAndMarks) {
  TraceRecorder trace;
  trace.Add("CPU0", "alloc", 0, 50);
  trace.Add("IO", "load", 50, 100);
  const std::string out = trace.RenderAscii(20);
  EXPECT_NE(out.find("CPU0"), std::string::npos);
  EXPECT_NE(out.find("IO"), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);  // alloc mark.
  EXPECT_NE(out.find('l'), std::string::npos);  // load mark.
}

TEST(TraceTest, EmptyTraceRenders) {
  TraceRecorder trace;
  EXPECT_EQ(trace.RenderAscii(10), "(empty trace)\n");
}

TEST(TraceTest, ChromeJsonWellFormedish) {
  TraceRecorder trace;
  trace.Add("NPU", "job", 1000, 3000);
  const std::string json = trace.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":\"NPU\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);  // us granularity.
}

TEST(TraceTest, ClearResets) {
  TraceRecorder trace;
  trace.Add("A", "x", 0, 10);
  trace.Clear();
  EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace tzllm
