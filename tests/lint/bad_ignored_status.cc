// tzlint fixture: seeded `ignored-status` violation. Checked with
// --as src/core/evil_ta.cc; never compiled.

namespace tzllm {

class Status {};

Status RekeySession();
Status SealCheckpoint(int slot);

void EvilShutdown() {
  RekeySession();        // violation: Status silently dropped
  SealCheckpoint(3);     // violation: Status silently dropped
}

}  // namespace tzllm
