// tzlint fixture: a file subject to all four rules (checked with
// --as src/core/clean.cc) that uses every *allowed* pattern — the checker
// must exit 0 on it. Never compiled.
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

namespace tzllm {

class Status {};

struct NpuJobDesc {
  uint64_t cmd_addr = 0;
  uint64_t cmd_size = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buffers;
};

Status RekeySession();

void CleanPath(NpuJobDesc& desc, uint64_t base) {
  // steady_clock is the hybrid-timeline host clock: allowed.
  const auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  // Owned containers, not raw allocation: allowed.
  auto buf = std::make_unique<uint8_t[]>(64);
  std::vector<uint8_t> scratch(64);
  (void)buf;
  (void)scratch;
  // The TZASC-validated channel: NpuJobDesc address fields. Allowed.
  desc.cmd_addr = base + 0x1000;
  desc.cmd_size = 64;
  desc.buffers.emplace_back(base + 0x2000, 4096);
  // Handled and explicitly-discarded Status: allowed.
  const Status st = RekeySession();
  (void)st;
  (void)RekeySession();  // best-effort teardown; failure is unobservable
  // Marker-suppressed line (the one legitimate escape hatch):
  RekeySession();  // tzlint: allow(ignored-status) — fixture marker test
}

}  // namespace tzllm
