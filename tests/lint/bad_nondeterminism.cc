// tzlint fixture: seeded `nondeterminism` violations. Checked with
// --as src/llm/evil_sampler.cc (a bit-identity path); never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace tzllm {

int EvilSample(int vocab) {
  std::random_device rd;                                   // violation
  std::srand(static_cast<unsigned>(std::time(nullptr)));   // two violations
  const auto wall = std::chrono::system_clock::now();      // violation
  (void)wall;
  return rand() % vocab;                                   // violation
}

}  // namespace tzllm
