// tzlint fixture: seeded `raw-alloc` violations. Checked with
// --as src/tee/evil_scratch.cc (TA code); never compiled.
#include <cstdint>
#include <cstdlib>

namespace tzllm {

uint8_t* EvilScratch(size_t n) {
  uint8_t* a = new uint8_t[n];                        // violation: new[]
  void* b = malloc(n);                                // violation: malloc
  void* c = realloc(b, 2 * n);                        // violation: realloc
  (void)c;
  return a;
}

}  // namespace tzllm
