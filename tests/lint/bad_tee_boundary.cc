// tzlint fixture: seeded `tee-boundary` violations. Checked with
// --as src/tee/evil_driver.cc (TEE code); never compiled.
#include <cstdint>
#include <vector>

namespace tzllm {

struct SmcArgs {
  uint64_t a[8] = {};
};

void EvilRpc(SmcArgs& args, std::vector<uint8_t>& secret) {
  // violation: pointer-to-integer cast smuggles a secure VA to the REE.
  args.a[1] = reinterpret_cast<uint64_t>(secret.data());
  // violation: address-of into an SMC register.
  args.a[2] = (uint64_t)&secret;
}

}  // namespace tzllm
