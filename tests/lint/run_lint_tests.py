#!/usr/bin/env python3
"""Self-test for scripts/tzlint.py (ctest: lint_tzlint_selftest).

Runs the checker over the seeded-violation fixtures in this directory —
each `--as` a virtual path inside the rule's scope — and asserts:
  * every bad fixture exits nonzero and reports EXACTLY its seeded rule
    (a stray second rule firing would mean a fixture or pattern bug);
  * the clean fixture (all allowed patterns + a suppression marker) exits 0;
  * results are identical with --no-libclang (the deterministic tokenizer
    fallback is the contract; libclang is an optional precision upgrade).
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
TZLINT = os.path.join(ROOT, "scripts", "tzlint.py")

# fixture file -> (virtual path, expected rule or None for clean).
CASES = [
    ("bad_nondeterminism.cc", "src/llm/evil_sampler.cc", "nondeterminism"),
    ("bad_raw_alloc.cc", "src/tee/evil_scratch.cc", "raw-alloc"),
    ("bad_tee_boundary.cc", "src/tee/evil_driver.cc", "tee-boundary"),
    ("bad_ignored_status.cc", "src/core/evil_ta.cc", "ignored-status"),
    ("clean.cc", "src/core/clean.cc", None),
]

RULE_TAG = re.compile(r"\[([a-z-]+)\]")


def run_case(fixture, virtual, expected_rule, extra_flags):
    cmd = [sys.executable, TZLINT, os.path.join(HERE, fixture),
           "--as", virtual, "--root", ROOT] + extra_flags
    proc = subprocess.run(cmd, capture_output=True, text=True)
    label = f"{fixture} ({' '.join(extra_flags) or 'default'})"
    fired = set(RULE_TAG.findall(proc.stdout))
    if expected_rule is None:
        if proc.returncode != 0:
            return f"{label}: expected clean (exit 0), got {proc.returncode}:" \
                   f"\n{proc.stdout}{proc.stderr}"
    else:
        if proc.returncode == 0:
            return f"{label}: expected nonzero exit, got 0"
        if fired != {expected_rule}:
            return f"{label}: expected exactly rule {{{expected_rule}}}, " \
                   f"got {sorted(fired)}:\n{proc.stdout}"
    return None


def main():
    failures = []
    for fixture, virtual, expected in CASES:
        for flags in ([], ["--no-libclang"]):
            err = run_case(fixture, virtual, expected, flags)
            if err:
                failures.append(err)
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(f"{len(failures)} case(s) failed")
        return 1
    print(f"all {2 * len(CASES)} tzlint self-test cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
