// Crash-consistent session checkpoint/restore: a generation session (KV
// cache contents, sampler RNG words, position and token budget) can be
// sealed to flash mid-generation, evicted from secure memory, and restored
// — on the same TA or a freshly booted one — resuming with exactly the
// tokens the uninterrupted run would have produced. The sealed blob rides
// the CheckpointService (AES-CTR under the model key + SHA-256 tag), so a
// tampered checkpoint is detected, not silently resumed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/llm/kv_cache.h"
#include "src/llm/model_spec.h"

namespace tzllm {
namespace {

RuntimeConfig FunctionalConfig(bool use_npu) {
  RuntimeConfig config;
  config.model = TestSmallModel();
  config.system = SystemKind::kTzLlm;
  config.use_npu = use_npu;
  config.materialize_model = true;
  config.engine.prefill_batch = 8;
  config.engine.npu_prefill = use_npu;
  return config;
}

constexpr char kPrompt[] = "checkpoint and resume this generation";
constexpr int kBudget = 10;
constexpr int kStepsBeforeCheckpoint = 3;

// The uninterrupted reference run on a dedicated stack.
GenerationResult ReferenceRun(bool use_npu, const Sampler::Options& sampling) {
  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(use_npu));
  EXPECT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  EXPECT_TRUE(ta.ok());
  EXPECT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());
  auto out = (*ta)->Generate(kPrompt, kBudget, sampling);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : GenerationResult{};
}

// Runs the open session `sid` to completion on the handle surface.
void StepToDone(LlmTa* ta, SessionId sid) {
  while (!ta->session_done(sid)) {
    auto more = ta->StepSession(sid, kBudget);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (*more == 0) {
      break;
    }
  }
}

TEST(SessionCheckpointTest, CheckpointEvictRestoreResumesGreedyIdentically) {
  const GenerationResult reference = ReferenceRun(false, {});
  ASSERT_GT(reference.output_tokens.size(), 0u);

  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(false));
  ASSERT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());

  auto sid = (*ta)->BeginSession(kPrompt, kBudget);
  ASSERT_TRUE(sid.ok()) << sid.status().ToString();
  auto stepped = (*ta)->StepSession(*sid, kStepsBeforeCheckpoint);
  ASSERT_TRUE(stepped.ok());
  ASSERT_GT(*stepped, 0);

  // Seal + evict: the live session is gone and the KV arena scrubbed.
  ASSERT_TRUE((*ta)->CheckpointSession(*sid).ok());
  EXPECT_FALSE((*ta)->session_active(*sid));
  EXPECT_TRUE((*ta)->HasSessionCheckpoint(*sid));

  // Restore under the same handle and run the remainder to completion.
  auto restored = (*ta)->RestoreSession(*sid);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, *sid);
  EXPECT_TRUE((*ta)->session_active(*sid));
  StepToDone(ta->get(), *sid);
  auto resumed = (*ta)->FinishSession(*sid);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->output_tokens, reference.output_tokens);
  EXPECT_EQ(resumed->text, reference.text);
}

TEST(SessionCheckpointTest, FreshTaRestoresACrashedSession) {
  // Crash consistency: after CheckpointSession the blob on flash is the
  // whole session. Tear the TA down (the "crash"), boot a new one over the
  // same model, restore, and the resumed tokens must equal the
  // uninterrupted run's.
  const GenerationResult reference = ReferenceRun(false, {});
  ASSERT_GT(reference.output_tokens.size(), 0u);

  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(false));
  ASSERT_TRUE(runtime.Setup().ok());
  SessionId crashed_sid = 0;
  {
    auto ta = runtime.CreateFunctionalTa();
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());
    auto sid = (*ta)->BeginSession(kPrompt, kBudget);
    ASSERT_TRUE(sid.ok());
    crashed_sid = *sid;
    ASSERT_TRUE((*ta)->StepSession(crashed_sid, kStepsBeforeCheckpoint).ok());
    ASSERT_TRUE((*ta)->CheckpointSession(crashed_sid).ok());
    // The "crash": release secure memory and drop the TA. Only flash (the
    // sealed checkpoint + the provisioned model) survives — and the handle,
    // which the blob carries.
    ASSERT_TRUE((*ta)->Unload().ok());
  }

  auto ta2 = runtime.CreateFunctionalTa();
  ASSERT_TRUE(ta2.ok());
  ASSERT_TRUE((*ta2)->LoadModel(runtime.spec().config().name).ok());
  EXPECT_TRUE((*ta2)->HasSessionCheckpoint(crashed_sid));
  auto restored = (*ta2)->RestoreSession(crashed_sid);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, crashed_sid);
  StepToDone(ta2->get(), crashed_sid);
  auto resumed = (*ta2)->FinishSession(crashed_sid);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->output_tokens, reference.output_tokens);
}

TEST(SessionCheckpointTest, NonGreedySamplerResumesTokenIdentically) {
  // The RNG words ride the checkpoint: a stochastic sampler must draw the
  // exact remaining sequence after restore, not merely a plausible one.
  Sampler::Options sampling;
  sampling.greedy = false;
  sampling.top_k = 8;
  sampling.temperature = 0.9;
  sampling.seed = 12345;
  const GenerationResult reference = ReferenceRun(false, sampling);
  ASSERT_GT(reference.output_tokens.size(), 0u);

  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(false));
  ASSERT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());
  auto sid = (*ta)->BeginSession(kPrompt, kBudget, sampling);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE((*ta)->StepSession(*sid, kStepsBeforeCheckpoint).ok());
  ASSERT_TRUE((*ta)->CheckpointSession(*sid).ok());
  ASSERT_TRUE((*ta)->RestoreSession(*sid).ok());
  StepToDone(ta->get(), *sid);
  auto resumed = (*ta)->FinishSession(*sid);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->output_tokens, reference.output_tokens);
}

TEST(SessionCheckpointTest, NpuOffloadSessionSurvivesCheckpointRestore) {
  // The checkpointable state is backend-independent: an NPU-offloaded
  // prefill session checkpoints and resumes exactly like the CPU one (the
  // KV bytes are identical by the offload's bit-parity contract).
  const GenerationResult reference = ReferenceRun(true, {});
  ASSERT_GT(reference.output_tokens.size(), 0u);

  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(true));
  ASSERT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());
  auto sid = (*ta)->BeginSession(kPrompt, kBudget);
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE((*ta)->StepSession(*sid, kStepsBeforeCheckpoint).ok());
  ASSERT_TRUE((*ta)->CheckpointSession(*sid).ok());
  ASSERT_TRUE((*ta)->RestoreSession(*sid).ok());
  StepToDone(ta->get(), *sid);
  auto resumed = (*ta)->FinishSession(*sid);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->output_tokens, reference.output_tokens);
}

// Deliberately exercises the LEGACY no-argument shims (the pre-handle API):
// one implicit session, the un-suffixed "<model>.sess.ckpt" flash id. The
// tamper detection itself is blob-layout-independent (CheckpointService's
// integrity tag fails the unseal), so this doubles as the shim-surface
// regression test.
TEST(SessionCheckpointTest, TamperedCheckpointDetectedOnRestore) {
  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(false));
  ASSERT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());
  ASSERT_TRUE((*ta)->BeginSession(kPrompt, kBudget).ok());
  ASSERT_TRUE((*ta)->StepSession(kStepsBeforeCheckpoint).ok());
  ASSERT_TRUE((*ta)->CheckpointSession().ok());

  // Untrusted flash flips bytes inside the sealed blob: restore must fail
  // with kDataCorruption, never resume a corrupted session.
  const std::string file =
      runtime.spec().config().name + std::string(".sess.ckpt");
  ASSERT_TRUE(plat.flash().CorruptBytes(file, /*offset=*/64, /*len=*/8).ok());
  const Status restore = (*ta)->RestoreSession();
  ASSERT_FALSE(restore.ok());
  EXPECT_EQ(restore.code(), ErrorCode::kDataCorruption);
  EXPECT_FALSE((*ta)->session_active());
}

TEST(SessionCheckpointTest, SessionApiRejectsMisuse) {
  SocPlatform plat;
  SystemRuntime runtime(&plat, FunctionalConfig(false));
  ASSERT_TRUE(runtime.Setup().ok());
  auto ta = runtime.CreateFunctionalTa();
  ASSERT_TRUE(ta.ok());

  // Everything needs a loaded model.
  EXPECT_EQ((*ta)->BeginSession(kPrompt, kBudget).status().code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE((*ta)->LoadModel(runtime.spec().config().name).ok());

  // No session yet: stepping, finishing, checkpointing all fail closed —
  // both the legacy shims and a stale handle.
  EXPECT_EQ((*ta)->StepSession(1).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*ta)->FinishSession().status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*ta)->CheckpointSession().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*ta)->StepSession(SessionId{99}, 1).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*ta)->AbandonSession(SessionId{99}).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_FALSE((*ta)->session_active(SessionId{99}));
  EXPECT_TRUE((*ta)->session_done(SessionId{99}));
  EXPECT_FALSE((*ta)->HasSessionCheckpoint());
  // Restoring with no checkpoint on flash is NotFound, not a crash.
  EXPECT_FALSE((*ta)->RestoreSession().ok());

  // With the default max_sessions == 1 a second Begin keeps the legacy
  // "already active" rejection while a session is open.
  auto sid = (*ta)->BeginSession(kPrompt, kBudget);
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ((*ta)->BeginSession(kPrompt, kBudget).status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*ta)->open_sessions(), 1);
  EXPECT_EQ((*ta)->free_session_slots(), 0);
  ASSERT_TRUE((*ta)->FinishSession(*sid).ok());
  EXPECT_FALSE((*ta)->session_active());
  // The handle is dead after Finish: stepping it fails closed.
  EXPECT_EQ((*ta)->StepSession(*sid, 1).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(SessionCheckpointTest, KvSnapshotGuardsGeometryAndTruncation) {
  // KvCache::RestoreState unit coverage: wrong-geometry snapshots are a
  // clean InvalidArgument (different model/storage), truncated bodies are
  // kDataCorruption — neither may partially restore.
  const ModelSpec spec = ModelSpec::Create(TestSmallModel());
  KvCache cache(spec);
  std::vector<float> k(spec.config().kv_dim(), 0.5f);
  std::vector<float> v(spec.config().kv_dim(), -0.25f);
  for (int l = 0; l < spec.config().n_layers; ++l) {
    ASSERT_TRUE(cache.AppendBatch(l, 1, k.data(), v.data()).ok());
  }
  cache.FinishPosition();

  std::vector<uint8_t> snapshot;
  ASSERT_TRUE(cache.SerializeState(&snapshot).ok());

  // Round-trips into a same-geometry cache.
  KvCache twin(spec);
  ASSERT_TRUE(twin.RestoreState(snapshot.data(), snapshot.size()).ok());
  EXPECT_EQ(twin.seq_len(), cache.seq_len());
  EXPECT_EQ(twin.CurrentBytes(), cache.CurrentBytes());

  // Different storage width: geometry mismatch.
  KvCache f32(spec, KvStorage::kF32);
  const Status mismatch = f32.RestoreState(snapshot.data(), snapshot.size());
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), ErrorCode::kInvalidArgument);

  // Truncated body: corruption.
  const Status truncated =
      twin.RestoreState(snapshot.data(), snapshot.size() - 3);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.code(), ErrorCode::kDataCorruption);
}

}  // namespace
}  // namespace tzllm
